// Tests for the request-serving frontend (src/frontend) and the batcher's live
// Submit/Step/pause/resume machinery it drives.
//
// The centerpiece is pause/resume bit-identity: a decode preempted mid-stream and later
// resumed from its retained paged KV must reproduce the un-preempted run token-for-token
// AND block-for-block — including under stochastic sampling, where the per-slot Rng
// snapshot is what carries the sampler state across the pause.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/frontend/request.h"
#include "src/frontend/serving_engine.h"
#include "src/frontend/traffic.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace hfront {
namespace {

using hserve::ContinuousBatcher;
using hserve::FunctionalBackend;
using hserve::ServeJob;
using hserve::ServeOptions;
using hserve::StepEvents;

uint64_t Fnv(const std::vector<int>& tokens) {
  uint64_t h = 14695981039346656037ull;
  for (const int t : tokens) {
    h = (h ^ static_cast<uint64_t>(static_cast<uint32_t>(t))) * 1099511628211ull;
  }
  return h;
}

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : config_(hllm::ToyConfig()), weights_(hllm::ModelWeights::Random(config_, 42)) {}

  std::unique_ptr<FunctionalBackend> MakeBackend(int max_batch, int max_context = 96) {
    devs_.push_back(std::make_unique<hexsim::NpuDevice>(hexsim::OnePlus12()));
    return std::make_unique<FunctionalBackend>(*devs_.back(), weights_, max_batch,
                                               max_context);
  }

  hllm::ModelConfig config_;
  hllm::ModelWeights weights_;
  std::vector<std::unique_ptr<hexsim::NpuDevice>> devs_;
};

// Drives the batcher until drained, collecting each job's streamed tokens.
std::map<int, std::vector<int>> Drain(ContinuousBatcher& b) {
  std::map<int, std::vector<int>> tokens;
  while (b.HasWork()) {
    const StepEvents ev = b.Step();
    for (const auto& t : ev.tokens) {
      tokens[t.job_id].push_back(t.token);
    }
    if (!ev.stepped) {
      break;
    }
  }
  return tokens;
}

TEST_F(FrontendTest, PauseResumeIsBitIdenticalToUnpreemptedRun) {
  ServeJob job;
  job.id = 7;
  job.prompt_tokens = 11;
  job.decode_tokens = 10;
  // Stochastic sampling makes this a strong test: the resumed stream only matches if the
  // sampler Rng state survives the pause exactly.
  job.sampler.temperature = 0.8f;
  job.sampler.top_k = 16;
  job.seed = 123;

  ServeOptions so;
  so.max_batch = 2;

  // Baseline: never preempted.
  auto be_a = MakeBackend(so.max_batch);
  ContinuousBatcher a(*be_a, so);
  ASSERT_TRUE(a.Submit(job));
  const auto base_tokens = Drain(a);
  const auto base_r = a.Finish();
  ASSERT_TRUE(base_r.error.empty()) << base_r.error;

  // Preempted mid-stream: 4 tokens, pause (slot freed, KV resident), idle step while
  // paused, resume, finish.
  auto be_b = MakeBackend(so.max_batch);
  ContinuousBatcher b(*be_b, so);
  ASSERT_TRUE(b.Submit(job));
  std::vector<int> got;
  for (int i = 0; i < 4; ++i) {
    const StepEvents ev = b.Step();
    ASSERT_TRUE(ev.stepped);
    for (const auto& t : ev.tokens) {
      got.push_back(t.token);
    }
  }
  ASSERT_TRUE(b.PauseJob(job.id, /*requeue=*/false));
  EXPECT_EQ(b.job_state(job.id), hserve::JobState::kPaused);
  EXPECT_EQ(b.free_slots(), so.max_batch);
  EXPECT_FALSE(b.Step().stepped);  // paused with no queue: the batcher idles
  ASSERT_TRUE(b.ResumeJob(job.id));
  while (b.HasWork()) {
    const StepEvents ev = b.Step();
    ASSERT_TRUE(ev.stepped);
    for (const auto& t : ev.tokens) {
      got.push_back(t.token);
    }
  }
  const auto r = b.Finish();
  ASSERT_TRUE(r.error.empty()) << r.error;

  EXPECT_EQ(got, base_tokens.at(job.id));
  EXPECT_EQ(Fnv(got), Fnv(base_tokens.at(job.id)));
  EXPECT_EQ(r.preemptions, 1);
  EXPECT_EQ(r.resumes, 1);
  // KV block accounting matches the un-preempted run exactly: the pause keeps pages
  // resident behind a handle and the resume's handle drop restores exclusive tail
  // ownership, so no extra blocks and no copy-on-write splits.
  EXPECT_EQ(r.kv.physical_blocks, base_r.kv.physical_blocks);
  EXPECT_EQ(r.kv.logical_blocks, base_r.kv.logical_blocks);
  EXPECT_EQ(r.kv.peak_physical_blocks, base_r.kv.peak_physical_blocks);
  EXPECT_EQ(r.kv.cow_splits, base_r.kv.cow_splits);
  EXPECT_EQ(r.decoded_tokens, base_r.decoded_tokens);
}

TEST_F(FrontendTest, HighPriorityArrivalPreemptsAndVictimResumesIdentically) {
  ServeJob low;
  low.id = 0;
  low.prompt_tokens = 9;
  low.decode_tokens = 12;
  low.seed = 5;
  ServeJob high;
  high.id = 1;
  high.prompt_tokens = 6;
  high.decode_tokens = 3;
  high.priority = 2;

  ServeOptions so;
  so.max_batch = 1;
  so.enable_preemption = true;

  // Baseline for the victim: the same job decoding alone, uncontended.
  auto be_solo = MakeBackend(1);
  ContinuousBatcher solo(*be_solo, so);
  ASSERT_TRUE(solo.Submit(low));
  const auto solo_tokens = Drain(solo);
  (void)solo.Finish();

  auto be = MakeBackend(1);
  ContinuousBatcher b(*be, so);
  ASSERT_TRUE(b.Submit(low));
  std::map<int, std::vector<int>> tokens;
  for (int i = 0; i < 5; ++i) {
    for (const auto& t : b.Step().tokens) {
      tokens[t.job_id].push_back(t.token);
    }
  }
  // The latency-critical request lands: with the one slot busy, its admission pauses the
  // running decode (KV stays resident) and prefills in its place.
  ASSERT_TRUE(b.Submit(high));
  const StepEvents ev = b.Step();
  ASSERT_EQ(ev.paused.size(), 1u);
  EXPECT_EQ(ev.paused[0], low.id);
  ASSERT_EQ(ev.admitted.size(), 1u);
  EXPECT_EQ(ev.admitted[0], high.id);
  EXPECT_EQ(b.job_state(low.id), hserve::JobState::kPaused);
  for (const auto& t : ev.tokens) {
    tokens[t.job_id].push_back(t.token);
  }
  for (const auto& [id, toks] : Drain(b)) {
    auto& dst = tokens[id];
    dst.insert(dst.end(), toks.begin(), toks.end());
  }
  const auto r = b.Finish();
  ASSERT_TRUE(r.error.empty()) << r.error;

  EXPECT_EQ(r.preemptions, 1);
  EXPECT_EQ(r.resumes, 1);
  EXPECT_EQ(tokens.at(high.id).size(), 3u);
  // The victim's full stream is exactly its uncontended decode.
  EXPECT_EQ(tokens.at(low.id), solo_tokens.at(low.id));
  EXPECT_EQ(b.job_state(low.id), hserve::JobState::kDone);
}

TEST_F(FrontendTest, SessionFollowUpTurnsReprefillOnlyTheNewTurn) {
  // A 3-turn dialog: every follow-up forks the prior turn's retained KV, so the charged
  // prefill is the sum of the turn prompts only — never the accumulated dialog.
  std::vector<Request> trace(3);
  for (int turn = 0; turn < 3; ++turn) {
    Request& r = trace[static_cast<size_t>(turn)];
    r.id = turn;
    r.session = 0;
    r.turn_index = turn;
    r.arrival_s = turn == 0 ? 0.0 : 0.25;  // think time for follow-ups
    r.prompt_tokens = 7 + turn;
    r.decode_tokens = 5;
    r.seed = 77u + static_cast<uint64_t>(turn);
  }

  ServeOptions so;
  so.max_batch = 2;
  auto be = MakeBackend(so.max_batch, /*max_context=*/96);
  ContinuousBatcher b(*be, so);
  ServingEngine engine(b);
  const EngineSummary s = engine.Run(trace);
  ASSERT_TRUE(s.schedule.error.empty()) << s.schedule.error;

  EXPECT_EQ(s.schedule.prefilled_tokens, 7 + 8 + 9);
  EXPECT_EQ(s.schedule.forked_admissions, 2);
  ASSERT_EQ(s.requests.size(), 3u);
  for (int turn = 0; turn < 3; ++turn) {
    const RequestStats& st = s.requests[static_cast<size_t>(turn)];
    EXPECT_TRUE(st.done);
    EXPECT_EQ(st.tokens, 5);
    if (turn > 0) {
      // The follow-up arrives exactly think-time after the prior turn's completion.
      EXPECT_DOUBLE_EQ(st.arrival_s,
                       s.requests[static_cast<size_t>(turn - 1)].done_s + 0.25);
    }
  }
  // Turn KV is chained, not recomputed: the dialog's logical footprint exceeds a single
  // turn's, and the think-time gaps are accounted as idle, not decode.
  EXPECT_GT(s.schedule.idle_s, 0.0);

  // The whole engine pipeline is deterministic: a second run over a fresh backend matches
  // checksum-for-checksum and timestamp-for-timestamp.
  auto be2 = MakeBackend(so.max_batch, 96);
  ContinuousBatcher b2(*be2, so);
  ServingEngine engine2(b2);
  const EngineSummary s2 = engine2.Run(trace);
  ASSERT_TRUE(s2.schedule.error.empty()) << s2.schedule.error;
  for (size_t i = 0; i < s.requests.size(); ++i) {
    EXPECT_EQ(s.requests[i].checksum, s2.requests[i].checksum);
    EXPECT_DOUBLE_EQ(s.requests[i].done_s, s2.requests[i].done_s);
  }
}

TEST_F(FrontendTest, TrafficGeneratorIsSeedDeterministic) {
  TrafficOptions o;
  o.arrivals = 24;
  o.seed = 9;
  o.burst_fraction = 0.3;
  o.interactive_fraction = 0.4;
  o.session_fraction = 0.3;
  o.session_turns = 3;
  const std::vector<Request> a = GenerateTraffic(o);
  const std::vector<Request> b = GenerateTraffic(o);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GE(a.size(), 24u);  // sessions append follow-up turns
  bool any_session = false;
  bool any_interactive = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].decode_tokens, b[i].decode_tokens);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].priority, b[i].priority);
    any_session = any_session || a[i].session >= 0;
    any_interactive = any_interactive || a[i].priority > 0;
  }
  EXPECT_TRUE(any_session);
  EXPECT_TRUE(any_interactive);

  o.seed = 10;
  const std::vector<Request> c = GenerateTraffic(o);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival_s != c[i].arrival_s || a[i].prompt_tokens != c[i].prompt_tokens;
  }
  EXPECT_TRUE(differs);
}

TEST_F(FrontendTest, LongContextTrafficIsGatedAndDrawsLongPrompts) {
  // Default options (fraction 0) must keep traces byte-identical to the pre-knob
  // generator: the long-context draw may not consume RNG state when gated off.
  TrafficOptions base;
  base.arrivals = 32;
  base.seed = 13;
  base.session_fraction = 0.25;
  const std::vector<Request> legacy = GenerateTraffic(base);
  TrafficOptions gated = base;
  gated.long_context_fraction = 0.0;
  gated.mean_long_prompt_tokens = 1 << 20;  // would be obvious if it leaked
  const std::vector<Request> same = GenerateTraffic(gated);
  ASSERT_EQ(legacy.size(), same.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].prompt_tokens, same[i].prompt_tokens);
    EXPECT_EQ(legacy[i].arrival_s, same[i].arrival_s);
    EXPECT_EQ(legacy[i].seed, same[i].seed);
  }

  // Turned on, a fraction of arrivals draw document-scale prompts (floored well above the
  // short-prompt regime) while the rest keep short ones.
  TrafficOptions lo = base;
  lo.long_context_fraction = 0.5;
  lo.mean_long_prompt_tokens = 8192;
  lo.min_long_prompt_tokens = 1024;
  const std::vector<Request> mixed = GenerateTraffic(lo);
  int long_reqs = 0;
  int short_reqs = 0;
  for (const Request& r : mixed) {
    if (r.prompt_tokens >= lo.min_long_prompt_tokens) {
      ++long_reqs;
    } else {
      ++short_reqs;
    }
  }
  EXPECT_GT(long_reqs, 0);
  EXPECT_GT(short_reqs, 0);
}

TEST_F(FrontendTest, EngineServesBurstyTrafficDeterministicallyWithPreemption) {
  TrafficOptions o;
  o.arrivals = 10;
  o.seed = 21;
  o.arrival_rate_hz = 50.0;  // compressed arrivals force queueing and preemption
  o.burst_fraction = 0.5;
  o.burst_size = 3;
  o.interactive_fraction = 0.4;
  o.interactive_slo = {0.5, 0.2};
  o.mean_prompt_tokens = 16;
  o.min_prompt_tokens = 4;
  o.mean_decode_tokens = 12;
  o.min_decode_tokens = 4;
  const std::vector<Request> trace = GenerateTraffic(o);

  ServeOptions so;
  so.max_batch = 2;
  so.enable_preemption = true;

  const auto run = [&](FunctionalBackend& backend) {
    ContinuousBatcher b(backend, so);
    ServingEngine engine(b);
    return engine.Run(trace);
  };
  auto be1 = MakeBackend(so.max_batch, 256);
  const EngineSummary s1 = run(*be1);
  ASSERT_TRUE(s1.schedule.error.empty()) << s1.schedule.error;
  auto be2 = MakeBackend(so.max_batch, 256);
  const EngineSummary s2 = run(*be2);

  int64_t done = 0;
  for (size_t i = 0; i < s1.requests.size(); ++i) {
    EXPECT_EQ(s1.requests[i].checksum, s2.requests[i].checksum);
    EXPECT_EQ(s1.requests[i].tokens, s2.requests[i].tokens);
    EXPECT_DOUBLE_EQ(s1.requests[i].first_token_s, s2.requests[i].first_token_s);
    EXPECT_EQ(s1.requests[i].preemptions, s2.requests[i].preemptions);
    done += s1.requests[i].done ? 1 : 0;
  }
  EXPECT_EQ(done, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(s1.schedule.preemptions, s2.schedule.preemptions);
  EXPECT_GT(s1.schedule.preemptions, 0);
  EXPECT_EQ(s1.schedule.resumes, s1.schedule.preemptions);
  EXPECT_GT(s1.slo_total, 0);
  EXPECT_GT(s1.goodput_tps, 0.0);

  // The run's metrics snapshot carries the frontend's latency histograms, with one
  // observation per completed request.
  const obs::HistogramSample* ttft = s1.schedule.metrics.FindHistogram("serve.ttft_seconds");
  ASSERT_NE(ttft, nullptr);
  EXPECT_EQ(ttft->count, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(s1.schedule.metrics.CounterValue("serve.preemptions"),
            s1.schedule.preemptions);
  EXPECT_EQ(s1.schedule.metrics.CounterValue("serve.resumes"), s1.schedule.resumes);
}

TEST_F(FrontendTest, PercentileHelper) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile({1.0, 2.0}, 0.5), 1.5);
}

}  // namespace
}  // namespace hfront

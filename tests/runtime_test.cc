#include <string>

#include <gtest/gtest.h>

#include "src/hexsim/device_profile.h"
#include "src/llm/model_config.h"
#include "src/runtime/engine.h"

namespace hrt {
namespace {

using hexsim::OnePlus12;
using hexsim::OnePlusAce3;
using hexsim::OnePlusAce5Pro;
using hllm::Llama32_1B;
using hllm::Qwen25_1_5B;
using hllm::Qwen25_3B;

Engine MakeEngine(const hllm::ModelConfig& m, const hexsim::DeviceProfile& d,
                  Backend b = Backend::kNpuOurs) {
  EngineOptions o;
  o.model = &m;
  o.device = &d;
  o.backend = b;
  return Engine(o);
}

// --- address-space policy (§7.2.1 / §7.2.2) ---

TEST(EngineTest, V73Rejects3BModels) {
  std::string reason;
  EXPECT_FALSE(MakeEngine(Qwen25_3B(), OnePlusAce3()).CanRun(&reason));
  EXPECT_NE(reason.find("Snapdragon 8 Gen 2"), std::string::npos);
  EXPECT_TRUE(MakeEngine(Qwen25_3B(), OnePlus12()).CanRun());
  EXPECT_TRUE(MakeEngine(Qwen25_1_5B(), OnePlusAce3()).CanRun());
  EXPECT_TRUE(MakeEngine(Llama32_1B(), OnePlusAce3()).CanRun());
}

// --- decode scaling (Figure 11) ---

TEST(EngineTest, DecodeThroughputGrowsWithBatch) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  double prev = 0.0;
  for (int b : {1, 2, 4, 8, 16}) {
    const double t = e.DecodeThroughput(b, 1024);
    EXPECT_GT(t, prev) << "batch " << b;
    prev = t;
  }
}

TEST(EngineTest, DecodeScalingIsSubLinear) {
  // "the decoding throughput does not scale perfectly linearly" — the CPU lm_head drag.
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  const double t1 = e.DecodeThroughput(1, 1024);
  const double t16 = e.DecodeThroughput(16, 1024);
  EXPECT_GT(t16, 4.0 * t1);
  EXPECT_LT(t16, 14.0 * t1);
}

TEST(EngineTest, StepTimeBarelyGrowsToBatch4) {
  // §3.2: the idle HMX rows make small-batch decode nearly free.
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  const double s1 = e.DecodeStep(1, 1024).total_s;
  const double s4 = e.DecodeStep(4, 1024).total_s;
  EXPECT_LT(s4, s1 * 1.15);
}

TEST(EngineTest, LmHeadShareApproachesHalfAtBatch16) {
  // §7.2.2: "when the batch size equals 16, the proportion of the computation time of
  // logits on the CPU is close to or exceeds 50%".
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  const StepCost c16 = e.DecodeStep(16, 1024);
  const double share = c16.lm_head_s / c16.total_s;
  EXPECT_GT(share, 0.40);
  EXPECT_LT(share, 0.65);
  const StepCost c1 = e.DecodeStep(1, 1024);
  EXPECT_LT(c1.lm_head_s / c1.total_s, share);
}

TEST(EngineTest, NewerDevicesAreFaster) {
  const double v73 = MakeEngine(Llama32_1B(), OnePlusAce3()).DecodeThroughput(8, 1024);
  const double v75 = MakeEngine(Llama32_1B(), OnePlus12()).DecodeThroughput(8, 1024);
  const double v79 = MakeEngine(Llama32_1B(), OnePlusAce5Pro()).DecodeThroughput(8, 1024);
  EXPECT_GT(v75, v73);
  EXPECT_GT(v79, v75);
}

// --- backend comparison (Figure 13) ---

TEST(EngineTest, GpuWinsBatch1NpuWinsBatched) {
  const Engine npu = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kNpuOurs);
  const Engine gpu = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kGpuOpenCl);
  EXPECT_GT(gpu.DecodeThroughput(1, 1024), npu.DecodeThroughput(1, 1024));
  EXPECT_GT(npu.DecodeThroughput(4, 1024), gpu.DecodeThroughput(4, 1024));
  EXPECT_GT(npu.DecodeThroughput(16, 1024), 3.0 * gpu.DecodeThroughput(16, 1024));
}

TEST(EngineTest, QnnHasNoBatchScaling) {
  const Engine qnn = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kQnnF16);
  const double t1 = qnn.DecodeThroughput(1, 1024);
  const double t8 = qnn.DecodeThroughput(8, 1024);
  EXPECT_LT(t8, t1 * 1.6);  // static graphs: nearly flat
}

TEST(EngineTest, PrefillOrdering) {
  // "Our system consistently outperforms the GPU-based system in prefilling, achieving
  // comparable performance with proprietary QNN under certain workloads."
  const Engine npu = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kNpuOurs);
  const Engine gpu = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kGpuOpenCl);
  const Engine qnn = MakeEngine(Qwen25_1_5B(), OnePlus12(), Backend::kQnnF16);
  const double p_npu = npu.PrefillThroughput(1024);
  const double p_gpu = gpu.PrefillThroughput(1024);
  const double p_qnn = qnn.PrefillThroughput(1024);
  EXPECT_GT(p_npu, 1.5 * p_gpu);
  EXPECT_GT(p_npu, 0.5 * p_qnn);  // comparable with QNN
  EXPECT_LT(p_npu, 1.5 * p_qnn);
}

// --- power & energy (Figure 12, §7.2.3) ---

TEST(EngineTest, PowerWithinFiveWatts) {
  const Engine e15 = MakeEngine(Qwen25_1_5B(), OnePlus12());
  double prev = 0.0;
  for (int b : {1, 2, 4, 8, 16}) {
    const auto p = e15.DecodePower(b, 1024);
    EXPECT_LT(p.watts, 5.0) << "batch " << b;
    EXPECT_GT(p.watts, 2.0) << "batch " << b;
    EXPECT_GE(p.watts, prev) << "power rises with batch";
    prev = p.watts;
  }
  const auto p3 = MakeEngine(Qwen25_3B(), OnePlus12()).DecodePower(8, 1024);
  EXPECT_NEAR(p3.watts, 4.3, 1.2);  // "stabilizes at around 4.3W"
}

TEST(EngineTest, EnergyPerTokenFallsWithBatch) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  double prev = 1e9;
  for (int b : {1, 2, 4, 8, 16}) {
    const double j = e.DecodePower(b, 1024).joules_per_token;
    EXPECT_LT(j, prev);
    prev = j;
  }
}

TEST(EngineTest, SmallModelBatch8BeatsLargeModelBatch1Energy) {
  // §7.2.3: "the decoding energy consumption of the 1.5B model at a batch size of 8 is
  // lower than that of the 3B model at a batch size of 1".
  const double e15 = MakeEngine(Qwen25_1_5B(), OnePlus12()).DecodePower(8, 1024).joules_per_token;
  const double e3 = MakeEngine(Qwen25_3B(), OnePlus12()).DecodePower(1, 1024).joules_per_token;
  EXPECT_LT(e15, e3);
}

// --- memory / CPU usage (Figure 16) ---

TEST(EngineTest, DmabufConstantAcrossBatch) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  const auto m1 = e.Memory(1);
  const auto m16 = e.Memory(16);
  EXPECT_EQ(m1.dmabuf_bytes, m16.dmabuf_bytes);
  EXPECT_NEAR(static_cast<double>(m1.dmabuf_bytes) / (1 << 20), 1056.0, 80.0);
}

TEST(EngineTest, CpuUtilizationGrowsWithBatchBoundedByFourCores) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  double prev = 0.0;
  for (int b : {1, 4, 8, 16}) {
    const double u = e.Memory(b).cpu_utilization;
    EXPECT_GE(u, prev);
    EXPECT_LE(u, 4.0);
    prev = u;
  }
  EXPECT_GT(prev, 1.0);  // multiple cores busy at batch 16
}

// --- prompt-length sensitivity (Figure 17) ---

TEST(EngineTest, PromptLengthMildlyReducesThroughput) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  for (int b : {1, 8}) {
    const double t512 = e.DecodeThroughput(b, 512);
    const double t4096 = e.DecodeThroughput(b, 4096);
    EXPECT_LT(t4096, t512);
    EXPECT_GT(t4096, 0.70 * t512) << "decline must remain subtle (batch " << b << ")";
  }
}

// --- internal consistency ---

TEST(EngineTest, StepCostComponentsSumToTotal) {
  const Engine e = MakeEngine(Qwen25_1_5B(), OnePlus12());
  const StepCost c = e.DecodeStep(4, 2048);
  EXPECT_NEAR(c.total_s, c.linear_s + c.attention_s + c.misc_s + c.lm_head_s + c.comm_s,
              1e-12);
  EXPECT_GT(c.ddr_bytes, 0);
  EXPECT_GT(c.hvx_busy_s, 0.0);
  EXPECT_GT(c.hmx_busy_s, 0.0);
}

TEST(EngineTest, DequantVariantMattersEndToEnd) {
  // Running the engine with the baseline scatter kernel must be far slower — the system
  // motivation in one assertion.
  EngineOptions base;
  base.model = &Qwen25_1_5B();
  base.device = &OnePlus12();
  base.dequant = hkern::DequantKernel::kBaselineScatter;
  const Engine slow(base);
  const Engine fast = MakeEngine(Qwen25_1_5B(), OnePlus12());
  EXPECT_GT(slow.DecodeStep(1, 1024).linear_s, 5.0 * fast.DecodeStep(1, 1024).linear_s);
}

}  // namespace
}  // namespace hrt

// Property-based and parameterized sweeps across the stack: invariants that must hold for
// whole families of shapes, devices and inputs, not just the hand-picked cases in the unit
// tests.
#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fp16.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/gemm.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/softmax.h"
#include "src/quant/error_stats.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"
#include "src/runtime/engine.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

namespace {

using hexllm::F16;
using hexllm::Rng;
using hexsim::HvxVec;

// --- FP16 order-preservation ---

TEST(F16PropertyTest, ConversionIsMonotone) {
  // For any a <= b (finite), F32ToF16Bits must not invert the order after decoding.
  Rng rng(1);
  std::vector<float> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(static_cast<float>(rng.NextGaussian() * std::exp(rng.NextGaussian() * 4)));
  }
  std::sort(samples.begin(), samples.end());
  float prev = hexllm::RoundToF16(samples[0]);
  for (size_t i = 1; i < samples.size(); ++i) {
    const float cur = hexllm::RoundToF16(samples[i]);
    EXPECT_LE(prev, cur) << samples[i];
    prev = cur;
  }
}

TEST(F16PropertyTest, NegationIsExact) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.NextGaussian() * 100);
    EXPECT_EQ(hexllm::F32ToF16Bits(-v), hexllm::F32ToF16Bits(v) ^ 0x8000);
  }
}

TEST(F16PropertyTest, RoundingErrorBounded) {
  // Relative rounding error <= 2^-11 for normal-range values.
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>((rng.NextDouble() + 0.01) * 1000);
    EXPECT_LE(std::fabs(hexllm::RoundToF16(v) - v), v * std::ldexp(1.0f, -11) * 1.001);
  }
}

// --- HVX ISA algebraic identities ---

class HvxAlgebraTest : public ::testing::Test {
 protected:
  HvxAlgebraTest() : ctx_(hexsim::OnePlus12()), rng_(4) {
    for (int i = 0; i < HvxVec::kBytes; ++i) {
      a_.b[static_cast<size_t>(i)] = static_cast<uint8_t>(rng_.NextU64());
      b_.b[static_cast<size_t>(i)] = static_cast<uint8_t>(rng_.NextU64());
    }
  }
  hexsim::HvxContext ctx_;
  Rng rng_;
  HvxVec a_, b_;
};

TEST_F(HvxAlgebraTest, DeMorgan) {
  // ~(a & b) == ~a | ~b, using xor with all-ones as not.
  const HvxVec ones = ctx_.VSplatB(0xFF);
  const HvxVec lhs = ctx_.VXor(ctx_.VAnd(a_, b_), ones);
  const HvxVec rhs = ctx_.VOr(ctx_.VXor(a_, ones), ctx_.VXor(b_, ones));
  EXPECT_EQ(lhs, rhs);
}

TEST_F(HvxAlgebraTest, ShiftsCompose) {
  const HvxVec once = ctx_.VShlH(ctx_.VShlH(a_, 1), 2);
  const HvxVec combined = ctx_.VShlH(a_, 3);
  EXPECT_EQ(once, combined);
  const HvxVec down = ctx_.VShrH(ctx_.VShrH(a_, 2), 3);
  EXPECT_EQ(down, ctx_.VShrH(a_, 5));
}

TEST_F(HvxAlgebraTest, NibbleSplitIsLossless) {
  // The dequant kernel's vand/vshr split must partition every byte exactly.
  const HvxVec mask = ctx_.VSplatB(0x0F);
  const HvxVec lo = ctx_.VAnd(a_, mask);
  const HvxVec hi = ctx_.VAnd(ctx_.VShrH(a_, 4), mask);
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    EXPECT_EQ(lo.b[static_cast<size_t>(i)] | (hi.b[static_cast<size_t>(i)] << 4),
              a_.b[static_cast<size_t>(i)]);
  }
}

TEST_F(HvxAlgebraTest, IdentityPermutation) {
  std::array<uint8_t, 128> idx;
  for (int i = 0; i < 128; ++i) {
    idx[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(ctx_.VPermuteBytes(a_, idx), a_);
}

TEST_F(HvxAlgebraTest, VLut16IdentityTable) {
  // Looking indices up in a table that maps i -> i reproduces the (masked) indices.
  HvxVec table{};
  for (int i = 0; i < 16; ++i) {
    table.SetU16(i, static_cast<uint16_t>(i));
  }
  const auto out = ctx_.VLut16(a_, table);
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    const uint16_t got = (i < 64) ? out.lo.GetU16(i) : out.hi.GetU16(i - 64);
    EXPECT_EQ(got, a_.b[static_cast<size_t>(i)] & 0x0F);
  }
}

TEST_F(HvxAlgebraTest, AddSubRoundTripF16IsStableWhenExact) {
  // (x + y) - y == x when both magnitudes are close (no catastrophic cancellation cases).
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    a_.SetHf(i, static_cast<float>(1.0 + 0.25 * (i % 4)));
    b_.SetHf(i, 0.25f);
  }
  const HvxVec sum = ctx_.VAddHf(a_, b_);
  const HvxVec back = ctx_.VSubHf(sum, b_);
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    EXPECT_FLOAT_EQ(back.GetHf(i), a_.GetHf(i));
  }
}

TEST_F(HvxAlgebraTest, GatherScatterRoundTrip) {
  hexsim::Tcm tcm(1 << 16);
  tcm.Alloc(8192);
  HvxVec offsets{};
  for (int i = 0; i < 64; ++i) {
    offsets.SetU16(i, static_cast<uint16_t>(((i * 37) % 1024) * 2));
  }
  ctx_.VScatterH(tcm, 0, offsets, a_);
  const HvxVec back = ctx_.VGather(tcm, 0, offsets);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(back.GetU16(i), a_.GetU16(i));
  }
}

// --- quantization properties across shapes ---

class QuantShapeTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QuantShapeTest, PermutationBijective) {
  const auto [k, n] = GetParam();
  std::vector<float> w(static_cast<size_t>(k) * n);
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(i) * 0.001f;
  }
  const auto stream = hquant::PermuteToHmxOrder(w, k, n);
  EXPECT_EQ(hquant::UnpermuteFromHmxOrder(stream, k, n), w);
}

TEST_P(QuantShapeTest, TileQuantErrorScaleInvariant) {
  // Quantizing c*W must give exactly c times the reconstruction (scales are linear), for
  // power-of-two c (exact in FP16).
  const auto [k, n] = GetParam();
  Rng rng(5);
  const auto w = hquant::GenerateGaussianMatrix(k, n, rng, 0.05);
  std::vector<float> w4(w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    w4[i] = 4.0f * w[i];
  }
  const auto r1 = hquant::DequantizeTileGroupQ4(hquant::TileGroupQuantizeQ4(w, k, n), k, n);
  const auto r4 = hquant::DequantizeTileGroupQ4(hquant::TileGroupQuantizeQ4(w4, k, n), k, n);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(r4[i], 4.0f * r1[i], std::fabs(r1[i]) * 1e-3 + 1e-6);
  }
}

TEST_P(QuantShapeTest, RequantizationIsIdempotent) {
  // Quantizing a reconstruction reproduces the same reconstruction (Q(D(Q(w))) == Q(w)).
  const auto [k, n] = GetParam();
  Rng rng(6);
  const auto w = hquant::GenerateLlmLikeMatrix(k, n, rng);
  const auto rec = hquant::DequantizeTileGroupQ4(hquant::TileGroupQuantizeQ4(w, k, n), k, n);
  const auto rec2 =
      hquant::DequantizeTileGroupQ4(hquant::TileGroupQuantizeQ4(rec, k, n), k, n);
  const auto err = hquant::ComputeErrorStats(rec, rec2);
  EXPECT_LT(err.rel_rms, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QuantShapeTest,
                         ::testing::Values(std::make_tuple(32, 32), std::make_tuple(64, 128),
                                           std::make_tuple(96, 64),
                                           std::make_tuple(128, 256),
                                           std::make_tuple(256, 96)),
                         [](const auto& info) {
                           return std::to_string(std::get<0>(info.param)) + "x" +
                                  std::to_string(std::get<1>(info.param));
                         });

// --- softmax across shapes, variants and devices ---

class SoftmaxSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, hkern::SoftmaxVariant>> {};

TEST_P(SoftmaxSweepTest, RowsAreDistributions) {
  const auto [rows, cols, variant] = GetParam();
  for (const auto* profile : {&hexsim::OnePlus12(), &hexsim::OnePlusAce5Pro()}) {
    hexsim::NpuDevice dev(*profile);
    hkern::ExpLut lut(dev);
    auto* s = reinterpret_cast<F16*>(dev.tcm().Alloc(static_cast<int64_t>(rows) * cols * 2));
    Rng rng(7);
    for (int i = 0; i < rows * cols; ++i) {
      s[i] = F16(static_cast<float>(rng.NextGaussian() * 4.0));
    }
    hkern::SoftmaxRowsF16(dev, variant, &lut, s, rows, cols);
    for (int r = 0; r < rows; ++r) {
      float sum = 0.0f;
      float mx = -1.0f;
      for (int c = 0; c < cols; ++c) {
        const float v = s[r * cols + c].ToFloat();
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.001f);
        sum += v;
        mx = std::max(mx, v);
      }
      EXPECT_NEAR(sum, 1.0f, 0.03f) << profile->device_name << " row " << r;
      EXPECT_GT(mx, 1.0f / cols);  // not uniform-degenerate
    }
    // Packet model stays exact on every shape/device/variant combination.
    hexsim::NpuDevice dev2(*profile);
    hkern::ExpLut lut2(dev2);
    auto* s2 = reinterpret_cast<F16*>(dev2.tcm().Alloc(static_cast<int64_t>(rows) * cols * 2));
    for (int i = 0; i < rows * cols; ++i) {
      s2[i] = F16(0.25f);
    }
    dev2.hvx().ResetPackets();
    hkern::SoftmaxRowsF16(dev2, variant, &lut2, s2, rows, cols);
    EXPECT_EQ(dev2.hvx().packets(), hkern::SoftmaxPacketCost(*profile, variant, rows, cols));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SoftmaxSweepTest,
    ::testing::Combine(::testing::Values(1, 3, 8), ::testing::Values(64, 192, 512),
                       ::testing::Values(hkern::SoftmaxVariant::kF32Poly,
                                         hkern::SoftmaxVariant::kF16Poly,
                                         hkern::SoftmaxVariant::kLut)),
    [](const auto& info) {
      const char* v = std::get<2>(info.param) == hkern::SoftmaxVariant::kLut ? "Lut"
                      : std::get<2>(info.param) == hkern::SoftmaxVariant::kF16Poly ? "F16"
                                                                                   : "F32";
      return std::string(v) + "_r" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

// --- attention across shapes ---

class AttentionSweepTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(AttentionSweepTest, MatchesReference) {
  const auto [q_len, kv_len, d] = GetParam();
  Rng rng(8);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hkern::ExpLut lut(dev);
  std::vector<F16> q(static_cast<size_t>(q_len) * d), o(q.size());
  std::vector<F16> k(static_cast<size_t>(kv_len) * d), v(k.size());
  std::vector<float> qf(q.size()), kf(k.size()), vf(v.size()), of(o.size());
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = F16(static_cast<float>(rng.NextGaussian()));
    qf[i] = q[i].ToFloat();
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    kf[i] = k[i].ToFloat();
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
    vf[i] = v[i].ToFloat();
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), k.data(),
                           v.data(), o.data(), q_len, kv_len, d, scale);
  hkern::AttentionF32Reference(qf.data(), kf.data(), vf.data(), of.data(), q_len, kv_len, d,
                               scale);
  double max_err = 0.0;
  for (size_t i = 0; i < o.size(); ++i) {
    max_err = std::max(max_err, static_cast<double>(std::fabs(o[i].ToFloat() - of[i])));
  }
  EXPECT_LT(max_err, 0.035) << "q=" << q_len << " kv=" << kv_len << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AttentionSweepTest,
                         ::testing::Values(std::make_tuple(1, 1, 32),
                                           std::make_tuple(1, 33, 32),
                                           std::make_tuple(2, 128, 64),
                                           std::make_tuple(5, 129, 64),
                                           std::make_tuple(16, 100, 32),
                                           std::make_tuple(33, 257, 64),
                                           std::make_tuple(3, 640, 128)),
                         [](const auto& info) {
                           return "q" + std::to_string(std::get<0>(info.param)) + "_kv" +
                                  std::to_string(std::get<1>(info.param)) + "_d" +
                                  std::to_string(std::get<2>(info.param));
                         });

// --- engine monotonicity across the full model x device grid ---

TEST(EngineSweepTest, ThroughputMonotoneAndPowerBounded) {
  for (const auto* device : hexsim::AllDevices()) {
    for (const auto* model : hllm::EvaluationModels()) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = device;
      const hrt::Engine e(o);
      if (!e.CanRun()) {
        continue;
      }
      double prev_tput = 0.0;
      double prev_energy = 1e9;
      for (int b : {1, 2, 4, 8, 16}) {
        const double t = e.DecodeThroughput(b, 1024);
        EXPECT_GT(t, prev_tput) << model->name << " on " << device->device_name;
        prev_tput = t;
        const auto p = e.DecodePower(b, 1024);
        EXPECT_LT(p.watts, 5.5) << model->name << " on " << device->device_name;
        EXPECT_LT(p.joules_per_token, prev_energy);
        prev_energy = p.joules_per_token;
      }
    }
  }
}

TEST(EngineSweepTest, ContextMonotonicallySlowsDecode) {
  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_1_5B();
  o.device = &hexsim::OnePlus12();
  const hrt::Engine e(o);
  for (int b : {1, 8}) {
    double prev = 0.0;
    for (int ctx : {128, 512, 1024, 2048, 4096}) {
      const double s = e.DecodeStep(b, ctx).total_s;
      EXPECT_GE(s, prev);
      prev = s;
    }
  }
}

TEST(EngineSweepTest, PrefillFasterThanDecodePerToken) {
  for (const auto* model : hllm::EvaluationModels()) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine e(o);
    EXPECT_GT(e.PrefillThroughput(1024), 5.0 * e.DecodeThroughput(1, 1024)) << model->name;
  }
}

// --- DMA cost properties ---

TEST(DmaPropertyTest, CostMonotoneInBytes) {
  hexsim::CycleLedger ledger;
  hexsim::DmaEngine dma(hexsim::OnePlus12(), ledger);
  double prev = 0.0;
  for (int64_t bytes : {64, 256, 4096, 1 << 16, 1 << 20}) {
    const double c = dma.Cost1D(bytes, hexsim::DmaDirection::kDdrToTcm);
    EXPECT_GT(c, prev);
    prev = c;
  }
}

TEST(DmaPropertyTest, Fragmented2DNeverBeats1D) {
  hexsim::CycleLedger ledger;
  hexsim::DmaEngine dma(hexsim::OnePlus12(), ledger);
  const int64_t total = 1 << 20;
  const double flat = dma.Cost1D(total, hexsim::DmaDirection::kDdrToTcm);
  for (int64_t row : {32, 128, 512, 4096}) {
    EXPECT_GE(dma.Cost2D(row, total / row, hexsim::DmaDirection::kDdrToTcm), flat * 0.999)
        << row;
  }
}

// --- TTS statistical properties ---

TEST(TtsPropertyTest, AccuracyMonotoneInSkill) {
  const auto tasks = htts::GenerateTaskSet(htts::Dataset::kMath500, 2000, 9);
  double prev = 0.0;
  for (double theta : {-3.0, -1.0, 0.0, 1.0, 3.0}) {
    const double acc = htts::CapabilityModel::MeanAccuracy(tasks, theta);
    EXPECT_GT(acc, prev);
    prev = acc;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(TtsPropertyTest, OracleDominatesEverySelector) {
  const auto tasks = htts::GenerateTaskSet(htts::Dataset::kGsm8k, 300, 10);
  Rng rng(11);
  const htts::OutcomeRewardModel orm;
  for (int n : {2, 4, 8}) {
    const auto r = htts::RunBestOfN(tasks, 0.3, orm, n, 6, rng);
    EXPECT_LE(r.accuracy, r.oracle_accuracy + 1e-9);
    const auto mv = htts::RunMajorityVote(tasks, 0.3, n, 6, rng);
    EXPECT_LE(mv.accuracy, mv.oracle_accuracy + 1e-9);
  }
}

TEST(TtsPropertyTest, BeamBatchNeverExceedsBudget) {
  const auto tasks = htts::GenerateTaskSet(htts::Dataset::kGsm8k, 50, 12);
  Rng rng(13);
  const htts::ProcessRewardModel prm;
  for (int n : {1, 2, 3, 4, 8, 16}) {
    const auto r = htts::RunBeamSearch(tasks, 0.0, prm, n, 4, 1, rng);
    EXPECT_LE(r.batch, n) << n;
    EXPECT_GE(r.batch, 1);
  }
}

TEST(TtsPropertyTest, DeterministicGivenSeed) {
  const auto tasks = htts::GenerateTaskSet(htts::Dataset::kMath500, 200, 14);
  const htts::OutcomeRewardModel orm;
  Rng rng1(15);
  Rng rng2(15);
  const auto a = htts::RunBestOfN(tasks, 0.5, orm, 8, 3, rng1);
  const auto b = htts::RunBestOfN(tasks, 0.5, orm, 8, 3, rng2);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.oracle_accuracy, b.oracle_accuracy);
}

// --- GEMM sweep ---

class GemmSweepTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSweepTest, HmxMatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(16);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  std::vector<F16> a(static_cast<size_t>(m) * k);
  std::vector<float> w(static_cast<size_t>(k) * n);
  for (auto& x : a) {
    x = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  }
  for (auto& x : w) {
    x = static_cast<float>(rng.NextGaussian() * 0.3);
  }
  const auto stream = hquant::PermuteToHmxOrder(w, k, n);
  std::vector<F16> b_tiles(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    b_tiles[i] = F16(stream[i]);
  }
  std::vector<F16> c(static_cast<size_t>(m) * n);
  hkern::GemmF16Hmx(dev, a.data(), b_tiles.data(), c.data(), m, k, n, true);
  EXPECT_EQ(dev.hmx().tile_ops(), hkern::GemmF16HmxTileOps(m, k, n));
  Rng probe(17);
  for (int t = 0; t < 50; ++t) {
    const int mi = static_cast<int>(probe.NextBounded(static_cast<uint64_t>(m)));
    const int ni = static_cast<int>(probe.NextBounded(static_cast<uint64_t>(n)));
    float expected = 0.0f;
    for (int ki = 0; ki < k; ++ki) {
      expected += a[static_cast<size_t>(mi) * k + ki].ToFloat() *
                  hexllm::RoundToF16(w[static_cast<size_t>(ni) * k + ki]);
    }
    EXPECT_NEAR(c[static_cast<size_t>(mi) * n + ni].ToFloat(), expected,
                std::fabs(expected) * 3e-3 + 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweepTest,
                         ::testing::Values(std::make_tuple(32, 32, 32),
                                           std::make_tuple(32, 96, 64),
                                           std::make_tuple(64, 64, 128),
                                           std::make_tuple(96, 128, 32)),
                         [](const auto& info) {
                           return std::to_string(std::get<0>(info.param)) + "x" +
                                  std::to_string(std::get<1>(info.param)) + "x" +
                                  std::to_string(std::get<2>(info.param));
                         });

// --- mixed-GEMM cost-model properties ---

TEST(MixedGemmPropertyTest, CostOrderingHoldsOnAllDevices) {
  for (const auto* p : hexsim::AllDevices()) {
    for (int k : {512, 2048}) {
      for (int n : {512, 8192}) {
        const auto base = hkern::MixedGemmCostModel(*p, hkern::DequantKernel::kBaselineScatter,
                                                    hquant::WeightScheme::kQ4_0, 1, k, n, 4);
        const auto hmx = hkern::MixedGemmCostModel(*p, hkern::DequantKernel::kHmxLayout,
                                                   hquant::WeightScheme::kQ4_0, 1, k, n, 4);
        const auto ours = hkern::MixedGemmCostModel(*p, hkern::DequantKernel::kCoalescedLut,
                                                    hquant::WeightScheme::kQ4_0, 1, k, n, 4);
        const auto nodeq = hkern::MixedGemmCostModel(*p, hkern::DequantKernel::kNoDequant,
                                                     hquant::WeightScheme::kQ4_0, 1, k, n, 4);
        EXPECT_GT(base.total_s, hmx.total_s) << p->device_name;
        EXPECT_GT(hmx.total_s, ours.total_s) << p->device_name;
        EXPECT_GE(ours.total_s, nodeq.total_s * 0.999) << p->device_name;
      }
    }
  }
}

TEST(MixedGemmPropertyTest, V79CheaperThanV75PerPacketModel) {
  // Native IEEE FP16 removes qfloat conversions: conventional dequant must cost fewer
  // packets on V79.
  EXPECT_LT(hkern::DequantPacketsPer64(hexsim::OnePlusAce5Pro(),
                                       hkern::DequantKernel::kHmxLayout),
            hkern::DequantPacketsPer64(hexsim::OnePlus12(), hkern::DequantKernel::kHmxLayout));
}

}  // namespace

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/task.h"
#include "src/tts/tts.h"

namespace hserve {
namespace {

// Unit-cost test double: every decode step takes 1 ms, every charged prefill token 1 us.
// Records the slot sets so scheduling policy (reclamation, barriers, batch bound) can be
// asserted independent of any engine's pricing.
class RecordingBackend : public ExecutionBackend {
 public:
  const char* name() const override { return "recording"; }

  double AdmitSlot(int slot, const ServeJob& job, int /*context_tokens*/,
                   int charged_prefill_tokens) override {
    admitted_jobs.push_back(job.id);
    admitted_slots.push_back(slot);
    return charged_prefill_tokens * 1e-6;
  }

  void ReleaseSlot(int slot) override { released.push_back(slot); }

  StepOutcome Step(std::span<const int> slots, std::span<const int> contexts) override {
    step_slots.emplace_back(slots.begin(), slots.end());
    step_contexts.emplace_back(contexts.begin(), contexts.end());
    StepOutcome out;
    out.cost.total_s = 1e-3;
    out.watts = 2.0;
    return out;
  }

  std::vector<int> admitted_jobs;
  std::vector<int> admitted_slots;
  std::vector<int> released;
  std::vector<std::vector<int>> step_slots;
  std::vector<std::vector<int>> step_contexts;
};

ServeJob Job(int id, int decode, int group = -1, int prompt = 0, int context = 0,
             int barrier = 0) {
  ServeJob j;
  j.id = id;
  j.prompt_group = group;
  j.prompt_tokens = prompt;
  j.context_tokens = context;
  j.decode_tokens = decode;
  j.barrier = barrier;
  return j;
}

TEST(ContinuousBatcherTest, EmptyJobsYieldZeroedResult) {
  RecordingBackend backend;
  ServeOptions so;
  const ScheduleResult r = ContinuousBatcher(backend, so).Run({});
  EXPECT_EQ(r.steps, 0);
  EXPECT_EQ(r.decoded_tokens, 0);
  EXPECT_EQ(r.makespan_s, 0.0);
  EXPECT_EQ(r.tokens_per_second, 0.0);
  EXPECT_EQ(r.avg_active_batch, 0.0);
  EXPECT_EQ(r.slot_utilization, 0.0);
  EXPECT_FALSE(std::isnan(r.tokens_per_second));
  EXPECT_FALSE(std::isnan(r.slot_utilization));
}

TEST(ContinuousBatcherTest, ActiveBatchNeverExceedsMaxBatch) {
  RecordingBackend backend;
  ServeOptions so;
  so.max_batch = 4;
  std::vector<ServeJob> jobs;
  hexllm::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(Job(i, 1 + static_cast<int>(rng.NextBounded(9))));
  }
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  EXPECT_EQ(static_cast<int>(r.completions.size()), 20);
  for (const auto& slots : backend.step_slots) {
    EXPECT_LE(static_cast<int>(slots.size()), 4);
    EXPECT_GE(static_cast<int>(slots.size()), 1);
  }
  // Everything decoded, nothing double-counted.
  int64_t want = 0;
  for (const auto& j : jobs) {
    want += j.decode_tokens;
  }
  EXPECT_EQ(r.decoded_tokens, want);
}

TEST(ContinuousBatcherTest, FreedSlotIsReusedOnTheVeryNextStep) {
  RecordingBackend backend;
  ServeOptions so;
  so.max_batch = 4;
  // Job 0 finishes after one step; job 4 is queued behind the full batch and must take
  // job 0's slot on the immediately following step.
  const std::vector<ServeJob> jobs = {Job(0, 1), Job(1, 5), Job(2, 5), Job(3, 5),
                                      Job(4, 2)};
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_EQ(r.admissions.size(), 5u);
  const int freed_slot = r.completions.front().slot;
  EXPECT_EQ(r.completions.front().job_id, 0);
  EXPECT_EQ(r.completions.front().step, 0);
  // Job 4's admission lands on step 1 and reuses job 0's slot.
  const Admission& a4 = r.admissions.back();
  EXPECT_EQ(a4.job_id, 4);
  EXPECT_EQ(a4.step, 1);
  EXPECT_EQ(a4.slot, freed_slot);
  ASSERT_GE(backend.step_slots.size(), 2u);
  EXPECT_NE(std::find(backend.step_slots[1].begin(), backend.step_slots[1].end(),
                      freed_slot),
            backend.step_slots[1].end());
  // The reused slot's context restarted from zero, not from job 0's leftovers.
  const size_t idx = static_cast<size_t>(
      std::find(backend.step_slots[1].begin(), backend.step_slots[1].end(), freed_slot) -
      backend.step_slots[1].begin());
  EXPECT_EQ(backend.step_contexts[1][idx], 0);
}

TEST(ContinuousBatcherTest, StaticWavesHoldSlotsUntilWaveDrains) {
  RecordingBackend backend;
  ServeOptions so;
  so.max_batch = 2;
  so.policy = SchedulePolicy::kStaticWaves;
  const std::vector<ServeJob> jobs = {Job(0, 1), Job(1, 4), Job(2, 1)};
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  // Wave 1 runs 4 steps (padding job 0's row for 3 of them); wave 2 runs 1 step.
  EXPECT_EQ(r.steps, 5);
  EXPECT_EQ(r.decoded_tokens, 6);
  EXPECT_LT(r.slot_utilization, 1.0);
  // Job 2 admits only after the first wave fully drained.
  EXPECT_EQ(r.admissions.back().job_id, 2);
  EXPECT_EQ(r.admissions.back().step, 4);
}

TEST(ContinuousBatcherTest, BarriersGateAdmissionWaves) {
  RecordingBackend backend;
  ServeOptions so;
  so.max_batch = 8;
  // One group, two expansion rounds: round 1 must not admit until BOTH round-0 jobs done.
  const std::vector<ServeJob> jobs = {
      Job(0, 3, /*group=*/5, /*prompt=*/0, /*context=*/0, /*barrier=*/0),
      Job(1, 1, 5, 0, 0, 0),
      Job(2, 2, 5, 0, 3, 1),
      Job(3, 2, 5, 0, 3, 1),
  };
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  std::map<int, int64_t> admit_step;
  for (const auto& a : r.admissions) {
    admit_step[a.job_id] = a.step;
  }
  std::map<int, int64_t> complete_step;
  for (const auto& c : r.completions) {
    complete_step[c.job_id] = c.step;
  }
  // Round 0's slowest job finishes on step 2; round 1 admits on step 3, not before.
  EXPECT_EQ(complete_step[0], 2);
  EXPECT_GT(admit_step[2], complete_step[0]);
  EXPECT_GT(admit_step[3], complete_step[0]);
  EXPECT_EQ(r.decoded_tokens, 8);
}

TEST(ContinuousBatcherTest, PrefillChargedOncePerPromptGroup) {
  RecordingBackend backend;
  ServeOptions so;
  so.max_batch = 4;
  // Jobs 0-2 share a prompt group (one charge); job 3 pays its own prompt.
  const std::vector<ServeJob> jobs = {
      Job(0, 2, /*group=*/1, /*prompt=*/128),
      Job(1, 2, 1, 128),
      Job(2, 2, 1, 128),
      Job(3, 2, -1, 64),
  };
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  EXPECT_EQ(r.prefilled_tokens, 128 + 64);
  EXPECT_NEAR(r.prefill_s, (128 + 64) * 1e-6, 1e-12);
  EXPECT_NEAR(r.makespan_s, r.prefill_s + r.decode_s, 1e-12);
  // Ungrouped jobs each pay: doubling the lone job's copies doubles the charge.
  RecordingBackend backend2;
  const std::vector<ServeJob> solo = {Job(0, 2, -1, 64), Job(1, 2, -1, 64)};
  const ScheduleResult r2 = ContinuousBatcher(backend2, so).Run(solo);
  EXPECT_EQ(r2.prefilled_tokens, 128);
}

class AnalyticServingTest : public ::testing::Test {
 protected:
  AnalyticServingTest() {
    options_.model = &hllm::Qwen25_1_5B();
    options_.device = &hexsim::OnePlus12();
    engine_ = std::make_unique<hrt::Engine>(options_);
  }
  hrt::EngineOptions options_;
  std::unique_ptr<hrt::Engine> engine_;
};

TEST_F(AnalyticServingTest, StepPricingIsMonotoneInPerSlotContext) {
  AnalyticBackend backend(*engine_);
  const double t64 = backend.BucketedCost(8, 64).total_s;
  const double t1024 = backend.BucketedCost(8, 1024).total_s;
  const double t4096 = backend.BucketedCost(8, 4096).total_s;
  EXPECT_GT(t1024, t64);
  EXPECT_GT(t4096, t1024);
}

TEST_F(AnalyticServingTest, GrowingContextRunsCostAtLeastFixedZeroContext) {
  // The fidelity fix: pricing follows each slot's actual growing KV length, so a run whose
  // slots start deep in context can never be cheaper than one starting from zero.
  std::vector<ServeJob> fresh;
  std::vector<ServeJob> deep;
  for (int i = 0; i < 12; ++i) {
    fresh.push_back(Job(i, 200));
    deep.push_back(Job(i, 200, -1, 0, /*context=*/2048));
  }
  ServeOptions so;
  so.max_batch = 8;
  AnalyticBackend b1(*engine_);
  AnalyticBackend b2(*engine_);
  const ScheduleResult rf = ContinuousBatcher(b1, so).Run(fresh);
  const ScheduleResult rd = ContinuousBatcher(b2, so).Run(deep);
  EXPECT_EQ(rf.steps, rd.steps);
  EXPECT_GT(rd.makespan_s, rf.makespan_s);
  EXPECT_GT(rd.avg_context, rf.avg_context + 2000);
  // Both integrate energy step by step.
  EXPECT_GT(rd.energy_j, rf.energy_j);
  EXPECT_GT(rf.energy_j, 0.0);
}

TEST_F(AnalyticServingTest, ChunkedPrefillAdmissionExtendsMakespan) {
  std::vector<ServeJob> no_prompt;
  std::vector<ServeJob> with_prompt;
  for (int i = 0; i < 8; ++i) {
    no_prompt.push_back(Job(i, 100));
    with_prompt.push_back(Job(i, 100, /*group=*/-1, /*prompt=*/256));
  }
  ServeOptions so;
  so.max_batch = 8;
  AnalyticBackend b1(*engine_);
  AnalyticBackend b2(*engine_);
  const ScheduleResult r0 = ContinuousBatcher(b1, so).Run(no_prompt);
  const ScheduleResult rp = ContinuousBatcher(b2, so).Run(with_prompt);
  EXPECT_EQ(r0.prefill_s, 0.0);
  EXPECT_GT(rp.prefill_s, 0.0);
  EXPECT_EQ(rp.prefilled_tokens, 8 * 256);
  // Prefill cost plus the deeper starting context both push the makespan up.
  EXPECT_GT(rp.makespan_s, r0.makespan_s + rp.prefill_s * 0.99);
}

TEST_F(AnalyticServingTest, TraceRecordsStepsAndAdmissions) {
  std::vector<ServeJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(Job(i, 20, /*group=*/0, /*prompt=*/128));
  }
  ServeOptions so;
  so.max_batch = 4;
  so.record_trace = true;
  so.max_trace_steps = 8;
  AnalyticBackend backend(*engine_);
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  EXPECT_FALSE(r.trace.events().empty());
  const std::string json = r.trace.ToChromeJson();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("lm_head"), std::string::npos);
  // The cap limits traced steps; the run itself is unaffected.
  EXPECT_EQ(r.steps, 20);
  std::set<std::string> lanes;
  for (const auto& e : r.trace.events()) {
    lanes.insert(e.lane);
  }
  EXPECT_TRUE(lanes.count("ADMIT"));
  EXPECT_TRUE(lanes.count("CPU"));
}

// --- the acceptance-criteria centerpiece: both backends, one batcher code path ---

class BackendParityTest : public ::testing::Test {
 protected:
  BackendParityTest()
      : config_(hllm::ToyConfig()),
        weights_(hllm::ModelWeights::Random(config_, 42)),
        dev_(hexsim::OnePlus12()) {
    toy_options_.model = &config_;
    toy_options_.device = &hexsim::OnePlus12();
    toy_engine_ = std::make_unique<hrt::Engine>(toy_options_);
  }

  hllm::ModelConfig config_;
  hllm::ModelWeights weights_;
  hexsim::NpuDevice dev_;
  hrt::EngineOptions toy_options_;
  std::unique_ptr<hrt::Engine> toy_engine_;
};

TEST_F(BackendParityTest, BackendsScheduleIdenticalJobStreamsIdentically) {
  // The same job stream through the same ContinuousBatcher code path, once priced
  // analytically and once actually decoded on the functional toy model: scheduling
  // decisions (admissions, completions, step counts) must agree exactly; only the
  // clock differs.
  const std::vector<ServeJob> jobs = {
      Job(0, 6, /*group=*/0, /*prompt=*/5), Job(1, 3, 0, 5),
      Job(2, 9, 0, 5),                      Job(3, 4, -1, 3),
      Job(4, 5, -1, 0, /*context=*/4),
  };
  ServeOptions so;
  so.max_batch = 3;
  so.record_steps = true;

  AnalyticBackend analytic(*toy_engine_);
  const ScheduleResult ra = ContinuousBatcher(analytic, so).Run(jobs);

  FunctionalBackend functional(dev_, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rf = ContinuousBatcher(functional, so).Run(jobs);

  EXPECT_EQ(ra.steps, rf.steps);
  EXPECT_EQ(ra.decoded_tokens, rf.decoded_tokens);
  EXPECT_EQ(ra.prefilled_tokens, rf.prefilled_tokens);
  EXPECT_EQ(ra.step_active, rf.step_active);
  EXPECT_EQ(ra.step_occupied, rf.step_occupied);
  ASSERT_EQ(ra.admissions.size(), rf.admissions.size());
  for (size_t i = 0; i < ra.admissions.size(); ++i) {
    EXPECT_EQ(ra.admissions[i].job_id, rf.admissions[i].job_id) << i;
    EXPECT_EQ(ra.admissions[i].slot, rf.admissions[i].slot) << i;
    EXPECT_EQ(ra.admissions[i].step, rf.admissions[i].step) << i;
  }
  ASSERT_EQ(ra.completions.size(), rf.completions.size());
  for (size_t i = 0; i < ra.completions.size(); ++i) {
    EXPECT_EQ(ra.completions[i].job_id, rf.completions[i].job_id) << i;
    EXPECT_EQ(ra.completions[i].step, rf.completions[i].step) << i;
  }
  // Both clocks advance; the analytic one prices the full-pipeline cost model.
  EXPECT_GT(ra.makespan_s, 0.0);
  EXPECT_GT(rf.makespan_s, 0.0);
  EXPECT_GT(ra.energy_j, 0.0);
  EXPECT_GT(rf.energy_j, 0.0);
  // Only the functional backend emits real tokens: one per decoded position.
  EXPECT_TRUE(ra.job_tokens.empty());
  ASSERT_EQ(rf.job_tokens.size(), jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(static_cast<int>(rf.job_tokens[j].size()), jobs[j].decode_tokens) << j;
    for (const int tok : rf.job_tokens[j]) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, config_.vocab);
    }
  }
}

TEST_F(BackendParityTest, FunctionalDecodeIsDeterministicAcrossRuns) {
  const std::vector<ServeJob> jobs = {Job(0, 5, -1, 4), Job(1, 7, -1, 2), Job(2, 3)};
  ServeOptions so;
  so.max_batch = 2;
  std::vector<std::vector<std::vector<int>>> outs;
  for (int run = 0; run < 2; ++run) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    FunctionalBackend backend(dev, weights_, so.max_batch, 64);
    outs.push_back(ContinuousBatcher(backend, so).Run(jobs).job_tokens);
  }
  EXPECT_EQ(outs[0], outs[1]);
}

// --- TTS methods served through the batcher ---

TEST(TtsServingTest, BestOfNJobStreamYieldsAccuracyMakespanAndTrace) {
  const htts::TaskSet tasks = htts::GenerateTaskSet(htts::Dataset::kMath500, 20, 3);
  const htts::CapabilityModel cap;
  const double theta = cap.ThetaF16(hllm::Qwen25_1_5B(), htts::Dataset::kMath500);
  const htts::OutcomeRewardModel orm;
  hexllm::Rng rng(11);
  std::vector<ServeJob> jobs;
  const htts::MethodResult res = htts::RunBestOfN(tasks, theta, orm, 8, 2, rng, &jobs);
  // 2 trials x 20 tasks x 8 samples.
  ASSERT_EQ(jobs.size(), 320u);
  std::set<int> groups;
  for (const auto& j : jobs) {
    EXPECT_GE(j.decode_tokens, 16);
    EXPECT_LE(j.decode_tokens, 4 * 1024);
    EXPECT_GT(j.prompt_tokens, 0);
    groups.insert(j.prompt_group);
  }
  EXPECT_EQ(groups.size(), 40u);  // one prompt group per (trial, task)

  hrt::EngineOptions eo;
  eo.model = &hllm::Qwen25_1_5B();
  eo.device = &hexsim::OnePlus12();
  hrt::Engine engine(eo);
  AnalyticBackend backend(engine);
  ServeOptions so;
  so.max_batch = 8;
  so.record_trace = true;
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  // One run: accuracy from the method, latency/energy/trace from the batcher.
  EXPECT_GT(res.accuracy, 0.0);
  EXPECT_LT(res.accuracy, 1.0);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  int64_t want = 0;
  for (const auto& j : jobs) {
    want += j.decode_tokens;
  }
  EXPECT_EQ(r.decoded_tokens, want);
  // Shared prompts charged once per group.
  int64_t group_prompt = 0;
  std::set<int> seen;
  for (const auto& j : jobs) {
    if (seen.insert(j.prompt_group).second) {
      group_prompt += j.prompt_tokens;
    }
  }
  EXPECT_EQ(r.prefilled_tokens, group_prompt);
  EXPECT_NE(r.trace.ToChromeJson().find("traceEvents"), std::string::npos);
}

TEST(TtsServingTest, EmittingJobsDoesNotPerturbAccuracy) {
  const htts::TaskSet tasks = htts::GenerateTaskSet(htts::Dataset::kMath500, 50, 4);
  const htts::OutcomeRewardModel orm;
  hexllm::Rng rng1(5);
  hexllm::Rng rng2(5);
  std::vector<ServeJob> jobs;
  const htts::MethodResult with_jobs = htts::RunBestOfN(tasks, 0.2, orm, 4, 3, rng1, &jobs);
  const htts::MethodResult without = htts::RunBestOfN(tasks, 0.2, orm, 4, 3, rng2);
  EXPECT_EQ(with_jobs.accuracy, without.accuracy);
  EXPECT_EQ(with_jobs.avg_total_tokens, without.avg_total_tokens);
  EXPECT_FALSE(jobs.empty());
}

TEST(TtsServingTest, BeamSearchRoundsBecomeBarrierWaves) {
  const htts::TaskSet tasks = htts::GenerateTaskSet(htts::Dataset::kGsm8k, 4, 9);
  const htts::ProcessRewardModel prm;
  hexllm::Rng rng(3);
  std::vector<ServeJob> jobs;
  htts::RunBeamSearch(tasks, 0.3, prm, 8, 4, 1, rng, &jobs);
  ASSERT_FALSE(jobs.empty());
  // Jobs arrive grouped per task; within a group, barriers cover 0..num_steps-1 with
  // width x expansion jobs per round and context advancing by the round's decode length.
  std::map<int, std::vector<const ServeJob*>> by_group;
  for (const auto& j : jobs) {
    by_group[j.prompt_group].push_back(&j);
  }
  EXPECT_EQ(by_group.size(), tasks.tasks.size());
  for (const auto& [group, gjobs] : by_group) {
    std::map<int, int> per_barrier;
    for (const auto* j : gjobs) {
      per_barrier[j->barrier] += 1;
      EXPECT_EQ(j->context_tokens, j->barrier * j->decode_tokens);
    }
    const int rounds = static_cast<int>(per_barrier.size());
    EXPECT_GE(rounds, 2);
    int count = -1;
    for (int b = 0; b < rounds; ++b) {
      ASSERT_TRUE(per_barrier.count(b)) << "missing round " << b;
      if (count < 0) {
        count = per_barrier[b];
      }
      EXPECT_EQ(per_barrier[b], count);  // same expansion width every round
    }
    EXPECT_EQ(count, 8);  // width x eff_expansion = budget
  }
  // Serve one group's stream: expansion waves must serialize (steps >= rounds x per-round
  // decode), unlike an unconstrained batch.
  hrt::EngineOptions eo;
  eo.model = &hllm::Qwen25_1_5B();
  eo.device = &hexsim::OnePlus12();
  hrt::Engine engine(eo);
  AnalyticBackend backend(engine);
  ServeOptions so;
  so.max_batch = 8;
  const auto& first_group = *by_group.begin()->second.front();
  std::vector<ServeJob> one_group;
  for (const auto& j : jobs) {
    if (j.prompt_group == first_group.prompt_group) {
      one_group.push_back(j);
    }
  }
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(one_group);
  std::map<int, int> per_barrier;
  for (const auto& j : one_group) {
    per_barrier[j.barrier] += 1;
  }
  const int rounds = static_cast<int>(per_barrier.size());
  const int per_round_decode = one_group.front().decode_tokens;
  EXPECT_GE(r.steps, static_cast<int64_t>(rounds) * per_round_decode);
}

// --- speculative decoding (docs/speculative_decoding.md) ---

// A draft smaller than ToyConfig along every axis, sharing the vocabulary (exact-match
// acceptance compares token ids, so draft and target must agree on the id space).
hllm::ModelConfig DraftToyConfig() {
  hllm::ModelConfig c = hllm::ToyConfig();
  c.name = "toy-draft";
  c.params_b = 0.004;
  c.hidden = 64;
  c.layers = 1;
  c.heads = 2;
  c.kv_heads = 2;
  c.head_dim = 32;
  c.ffn_hidden = 128;
  return c;
}

class SpeculativeServingTest : public ::testing::Test {
 protected:
  SpeculativeServingTest()
      : config_(hllm::ToyConfig()),
        draft_config_(DraftToyConfig()),
        weights_(hllm::ModelWeights::Random(config_, 42)),
        draft_weights_(hllm::ModelWeights::Random(draft_config_, 7)) {}

  // Runs `jobs` through a fresh functional backend; gamma <= 0 builds a plain backend.
  ScheduleResult RunFunctional(const std::vector<ServeJob>& jobs, int max_batch, int gamma,
                               int max_context = 96) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    ServeOptions so;
    so.max_batch = max_batch;
    if (gamma <= 0) {
      FunctionalBackend backend(dev, weights_, max_batch, max_context);
      return ContinuousBatcher(backend, so).Run(jobs);
    }
    FunctionalBackend::SpecOptions spec;
    spec.draft = &draft_weights_;
    spec.gamma = gamma;
    FunctionalBackend backend(dev, weights_, max_batch, max_context, /*kv_pool_blocks=*/0,
                              hquant::KvDtype::kF16, hquant::kGroupSize, spec);
    return ContinuousBatcher(backend, so).Run(jobs);
  }

  static std::vector<ServeJob> SpecJobs(int n, int decode, int prompt, bool speculative) {
    std::vector<ServeJob> jobs;
    for (int i = 0; i < n; ++i) {
      ServeJob j = Job(i, decode, /*group=*/-1, prompt);
      j.speculative = speculative;
      jobs.push_back(j);
    }
    return jobs;
  }

  hllm::ModelConfig config_;
  hllm::ModelConfig draft_config_;
  hllm::ModelWeights weights_;
  hllm::ModelWeights draft_weights_;
};

TEST_F(SpeculativeServingTest, GreedySpeculativeMatchesPlainDecodeTokenForToken) {
  // The headline correctness gate: under greedy sampling the committed stream must be
  // BIT-IDENTICAL to plain decode — for any gamma and any lane count. Rejections only cost
  // time (rolled back through the paged-KV tail), never change tokens.
  for (const int max_batch : {1, 3}) {
    for (const int gamma : {1, 2, 4}) {
      const std::vector<ServeJob> jobs = SpecJobs(max_batch, 12, /*prompt=*/8, true);
      const ScheduleResult plain = RunFunctional(SpecJobs(max_batch, 12, 8, false),
                                                 max_batch, /*gamma=*/0);
      const ScheduleResult spec = RunFunctional(jobs, max_batch, gamma);
      ASSERT_TRUE(plain.error.empty()) << plain.error;
      ASSERT_TRUE(spec.error.empty()) << spec.error;
      EXPECT_EQ(spec.job_tokens, plain.job_tokens)
          << "greedy divergence at max_batch=" << max_batch << " gamma=" << gamma;
      EXPECT_EQ(spec.decoded_tokens, plain.decoded_tokens);
      // The cycle accounting is consistent and the run actually drafted.
      EXPECT_GT(spec.spec_cycles, 0);
      EXPECT_GT(spec.spec_proposed_tokens, 0);
      EXPECT_GE(spec.spec_proposed_tokens, spec.spec_accepted_tokens);
      // Accepted proposals remove charged steps (exactly one each in the single-lane
      // case; multi-lane runs end on the slowest lane's cycle count).
      EXPECT_LE(spec.steps, plain.steps);
      if (max_batch == 1) {
        EXPECT_EQ(spec.steps, plain.steps - spec.spec_accepted_tokens);
      }
    }
  }
}

TEST_F(SpeculativeServingTest, AnySamplerSpeculativeMatchesPlainDecodeTokenForToken) {
  // Losslessness holds for ANY sampler, not just greedy: every committed token is sampled
  // from the target's own logits under exact plain-decode conditioning, consuming the
  // per-slot Rng one draw per committed token in stream order.
  std::vector<ServeJob> plain_jobs = SpecJobs(2, 10, /*prompt=*/6, false);
  std::vector<ServeJob> spec_jobs = SpecJobs(2, 10, /*prompt=*/6, true);
  for (int i = 0; i < 2; ++i) {
    hllm::SamplerOptions s;
    s.temperature = 0.9f;
    s.top_k = 8;
    plain_jobs[static_cast<size_t>(i)].sampler = s;
    plain_jobs[static_cast<size_t>(i)].seed = 100 + static_cast<uint64_t>(i);
    spec_jobs[static_cast<size_t>(i)].sampler = s;
    spec_jobs[static_cast<size_t>(i)].seed = 100 + static_cast<uint64_t>(i);
  }
  const ScheduleResult plain = RunFunctional(plain_jobs, /*max_batch=*/2, /*gamma=*/0);
  const ScheduleResult spec = RunFunctional(spec_jobs, /*max_batch=*/2, /*gamma=*/3);
  ASSERT_TRUE(plain.error.empty()) << plain.error;
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  EXPECT_EQ(spec.job_tokens, plain.job_tokens);
  EXPECT_GT(spec.spec_cycles, 0);
}

TEST_F(SpeculativeServingTest, RunGammaCapAndDisableControlTheCycle) {
  const std::vector<ServeJob> jobs = SpecJobs(1, 12, /*prompt=*/8, true);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  FunctionalBackend::SpecOptions spec;
  spec.draft = &draft_weights_;
  spec.gamma = 4;
  FunctionalBackend backend(dev, weights_, 1, 96, 0, hquant::KvDtype::kF16,
                            hquant::kGroupSize, spec);
  // spec_gamma = 0 disables drafting for the whole run even on a spec-capable backend...
  ServeOptions off;
  off.max_batch = 1;
  off.spec_gamma = 0;
  const ScheduleResult r_off = ContinuousBatcher(backend, off).Run(jobs);
  ASSERT_TRUE(r_off.error.empty()) << r_off.error;
  EXPECT_EQ(r_off.spec_cycles, 0);
  EXPECT_EQ(r_off.steps, 12);
  // ...and spec.* metrics stay out of the snapshot entirely (legacy byte-identity).
  bool found = false;
  r_off.metrics.CounterValue("spec.cycles", {}, &found);
  EXPECT_FALSE(found);

  // A positive spec_gamma caps the backend's configured draft length per cycle.
  ServeOptions capped;
  capped.max_batch = 1;
  capped.spec_gamma = 1;
  const ScheduleResult r_cap = ContinuousBatcher(backend, capped).Run(jobs);
  ASSERT_TRUE(r_cap.error.empty()) << r_cap.error;
  EXPECT_GT(r_cap.spec_cycles, 0);
  EXPECT_EQ(r_cap.spec_proposed_tokens, r_cap.spec_cycles);  // one proposal per cycle
  found = false;
  EXPECT_EQ(r_cap.metrics.CounterValue("spec.cycles", {}, &found), r_cap.spec_cycles);
  EXPECT_TRUE(found);
  EXPECT_GE(r_cap.metrics.CounterValue("spec.rollback_blocks"), 0);
}

TEST_F(SpeculativeServingTest, SpeculativeForkChildMatchesPlainForkedDecode) {
  // Rollback on a CoW-forked child: the child's verify appends split the shared tail and a
  // rejected suffix truncates the child's PRIVATE copy — the parent's retained stem and
  // the committed stream must both survive intact.
  const auto forked = [](bool speculative) {
    std::vector<ServeJob> jobs = {Job(0, 4, /*group=*/0, /*prompt=*/8, 0, /*barrier=*/0),
                                  Job(1, 8, 0, 8, /*context=*/4, /*barrier=*/1)};
    jobs[1].parent_job = 0;
    jobs[1].speculative = speculative;
    return jobs;
  };
  const ScheduleResult plain = RunFunctional(forked(false), /*max_batch=*/1, /*gamma=*/0);
  const ScheduleResult spec = RunFunctional(forked(true), /*max_batch=*/1, /*gamma=*/3);
  ASSERT_TRUE(plain.error.empty()) << plain.error;
  ASSERT_TRUE(spec.error.empty()) << spec.error;
  EXPECT_EQ(spec.job_tokens, plain.job_tokens);
  EXPECT_EQ(spec.forked_admissions, 1);
  EXPECT_GT(spec.spec_cycles, 0);
}

TEST_F(SpeculativeServingTest, PauseResumeOfSpeculativeJobIsBitIdentical) {
  // Preempting a drafting job drops its draft KV; resume re-primes the draft and the
  // committed stream continues bit-identically (the target-side snapshot carries sampler
  // state; draft conditioning only moves acceptance).
  const auto run = [&](bool pause) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    FunctionalBackend::SpecOptions spec;
    spec.draft = &draft_weights_;
    spec.gamma = 2;
    FunctionalBackend backend(dev, weights_, 1, 96, 0, hquant::KvDtype::kF16,
                              hquant::kGroupSize, spec);
    ServeOptions so;
    so.max_batch = 1;
    ContinuousBatcher batcher(backend, so);
    ServeJob j = Job(0, 14, /*group=*/-1, /*prompt=*/6);
    j.speculative = true;
    std::string err;
    EXPECT_TRUE(batcher.Submit(j, &err)) << err;
    std::vector<int> tokens;
    const auto drain = [&](int steps) {
      for (int s = 0; s < steps && batcher.HasWork(); ++s) {
        const StepEvents ev = batcher.Step();
        for (const auto& t : ev.tokens) {
          tokens.push_back(t.token);
        }
      }
    };
    drain(3);
    if (pause) {
      EXPECT_TRUE(batcher.PauseJob(0, /*requeue=*/true));
      EXPECT_EQ(batcher.job_state(0), JobState::kPaused);
    }
    while (batcher.HasWork()) {
      drain(1);
    }
    const ScheduleResult r = batcher.Finish();
    EXPECT_TRUE(r.error.empty()) << r.error;
    return tokens;
  };
  const std::vector<int> uninterrupted = run(false);
  const std::vector<int> preempted = run(true);
  EXPECT_EQ(preempted, uninterrupted);
  EXPECT_EQ(uninterrupted.size(), 14u);
}

TEST_F(SpeculativeServingTest, AnalyticSpeculativeSpeedsUpDecodeAndExportsMetrics) {
  // The analytic twin: costs from the calibrated capability model, acceptance from the
  // configured geometric process. At the acceptance-favorable default preset (big target,
  // small draft) speculation must clearly beat plain decode.
  hrt::EngineOptions topt;
  topt.model = &hllm::Qwen25_7B();
  topt.device = &hexsim::OnePlus12();
  hrt::Engine target(topt);
  hrt::EngineOptions dopt;
  dopt.model = &hllm::Qwen25_0_5B();
  dopt.device = &hexsim::OnePlus12();
  hrt::Engine draft(dopt);

  std::vector<ServeJob> plain_jobs;
  std::vector<ServeJob> spec_jobs;
  for (int i = 0; i < 8; ++i) {
    plain_jobs.push_back(Job(i, 96, /*group=*/-1, /*prompt=*/64));
    ServeJob j = Job(i, 96, /*group=*/-1, /*prompt=*/64);
    j.speculative = true;
    spec_jobs.push_back(j);
  }
  ServeOptions so;
  so.max_batch = 4;

  AnalyticBackend b_plain(target);
  const ScheduleResult r_plain = ContinuousBatcher(b_plain, so).Run(plain_jobs);
  ASSERT_TRUE(r_plain.error.empty()) << r_plain.error;

  AnalyticBackend::Options opts;
  opts.draft_engine = &draft;
  opts.spec_gamma = 4;
  opts.spec_acceptance = 0.8;
  AnalyticBackend b_spec(target, opts);
  EXPECT_EQ(b_spec.spec_gamma(), 4);
  const ScheduleResult r_spec = ContinuousBatcher(b_spec, so).Run(spec_jobs);
  ASSERT_TRUE(r_spec.error.empty()) << r_spec.error;

  EXPECT_EQ(r_spec.decoded_tokens, r_plain.decoded_tokens);
  EXPECT_GT(r_spec.spec_cycles, 0);
  EXPECT_LT(r_spec.steps, r_plain.steps);
  EXPECT_GT(r_spec.tokens_per_second, 1.5 * r_plain.tokens_per_second);
  const double acc = r_spec.metrics.GaugeValue("spec.acceptance_rate");
  EXPECT_GT(acc, 0.5);
  EXPECT_LE(acc, 1.0);
  EXPECT_EQ(r_spec.metrics.CounterValue("spec.proposed_tokens"),
            r_spec.spec_proposed_tokens);
  EXPECT_EQ(r_spec.metrics.CounterValue("spec.rejected_tokens"),
            r_spec.spec_proposed_tokens - r_spec.spec_accepted_tokens);
}

}  // namespace
}  // namespace hserve

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/quant/error_stats.h"

namespace hllm {
namespace {

using hexllm::F16;
using hexllm::Rng;

// --- model configs ---

TEST(ModelConfigTest, ParameterCountsMatchPublishedSizes) {
  for (const auto* m : EvaluationModels()) {
    double params = 0.0;
    for (const auto& mat : m->LayerMatrices()) {
      params += static_cast<double>(mat.k) * mat.n;
    }
    params *= m->layers;
    params += static_cast<double>(m->vocab) * m->hidden;  // embedding (tied lm_head)
    EXPECT_NEAR(params / 1e9, m->params_b, 0.12 * m->params_b) << m->name;
  }
}

TEST(ModelConfigTest, DmabufMatchesFigure16) {
  // §7.5: pmap reports 1056 MiB (1.5B) and 2090 MiB (3B) of dmabuf under a 4096-token
  // context budget.
  const int64_t mib = 1 << 20;
  EXPECT_NEAR(static_cast<double>(Qwen25_1_5B().DmabufBytes(4096, 16)) / mib, 1056.0, 80.0);
  EXPECT_NEAR(static_cast<double>(Qwen25_3B().DmabufBytes(4096, 16)) / mib, 2090.0, 150.0);
}

TEST(ModelConfigTest, GqaShapes) {
  const auto& q = Qwen25_1_5B();
  EXPECT_EQ(q.q_dim(), 1536);
  EXPECT_EQ(q.kv_dim(), 256);
  EXPECT_EQ(q.heads % q.kv_heads, 0);
  const auto& l = Llama32_1B();
  EXPECT_EQ(l.q_dim(), 2048);
  EXPECT_EQ(l.kv_dim(), 512);
}

TEST(ModelConfigTest, FfnDownUsesQ8) {
  // §7.1: FFN down matrices use Q8_0 to protect accuracy.
  for (const auto* m : EvaluationModels()) {
    for (const auto& mat : m->LayerMatrices()) {
      if (std::string(mat.name) == "w_down") {
        EXPECT_EQ(mat.scheme, hquant::WeightScheme::kQ8_0);
      } else {
        EXPECT_EQ(mat.scheme, hquant::WeightScheme::kQ4_0);
      }
    }
  }
}

// --- quantized linear ---

TEST(QuantizedLinearTest, DequantizeReconstructsWithinQ4Error) {
  Rng rng(3);
  const int64_t k = 64, n = 64;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto lin = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ4_0);
  const auto back = lin.Dequantize();
  const auto err = hquant::ComputeErrorStats(w, back);
  EXPECT_LT(err.rel_rms, 0.12);
  EXPECT_GT(err.cosine, 0.99);
}

TEST(QuantizedLinearTest, ForwardMatchesDequantizedMatmul) {
  Rng rng(4);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  const int64_t k = 64, n = 96;
  const int m = 3;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  for (const auto scheme : {hquant::WeightScheme::kQ4_0, hquant::WeightScheme::kQ8_0}) {
    const auto lin = QuantizedLinear::Create(w, k, n, scheme);
    const auto wd = lin.Dequantize();
    std::vector<F16> x(static_cast<size_t>(m) * k);
    for (auto& v : x) {
      v = F16(static_cast<float>(rng.NextGaussian() * 0.3));
    }
    std::vector<F16> y(static_cast<size_t>(m) * n);
    lin.Forward(dev, x.data(), y.data(), m);
    for (int mi = 0; mi < m; ++mi) {
      for (int64_t ni = 0; ni < n; ++ni) {
        float expected = 0.0f;
        for (int64_t ki = 0; ki < k; ++ki) {
          expected += x[static_cast<size_t>(mi) * k + ki].ToFloat() *
                      hexllm::RoundToF16(wd[static_cast<size_t>(ni * k + ki)]);
        }
        EXPECT_NEAR(y[static_cast<size_t>(mi) * n + ni].ToFloat(), expected,
                    std::fabs(expected) * 3e-3 + 2e-2);
      }
    }
  }
}

TEST(QuantizedLinearTest, QuantizedBytesMatchBpw) {
  Rng rng(5);
  const int64_t k = 128, n = 128;
  std::vector<float> w(static_cast<size_t>(k * n), 0.01f);
  const auto q4 = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ4_0);
  const auto q8 = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ8_0);
  EXPECT_EQ(q4.quantized_bytes(), k * n * 18 / 32);  // 4.5 bpw
  EXPECT_EQ(q8.quantized_bytes(), k * n * 34 / 32);  // 8.5 bpw
}

// --- KV cache ---

TEST(KvCacheTest, IndexingAndAdvance) {
  const ModelConfig c = ToyConfig();
  KvCache kv(c.layers, c.kv_dim(), /*num_seqs=*/2, /*max_context=*/64);
  EXPECT_EQ(kv.length(0), 0);
  // Writes target the append region: every layer stores its rows for a position, then the
  // sequence advances. Distinct (layer, seq, k/v) rows must not alias.
  kv.KeyRow(0, 0, 0)[0] = F16(1.5f);
  kv.ValueRow(0, 0, 0)[0] = F16(2.0f);
  kv.KeyRow(1, 0, 0)[0] = F16(3.0f);
  kv.KeyRow(0, 1, 0)[0] = F16(4.0f);
  kv.Advance(0);
  EXPECT_EQ(kv.length(0), 1);
  EXPECT_EQ(kv.length(1), 0);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(0, 0, 0)[0].ToFloat(), 1.5f);
  EXPECT_FLOAT_EQ(kv.ValueRowAt(0, 0, 0)[0].ToFloat(), 2.0f);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(1, 0, 0)[0].ToFloat(), 3.0f);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(0, 1, 0)[0].ToFloat(), 4.0f);
  kv.ResetSeq(0);
  EXPECT_EQ(kv.length(0), 0);
}

TEST(KvCacheTest, PoolSizeCoversDenseWorstCase) {
  const ModelConfig c = ToyConfig();
  // The default pool must hold every sequence at full context (dense worst case, no
  // sharing), and the block-pool bytes for one block must match the dense config math.
  KvCache kv(c.layers, c.kv_dim(), /*num_seqs=*/2, /*max_context=*/128);
  EXPECT_GE(kv.num_blocks() * static_cast<int64_t>(kv.block_tokens()),
            2 * static_cast<int64_t>(128));
  EXPECT_EQ(kv.stats().bytes_per_block, c.KvCacheBytes(kv.block_tokens()));
  EXPECT_EQ(kv.byte_size(), kv.num_blocks() * kv.stats().bytes_per_block);
}

// --- functional transformer on the simulator ---

class TransformerTest : public ::testing::Test {
 protected:
  TransformerTest()
      : config_(ToyConfig()),
        weights_(ModelWeights::Random(config_, 42)),
        dev_(hexsim::OnePlus12()) {}

  ModelConfig config_;
  ModelWeights weights_;
  hexsim::NpuDevice dev_;
};

TEST_F(TransformerTest, StepProducesFiniteLogits) {
  Transformer tf(dev_, weights_, /*max_batch=*/2, /*max_context=*/16);
  std::vector<int> tokens{1, 2};
  std::vector<float> logits(2 * static_cast<size_t>(config_.vocab));
  tf.Step(tokens, logits);
  for (const float v : logits) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // Logits are non-degenerate (some spread).
  float mn = logits[0], mx = logits[0];
  for (const float v : logits) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx - mn, 0.01f);
  EXPECT_EQ(tf.kv().length(0), 1);
  EXPECT_EQ(tf.kv().length(1), 1);
}

TEST_F(TransformerTest, DecodeIsDeterministic) {
  std::vector<int> out1;
  std::vector<int> out2;
  for (auto* out : {&out1, &out2}) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<float> logits(static_cast<size_t>(config_.vocab));
    int tok = 7;
    for (int i = 0; i < 6; ++i) {
      tf.Step({&tok, 1}, logits);
      tok = ArgmaxToken(logits);
      out->push_back(tok);
    }
  }
  EXPECT_EQ(out1, out2);
}

TEST_F(TransformerTest, BatchedStepMatchesSingleSequence) {
  // Two independent sequences decoded as a batch must produce the same logits as decoding
  // each alone (row independence of every kernel).
  std::vector<float> logits_batch(2 * static_cast<size_t>(config_.vocab));
  {
    Transformer tf(dev_, weights_, 2, 16);
    std::vector<int> tokens{5, 9};
    tf.Step(tokens, logits_batch);
  }
  for (int seq = 0; seq < 2; ++seq) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<float> logits(static_cast<size_t>(config_.vocab));
    const int tok = (seq == 0) ? 5 : 9;
    tf.Step({&tok, 1}, logits);
    for (int64_t v = 0; v < config_.vocab; ++v) {
      EXPECT_NEAR(logits[static_cast<size_t>(v)],
                  logits_batch[static_cast<size_t>(seq * config_.vocab + v)], 1e-3)
          << "seq " << seq << " vocab " << v;
    }
  }
}

TEST_F(TransformerTest, PrefillAdvancesContext) {
  Transformer tf(dev_, weights_, 1, 16);
  std::vector<int> prompt{1, 2, 3, 4};
  tf.Prefill(0, prompt);
  EXPECT_EQ(tf.kv().length(0), 4);
}

TEST_F(TransformerTest, ChunkedPrefillMatchesTokenByToken) {
  // Causal chunked prefill must leave the model in the same state as decoding the prompt
  // token by token: the next-step logits agree.
  const std::vector<int> prompt{11, 402, 3, 77, 250, 9, 18};
  std::vector<float> logits_chunked(static_cast<size_t>(config_.vocab));
  std::vector<float> logits_stepwise(static_cast<size_t>(config_.vocab));
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 64);
    tf.Prefill(0, prompt);
    const int tok = 5;
    tf.Step({&tok, 1}, logits_chunked);
  }
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 64);
    std::vector<float> scratch(static_cast<size_t>(config_.vocab));
    for (const int t : prompt) {
      tf.Step({&t, 1}, scratch);
    }
    const int tok = 5;
    tf.Step({&tok, 1}, logits_stepwise);
  }
  for (int64_t v = 0; v < config_.vocab; ++v) {
    EXPECT_NEAR(logits_chunked[static_cast<size_t>(v)],
                logits_stepwise[static_cast<size_t>(v)], 0.02)
        << v;
  }
}

TEST_F(TransformerTest, MultiChunkPrefillCrossesChunkBoundary) {
  // Prompts longer than one 32-token chunk must still produce coherent state.
  std::vector<int> prompt(40);
  for (size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<int>((i * 13 + 7) % 512);
  }
  Transformer tf(dev_, weights_, 1, 64);
  tf.Prefill(0, prompt);
  EXPECT_EQ(tf.kv().length(0), 40);
  std::vector<float> logits(static_cast<size_t>(config_.vocab));
  const int tok = 2;
  tf.Step({&tok, 1}, logits);
  for (const float v : logits) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(TransformerTest, ContextChangesPrediction) {
  // The same input token after different prefixes must yield different logits (attention
  // actually reads the KV cache).
  std::vector<float> a(static_cast<size_t>(config_.vocab));
  std::vector<float> b(static_cast<size_t>(config_.vocab));
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<int> prompt{1, 2, 3};
    tf.Prefill(0, prompt);
    const int tok = 8;
    tf.Step({&tok, 1}, a);
  }
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<int> prompt{400, 301, 77};
    tf.Prefill(0, prompt);
    const int tok = 8;
    tf.Step({&tok, 1}, b);
  }
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += std::fabs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 0.01);
}

TEST_F(TransformerTest, ChargesAllEngineCategories) {
  Transformer tf(dev_, weights_, 1, 16);
  std::vector<float> logits(static_cast<size_t>(config_.vocab));
  const int tok = 3;
  tf.Step({&tok, 1}, logits);
  const auto& ledger = dev_.ledger();
  EXPECT_GT(ledger.TagSeconds("linear.dequant"), 0.0);
  EXPECT_GT(ledger.TagSeconds("gemm.hmx"), 0.0);
  EXPECT_GT(ledger.TagSeconds("attn.softmax"), 0.0);
  EXPECT_GT(ledger.TagSeconds("misc.rmsnorm"), 0.0);
  EXPECT_GT(ledger.TagSeconds("misc.silu"), 0.0);
}

// --- sampling ---

TEST(SamplingTest, GreedyPicksArgmax) {
  std::vector<float> logits{0.1f, 2.0f, -1.0f, 1.9f};
  EXPECT_EQ(ArgmaxToken(logits), 1);
  Rng rng(1);
  SamplerOptions opts;
  opts.temperature = 0.0f;
  EXPECT_EQ(SampleToken(logits, opts, rng), 1);
}

TEST(SamplingTest, TemperatureSamplingFollowsDistribution) {
  std::vector<float> logits{std::log(0.7f), std::log(0.2f), std::log(0.1f)};
  Rng rng(2);
  SamplerOptions opts;
  opts.temperature = 1.0f;
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleToken(logits, opts, rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(SamplingTest, TopKRestrictsSupport) {
  std::vector<float> logits{5.0f, 4.0f, -10.0f, 3.0f};
  Rng rng(3);
  SamplerOptions opts;
  opts.temperature = 2.0f;
  opts.top_k = 2;
  for (int i = 0; i < 500; ++i) {
    const int t = SampleToken(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(SamplingTest, TopPRestrictsTail) {
  std::vector<float> logits{std::log(0.6f), std::log(0.3f), std::log(0.05f),
                            std::log(0.05f)};
  Rng rng(4);
  SamplerOptions opts;
  opts.temperature = 1.0f;
  opts.top_p = 0.85f;
  for (int i = 0; i < 500; ++i) {
    const int t = SampleToken(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(SamplingTest, TokenLogProbIsConsistent) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  double total = 0.0;
  for (int t = 0; t < 3; ++t) {
    total += std::exp(TokenLogProb(logits, t, 1.0f));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(TokenLogProb(logits, 2, 1.0f), TokenLogProb(logits, 0, 1.0f));
}

}  // namespace
}  // namespace hllm

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/exec/thread_pool.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/lm_head.h"
#include "src/kernels/misc_ops.h"
#include "src/llm/model_config.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/obs/metrics.h"
#include "src/quant/error_stats.h"
#include "src/serving/execution_backend.h"

// Global heap-allocation counter backing SteadyStateDecodeDoesNotHeapAllocate: replacing
// the allocation functions in one TU replaces them binary-wide, so every operator new in
// the test process funnels through the counter. malloc/free-compatible, as required of
// replacements.
static std::atomic<int64_t> g_heap_allocs{0};

namespace {
void* CountedAlloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return CountedAlloc(n); }
void* operator new[](std::size_t n) { return CountedAlloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new(std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return CountedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace hllm {
namespace {

using hexllm::F16;
using hexllm::Rng;

// --- model configs ---

TEST(ModelConfigTest, ParameterCountsMatchPublishedSizes) {
  for (const auto* m : EvaluationModels()) {
    double params = 0.0;
    for (const auto& mat : m->LayerMatrices()) {
      params += static_cast<double>(mat.k) * mat.n;
    }
    params *= m->layers;
    params += static_cast<double>(m->vocab) * m->hidden;  // embedding (tied lm_head)
    EXPECT_NEAR(params / 1e9, m->params_b, 0.12 * m->params_b) << m->name;
  }
}

TEST(ModelConfigTest, DmabufMatchesFigure16) {
  // §7.5: pmap reports 1056 MiB (1.5B) and 2090 MiB (3B) of dmabuf under a 4096-token
  // context budget.
  const int64_t mib = 1 << 20;
  EXPECT_NEAR(static_cast<double>(Qwen25_1_5B().DmabufBytes(4096, 16)) / mib, 1056.0, 80.0);
  EXPECT_NEAR(static_cast<double>(Qwen25_3B().DmabufBytes(4096, 16)) / mib, 2090.0, 150.0);
}

TEST(ModelConfigTest, GqaShapes) {
  const auto& q = Qwen25_1_5B();
  EXPECT_EQ(q.q_dim(), 1536);
  EXPECT_EQ(q.kv_dim(), 256);
  EXPECT_EQ(q.heads % q.kv_heads, 0);
  const auto& l = Llama32_1B();
  EXPECT_EQ(l.q_dim(), 2048);
  EXPECT_EQ(l.kv_dim(), 512);
}

TEST(ModelConfigTest, FfnDownUsesQ8) {
  // §7.1: FFN down matrices use Q8_0 to protect accuracy.
  for (const auto* m : EvaluationModels()) {
    for (const auto& mat : m->LayerMatrices()) {
      if (std::string(mat.name) == "w_down") {
        EXPECT_EQ(mat.scheme, hquant::WeightScheme::kQ8_0);
      } else {
        EXPECT_EQ(mat.scheme, hquant::WeightScheme::kQ4_0);
      }
    }
  }
}

// --- quantized linear ---

TEST(QuantizedLinearTest, DequantizeReconstructsWithinQ4Error) {
  Rng rng(3);
  const int64_t k = 64, n = 64;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto lin = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ4_0);
  const auto back = lin.Dequantize();
  const auto err = hquant::ComputeErrorStats(w, back);
  EXPECT_LT(err.rel_rms, 0.12);
  EXPECT_GT(err.cosine, 0.99);
}

TEST(QuantizedLinearTest, ForwardMatchesDequantizedMatmul) {
  Rng rng(4);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  const int64_t k = 64, n = 96;
  const int m = 3;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  for (const auto scheme : {hquant::WeightScheme::kQ4_0, hquant::WeightScheme::kQ8_0}) {
    const auto lin = QuantizedLinear::Create(w, k, n, scheme);
    const auto wd = lin.Dequantize();
    std::vector<F16> x(static_cast<size_t>(m) * k);
    for (auto& v : x) {
      v = F16(static_cast<float>(rng.NextGaussian() * 0.3));
    }
    std::vector<F16> y(static_cast<size_t>(m) * n);
    lin.Forward(dev, x.data(), y.data(), m);
    for (int mi = 0; mi < m; ++mi) {
      for (int64_t ni = 0; ni < n; ++ni) {
        float expected = 0.0f;
        for (int64_t ki = 0; ki < k; ++ki) {
          expected += x[static_cast<size_t>(mi) * k + ki].ToFloat() *
                      hexllm::RoundToF16(wd[static_cast<size_t>(ni * k + ki)]);
        }
        EXPECT_NEAR(y[static_cast<size_t>(mi) * n + ni].ToFloat(), expected,
                    std::fabs(expected) * 3e-3 + 2e-2);
      }
    }
  }
}

TEST(QuantizedLinearTest, QuantizedBytesMatchBpw) {
  Rng rng(5);
  const int64_t k = 128, n = 128;
  std::vector<float> w(static_cast<size_t>(k * n), 0.01f);
  const auto q4 = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ4_0);
  const auto q8 = QuantizedLinear::Create(w, k, n, hquant::WeightScheme::kQ8_0);
  EXPECT_EQ(q4.quantized_bytes(), k * n * 18 / 32);  // 4.5 bpw
  EXPECT_EQ(q8.quantized_bytes(), k * n * 34 / 32);  // 8.5 bpw
}

// --- KV cache ---

TEST(KvCacheTest, IndexingAndAdvance) {
  const ModelConfig c = ToyConfig();
  KvCache kv(c.layers, c.kv_dim(), /*num_seqs=*/2, /*max_context=*/64);
  EXPECT_EQ(kv.length(0), 0);
  // Writes target the append region: every layer stores its rows for a position, then the
  // sequence advances. Distinct (layer, seq, k/v) rows must not alias.
  kv.KeyRow(0, 0, 0)[0] = F16(1.5f);
  kv.ValueRow(0, 0, 0)[0] = F16(2.0f);
  kv.KeyRow(1, 0, 0)[0] = F16(3.0f);
  kv.KeyRow(0, 1, 0)[0] = F16(4.0f);
  kv.Advance(0);
  EXPECT_EQ(kv.length(0), 1);
  EXPECT_EQ(kv.length(1), 0);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(0, 0, 0)[0].ToFloat(), 1.5f);
  EXPECT_FLOAT_EQ(kv.ValueRowAt(0, 0, 0)[0].ToFloat(), 2.0f);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(1, 0, 0)[0].ToFloat(), 3.0f);
  EXPECT_FLOAT_EQ(kv.KeyRowAt(0, 1, 0)[0].ToFloat(), 4.0f);
  kv.ResetSeq(0);
  EXPECT_EQ(kv.length(0), 0);
}

TEST(KvCacheTest, PoolSizeCoversDenseWorstCase) {
  const ModelConfig c = ToyConfig();
  // The default pool must hold every sequence at full context (dense worst case, no
  // sharing), and the block-pool bytes for one block must match the dense config math.
  KvCache kv(c.layers, c.kv_dim(), /*num_seqs=*/2, /*max_context=*/128);
  EXPECT_GE(kv.num_blocks() * static_cast<int64_t>(kv.block_tokens()),
            2 * static_cast<int64_t>(128));
  EXPECT_EQ(kv.stats().bytes_per_block, c.KvCacheBytes(kv.block_tokens()));
  EXPECT_EQ(kv.byte_size(), kv.num_blocks() * kv.stats().bytes_per_block);
}

// --- functional transformer on the simulator ---

class TransformerTest : public ::testing::Test {
 protected:
  TransformerTest()
      : config_(ToyConfig()),
        weights_(ModelWeights::Random(config_, 42)),
        dev_(hexsim::OnePlus12()) {}

  ModelConfig config_;
  ModelWeights weights_;
  hexsim::NpuDevice dev_;
};

TEST_F(TransformerTest, StepProducesFiniteLogits) {
  Transformer tf(dev_, weights_, /*max_batch=*/2, /*max_context=*/16);
  std::vector<int> tokens{1, 2};
  std::vector<float> logits(2 * static_cast<size_t>(config_.vocab));
  tf.Step(tokens, logits);
  for (const float v : logits) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // Logits are non-degenerate (some spread).
  float mn = logits[0], mx = logits[0];
  for (const float v : logits) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx - mn, 0.01f);
  EXPECT_EQ(tf.kv().length(0), 1);
  EXPECT_EQ(tf.kv().length(1), 1);
}

TEST_F(TransformerTest, DecodeIsDeterministic) {
  std::vector<int> out1;
  std::vector<int> out2;
  for (auto* out : {&out1, &out2}) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<float> logits(static_cast<size_t>(config_.vocab));
    int tok = 7;
    for (int i = 0; i < 6; ++i) {
      tf.Step({&tok, 1}, logits);
      tok = ArgmaxToken(logits);
      out->push_back(tok);
    }
  }
  EXPECT_EQ(out1, out2);
}

TEST_F(TransformerTest, FullCoverageWindowDecodesBitIdenticalTokens) {
  // A sliding window + sinks covering the whole (short) context must be normalized away
  // end-to-end: tokens AND logits stay bit-identical to the unwindowed transformer
  // (docs/long_context.md's CI invariant).
  std::vector<std::vector<int>> outs;
  std::vector<std::vector<float>> last_logits;
  for (int use_window = 0; use_window < 2; ++use_window) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    if (use_window != 0) {
      hkern::AttnWindowSpec w;
      w.sink_blocks = 1;
      w.window_blocks = 8;  // >= the 16-token context in blocks — full coverage
      tf.SetAttentionWindow(w);
      ASSERT_TRUE(tf.attention_window().enabled());
    }
    std::vector<float> logits(static_cast<size_t>(config_.vocab));
    std::vector<int> out;
    int tok = 7;
    for (int i = 0; i < 6; ++i) {
      tf.Step({&tok, 1}, logits);
      tok = ArgmaxToken(logits);
      out.push_back(tok);
    }
    outs.push_back(std::move(out));
    last_logits.push_back(std::move(logits));
  }
  EXPECT_EQ(outs[0], outs[1]);
  for (size_t i = 0; i < last_logits[0].size(); ++i) {
    ASSERT_EQ(last_logits[0][i], last_logits[1][i]) << i;
  }
}

TEST_F(TransformerTest, BatchedStepMatchesSingleSequence) {
  // Two independent sequences decoded as a batch must produce the same logits as decoding
  // each alone (row independence of every kernel).
  std::vector<float> logits_batch(2 * static_cast<size_t>(config_.vocab));
  {
    Transformer tf(dev_, weights_, 2, 16);
    std::vector<int> tokens{5, 9};
    tf.Step(tokens, logits_batch);
  }
  for (int seq = 0; seq < 2; ++seq) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<float> logits(static_cast<size_t>(config_.vocab));
    const int tok = (seq == 0) ? 5 : 9;
    tf.Step({&tok, 1}, logits);
    for (int64_t v = 0; v < config_.vocab; ++v) {
      EXPECT_NEAR(logits[static_cast<size_t>(v)],
                  logits_batch[static_cast<size_t>(seq * config_.vocab + v)], 1e-3)
          << "seq " << seq << " vocab " << v;
    }
  }
}

TEST_F(TransformerTest, PrefillAdvancesContext) {
  Transformer tf(dev_, weights_, 1, 16);
  std::vector<int> prompt{1, 2, 3, 4};
  tf.Prefill(0, prompt);
  EXPECT_EQ(tf.kv().length(0), 4);
}

TEST_F(TransformerTest, ChunkedPrefillMatchesTokenByToken) {
  // Causal chunked prefill must leave the model in the same state as decoding the prompt
  // token by token: the next-step logits agree.
  const std::vector<int> prompt{11, 402, 3, 77, 250, 9, 18};
  std::vector<float> logits_chunked(static_cast<size_t>(config_.vocab));
  std::vector<float> logits_stepwise(static_cast<size_t>(config_.vocab));
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 64);
    tf.Prefill(0, prompt);
    const int tok = 5;
    tf.Step({&tok, 1}, logits_chunked);
  }
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 64);
    std::vector<float> scratch(static_cast<size_t>(config_.vocab));
    for (const int t : prompt) {
      tf.Step({&t, 1}, scratch);
    }
    const int tok = 5;
    tf.Step({&tok, 1}, logits_stepwise);
  }
  for (int64_t v = 0; v < config_.vocab; ++v) {
    EXPECT_NEAR(logits_chunked[static_cast<size_t>(v)],
                logits_stepwise[static_cast<size_t>(v)], 0.02)
        << v;
  }
}

TEST_F(TransformerTest, MultiChunkPrefillCrossesChunkBoundary) {
  // Prompts longer than one 32-token chunk must still produce coherent state.
  std::vector<int> prompt(40);
  for (size_t i = 0; i < prompt.size(); ++i) {
    prompt[i] = static_cast<int>((i * 13 + 7) % 512);
  }
  Transformer tf(dev_, weights_, 1, 64);
  tf.Prefill(0, prompt);
  EXPECT_EQ(tf.kv().length(0), 40);
  std::vector<float> logits(static_cast<size_t>(config_.vocab));
  const int tok = 2;
  tf.Step({&tok, 1}, logits);
  for (const float v : logits) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(TransformerTest, ContextChangesPrediction) {
  // The same input token after different prefixes must yield different logits (attention
  // actually reads the KV cache).
  std::vector<float> a(static_cast<size_t>(config_.vocab));
  std::vector<float> b(static_cast<size_t>(config_.vocab));
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<int> prompt{1, 2, 3};
    tf.Prefill(0, prompt);
    const int tok = 8;
    tf.Step({&tok, 1}, a);
  }
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    Transformer tf(dev, weights_, 1, 16);
    std::vector<int> prompt{400, 301, 77};
    tf.Prefill(0, prompt);
    const int tok = 8;
    tf.Step({&tok, 1}, b);
  }
  double diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff += std::fabs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 0.01);
}

TEST_F(TransformerTest, ChargesAllEngineCategories) {
  Transformer tf(dev_, weights_, 1, 16);
  std::vector<float> logits(static_cast<size_t>(config_.vocab));
  const int tok = 3;
  tf.Step({&tok, 1}, logits);
  const auto& ledger = dev_.ledger();
  EXPECT_GT(ledger.TagSeconds("linear.dequant"), 0.0);
  EXPECT_GT(ledger.TagSeconds("gemm.hmx"), 0.0);
  EXPECT_GT(ledger.TagSeconds("attn.softmax"), 0.0);
  EXPECT_GT(ledger.TagSeconds("misc.rmsnorm"), 0.0);
  EXPECT_GT(ledger.TagSeconds("misc.silu"), 0.0);
}

// --- zero-copy decode hot path (docs/performance.md) ---

// Per-sequence contiguous K/V history for the gather-style reference decode.
struct GatherSeq {
  std::vector<std::vector<F16>> k;  // [layer] -> [len * kv_dim] rows
  std::vector<std::vector<F16>> v;

  explicit GatherSeq(int layers) : k(static_cast<size_t>(layers)), v(static_cast<size_t>(layers)) {}
};

// One decode step in the pre-zero-copy style: heap scratch, per-head gather of K/V into
// contiguous buffers consumed by the contiguous FlashAttentionF16, theta_base RoPE, and
// the all-F16 lm_head. The production Step (in-place paged attention, persistent
// workspace, dequant-once replay, blocked FP32 lm_head) must match this bit-for-bit in
// logits AND in every simulated charge.
void GatherReferenceStep(hexsim::NpuDevice& dev, const hkern::ExpLut& lut,
                         const ModelWeights& weights, std::span<const int> tokens,
                         std::span<GatherSeq* const> seqs, std::span<float> logits) {
  const ModelConfig& c = weights.config;
  const int batch = static_cast<int>(tokens.size());
  const int hidden = c.hidden;
  const int q_dim = static_cast<int>(c.q_dim());
  const int kv_dim = static_cast<int>(c.kv_dim());
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  std::vector<F16> x(static_cast<size_t>(batch) * hidden);
  std::vector<F16> xn(static_cast<size_t>(batch) * hidden);
  std::vector<F16> q(static_cast<size_t>(batch) * q_dim);
  std::vector<F16> k(static_cast<size_t>(batch) * kv_dim);
  std::vector<F16> v(static_cast<size_t>(batch) * kv_dim);
  std::vector<F16> attn(static_cast<size_t>(batch) * q_dim);
  std::vector<F16> proj(static_cast<size_t>(batch) * hidden);
  std::vector<F16> gate(static_cast<size_t>(batch) * c.ffn_hidden);
  std::vector<F16> up(static_cast<size_t>(batch) * c.ffn_hidden);
  std::vector<F16> act(static_cast<size_t>(batch) * c.ffn_hidden);
  std::vector<F16> kbuf;
  std::vector<F16> vbuf;

  for (int b = 0; b < batch; ++b) {
    std::memcpy(x.data() + static_cast<int64_t>(b) * hidden,
                weights.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(b)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights.layers[static_cast<size_t>(l)];
    hkern::RmsNormF16(dev, x.data(), lw.attn_norm.data(), xn.data(), batch, hidden,
                      c.rms_eps);
    lw.wq.Forward(dev, xn.data(), q.data(), batch);
    lw.wk.Forward(dev, xn.data(), k.data(), batch);
    lw.wv.Forward(dev, xn.data(), v.data(), batch);

    for (int b = 0; b < batch; ++b) {
      GatherSeq& s = *seqs[static_cast<size_t>(b)];
      const int pos = static_cast<int>(s.k[static_cast<size_t>(l)].size()) / kv_dim;
      hkern::RopeHeadsF16(dev, q.data() + static_cast<int64_t>(b) * q_dim, c.heads, dh, pos,
                          c.rope_theta);
      hkern::RopeHeadsF16(dev, k.data() + static_cast<int64_t>(b) * kv_dim, c.kv_heads, dh,
                          pos, c.rope_theta);
      s.k[static_cast<size_t>(l)].insert(s.k[static_cast<size_t>(l)].end(),
                                         k.begin() + static_cast<int64_t>(b) * kv_dim,
                                         k.begin() + static_cast<int64_t>(b + 1) * kv_dim);
      s.v[static_cast<size_t>(l)].insert(s.v[static_cast<size_t>(l)].end(),
                                         v.begin() + static_cast<int64_t>(b) * kv_dim,
                                         v.begin() + static_cast<int64_t>(b + 1) * kv_dim);
    }

    for (int b = 0; b < batch; ++b) {
      GatherSeq& s = *seqs[static_cast<size_t>(b)];
      const int kv_len = static_cast<int>(s.k[static_cast<size_t>(l)].size()) / kv_dim;
      kbuf.resize(static_cast<size_t>(kv_len) * dh);
      vbuf.resize(static_cast<size_t>(kv_len) * dh);
      for (int h = 0; h < c.heads; ++h) {
        const int kvh = h / group;
        for (int p = 0; p < kv_len; ++p) {
          std::memcpy(kbuf.data() + static_cast<int64_t>(p) * dh,
                      s.k[static_cast<size_t>(l)].data() +
                          static_cast<int64_t>(p) * kv_dim + static_cast<int64_t>(kvh) * dh,
                      static_cast<size_t>(dh) * 2);
          std::memcpy(vbuf.data() + static_cast<int64_t>(p) * dh,
                      s.v[static_cast<size_t>(l)].data() +
                          static_cast<int64_t>(p) * kv_dim + static_cast<int64_t>(kvh) * dh,
                      static_cast<size_t>(dh) * 2);
        }
        hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut,
                                 q.data() + static_cast<int64_t>(b) * q_dim + h * dh,
                                 kbuf.data(), vbuf.data(),
                                 attn.data() + static_cast<int64_t>(b) * q_dim + h * dh,
                                 /*q_len=*/1, kv_len, dh, scale);
      }
    }

    lw.wo.Forward(dev, attn.data(), proj.data(), batch);
    hkern::AddF16(dev, x.data(), proj.data(), x.data(), static_cast<int64_t>(batch) * hidden);
    hkern::RmsNormF16(dev, x.data(), lw.ffn_norm.data(), xn.data(), batch, hidden, c.rms_eps);
    lw.w_gate.Forward(dev, xn.data(), gate.data(), batch);
    lw.w_up.Forward(dev, xn.data(), up.data(), batch);
    hkern::SiluMulF16(dev, gate.data(), up.data(), act.data(),
                      static_cast<int64_t>(batch) * c.ffn_hidden);
    lw.w_down.Forward(dev, act.data(), proj.data(), batch);
    hkern::AddF16(dev, x.data(), proj.data(), x.data(), static_cast<int64_t>(batch) * hidden);
  }

  hkern::RmsNormF16(dev, x.data(), weights.final_norm.data(), xn.data(), batch, hidden,
                    c.rms_eps);
  hkern::LmHeadForward(xn.data(), weights.lm_head.data(), logits.data(), batch, hidden,
                       c.vocab);
}

// Asserts the full simulated-activity profile of two devices is identical: every event
// count, DDR byte, per-unit instruction counter, and (same charges in the same order, so
// exactly equal) every busy-second total and tag.
void ExpectSameCharges(const hexsim::NpuDevice& a, const hexsim::NpuDevice& b) {
  EXPECT_EQ(a.ledger().counts(), b.ledger().counts());
  EXPECT_EQ(a.ledger().dma_bytes(), b.ledger().dma_bytes());
  EXPECT_EQ(a.hmx().tile_ops(), b.hmx().tile_ops());
  EXPECT_EQ(a.hvx().packets(), b.hvx().packets());
  EXPECT_EQ(a.hvx().vgather_ops(), b.hvx().vgather_ops());
  EXPECT_EQ(a.hvx().vscatter_ops(), b.hvx().vscatter_ops());
  EXPECT_EQ(a.hvx().vlut16_ops(), b.hvx().vlut16_ops());
  for (int e = 0; e < static_cast<int>(hexsim::Engine::kCount); ++e) {
    EXPECT_DOUBLE_EQ(a.ledger().EngineSeconds(static_cast<hexsim::Engine>(e)),
                     b.ledger().EngineSeconds(static_cast<hexsim::Engine>(e)))
        << hexsim::EngineName(static_cast<hexsim::Engine>(e));
  }
  ASSERT_EQ(a.ledger().tags().size(), b.ledger().tags().size());
  auto ib = b.ledger().tags().begin();
  for (const auto& [tag, seconds] : a.ledger().tags()) {
    EXPECT_EQ(tag, ib->first);
    EXPECT_DOUBLE_EQ(seconds, ib->second) << tag;
    ++ib;
  }
}

TEST_F(TransformerTest, PagedAttentionMatchesGatherReference) {
  // Multi-layer, GQA (4 heads over 2 KV heads), with a copy-on-write fork mid-decode: the
  // in-place paged attention path must reproduce the gather-style reference decode down to
  // the last logit bit and the last simulated counter.
  hexec::ParallelismOverride serial(1);
  const int64_t vocab = config_.vocab;

  hexsim::NpuDevice dev_ref(hexsim::OnePlus12());
  hkern::ExpLut ref_lut(dev_ref);
  GatherSeq ref0(config_.layers);
  GatherSeq ref1(config_.layers);

  Transformer tf(dev_, weights_, /*max_batch=*/2, /*max_context=*/16);
  std::vector<float> logits(2 * static_cast<size_t>(vocab));
  std::vector<float> ref_logits(2 * static_cast<size_t>(vocab));

  // Phase 1: three steps of sequence 0 alone.
  std::vector<int> tokens{7};
  std::vector<int> seq_ids{0};
  std::vector<GatherSeq*> ref_seqs{&ref0};
  for (int step = 0; step < 3; ++step) {
    tf.StepSeqs(tokens, seq_ids, std::span<float>(logits.data(), static_cast<size_t>(vocab)));
    GatherReferenceStep(dev_ref, ref_lut, weights_, tokens, ref_seqs,
                        std::span<float>(ref_logits.data(), static_cast<size_t>(vocab)));
    ASSERT_EQ(std::memcmp(logits.data(), ref_logits.data(), sizeof(float) * vocab), 0)
        << "phase-1 step " << step;
    tokens[0] = ArgmaxToken(std::span<const float>(logits.data(), static_cast<size_t>(vocab)));
  }

  // Fork sequence 0 into sequence 1: paged cache shares the blocks copy-on-write, the
  // reference duplicates the history.
  const int64_t handle = tf.kv().Retain(0);
  tf.kv().ShareFromHandle(handle, /*dst_seq=*/1, tf.kv().handle_length(handle));
  tf.kv().DropHandle(handle);
  ASSERT_EQ(tf.kv().length(1), 3);
  ref1 = ref0;

  // Phase 2: the sequences diverge — the first write into the shared tail block must
  // CoW-split it, never perturbing sequence 0.
  tokens = {tokens[0], (tokens[0] + 11) % static_cast<int>(vocab)};
  seq_ids = {0, 1};
  ref_seqs = {&ref0, &ref1};
  for (int step = 0; step < 4; ++step) {
    tf.StepSeqs(tokens, seq_ids, logits);
    GatherReferenceStep(dev_ref, ref_lut, weights_, tokens, ref_seqs, ref_logits);
    ASSERT_EQ(std::memcmp(logits.data(), ref_logits.data(), sizeof(float) * 2 * vocab), 0)
        << "phase-2 step " << step;
    for (int b = 0; b < 2; ++b) {
      tokens[static_cast<size_t>(b)] = ArgmaxToken(std::span<const float>(
          logits.data() + static_cast<int64_t>(b) * vocab, static_cast<size_t>(vocab)));
    }
  }
  EXPECT_GE(tf.kv().stats().cow_splits, 1);

  ExpectSameCharges(dev_, dev_ref);
}

TEST_F(TransformerTest, WeightCacheReplayParity) {
  // Dequant-once cache replay must be invisible to the simulation: identical logits,
  // decoded tokens, and charge profile whether every Forward re-simulates the dequant
  // (cache off) or replays the memoized charges (cache on).
  struct WeightCacheGuard {
    bool prev = WeightCacheEnabled();
    ~WeightCacheGuard() { SetWeightCacheEnabled(prev); }
  } guard;
  hexec::ParallelismOverride serial(1);
  const int64_t vocab = config_.vocab;
  const int steps = 5;

  std::vector<std::vector<float>> logits_runs[2];
  std::vector<int> token_runs[2];
  hexsim::NpuDevice dev_off(hexsim::OnePlus12());
  hexsim::NpuDevice dev_on(hexsim::OnePlus12());
  for (int run = 0; run < 2; ++run) {
    SetWeightCacheEnabled(run == 1);
    hexsim::NpuDevice& dev = (run == 0) ? dev_off : dev_on;
    Transformer tf(dev, weights_, 1, 16);
    std::vector<float> logits(static_cast<size_t>(vocab));
    int tok = 3;
    for (int i = 0; i < steps; ++i) {
      tf.Step({&tok, 1}, logits);
      tok = ArgmaxToken(logits);
      logits_runs[run].push_back(logits);
      token_runs[run].push_back(tok);
    }
  }

  EXPECT_EQ(token_runs[0], token_runs[1]);
  for (int i = 0; i < steps; ++i) {
    EXPECT_EQ(std::memcmp(logits_runs[0][static_cast<size_t>(i)].data(),
                          logits_runs[1][static_cast<size_t>(i)].data(),
                          sizeof(float) * vocab),
              0)
        << "step " << i;
  }
  EXPECT_GT(dev_on.ledger().Count("kernel.dequant_coalesced_lut.calls"), 0);
  ExpectSameCharges(dev_off, dev_on);
}

TEST_F(TransformerTest, SteadyStateDecodeDoesNotHeapAllocate) {
  // The zero-alloc contract (docs/performance.md): after warmup (workspace sized, weight
  // caches filled, ledger tags registered), a decode step performs no heap allocation at
  // all — counted through the binary-wide operator new replacements above.
  hexec::ParallelismOverride serial(1);
  Transformer tf(dev_, weights_, /*max_batch=*/2, /*max_context=*/64);
  std::vector<int> tokens{3, 5};
  std::vector<float> logits(2 * static_cast<size_t>(config_.vocab));
  for (int i = 0; i < 3; ++i) {
    tf.Step(tokens, logits);
  }
  const int64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) {
    tf.Step(tokens, logits);
    for (int b = 0; b < 2; ++b) {
      tokens[static_cast<size_t>(b)] = ArgmaxToken(std::span<const float>(
          logits.data() + static_cast<int64_t>(b) * config_.vocab,
          static_cast<size_t>(config_.vocab)));
    }
  }
  EXPECT_EQ(g_heap_allocs.load(std::memory_order_relaxed) - before, 0);
}

TEST_F(TransformerTest, WorkspaceBytesGaugeExported) {
  // The serving backend publishes the step-arena high watermark as exec.workspace.bytes
  // (docs/metrics_schema.md).
  hserve::FunctionalBackend backend(dev_, weights_, /*max_batch=*/2, /*max_context=*/16);
  std::vector<float> logits(static_cast<size_t>(config_.vocab));
  const int tok = 3;
  backend.transformer().Step({&tok, 1}, logits);

  obs::Registry registry;
  backend.ExportMetrics(registry);
  const obs::MetricsSnapshot snap = registry.Snapshot();
  bool found = false;
  const double bytes = snap.GaugeValue("exec.workspace.bytes", {}, &found);
  EXPECT_TRUE(found);
  EXPECT_GT(bytes, 0.0);
  EXPECT_EQ(bytes,
            static_cast<double>(backend.transformer().workspace().high_watermark()));
}

// --- sampling ---

TEST(SamplingTest, GreedyPicksArgmax) {
  std::vector<float> logits{0.1f, 2.0f, -1.0f, 1.9f};
  EXPECT_EQ(ArgmaxToken(logits), 1);
  Rng rng(1);
  SamplerOptions opts;
  opts.temperature = 0.0f;
  EXPECT_EQ(SampleToken(logits, opts, rng), 1);
}

TEST(SamplingTest, TemperatureSamplingFollowsDistribution) {
  std::vector<float> logits{std::log(0.7f), std::log(0.2f), std::log(0.1f)};
  Rng rng(2);
  SamplerOptions opts;
  opts.temperature = 1.0f;
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[SampleToken(logits, opts, rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.7, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.1, 0.02);
}

TEST(SamplingTest, TopKRestrictsSupport) {
  std::vector<float> logits{5.0f, 4.0f, -10.0f, 3.0f};
  Rng rng(3);
  SamplerOptions opts;
  opts.temperature = 2.0f;
  opts.top_k = 2;
  for (int i = 0; i < 500; ++i) {
    const int t = SampleToken(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(SamplingTest, TopPRestrictsTail) {
  std::vector<float> logits{std::log(0.6f), std::log(0.3f), std::log(0.05f),
                            std::log(0.05f)};
  Rng rng(4);
  SamplerOptions opts;
  opts.temperature = 1.0f;
  opts.top_p = 0.85f;
  for (int i = 0; i < 500; ++i) {
    const int t = SampleToken(logits, opts, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(SamplingTest, TokenLogProbIsConsistent) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  double total = 0.0;
  for (int t = 0; t < 3; ++t) {
    total += std::exp(TokenLogProb(logits, t, 1.0f));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(TokenLogProb(logits, 2, 1.0f), TokenLogProb(logits, 0, 1.0f));
}

}  // namespace
}  // namespace hllm

#include "src/base/fp16.h"

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

namespace hexllm {
namespace {

TEST(F16Test, BasicValues) {
  EXPECT_EQ(F16(0.0f).bits(), 0x0000);
  EXPECT_EQ(F16(1.0f).bits(), 0x3C00);
  EXPECT_EQ(F16(-1.0f).bits(), 0xBC00);
  EXPECT_EQ(F16(2.0f).bits(), 0x4000);
  EXPECT_EQ(F16(0.5f).bits(), 0x3800);
  EXPECT_EQ(F16(65504.0f).bits(), 0x7BFF);
  EXPECT_EQ(F16(-65504.0f).bits(), 0xFBFF);
}

TEST(F16Test, RoundTripExactValues) {
  // All integers in [-2048, 2048] are exactly representable.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(F16(f).ToFloat(), f) << i;
  }
}

TEST(F16Test, Infinities) {
  EXPECT_EQ(F16(std::numeric_limits<float>::infinity()).bits(), 0x7C00);
  EXPECT_EQ(F16(-std::numeric_limits<float>::infinity()).bits(), 0xFC00);
  // Overflow rounds to infinity.
  EXPECT_EQ(F16(1e6f).bits(), 0x7C00);
  EXPECT_EQ(F16(65520.0f).bits(), 0x7C00);  // ties-to-even at the top of the range
  EXPECT_EQ(F16(65519.0f).bits(), 0x7BFF);
}

TEST(F16Test, NaN) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const uint16_t bits = F16(nan).bits();
  EXPECT_EQ(bits & 0x7C00, 0x7C00);
  EXPECT_NE(bits & 0x03FF, 0);
  EXPECT_TRUE(std::isnan(F16BitsToF32(bits)));
}

TEST(F16Test, Subnormals) {
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(F16BitsToF32(0x0001), std::ldexp(1.0f, -24));
  // Largest subnormal: (1023/1024) * 2^-14.
  EXPECT_EQ(F16BitsToF32(0x03FF), 1023.0f * std::ldexp(1.0f, -24));
  // Smallest normal.
  EXPECT_EQ(F16BitsToF32(0x0400), std::ldexp(1.0f, -14));
  // Conversion into the subnormal range.
  EXPECT_EQ(F16(std::ldexp(1.0f, -24)).bits(), 0x0001);
  EXPECT_EQ(F16(std::ldexp(1.0f, -25)).bits(), 0x0000);  // ties to even -> 0
}

TEST(F16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10): ties to even.
  EXPECT_EQ(F16(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3C00);
  // Just above the halfway point rounds up.
  EXPECT_EQ(F16(1.0f + std::ldexp(1.0f, -11) * 1.01f).bits(), 0x3C01);
  // 1 + 3*2^-11 is halfway between 0x3C01 and 0x3C02: ties to even -> 0x3C02.
  EXPECT_EQ(F16(1.0f + 3 * std::ldexp(1.0f, -11)).bits(), 0x3C02);
}

#if defined(__x86_64__)
// Exhaustive equivalence against the compiler's native _Float16 for every FP16 bit pattern
// (decode) and a dense float sweep (encode).
TEST(F16Test, ExhaustiveDecodeMatchesNative) {
  for (uint32_t b = 0; b < 0x10000; ++b) {
    const uint16_t bits = static_cast<uint16_t>(b);
    _Float16 native;
    std::memcpy(&native, &bits, 2);
    const float expected = static_cast<float>(native);
    const float got = F16BitsToF32(bits);
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got)) << b;
    } else {
      EXPECT_EQ(got, expected) << b;
    }
  }
}

TEST(F16Test, EncodeMatchesNativeOnSweep) {
  // Sweep a dense grid of floats (including denormal-range and overflow-range values).
  for (int e = -30; e <= 18; ++e) {
    for (int m = 0; m < 512; ++m) {
      const float f = std::ldexp(1.0f + m / 512.0f, e);
      for (const float v : {f, -f}) {
        _Float16 native = static_cast<_Float16>(v);
        uint16_t expected;
        std::memcpy(&expected, &native, 2);
        EXPECT_EQ(F32ToF16Bits(v), expected) << v;
      }
    }
  }
}
#endif  // __x86_64__

TEST(F16Test, RoundToF16IsIdempotent) {
  for (int i = 0; i < 1000; ++i) {
    const float v = RoundToF16(0.001f * i - 0.5f);
    EXPECT_EQ(RoundToF16(v), v);
  }
}

}  // namespace
}  // namespace hexllm

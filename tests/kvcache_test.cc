// Paged KV-cache manager tests: block-pool invariants, prefix sharing, copy-on-write
// forking, debug poisoning, admission gating on pool/budget exhaustion, and the
// functional-vs-analytic block-accounting parity the serving layer promises.
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fp16.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/kvcache/block_pool.h"
#include "src/kvcache/kv_block_manager.h"
#include "src/kvcache/paged_kv_cache.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace hkv {
namespace {

using hexllm::F16;

// --- block pool ---

TEST(BlockPoolTest, AllocRefcountAndFreeListInvariants) {
  BlockPool pool(4);
  EXPECT_TRUE(pool.bounded());
  std::set<int> ids;
  for (int i = 0; i < 4; ++i) {
    const int b = pool.Alloc();
    ASSERT_GE(b, 0);
    EXPECT_EQ(pool.ref_count(b), 1);
    ids.insert(b);
  }
  EXPECT_EQ(ids.size(), 4u);  // distinct ids
  EXPECT_EQ(pool.used_blocks(), 4);
  EXPECT_EQ(pool.free_blocks(), 0);
  EXPECT_EQ(pool.Alloc(), -1);  // exhausted, no abort

  // Shared block: refcount rises and only the LAST unref frees.
  const int shared = *ids.begin();
  pool.AddRef(shared);
  EXPECT_EQ(pool.ref_count(shared), 2);
  EXPECT_FALSE(pool.Unref(shared));
  EXPECT_EQ(pool.used_blocks(), 4);
  EXPECT_TRUE(pool.Unref(shared));
  EXPECT_EQ(pool.used_blocks(), 3);
  EXPECT_EQ(pool.free_blocks(), 1);

  // LIFO reuse: the block just freed is the next allocated.
  EXPECT_EQ(pool.Alloc(), shared);
  EXPECT_EQ(pool.peak_used_blocks(), 4);
}

TEST(BlockPoolTest, UnboundedPoolMintsIdsOnDemand) {
  BlockPool pool(0);
  EXPECT_FALSE(pool.bounded());
  for (int i = 0; i < 100; ++i) {
    ASSERT_GE(pool.Alloc(), 0);
  }
  EXPECT_EQ(pool.used_blocks(), 100);
  EXPECT_EQ(pool.peak_used_blocks(), 100);
  EXPECT_GT(pool.free_blocks(), int64_t{1} << 60);
}

// --- block-table manager ---

TEST(KvBlockManagerTest, ShareForkAndCowAccounting) {
  KvBlockManager mgr(/*block_tokens=*/4, /*max_blocks=*/0, /*bytes_per_block=*/10);
  // Append 6 positions to seq 0: blocks 0..1, the second half-full.
  for (int pos = 0; pos < 6; ++pos) {
    mgr.EnsureWritable(0, pos);
    mgr.Advance(0);
  }
  EXPECT_EQ(mgr.length(0), 6);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
  EXPECT_EQ(mgr.stats().logical_blocks, 2);

  // Retain + share the full prefix into seq 1: zero new physical blocks, logical doubles.
  const int64_t h = mgr.Retain(0);
  EXPECT_EQ(mgr.handle_length(h), 6);
  mgr.ShareFromHandle(h, 1, 6);
  EXPECT_EQ(mgr.length(1), 6);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
  EXPECT_EQ(mgr.stats().logical_blocks, 4);
  EXPECT_EQ(mgr.block_at(1, 0), mgr.block_at(0, 0));
  EXPECT_TRUE(mgr.TailShared(1));

  // The partial shared tail predicts exactly one extra block for the first append...
  EXPECT_EQ(mgr.BlocksToAdmit(/*total_tokens=*/8, /*shared_tokens=*/6), 1);
  // ...and the append indeed CoW-splits: seq 1 gets a private tail, seq 0 keeps its block.
  const int parent_tail = mgr.block_at(0, 1);
  const KvBlockManager::WriteAccess wa = mgr.EnsureWritable(1, 6);
  mgr.Advance(1);
  EXPECT_EQ(wa.copied_from, parent_tail);
  EXPECT_NE(mgr.block_at(1, 1), parent_tail);
  EXPECT_EQ(mgr.block_at(0, 1), parent_tail);
  EXPECT_EQ(mgr.stats().physical_blocks, 3);
  EXPECT_EQ(mgr.stats().cow_splits, 1);
  EXPECT_FALSE(mgr.TailShared(1));

  // Releasing the fork frees only its private block; the handle pins the prefix even after
  // the parent sequence resets.
  std::vector<int> freed;
  mgr.Reset(1, &freed);
  EXPECT_EQ(freed.size(), 1u);
  mgr.Reset(0, &freed);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);  // retained prefix survives
  mgr.DropHandle(h, &freed);
  EXPECT_EQ(mgr.stats().physical_blocks, 0);
  EXPECT_EQ(mgr.stats().logical_blocks, 0);
  EXPECT_EQ(mgr.stats().peak_physical_blocks, 3);
}

TEST(KvBlockManagerTest, BlocksToAdmitCoversRoundingAndAlignedTails) {
  KvBlockManager mgr(32, 0, 1);
  EXPECT_EQ(mgr.BlocksToAdmit(0, 0), 0);
  EXPECT_EQ(mgr.BlocksToAdmit(1, 0), 1);
  EXPECT_EQ(mgr.BlocksToAdmit(64, 0), 2);
  EXPECT_EQ(mgr.BlocksToAdmit(65, 0), 3);
  EXPECT_EQ(mgr.BlocksToAdmit(96, 64), 1);   // block-aligned shared tail: no CoW copy
  EXPECT_EQ(mgr.BlocksToAdmit(96, 65), 1);   // the CoW-split copy also holds the appends
  EXPECT_EQ(mgr.BlocksToAdmit(97, 65), 2);   // ...until they spill into a fourth block
  EXPECT_EQ(mgr.BlocksToAdmit(65, 65), 0);   // fully shared, nothing appended
}

// --- storage-backed paged cache ---

TEST(PagedKvCacheTest, ForkReadsSharedRowsAndCowPreservesParent) {
  PagedKvCache kv(/*layers=*/2, /*kv_dim=*/4, /*num_seqs=*/2, /*max_context=*/64,
                  /*block_tokens=*/4);
  // Parent: 6 positions of distinguishable rows.
  for (int pos = 0; pos < 6; ++pos) {
    for (int l = 0; l < 2; ++l) {
      kv.KeyRow(l, 0, pos)[0] = F16(static_cast<float>(100 * l + pos));
      kv.ValueRow(l, 0, pos)[0] = F16(static_cast<float>(100 * l + pos) + 0.5f);
    }
    kv.Advance(0);
  }
  const int64_t h = kv.Retain(0);
  kv.ShareFromHandle(h, 1, 6);
  // The fork reads the parent's rows through its own table without any copy.
  for (int pos = 0; pos < 6; ++pos) {
    EXPECT_EQ(kv.KeyRowAt(1, 1, pos)[0].ToFloat(), 100.0f + pos);
  }
  // Divergent append: the child's write CoW-splits the tail block; the copied block carries
  // every layer's earlier rows, and the parent's rows stay untouched.
  kv.KeyRow(0, 1, 6)[0] = F16(-1.0f);
  kv.KeyRow(1, 1, 6)[0] = F16(-2.0f);
  kv.Advance(1);
  EXPECT_EQ(kv.KeyRowAt(1, 1, 4)[0].ToFloat(), 104.0f);  // copied shared rows intact
  EXPECT_EQ(kv.KeyRowAt(1, 1, 6)[0].ToFloat(), -2.0f);
  // Parent appends its own position 6 independently of the child's.
  kv.KeyRow(0, 0, 6)[0] = F16(7.0f);
  kv.KeyRow(1, 0, 6)[0] = F16(8.0f);
  kv.Advance(0);
  EXPECT_EQ(kv.KeyRowAt(1, 0, 6)[0].ToFloat(), 8.0f);
  EXPECT_EQ(kv.KeyRowAt(1, 1, 6)[0].ToFloat(), -2.0f);
  EXPECT_EQ(kv.ValueRowAt(1, 0, 5)[0].ToFloat(), 105.5f);
  // Two splits: the child's divergent append, and the parent's own append into its tail
  // block, which the retained handle pins as an immutable snapshot.
  EXPECT_EQ(kv.stats().cow_splits, 2);
  kv.DropHandle(h);
}

#ifndef NDEBUG
TEST(PagedKvCacheTest, FreedBlocksArePoisonedWithNanInDebug) {
  PagedKvCache kv(1, 4, 1, 64, /*block_tokens=*/4);
  kv.KeyRow(0, 0, 0)[0] = F16(3.0f);
  kv.Advance(0);
  const F16* row = kv.KeyRowAt(0, 0, 0);
  EXPECT_EQ(row[0].ToFloat(), 3.0f);
  kv.ResetSeq(0);
  // The storage the stale pointer referenced is NaN-filled: a use-after-free of reclaimed
  // KV rows corrupts attention loudly instead of silently reusing old values.
  EXPECT_TRUE(std::isnan(row[0].ToFloat()));
}
#endif

}  // namespace
}  // namespace hkv

namespace hserve {
namespace {

ServeJob Job(int id, int decode, int group = -1, int prompt = 0, int context = 0,
             int barrier = 0, int parent = -1) {
  ServeJob j;
  j.id = id;
  j.prompt_group = group;
  j.prompt_tokens = prompt;
  j.context_tokens = context;
  j.decode_tokens = decode;
  j.barrier = barrier;
  j.parent_job = parent;
  return j;
}

void ExpectStatsEqual(const hkv::KvStats& a, const hkv::KvStats& b) {
  EXPECT_EQ(a.block_tokens, b.block_tokens);
  EXPECT_EQ(a.bytes_per_block, b.bytes_per_block);
  EXPECT_EQ(a.physical_blocks, b.physical_blocks);
  EXPECT_EQ(a.peak_physical_blocks, b.peak_physical_blocks);
  EXPECT_EQ(a.logical_blocks, b.logical_blocks);
  EXPECT_EQ(a.peak_logical_blocks, b.peak_logical_blocks);
  EXPECT_EQ(a.cow_splits, b.cow_splits);
}

class ServingKvTest : public ::testing::Test {
 protected:
  ServingKvTest()
      : config_(hllm::ToyConfig()),
        weights_(hllm::ModelWeights::Random(config_, 42)),
        dev_(hexsim::OnePlus12()) {
    toy_options_.model = &config_;
    toy_options_.device = &hexsim::OnePlus12();
    toy_engine_ = std::make_unique<hrt::Engine>(toy_options_);
  }

  // A beam-search-shaped fork stream: `rounds` expansion waves over one prompt group, each
  // candidate forking a kept stem of the previous round.
  static std::vector<ServeJob> BeamForkStream(int prompt, int rounds, int width,
                                              int expansion, int step_tokens) {
    std::vector<ServeJob> jobs;
    std::vector<int> prev;
    for (int r = 0; r < rounds; ++r) {
      std::vector<int> cur;
      for (int c = 0; c < width * expansion; ++c) {
        const int id = static_cast<int>(jobs.size());
        const int parent = r > 0 ? prev[static_cast<size_t>(c / expansion)] : -1;
        jobs.push_back(Job(id, step_tokens, /*group=*/0, prompt,
                           /*context=*/r * step_tokens, /*barrier=*/r, parent));
        cur.push_back(id);
      }
      prev = std::move(cur);
    }
    return jobs;
  }

  hllm::ModelConfig config_;
  hllm::ModelWeights weights_;
  hexsim::NpuDevice dev_;
  hrt::EngineOptions toy_options_;
  std::unique_ptr<hrt::Engine> toy_engine_;
};

TEST_F(ServingKvTest, ForkContinuationMatchesUnforkedDecodeTokenForToken) {
  // Zero re-prefill, verified on real numerics: a job that decodes 8 tokens must produce
  // the SAME tokens as a parent decoding 4 followed by a fork child decoding 4 more off the
  // parent's retained KV. Any re-prefill drift or CoW corruption breaks the equality.
  ServeOptions so;
  so.max_batch = 1;
  const std::vector<ServeJob> whole = {Job(0, 8, /*group=*/0, /*prompt=*/8)};
  const std::vector<ServeJob> forked = {
      Job(0, 4, 0, 8, 0, /*barrier=*/0),
      Job(1, 4, 0, 8, /*context=*/4, /*barrier=*/1, /*parent=*/0),
  };

  hexsim::NpuDevice dev1(hexsim::OnePlus12());
  FunctionalBackend b1(dev1, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rw = ContinuousBatcher(b1, so).Run(whole);
  ASSERT_TRUE(rw.error.empty()) << rw.error;

  hexsim::NpuDevice dev2(hexsim::OnePlus12());
  FunctionalBackend b2(dev2, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rf = ContinuousBatcher(b2, so).Run(forked);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(rf.forked_admissions, 1);
  EXPECT_EQ(rf.prefilled_tokens, 8);  // the prompt, once; the fork re-prefilled nothing
  EXPECT_EQ(rw.prefill_s, rf.prefill_s);
  std::vector<int> stitched = rf.job_tokens.at(0);
  stitched.insert(stitched.end(), rf.job_tokens.at(1).begin(), rf.job_tokens.at(1).end());
  EXPECT_EQ(stitched, rw.job_tokens.at(0));
}

TEST_F(ServingKvTest, SiblingForksShareOneStemWithoutCrossCorruption) {
  // Two children fork the same parent and decode in the same batch. Each child's first
  // divergent append CoW-splits the shared tail; if either write leaked into the shared
  // blocks, the siblings' (deterministic) continuations would differ from the lone-child
  // reference computed above.
  ServeOptions so;
  so.max_batch = 2;
  const std::vector<ServeJob> jobs = {
      Job(0, 4, 0, 8, 0, 0),
      Job(1, 4, 0, 8, 4, 1, /*parent=*/0),
      Job(2, 4, 0, 8, 4, 1, /*parent=*/0),
  };
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  FunctionalBackend backend(dev, weights_, so.max_batch, 64);
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.forked_admissions, 2);
  // Same stem + deterministic argmax decode => identical sibling continuations.
  EXPECT_EQ(r.job_tokens.at(1), r.job_tokens.at(2));
  // Both siblings CoW-split the retained stem block on their first divergent append (the
  // whole 12-token stem fits in one 32-position block, so sharing here is sub-block).
  EXPECT_EQ(r.kv.cow_splits, 2);
  EXPECT_EQ(r.prefilled_tokens, 8);  // the stem's prompt was never re-prefilled
}

TEST_F(ServingKvTest, ForkHeavyBeamStreamHasBackendBlockParity) {
  // One fork-heavy stream through both backends: scheduling must agree AND the storage-free
  // analytic accountant must report bit-identical block statistics to the real paged cache.
  const std::vector<ServeJob> jobs =
      BeamForkStream(/*prompt=*/8, /*rounds=*/3, /*width=*/2, /*expansion=*/2,
                     /*step_tokens=*/4);
  ServeOptions so;
  so.max_batch = 4;
  so.record_steps = true;

  AnalyticBackend analytic(*toy_engine_);
  const ScheduleResult ra = ContinuousBatcher(analytic, so).Run(jobs);
  ASSERT_TRUE(ra.error.empty()) << ra.error;

  FunctionalBackend functional(dev_, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rf = ContinuousBatcher(functional, so).Run(jobs);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(ra.steps, rf.steps);
  EXPECT_EQ(ra.decoded_tokens, rf.decoded_tokens);
  EXPECT_EQ(ra.forked_admissions, rf.forked_admissions);
  EXPECT_EQ(ra.forked_admissions, 8);  // rounds 1..2, 4 candidates each
  EXPECT_EQ(ra.step_active, rf.step_active);
  ASSERT_EQ(ra.admissions.size(), rf.admissions.size());
  for (size_t i = 0; i < ra.admissions.size(); ++i) {
    EXPECT_EQ(ra.admissions[i].job_id, rf.admissions[i].job_id) << i;
    EXPECT_EQ(ra.admissions[i].slot, rf.admissions[i].slot) << i;
    EXPECT_EQ(ra.admissions[i].step, rf.admissions[i].step) << i;
  }
  ExpectStatsEqual(ra.kv, rf.kv);
  // The whole group shares one prompt: charged once, and fork admissions re-prefill zero
  // tokens in both backends (prefill time == the single prompt's chunked prefill).
  EXPECT_EQ(ra.prefilled_tokens, 8);
  EXPECT_EQ(rf.prefilled_tokens, 8);
  EXPECT_GT(rf.kv.cow_splits, 0);  // stems really were shared, then diverged
}

TEST_F(ServingKvTest, SmallKvPoolDefersAdmissionInsteadOfDeadlocking) {
  // Pool of 4 blocks (block = 32 positions); each job needs 2 blocks (decode 33 from empty
  // context), so only two jobs fit at once. The batcher must defer the rest and still
  // complete everything.
  ServeOptions so;
  so.max_batch = 4;
  so.record_steps = true;
  std::vector<ServeJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(Job(i, 33));
  }
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  FunctionalBackend backend(dev, weights_, so.max_batch, /*max_context=*/64,
                            /*kv_pool_blocks=*/4);
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(static_cast<int>(r.completions.size()), 4);
  for (const int occ : r.step_occupied) {
    EXPECT_LE(occ, 2);  // the pool, not max_batch, bounds concurrency here
  }
  EXPECT_LE(r.kv.peak_physical_blocks, 4);
}

TEST_F(ServingKvTest, KvBudgetTooSmallForOneJobReportsError) {
  AnalyticBackend::Options bo;
  bo.kv_budget_bytes = config_.KvCacheBytes(hkv::kDefaultBlockTokens);  // exactly 1 block
  AnalyticBackend backend(*toy_engine_, bo);
  ServeOptions so;
  so.max_batch = 2;
  const ScheduleResult r =
      ContinuousBatcher(backend, so).Run({Job(0, /*decode=*/64)});  // needs 2 blocks
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("KV budget"), std::string::npos);
  EXPECT_EQ(r.completions.size(), 0u);
}

TEST_F(ServingKvTest, BestOfNSharingMeetsThePaperMemoryBound) {
  // Best-of-N N=8 over one prompt: physical KV must stay within
  // (1 + N * decode_frac) x dense-single-sequence bytes — the prompt is stored once, only
  // the N decode tails are private. P and D are block multiples so the bound is exact.
  constexpr int kN = 8;
  constexpr int kPrompt = 1024;
  constexpr int kDecode = 256;
  ServeOptions so;
  so.max_batch = kN;
  std::vector<ServeJob> shared_jobs;
  std::vector<ServeJob> dense_jobs;
  for (int i = 0; i < kN; ++i) {
    shared_jobs.push_back(Job(i, kDecode, /*group=*/0, kPrompt));
    dense_jobs.push_back(Job(i, kDecode, /*group=*/-1, kPrompt));
  }
  AnalyticBackend shared_backend(*toy_engine_);
  const ScheduleResult rs = ContinuousBatcher(shared_backend, so).Run(shared_jobs);
  ASSERT_TRUE(rs.error.empty()) << rs.error;
  AnalyticBackend dense_backend(*toy_engine_);
  const ScheduleResult rd = ContinuousBatcher(dense_backend, so).Run(dense_jobs);
  ASSERT_TRUE(rd.error.empty()) << rd.error;

  const double decode_frac =
      static_cast<double>(kDecode) / static_cast<double>(kPrompt + kDecode);
  const int64_t dense_single =
      config_.KvCacheBytes(kPrompt + kDecode);  // one dense sequence, FP16 K+V
  const double bound = (1.0 + kN * decode_frac) * static_cast<double>(dense_single);
  EXPECT_LE(static_cast<double>(rs.kv.peak_physical_bytes()), bound);
  // Sanity on both sides: without grouping every sample stores the prompt privately.
  EXPECT_EQ(rd.kv.peak_physical_bytes(), int64_t{kN} * dense_single);
  EXPECT_EQ(rs.kv.peak_logical_bytes(), rd.kv.peak_logical_bytes());
  // Concretely: P + N*D blocks vs N*(P+D) blocks => >3x saving at these shapes.
  EXPECT_LT(3 * rs.kv.peak_physical_blocks, rd.kv.peak_physical_blocks);
}

TEST_F(ServingKvTest, MalformedJobsReportErrorsInsteadOfAborting) {
  AnalyticBackend backend(*toy_engine_);
  ServeOptions so;
  so.max_batch = 2;
  ContinuousBatcher batcher(backend, so);

  {  // decode must be positive
    const ScheduleResult r = batcher.Run({Job(0, 0)});
    EXPECT_NE(r.error.find("decode_tokens"), std::string::npos);
  }
  {  // negative lengths
    ServeJob j = Job(0, 4);
    j.prompt_tokens = -1;
    EXPECT_FALSE(batcher.Run({j}).error.empty());
  }
  {  // context overflow vs the backend's limit
    const ScheduleResult r = batcher.Run({Job(0, 8, -1, 0, /*context=*/1 << 20)});
    EXPECT_NE(r.error.find("context limit"), std::string::npos);
  }
  {  // fork edges: unknown parent, self-fork via duplicate ids, same-barrier parent,
     // context mismatch
    EXPECT_NE(batcher.Run({Job(1, 4, 0, 0, 0, 1, /*parent=*/99)}).error.find("not in"),
              std::string::npos);
    EXPECT_FALSE(batcher
                     .Run({Job(0, 4, 0, 8, 0, 0),
                           Job(0, 4, 0, 8, 4, 1, /*parent=*/0)})  // duplicate id
                     .error.empty());
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, 4, /*barrier=*/0,
                                                   /*parent=*/0)})
                  .error.find("earlier barrier"),
              std::string::npos);
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, /*context=*/2, 1,
                                                   /*parent=*/0)})
                  .error.find("final KV length"),
              std::string::npos);
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, /*group=*/-1, 8, 4, 1,
                                                   /*parent=*/0)})
                  .error.find("prompt_group"),
              std::string::npos);
  }
  // A well-formed stream on the same batcher still runs (no poisoned state).
  const ScheduleResult ok = batcher.Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, 4, 1, 0)});
  EXPECT_TRUE(ok.error.empty()) << ok.error;
  EXPECT_EQ(ok.completions.size(), 2u);
}

}  // namespace
}  // namespace hserve

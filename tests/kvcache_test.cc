// Paged KV-cache manager tests: block-pool invariants, prefix sharing, copy-on-write
// forking, debug poisoning, admission gating on pool/budget exhaustion, low-bit quantized
// KV storage (round-trip bounds, CoW/pause-resume integrity, paged-Q attention parity, the
// F16 bit-identity guard), and the functional-vs-analytic block-accounting parity the
// serving layer promises — including under quantized block accounting.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fp16.h"
#include "src/base/rng.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/kvcache/block_pool.h"
#include "src/kvcache/kv_block_manager.h"
#include "src/kvcache/paged_kv_cache.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace hkv {
namespace {

using hexllm::F16;

// --- block pool ---

TEST(BlockPoolTest, AllocRefcountAndFreeListInvariants) {
  BlockPool pool(4);
  EXPECT_TRUE(pool.bounded());
  std::set<int> ids;
  for (int i = 0; i < 4; ++i) {
    const int b = pool.Alloc();
    ASSERT_GE(b, 0);
    EXPECT_EQ(pool.ref_count(b), 1);
    ids.insert(b);
  }
  EXPECT_EQ(ids.size(), 4u);  // distinct ids
  EXPECT_EQ(pool.used_blocks(), 4);
  EXPECT_EQ(pool.free_blocks(), 0);
  EXPECT_EQ(pool.Alloc(), -1);  // exhausted, no abort

  // Shared block: refcount rises and only the LAST unref frees.
  const int shared = *ids.begin();
  pool.AddRef(shared);
  EXPECT_EQ(pool.ref_count(shared), 2);
  EXPECT_FALSE(pool.Unref(shared));
  EXPECT_EQ(pool.used_blocks(), 4);
  EXPECT_TRUE(pool.Unref(shared));
  EXPECT_EQ(pool.used_blocks(), 3);
  EXPECT_EQ(pool.free_blocks(), 1);

  // LIFO reuse: the block just freed is the next allocated.
  EXPECT_EQ(pool.Alloc(), shared);
  EXPECT_EQ(pool.peak_used_blocks(), 4);
}

TEST(BlockPoolTest, UnboundedPoolMintsIdsOnDemand) {
  BlockPool pool(0);
  EXPECT_FALSE(pool.bounded());
  for (int i = 0; i < 100; ++i) {
    ASSERT_GE(pool.Alloc(), 0);
  }
  EXPECT_EQ(pool.used_blocks(), 100);
  EXPECT_EQ(pool.peak_used_blocks(), 100);
  EXPECT_GT(pool.free_blocks(), int64_t{1} << 60);
}

// --- block-table manager ---

TEST(KvBlockManagerTest, ShareForkAndCowAccounting) {
  KvBlockManager mgr(/*block_tokens=*/4, /*max_blocks=*/0, /*bytes_per_block=*/10);
  // Append 6 positions to seq 0: blocks 0..1, the second half-full.
  for (int pos = 0; pos < 6; ++pos) {
    mgr.EnsureWritable(0, pos);
    mgr.Advance(0);
  }
  EXPECT_EQ(mgr.length(0), 6);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
  EXPECT_EQ(mgr.stats().logical_blocks, 2);

  // Retain + share the full prefix into seq 1: zero new physical blocks, logical doubles.
  const int64_t h = mgr.Retain(0);
  EXPECT_EQ(mgr.handle_length(h), 6);
  mgr.ShareFromHandle(h, 1, 6);
  EXPECT_EQ(mgr.length(1), 6);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
  EXPECT_EQ(mgr.stats().logical_blocks, 4);
  EXPECT_EQ(mgr.block_at(1, 0), mgr.block_at(0, 0));
  EXPECT_TRUE(mgr.TailShared(1));

  // The partial shared tail predicts exactly one extra block for the first append...
  EXPECT_EQ(mgr.BlocksToAdmit(/*total_tokens=*/8, /*shared_tokens=*/6), 1);
  // ...and the append indeed CoW-splits: seq 1 gets a private tail, seq 0 keeps its block.
  const int parent_tail = mgr.block_at(0, 1);
  const KvBlockManager::WriteAccess wa = mgr.EnsureWritable(1, 6);
  mgr.Advance(1);
  EXPECT_EQ(wa.copied_from, parent_tail);
  EXPECT_NE(mgr.block_at(1, 1), parent_tail);
  EXPECT_EQ(mgr.block_at(0, 1), parent_tail);
  EXPECT_EQ(mgr.stats().physical_blocks, 3);
  EXPECT_EQ(mgr.stats().cow_splits, 1);
  EXPECT_FALSE(mgr.TailShared(1));

  // Releasing the fork frees only its private block; the handle pins the prefix even after
  // the parent sequence resets.
  std::vector<int> freed;
  mgr.Reset(1, &freed);
  EXPECT_EQ(freed.size(), 1u);
  mgr.Reset(0, &freed);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);  // retained prefix survives
  mgr.DropHandle(h, &freed);
  EXPECT_EQ(mgr.stats().physical_blocks, 0);
  EXPECT_EQ(mgr.stats().logical_blocks, 0);
  EXPECT_EQ(mgr.stats().peak_physical_blocks, 3);
}

TEST(KvBlockManagerTest, TruncateFreesWholeTailBlocksAndReappendsInPlace) {
  // The speculative-decode rollback primitive: a rejected suffix truncates the tail.
  KvBlockManager mgr(/*block_tokens=*/4, /*max_blocks=*/0, /*bytes_per_block=*/10);
  for (int pos = 0; pos < 10; ++pos) {
    mgr.EnsureWritable(0, pos);
    mgr.Advance(0);
  }
  EXPECT_EQ(mgr.stats().physical_blocks, 3);  // 4 + 4 + 2

  // Truncating to 6 keeps ceil(6/4) = 2 blocks; the solely-owned third block frees.
  std::vector<int> freed;
  EXPECT_EQ(mgr.Truncate(0, 6, &freed), 1);
  EXPECT_EQ(freed.size(), 1u);
  EXPECT_EQ(mgr.length(0), 6);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
  EXPECT_EQ(mgr.stats().logical_blocks, 2);

  // Truncating within the tail block drops no blocks, only logical length.
  freed.clear();
  EXPECT_EQ(mgr.Truncate(0, 5, &freed), 0);
  EXPECT_TRUE(freed.empty());
  EXPECT_EQ(mgr.length(0), 5);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);

  // Re-appending after a rollback extends the existing tail block in place.
  const int tail = mgr.block_at(0, 1);
  mgr.EnsureWritable(0, 5);
  mgr.Advance(0);
  EXPECT_EQ(mgr.length(0), 6);
  EXPECT_EQ(mgr.block_at(0, 1), tail);
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
}

TEST(KvBlockManagerTest, TruncateOnForkedSequencesPreservesSharingInvariants) {
  KvBlockManager mgr(/*block_tokens=*/4, /*max_blocks=*/0, /*bytes_per_block=*/10);
  for (int pos = 0; pos < 6; ++pos) {
    mgr.EnsureWritable(0, pos);
    mgr.Advance(0);
  }
  const int64_t h = mgr.Retain(0);
  mgr.ShareFromHandle(h, 1, 6);
  const int parent_tail = mgr.block_at(0, 1);

  // The child diverges: its first append CoW-splits the shared partial tail, then it grows
  // a private block — exactly the state a speculative verify leaves before a rejection.
  for (int pos = 6; pos < 12; ++pos) {
    mgr.EnsureWritable(1, pos);
    mgr.Advance(1);
  }
  const int child_tail = mgr.block_at(1, 1);
  EXPECT_NE(child_tail, parent_tail);
  EXPECT_EQ(mgr.stats().physical_blocks, 4);  // b0, parent tail, CoW copy, child block 2
  EXPECT_EQ(mgr.stats().cow_splits, 1);

  // Rolling the child back to the fork point frees ONLY its private third block; the CoW
  // copy stays (it holds the child's positions 4..5) and the parent is untouched.
  std::vector<int> freed;
  EXPECT_EQ(mgr.Truncate(1, 6, &freed), 1);
  EXPECT_EQ(freed.size(), 1u);
  EXPECT_EQ(mgr.length(1), 6);
  EXPECT_EQ(mgr.block_at(1, 1), child_tail);
  EXPECT_EQ(mgr.length(0), 6);
  EXPECT_EQ(mgr.block_at(0, 1), parent_tail);
  EXPECT_EQ(mgr.stats().physical_blocks, 3);

  // Truncating the PARENT under a still-shared tail unrefs without freeing: the retained
  // handle keeps the block resident for the child/fork machinery.
  freed.clear();
  EXPECT_EQ(mgr.Truncate(0, 4, &freed), 1);
  EXPECT_TRUE(freed.empty());  // the handle still references the dropped block
  EXPECT_EQ(mgr.stats().physical_blocks, 3);
  mgr.DropHandle(h, &freed);
  EXPECT_EQ(freed.size(), 1u);  // last reference gone: now it frees
  EXPECT_EQ(mgr.stats().physical_blocks, 2);
}

TEST(KvBlockManagerTest, BlocksToAdmitCoversRoundingAndAlignedTails) {
  KvBlockManager mgr(32, 0, 1);
  EXPECT_EQ(mgr.BlocksToAdmit(0, 0), 0);
  EXPECT_EQ(mgr.BlocksToAdmit(1, 0), 1);
  EXPECT_EQ(mgr.BlocksToAdmit(64, 0), 2);
  EXPECT_EQ(mgr.BlocksToAdmit(65, 0), 3);
  EXPECT_EQ(mgr.BlocksToAdmit(96, 64), 1);   // block-aligned shared tail: no CoW copy
  EXPECT_EQ(mgr.BlocksToAdmit(96, 65), 1);   // the CoW-split copy also holds the appends
  EXPECT_EQ(mgr.BlocksToAdmit(97, 65), 2);   // ...until they spill into a fourth block
  EXPECT_EQ(mgr.BlocksToAdmit(65, 65), 0);   // fully shared, nothing appended
}

// --- storage-backed paged cache ---

TEST(PagedKvCacheTest, ForkReadsSharedRowsAndCowPreservesParent) {
  PagedKvCache kv(/*layers=*/2, /*kv_dim=*/4, /*num_seqs=*/2, /*max_context=*/64,
                  /*block_tokens=*/4);
  // Parent: 6 positions of distinguishable rows.
  for (int pos = 0; pos < 6; ++pos) {
    for (int l = 0; l < 2; ++l) {
      kv.KeyRow(l, 0, pos)[0] = F16(static_cast<float>(100 * l + pos));
      kv.ValueRow(l, 0, pos)[0] = F16(static_cast<float>(100 * l + pos) + 0.5f);
    }
    kv.Advance(0);
  }
  const int64_t h = kv.Retain(0);
  kv.ShareFromHandle(h, 1, 6);
  // The fork reads the parent's rows through its own table without any copy.
  for (int pos = 0; pos < 6; ++pos) {
    EXPECT_EQ(kv.KeyRowAt(1, 1, pos)[0].ToFloat(), 100.0f + pos);
  }
  // Divergent append: the child's write CoW-splits the tail block; the copied block carries
  // every layer's earlier rows, and the parent's rows stay untouched.
  kv.KeyRow(0, 1, 6)[0] = F16(-1.0f);
  kv.KeyRow(1, 1, 6)[0] = F16(-2.0f);
  kv.Advance(1);
  EXPECT_EQ(kv.KeyRowAt(1, 1, 4)[0].ToFloat(), 104.0f);  // copied shared rows intact
  EXPECT_EQ(kv.KeyRowAt(1, 1, 6)[0].ToFloat(), -2.0f);
  // Parent appends its own position 6 independently of the child's.
  kv.KeyRow(0, 0, 6)[0] = F16(7.0f);
  kv.KeyRow(1, 0, 6)[0] = F16(8.0f);
  kv.Advance(0);
  EXPECT_EQ(kv.KeyRowAt(1, 0, 6)[0].ToFloat(), 8.0f);
  EXPECT_EQ(kv.KeyRowAt(1, 1, 6)[0].ToFloat(), -2.0f);
  EXPECT_EQ(kv.ValueRowAt(1, 0, 5)[0].ToFloat(), 105.5f);
  // Two splits: the child's divergent append, and the parent's own append into its tail
  // block, which the retained handle pins as an immutable snapshot.
  EXPECT_EQ(kv.stats().cow_splits, 2);
  kv.DropHandle(h);
}

// --- quantized KV storage (docs/kv_quantization.md) ---

TEST(KvQuantTest, RoundTripErrorRespectsScaleBoundPerGroupSize) {
  // Q4_0/Q8_0 group quantization bounds the per-element error by half the group scale
  // (plus F16 rounding of the scale and the product). Checked per group size on the real
  // write/read path, and against the cache's own accumulated error proxy.
  hexllm::Rng rng(0xBEEF);
  const int kv_dim = 64;
  const int positions = 8;
  double rel_rms_int4 = 0.0;
  double rel_rms_int8 = 0.0;
  for (const int group : {16, 32, 64}) {
    for (const hquant::KvDtype dtype : {hquant::KvDtype::kInt8, hquant::KvDtype::kInt4}) {
      PagedKvCache kv(/*layers=*/1, kv_dim, /*num_seqs=*/1, /*max_context=*/64,
                      /*block_tokens=*/4, /*num_blocks=*/0, dtype, group);
      std::vector<F16> src(static_cast<size_t>(kv_dim));
      std::vector<F16> back(static_cast<size_t>(kv_dim));
      for (int pos = 0; pos < positions; ++pos) {
        for (auto& x : src) {
          x = F16(static_cast<float>(rng.NextGaussian()));
        }
        kv.WriteKeyRow(0, 0, pos, src.data());
        kv.WriteValueRow(0, 0, pos, src.data());
        kv.Advance(0);
        kv.ReadKeyRow(0, 0, pos, back.data());
        for (int g = 0; g < kv_dim; g += group) {
          float amax = 0.0f;
          for (int j = 0; j < group; ++j) {
            amax = std::max(amax, std::abs(src[static_cast<size_t>(g + j)].ToFloat()));
          }
          // Q8_0's symmetric grid bounds the error at half a step; Q4_0's asymmetric grid
          // (levels -8d..+7d) clamps opposite-sign extremes up to a FULL step. Plus F16
          // rounding slop for the scale and the product.
          const float bound = (dtype == hquant::KvDtype::kInt4 ? amax / 8.0f
                                                               : 0.5f * amax / 127.0f) +
                              amax / 512.0f;
          for (int j = 0; j < group; ++j) {
            const float err = std::abs(back[static_cast<size_t>(g + j)].ToFloat() -
                                       src[static_cast<size_t>(g + j)].ToFloat());
            EXPECT_LE(err, bound) << "group=" << group << " dtype=" << static_cast<int>(dtype);
          }
        }
      }
      // The write-time proxy saw every row and agrees with the bound scale-wise.
      const KvQuantStats& st = kv.quant_stats();
      EXPECT_EQ(st.rows, int64_t{2} * positions);
      EXPECT_EQ(st.elems, int64_t{2} * positions * kv_dim);
      EXPECT_GT(st.max_abs_err, 0.0);
      EXPECT_GT(st.bytes_saved(), 0);
      if (group == 32) {
        (dtype == hquant::KvDtype::kInt4 ? rel_rms_int4 : rel_rms_int8) = st.rel_rms();
      }
    }
  }
  // 4-bit storage is strictly lossier than 8-bit, and both stay inside the documented
  // bounds (docs/kv_quantization.md).
  EXPECT_GT(rel_rms_int4, rel_rms_int8);
  EXPECT_LT(rel_rms_int8, 2e-2);
  EXPECT_LT(rel_rms_int4, 2e-1);
}

TEST(KvQuantTest, QuantizedCowForkAndPauseResumeKeepRowsIntact) {
  // The fork/pause machinery is dtype-blind (it moves whole blocks), but only if every
  // CoW copy moves the *quantized* block bytes. Distinguishable rows catch any mixing of
  // payload and scale bytes across the split.
  PagedKvCache kv(/*layers=*/1, /*kv_dim=*/64, /*num_seqs=*/2, /*max_context=*/64,
                  /*block_tokens=*/4, /*num_blocks=*/0, hquant::KvDtype::kInt4,
                  /*quant_group=*/32);
  std::vector<F16> row(64);
  std::vector<std::vector<F16>> truth;  // post-quantization ground truth per position
  for (int pos = 0; pos < 6; ++pos) {
    for (int j = 0; j < 64; ++j) {
      row[static_cast<size_t>(j)] =
          F16(0.125f * static_cast<float>((pos + 1) * ((j % 7) - 3)));
    }
    kv.WriteKeyRow(0, 0, pos, row.data());
    kv.WriteValueRow(0, 0, pos, row.data());
    kv.Advance(0);
    truth.emplace_back(64);
    kv.ReadKeyRow(0, 0, pos, truth.back().data());
  }

  // Fork: the child reads the parent's quantized rows through its own table.
  const int64_t h = kv.Retain(0);
  kv.ShareFromHandle(h, 1, 6);
  std::vector<F16> got(64);
  for (int pos = 0; pos < 6; ++pos) {
    kv.ReadKeyRow(0, 1, pos, got.data());
    for (int j = 0; j < 64; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(j)].bits(),
                truth[static_cast<size_t>(pos)][static_cast<size_t>(j)].bits())
          << pos << "," << j;
    }
  }
  // Divergent append CoW-splits the tail; the copied block carries positions 4-5 intact
  // and the parent never sees the child's position 6.
  for (auto& x : row) {
    x = F16(-1.0f);
  }
  kv.WriteKeyRow(0, 1, 6, row.data());
  kv.WriteValueRow(0, 1, 6, row.data());
  kv.Advance(1);
  kv.ReadKeyRow(0, 1, 5, got.data());
  EXPECT_EQ(got[0].bits(), truth[5][0].bits());
  for (auto& x : row) {
    x = F16(2.0f);
  }
  kv.WriteKeyRow(0, 0, 6, row.data());
  kv.WriteValueRow(0, 0, 6, row.data());
  kv.Advance(0);
  kv.ReadKeyRow(0, 0, 6, got.data());
  EXPECT_EQ(got[0].ToFloat(), 2.0f);
  kv.ReadKeyRow(0, 1, 6, got.data());
  EXPECT_EQ(got[0].ToFloat(), -1.0f);
  EXPECT_EQ(kv.stats().cow_splits, 2);
  kv.DropHandle(h);

  // Pause/resume: snapshot the child, reset its slot, map the snapshot back. Every row
  // survives and the resumed append extends in place (no further CoW split).
  const int64_t snap = kv.Retain(1);
  kv.ResetSeq(1);
  kv.ShareFromHandle(snap, 1, 7);
  kv.DropHandle(snap);
  kv.ReadKeyRow(0, 1, 5, got.data());
  EXPECT_EQ(got[0].bits(), truth[5][0].bits());
  kv.ReadKeyRow(0, 1, 6, got.data());
  EXPECT_EQ(got[0].ToFloat(), -1.0f);
  kv.WriteKeyRow(0, 1, 7, row.data());
  kv.WriteValueRow(0, 1, 7, row.data());
  kv.Advance(1);
  EXPECT_EQ(kv.stats().cow_splits, 2);
}

TEST(KvQuantTest, F16ModeIsBitExactAndMatchesLegacyLayout) {
  // The F16 guard: the defaulted constructor and an explicit kF16 are the same mode, rows
  // round-trip bit-exactly through the Write/Read API (it is a memcpy), and no quant
  // bookkeeping runs — the legacy byte/checksum surface is untouched.
  PagedKvCache legacy(/*layers=*/2, /*kv_dim=*/8, /*num_seqs=*/1, /*max_context=*/64,
                      /*block_tokens=*/4);
  PagedKvCache f16(2, 8, 1, 64, 4, /*num_blocks=*/0, hquant::KvDtype::kF16);
  EXPECT_EQ(legacy.dtype(), hquant::KvDtype::kF16);
  EXPECT_EQ(f16.row_bytes(), int64_t{8} * 2);
  EXPECT_EQ(legacy.byte_size(), f16.byte_size());
  hexllm::Rng rng(7);
  std::vector<F16> src(8);
  std::vector<F16> back(8);
  for (int pos = 0; pos < 6; ++pos) {
    for (auto& x : src) {
      x = F16(static_cast<float>(rng.NextGaussian()));
    }
    // Legacy direct-row write vs the new Write API must land identical bits.
    std::memcpy(legacy.KeyRow(0, 0, pos), src.data(), src.size() * sizeof(F16));
    f16.WriteKeyRow(0, 0, pos, src.data());
    legacy.Advance(0);
    f16.Advance(0);
    EXPECT_EQ(std::memcmp(legacy.KeyRowAt(0, 0, pos), f16.KeyRowAt(0, 0, pos),
                          src.size() * sizeof(F16)),
              0);
    f16.ReadKeyRow(0, 0, pos, back.data());
    EXPECT_EQ(std::memcmp(back.data(), src.data(), src.size() * sizeof(F16)), 0);
  }
  EXPECT_EQ(f16.quant_stats().rows, 0);  // no proxy accumulation in F16 mode
}

TEST(KvQuantTest, PagedQuantAttentionMatchesDequantizedF16Attention) {
  // FlashAttentionPagedQ's in-kernel dequant promises ReadKeyRow/ReadValueRow numerics:
  // attention over the quantized cache must be BIT-identical to F16 paged attention over a
  // cache holding the round-tripped rows. Also checks the dequant shows up in the ledger
  // (its own kernel counter plus HVX work under "attn.kv_dequant").
  const int head_dim = 64;
  const int kv_len = 19;  // straddles blocks, partial tail
  const int q_len = 2;
  const int block_tokens = 8;
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hkern::ExpLut lut(dev);
  PagedKvCache qkv(1, head_dim, 1, 64, block_tokens, 0, hquant::KvDtype::kInt4, 32);
  PagedKvCache fkv(1, head_dim, 1, 64, block_tokens);
  hexllm::Rng rng(0xA17E);
  std::vector<F16> row(head_dim);
  std::vector<F16> rt(head_dim);
  for (int pos = 0; pos < kv_len; ++pos) {
    for (auto& x : row) {
      x = F16(static_cast<float>(rng.NextGaussian()));
    }
    qkv.WriteKeyRow(0, 0, pos, row.data());
    qkv.ReadKeyRow(0, 0, pos, rt.data());
    fkv.WriteKeyRow(0, 0, pos, rt.data());
    for (auto& x : row) {
      x = F16(static_cast<float>(rng.NextGaussian()));
    }
    qkv.WriteValueRow(0, 0, pos, row.data());
    qkv.ReadValueRow(0, 0, pos, rt.data());
    fkv.WriteValueRow(0, 0, pos, rt.data());
    qkv.Advance(0);
    fkv.Advance(0);
  }
  std::vector<const uint8_t*> qk(8), qvv(8);
  std::vector<const F16*> fk(8), fv(8);
  qkv.FillQuantBlockPointers(0, 0, kv_len, qk.data(), qvv.data());
  fkv.FillBlockPointers(0, 0, kv_len, fk.data(), fv.data());
  hkern::PagedQKvHeadView qview;
  qview.k_blocks = qk.data();
  qview.v_blocks = qvv.data();
  qview.block_tokens = block_tokens;
  qview.row_bytes = qkv.row_bytes();
  qview.payload_offset = 0;
  qview.scales_offset = qkv.scales_offset();
  qview.group = 32;
  qview.dtype = hquant::KvDtype::kInt4;
  hkern::PagedKvHeadView fview;
  fview.k_blocks = fk.data();
  fview.v_blocks = fv.data();
  fview.block_tokens = block_tokens;
  fview.row_stride = head_dim;
  fview.head_offset = 0;

  std::vector<F16> q(static_cast<size_t>(q_len) * head_dim);
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<F16> oq(q.size()), of(q.size());
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  hkern::FlashAttentionPagedQ(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), head_dim,
                              qview, oq.data(), head_dim, q_len, kv_len, head_dim, scale,
                              /*q_pos_offset=*/kv_len - q_len);
  hkern::FlashAttentionPagedF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), head_dim,
                                fview, of.data(), head_dim, q_len, kv_len, head_dim, scale,
                                kv_len - q_len);
  for (size_t i = 0; i < oq.size(); ++i) {
    EXPECT_EQ(oq[i].bits(), of[i].bits()) << i;
  }
  EXPECT_EQ(dev.ledger().Count("kernel.attn_kv_dequant.calls"), 1);
}

// --- tiered flash offload (docs/long_context.md) ---

TEST(KvOffloadTest, LruEvictionSkipsPinnedAndSharedBlocks) {
  constexpr int64_t kBlockBytes = 64;
  BlockPool pool(6);
  std::vector<uint8_t> slab(6 * kBlockBytes);
  KvOffloadOptions opts;
  opts.resident_block_budget = 2;
  KvOffloadEngine off(pool, slab.data(), kBlockBytes, opts);
  ASSERT_TRUE(off.enabled());
  std::vector<int> blocks;
  for (int i = 0; i < 4; ++i) {
    const int b = pool.Alloc();
    ASSERT_GE(b, 0);
    std::memset(slab.data() + b * kBlockBytes, 0x10 + i, kBlockBytes);
    off.BeginStep();
    off.Touch(b);  // stamps rise with i: blocks[0] is the LRU victim
    blocks.push_back(b);
  }
  // blocks[1] gains a second reference (CoW share / retained handle) — exempt from
  // eviction despite its old stamp.
  pool.AddRef(blocks[1]);
  EXPECT_EQ(off.EnforceBudget(), 2);
  EXPECT_FALSE(pool.resident(blocks[0]));
  EXPECT_FALSE(pool.resident(blocks[2]));
  EXPECT_TRUE(pool.resident(blocks[1]));
  EXPECT_TRUE(pool.resident(blocks[3]));
  EXPECT_TRUE(off.HasFlashCopy(blocks[0]));
  EXPECT_TRUE(off.HasFlashCopy(blocks[2]));
  EXPECT_FALSE(off.HasFlashCopy(blocks[1]));
  // The demoted DRAM copies are destroyed (0xFF bytes = F16 NaNs) so a read that skips the
  // promotion fault fails loudly instead of returning stale rows.
  for (int64_t i = 0; i < kBlockBytes; ++i) {
    ASSERT_EQ(slab[static_cast<size_t>(blocks[0] * kBlockBytes + i)], 0xFF) << i;
  }
  EXPECT_EQ(off.stats().demotions, 2);
  EXPECT_EQ(off.stats().wear_write_ops, 2);
  EXPECT_EQ(off.stats().flash_write_bytes, 2 * kBlockBytes);
  EXPECT_EQ(pool.resident_blocks(), 2);  // live AND resident
}

TEST(KvOffloadTest, FaultRestoresBitIdenticalPayloadAndAccountingBalances) {
  constexpr int64_t kBlockBytes = 96;
  BlockPool pool(4);
  std::vector<uint8_t> slab(4 * kBlockBytes);
  KvOffloadOptions opts;
  opts.resident_block_budget = 1;
  KvOffloadEngine off(pool, slab.data(), kBlockBytes, opts);
  const int a = pool.Alloc();
  const int b = pool.Alloc();
  std::vector<uint8_t> payload(kBlockBytes);
  for (int64_t i = 0; i < kBlockBytes; ++i) {
    payload[static_cast<size_t>(i)] = static_cast<uint8_t>(i * 7 + 3);
  }
  std::memcpy(slab.data() + a * kBlockBytes, payload.data(), kBlockBytes);
  off.BeginStep();
  off.Touch(a);
  off.BeginStep();
  off.Touch(b);
  ASSERT_EQ(off.EnforceBudget(), 1);  // `a` is older — demoted
  ASSERT_FALSE(pool.resident(a));
  // Demand fault on an idle read channel: the step absorbs the full block read cost.
  const double stall = off.EnsureResidentBlock(a);
  EXPECT_GT(stall, 0.0);
  EXPECT_TRUE(pool.resident(a));
  EXPECT_FALSE(off.HasFlashCopy(a));
  EXPECT_EQ(std::memcmp(slab.data() + a * kBlockBytes, payload.data(),
                        static_cast<size_t>(kBlockBytes)),
            0);
  const KvOffloadStats& st = off.stats();
  EXPECT_EQ(st.demotions, 1);
  EXPECT_EQ(st.promotions, 1);
  EXPECT_EQ(st.demand_faults, 1);
  EXPECT_EQ(st.prefetch_hits, 0);
  EXPECT_EQ(st.flash_read_bytes, kBlockBytes);
  EXPECT_EQ(st.flash_write_bytes, kBlockBytes);
  EXPECT_DOUBLE_EQ(st.stall_seconds, stall);
}

TEST(KvOffloadTest, PrefetchedReadCompletesFreeAfterOverlap) {
  constexpr int64_t kBlockBytes = 96;
  BlockPool pool(4);
  std::vector<uint8_t> slab(4 * kBlockBytes);
  KvOffloadOptions opts;
  opts.resident_block_budget = 1;
  KvOffloadEngine off(pool, slab.data(), kBlockBytes, opts);
  const int a = pool.Alloc();
  const int b = pool.Alloc();
  std::vector<uint8_t> payload(kBlockBytes);
  for (int64_t i = 0; i < kBlockBytes; ++i) {
    payload[static_cast<size_t>(i)] = static_cast<uint8_t>(i * 13 + 1);
  }
  std::memcpy(slab.data() + a * kBlockBytes, payload.data(), kBlockBytes);
  off.BeginStep();
  off.Touch(a);
  off.BeginStep();
  off.Touch(b);
  ASSERT_EQ(off.EnforceBudget(), 1);
  // Prefetch issued a step ahead; one second of overlapped NPU compute dwarfs the read
  // cost, so the later access is a free hit.
  const int want[] = {a};
  off.PrefetchAsync(want);
  off.AdvanceClock(1.0);
  EXPECT_EQ(off.EnsureResident(want), 0.0);
  EXPECT_TRUE(pool.resident(a));
  EXPECT_EQ(std::memcmp(slab.data() + a * kBlockBytes, payload.data(),
                        static_cast<size_t>(kBlockBytes)),
            0);
  EXPECT_EQ(off.stats().prefetch_hits, 1);
  EXPECT_EQ(off.stats().demand_faults, 0);
  EXPECT_EQ(off.stats().stall_seconds, 0.0);
}

TEST(PagedKvCacheTest, OffloadDemoteFaultRoundTripPreservesRowsThroughCache) {
  // 16 positions at block_tokens=4 fill four blocks; budget 2 demotes the two oldest.
  PagedKvCache kv(1, 4, 1, 64, /*block_tokens=*/4);
  KvOffloadOptions opts;
  opts.resident_block_budget = 2;
  kv.ConfigureOffload(opts);
  ASSERT_TRUE(kv.offload_enabled());
  auto row_val = [](int pos, int i) { return static_cast<float>(pos * 10 + i); };
  std::vector<F16> row(4);
  for (int pos = 0; pos < 16; ++pos) {
    for (int i = 0; i < 4; ++i) {
      row[static_cast<size_t>(i)] = F16(row_val(pos, i));
    }
    kv.WriteKeyRow(0, 0, pos, row.data());
    for (int i = 0; i < 4; ++i) {
      row[static_cast<size_t>(i)] = F16(-row_val(pos, i));
    }
    kv.WriteValueRow(0, 0, pos, row.data());
    kv.offload()->BeginStep();
    kv.offload()->Touch(kv.BlockIdForTest(0, pos / 4));
    kv.Advance(0);
  }
  const BlockPool& pool = kv.PoolForTest();
  EXPECT_EQ(kv.offload()->EnforceBudget(), 2);
  const int b0 = kv.BlockIdForTest(0, 0);
  const int b1 = kv.BlockIdForTest(0, 1);
  EXPECT_FALSE(pool.resident(b0));
  EXPECT_FALSE(pool.resident(b1));
  EXPECT_TRUE(kv.offload()->HasFlashCopy(b0));
  EXPECT_TRUE(kv.offload()->HasFlashCopy(b1));
  EXPECT_TRUE(std::isnan(kv.KeyRowAt(0, 0, 0)[0].ToFloat()));
  // Fault the whole attended set back in: every row restores bit-identically.
  const int want[] = {0, 1, 2, 3};
  EXPECT_GT(kv.EnsureResidentTableBlocks(0, want), 0.0);
  for (int pos = 0; pos < 16; ++pos) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(kv.KeyRowAt(0, 0, pos)[i].ToFloat(), row_val(pos, i)) << pos << "," << i;
      EXPECT_EQ(kv.ValueRowAt(0, 0, pos)[i].ToFloat(), -row_val(pos, i)) << pos << "," << i;
    }
  }
  // Accounting balances: everything demoted came back, byte-for-byte.
  const KvOffloadStats& st = kv.offload()->stats();
  EXPECT_EQ(st.demotions, 2);
  EXPECT_EQ(st.promotions, 2);
  EXPECT_EQ(st.flash_read_bytes, st.flash_write_bytes);
  EXPECT_EQ(pool.resident_blocks(), 4);
}

TEST(PagedKvCacheTest, OffloadPinnedBlocksNeverEvictAndAppendFaultsDemotedTail) {
  PagedKvCache kv(1, 4, 1, 64, /*block_tokens=*/4);
  KvOffloadOptions opts;
  opts.resident_block_budget = 1;
  kv.ConfigureOffload(opts);
  std::vector<F16> row(4);
  auto write_pos = [&](int pos) {
    for (int i = 0; i < 4; ++i) {
      row[static_cast<size_t>(i)] = F16(static_cast<float>(pos + 1));
    }
    kv.WriteKeyRow(0, 0, pos, row.data());
    kv.Advance(0);
  };
  for (int pos = 0; pos < 6; ++pos) {
    write_pos(pos);  // block 0 full, block 1 half
  }
  const BlockPool& pool = kv.PoolForTest();
  const int b0 = kv.BlockIdForTest(0, 0);
  const int b1 = kv.BlockIdForTest(0, 1);

  // Both blocks pinned through a retained handle: over budget, but nothing is evictable,
  // so EnforceBudget refuses rather than demoting a pinned block.
  const int64_t h = kv.Retain(0);
  EXPECT_EQ(kv.offload()->EnforceBudget(), 0);
  EXPECT_TRUE(pool.resident(b0));
  EXPECT_TRUE(pool.resident(b1));
  kv.DropHandle(h);

  // Unpinned with b0 touched more recently, the LRU victim is the tail block b1.
  kv.offload()->BeginStep();
  kv.offload()->Touch(b0);
  EXPECT_EQ(kv.offload()->EnforceBudget(), 1);
  EXPECT_FALSE(pool.resident(b1));
  EXPECT_TRUE(std::isnan(kv.KeyRowAt(0, 0, 4)[0].ToFloat()));

  // Appending into the demoted tail block auto-faults it (FaultForWrite): the new row
  // lands AND the block's earlier rows come back bit-identical.
  const int64_t faults_before = kv.offload()->stats().demand_faults;
  write_pos(6);
  EXPECT_TRUE(pool.resident(b1));
  EXPECT_EQ(kv.offload()->stats().demand_faults, faults_before + 1);
  EXPECT_EQ(kv.KeyRowAt(0, 0, 4)[0].ToFloat(), 5.0f);
  EXPECT_EQ(kv.KeyRowAt(0, 0, 5)[2].ToFloat(), 6.0f);
  EXPECT_EQ(kv.KeyRowAt(0, 0, 6)[0].ToFloat(), 7.0f);
}

#ifndef NDEBUG
TEST(PagedKvCacheTest, TruncateSeqPoisonsRejectedTailRowsInDebug) {
  PagedKvCache kv(1, 4, 1, 64, /*block_tokens=*/4);
  std::vector<F16> row(4);
  for (int pos = 0; pos < 6; ++pos) {
    for (int i = 0; i < 4; ++i) {
      row[static_cast<size_t>(i)] = F16(static_cast<float>(pos + 1));
    }
    kv.WriteKeyRow(0, 0, pos, row.data());
    kv.Advance(0);
  }
  const F16* row4 = kv.KeyRowAt(0, 0, 4);
  const F16* row5 = kv.KeyRowAt(0, 0, 5);
  // Mid-block speculative rollback: no whole blocks drop, but the rejected row inside the
  // kept partial tail block is poisoned while the still-live row stays intact.
  EXPECT_EQ(kv.TruncateSeq(0, 5), 0);
  EXPECT_EQ(row4[0].ToFloat(), 5.0f);
  EXPECT_TRUE(std::isnan(row5[0].ToFloat()));
}
#endif

#ifndef NDEBUG
TEST(PagedKvCacheTest, FreedBlocksArePoisonedWithNanInDebug) {
  PagedKvCache kv(1, 4, 1, 64, /*block_tokens=*/4);
  kv.KeyRow(0, 0, 0)[0] = F16(3.0f);
  kv.Advance(0);
  const F16* row = kv.KeyRowAt(0, 0, 0);
  EXPECT_EQ(row[0].ToFloat(), 3.0f);
  kv.ResetSeq(0);
  // The storage the stale pointer referenced is NaN-filled: a use-after-free of reclaimed
  // KV rows corrupts attention loudly instead of silently reusing old values.
  EXPECT_TRUE(std::isnan(row[0].ToFloat()));
}
#endif

}  // namespace
}  // namespace hkv

namespace hserve {
namespace {

ServeJob Job(int id, int decode, int group = -1, int prompt = 0, int context = 0,
             int barrier = 0, int parent = -1) {
  ServeJob j;
  j.id = id;
  j.prompt_group = group;
  j.prompt_tokens = prompt;
  j.context_tokens = context;
  j.decode_tokens = decode;
  j.barrier = barrier;
  j.parent_job = parent;
  return j;
}

void ExpectStatsEqual(const hkv::KvStats& a, const hkv::KvStats& b) {
  EXPECT_EQ(a.block_tokens, b.block_tokens);
  EXPECT_EQ(a.bytes_per_block, b.bytes_per_block);
  EXPECT_EQ(a.physical_blocks, b.physical_blocks);
  EXPECT_EQ(a.peak_physical_blocks, b.peak_physical_blocks);
  EXPECT_EQ(a.logical_blocks, b.logical_blocks);
  EXPECT_EQ(a.peak_logical_blocks, b.peak_logical_blocks);
  EXPECT_EQ(a.cow_splits, b.cow_splits);
}

class ServingKvTest : public ::testing::Test {
 protected:
  ServingKvTest()
      : config_(hllm::ToyConfig()),
        weights_(hllm::ModelWeights::Random(config_, 42)),
        dev_(hexsim::OnePlus12()) {
    toy_options_.model = &config_;
    toy_options_.device = &hexsim::OnePlus12();
    toy_engine_ = std::make_unique<hrt::Engine>(toy_options_);
  }

  // A beam-search-shaped fork stream: `rounds` expansion waves over one prompt group, each
  // candidate forking a kept stem of the previous round.
  static std::vector<ServeJob> BeamForkStream(int prompt, int rounds, int width,
                                              int expansion, int step_tokens) {
    std::vector<ServeJob> jobs;
    std::vector<int> prev;
    for (int r = 0; r < rounds; ++r) {
      std::vector<int> cur;
      for (int c = 0; c < width * expansion; ++c) {
        const int id = static_cast<int>(jobs.size());
        const int parent = r > 0 ? prev[static_cast<size_t>(c / expansion)] : -1;
        jobs.push_back(Job(id, step_tokens, /*group=*/0, prompt,
                           /*context=*/r * step_tokens, /*barrier=*/r, parent));
        cur.push_back(id);
      }
      prev = std::move(cur);
    }
    return jobs;
  }

  hllm::ModelConfig config_;
  hllm::ModelWeights weights_;
  hexsim::NpuDevice dev_;
  hrt::EngineOptions toy_options_;
  std::unique_ptr<hrt::Engine> toy_engine_;
};

TEST_F(ServingKvTest, ForkContinuationMatchesUnforkedDecodeTokenForToken) {
  // Zero re-prefill, verified on real numerics: a job that decodes 8 tokens must produce
  // the SAME tokens as a parent decoding 4 followed by a fork child decoding 4 more off the
  // parent's retained KV. Any re-prefill drift or CoW corruption breaks the equality.
  ServeOptions so;
  so.max_batch = 1;
  const std::vector<ServeJob> whole = {Job(0, 8, /*group=*/0, /*prompt=*/8)};
  const std::vector<ServeJob> forked = {
      Job(0, 4, 0, 8, 0, /*barrier=*/0),
      Job(1, 4, 0, 8, /*context=*/4, /*barrier=*/1, /*parent=*/0),
  };

  hexsim::NpuDevice dev1(hexsim::OnePlus12());
  FunctionalBackend b1(dev1, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rw = ContinuousBatcher(b1, so).Run(whole);
  ASSERT_TRUE(rw.error.empty()) << rw.error;

  hexsim::NpuDevice dev2(hexsim::OnePlus12());
  FunctionalBackend b2(dev2, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rf = ContinuousBatcher(b2, so).Run(forked);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(rf.forked_admissions, 1);
  EXPECT_EQ(rf.prefilled_tokens, 8);  // the prompt, once; the fork re-prefilled nothing
  EXPECT_EQ(rw.prefill_s, rf.prefill_s);
  std::vector<int> stitched = rf.job_tokens.at(0);
  stitched.insert(stitched.end(), rf.job_tokens.at(1).begin(), rf.job_tokens.at(1).end());
  EXPECT_EQ(stitched, rw.job_tokens.at(0));
}

TEST_F(ServingKvTest, SiblingForksShareOneStemWithoutCrossCorruption) {
  // Two children fork the same parent and decode in the same batch. Each child's first
  // divergent append CoW-splits the shared tail; if either write leaked into the shared
  // blocks, the siblings' (deterministic) continuations would differ from the lone-child
  // reference computed above.
  ServeOptions so;
  so.max_batch = 2;
  const std::vector<ServeJob> jobs = {
      Job(0, 4, 0, 8, 0, 0),
      Job(1, 4, 0, 8, 4, 1, /*parent=*/0),
      Job(2, 4, 0, 8, 4, 1, /*parent=*/0),
  };
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  FunctionalBackend backend(dev, weights_, so.max_batch, 64);
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.forked_admissions, 2);
  // Same stem + deterministic argmax decode => identical sibling continuations.
  EXPECT_EQ(r.job_tokens.at(1), r.job_tokens.at(2));
  // Both siblings CoW-split the retained stem block on their first divergent append (the
  // whole 12-token stem fits in one 32-position block, so sharing here is sub-block).
  EXPECT_EQ(r.kv.cow_splits, 2);
  EXPECT_EQ(r.prefilled_tokens, 8);  // the stem's prompt was never re-prefilled
}

TEST_F(ServingKvTest, ForkHeavyBeamStreamHasBackendBlockParity) {
  // One fork-heavy stream through both backends: scheduling must agree AND the storage-free
  // analytic accountant must report bit-identical block statistics to the real paged cache.
  const std::vector<ServeJob> jobs =
      BeamForkStream(/*prompt=*/8, /*rounds=*/3, /*width=*/2, /*expansion=*/2,
                     /*step_tokens=*/4);
  ServeOptions so;
  so.max_batch = 4;
  so.record_steps = true;

  AnalyticBackend analytic(*toy_engine_);
  const ScheduleResult ra = ContinuousBatcher(analytic, so).Run(jobs);
  ASSERT_TRUE(ra.error.empty()) << ra.error;

  FunctionalBackend functional(dev_, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rf = ContinuousBatcher(functional, so).Run(jobs);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(ra.steps, rf.steps);
  EXPECT_EQ(ra.decoded_tokens, rf.decoded_tokens);
  EXPECT_EQ(ra.forked_admissions, rf.forked_admissions);
  EXPECT_EQ(ra.forked_admissions, 8);  // rounds 1..2, 4 candidates each
  EXPECT_EQ(ra.step_active, rf.step_active);
  ASSERT_EQ(ra.admissions.size(), rf.admissions.size());
  for (size_t i = 0; i < ra.admissions.size(); ++i) {
    EXPECT_EQ(ra.admissions[i].job_id, rf.admissions[i].job_id) << i;
    EXPECT_EQ(ra.admissions[i].slot, rf.admissions[i].slot) << i;
    EXPECT_EQ(ra.admissions[i].step, rf.admissions[i].step) << i;
  }
  ExpectStatsEqual(ra.kv, rf.kv);
  // The whole group shares one prompt: charged once, and fork admissions re-prefill zero
  // tokens in both backends (prefill time == the single prompt's chunked prefill).
  EXPECT_EQ(ra.prefilled_tokens, 8);
  EXPECT_EQ(rf.prefilled_tokens, 8);
  EXPECT_GT(rf.kv.cow_splits, 0);  // stems really were shared, then diverged
}

TEST_F(ServingKvTest, SmallKvPoolDefersAdmissionInsteadOfDeadlocking) {
  // Pool of 4 blocks (block = 32 positions); each job needs 2 blocks (decode 33 from empty
  // context), so only two jobs fit at once. The batcher must defer the rest and still
  // complete everything.
  ServeOptions so;
  so.max_batch = 4;
  so.record_steps = true;
  std::vector<ServeJob> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(Job(i, 33));
  }
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  FunctionalBackend backend(dev, weights_, so.max_batch, /*max_context=*/64,
                            /*kv_pool_blocks=*/4);
  const ScheduleResult r = ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(static_cast<int>(r.completions.size()), 4);
  for (const int occ : r.step_occupied) {
    EXPECT_LE(occ, 2);  // the pool, not max_batch, bounds concurrency here
  }
  EXPECT_LE(r.kv.peak_physical_blocks, 4);
}

TEST_F(ServingKvTest, KvBudgetTooSmallForOneJobReportsError) {
  AnalyticBackend::Options bo;
  bo.kv_budget_bytes = config_.KvCacheBytes(hkv::kDefaultBlockTokens);  // exactly 1 block
  AnalyticBackend backend(*toy_engine_, bo);
  ServeOptions so;
  so.max_batch = 2;
  const ScheduleResult r =
      ContinuousBatcher(backend, so).Run({Job(0, /*decode=*/64)});  // needs 2 blocks
  EXPECT_FALSE(r.error.empty());
  EXPECT_NE(r.error.find("KV budget"), std::string::npos);
  EXPECT_EQ(r.completions.size(), 0u);
}

TEST_F(ServingKvTest, BestOfNSharingMeetsThePaperMemoryBound) {
  // Best-of-N N=8 over one prompt: physical KV must stay within
  // (1 + N * decode_frac) x dense-single-sequence bytes — the prompt is stored once, only
  // the N decode tails are private. P and D are block multiples so the bound is exact.
  constexpr int kN = 8;
  constexpr int kPrompt = 1024;
  constexpr int kDecode = 256;
  ServeOptions so;
  so.max_batch = kN;
  std::vector<ServeJob> shared_jobs;
  std::vector<ServeJob> dense_jobs;
  for (int i = 0; i < kN; ++i) {
    shared_jobs.push_back(Job(i, kDecode, /*group=*/0, kPrompt));
    dense_jobs.push_back(Job(i, kDecode, /*group=*/-1, kPrompt));
  }
  AnalyticBackend shared_backend(*toy_engine_);
  const ScheduleResult rs = ContinuousBatcher(shared_backend, so).Run(shared_jobs);
  ASSERT_TRUE(rs.error.empty()) << rs.error;
  AnalyticBackend dense_backend(*toy_engine_);
  const ScheduleResult rd = ContinuousBatcher(dense_backend, so).Run(dense_jobs);
  ASSERT_TRUE(rd.error.empty()) << rd.error;

  const double decode_frac =
      static_cast<double>(kDecode) / static_cast<double>(kPrompt + kDecode);
  const int64_t dense_single =
      config_.KvCacheBytes(kPrompt + kDecode);  // one dense sequence, FP16 K+V
  const double bound = (1.0 + kN * decode_frac) * static_cast<double>(dense_single);
  EXPECT_LE(static_cast<double>(rs.kv.peak_physical_bytes()), bound);
  // Sanity on both sides: without grouping every sample stores the prompt privately.
  EXPECT_EQ(rd.kv.peak_physical_bytes(), int64_t{kN} * dense_single);
  EXPECT_EQ(rs.kv.peak_logical_bytes(), rd.kv.peak_logical_bytes());
  // Concretely: P + N*D blocks vs N*(P+D) blocks => >3x saving at these shapes.
  EXPECT_LT(3 * rs.kv.peak_physical_blocks, rd.kv.peak_physical_blocks);
}

TEST_F(ServingKvTest, MalformedJobsReportErrorsInsteadOfAborting) {
  AnalyticBackend backend(*toy_engine_);
  ServeOptions so;
  so.max_batch = 2;
  ContinuousBatcher batcher(backend, so);

  {  // decode must be positive
    const ScheduleResult r = batcher.Run({Job(0, 0)});
    EXPECT_NE(r.error.find("decode_tokens"), std::string::npos);
  }
  {  // negative lengths
    ServeJob j = Job(0, 4);
    j.prompt_tokens = -1;
    EXPECT_FALSE(batcher.Run({j}).error.empty());
  }
  {  // context overflow vs the backend's limit
    const ScheduleResult r = batcher.Run({Job(0, 8, -1, 0, /*context=*/1 << 20)});
    EXPECT_NE(r.error.find("context limit"), std::string::npos);
  }
  {  // fork edges: unknown parent, self-fork via duplicate ids, same-barrier parent,
     // context mismatch
    EXPECT_NE(batcher.Run({Job(1, 4, 0, 0, 0, 1, /*parent=*/99)}).error.find("not in"),
              std::string::npos);
    EXPECT_FALSE(batcher
                     .Run({Job(0, 4, 0, 8, 0, 0),
                           Job(0, 4, 0, 8, 4, 1, /*parent=*/0)})  // duplicate id
                     .error.empty());
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, 4, /*barrier=*/0,
                                                   /*parent=*/0)})
                  .error.find("earlier barrier"),
              std::string::npos);
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, /*context=*/2, 1,
                                                   /*parent=*/0)})
                  .error.find("final KV length"),
              std::string::npos);
    EXPECT_NE(batcher
                  .Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, /*group=*/-1, 8, 4, 1,
                                                   /*parent=*/0)})
                  .error.find("prompt_group"),
              std::string::npos);
  }
  // A well-formed stream on the same batcher still runs (no poisoned state).
  const ScheduleResult ok = batcher.Run({Job(0, 4, 0, 8, 0, 0), Job(1, 4, 0, 8, 4, 1, 0)});
  EXPECT_TRUE(ok.error.empty()) << ok.error;
  EXPECT_EQ(ok.completions.size(), 2u);
}

// --- quantized KV through the serving stack (docs/kv_quantization.md) ---

TEST_F(ServingKvTest, QuantizedKvKeepsBackendBlockParityAndShrinksBytes) {
  // The analytic accountant never stores a byte, yet under INT4 it must agree with the
  // functional paged cache on every block statistic — and both must charge the quantized
  // bytes_per_block (toy config: 36 bytes/row vs 128 F16, exactly 32/9).
  const std::vector<ServeJob> jobs =
      BeamForkStream(/*prompt=*/8, /*rounds=*/3, /*width=*/2, /*expansion=*/2,
                     /*step_tokens=*/4);
  ServeOptions so;
  so.max_batch = 4;

  AnalyticBackend::Options bo;
  bo.kv_dtype = hquant::KvDtype::kInt4;
  AnalyticBackend analytic(*toy_engine_, bo);
  const ScheduleResult ra = ContinuousBatcher(analytic, so).Run(jobs);
  ASSERT_TRUE(ra.error.empty()) << ra.error;

  FunctionalBackend functional(dev_, weights_, so.max_batch, /*max_context=*/64,
                               /*kv_pool_blocks=*/0, hquant::KvDtype::kInt4);
  const ScheduleResult rf = ContinuousBatcher(functional, so).Run(jobs);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(functional.kv_dtype(), hquant::KvDtype::kInt4);
  EXPECT_EQ(analytic.kv_dtype(), hquant::KvDtype::kInt4);
  ExpectStatsEqual(ra.kv, rf.kv);
  EXPECT_EQ(rf.kv.bytes_per_block,
            config_.KvCacheBytes(rf.kv.block_tokens, hquant::KvDtype::kInt4));

  // Same stream in F16: identical block counts (quantization changes bytes, not paging),
  // with the documented 32/9 byte ratio, and identical token streams modulo the logit
  // delta the quantization introduces (checked small below via the exported proxy).
  hexsim::NpuDevice dev2(hexsim::OnePlus12());
  FunctionalBackend f16(dev2, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult r16 = ContinuousBatcher(f16, so).Run(jobs);
  ASSERT_TRUE(r16.error.empty()) << r16.error;
  EXPECT_EQ(r16.kv.peak_physical_blocks, rf.kv.peak_physical_blocks);
  EXPECT_EQ(r16.kv.cow_splits, rf.kv.cow_splits);
  EXPECT_EQ(rf.kv.bytes_per_block * 32, r16.kv.bytes_per_block * 9);

  // The quantized run exports its dtype and round-trip error proxy; F16 exports neither.
  bool found = false;
  EXPECT_EQ(rf.metrics.GaugeValue("kv.dtype", "int4", &found), 4.0);
  EXPECT_TRUE(found);
  const double rel_rms = rf.metrics.GaugeValue("kv.quant.rel_rms", {}, &found);
  EXPECT_TRUE(found);
  EXPECT_GT(rel_rms, 0.0);
  EXPECT_LT(rel_rms, 2e-1);  // the documented INT4 bound
  r16.metrics.GaugeValue("kv.dtype", "f16", &found);
  EXPECT_FALSE(found);
}

TEST_F(ServingKvTest, QuantizedForkContinuationMatchesUnforkedDecodeTokenForToken) {
  // The fork-equals-continuous guarantee must survive quantized KV: the child attends to
  // the parent's retained *quantized* blocks, and the continuous run wrote the identical
  // quantized rows, so the argmax token streams stitch exactly.
  ServeOptions so;
  so.max_batch = 1;
  const std::vector<ServeJob> whole = {Job(0, 8, /*group=*/0, /*prompt=*/8)};
  const std::vector<ServeJob> forked = {
      Job(0, 4, 0, 8, 0, /*barrier=*/0),
      Job(1, 4, 0, 8, /*context=*/4, /*barrier=*/1, /*parent=*/0),
  };

  hexsim::NpuDevice dev1(hexsim::OnePlus12());
  FunctionalBackend b1(dev1, weights_, so.max_batch, /*max_context=*/64,
                       /*kv_pool_blocks=*/0, hquant::KvDtype::kInt4);
  const ScheduleResult rw = ContinuousBatcher(b1, so).Run(whole);
  ASSERT_TRUE(rw.error.empty()) << rw.error;

  hexsim::NpuDevice dev2(hexsim::OnePlus12());
  FunctionalBackend b2(dev2, weights_, so.max_batch, /*max_context=*/64,
                       /*kv_pool_blocks=*/0, hquant::KvDtype::kInt4);
  const ScheduleResult rf = ContinuousBatcher(b2, so).Run(forked);
  ASSERT_TRUE(rf.error.empty()) << rf.error;

  EXPECT_EQ(rf.forked_admissions, 1);
  EXPECT_EQ(rf.prefilled_tokens, 8);
  std::vector<int> stitched = rf.job_tokens.at(0);
  stitched.insert(stitched.end(), rf.job_tokens.at(1).begin(), rf.job_tokens.at(1).end());
  EXPECT_EQ(stitched, rw.job_tokens.at(0));
}

TEST_F(ServingKvTest, ExplicitF16BackendMatchesDefaultTokenForToken) {
  // The serving-level F16 identity guard: passing kF16 explicitly takes exactly the legacy
  // code path, so token streams (and block stats) match the defaulted backend bit for bit.
  const std::vector<ServeJob> jobs =
      BeamForkStream(/*prompt=*/8, /*rounds=*/2, /*width=*/2, /*expansion=*/2,
                     /*step_tokens=*/4);
  ServeOptions so;
  so.max_batch = 4;
  hexsim::NpuDevice dev1(hexsim::OnePlus12());
  FunctionalBackend def(dev1, weights_, so.max_batch, /*max_context=*/64);
  const ScheduleResult rd = ContinuousBatcher(def, so).Run(jobs);
  ASSERT_TRUE(rd.error.empty()) << rd.error;
  hexsim::NpuDevice dev2(hexsim::OnePlus12());
  FunctionalBackend exp(dev2, weights_, so.max_batch, /*max_context=*/64,
                        /*kv_pool_blocks=*/0, hquant::KvDtype::kF16);
  const ScheduleResult re = ContinuousBatcher(exp, so).Run(jobs);
  ASSERT_TRUE(re.error.empty()) << re.error;
  EXPECT_EQ(def.kv_dtype(), hquant::KvDtype::kF16);
  EXPECT_EQ(rd.job_tokens, re.job_tokens);
  ExpectStatsEqual(rd.kv, re.kv);
}

}  // namespace
}  // namespace hserve

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/dma.h"
#include "src/hexsim/hmx.h"
#include "src/hexsim/hvx.h"
#include "src/hexsim/npu_device.h"
#include "src/hexsim/rpcmem.h"
#include "src/hexsim/tcm.h"

namespace hexsim {
namespace {

using hexllm::F16;

// --- device profiles ---

TEST(DeviceProfileTest, TableThreeDevices) {
  const auto devices = AllDevices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0]->soc_name, "Snapdragon 8 Gen 2");
  EXPECT_EQ(devices[0]->arch, NpuArch::kV73);
  EXPECT_EQ(devices[1]->soc_name, "Snapdragon 8 Gen 3");
  EXPECT_EQ(devices[1]->arch, NpuArch::kV75);
  EXPECT_EQ(devices[2]->soc_name, "Snapdragon 8 Elite");
  EXPECT_EQ(devices[2]->arch, NpuArch::kV79);
}

TEST(DeviceProfileTest, V75HmxPeakMatchesTable2) {
  // Table 2: 12032.54 GFLOPS FP16 on the V75 HMX.
  EXPECT_NEAR(OnePlus12().HmxPeakGflops(), 12032.0, 150.0);
}

TEST(DeviceProfileTest, OnlyV79HasNativeIeeeFp16) {
  EXPECT_FALSE(OnePlusAce3().native_ieee_fp16);
  EXPECT_FALSE(OnePlus12().native_ieee_fp16);
  EXPECT_TRUE(OnePlusAce5Pro().native_ieee_fp16);
}

TEST(DeviceProfileTest, V73AddressSpaceBelow2GiB) {
  EXPECT_LE(OnePlusAce3().npu_vaddr_limit_bytes, 2ll << 30);
  EXPECT_GT(OnePlus12().npu_vaddr_limit_bytes, 2ll << 30);
}

// --- TCM ---

TEST(TcmTest, AllocAlignAndWatermark) {
  Tcm tcm(1 << 20);
  uint8_t* a = tcm.Alloc(100, 128);
  uint8_t* b = tcm.Alloc(100, 128);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 128, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 128, 0u);
  EXPECT_EQ(tcm.OffsetOf(b), 128);
  EXPECT_EQ(tcm.used(), 228);
  EXPECT_EQ(tcm.high_watermark(), 228);
  tcm.Reset();
  EXPECT_EQ(tcm.used(), 0);
  EXPECT_EQ(tcm.high_watermark(), 228);  // watermark survives reset
}

TEST(TcmTest, FramesNestAndRelease) {
  Tcm tcm(1 << 20);
  tcm.Alloc(256);
  {
    TcmFrame f1(tcm);
    tcm.Alloc(1024);
    {
      TcmFrame f2(tcm);
      tcm.Alloc(2048);
      EXPECT_GE(tcm.used(), 256 + 1024 + 2048);
    }
    EXPECT_LT(tcm.used(), 256 + 1024 + 2048);
  }
  EXPECT_EQ(tcm.used(), 256);
}

TEST(TcmDeathTest, ExhaustionAborts) {
  Tcm tcm(4096);
  EXPECT_DEATH(tcm.Alloc(8192), "TCM exhausted");
}

TEST(TcmTest, ContainsAndOffset) {
  Tcm tcm(4096);
  uint8_t* p = tcm.Alloc(64);
  EXPECT_TRUE(tcm.Contains(p));
  EXPECT_TRUE(tcm.Contains(p + 63));
  int unrelated = 0;
  EXPECT_FALSE(tcm.Contains(&unrelated));
  EXPECT_EQ(tcm.OffsetOf(p), 0);
}

// --- DMA ---

TEST(DmaTest, Transfer1DMovesDataAndChargesBandwidth) {
  const DeviceProfile& p = OnePlus12();
  CycleLedger ledger;
  DmaEngine dma(p, ledger);
  std::vector<uint8_t> src(1 << 20);
  std::vector<uint8_t> dst(1 << 20);
  std::iota(src.begin(), src.end(), 0);
  const double t = dma.Transfer1D(dst.data(), src.data(), 1 << 20, DmaDirection::kDdrToTcm);
  EXPECT_EQ(src, dst);
  // 1 MiB at 60 GB/s ~ 17.5 us (plus descriptor overhead).
  EXPECT_NEAR(t, (1 << 20) / 60e9 + 250e-9, 1e-7);
  EXPECT_DOUBLE_EQ(ledger.EngineSeconds(Engine::kDma), t);
  EXPECT_EQ(ledger.dma_bytes(), 1 << 20);
}

TEST(DmaTest, SmallRows2DAreLessEfficient) {
  const DeviceProfile& p = OnePlus12();
  CycleLedger ledger;
  DmaEngine dma(p, ledger);
  const double big_rows = dma.Cost2D(4096, 256, DmaDirection::kDdrToTcm);
  const double small_rows = dma.Cost2D(32, 256 * 128, DmaDirection::kDdrToTcm);
  // Same total bytes; short rows must be slower.
  EXPECT_GT(small_rows, 2.0 * big_rows);
}

TEST(DmaTest, Transfer2DStrided) {
  const DeviceProfile& p = OnePlus12();
  CycleLedger ledger;
  DmaEngine dma(p, ledger);
  std::vector<uint8_t> src(64 * 16, 7);
  std::vector<uint8_t> dst(32 * 16, 0);
  dma.Transfer2D(dst.data(), 32, src.data(), 64, 32, 16, DmaDirection::kDdrToTcm);
  for (uint8_t v : dst) {
    EXPECT_EQ(v, 7);
  }
}

// --- HVX ---

class HvxTest : public ::testing::Test {
 protected:
  HvxTest() : ctx_(OnePlus12()) {}
  HvxContext ctx_;
};

TEST_F(HvxTest, SplatAndArithmeticF16) {
  const HvxVec a = ctx_.VSplatHf(1.5f);
  const HvxVec b = ctx_.VSplatHf(2.25f);
  const HvxVec sum = ctx_.VAddHf(a, b);
  const HvxVec prod = ctx_.VMpyHf(a, b);
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    EXPECT_FLOAT_EQ(sum.GetHf(i), 3.75f);
    EXPECT_FLOAT_EQ(prod.GetHf(i), 3.375f);
  }
}

TEST_F(HvxTest, F16ArithmeticRoundsEachOp) {
  // 1 + 2^-12 is not representable in FP16; the add must round to 1.0.
  const HvxVec one = ctx_.VSplatHf(1.0f);
  const HvxVec tiny = ctx_.VSplatHf(std::ldexp(1.0f, -12));
  const HvxVec sum = ctx_.VAddHf(one, tiny);
  EXPECT_FLOAT_EQ(sum.GetHf(0), 1.0f);
}

TEST_F(HvxTest, PacketAccounting) {
  ctx_.ResetPackets();
  const HvxVec a = ctx_.VSplatHf(1.0f);  // 1
  const HvxVec b = ctx_.VAddHf(a, a);    // 1
  (void)b;
  EXPECT_EQ(ctx_.packets(), 2);
  ctx_.ChargeStalls(5);
  EXPECT_EQ(ctx_.packets(), 7);
}

TEST_F(HvxTest, QfloatConversionCostsOnV75NotV79) {
  HvxContext v79(OnePlusAce5Pro());
  const HvxVec a = ctx_.VSplatHf(1.0f);
  ctx_.ResetPackets();
  (void)ctx_.ConvertQf(a);
  EXPECT_EQ(ctx_.packets(), 1);
  v79.ResetPackets();
  (void)v79.ConvertQf(a);
  EXPECT_EQ(v79.packets(), 0);
}

TEST_F(HvxTest, VLut16LooksUp16Halfwords) {
  HvxVec table{};
  for (int i = 0; i < 16; ++i) {
    table.SetU16(i, static_cast<uint16_t>(0x100 + i));
  }
  HvxVec idx{};
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    idx.b[static_cast<size_t>(i)] = static_cast<uint8_t>(i % 16);
  }
  const HvxVecPair out = ctx_.VLut16(idx, table);
  for (int i = 0; i < HvxVec::kBytes; ++i) {
    const uint16_t expected = static_cast<uint16_t>(0x100 + i % 16);
    const uint16_t got = (i < 64) ? out.lo.GetU16(i) : out.hi.GetU16(i - 64);
    EXPECT_EQ(got, expected) << i;
  }
}

TEST_F(HvxTest, VLut16UsesOnlyLowNibbleOfIndex) {
  HvxVec table{};
  table.SetU16(3, 0xABCD);
  HvxVec idx{};
  idx.b[0] = 0xF3;  // high nibble must be ignored
  const HvxVecPair out = ctx_.VLut16(idx, table);
  EXPECT_EQ(out.lo.GetU16(0), 0xABCD);
}

TEST_F(HvxTest, GatherReadsTcmAndChargesLatency) {
  Tcm tcm(1 << 16);
  auto* data = reinterpret_cast<uint16_t*>(tcm.Alloc(4096));
  for (int i = 0; i < 2048; ++i) {
    data[i] = static_cast<uint16_t>(i * 3);
  }
  HvxVec offsets{};
  for (int i = 0; i < 64; ++i) {
    offsets.SetU16(i, static_cast<uint16_t>((i * 7 % 2048) * 2));
  }
  ctx_.ResetPackets();
  const HvxVec out = ctx_.VGather(tcm, tcm.OffsetOf(data), offsets);
  EXPECT_EQ(ctx_.packets(), OnePlus12().vgather_packets);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out.GetU16(i), static_cast<uint16_t>((i * 7 % 2048) * 3));
  }
}

TEST_F(HvxTest, ScatterWritesTcmAndCostsMoreThanGather) {
  Tcm tcm(1 << 16);
  auto* data = reinterpret_cast<uint16_t*>(tcm.Alloc(4096));
  HvxVec offsets{};
  HvxVec values{};
  for (int i = 0; i < 64; ++i) {
    offsets.SetU16(i, static_cast<uint16_t>(i * 4));
    values.SetU16(i, static_cast<uint16_t>(1000 + i));
  }
  ctx_.ResetPackets();
  ctx_.VScatterH(tcm, tcm.OffsetOf(data), offsets, values);
  EXPECT_GT(ctx_.packets(), OnePlus12().vgather_packets);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(data[i * 2], 1000 + i);
  }
}

TEST_F(HvxTest, WidenNarrowRoundTrip) {
  hexllm::Rng rng(7);
  HvxVec a{};
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    a.SetHf(i, static_cast<float>(rng.NextGaussian()));
  }
  const HvxVecPair wide = ctx_.WidenHfToSf(a);
  const HvxVec back = ctx_.NarrowSfToHf(wide);
  EXPECT_EQ(a, back);
}

TEST_F(HvxTest, ShuffleInterleavesHalfwords) {
  HvxVec a{};
  HvxVec b{};
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    a.SetU16(i, static_cast<uint16_t>(i));
    b.SetU16(i, static_cast<uint16_t>(100 + i));
  }
  const HvxVecPair p = ctx_.VShuffH(a, b);
  EXPECT_EQ(p.lo.GetU16(0), 0);
  EXPECT_EQ(p.lo.GetU16(1), 100);
  EXPECT_EQ(p.lo.GetU16(2), 1);
  EXPECT_EQ(p.hi.GetU16(0), 32);
  EXPECT_EQ(p.hi.GetU16(1), 132);
}

TEST_F(HvxTest, Reductions) {
  HvxVec a{};
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    a.SetHf(i, static_cast<float>(i));
  }
  EXPECT_FLOAT_EQ(ctx_.ReduceMaxHf(a), 63.0f);
  HvxVec s{};
  for (int i = 0; i < HvxVec::kWords; ++i) {
    s.SetF32(i, 1.5f);
  }
  EXPECT_FLOAT_EQ(ctx_.ReduceSumSf(s), 48.0f);
}

TEST_F(HvxTest, DdrLoadSlowerThanTcmLoad) {
  std::vector<uint8_t> buf(128, 1);
  ctx_.ResetPackets();
  (void)ctx_.LoadAligned(buf.data());
  const int64_t tcm_cost = ctx_.packets();
  ctx_.ResetPackets();
  (void)ctx_.LoadFromDdr(buf.data());
  EXPECT_GT(ctx_.packets(), 3 * tcm_cost);
}

// --- HMX ---

TEST(HmxTest, TileLayoutMatchesFigure4a) {
  // "Every two rows are permuted, having the same layout as the transposed 2x32 sub-matrix":
  // within row pair p, memory order is (2p,0),(2p+1,0),(2p,1),(2p+1,1),...
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(0, 0), 0);
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(1, 0), 1);
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(0, 1), 2);
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(1, 1), 3);
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(2, 0), 64);
  EXPECT_EQ(HmxEngine::TileHalfwordOffset(31, 31), 1023);
  // Bijectivity.
  std::vector<bool> seen(1024, false);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      const int off = HmxEngine::TileHalfwordOffset(r, c);
      ASSERT_GE(off, 0);
      ASSERT_LT(off, 1024);
      EXPECT_FALSE(seen[static_cast<size_t>(off)]);
      seen[static_cast<size_t>(off)] = true;
    }
  }
}

TEST(HmxTest, PackUnpackRoundTrip) {
  hexllm::Rng rng(3);
  std::vector<F16> src(32 * 32);
  for (auto& v : src) {
    v = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<F16> tile(1024);
  std::vector<F16> back(32 * 32);
  HmxEngine::PackTile(src.data(), 32, tile.data());
  HmxEngine::UnpackTile(tile.data(), back.data(), 32);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i].bits(), back[i].bits());
  }
}

TEST(HmxTest, TileMaccMatchesReference) {
  hexllm::Rng rng(11);
  NpuDevice dev(OnePlus12());
  std::vector<F16> a(1024);
  std::vector<F16> b(1024);
  for (auto& v : a) {
    v = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  }
  for (auto& v : b) {
    v = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  }
  auto* at = reinterpret_cast<F16*>(dev.tcm().Alloc(2048));
  auto* bt = reinterpret_cast<F16*>(dev.tcm().Alloc(2048));
  HmxEngine::PackTile(a.data(), 32, at);
  HmxEngine::PackTile(b.data(), 32, bt);
  std::vector<float> acc(1024, 0.0f);
  dev.hmx().TileMacc(dev.tcm(), at, bt, acc.data());
  EXPECT_EQ(dev.hmx().tile_ops(), 1);
  // FP32 reference on the FP16-rounded inputs.
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      float expected = 0.0f;
      for (int k = 0; k < 32; ++k) {
        expected += a[static_cast<size_t>(r * 32 + k)].ToFloat() *
                    b[static_cast<size_t>(k * 32 + c)].ToFloat();
      }
      EXPECT_FLOAT_EQ(acc[static_cast<size_t>(r * 32 + c)], expected);
    }
  }
}

TEST(HmxDeathTest, OperandsMustBeInTcm) {
  NpuDevice dev(OnePlus12());
  std::vector<F16> host_tile(1024);
  std::vector<float> acc(1024);
  auto* tcm_tile = reinterpret_cast<F16*>(dev.tcm().Alloc(2048));
  EXPECT_DEATH(dev.hmx().TileMacc(dev.tcm(), host_tile.data(), tcm_tile, acc.data()),
               "must reside in TCM");
}

TEST(HmxTest, StoreAccAppliesColumnScaleAndBias) {
  NpuDevice dev(OnePlus12());
  std::vector<float> acc(1024);
  for (int r = 0; r < 32; ++r) {
    for (int c = 0; c < 32; ++c) {
      acc[static_cast<size_t>(r * 32 + c)] = static_cast<float>(r + c);
    }
  }
  std::vector<float> scale(32, 2.0f);
  std::vector<float> bias(32, 1.0f);
  std::vector<F16> tile(1024);
  dev.hmx().StoreAcc(acc.data(), tile.data(), scale.data(), bias.data());
  EXPECT_FLOAT_EQ(tile[static_cast<size_t>(HmxEngine::TileHalfwordOffset(3, 5))].ToFloat(),
                  (3 + 5) * 2.0f + 1.0f);
}

// --- rpcmem / session ---

TEST(RpcmemTest, PoolTracksDmabufBytes) {
  RpcmemPool pool;
  auto a = pool.Alloc(1 << 20, "weights");
  auto b = pool.Alloc(1 << 10, "activations");
  EXPECT_EQ(pool.total_bytes(), (1 << 20) + (1 << 10));
  pool.Free(a);
  EXPECT_EQ(pool.total_bytes(), 1 << 10);
}

TEST(RpcmemDeathTest, NpuReadOfDirtyBufferAborts) {
  RpcmemPool pool;
  auto buf = pool.Alloc(64, "msg");
  buf->CpuView()[0] = 42;  // CPU write, no flush
  EXPECT_DEATH(buf->NpuView(), "cache maintenance");
}

TEST(RpcmemTest, FlushMakesBufferNpuVisible) {
  RpcmemPool pool;
  auto buf = pool.Alloc(64, "msg");
  buf->CpuView()[0] = 42;
  buf->FlushForNpu();
  EXPECT_EQ(buf->NpuView()[0], 42);
  // NPU writes are coherent toward the CPU without maintenance.
  buf->NpuWriteView()[1] = 7;
  EXPECT_EQ(buf->CpuReadView()[1], 7);
}

TEST(NpuSessionTest, V73RejectsLargeModels) {
  RpcmemPool pool;
  NpuSession session(OnePlusAce3());
  auto w1 = pool.Alloc(1536ll << 20, "3B weights part 1");
  auto w2 = pool.Alloc(900ll << 20, "3B weights part 2");
  EXPECT_TRUE(session.MapBuffer(w1));
  EXPECT_FALSE(session.MapBuffer(w2));  // would exceed the ~2 GiB window
  // The same model maps fine on the 8 Gen 3.
  NpuSession v75(OnePlus12());
  EXPECT_TRUE(v75.MapBuffer(w1));
  EXPECT_TRUE(v75.MapBuffer(w2));
}

TEST(NpuSessionTest, UnmapFreesAddressSpace) {
  RpcmemPool pool;
  NpuSession session(OnePlusAce3());
  auto w = pool.Alloc(1800ll << 20, "weights");
  EXPECT_TRUE(session.MapBuffer(w));
  auto w2 = pool.Alloc(1800ll << 20, "other");
  EXPECT_FALSE(session.MapBuffer(w2));
  session.UnmapBuffer(w);
  EXPECT_TRUE(session.MapBuffer(w2));
}

TEST(NpuSessionTest, MailboxDeliversRequests) {
  NpuSession session(OnePlus12());
  std::vector<std::string> received;
  session.SetHandler([&](const OpRequest& req) { received.push_back(req.op_name); });
  const double latency = session.Submit({"matmul", {1, 2}, {64, 64}});
  session.Submit({"softmax", {3}, {}});
  EXPECT_EQ(received, (std::vector<std::string>{"matmul", "softmax"}));
  EXPECT_EQ(session.submitted_ops(), 2);
  EXPECT_GT(latency, 0.0);
  EXPECT_LT(latency, 100e-6);  // shared-memory polling beats default FastRPC latency
}

// --- ledger ---

TEST(CycleLedgerTest, TagsAndMerge) {
  CycleLedger a;
  a.AddSeconds(Engine::kHvx, 1.0, "softmax");
  a.AddSeconds(Engine::kHmx, 2.0, "gemm");
  CycleLedger b;
  b.AddSeconds(Engine::kHvx, 0.5, "softmax");
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.EngineSeconds(Engine::kHvx), 1.5);
  EXPECT_DOUBLE_EQ(a.TagSeconds("softmax"), 1.5);
  EXPECT_DOUBLE_EQ(a.TagSeconds("gemm"), 2.0);
  EXPECT_DOUBLE_EQ(a.TagSeconds("absent"), 0.0);
}

}  // namespace
}  // namespace hexsim

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/runtime/scheduler.h"
#include "src/serving/continuous_batcher.h"

namespace hrt {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    options_.model = &hllm::Qwen25_1_5B();
    options_.device = &hexsim::OnePlus12();
    engine_ = std::make_unique<Engine>(options_);
  }

  // Runs a legacy sample-job stream through the serving runtime: each job decodes from a
  // fixed uncharged starting context, under the requested slot-reclamation policy.
  hserve::ScheduleResult Schedule(const std::vector<SampleJob>& jobs, int max_batch,
                                  int context, hserve::SchedulePolicy policy) {
    hserve::AnalyticBackend backend(*engine_);
    hserve::ServeOptions so;
    so.max_batch = max_batch;
    so.policy = policy;
    std::vector<hserve::ServeJob> serve_jobs;
    serve_jobs.reserve(jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
      hserve::ServeJob sj;
      sj.id = static_cast<int>(j);
      sj.context_tokens = context;
      sj.decode_tokens = jobs[j].total_tokens;
      serve_jobs.push_back(sj);
    }
    hserve::ScheduleResult r = hserve::ContinuousBatcher(backend, so).Run(serve_jobs);
    EXPECT_TRUE(r.error.empty()) << r.error;
    return r;
  }

  hserve::ScheduleResult Static(const std::vector<SampleJob>& jobs, int max_batch,
                                int context) {
    return Schedule(jobs, max_batch, context, hserve::SchedulePolicy::kStaticWaves);
  }
  hserve::ScheduleResult Continuous(const std::vector<SampleJob>& jobs, int max_batch,
                                    int context) {
    return Schedule(jobs, max_batch, context, hserve::SchedulePolicy::kContinuous);
  }

  EngineOptions options_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SchedulerTest, JobGeneratorRespectsBounds) {
  hexllm::Rng rng(1);
  const auto jobs = MakeSampleJobs(10, 8, 256, rng);
  EXPECT_EQ(jobs.size(), 80u);
  for (const auto& j : jobs) {
    EXPECT_GE(j.total_tokens, 16);
    EXPECT_LE(j.total_tokens, 1024);
  }
  // Lengths are dispersed, not constant.
  int min_len = 1 << 30, max_len = 0;
  for (const auto& j : jobs) {
    min_len = std::min(min_len, j.total_tokens);
    max_len = std::max(max_len, j.total_tokens);
  }
  EXPECT_GT(max_len, min_len + 50);
}

TEST_F(SchedulerTest, JobGeneratorIsDeterministicForFixedSeed) {
  hexllm::Rng a(77);
  hexllm::Rng b(77);
  const auto ja = MakeSampleJobs(5, 6, 128, a);
  const auto jb = MakeSampleJobs(5, 6, 128, b);
  ASSERT_EQ(ja.size(), 30u);
  ASSERT_EQ(jb.size(), 30u);
  for (size_t i = 0; i < ja.size(); ++i) {
    EXPECT_EQ(ja[i].id, jb[i].id);
    EXPECT_EQ(ja[i].total_tokens, jb[i].total_tokens);
  }
  // Different seeds draw different lengths.
  hexllm::Rng c(78);
  const auto jc = MakeSampleJobs(5, 6, 128, c);
  bool any_diff = false;
  for (size_t i = 0; i < ja.size(); ++i) {
    any_diff |= ja[i].total_tokens != jc[i].total_tokens;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(SchedulerTest, JobGeneratorClampsAtTheMinimumMean) {
  // mean_tokens = 16 squeezes the clamp window to [16, 64]; the lognormal tail must not
  // escape it.
  hexllm::Rng rng(9);
  const auto jobs = MakeSampleJobs(25, 4, 16, rng);
  EXPECT_EQ(jobs.size(), 100u);
  for (const auto& j : jobs) {
    EXPECT_GE(j.total_tokens, 16);
    EXPECT_LE(j.total_tokens, 64);
  }
  // IDs are dense and ordered.
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<int>(i));
  }
}

TEST_F(SchedulerTest, ContinuousNeverSlowerThanStatic) {
  hexllm::Rng rng(2);
  const auto jobs = MakeSampleJobs(6, 8, 200, rng);
  for (int max_batch : {4, 8, 16}) {
    const auto st = Static(jobs, max_batch, 512);
    const auto ct = Continuous(jobs, max_batch, 512);
    EXPECT_LE(ct.makespan_s, st.makespan_s * 1.0001) << max_batch;
    EXPECT_GE(ct.tokens_per_second, st.tokens_per_second * 0.9999) << max_batch;
  }
}

TEST_F(SchedulerTest, ContinuousBeatsStaticWithDispersedLengths) {
  hexllm::Rng rng(3);
  const auto jobs = MakeSampleJobs(8, 8, 300, rng);
  const auto st = Static(jobs, 8, 512);
  const auto ct = Continuous(jobs, 8, 512);
  EXPECT_GT(ct.tokens_per_second, st.tokens_per_second * 1.05);
  EXPECT_LT(st.slot_utilization, 0.95);
  EXPECT_DOUBLE_EQ(ct.slot_utilization, 1.0);
}

TEST_F(SchedulerTest, UniformLengthsMakeSchedulersEquivalent) {
  // With identical job lengths there is no padding to reclaim.
  std::vector<SampleJob> jobs(16);
  for (int i = 0; i < 16; ++i) {
    jobs[static_cast<size_t>(i)] = {i, 100};
  }
  const auto st = Static(jobs, 8, 512);
  const auto ct = Continuous(jobs, 8, 512);
  EXPECT_NEAR(ct.makespan_s, st.makespan_s, st.makespan_s * 1e-9);
  EXPECT_NEAR(st.slot_utilization, 1.0, 1e-12);
}

TEST_F(SchedulerTest, StepCountsAreConsistent) {
  hexllm::Rng rng(4);
  const auto jobs = MakeSampleJobs(4, 4, 128, rng);
  const auto ct = Continuous(jobs, 4, 256);
  int64_t total_tokens = 0;
  int longest = 0;
  for (const auto& j : jobs) {
    total_tokens += j.total_tokens;
    longest = std::max(longest, j.total_tokens);
  }
  // Steps at least ceil(total/maxbatch) and at least the longest single job.
  EXPECT_GE(ct.steps, (total_tokens + 3) / 4);
  EXPECT_GE(ct.steps, longest);
  EXPECT_LE(ct.avg_active_batch, 4.0);
}

}  // namespace
}  // namespace hrt

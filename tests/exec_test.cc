// The parallel execution layer's contract tests (docs/threading_model.md):
//   * ThreadPool lifecycle — results, exception propagation, shutdown draining, the
//     0-worker inline mode;
//   * ParallelFor — static partition exactness, nested-region serialization, lowest-slot
//     exception selection;
//   * lane-count determinism — GEMM / dequant / attention-bearing decode produce
//     bit-identical outputs AND exact integer counters at 1 vs 4 lanes;
//   * concurrent BlockPool stress and metrics-registry consistency under parallel writers.
#include <array>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/exec/thread_pool.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/gemm.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kvcache/block_pool.h"
#include "src/llm/model_config.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/obs/metrics.h"
#include "src/quant/group_quant.h"
#include "src/quant/tile_quant.h"

namespace hexec {
namespace {

using hexllm::F16;
using hexllm::Rng;
using hexsim::NpuDevice;
using hexsim::OnePlus12;

// --- ThreadPool lifecycle ---

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i * i);
  }
  EXPECT_GE(pool.tasks_executed(), 50);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor must run every queued task before joining, not drop the backlog.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto fut = pool.Submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  fut.get();
  EXPECT_EQ(ran_on, caller);
}

// --- ParallelFor contract ---

TEST(ParallelForTest, PartitionIsStaticAndExact) {
  ParallelismOverride lanes(4);
  const int64_t n = 10;
  std::array<int64_t, 4> begins{};
  std::array<int64_t, 4> ends{};
  const int slots = ParallelFor(n, [&](int64_t begin, int64_t end, int slot) {
    begins[static_cast<size_t>(slot)] = begin;
    ends[static_cast<size_t>(slot)] = end;
  });
  ASSERT_EQ(slots, 4);
  for (int s = 0; s < 4; ++s) {
    // The documented static rule: slot s owns [n*s/slots, n*(s+1)/slots).
    EXPECT_EQ(begins[static_cast<size_t>(s)], n * s / 4) << s;
    EXPECT_EQ(ends[static_cast<size_t>(s)], n * (s + 1) / 4) << s;
  }
}

TEST(ParallelForTest, SmallRangesCollapseToFewerSlots) {
  ParallelismOverride lanes(4);
  EXPECT_EQ(PlannedSlots(1), 1);
  EXPECT_EQ(PlannedSlots(3), 3);
  EXPECT_EQ(ParallelFor(2, [](int64_t, int64_t, int) {}), 2);
  EXPECT_EQ(ParallelFor(0, [](int64_t, int64_t, int) {}), 0);
}

TEST(ParallelForTest, NestedRegionsRunSerial) {
  ParallelismOverride lanes(4);
  std::array<int, 4> inner_slots{};
  ParallelFor(4, [&](int64_t begin, int64_t, int slot) {
    EXPECT_EQ(PlannedSlots(100), 1);  // inside a region: no recursive fan-out
    inner_slots[static_cast<size_t>(slot)] =
        ParallelFor(100, [](int64_t, int64_t, int) {});
    (void)begin;
  });
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(inner_slots[static_cast<size_t>(s)], 1) << s;
  }
}

TEST(ParallelForTest, LowestSlotExceptionWins) {
  ParallelismOverride lanes(4);
  std::atomic<int> finished{0};
  try {
    ParallelFor(4, [&](int64_t, int64_t, int slot) {
      finished.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("slot " + std::to_string(slot));
    });
    FAIL() << "ParallelFor must rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "slot 0");
  }
  // Every slot ran to its throw before the rethrow (no abandoned lanes).
  EXPECT_EQ(finished.load(), 4);
}

// --- lane-count determinism: bit-identical outputs, exact integer counters ---

TEST(LaneDeterminismTest, HvxGemmBitIdenticalAndPacketExact) {
  const int m = 8, k = 32, n = 64;
  Rng rng(11);
  std::vector<F16> a(static_cast<size_t>(m) * k), b(static_cast<size_t>(k) * n);
  for (auto& x : a) x = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  for (auto& x : b) x = F16(static_cast<float>(rng.NextGaussian() * 0.3));

  std::vector<F16> c1(static_cast<size_t>(m) * n), c4(c1.size());
  NpuDevice dev1(OnePlus12()), dev4(OnePlus12());
  double s1, s4;
  {
    ParallelismOverride lanes(1);
    s1 = hkern::GemmF16Hvx(dev1, a.data(), b.data(), c1.data(), m, k, n);
  }
  {
    ParallelismOverride lanes(4);
    s4 = hkern::GemmF16Hvx(dev4, a.data(), b.data(), c4.data(), m, k, n);
  }
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(F16)), 0);
  const int64_t want = hkern::GemmF16HvxPackets(dev1.profile(), m, k, n);
  EXPECT_EQ(dev1.hvx().packets(), want);
  EXPECT_EQ(dev4.hvx().packets(), want);  // exact at any lane count, not approximate
  EXPECT_DOUBLE_EQ(s1, s4);  // seconds committed once, from the same integer total
}

TEST(LaneDeterminismTest, HmxGemmBitIdenticalAndTileOpExact) {
  const int m = 128, k = 32, n = 64;  // 4 strips of 32 rows -> 4 parallel slots
  Rng rng(12);
  std::vector<F16> a(static_cast<size_t>(m) * k);
  std::vector<float> w(static_cast<size_t>(k) * n);
  for (auto& x : a) x = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  for (auto& x : w) x = static_cast<float>(rng.NextGaussian() * 0.3);
  const auto stream = hquant::PermuteToHmxOrder(w, k, n);
  std::vector<F16> b_tiles(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) b_tiles[i] = F16(stream[i]);

  std::vector<F16> c1(static_cast<size_t>(m) * n), c4(c1.size());
  NpuDevice dev1(OnePlus12()), dev4(OnePlus12());
  {
    ParallelismOverride lanes(1);
    hkern::GemmF16Hmx(dev1, a.data(), b_tiles.data(), c1.data(), m, k, n,
                      /*operands_in_tcm=*/false);
  }
  {
    ParallelismOverride lanes(4);
    hkern::GemmF16Hmx(dev4, a.data(), b_tiles.data(), c4.data(), m, k, n,
                      /*operands_in_tcm=*/false);
  }
  EXPECT_EQ(std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(F16)), 0);
  const int64_t want = hkern::GemmF16HmxTileOps(m, k, n);
  EXPECT_EQ(dev1.hmx().tile_ops(), want);
  EXPECT_EQ(dev4.hmx().tile_ops(), want);
  EXPECT_EQ(dev1.ledger().dma_bytes(), dev4.ledger().dma_bytes());
}

TEST(LaneDeterminismTest, DequantPacketCountLaneInvariant) {
  Rng rng(13);
  std::vector<float> values(256 * 8);  // 8 super-blocks -> real fan-out at 4 lanes
  for (auto& v : values) v = static_cast<float>(rng.NextGaussian() * 0.05);
  const auto blocks = hquant::QuantizeQ4_0(values);
  const auto sbs = hquant::CoalesceSuperblocks(blocks);

  NpuDevice dev1(OnePlus12()), dev4(OnePlus12());
  auto* out1 = reinterpret_cast<F16*>(dev1.tcm().Alloc(values.size() * 2));
  auto* out4 = reinterpret_cast<F16*>(dev4.tcm().Alloc(values.size() * 2));
  int64_t p1, p4;
  {
    ParallelismOverride lanes(1);
    p1 = hkern::DequantCoalescedLut(dev1, sbs, out1);
  }
  {
    ParallelismOverride lanes(4);
    p4 = hkern::DequantCoalescedLut(dev4, sbs, out4);
  }
  // Hoisted setup packets charge once (slot 0 only): the 17n+4 identity must hold at any
  // lane count, which is what keeps the Figure 15 ablation numbers lane-invariant.
  EXPECT_EQ(p1, static_cast<int64_t>(sbs.size()) * 17 + 4);
  EXPECT_EQ(p4, p1);
  EXPECT_EQ(std::memcmp(out1, out4, values.size() * 2), 0);
}

TEST(LaneDeterminismTest, DecodeStepBitIdenticalAcrossLanes) {
  // Full functional decode (mixed GEMM + RoPE + paged KV + per-head FlashAttention +
  // lm_head) for a 3-row batch: logits must be bit-identical at 1 vs 4 lanes.
  const hllm::ModelConfig config = hllm::ToyConfig();
  const hllm::ModelWeights weights1 = hllm::ModelWeights::Random(config, 1234);
  const hllm::ModelWeights weights4 = hllm::ModelWeights::Random(config, 1234);
  NpuDevice dev1(OnePlus12()), dev4(OnePlus12());
  hllm::Transformer tf1(dev1, weights1, /*max_batch=*/4, /*max_context=*/64);
  hllm::Transformer tf4(dev4, weights4, /*max_batch=*/4, /*max_context=*/64);

  const int batch = 3;
  std::vector<float> logits1(static_cast<size_t>(batch) * config.vocab);
  std::vector<float> logits4(logits1.size());
  std::vector<int> tokens(static_cast<size_t>(batch));
  for (int step = 0; step < 5; ++step) {
    for (int b = 0; b < batch; ++b) {
      tokens[static_cast<size_t>(b)] = (7 * step + 3 * b + 1) % config.vocab;
    }
    {
      ParallelismOverride lanes(1);
      tf1.Step(tokens, logits1);
    }
    {
      ParallelismOverride lanes(4);
      tf4.Step(tokens, logits4);
    }
    EXPECT_EQ(std::memcmp(logits1.data(), logits4.data(),
                          logits1.size() * sizeof(float)),
              0)
        << "step " << step;
  }
  // Integer activity is exact too: same HVX packets, HMX tile ops, DMA bytes.
  EXPECT_EQ(dev1.hvx().packets(), dev4.hvx().packets());
  EXPECT_EQ(dev1.hmx().tile_ops(), dev4.hmx().tile_ops());
  EXPECT_EQ(dev1.ledger().dma_bytes(), dev4.ledger().dma_bytes());
}

// --- concurrent BlockPool stress ---

TEST(BlockPoolConcurrencyTest, ParallelAllocRefUnrefStaysConsistent) {
  hkv::BlockPool pool(256);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(static_cast<uint64_t>(100 + t));
      std::vector<int> held;
      for (int i = 0; i < kIters; ++i) {
        const uint64_t op = rng.NextU64() % 3;
        if (op == 0 && held.size() < 16) {
          const int id = pool.Alloc();
          if (id >= 0) {
            held.push_back(id);
          }
        } else if (op == 1 && !held.empty()) {
          // Share + drop one reference: refcount returns to 1, block stays held.
          const int id = held[rng.NextU64() % held.size()];
          pool.AddRef(id);
          pool.Unref(id);
        } else if (!held.empty()) {
          const int id = held.back();
          held.pop_back();
          pool.Unref(id);
        }
      }
      for (const int id : held) {
        pool.Unref(id);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Every reference was returned: the pool must be empty and fully reusable.
  EXPECT_EQ(pool.used_blocks(), 0);
  EXPECT_LE(pool.peak_used_blocks(), 256);
  std::vector<int> all;
  for (int i = 0; i < 256; ++i) {
    const int id = pool.Alloc();
    ASSERT_GE(id, 0) << "leaked block discovered at " << i;
    all.push_back(id);
  }
  EXPECT_EQ(pool.Alloc(), -1);  // bounded pool exactly full
  for (const int id : all) {
    pool.Unref(id);
  }
}

// --- metrics under concurrency ---

TEST(MetricsConcurrencyTest, CountersAndHistogramsAreExactAfterJoin) {
  obs::Registry reg;
  obs::Counter& counter = reg.counter("test.adds");
  obs::Gauge& gauge = reg.gauge("test.level");
  obs::Histogram& hist =
      reg.histogram("test.values", obs::HistogramBuckets::Linear(1.0, 8));
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(1);
        gauge.Set(static_cast<double>(t));
        hist.Observe(static_cast<double>(i % 8));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // After the join every write is visible and exact — no lost updates.
  EXPECT_EQ(counter.value(), static_cast<int64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.count(), static_cast<int64_t>(kThreads) * kIters);
  const double g = reg.Snapshot().GaugeValue("test.level");
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, kThreads);  // some thread's final store, atomically
  int64_t bucket_sum = 0;
  for (const int64_t c : hist.counts()) {
    bucket_sum += c;
  }
  EXPECT_EQ(bucket_sum, hist.count());
}

TEST(MetricsConcurrencyTest, RegistryLookupsAreThreadSafe) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 200; ++i) {
        reg.counter("shared.counter").Add(1);
        reg.counter("shared.labeled", "lane").Add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("shared.counter"), kThreads * 200);
  EXPECT_EQ(snap.CounterValue("shared.labeled", "lane"), kThreads * 200);
}

TEST(PoolMetricsTest, ExportPublishesPoolCounters) {
  ParallelFor(64, [](int64_t, int64_t, int) {});
  obs::Registry reg;
  ExportPoolMetrics(reg);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  bool found = false;
  EXPECT_GE(snap.GaugeValue("exec.pool.workers", {}, &found), 0.0);
  EXPECT_TRUE(found);
  EXPECT_GE(snap.CounterValue("exec.parallel_for.calls"), 1);
  EXPECT_GE(snap.CounterValue("exec.tasks.executed"), 0);
  EXPECT_GE(snap.CounterValue("exec.tasks.stolen"), 0);
}

}  // namespace
}  // namespace hexec

#include <string>

#include <gtest/gtest.h>

#include "src/runtime/trace.h"

namespace hrt {
namespace {

TEST(TraceBuilderTest, TracksEndTime) {
  TraceBuilder tb;
  tb.Add("HVX", "a", 0.0, 1.0);
  tb.Add("DMA", "b", 0.5, 2.0);
  EXPECT_DOUBLE_EQ(tb.end_s(), 2.5);
  EXPECT_EQ(tb.events().size(), 2u);
}

TEST(TraceBuilderTest, ChromeJsonIsWellFormed) {
  TraceBuilder tb;
  tb.Add("HVX", "dequant", 0.0, 1e-3);
  tb.Add("HMX", "matmul", 0.5e-3, 0.2e-3);
  const std::string json = tb.ToChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"dequant\""), std::string::npos);
  EXPECT_NE(json.find("\"matmul\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // One thread-name metadata record per lane.
  size_t meta = 0;
  for (size_t pos = 0; (pos = json.find("thread_name", pos)) != std::string::npos; ++pos) {
    ++meta;
  }
  EXPECT_EQ(meta, 2u);
  // Braces balance.
  int depth = 0;
  for (const char c : json) {
    if (c == '{') {
      ++depth;
    }
    if (c == '}') {
      --depth;
    }
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceBuilderTest, AsciiGanttHasOneRowPerLane) {
  TraceBuilder tb;
  tb.Add("HVX", "x", 0.0, 1.0);
  tb.Add("DMA", "y", 0.0, 0.5);
  tb.Add("HVX", "z", 1.0, 0.5);
  const std::string gantt = tb.ToAsciiGantt(40);
  EXPECT_NE(gantt.find("HVX"), std::string::npos);
  EXPECT_NE(gantt.find("DMA"), std::string::npos);
  EXPECT_NE(gantt.find("scale:"), std::string::npos);
  // HVX row covers the full width; DMA only the first half.
  const size_t hvx_line = gantt.find("HVX");
  const size_t dma_line = gantt.find("DMA");
  const std::string hvx_row = gantt.substr(hvx_line, gantt.find('\n', hvx_line) - hvx_line);
  const std::string dma_row = gantt.substr(dma_line, gantt.find('\n', dma_line) - dma_line);
  EXPECT_EQ(hvx_row.find('.'), std::string::npos);   // fully busy
  EXPECT_NE(dma_row.find('.'), std::string::npos);   // idle tail
}

TEST(TraceBuilderTest, EmptyTraceRenders) {
  TraceBuilder tb;
  EXPECT_EQ(tb.ToAsciiGantt(), "(empty trace)\n");
}

TEST(TraceDecodeStepTest, CoversAllLanesAndMatchesStepCost) {
  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_1_5B();
  o.device = &hexsim::OnePlus12();
  const Engine engine(o);
  const TraceBuilder tb = TraceDecodeStep(engine, 8, 1024);
  bool has_hvx = false, has_dma = false, has_cpu = false, has_comm = false;
  for (const auto& e : tb.events()) {
    has_hvx |= e.lane == "HVX";
    has_dma |= e.lane == "DMA";
    has_cpu |= e.lane == "CPU";
    has_comm |= e.lane == "COMM";
  }
  EXPECT_TRUE(has_hvx);
  EXPECT_TRUE(has_dma);
  EXPECT_TRUE(has_cpu);
  EXPECT_TRUE(has_comm);
  // The trace span equals the step's total latency.
  EXPECT_NEAR(tb.end_s(), engine.DecodeStep(8, 1024).total_s, 1e-9);
  // One linear block per layer on the DMA lane.
  int dma_blocks = 0;
  for (const auto& e : tb.events()) {
    dma_blocks += (e.lane == "DMA") ? 1 : 0;
  }
  EXPECT_EQ(dma_blocks, hllm::Qwen25_1_5B().layers);
}

}  // namespace
}  // namespace hrt

// Tests for the implemented future-work extensions: T-MAC LUT GEMV (§8a), codebook-general
// dequantization (§5.2.2), speculative decoding (§9), and multi-session models (§8c).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/tmac_gemv.h"
#include "src/quant/codebook_quant.h"
#include "src/quant/error_stats.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"
#include "src/runtime/engine.h"
#include "src/tts/capability_model.h"
#include "src/tts/speculative.h"

namespace {

using hexllm::F16;
using hexllm::Rng;

// --- T-MAC GEMV ---

TEST(TmacGemvTest, MatchesDequantizedMatmul) {
  Rng rng(81);
  const int64_t k = 128, n = 64;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto blocks = hquant::ConventionalGroupQuantizeQ4(w, k, n);
  std::vector<float> wd(w.size());
  hquant::DequantizeQ4_0(blocks, wd);

  std::vector<F16> a(static_cast<size_t>(k));
  for (auto& v : a) {
    v = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<float> y(static_cast<size_t>(n));
  hkern::TmacGemvReference(blocks, k, n, a, y);

  for (int64_t col = 0; col < n; ++col) {
    double expected = 0.0;
    for (int64_t i = 0; i < k; ++i) {
      expected += a[static_cast<size_t>(i)].ToFloat() * wd[static_cast<size_t>(col * k + i)];
    }
    // The subset-sum tables round to FP16, so allow a small relative tolerance.
    EXPECT_NEAR(y[static_cast<size_t>(col)], expected, std::fabs(expected) * 0.02 + 0.01)
        << col;
  }
}

TEST(TmacGemvTest, Batch1IsNearDmaBound) {
  // §8a's prediction: LUT-based mpGEMM makes GEMV memory-bound.
  const auto& p = hexsim::OnePlus12();
  const auto c = hkern::TmacGemvCostModel(p, 1, 2048, 8192, p.hvx_threads);
  EXPECT_LT(c.total_s, c.dma_s * 1.35);
  // And cheaper than the dequant+HMX pipeline at batch 1.
  const auto ours = hkern::MixedGemmCostModel(p, hkern::DequantKernel::kCoalescedLut,
                                              hquant::WeightScheme::kQ4_0, 1, 2048, 8192, 4);
  EXPECT_LT(c.total_s, ours.total_s);
}

TEST(TmacGemvTest, LosesToHmxAtBatch) {
  const auto& p = hexsim::OnePlus12();
  const auto tmac = hkern::TmacGemvCostModel(p, 8, 2048, 8192, p.hvx_threads);
  const auto ours = hkern::MixedGemmCostModel(p, hkern::DequantKernel::kCoalescedLut,
                                              hquant::WeightScheme::kQ4_0, 8, 2048, 8192, 4);
  EXPECT_GT(tmac.total_s, 1.5 * ours.total_s);
}

TEST(TmacGemvTest, EngineIntegrationCrossover) {
  hrt::EngineOptions base;
  base.model = &hllm::Qwen25_1_5B();
  base.device = &hexsim::OnePlus12();
  const hrt::Engine hmx(base);
  hrt::EngineOptions tm = base;
  tm.use_tmac_gemv = true;
  const hrt::Engine tmac(tm);
  EXPECT_GT(tmac.DecodeThroughput(1, 1024), hmx.DecodeThroughput(1, 1024));
  EXPECT_LT(tmac.DecodeThroughput(8, 1024), hmx.DecodeThroughput(8, 1024));
}

// --- codebook-general quantization ---

class CodebookQuantTest : public ::testing::TestWithParam<hquant::Int4Codebook> {};

TEST_P(CodebookQuantTest, RoundTripErrorBounded) {
  Rng rng(82);
  std::vector<float> values(2048);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto sbs = hquant::CodebookQuantizeSuperblocks(values, GetParam());
  std::vector<float> back(values.size());
  hquant::CodebookDequantizeSuperblocks(sbs, GetParam(), back);
  const auto err = hquant::ComputeErrorStats(values, back);
  EXPECT_LT(err.rel_rms, 0.2) << hquant::Int4CodebookName(GetParam());
  EXPECT_GT(err.cosine, 0.97);
}

TEST_P(CodebookQuantTest, KernelCostIsCodebookIndependent) {
  // §5.2.2: "simply by adjusting the table contents" — same instruction count.
  Rng rng(83);
  std::vector<float> values(2048);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto sbs = hquant::CodebookQuantizeSuperblocks(values, GetParam());
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(values.size() * 2));
  const int64_t packets = hkern::DequantCoalescedLut(dev, sbs, out, GetParam());
  EXPECT_EQ(packets, static_cast<int64_t>(sbs.size()) * 17 + 4);
}

TEST_P(CodebookQuantTest, KernelMatchesReferenceDequant) {
  Rng rng(84);
  std::vector<float> values(1024);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto sbs = hquant::CodebookQuantizeSuperblocks(values, GetParam());
  std::vector<float> ref(values.size());
  hquant::CodebookDequantizeSuperblocks(sbs, GetParam(), ref);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(values.size() * 2));
  hkern::DequantCoalescedLut(dev, sbs, out, GetParam());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[i].ToFloat(), hexllm::RoundToF16(ref[i]), std::fabs(ref[i]) * 2e-3 + 1e-5)
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodebooks, CodebookQuantTest,
                         ::testing::Values(hquant::Int4Codebook::kQ4_0,
                                           hquant::Int4Codebook::kNf4,
                                           hquant::Int4Codebook::kFp4,
                                           hquant::Int4Codebook::kIq4Nl),
                         [](const auto& info) {
                           return std::string(hquant::Int4CodebookName(info.param)) == "Q4_0"
                                      ? "Q4"
                                      : hquant::Int4CodebookName(info.param);
                         });

TEST(CodebookQuantTest, Q4PathMatchesClassicQuantizer) {
  Rng rng(85);
  std::vector<float> values(1024);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto via_codebook =
      hquant::CodebookQuantizeSuperblocks(values, hquant::Int4Codebook::kQ4_0);
  const auto classic = hquant::CoalesceSuperblocks(hquant::QuantizeQ4_0(values));
  ASSERT_EQ(via_codebook.size(), classic.size());
  std::vector<float> a(values.size()), b(values.size());
  hquant::CodebookDequantizeSuperblocks(via_codebook, hquant::Int4Codebook::kQ4_0, a);
  hquant::DequantizeSuperblocks(classic, b);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6) << i;
  }
}

TEST(CodebookQuantTest, Nf4BestOnGaussianBulk) {
  Rng rng(86);
  std::vector<float> values(8192);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian());
  }
  auto err_of = [&](hquant::Int4Codebook cb) {
    const auto sbs = hquant::CodebookQuantizeSuperblocks(values, cb);
    std::vector<float> back(values.size());
    hquant::CodebookDequantizeSuperblocks(sbs, cb, back);
    return hquant::ComputeErrorStats(values, back).rel_rms;
  };
  EXPECT_LT(err_of(hquant::Int4Codebook::kNf4), err_of(hquant::Int4Codebook::kQ4_0));
}

// --- speculative decoding ---

TEST(SpeculativeTest, ClosedFormMatchesMonteCarlo) {
  Rng rng(87);
  for (double beta : {0.3, 0.6, 0.85}) {
    for (int gamma : {1, 3, 6}) {
      double expected = 1.0;
      double b = 1.0;
      for (int i = 0; i < gamma; ++i) {
        b *= beta;
        expected += b;
      }
      const double mc = htts::SimulateTokensPerCycle(beta, gamma, 60000, rng);
      EXPECT_NEAR(mc, expected, 0.03) << beta << "/" << gamma;
    }
  }
}

TEST(SpeculativeTest, AcceptanceFallsWithSkillGap) {
  const htts::CapabilityModel cap;
  const double to_15 =
      htts::SpeculativeAcceptanceRate(cap, hllm::Qwen25_0_5B(), hllm::Qwen25_1_5B());
  const double to_3 =
      htts::SpeculativeAcceptanceRate(cap, hllm::Qwen25_0_5B(), hllm::Qwen25_3B());
  const double to_7 =
      htts::SpeculativeAcceptanceRate(cap, hllm::Qwen25_0_5B(), hllm::Qwen25_7B());
  EXPECT_GT(to_15, to_3);
  EXPECT_GT(to_3, to_7);
  EXPECT_GT(to_15, 0.5);
  EXPECT_LT(to_15, 0.9);
}

TEST(SpeculativeTest, ModestGammaSpeedsUpDecoding) {
  const htts::CapabilityModel cap;
  hrt::EngineOptions dro;
  dro.model = &hllm::Qwen25_0_5B();
  dro.device = &hexsim::OnePlus12();
  const hrt::Engine draft(dro);
  hrt::EngineOptions to;
  to.model = &hllm::Qwen25_1_5B();
  to.device = &hexsim::OnePlus12();
  const hrt::Engine target(to);
  const double beta =
      htts::SpeculativeAcceptanceRate(cap, hllm::Qwen25_0_5B(), hllm::Qwen25_1_5B());
  const auto r2 = htts::EvaluateSpeculative(target, draft, beta, 2, 1024);
  EXPECT_GT(r2.speedup, 1.05);
  // Oversized gamma drowns in draft latency.
  const auto r8 = htts::EvaluateSpeculative(target, draft, beta, 8, 1024);
  EXPECT_LT(r8.speedup, r2.speedup);
}

TEST(SpeculativeTest, VerifyStepRidesIdleHmxRows) {
  // The §3.2 effect, speculative edition: verifying 5 positions costs < 1.2x one step.
  hrt::EngineOptions to;
  to.model = &hllm::Qwen25_1_5B();
  to.device = &hexsim::OnePlus12();
  const hrt::Engine target(to);
  EXPECT_LT(target.DecodeStep(5, 1024).total_s, 1.35 * target.DecodeStep(1, 1024).total_s);
}

// --- multi-session (§8c) ---

TEST(MultiSessionTest, SevenBRunsOnTwoSessionsOnV75) {
  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_7B();
  o.device = &hexsim::OnePlus12();
  const hrt::Engine e(o);
  EXPECT_TRUE(e.CanRun());
  EXPECT_EQ(e.SessionsNeeded(), 2);
}

TEST(MultiSessionTest, V73IsSingleSessionOnly) {
  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_3B();
  o.device = &hexsim::OnePlusAce3();
  const hrt::Engine e(o);
  EXPECT_FALSE(e.CanRun());
}

TEST(MultiSessionTest, SmallModelsNeedOneSession) {
  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_1_5B();
  o.device = &hexsim::OnePlus12();
  const hrt::Engine e(o);
  EXPECT_EQ(e.SessionsNeeded(), 1);
}

}  // namespace

// Cross-module integration tests: the full system wired together on the toy model —
// functional analogues of the paper's end-to-end accuracy experiments, and the
// shared-memory session driving real op execution.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/hexsim/rpcmem.h"
#include "src/kernels/softmax.h"
#include "src/llm/model_config.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"

namespace {

using hexllm::F16;
using hexllm::Rng;

// --- Table 5, functionally: LUT-softmax FP16 attention vs F32-poly attention end-to-end ---

TEST(IntegrationTest, AttentionVariantBarelyChangesToyModelLogits) {
  // The functional analogue of Table 5: decode the same context with the LUT exp variant
  // and the F32 polynomial variant; logits must be near-identical, and both must produce
  // the same greedy tokens.
  const hllm::ModelConfig config = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(config, 77);
  const std::vector<int> prompt{3, 141, 59, 265};

  std::vector<float> logits_lut(static_cast<size_t>(config.vocab));
  std::vector<float> logits_f32(static_cast<size_t>(config.vocab));
  std::vector<int> greedy_lut;
  std::vector<int> greedy_f32;
  for (const auto variant : {hkern::SoftmaxVariant::kLut, hkern::SoftmaxVariant::kF32Poly}) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    hllm::Transformer tf(dev, weights, 1, 32);
    tf.Prefill(0, prompt);
    auto& logits = (variant == hkern::SoftmaxVariant::kLut) ? logits_lut : logits_f32;
    auto& greedy = (variant == hkern::SoftmaxVariant::kLut) ? greedy_lut : greedy_f32;
    int tok = prompt.back();
    for (int i = 0; i < 5; ++i) {
      tf.Step({&tok, 1}, logits, variant);
      tok = hllm::ArgmaxToken(logits);
      greedy.push_back(tok);
    }
  }
  EXPECT_EQ(greedy_lut, greedy_f32);
  double max_diff = 0.0;
  for (size_t i = 0; i < logits_lut.size(); ++i) {
    max_diff = std::max(max_diff,
                        static_cast<double>(std::fabs(logits_lut[i] - logits_f32[i])));
  }
  EXPECT_LT(max_diff, 0.05);
}

// --- generation-quality smoke: temperature sampling produces diverse sequences ---

TEST(IntegrationTest, TemperatureSamplingDiversifiesParallelPaths) {
  // The mechanism Best-of-N relies on: N parallel samples from the same prompt diverge.
  const hllm::ModelConfig config = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(config, 78);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  const int batch = 4;
  hllm::Transformer tf(dev, weights, batch, 32);
  for (int s = 0; s < batch; ++s) {
    // All sequences share the prompt (the TTS setting).
    // Prefill per sequence: same tokens.
  }
  std::vector<int> tokens(batch, 200);
  std::vector<float> logits(static_cast<size_t>(batch) * config.vocab);
  hllm::SamplerOptions sampler;
  sampler.temperature = 1.2f;
  Rng rng(5);
  std::vector<std::vector<int>> paths(batch);
  for (int step = 0; step < 6; ++step) {
    tf.Step(tokens, logits);
    for (int b = 0; b < batch; ++b) {
      const std::span<const float> row{logits.data() + static_cast<size_t>(b) * config.vocab,
                                       static_cast<size_t>(config.vocab)};
      tokens[static_cast<size_t>(b)] = hllm::SampleToken(row, sampler, rng);
      paths[static_cast<size_t>(b)].push_back(tokens[static_cast<size_t>(b)]);
    }
  }
  int distinct_pairs = 0;
  for (int a = 0; a < batch; ++a) {
    for (int b = a + 1; b < batch; ++b) {
      distinct_pairs += (paths[static_cast<size_t>(a)] != paths[static_cast<size_t>(b)]);
    }
  }
  EXPECT_GE(distinct_pairs, 4);  // most pairs diverge
}

// --- session-driven op dispatch (the §6 runtime structure) ---

TEST(IntegrationTest, SessionDispatchesOpsToNpuHandler) {
  // Model the CPU-side backend submitting a layer's ops through the shared-memory mailbox;
  // the NPU-side handler executes them against the simulator.
  hexsim::RpcmemPool pool;
  hexsim::NpuSession session(hexsim::OnePlus12());
  hexsim::NpuDevice dev(hexsim::OnePlus12());

  auto activations = pool.Alloc(64 * 2, "activations");
  ASSERT_TRUE(session.MapBuffer(activations));

  // NPU-side handler: executes softmax requests on buffers it looks up by id.
  hkern::ExpLut lut(dev);
  session.SetHandler([&](const hexsim::OpRequest& req) {
    ASSERT_EQ(req.op_name, "softmax_rows_f16");
    auto* data = reinterpret_cast<F16*>(activations->NpuView());
    auto* tcm = reinterpret_cast<F16*>(dev.tcm().Alloc(64 * 2));
    std::copy(data, data + 64, tcm);
    hkern::SoftmaxRowsF16(dev, hkern::SoftmaxVariant::kLut, &lut, tcm,
                          static_cast<int>(req.params[0]), static_cast<int>(req.params[1]));
    std::copy(tcm, tcm + 64, reinterpret_cast<F16*>(activations->NpuWriteView()));
  });

  // CPU side: write inputs, flush, submit.
  auto* cpu = reinterpret_cast<F16*>(activations->CpuView());
  for (int i = 0; i < 64; ++i) {
    cpu[i] = F16(static_cast<float>(i % 7));
  }
  activations->FlushForNpu();
  const double latency = session.Submit({"softmax_rows_f16", {activations->id()}, {1, 64}});
  EXPECT_GT(latency, 0.0);

  // CPU reads NPU results without maintenance (coherent direction): a valid distribution.
  const auto* out = reinterpret_cast<const F16*>(activations->CpuReadView());
  float sum = 0.0f;
  for (int i = 0; i < 64; ++i) {
    sum += out[i].ToFloat();
  }
  EXPECT_NEAR(sum, 1.0f, 0.02f);
  EXPECT_EQ(session.submitted_ops(), 1);
}

// --- engine consistency against the functional path ---

TEST(IntegrationTest, ToyEngineCanRunEverywhere) {
  // The toy config maps into every device's session window; the same API that gates the 3B
  // models accepts it.
  hllm::ModelConfig toy = hllm::ToyConfig();
  for (const auto* d : hexsim::AllDevices()) {
    hrt::EngineOptions o;
    o.model = &toy;
    o.device = d;
    const hrt::Engine e(o);
    EXPECT_TRUE(e.CanRun()) << d->device_name;
    EXPECT_GT(e.DecodeThroughput(1, 16), 0.0);
  }
}

TEST(IntegrationTest, FunctionalLedgerAgreesWithEngineOrderOfMagnitude) {
  // One functional toy decode step's simulated busy time must be within an order of
  // magnitude of the timing engine's prediction for the same config (the engine models a
  // production pipeline; the functional path is unoptimized, so exact agreement is not
  // expected — this guards against unit errors like ns-vs-us).
  const hllm::ModelConfig config = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(config, 79);
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hllm::Transformer tf(dev, weights, 1, 16);
  std::vector<float> logits(static_cast<size_t>(config.vocab));
  const int tok = 1;
  tf.Step({&tok, 1}, logits);
  const double functional_busy = dev.ledger().EngineSeconds(hexsim::Engine::kHvx) +
                                 dev.ledger().EngineSeconds(hexsim::Engine::kHmx);

  hrt::EngineOptions o;
  o.model = &config;
  o.device = &hexsim::OnePlus12();
  const hrt::Engine engine(o);
  const auto cost = engine.DecodeStep(1, 1);
  const double engine_busy = cost.hvx_busy_s + cost.hmx_busy_s;
  EXPECT_GT(functional_busy, engine_busy * 0.1);
  EXPECT_LT(functional_busy, engine_busy * 10.0);
}

}  // namespace

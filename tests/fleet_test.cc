// Tests for the fleet-scale serving simulation (src/fleet, docs/fleet.md): the thermal
// throttle model, the router policies, the prefix registry's refcount/eviction invariants,
// pinned prompt-anchor reuse, and end-to-end multi-device runs — including the headline
// contrast (session-affine routing + prefix registry beats round-robin on follow-up-turn
// latency and fleet KV footprint) and bit-identical reruns.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/fleet.h"
#include "src/fleet/throttled_backend.h"
#include "src/frontend/serving_engine.h"
#include "src/frontend/traffic.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/hexsim/thermal.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace hfleet {
namespace {

// ---------------------------------------------------------------------------------------
// Thermal model

TEST(ThermalTest, HeatsUnderLoadAndCoolsWhenIdleTowardAmbient) {
  hexsim::ThermalParams p;
  hexsim::ThermalState t(p);
  EXPECT_DOUBLE_EQ(t.temperature_c(), p.ambient_c);
  EXPECT_DOUBLE_EQ(t.clock_scale(), 1.0);
  t.AddBusy(1.0);
  const double hot1 = t.temperature_c();
  EXPECT_GT(hot1, p.ambient_c);
  t.AddBusy(1.0);
  EXPECT_GT(t.temperature_c(), hot1);  // heating is monotone in busy time
  t.AddIdle(0.5);
  EXPECT_LT(t.temperature_c(), hot1 + p.heat_c_per_busy_s);
  t.AddIdle(1e9);
  EXPECT_DOUBLE_EQ(t.temperature_c(), p.ambient_c);  // cooling floors at ambient
}

TEST(ThermalTest, ClockScaleIsMonotoneNonIncreasingAndBounded) {
  hexsim::ThermalParams p;
  hexsim::ThermalState t(p);
  double prev = t.clock_scale();
  double min_seen = prev;
  for (int i = 0; i < 40; ++i) {
    t.AddBusy(0.5);
    const double s = t.clock_scale();
    EXPECT_LE(s, prev + 1e-12);  // more accumulated heat never raises the clock
    EXPECT_GE(s, p.min_clock_scale);
    EXPECT_LE(s, 1.0);
    prev = s;
    min_seen = std::min(min_seen, s);
  }
  EXPECT_LT(min_seen, 1.0);  // 20 sustained busy seconds must throttle
  EXPECT_DOUBLE_EQ(t.min_scale_reached(), min_seen);
  // Past throttle_full_c the scale clamps at the floor.
  t.AddBusy(1e3);
  EXPECT_DOUBLE_EQ(t.clock_scale(), p.min_clock_scale);
  // Recovery: cooling back below throttle_start_c restores the full clock, but the
  // lifetime minimum stays recorded.
  t.AddIdle(1e9);
  EXPECT_DOUBLE_EQ(t.clock_scale(), 1.0);
  EXPECT_DOUBLE_EQ(t.min_scale_reached(), p.min_clock_scale);
}

// ---------------------------------------------------------------------------------------
// Throttled backend

class FleetFixture : public ::testing::Test {
 protected:
  FleetFixture()
      : config_(hllm::ToyConfig()), weights_(hllm::ModelWeights::Random(config_, 42)) {}

  std::unique_ptr<hserve::FunctionalBackend> MakeBackend(int max_batch,
                                                         int max_context = 256) {
    devs_.push_back(std::make_unique<hexsim::NpuDevice>(hexsim::OnePlus12()));
    return std::make_unique<hserve::FunctionalBackend>(*devs_.back(), weights_, max_batch,
                                                       max_context);
  }

  hllm::ModelConfig config_;
  hllm::ModelWeights weights_;
  std::vector<std::unique_ptr<hexsim::NpuDevice>> devs_;
};

TEST_F(FleetFixture, ThrottlingDilatesTimeButPreservesTokensAndEnergy) {
  hexsim::ThermalParams aggressive;
  aggressive.heat_c_per_busy_s = 1e7;  // throttles to the floor almost immediately
  const auto run = [&](bool thermal) {
    auto inner = MakeBackend(2);
    ThrottledBackend backend(*inner, aggressive, thermal);
    hserve::ServeOptions so;
    so.max_batch = 2;
    std::vector<hserve::ServeJob> jobs;
    for (int i = 0; i < 4; ++i) {
      hserve::ServeJob j;
      j.id = i;
      j.prompt_tokens = 8;
      j.decode_tokens = 12;
      jobs.push_back(j);
    }
    return hserve::ContinuousBatcher(backend, so).Run(jobs);
  };
  const hserve::ScheduleResult cool = run(false);
  const hserve::ScheduleResult hot = run(true);
  ASSERT_TRUE(cool.error.empty()) << cool.error;
  ASSERT_TRUE(hot.error.empty()) << hot.error;
  // Same work decoded, token-for-token.
  EXPECT_EQ(hot.decoded_tokens, cool.decoded_tokens);
  ASSERT_EQ(hot.job_tokens.size(), cool.job_tokens.size());
  for (size_t j = 0; j < hot.job_tokens.size(); ++j) {
    EXPECT_EQ(hot.job_tokens[j], cool.job_tokens[j]) << "job " << j;
  }
  // Throttled clocks stretch the makespan toward 1/min_clock_scale...
  EXPECT_GT(hot.makespan_s, cool.makespan_s * 1.5);
  EXPECT_LE(hot.makespan_s, cool.makespan_s / aggressive.min_clock_scale * 1.0001);
  // ...but DVFS trades latency, not joules: each step's energy is clock-invariant.
  EXPECT_NEAR(hot.energy_j, cool.energy_j, cool.energy_j * 1e-9);
}

TEST_F(FleetFixture, DisabledThrottleIsTransparent) {
  auto inner = MakeBackend(2);
  hexsim::ThermalParams p;
  ThrottledBackend backend(*inner, p, /*enabled=*/false);
  backend.AddIdle(100.0);
  EXPECT_DOUBLE_EQ(backend.clock_scale(), 1.0);
  EXPECT_DOUBLE_EQ(backend.min_scale_reached(), 1.0);
  hserve::ServeOptions so;
  so.max_batch = 2;
  hserve::ServeJob j;
  j.id = 0;
  j.prompt_tokens = 8;
  j.decode_tokens = 6;
  const hserve::ScheduleResult r = hserve::ContinuousBatcher(backend, so).Run({j});
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.decoded_tokens, 6);
  EXPECT_DOUBLE_EQ(backend.clock_scale(), 1.0);  // no heat accumulated
}

// ---------------------------------------------------------------------------------------
// Prefix registry

TEST(PrefixRegistryTest, HitsMissesAndRefcounts) {
  PrefixRegistry reg(/*devices=*/2, /*capacity_per_device=*/0);
  auto a = reg.Acquire(0, 7);
  EXPECT_FALSE(a.hit);
  EXPECT_EQ(a.evicted_prefix, -1);
  EXPECT_EQ(reg.refcount(0, 7), 1);
  a = reg.Acquire(0, 7);
  EXPECT_TRUE(a.hit);
  EXPECT_EQ(reg.refcount(0, 7), 2);
  // Residency is per device: the other device misses on the same prefix.
  a = reg.Acquire(1, 7);
  EXPECT_FALSE(a.hit);
  reg.Release(0, 7);
  reg.Release(0, 7);
  // Refcount 0 does NOT drop residency — the next acquire is still a hit.
  EXPECT_EQ(reg.refcount(0, 7), 0);
  EXPECT_TRUE(reg.resident(0, 7));
  EXPECT_TRUE(reg.Acquire(0, 7).hit);
  EXPECT_EQ(reg.hits(), 2);
  EXPECT_EQ(reg.misses(), 2);
  EXPECT_EQ(reg.evictions(), 0);
}

TEST(PrefixRegistryTest, LruEvictionSkipsReferencedPrefixes) {
  PrefixRegistry reg(/*devices=*/1, /*capacity_per_device=*/2);
  ASSERT_FALSE(reg.Acquire(0, 1).hit);
  ASSERT_FALSE(reg.Acquire(0, 2).hit);
  reg.Release(0, 1);  // prefix 1 idle (refcount 0), prefix 2 still referenced
  // At capacity: admitting prefix 3 must evict the idle LRU entry (1), never the
  // referenced one (2).
  const auto a3 = reg.Acquire(0, 3);
  EXPECT_FALSE(a3.hit);
  EXPECT_EQ(a3.evicted_prefix, 1);
  EXPECT_FALSE(reg.resident(0, 1));
  EXPECT_TRUE(reg.resident(0, 2));
  EXPECT_EQ(reg.evictions(), 1);
  // Every resident prefix referenced: over-subscribe rather than evict.
  const auto a4 = reg.Acquire(0, 4);
  EXPECT_FALSE(a4.hit);
  EXPECT_EQ(a4.evicted_prefix, -1);
  EXPECT_EQ(reg.resident_count(0), 3);
  // LRU order follows last USE, not insertion: touching 2 makes 3 the idle LRU victim.
  reg.Release(0, 2);
  reg.Release(0, 3);
  reg.Release(0, 4);
  EXPECT_TRUE(reg.Acquire(0, 2).hit);
  reg.Release(0, 2);
  EXPECT_EQ(reg.Acquire(0, 5).evicted_prefix, 3);
}

// ---------------------------------------------------------------------------------------
// Router

TEST(FleetRouterTest, LeastLoadedTieBreaksDeterministicallyByIndex) {
  FleetRouter router(RouterPolicy::kLeastLoaded, 4);
  hfront::Request req;
  std::vector<DeviceLoad> loads(4);
  // All equal: lowest index wins, and the choice is stable across repeats.
  EXPECT_EQ(router.Route(req, loads), 0);
  EXPECT_EQ(router.Route(req, loads), 0);
  loads[0].inflight = 2;
  loads[1].inflight = 1;
  loads[2].inflight = 1;
  loads[3].inflight = 3;
  // Queue-depth tie between 1 and 2: resident KV breaks it...
  loads[2].kv_blocks = 5;
  EXPECT_EQ(router.Route(req, loads), 1);
  // ...and an exact tie falls back to the lower index.
  loads[2].kv_blocks = 0;
  EXPECT_EQ(router.Route(req, loads), 1);
}

TEST(FleetRouterTest, RoundRobinCyclesAndHintOverrides) {
  FleetRouter router(RouterPolicy::kRoundRobin, 3);
  hfront::Request req;
  const std::vector<DeviceLoad> loads(3);
  EXPECT_EQ(router.Route(req, loads), 0);
  EXPECT_EQ(router.Route(req, loads), 1);
  EXPECT_EQ(router.Route(req, loads), 2);
  EXPECT_EQ(router.Route(req, loads), 0);
  req.device_hint = 1;
  EXPECT_EQ(router.Route(req, loads), 1);
}

TEST(FleetRouterTest, SessionAffinePinsEveryTurnToOneDevice) {
  FleetRouter router(RouterPolicy::kSessionAffine, 3);
  hfront::Request first;
  first.session = 11;
  std::vector<DeviceLoad> loads(3);
  loads[0].inflight = 4;  // device 1 is emptiest at the first turn
  loads[1].inflight = 0;
  loads[2].inflight = 2;
  EXPECT_EQ(router.Route(first, loads), 1);
  // Later turns stick to the pin even when the load picture inverts completely.
  loads[1].inflight = 50;
  hfront::Request followup;
  followup.session = 11;
  followup.turn_index = 1;
  EXPECT_EQ(router.Route(followup, loads), 1);
  // Sessionless traffic still routes by load (device 2 is now the emptiest).
  hfront::Request single;
  EXPECT_EQ(router.Route(single, loads), 2);
}

// ---------------------------------------------------------------------------------------
// Pinned prompt anchors (ContinuousBatcher::PinGroup / EvictGroup)

TEST_F(FleetFixture, PinnedGroupSharesAcrossSubmissionsAndEvictRecharges) {
  auto backend = MakeBackend(2);
  hserve::ServeOptions so;
  so.max_batch = 2;
  hserve::ContinuousBatcher b(*backend, so);
  b.Reset();
  const auto submit_and_drain = [&](int id) {
    hserve::ServeJob j;
    j.id = id;
    j.prompt_group = 9;
    j.prompt_tokens = 48;
    j.group_prefix_tokens = 32;  // the first 32 tokens are the registered shared prefix
    j.decode_tokens = 4;
    std::string error;
    ASSERT_TRUE(b.Submit(j, &error)) << error;
    while (b.HasWork()) {
      ASSERT_TRUE(b.Step().stepped);
    }
  };
  b.PinGroup(9);
  submit_and_drain(0);  // first member prefills (and is charged) the full prompt
  submit_and_drain(1);  // anchor pinned past the drain: only the 16 fresh tokens charge
  b.EvictGroup(9);
  submit_and_drain(2);  // eviction reset the charge flag: full prompt again
  const hserve::ScheduleResult r = b.Finish();
  ASSERT_TRUE(r.error.empty()) << r.error;
  EXPECT_EQ(r.prefilled_tokens, 48 + 16 + 48);
  // And without a pin, the anchor auto-releases when the group drains, so a later member
  // re-prefills from scratch.
  auto backend2 = MakeBackend(2);
  hserve::ContinuousBatcher b2(*backend2, so);
  b2.Reset();
  {
    hserve::ServeJob j;
    j.id = 0;
    j.prompt_group = 9;
    j.prompt_tokens = 48;
    j.group_prefix_tokens = 32;
    j.decode_tokens = 4;
    std::string error;
    ASSERT_TRUE(b2.Submit(j, &error)) << error;
    while (b2.HasWork()) {
      ASSERT_TRUE(b2.Step().stepped);
    }
    j.id = 1;
    ASSERT_TRUE(b2.Submit(j, &error)) << error;
    while (b2.HasWork()) {
      ASSERT_TRUE(b2.Step().stepped);
    }
  }
  const hserve::ScheduleResult r2 = b2.Finish();
  ASSERT_TRUE(r2.error.empty()) << r2.error;
  EXPECT_EQ(r2.prefilled_tokens, 48 + 48);
}

// ---------------------------------------------------------------------------------------
// End-to-end fleet runs

class FleetEndToEndTest : public FleetFixture {
 protected:
  FleetOptions Options(int devices, RouterPolicy policy) {
    FleetOptions o;
    o.devices = HeterogeneousFleet(devices);
    o.policy = policy;
    o.serve.max_batch = 4;
    o.serve.enable_preemption = true;
    o.max_context = 768;
    return o;
  }

  // Session-heavy traffic with registered shared prefixes — the preset the affine router
  // and prefix registry exist for.
  std::vector<hfront::Request> SessionTrace(int arrivals, uint64_t seed) {
    hfront::TrafficOptions t;
    t.arrivals = arrivals;
    t.seed = seed;
    t.arrival_rate_hz = 200.0;
    t.burst_fraction = 0.3;
    t.burst_size = 4;
    t.mean_prompt_tokens = 40;
    t.mean_decode_tokens = 16;
    t.interactive_fraction = 0.5;
    t.session_fraction = 0.7;
    t.session_turns = 3;
    t.mean_think_s = 0.002;
    t.prefix_count = 2;
    t.prefix_tokens = 64;
    t.prefix_fraction = 0.6;
    return hfront::GenerateTraffic(t);
  }
};

TEST_F(FleetEndToEndTest, FourDeviceTraceCompletesAndRerunsBitIdentically) {
  const std::vector<hfront::Request> trace = SessionTrace(24, 5);
  FleetSimulator sim(Options(4, RouterPolicy::kSessionAffine), weights_);
  const FleetSummary a = sim.Run(trace);
  ASSERT_TRUE(a.error.empty()) << a.error;
  ASSERT_EQ(a.requests.size(), trace.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_TRUE(a.requests[i].done) << "request " << i;
    EXPECT_EQ(a.requests[i].tokens, trace[i].decode_tokens);
    EXPECT_GE(a.request_device[i], 0);
    EXPECT_LT(a.request_device[i], 4);
  }
  EXPECT_GT(a.makespan_s, 0.0);
  EXPECT_GT(a.energy_j, 0.0);
  EXPECT_GT(a.prefix_hits, 0);          // shared prefixes actually dedupe
  EXPECT_GT(a.prefix_misses, 0);        // and each device paid its first prefill
  EXPECT_GE(a.load_imbalance, 1.0);
  // Session affinity: every turn of a session ran on the session's pinned device.
  std::map<int, int> session_device;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].session < 0) {
      continue;
    }
    const auto [it, fresh] =
        session_device.try_emplace(trace[i].session, a.request_device[i]);
    if (!fresh) {
      EXPECT_EQ(it->second, a.request_device[i]) << "session " << trace[i].session;
    }
  }
  // fleet.* metrics mirror the summary scalars.
  EXPECT_EQ(a.metrics.CounterValue("fleet.decoded_tokens"), a.decoded_tokens);
  EXPECT_EQ(a.metrics.CounterValue("fleet.prefix.hits"), a.prefix_hits);
  EXPECT_DOUBLE_EQ(a.metrics.GaugeValue("fleet.makespan_seconds"), a.makespan_s);
  bool found = false;
  a.metrics.GaugeValue("fleet.device.makespan_seconds", a.devices[0].name, &found);
  EXPECT_TRUE(found);  // per-device labeled series present

  // Determinism: a second run of the same trace is bit-identical.
  const FleetSummary b = sim.Run(trace);
  ASSERT_TRUE(b.error.empty()) << b.error;
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.request_device, b.request_device);
  for (size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].checksum, b.requests[i].checksum) << "request " << i;
    EXPECT_EQ(a.requests[i].done_s, b.requests[i].done_s) << "request " << i;
  }
}

TEST_F(FleetEndToEndTest, AffinitySurvivesPreemption) {
  // Preemption-heavy: tiny batch with a 50/50 interactive mix forces pauses; a paused
  // session turn must still resume — and its follow-ups still land — on its pinned device.
  hfront::TrafficOptions t;
  t.arrivals = 16;
  t.seed = 11;
  t.arrival_rate_hz = 400.0;
  t.mean_prompt_tokens = 32;
  t.mean_decode_tokens = 24;
  t.interactive_fraction = 0.5;
  t.session_fraction = 0.8;
  t.session_turns = 3;
  t.mean_think_s = 0.001;
  const std::vector<hfront::Request> trace = hfront::GenerateTraffic(t);
  FleetOptions o = Options(2, RouterPolicy::kSessionAffine);
  o.serve.max_batch = 2;
  FleetSimulator sim(o, weights_);
  const FleetSummary s = sim.Run(trace);
  ASSERT_TRUE(s.error.empty()) << s.error;
  int64_t preemptions = 0;
  for (const auto& st : s.requests) {
    preemptions += st.preemptions;
    EXPECT_TRUE(st.done);
    EXPECT_EQ(st.resumes, st.preemptions);  // every pause resumed from retained KV
  }
  EXPECT_GT(preemptions, 0) << "preset no longer exercises preemption";
  std::map<int, int> session_device;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (trace[i].session < 0) {
      continue;
    }
    const auto [it, fresh] =
        session_device.try_emplace(trace[i].session, s.request_device[i]);
    if (!fresh) {
      EXPECT_EQ(it->second, s.request_device[i]) << "session " << trace[i].session;
    }
  }
}

TEST_F(FleetEndToEndTest, ThermalDevicesThrottleAndRecordIt) {
  // Saturate a 2-device fleet where device 1 (V79 per the heterogeneous pattern's 5th
  // entry) is thermal. Use specs directly so exactly one device throttles.
  FleetOptions o;
  o.devices.resize(2);
  o.devices[0].arch = hexsim::NpuArch::kV75;
  o.devices[1].arch = hexsim::NpuArch::kV75;
  o.devices[1].thermal = true;
  o.devices[1].thermal_params.heat_c_per_busy_s = 1e6;  // throttles on the first step
  o.policy = RouterPolicy::kLeastLoaded;
  o.serve.max_batch = 2;
  o.max_context = 512;
  hfront::TrafficOptions t;
  t.arrivals = 8;
  t.seed = 3;
  t.arrival_rate_hz = 500.0;
  t.mean_prompt_tokens = 24;
  t.mean_decode_tokens = 32;
  const std::vector<hfront::Request> trace = hfront::GenerateTraffic(t);
  FleetSimulator sim(o, weights_);
  const FleetSummary s = sim.Run(trace);
  ASSERT_TRUE(s.error.empty()) << s.error;
  EXPECT_DOUBLE_EQ(s.devices[0].min_clock_scale, 1.0);
  EXPECT_LT(s.devices[1].min_clock_scale, 1.0);
  EXPECT_GT(s.devices[1].final_temperature_c,
            o.devices[1].thermal_params.ambient_c - 1e-9);
}

TEST_F(FleetEndToEndTest, AffineWithPrefixRegistryBeatsRoundRobin) {
  const std::vector<hfront::Request> trace = SessionTrace(32, 17);
  const auto run = [&](RouterPolicy policy) {
    FleetSimulator sim(Options(4, policy), weights_);
    FleetSummary s = sim.Run(trace);
    EXPECT_TRUE(s.error.empty()) << s.error;
    return s;
  };
  const FleetSummary affine = run(RouterPolicy::kSessionAffine);
  const FleetSummary rr = run(RouterPolicy::kRoundRobin);
  const auto p99_ttft = [](const FleetSummary& s) {
    std::vector<double> v;
    for (const auto& st : s.requests) {
      v.push_back(st.ttft_s());
    }
    return hfront::Percentile(v, 0.99);
  };
  // The acceptance contrast (ISSUE 7): session-affine + prefix registry strictly beats
  // round-robin on tail TTFT (follow-up turns fork retained KV instead of re-prefilling
  // the dialog) and on fleet KV footprint (no duplicate dialog/prefix blocks).
  EXPECT_LT(p99_ttft(affine), p99_ttft(rr));
  EXPECT_LT(affine.kv_peak_physical_bytes, rr.kv_peak_physical_bytes);
  // Both policies decode the same token budget.
  EXPECT_EQ(affine.decoded_tokens, rr.decoded_tokens);
}

}  // namespace
}  // namespace hfleet

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/gemm.h"
#include "src/kernels/lm_head.h"
#include "src/kernels/misc_ops.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/softmax.h"
#include "src/quant/group_quant.h"
#include "src/quant/tile_quant.h"

namespace hkern {
namespace {

using hexllm::F16;
using hexllm::RoundToF16;
using hexllm::Rng;
using hexsim::HvxVec;
using hexsim::NpuDevice;
using hexsim::OnePlus12;
using hexsim::OnePlusAce5Pro;

// --- exp LUT ---

TEST(ExpLutTest, Occupies64KiBOfTcm) {
  NpuDevice dev(OnePlus12());
  const int64_t before = dev.tcm().used();
  ExpLut lut(dev);
  EXPECT_EQ(dev.tcm().used() - before, 64 * 1024);
  // §5.2.1: 64 KiB / 8 MiB ~ 0.8% of TCM.
  EXPECT_LT(static_cast<double>(ExpLut::kBytes) / dev.tcm().capacity(), 0.009);
}

TEST(ExpLutTest, AccurateOverNegativeRange) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  for (float x = 0.0f; x >= -16.0f; x -= 0.037f) {
    const F16 xh(x);
    const float expected = std::exp(xh.ToFloat());
    const float got = lut.Lookup(xh);
    // Error bounded by FP16 output rounding (the input is exact by construction).
    EXPECT_NEAR(got, expected, expected * 1.2e-3 + 1e-7) << x;
  }
}

TEST(ExpLutTest, MinusInfinityMapsToZero) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  EXPECT_EQ(lut.Lookup(F16::NegInf()), 0.0f);
}

TEST(ExpLutTest, MoreAccurateThanF16Polynomial) {
  // §7.4: the LUT (built at >= 32-bit precision) beats 16-bit polynomial evaluation.
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  Rng rng(5);
  double lut_se = 0.0;
  double poly_se = 0.0;
  int n = 0;
  for (int i = 0; i < 4000; ++i) {
    const float x = RoundToF16(static_cast<float>(-10.0 * rng.NextDouble()));
    const double expected = std::exp(static_cast<double>(x));
    const double lut_v = lut.Lookup(F16(x));
    // F16 polynomial via the softmax variant machinery.
    HvxVec in = dev.hvx().VSplatHf(x);
    const HvxVec out = ExpNonPosF16(dev, SoftmaxVariant::kF16Poly, nullptr, in, 1);
    const double poly_v = out.GetHf(0);
    lut_se += (lut_v - expected) * (lut_v - expected);
    poly_se += (poly_v - expected) * (poly_v - expected);
    ++n;
  }
  EXPECT_LT(lut_se, poly_se);
}

// --- exp variants ---

class ExpVariantTest : public ::testing::TestWithParam<SoftmaxVariant> {};

TEST_P(ExpVariantTest, MatchesExpWithinF16Tolerance) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  Rng rng(11);
  HvxVec in{};
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    in.SetHf(i, static_cast<float>(-8.0 * rng.NextDouble()));
  }
  const HvxVec out = ExpNonPosF16(dev, GetParam(), &lut, in, 1);
  for (int i = 0; i < HvxVec::kHalfwords; ++i) {
    const float expected = std::exp(in.GetHf(i));
    EXPECT_NEAR(out.GetHf(i), expected, expected * 8e-3 + 1e-6) << i;
  }
}

TEST_P(ExpVariantTest, PacketCountMatchesCostModel) {
  for (const auto* profile : {&OnePlus12(), &OnePlusAce5Pro()}) {
    NpuDevice dev(*profile);
    ExpLut lut(dev);
    for (int rows : {1, 4, 16, 64}) {
      dev.hvx().ResetPackets();
      HvxVec in = dev.hvx().VSplatHf(-1.0f);
      dev.hvx().ResetPackets();
      (void)ExpNonPosF16(dev, GetParam(), &lut, in, rows);
      EXPECT_EQ(dev.hvx().packets(), ExpRegPacketCost(*profile, GetParam(), rows))
          << profile->device_name << " rows=" << rows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ExpVariantTest,
                         ::testing::Values(SoftmaxVariant::kF32Poly, SoftmaxVariant::kF16Poly,
                                           SoftmaxVariant::kLut),
                         [](const auto& info) {
                           switch (info.param) {
                             case SoftmaxVariant::kF32Poly:
                               return "F32Poly";
                             case SoftmaxVariant::kF16Poly:
                               return "F16Poly";
                             default:
                               return "Lut";
                           }
                         });

TEST(ExpVariantTest, LutIsCheapestAndF32IsMostExpensive) {
  const auto& p = OnePlus12();
  const int64_t f32 = ExpRegPacketCost(p, SoftmaxVariant::kF32Poly, 1);
  const int64_t f16 = ExpRegPacketCost(p, SoftmaxVariant::kF16Poly, 1);
  const int64_t lutc = ExpRegPacketCost(p, SoftmaxVariant::kLut, 1);
  EXPECT_LT(lutc, f16);
  EXPECT_LT(f16, f32);
}

TEST(ExpVariantTest, GatherContentionGrowsWithRows) {
  const auto& p = OnePlus12();
  const int64_t one = ExpRegPacketCost(p, SoftmaxVariant::kLut, 1);
  const int64_t sixteen = ExpRegPacketCost(p, SoftmaxVariant::kLut, 16);
  EXPECT_GT(sixteen, one);
  // Saturates at 16 in-flight rows.
  EXPECT_EQ(ExpRegPacketCost(p, SoftmaxVariant::kLut, 64), sixteen);
}

// --- softmax ---

class SoftmaxTest : public ::testing::TestWithParam<SoftmaxVariant> {};

TEST_P(SoftmaxTest, RowsSumToOneAndMatchReference) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  const int rows = 3;
  const int cols = 128;
  Rng rng(21);
  auto* s = reinterpret_cast<F16*>(dev.tcm().Alloc(rows * cols * 2));
  std::vector<float> ref(static_cast<size_t>(rows) * cols);
  for (int i = 0; i < rows * cols; ++i) {
    const float v = static_cast<float>(rng.NextGaussian() * 3.0);
    s[i] = F16(v);
    ref[static_cast<size_t>(i)] = s[i].ToFloat();
  }
  SoftmaxRowsF16(dev, GetParam(), &lut, s, rows, cols);
  for (int r = 0; r < rows; ++r) {
    // Reference row softmax in double.
    double m = -1e30;
    for (int c = 0; c < cols; ++c) {
      m = std::max(m, static_cast<double>(ref[static_cast<size_t>(r * cols + c)]));
    }
    double l = 0.0;
    for (int c = 0; c < cols; ++c) {
      l += std::exp(ref[static_cast<size_t>(r * cols + c)] - m);
    }
    float sum = 0.0f;
    for (int c = 0; c < cols; ++c) {
      const float got = s[r * cols + c].ToFloat();
      const float expected =
          static_cast<float>(std::exp(ref[static_cast<size_t>(r * cols + c)] - m) / l);
      EXPECT_NEAR(got, expected, 0.01) << r << "," << c;
      sum += got;
    }
    EXPECT_NEAR(sum, 1.0f, 0.02f);
  }
}

TEST_P(SoftmaxTest, PacketCostModelMatchesEmulation) {
  for (const auto* profile : {&OnePlus12(), &OnePlusAce5Pro()}) {
    NpuDevice dev(*profile);
    ExpLut lut(dev);
    const int rows = 4;
    const int cols = 256;
    auto* s = reinterpret_cast<F16*>(dev.tcm().Alloc(rows * cols * 2));
    for (int i = 0; i < rows * cols; ++i) {
      s[i] = F16(-0.5f);
    }
    dev.hvx().ResetPackets();
    SoftmaxRowsF16(dev, GetParam(), &lut, s, rows, cols);
    EXPECT_EQ(dev.hvx().packets(), SoftmaxPacketCost(*profile, GetParam(), rows, cols))
        << profile->device_name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, SoftmaxTest,
                         ::testing::Values(SoftmaxVariant::kF32Poly, SoftmaxVariant::kF16Poly,
                                           SoftmaxVariant::kLut),
                         [](const auto& info) {
                           switch (info.param) {
                             case SoftmaxVariant::kF32Poly:
                               return "F32Poly";
                             case SoftmaxVariant::kF16Poly:
                               return "F16Poly";
                             default:
                               return "Lut";
                           }
                         });

TEST(SoftmaxTest, LutSpeedupInPaperRange) {
  // Figure 14: LUT exp is 1.26-2.19x faster than F32 exp across (q, kv) workloads.
  const auto& p = OnePlus12();
  for (int q : {1, 4, 16}) {
    for (int kv : {1024, 4096, 16384}) {
      const int64_t f32 = SoftmaxPacketCost(p, SoftmaxVariant::kF32Poly, q, kv);
      const int64_t lutc = SoftmaxPacketCost(p, SoftmaxVariant::kLut, q, kv);
      const double speedup = static_cast<double>(f32) / lutc;
      EXPECT_GE(speedup, 1.2) << "q=" << q << " kv=" << kv;
      EXPECT_LE(speedup, 2.3) << "q=" << q << " kv=" << kv;
    }
  }
}

TEST(SoftmaxTest, LargerQueryReducesLutSpeedup) {
  const auto& p = OnePlus12();
  const double s1 =
      static_cast<double>(SoftmaxPacketCost(p, SoftmaxVariant::kF32Poly, 1, 1024)) /
      SoftmaxPacketCost(p, SoftmaxVariant::kLut, 1, 1024);
  const double s16 =
      static_cast<double>(SoftmaxPacketCost(p, SoftmaxVariant::kF32Poly, 16, 1024)) /
      SoftmaxPacketCost(p, SoftmaxVariant::kLut, 16, 1024);
  EXPECT_LT(s16, s1);
}

// --- flash attention ---

TEST(FlashAttentionTest, MatchesF32Reference) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  Rng rng(31);
  const int q_len = 7;
  const int kv_len = 150;
  const int d = 64;
  std::vector<F16> q(static_cast<size_t>(q_len) * d);
  std::vector<F16> k(static_cast<size_t>(kv_len) * d);
  std::vector<F16> v(static_cast<size_t>(kv_len) * d);
  std::vector<F16> o(static_cast<size_t>(q_len) * d);
  std::vector<float> qf(q.size()), kf(k.size()), vf(v.size()), of(o.size());
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = F16(static_cast<float>(rng.NextGaussian()));
    qf[i] = q[i].ToFloat();
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    kf[i] = k[i].ToFloat();
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
    vf[i] = v[i].ToFloat();
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                    q_len, kv_len, d, scale);
  AttentionF32Reference(qf.data(), kf.data(), vf.data(), of.data(), q_len, kv_len, d, scale);
  for (size_t i = 0; i < o.size(); ++i) {
    EXPECT_NEAR(o[i].ToFloat(), of[i], 0.03) << i;
  }
}

TEST(FlashAttentionTest, AllExpVariantsAgree) {
  Rng rng(32);
  const int q_len = 4;
  const int kv_len = 96;
  const int d = 32;
  std::vector<F16> q(static_cast<size_t>(q_len) * d);
  std::vector<F16> k(static_cast<size_t>(kv_len) * d);
  std::vector<F16> v(static_cast<size_t>(kv_len) * d);
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<std::vector<F16>> outs;
  for (const auto variant :
       {SoftmaxVariant::kLut, SoftmaxVariant::kF16Poly, SoftmaxVariant::kF32Poly}) {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    std::vector<F16> o(static_cast<size_t>(q_len) * d);
    FlashAttentionF16(dev, lut, variant, q.data(), k.data(), v.data(), o.data(), q_len, kv_len,
                      d, scale);
    outs.push_back(std::move(o));
  }
  for (size_t i = 0; i < outs[0].size(); ++i) {
    EXPECT_NEAR(outs[0][i].ToFloat(), outs[1][i].ToFloat(), 0.02);
    EXPECT_NEAR(outs[0][i].ToFloat(), outs[2][i].ToFloat(), 0.02);
  }
}

TEST(FlashAttentionTest, CausalMaskMatchesMaskedReference) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  Rng rng(33);
  const int q_len = 6;
  const int kv_len = 40;
  const int d = 32;
  const int offset = kv_len - q_len;  // standard self-attention alignment
  std::vector<F16> q(static_cast<size_t>(q_len) * d);
  std::vector<F16> k(static_cast<size_t>(kv_len) * d);
  std::vector<F16> v(static_cast<size_t>(kv_len) * d);
  std::vector<F16> o(q.size());
  std::vector<float> qf(q.size()), kf(k.size()), vf(v.size());
  for (size_t i = 0; i < q.size(); ++i) {
    q[i] = F16(static_cast<float>(rng.NextGaussian()));
    qf[i] = q[i].ToFloat();
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    kf[i] = k[i].ToFloat();
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
    vf[i] = v[i].ToFloat();
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                    q_len, kv_len, d, scale, offset);
  // Reference: row r attends to positions [0, offset + r].
  for (int r = 0; r < q_len; ++r) {
    const int visible = offset + r + 1;
    std::vector<float> o_ref(static_cast<size_t>(d));
    AttentionF32Reference(qf.data() + static_cast<size_t>(r) * d, kf.data(), vf.data(),
                          o_ref.data(), 1, visible, d, scale);
    for (int c = 0; c < d; ++c) {
      EXPECT_NEAR(o[static_cast<size_t>(r) * d + c].ToFloat(), o_ref[static_cast<size_t>(c)],
                  0.03)
          << r << "," << c;
    }
  }
}

TEST(FlashAttentionTest, CausalSkipsFutureChunksAndCostsLess) {
  // Query at position 0 of a long KV: every chunk beyond the first is fully masked and
  // must be skipped, making the causal call far cheaper than the unmasked one.
  std::vector<F16> q(static_cast<size_t>(1) * 64, F16(0.1f));
  std::vector<F16> k(static_cast<size_t>(2048) * 64, F16(0.1f));
  std::vector<F16> v(k.size(), F16(0.1f));
  std::vector<F16> o(q.size());
  double causal_s = 0.0;
  double full_s = 0.0;
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                      1, 2048, 64, 0.125f, /*q_pos_offset=*/0);
    causal_s = dev.ledger().TagSeconds("attn.softmax") + dev.ledger().TagSeconds("dma");
  }
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                      1, 2048, 64, 0.125f);
    full_s = dev.ledger().TagSeconds("attn.softmax") + dev.ledger().TagSeconds("dma");
  }
  EXPECT_LT(causal_s, full_s / 8.0);
}

TEST(FlashAttentionTest, SoftmaxDominatesAtLongContext) {
  // Figure 8's headline: at long KV, Softmax (HVX) dwarfs the HMX matmuls.
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  const int q_len = 16;
  const int kv_len = 1024;
  const int d = 64;
  std::vector<F16> q(static_cast<size_t>(q_len) * d, F16(0.1f));
  std::vector<F16> k(static_cast<size_t>(kv_len) * d, F16(0.1f));
  std::vector<F16> v(static_cast<size_t>(kv_len) * d, F16(0.1f));
  std::vector<F16> o(static_cast<size_t>(q_len) * d);
  FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                    q_len, kv_len, d, 0.125f);
  const auto& ledger = dev.ledger();
  const double softmax_s = ledger.TagSeconds("attn.softmax");
  const double matmul_s = ledger.TagSeconds("attn.qk") + ledger.TagSeconds("attn.pv");
  EXPECT_GT(softmax_s, 4.0 * matmul_s);
}

TEST(FlashAttentionTest, CostModelTracksEmulation) {
  NpuDevice dev(OnePlus12());
  ExpLut lut(dev);
  const int q_len = 8;
  const int kv_len = 512;
  const int d = 64;
  std::vector<F16> q(static_cast<size_t>(q_len) * d, F16(0.1f));
  std::vector<F16> k(static_cast<size_t>(kv_len) * d, F16(0.1f));
  std::vector<F16> v(static_cast<size_t>(kv_len) * d, F16(0.1f));
  std::vector<F16> o(static_cast<size_t>(q_len) * d);
  FlashAttentionF16(dev, lut, SoftmaxVariant::kLut, q.data(), k.data(), v.data(), o.data(),
                    q_len, kv_len, d, 0.125f);
  const AttentionCost cost = FlashAttentionCost(OnePlus12(), SoftmaxVariant::kLut, q_len,
                                                kv_len, d);
  const auto& ledger = dev.ledger();
  EXPECT_NEAR(cost.hvx_softmax_s, ledger.TagSeconds("attn.softmax"),
              0.15 * ledger.TagSeconds("attn.softmax"));
  EXPECT_NEAR(cost.hmx_qk_s + cost.hmx_pv_s,
              ledger.TagSeconds("attn.qk") + ledger.TagSeconds("attn.pv"),
              0.01 * (ledger.TagSeconds("attn.qk") + ledger.TagSeconds("attn.pv")) + 1e-9);
  EXPECT_NEAR(cost.hvx_pack_s, ledger.TagSeconds("attn.pack"),
              0.2 * ledger.TagSeconds("attn.pack"));
}

// --- GEMM ---

TEST(GemmTest, HmxMatchesReference) {
  NpuDevice dev(OnePlus12());
  Rng rng(41);
  const int m = 32;
  const int k = 64;
  const int n = 64;
  std::vector<F16> a(static_cast<size_t>(m) * k);
  std::vector<float> w(static_cast<size_t>(k) * n);  // column-major
  for (auto& x : a) {
    x = F16(static_cast<float>(rng.NextGaussian() * 0.5));
  }
  for (auto& x : w) {
    x = static_cast<float>(rng.NextGaussian() * 0.5);
  }
  // Pack B into tile stream order via the quant permutation (stream order == tile layout).
  const auto stream = hquant::PermuteToHmxOrder(w, k, n);
  std::vector<F16> b_tiles(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    b_tiles[i] = F16(stream[i]);
  }
  std::vector<F16> c(static_cast<size_t>(m) * n);
  GemmF16Hmx(dev, a.data(), b_tiles.data(), c.data(), m, k, n, /*operands_in_tcm=*/false);
  for (int mi = 0; mi < m; ++mi) {
    for (int ni = 0; ni < n; ++ni) {
      float expected = 0.0f;
      for (int ki = 0; ki < k; ++ki) {
        expected += a[static_cast<size_t>(mi) * k + ki].ToFloat() *
                    RoundToF16(w[static_cast<size_t>(ni) * k + ki]);
      }
      EXPECT_NEAR(c[static_cast<size_t>(mi) * n + ni].ToFloat(), expected,
                  std::fabs(expected) * 2e-3 + 2e-2)
          << mi << "," << ni;
    }
  }
}

TEST(GemmTest, HvxMatchesHmxApproximately) {
  NpuDevice dev(OnePlus12());
  Rng rng(42);
  const int m = 2;
  const int k = 32;
  const int n = 64;
  std::vector<F16> a(static_cast<size_t>(m) * k);
  std::vector<F16> b_rm(static_cast<size_t>(k) * n);  // row-major for HVX
  for (auto& x : a) {
    x = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  }
  for (auto& x : b_rm) {
    x = F16(static_cast<float>(rng.NextGaussian() * 0.3));
  }
  std::vector<F16> c(static_cast<size_t>(m) * n);
  GemmF16Hvx(dev, a.data(), b_rm.data(), c.data(), m, k, n);
  for (int mi = 0; mi < m; ++mi) {
    for (int ni = 0; ni < n; ++ni) {
      float expected = 0.0f;
      for (int ki = 0; ki < k; ++ki) {
        expected += a[static_cast<size_t>(mi) * k + ki].ToFloat() *
                    b_rm[static_cast<size_t>(ki) * n + ni].ToFloat();
      }
      EXPECT_NEAR(c[static_cast<size_t>(mi) * n + ni].ToFloat(), expected, 0.1);
    }
  }
}

TEST(GemmTest, Table2PeakRatio) {
  // Table 2: HMX ~12032 GFLOPS vs ~33 GFLOPS for one HVX thread — a ~365x gap.
  const auto& p = OnePlus12();
  const double flops = 2.0 * 1024 * 1024 * 1024;
  hexsim::HmxEngine hmx(p);
  const double hmx_s = hmx.TileOpsToSeconds(GemmF16HmxTileOps(1024, 1024, 1024));
  const double hmx_gflops = flops / hmx_s / 1e9;
  const int64_t hvx_packets = GemmF16HvxPackets(p, 1024, 1024, 1024);
  const double hvx_s = static_cast<double>(hvx_packets) / (p.hvx_freq_ghz * 1e9);
  const double hvx_gflops = flops / hvx_s / 1e9;
  EXPECT_NEAR(hmx_gflops, 12032.0, 200.0);
  EXPECT_NEAR(hvx_gflops, 32.9, 3.0);
  EXPECT_GT(hmx_gflops / hvx_gflops, 300.0);
}

// --- mixed GEMM / dequant kernels ---

TEST(DequantKernelTest, CoalescedLutMatchesReference) {
  NpuDevice dev(OnePlus12());
  Rng rng(51);
  std::vector<float> values(256 * 8);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto blocks = hquant::QuantizeQ4_0(values);
  const auto sbs = hquant::CoalesceSuperblocks(blocks);
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(values.size() * 2));
  const int64_t packets = DequantCoalescedLut(dev, sbs, out);
  std::vector<float> ref(values.size());
  hquant::DequantizeSuperblocks(sbs, ref);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[i].ToFloat(), RoundToF16(ref[static_cast<size_t>(i)]),
                std::fabs(ref[i]) * 2e-3 + 1e-6)
        << i;
  }
  // 17 packets per super-block plus 4 hoisted setup packets.
  EXPECT_EQ(packets, static_cast<int64_t>(sbs.size()) * 17 + 4);
}

TEST(DequantKernelTest, HmxLayoutMatchesReference) {
  NpuDevice dev(OnePlus12());
  Rng rng(52);
  std::vector<float> values(32 * 16);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto blocks = hquant::QuantizeQ4_0(values);
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(values.size() * 2));
  const int64_t packets = DequantHmxLayout(dev, blocks, out);
  std::vector<float> ref(values.size());
  hquant::DequantizeQ4_0(blocks, ref);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[i].ToFloat(), RoundToF16(ref[i]), std::fabs(ref[i]) * 2e-3 + 1e-6);
  }
  const double per64 = DequantPacketsPer64(OnePlus12(), DequantKernel::kHmxLayout);
  EXPECT_EQ(packets, static_cast<int64_t>(per64 * values.size() / 64));
}

TEST(DequantKernelTest, BaselineScatterProducesHmxStreamOrder) {
  NpuDevice dev(OnePlus12());
  Rng rng(53);
  const int64_t k = 128;
  const int64_t n = 32;
  std::vector<float> w(static_cast<size_t>(k * n));
  for (auto& v : w) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto blocks = hquant::ConventionalGroupQuantizeQ4(w, k, n);
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(k * n * 2));
  const int64_t packets = DequantBaselineScatter(dev, blocks, k, n, out);
  // Expected: conventional dequant placed at HMX stream positions.
  std::vector<float> deq(w.size());
  hquant::DequantizeQ4_0(blocks, deq);
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t nn = 0; nn < n; ++nn) {
      const int64_t stream = hquant::KnToHmxStream(kk, nn, k, n);
      EXPECT_NEAR(out[stream].ToFloat(), RoundToF16(deq[static_cast<size_t>(nn * k + kk)]),
                  1e-3);
    }
  }
  const double per64 = DequantPacketsPer64(OnePlus12(), DequantKernel::kBaselineScatter);
  EXPECT_EQ(packets, static_cast<int64_t>(per64 * static_cast<double>(k * n) / 64));
}

TEST(DequantKernelTest, PacketOrdering) {
  const auto& p = OnePlus12();
  const double baseline = DequantPacketsPer64(p, DequantKernel::kBaselineScatter);
  const double hmx = DequantPacketsPer64(p, DequantKernel::kHmxLayout);
  const double ours = DequantPacketsPer64(p, DequantKernel::kCoalescedLut);
  EXPECT_GT(baseline, 4.0 * hmx);
  EXPECT_GT(hmx, 2.0 * ours);
  EXPECT_EQ(DequantPacketsPer64(p, DequantKernel::kNoDequant), 0.0);
}

TEST(MixedGemmCostTest, Figure15RatiosInPaperRange) {
  // Figure 15 (GEMV on OnePlus 12): ours is 9.65-19x over baseline, 1.82-3.45x over the
  // HMX-layout-only variant, and within ~27-40% of the no-dequant upper bound.
  const auto& p = OnePlus12();
  const struct {
    int k;
    int n;
  } shapes[] = {{1536, 1536}, {1536, 8960}, {2048, 2048}, {3072, 8192}, {2048, 8192}};
  for (const auto& s : shapes) {
    const auto base = MixedGemmCostModel(p, DequantKernel::kBaselineScatter,
                                         hquant::WeightScheme::kQ4_0, 1, s.k, s.n, 4);
    const auto hmx = MixedGemmCostModel(p, DequantKernel::kHmxLayout,
                                        hquant::WeightScheme::kQ4_0, 1, s.k, s.n, 4);
    const auto ours = MixedGemmCostModel(p, DequantKernel::kCoalescedLut,
                                         hquant::WeightScheme::kQ4_0, 1, s.k, s.n, 4);
    const auto nodeq = MixedGemmCostModel(p, DequantKernel::kNoDequant,
                                          hquant::WeightScheme::kQ4_0, 1, s.k, s.n, 4);
    const double r_base = base.total_s / ours.total_s;
    const double r_hmx = hmx.total_s / ours.total_s;
    const double r_nodeq = ours.total_s / nodeq.total_s;
    EXPECT_GE(r_base, 8.0) << s.k << "x" << s.n;
    EXPECT_LE(r_base, 20.0) << s.k << "x" << s.n;
    EXPECT_GE(r_hmx, 1.7) << s.k << "x" << s.n;
    EXPECT_LE(r_hmx, 3.6) << s.k << "x" << s.n;
    EXPECT_GE(r_nodeq, 1.05) << s.k << "x" << s.n;
    EXPECT_LE(r_nodeq, 1.55) << s.k << "x" << s.n;
  }
}

TEST(MixedGemmCostTest, BatchBarelyIncreasesGemmCost) {
  // §3.2's core observation: growing M from 1 to 16 leaves the mixed GEMM cost nearly
  // unchanged (the HMX tile is 32 rows tall; dequant and DMA are batch-independent).
  const auto& p = OnePlus12();
  const auto b1 = MixedGemmCostModel(p, DequantKernel::kCoalescedLut,
                                     hquant::WeightScheme::kQ4_0, 1, 2048, 2048, 4);
  const auto b16 = MixedGemmCostModel(p, DequantKernel::kCoalescedLut,
                                      hquant::WeightScheme::kQ4_0, 16, 2048, 2048, 4);
  EXPECT_LT(b16.total_s, b1.total_s * 1.1);
}

// --- misc ops ---

TEST(MiscOpsTest, RmsNormMatchesReference) {
  NpuDevice dev(OnePlus12());
  Rng rng(61);
  const int rows = 2;
  const int width = 128;
  std::vector<F16> x(static_cast<size_t>(rows) * width);
  std::vector<F16> gamma(width);
  std::vector<F16> y(x.size());
  for (auto& v : x) {
    v = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (auto& v : gamma) {
    v = F16(static_cast<float>(1.0 + 0.1 * rng.NextGaussian()));
  }
  RmsNormF16(dev, x.data(), gamma.data(), y.data(), rows, width, 1e-5f);
  for (int r = 0; r < rows; ++r) {
    double ss = 0.0;
    for (int c = 0; c < width; ++c) {
      const double v = x[static_cast<size_t>(r * width + c)].ToFloat();
      ss += v * v;
    }
    const double inv = 1.0 / std::sqrt(ss / width + 1e-5);
    for (int c = 0; c < width; ++c) {
      const double expected = x[static_cast<size_t>(r * width + c)].ToFloat() * inv *
                              gamma[static_cast<size_t>(c)].ToFloat();
      EXPECT_NEAR(y[static_cast<size_t>(r * width + c)].ToFloat(), expected, 0.01);
    }
  }
  EXPECT_GT(dev.ledger().TagSeconds("misc.rmsnorm"), 0.0);
}

TEST(MiscOpsTest, RopePreservesPairNorms) {
  NpuDevice dev(OnePlus12());
  Rng rng(62);
  const int rows = 3;
  const int d = 64;
  std::vector<F16> x(static_cast<size_t>(rows) * d);
  std::vector<float> orig(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = F16(static_cast<float>(rng.NextGaussian()));
    orig[i] = x[i].ToFloat();
  }
  RopeF16(dev, x.data(), rows, d, /*pos0=*/5, 10000.0f);
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < d / 2; ++i) {
      const float a0 = orig[static_cast<size_t>(r * d + 2 * i)];
      const float b0 = orig[static_cast<size_t>(r * d + 2 * i + 1)];
      const float a1 = x[static_cast<size_t>(r * d + 2 * i)].ToFloat();
      const float b1 = x[static_cast<size_t>(r * d + 2 * i + 1)].ToFloat();
      EXPECT_NEAR(a1 * a1 + b1 * b1, a0 * a0 + b0 * b0, 0.03);
    }
  }
}

TEST(MiscOpsTest, RopeAtPositionZeroFirstRowIsIdentity) {
  NpuDevice dev(OnePlus12());
  const int d = 64;
  std::vector<F16> x(d, F16(0.5f));
  RopeF16(dev, x.data(), 1, d, /*pos0=*/0, 10000.0f);
  for (int i = 0; i < d; ++i) {
    EXPECT_FLOAT_EQ(x[static_cast<size_t>(i)].ToFloat(), 0.5f);
  }
}

TEST(MiscOpsTest, SiluMulMatchesReference) {
  NpuDevice dev(OnePlus12());
  Rng rng(63);
  const int64_t n = 128;
  std::vector<F16> a(n), b(n), y(n);
  for (int64_t i = 0; i < n; ++i) {
    a[static_cast<size_t>(i)] = F16(static_cast<float>(rng.NextGaussian()));
    b[static_cast<size_t>(i)] = F16(static_cast<float>(rng.NextGaussian()));
  }
  SiluMulF16(dev, a.data(), b.data(), y.data(), n);
  for (int64_t i = 0; i < n; ++i) {
    const float av = a[static_cast<size_t>(i)].ToFloat();
    const float expected = av / (1.0f + std::exp(-av)) * b[static_cast<size_t>(i)].ToFloat();
    EXPECT_NEAR(y[static_cast<size_t>(i)].ToFloat(), expected, 0.01);
  }
}

TEST(MiscOpsTest, AddF16) {
  NpuDevice dev(OnePlus12());
  std::vector<F16> a(64, F16(1.25f)), b(64, F16(2.5f)), y(64);
  AddF16(dev, a.data(), b.data(), y.data(), 64);
  for (const auto& v : y) {
    EXPECT_FLOAT_EQ(v.ToFloat(), 3.75f);
  }
}

// --- lm_head ---

TEST(LmHeadTest, CostScalesSubLinearlyAtSmallBatchThenLinearly) {
  const auto& p = OnePlus12();
  const auto c1 = LmHeadCostModel(p, 1, 1536, 151936);
  const auto c4 = LmHeadCostModel(p, 4, 1536, 151936);
  const auto c16 = LmHeadCostModel(p, 16, 1536, 151936);
  // Batch 1 is bandwidth-bound: batch 4 reuses the streamed weights.
  EXPECT_LT(c4.seconds, c1.seconds * 2.5);
  // By batch 16 it is compute-bound and roughly linear in batch.
  EXPECT_GT(c16.seconds, c4.seconds * 2.0);
  EXPECT_EQ(c16.cores_used, 4);
}

TEST(LmHeadTest, ForwardMatchesReference) {
  Rng rng(71);
  const int batch = 2;
  const int hidden = 16;
  const int64_t vocab = 8;
  std::vector<F16> h(static_cast<size_t>(batch) * hidden);
  std::vector<F16> w(static_cast<size_t>(hidden) * vocab);
  for (auto& v : h) {
    v = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (auto& v : w) {
    v = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<float> logits(static_cast<size_t>(batch) * vocab);
  LmHeadForward(h.data(), w.data(), logits.data(), batch, hidden, vocab);
  for (int b = 0; b < batch; ++b) {
    for (int64_t v = 0; v < vocab; ++v) {
      float expected = 0.0f;
      for (int i = 0; i < hidden; ++i) {
        expected += h[static_cast<size_t>(b * hidden + i)].ToFloat() *
                    w[static_cast<size_t>(v * hidden + i)].ToFloat();
      }
      EXPECT_NEAR(logits[static_cast<size_t>(b * vocab + v)], expected, 1e-4);
    }
  }
}

// --- sliding-window + attention-sink masking (docs/long_context.md) ---

TEST(AttnWindowTest, SpecSemantics) {
  AttnWindowSpec off;
  EXPECT_FALSE(off.enabled());  // window_blocks == 0 disables

  AttnWindowSpec w;
  w.sink_blocks = 1;
  w.window_blocks = 2;
  w.block_tokens = 32;
  EXPECT_TRUE(w.enabled());
  EXPECT_EQ(w.sink_tokens(), 32);
  // The window is the 2 whole blocks ending at qa's own block.
  EXPECT_EQ(w.WindowStart(100), 64);  // qa in block 3 -> blocks 2..3 visible
  EXPECT_EQ(w.WindowStart(10), 0);    // clamped at the start of the context
  // Masked = outside the sinks AND before the window.
  EXPECT_FALSE(w.Masked(10, 100));  // sink
  EXPECT_TRUE(w.Masked(40, 100));   // interior
  EXPECT_FALSE(w.Masked(70, 100));  // window
  EXPECT_FALSE(w.Masked(32, 95));   // qa in block 2 -> WindowStart 32, nothing masked
  // Chunk-granular skip decision uses the FIRST query row (the masked interior only grows
  // with qa).
  EXPECT_TRUE(w.ChunkFullyMasked(32, 32, 100));
  EXPECT_FALSE(w.ChunkFullyMasked(32, 64, 100));  // tail reaches into the window
  EXPECT_FALSE(w.ChunkFullyMasked(0, 32, 100));   // overlaps the sinks
  // Full coverage: every position visible up to qa_max -> must degrade to legacy causal.
  EXPECT_TRUE(w.CoversAll(95));
  EXPECT_FALSE(w.CoversAll(96));
  EXPECT_EQ(w.ResidentTokens(), (1 + 2 + 1) * 32);
}

TEST(AttnWindowTest, AppendAttendedBlocksMatchesKernelChunkSkips) {
  // Plain causal decode stages every block up to the causal frontier.
  std::vector<int> got;
  AppendAttendedBlocks(nullptr, /*q_len=*/1, /*kv_len=*/512, /*q_pos_offset=*/-1,
                       /*block_tokens=*/32, &got);
  ASSERT_EQ(got.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], i);
  }
  // Windowed decode at qa=511 with 1 sink + 1 window block: visible positions are
  // [0,32) + [480,512), but staging is kAttnKvChunk(=128)-granular, so only the fully
  // masked chunks [128,384) are skipped: blocks {0..3, 12..15} are staged.
  AttnWindowSpec w;
  w.sink_blocks = 1;
  w.window_blocks = 1;
  w.block_tokens = 32;
  got.clear();
  AppendAttendedBlocks(&w, 1, 512, -1, 32, &got);
  const std::vector<int> expected{0, 1, 2, 3, 12, 13, 14, 15};
  EXPECT_EQ(got, expected);
  // A full-coverage window stages everything, exactly like no window.
  AttnWindowSpec wide = w;
  wide.window_blocks = 64;
  got.clear();
  AppendAttendedBlocks(&wide, 1, 512, -1, 32, &got);
  EXPECT_EQ(got.size(), 16u);
}

// Builds a paged single-head view over contiguous [kv_len, d] K/V buffers.
void FillContiguousView(const std::vector<F16>& k, const std::vector<F16>& v, int d,
                        int block_tokens, int kv_len, std::vector<const F16*>* kb,
                        std::vector<const F16*>* vb, PagedKvHeadView* view) {
  const int blocks = (kv_len + block_tokens - 1) / block_tokens;
  kb->resize(static_cast<size_t>(blocks));
  vb->resize(static_cast<size_t>(blocks));
  for (int i = 0; i < blocks; ++i) {
    (*kb)[static_cast<size_t>(i)] = k.data() + static_cast<size_t>(i) * block_tokens * d;
    (*vb)[static_cast<size_t>(i)] = v.data() + static_cast<size_t>(i) * block_tokens * d;
  }
  view->k_blocks = kb->data();
  view->v_blocks = vb->data();
  view->block_tokens = block_tokens;
  view->row_stride = d;
  view->head_offset = 0;
}

TEST(AttnWindowTest, FullCoverageWindowIsBitIdenticalToUnwindowed) {
  Rng rng(81);
  const int d = 32;
  const int kv_len = 96;
  const int bt = 32;
  std::vector<F16> q(static_cast<size_t>(d));
  std::vector<F16> k(static_cast<size_t>(kv_len) * d);
  std::vector<F16> v(k.size());
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<const F16*> kb, vb;
  PagedKvHeadView view;
  FillContiguousView(k, v, d, bt, kv_len, &kb, &vb, &view);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  // 1 sink + 8 window blocks cover the whole 3-block range: NormalizeWindow must drop the
  // window at the kernel entry, taking the exact legacy path.
  AttnWindowSpec w;
  w.sink_blocks = 1;
  w.window_blocks = 8;
  w.block_tokens = bt;
  ASSERT_TRUE(w.CoversAll(kv_len - 1));
  std::vector<F16> o_win(q.size()), o_plain(q.size());
  double win_s = 0.0, plain_s = 0.0;
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionPagedF16(dev, lut, SoftmaxVariant::kLut, q.data(), d, view, o_win.data(),
                           d, 1, kv_len, d, scale, /*q_pos_offset=*/-1, &w);
    // The covered window was normalized away — the windowed-call counter must NOT fire.
    EXPECT_EQ(dev.ledger().Count("kernel.flash_attention.windowed_calls"), 0);
    win_s = dev.ledger().TagSeconds("attn.softmax") + dev.ledger().TagSeconds("dma");
  }
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionPagedF16(dev, lut, SoftmaxVariant::kLut, q.data(), d, view,
                           o_plain.data(), d, 1, kv_len, d, scale, -1, nullptr);
    plain_s = dev.ledger().TagSeconds("attn.softmax") + dev.ledger().TagSeconds("dma");
  }
  for (size_t i = 0; i < o_win.size(); ++i) {
    EXPECT_EQ(o_win[i].bits(), o_plain[i].bits()) << i;
  }
  EXPECT_DOUBLE_EQ(win_s, plain_s);  // charges identical too
}

TEST(AttnWindowTest, MaskedInteriorIsNeverReadAndMatchesVisibleReference) {
  Rng rng(82);
  const int d = 32;
  const int kv_len = 512;  // 16 blocks, 4 kv chunks of 128
  const int bt = 32;
  std::vector<F16> q(static_cast<size_t>(d));
  std::vector<F16> k(static_cast<size_t>(kv_len) * d);
  std::vector<F16> v(k.size());
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
  }
  // Decode row at qa=511 with 1 sink + 1 window block: visible = [0,32) + [480,512);
  // chunks [128,384) are fully masked (skipped), positions [32,128)+[384,480) are masked
  // inside staged chunks (-inf scores).
  AttnWindowSpec w;
  w.sink_blocks = 1;
  w.window_blocks = 1;
  w.block_tokens = bt;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  std::vector<const F16*> kb, vb;
  PagedKvHeadView view;
  FillContiguousView(k, v, d, bt, kv_len, &kb, &vb, &view);
  std::vector<F16> o_a(q.size());
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionPagedF16(dev, lut, SoftmaxVariant::kLut, q.data(), d, view, o_a.data(),
                           d, 1, kv_len, d, scale, -1, &w);
    // A surviving (non-normalized) window marks the call in the ledger.
    EXPECT_EQ(dev.ledger().Count("kernel.flash_attention.windowed_calls"), 1);
  }
  // Corrupt every masked position in a copy: NaN in the fully skipped chunks (staging them
  // would poison the output), huge finite rows in the staged-but-masked stretches (an
  // unmasked score there would dominate softmax). The windowed output must not move a bit.
  std::vector<F16> k2 = k, v2 = v;
  for (int p = 32; p < 480; ++p) {
    const bool skipped_chunk = p >= 128 && p < 384;
    for (int c = 0; c < d; ++c) {
      const size_t at = static_cast<size_t>(p) * d + c;
      k2[at] = skipped_chunk ? F16(std::nanf("")) : F16(8.0f);
      v2[at] = skipped_chunk ? F16(std::nanf("")) : F16(8.0f);
    }
  }
  std::vector<const F16*> kb2, vb2;
  PagedKvHeadView view2;
  FillContiguousView(k2, v2, d, bt, kv_len, &kb2, &vb2, &view2);
  std::vector<F16> o_b(q.size());
  {
    NpuDevice dev(OnePlus12());
    ExpLut lut(dev);
    FlashAttentionPagedF16(dev, lut, SoftmaxVariant::kLut, q.data(), d, view2, o_b.data(),
                           d, 1, kv_len, d, scale, -1, &w);
  }
  for (size_t i = 0; i < o_a.size(); ++i) {
    EXPECT_EQ(o_a[i].bits(), o_b[i].bits()) << i;
  }
  // Semantics check: the windowed output equals plain attention over just the visible
  // rows (sinks + trailing window) packed contiguously.
  const int visible = 64;
  std::vector<float> qf(q.size()), kf(static_cast<size_t>(visible) * d),
      vf(static_cast<size_t>(visible) * d), of(q.size());
  for (size_t i = 0; i < q.size(); ++i) {
    qf[i] = q[i].ToFloat();
  }
  for (int p = 0; p < visible; ++p) {
    const int src = p < 32 ? p : 480 + (p - 32);
    for (int c = 0; c < d; ++c) {
      kf[static_cast<size_t>(p) * d + c] = k[static_cast<size_t>(src) * d + c].ToFloat();
      vf[static_cast<size_t>(p) * d + c] = v[static_cast<size_t>(src) * d + c].ToFloat();
    }
  }
  AttentionF32Reference(qf.data(), kf.data(), vf.data(), of.data(), 1, visible, d, scale);
  for (size_t i = 0; i < o_a.size(); ++i) {
    EXPECT_NEAR(o_a[i].ToFloat(), of[i], 0.03) << i;
  }
}

}  // namespace
}  // namespace hkern

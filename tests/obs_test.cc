// Tests for the observability layer (src/obs) and its integration points: registry
// semantics, the JSON writer/parser, snapshot serialization under the frozen schema
// (docs/metrics_schema.md), and the serving runtime's embedded metrics snapshot agreeing
// with ScheduleResult's scalar fields.
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/fp16.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/softmax.h"
#include "src/kvcache/kv_block_manager.h"
#include "src/llm/model_config.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace obs {
namespace {

// --- registry semantics ---

TEST(RegistryTest, CounterAccumulatesAndDefaultsToZero) {
  Registry reg;
  Counter& c = reg.counter("unit.events");
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  // Same (name, label) returns the same metric.
  EXPECT_EQ(&reg.counter("unit.events"), &c);
  reg.Count("unit.events", 8);
  EXPECT_EQ(c.value(), 50);
}

TEST(RegistryTest, GaugeLastWriteWins) {
  Registry reg;
  Gauge& g = reg.gauge("unit.level");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  g.Set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
  reg.Set("unit.level", 7.0);
  EXPECT_EQ(g.value(), 7.0);
}

TEST(RegistryTest, LabeledSeriesAreDistinctMetrics) {
  Registry reg;
  reg.Count("unit.tag_seconds", 3, "attn.softmax");
  reg.Count("unit.tag_seconds", 5, "attn.qk");
  reg.Count("unit.tag_seconds", 7);  // unlabeled is its own series
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.CounterValue("unit.tag_seconds", "attn.softmax"), 3);
  EXPECT_EQ(s.CounterValue("unit.tag_seconds", "attn.qk"), 5);
  EXPECT_EQ(s.CounterValue("unit.tag_seconds"), 7);
}

TEST(RegistryTest, HistogramBucketPlacement) {
  Registry reg;
  Histogram& h = reg.histogram("unit.latency", HistogramBuckets::Linear(1.0, 3));
  // Bounds 1, 2, 3 plus an overflow bucket.
  ASSERT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  h.Observe(0.5);   // <= 1
  h.Observe(1.0);   // <= 1 (bounds are inclusive upper limits)
  h.Observe(1.5);   // <= 2
  h.Observe(100.0); // overflow
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 2);
  EXPECT_EQ(h.counts()[1], 1);
  EXPECT_EQ(h.counts()[2], 0);
  EXPECT_EQ(h.counts()[3], 1);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 103.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(RegistryTest, ExponentialBucketsGrowByFactor) {
  const HistogramBuckets b = HistogramBuckets::Exponential(1e-5, 4.0, 3);
  ASSERT_EQ(b.bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(b.bounds[0], 1e-5);
  EXPECT_DOUBLE_EQ(b.bounds[1], 4e-5);
  EXPECT_DOUBLE_EQ(b.bounds[2], 16e-5);
}

TEST(RegistryTest, SnapshotIsSortedByNameThenLabel) {
  Registry reg;
  reg.Count("b.second", 1);
  reg.Count("a.first", 1, "z");
  reg.Count("a.first", 1, "a");
  const MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].name, "a.first");
  EXPECT_EQ(s.counters[0].label, "a");
  EXPECT_EQ(s.counters[1].name, "a.first");
  EXPECT_EQ(s.counters[1].label, "z");
  EXPECT_EQ(s.counters[2].name, "b.second");
}

TEST(RegistryTest, LookupReportsAbsenceViaFoundFlag) {
  Registry reg;
  reg.Set("unit.present", 1.0);
  const MetricsSnapshot s = reg.Snapshot();
  bool found = false;
  EXPECT_EQ(s.GaugeValue("unit.present", {}, &found), 1.0);
  EXPECT_TRUE(found);
  EXPECT_EQ(s.CounterValue("unit.absent", {}, &found), 0);
  EXPECT_FALSE(found);
  EXPECT_EQ(s.FindHistogram("unit.absent"), nullptr);
}

TEST(RegistryTest, ClearDropsAllMetrics) {
  Registry reg;
  reg.Count("unit.events", 5);
  reg.Clear();
  EXPECT_TRUE(reg.Snapshot().counters.empty());
  // After Clear the name is free to be a different kind.
  reg.Set("unit.events", 1.0);
  EXPECT_EQ(reg.Snapshot().gauges.size(), 1u);
}

TEST(RegistryDeathTest, KindCollisionAborts) {
  Registry reg;
  reg.counter("unit.events");
  EXPECT_DEATH(reg.gauge("unit.events"), "different kind");
}

// --- JSON value type ---

TEST(JsonTest, DumpParseRoundTrip) {
  Json j = Json::Object();
  j.Set("schema_version", 1);
  j.Set("name", "bench \"quoted\" \\ with\nnewline");
  j.Set("ratio", 3.25);
  j.Set("flag", true);
  j.Set("nothing", Json());
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append(-2.5);
  arr.Append("x");
  j.Set("arr", std::move(arr));
  Json nested = Json::Object();
  nested.Set("k", int64_t{1} << 40);
  j.Set("nested", std::move(nested));

  for (const int indent : {-1, 0, 2}) {
    Json back;
    std::string err;
    ASSERT_TRUE(Json::Parse(j.Dump(indent), &back, &err)) << err;
    EXPECT_TRUE(back == j) << j.Dump(2) << "\nvs\n" << back.Dump(2);
  }
}

TEST(JsonTest, IntegersStayExact) {
  Json j = Json::Object();
  j.Set("big", int64_t{9007199254740993});  // not representable as a double
  Json back;
  ASSERT_TRUE(Json::Parse(j.Dump(), &back, nullptr));
  EXPECT_EQ(back.At("big").type(), Json::Type::kInt);
  EXPECT_EQ(back.At("big").AsInt(), 9007199254740993);
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  Json j = Json::Object();
  j.Set("nan", std::nan(""));
  Json back;
  ASSERT_TRUE(Json::Parse(j.Dump(), &back, nullptr));
  EXPECT_TRUE(back.At("nan").is_null());
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  Json out;
  EXPECT_FALSE(Json::Parse("{\"a\": 1,}", &out, nullptr));  // trailing comma
  EXPECT_FALSE(Json::Parse("{\"a\" 1}", &out, nullptr));    // missing colon
  EXPECT_FALSE(Json::Parse("[1, 2", &out, nullptr));        // unterminated
  EXPECT_FALSE(Json::Parse("bogus", &out, nullptr));        // bare word
  std::string err;
  EXPECT_FALSE(Json::Parse("{\"a\": }", &out, &err));
  EXPECT_FALSE(err.empty());
}

// --- snapshot serialization under the frozen schema ---

TEST(MetricsSnapshotTest, JsonRoundTripIsLossless) {
  Registry reg;
  reg.Count("hexsim.hvx.packets", 1234);
  reg.Count("hexsim.tag_seconds", 7, "attn.softmax");
  reg.Set("kv.sharing_ratio", 2.75);
  Histogram& h = reg.histogram("serve.step_seconds",
                               HistogramBuckets::Exponential(1e-5, 4.0, 4), "decode");
  h.Observe(3e-5);
  h.Observe(2.0);

  const MetricsSnapshot s = reg.Snapshot();
  const Json j = s.ToJson();
  EXPECT_EQ(j.At("schema_version").AsInt(), kMetricsSchemaVersion);

  // Through text and back.
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::Parse(j.Dump(2), &parsed, &err)) << err;
  MetricsSnapshot back;
  ASSERT_TRUE(MetricsSnapshot::FromJson(parsed, &back));

  ASSERT_EQ(back.counters.size(), s.counters.size());
  EXPECT_EQ(back.CounterValue("hexsim.hvx.packets"), 1234);
  EXPECT_EQ(back.CounterValue("hexsim.tag_seconds", "attn.softmax"), 7);
  EXPECT_EQ(back.GaugeValue("kv.sharing_ratio"), 2.75);
  const HistogramSample* hs = back.FindHistogram("serve.step_seconds", "decode");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->bounds, s.histograms[0].bounds);
  EXPECT_EQ(hs->counts, s.histograms[0].counts);
  EXPECT_EQ(hs->count, 2);
  EXPECT_DOUBLE_EQ(hs->sum, 2.0 + 3e-5);
  EXPECT_DOUBLE_EQ(hs->min, 3e-5);
  EXPECT_DOUBLE_EQ(hs->max, 2.0);
}

TEST(MetricsSnapshotTest, FromJsonRejectsBadShapes) {
  MetricsSnapshot out;
  Json j;
  // Not an object.
  EXPECT_FALSE(MetricsSnapshot::FromJson(Json(1), &out));
  // Missing schema_version.
  j = Json::Object();
  j.Set("counters", Json::Array());
  j.Set("gauges", Json::Array());
  j.Set("histograms", Json::Array());
  EXPECT_FALSE(MetricsSnapshot::FromJson(j, &out));
  // A FUTURE schema version must be rejected (the reader only understands <= current).
  j.Set("schema_version", kMetricsSchemaVersion + 1);
  EXPECT_FALSE(MetricsSnapshot::FromJson(j, &out));
  // Current version with the arrays present parses.
  j.Set("schema_version", kMetricsSchemaVersion);
  EXPECT_TRUE(MetricsSnapshot::FromJson(j, &out));
  // Histogram counts must be bounds + 1.
  Json h = Json::Object();
  h.Set("name", "x");
  Json bounds = Json::Array();
  bounds.Append(1.0);
  h.Set("bounds", std::move(bounds));
  Json counts = Json::Array();
  counts.Append(1);
  h.Set("counts", std::move(counts));  // should be 2 entries
  j.At("histograms").Append(std::move(h));
  EXPECT_FALSE(MetricsSnapshot::FromJson(j, &out));
}

// --- serving integration: the embedded snapshot mirrors ScheduleResult ---

class ObsServingTest : public ::testing::Test {
 protected:
  ObsServingTest() {
    options_.model = &hllm::Qwen25_1_5B();
    options_.device = &hexsim::OnePlus12();
    engine_ = std::make_unique<hrt::Engine>(options_);
  }

  hrt::EngineOptions options_;
  std::unique_ptr<hrt::Engine> engine_;
};

TEST_F(ObsServingTest, SnapshotAgreesWithScheduleResult) {
  // Two parallel samples share a 40-token prompt (a partial 3rd block at the default
  // 16-token block size), then a third job forks the first sample's retained KV — the
  // ingredients for prefix sharing, CoW splits, and a fork admission all at once.
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < 2; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_group = 0;
    j.prompt_tokens = 40;
    j.decode_tokens = 24;
    jobs.push_back(j);
  }
  hserve::ServeJob child;
  child.id = 2;
  child.prompt_group = 0;
  child.barrier = 1;
  child.parent_job = 0;
  child.prompt_tokens = 40;
  child.context_tokens = 24;  // = parent's final KV length - prompt
  child.decode_tokens = 8;
  jobs.push_back(child);

  hserve::AnalyticBackend backend(*engine_);
  hserve::ServeOptions so;
  so.max_batch = 4;
  const hserve::ScheduleResult r = hserve::ContinuousBatcher(backend, so).Run(jobs);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_GT(r.steps, 0);
  EXPECT_EQ(r.forked_admissions, 1);
  EXPECT_GT(r.kv.cow_splits, 0);  // diverging writes privatized shared blocks

  const obs::MetricsSnapshot& m = r.metrics;
  // serve.* counters mirror the scalar fields.
  EXPECT_EQ(m.CounterValue("serve.steps"), r.steps);
  EXPECT_EQ(m.CounterValue("serve.decoded_tokens"), r.decoded_tokens);
  EXPECT_EQ(m.CounterValue("serve.prefilled_tokens"), r.prefilled_tokens);
  EXPECT_EQ(m.CounterValue("serve.forked_admissions"), r.forked_admissions);
  EXPECT_EQ(m.CounterValue("serve.admission_deferrals"), r.admission_deferrals);
  EXPECT_EQ(m.CounterValue("serve.admissions"),
            static_cast<int64_t>(r.admissions.size()));
  EXPECT_EQ(m.CounterValue("serve.completions"),
            static_cast<int64_t>(r.completions.size()));
  EXPECT_DOUBLE_EQ(m.GaugeValue("serve.makespan_seconds"), r.makespan_s);
  EXPECT_DOUBLE_EQ(m.GaugeValue("serve.energy_joules"), r.energy_j);
  EXPECT_DOUBLE_EQ(m.GaugeValue("serve.tokens_per_second"), r.tokens_per_second);
  // kv.* mirrors the KvStats embedded in the result.
  EXPECT_EQ(m.CounterValue("kv.cow_splits"), r.kv.cow_splits);
  EXPECT_DOUBLE_EQ(m.GaugeValue("kv.physical_blocks"),
                   static_cast<double>(r.kv.physical_blocks));
  EXPECT_DOUBLE_EQ(m.GaugeValue("kv.peak_physical_blocks"),
                   static_cast<double>(r.kv.peak_physical_blocks));
  EXPECT_DOUBLE_EQ(m.GaugeValue("kv.peak_logical_blocks"),
                   static_cast<double>(r.kv.peak_logical_blocks));
  EXPECT_DOUBLE_EQ(m.GaugeValue("kv.sharing_ratio"), r.kv.sharing_ratio());
  // Every decode step observed the latency histogram.
  const obs::HistogramSample* steps = m.FindHistogram("serve.step_seconds");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->count, r.steps);
  const obs::HistogramSample* active = m.FindHistogram("serve.step_active_rows");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->count, r.steps);
  EXPECT_LE(active->max, so.max_batch);
}

TEST_F(ObsServingTest, ErrorResultStillCarriesSnapshot) {
  hserve::ServeJob bad;
  bad.id = 0;
  bad.decode_tokens = 0;  // invalid: must decode at least one token
  hserve::AnalyticBackend backend(*engine_);
  const hserve::ScheduleResult r =
      hserve::ContinuousBatcher(backend, hserve::ServeOptions{}).Run({bad});
  ASSERT_FALSE(r.error.empty());
  bool found = false;
  EXPECT_EQ(r.metrics.CounterValue("serve.steps", {}, &found), 0);
  EXPECT_TRUE(found);
}

TEST(DeviceExportTest, KernelCountersFlowThroughTheLedger) {
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hkern::ExpLut lut(dev);
  const int rows = 2, cols = 128;
  auto* s = reinterpret_cast<hexllm::F16*>(dev.tcm().Alloc(rows * cols * 2));
  for (int i = 0; i < rows * cols; ++i) {
    s[i] = hexllm::F16(0.25f);
  }
  hkern::SoftmaxRowsF16(dev, hkern::SoftmaxVariant::kLut, &lut, s, rows, cols);

  Registry reg;
  hexsim::ExportDeviceMetrics(dev, reg);
  const MetricsSnapshot m = reg.Snapshot();
  EXPECT_EQ(m.CounterValue("kernel.softmax_rows.calls"), 1);
  EXPECT_EQ(m.CounterValue("kernel.exp_lut.builds"), 1);
  EXPECT_GT(m.CounterValue("hexsim.hvx.packets"), 0);
  EXPECT_GT(m.CounterValue("hexsim.hvx.vgather_ops"), 0);
  EXPECT_GT(m.GaugeValue("hexsim.tcm.high_watermark_bytes"), 0.0);
  EXPECT_EQ(m.GaugeValue("hexsim.tcm.capacity_bytes"),
            static_cast<double>(dev.tcm().capacity()));
}

TEST(ExportKvStatsTest, PublishesEveryField) {
  hkv::KvStats stats;
  stats.block_tokens = 16;
  stats.bytes_per_block = 4096;
  stats.physical_blocks = 10;
  stats.peak_physical_blocks = 12;
  stats.logical_blocks = 25;
  stats.peak_logical_blocks = 30;
  stats.cow_splits = 3;
  Registry reg;
  hkv::ExportKvStats(stats, reg);
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.CounterValue("kv.cow_splits"), 3);
  EXPECT_EQ(s.GaugeValue("kv.block_tokens"), 16.0);
  EXPECT_EQ(s.GaugeValue("kv.bytes_per_block"), 4096.0);
  EXPECT_EQ(s.GaugeValue("kv.physical_blocks"), 10.0);
  EXPECT_EQ(s.GaugeValue("kv.peak_physical_blocks"), 12.0);
  EXPECT_EQ(s.GaugeValue("kv.logical_blocks"), 25.0);
  EXPECT_EQ(s.GaugeValue("kv.peak_logical_blocks"), 30.0);
  EXPECT_DOUBLE_EQ(s.GaugeValue("kv.sharing_ratio"), 2.5);
}

}  // namespace
}  // namespace obs

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/hexsim/device_profile.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"
#include "src/tts/pareto.h"
#include "src/tts/reward_model.h"
#include "src/tts/task.h"
#include "src/tts/tts.h"

namespace htts {
namespace {

using hexllm::Rng;

const CapabilityModel& Cap() {
  static const CapabilityModel cap;
  return cap;
}

// --- task generation ---

TEST(TaskTest, DatasetsHaveDistinctDifficulty) {
  const TaskSet math = GenerateTaskSet(Dataset::kMath500, 1000, 1);
  const TaskSet gsm = GenerateTaskSet(Dataset::kGsm8k, 1000, 1);
  double dm = 0.0, dg = 0.0;
  for (const auto& t : math.tasks) {
    dm += t.difficulty;
  }
  for (const auto& t : gsm.tasks) {
    dg += t.difficulty;
  }
  EXPECT_GT(dm / 1000, dg / 1000 + 0.5);  // MATH500 is much harder
}

TEST(TaskTest, GenerationIsDeterministic) {
  const TaskSet a = GenerateTaskSet(Dataset::kMath500, 50, 9);
  const TaskSet b = GenerateTaskSet(Dataset::kMath500, 50, 9);
  for (size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].difficulty, b.tasks[i].difficulty);
    EXPECT_EQ(a.tasks[i].answer, b.tasks[i].answer);
  }
}

// --- capability model ---

TEST(CapabilityModelTest, MeasuredErrorOrdering) {
  const auto& c = Cap();
  EXPECT_GT(c.per_channel_q4_err(), 3.0 * c.common_group_q4_err());
  EXPECT_NEAR(c.tile_group_q4_err(), c.common_group_q4_err(),
              0.5 * c.common_group_q4_err());
  EXPECT_LT(c.q8_err(), 0.3 * c.common_group_q4_err());
  EXPECT_LT(c.lut_f16_attention_err(), 0.01);
}

TEST(CapabilityModelTest, Table1Reproduction) {
  // AWQ-like per-group vs QNN-like per-channel W4 on Llama3.2-1B. The AWQ cells are
  // calibration anchors (must match tightly); the QNN accuracy cells are anchored too,
  // while QNN perplexity is a genuine prediction.
  const auto& c = Cap();
  const auto& m = hllm::Llama32_1B();
  const TaskSet math = GenerateTaskSet(Dataset::kMath500, 3000, 17);
  const TaskSet gsm = GenerateTaskSet(Dataset::kGsm8k, 3000, 18);
  const double awq_math = 100 * CapabilityModel::MeanAccuracy(
      math, c.EffectiveTheta(m, Dataset::kMath500, c.common_group_q4_err(), 0.0));
  const double qnn_math = 100 * CapabilityModel::MeanAccuracy(
      math, c.EffectiveTheta(m, Dataset::kMath500, c.per_channel_q4_err(), 0.0));
  const double awq_gsm = 100 * CapabilityModel::MeanAccuracy(
      gsm, c.EffectiveTheta(m, Dataset::kGsm8k, c.common_group_q4_err(), 0.0));
  const double qnn_gsm = 100 * CapabilityModel::MeanAccuracy(
      gsm, c.EffectiveTheta(m, Dataset::kGsm8k, c.per_channel_q4_err(), 0.0));
  EXPECT_NEAR(awq_math, 15.9, 2.5);
  EXPECT_NEAR(qnn_math, 2.1, 1.5);
  EXPECT_NEAR(awq_gsm, 32.6, 3.0);
  EXPECT_NEAR(qnn_gsm, 3.4, 2.0);
  // Wiki perplexity: AWQ anchored at 19.42; QNN predicted near the paper's 28.99.
  EXPECT_NEAR(c.WikiPerplexity(m, c.common_group_q4_err(), 0.0), 19.42, 0.1);
  EXPECT_NEAR(c.WikiPerplexity(m, c.per_channel_q4_err(), 0.0), 28.99, 4.5);
}

TEST(CapabilityModelTest, Table4TileVsCommonIsSmall) {
  // §7.3: tile-group quantization does not significantly change accuracy.
  const auto& c = Cap();
  const auto& m = hllm::Qwen25_1_5B();
  const double wino_tile = c.ChoiceAccuracy(Dataset::kWinoGrande, m, c.tile_group_q4_err(), 0);
  const double wino_common =
      c.ChoiceAccuracy(Dataset::kWinoGrande, m, c.common_group_q4_err(), 0);
  const double wino_f16 = c.ChoiceAccuracy(Dataset::kWinoGrande, m, 0, 0);
  EXPECT_LT(std::fabs(wino_tile - wino_common), 1.0);
  EXPECT_LT(std::fabs(wino_f16 - wino_tile), 2.5);
  const double ppl_tile = c.WikiPerplexity(m, c.tile_group_q4_err(), 0);
  const double ppl_common = c.WikiPerplexity(m, c.common_group_q4_err(), 0);
  EXPECT_LT(std::fabs(ppl_tile - ppl_common), 0.15);
  // Both quantization deltas dwarf the tile-vs-common delta (the paper's argument).
  EXPECT_GT(ppl_common - 9.798, 3.0 * std::fabs(ppl_tile - ppl_common));
}

TEST(CapabilityModelTest, Table5LutAttentionIsAccuracyNeutral) {
  const auto& c = Cap();
  const auto& m = hllm::Qwen25_1_5B();
  const double err = c.tile_group_q4_err();
  const double with_lut = c.ChoiceAccuracy(Dataset::kWinoGrande, m, err,
                                           c.lut_f16_attention_err());
  const double with_f32 = c.ChoiceAccuracy(Dataset::kWinoGrande, m, err, 0.0);
  EXPECT_LT(std::fabs(with_lut - with_f32), 0.5);
  const double ppl_lut = c.WikiPerplexity(m, err, c.lut_f16_attention_err());
  const double ppl_f32 = c.WikiPerplexity(m, err, 0.0);
  EXPECT_LT(std::fabs(ppl_lut - ppl_f32), 0.05);
}

TEST(CapabilityModelTest, BiggerModelsAreStronger) {
  const auto& c = Cap();
  for (const auto d : {Dataset::kMath500, Dataset::kGsm8k}) {
    EXPECT_GT(c.ThetaF16(hllm::Qwen25_7B(), d), c.ThetaF16(hllm::Qwen25_3B(), d));
    EXPECT_GT(c.ThetaF16(hllm::Qwen25_3B(), d), c.ThetaF16(hllm::Qwen25_1_5B(), d));
    EXPECT_GT(c.ThetaF16(hllm::Llama32_3B(), d), c.ThetaF16(hllm::Llama32_1B(), d));
  }
}

TEST(CapabilityModelTest, PenaltyMonotoneInError) {
  const auto& c = Cap();
  EXPECT_GT(c.SkillPenalty(Dataset::kMath500, 0.3, 0.0),
            c.SkillPenalty(Dataset::kMath500, 0.1, 0.0));
  EXPECT_EQ(c.SkillPenalty(Dataset::kMath500, 0.0, 0.0), 0.0);
}

TEST(CapabilityModelTest, DeployedErrBetweenQ8AndQ4) {
  const auto& c = Cap();
  const double e = c.DeployedWeightErr(hllm::Qwen25_1_5B());
  EXPECT_GT(e, c.q8_err());
  EXPECT_LT(e, c.tile_group_q4_err());
}

// --- TTS algorithms ---

class TtsAlgoTest : public ::testing::Test {
 protected:
  TtsAlgoTest() : tasks_(GenerateTaskSet(Dataset::kMath500, 400, 3)), rng_(11) {
    theta_ = Cap().EffectiveTheta(hllm::Qwen25_1_5B(), Dataset::kMath500,
                                  Cap().DeployedWeightErr(hllm::Qwen25_1_5B()),
                                  Cap().lut_f16_attention_err());
  }
  TaskSet tasks_;
  double theta_ = 0.0;
  Rng rng_;
};

TEST_F(TtsAlgoTest, BestOfNImprovesMonotonically) {
  // Figure 5: accuracy improves significantly as the generation budget increases.
  const OutcomeRewardModel orm;
  double prev = RunSingleSample(tasks_, theta_, 6, rng_).accuracy;
  const double base = prev;
  for (int n : {2, 4, 8, 16}) {
    const auto r = RunBestOfN(tasks_, theta_, orm, n, 6, rng_);
    EXPECT_GT(r.accuracy, prev - 0.02) << n;  // monotone up to sampling noise
    EXPECT_LE(r.accuracy, r.oracle_accuracy + 1e-9);
    prev = r.accuracy;
  }
  EXPECT_GT(prev, base + 0.10);  // budget 16 is far above base
}

TEST_F(TtsAlgoTest, OracleBoundsSelection) {
  const OutcomeRewardModel strong(8.0);
  const OutcomeRewardModel blind(0.0);
  const auto strong_r = RunBestOfN(tasks_, theta_, strong, 8, 6, rng_);
  const auto blind_r = RunBestOfN(tasks_, theta_, blind, 8, 6, rng_);
  const auto single = RunSingleSample(tasks_, theta_, 6, rng_);
  // A near-oracle verifier approaches pass@N; a blind verifier falls back to single-sample.
  EXPECT_GT(strong_r.accuracy, 0.9 * strong_r.oracle_accuracy);
  EXPECT_NEAR(blind_r.accuracy, single.accuracy, 0.05);
}

TEST_F(TtsAlgoTest, MajorityVoteHelpsButTrailsOrm) {
  const OutcomeRewardModel orm;
  const auto single = RunSingleSample(tasks_, theta_, 6, rng_);
  const auto mv = RunMajorityVote(tasks_, theta_, 16, 6, rng_);
  const auto bon = RunBestOfN(tasks_, theta_, orm, 16, 6, rng_);
  EXPECT_GT(mv.accuracy, single.accuracy);
  EXPECT_GT(bon.accuracy, mv.accuracy - 0.03);
}

TEST_F(TtsAlgoTest, BeamSearchBeatsBestOfNPerBudget) {
  // Figure 10 bottom row: step-level pruning extracts more accuracy from the same budget.
  const OutcomeRewardModel orm;
  const ProcessRewardModel prm;
  const auto bon = RunBestOfN(tasks_, theta_, orm, 16, 10, rng_);
  const auto beam = RunBeamSearch(tasks_, theta_, prm, 16, 4, 10, rng_);
  EXPECT_EQ(beam.batch, 16);
  EXPECT_GT(beam.accuracy, bon.accuracy - 0.05);
}

TEST_F(TtsAlgoTest, TokensScaleWithBudget) {
  const OutcomeRewardModel orm;
  const auto r4 = RunBestOfN(tasks_, theta_, orm, 4, 2, rng_);
  const auto r16 = RunBestOfN(tasks_, theta_, orm, 16, 2, rng_);
  EXPECT_NEAR(r16.avg_total_tokens / r4.avg_total_tokens, 4.0, 0.2);
  EXPECT_NEAR(r16.avg_seq_tokens, r4.avg_seq_tokens, 1.0);  // sequential depth unchanged
}

TEST_F(TtsAlgoTest, SampledBaseAccuracyMatchesMarginalizedModel) {
  const auto single = RunSingleSample(tasks_, theta_, 20, rng_);
  const double predicted = CapabilityModel::MeanAccuracy(tasks_, theta_);
  EXPECT_NEAR(single.accuracy, predicted, 0.03);
}

// --- Pareto sweep (Figure 10) ---

TEST(ParetoTest, SmallModelWithTtsBeatsLargeModelBase) {
  // The headline: Qwen2.5-1.5B + Best-of-16 reaches higher MATH500 accuracy than the 3B
  // model decoded conventionally, at lower per-token latency.
  ParetoSweepOptions opts;
  opts.device = &hexsim::OnePlus12();
  opts.models = {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()};
  opts.budgets = {16};
  opts.tasks = 400;
  opts.trials = 6;
  const auto points = SweepPareto(Cap(), opts);

  const ParetoPoint* small_scaled = nullptr;
  const ParetoPoint* large_base = nullptr;
  for (const auto& p : points) {
    if (p.model == hllm::Qwen25_1_5B().name && p.method == TtsMethod::kBestOfN &&
        p.budget == 16) {
      small_scaled = &p;
    }
    if (p.model == hllm::Qwen25_3B().name && p.method == TtsMethod::kBase) {
      large_base = &p;
    }
  }
  ASSERT_NE(small_scaled, nullptr);
  ASSERT_NE(large_base, nullptr);
  EXPECT_GT(small_scaled->accuracy, large_base->accuracy);
  EXPECT_LT(small_scaled->latency_per_token_s, 1.2 * large_base->latency_per_token_s);
}

TEST(ParetoTest, SpeculativeAxisKeepsBaseAccuracyAtLowerCost) {
  // The §9 generate-then-verify point: with a draft configured, every swept model gains a
  // kSpeculative point that is lossless (base accuracy, bit-for-bit the same stream) and
  // sits left of base on the cost axis.
  ParetoSweepOptions opts;
  opts.device = &hexsim::OnePlus12();
  opts.models = {&hllm::Qwen25_7B()};
  opts.budgets = {};
  opts.tasks = 100;
  opts.trials = 2;
  opts.spec_draft = &hllm::Qwen25_0_5B();
  opts.spec_gamma = 4;
  const auto points = SweepPareto(Cap(), opts);

  const ParetoPoint* base = nullptr;
  const ParetoPoint* spec = nullptr;
  for (const auto& p : points) {
    if (p.method == TtsMethod::kBase) {
      base = &p;
    }
    if (p.method == TtsMethod::kSpeculative) {
      spec = &p;
    }
  }
  ASSERT_NE(base, nullptr);
  ASSERT_NE(spec, nullptr);
  EXPECT_TRUE(spec->runnable);
  EXPECT_EQ(spec->spec_draft, hllm::Qwen25_0_5B().name);
  EXPECT_GT(spec->spec_acceptance, 0.5);
  EXPECT_LE(spec->spec_acceptance, 0.88);
  EXPECT_DOUBLE_EQ(spec->accuracy, base->accuracy);   // lossless: same stream, same answers
  EXPECT_LT(spec->makespan_s, base->makespan_s);      // but cheaper to decode
  EXPECT_LT(spec->energy_per_token_j, base->energy_per_token_j);
}

TEST(ParetoTest, V73SkipsThreeBillionModels) {
  ParetoSweepOptions opts;
  opts.device = &hexsim::OnePlusAce3();
  opts.models = {&hllm::Qwen25_3B()};
  opts.budgets = {4};
  opts.tasks = 50;
  opts.trials = 1;
  const auto points = SweepPareto(Cap(), opts);
  for (const auto& p : points) {
    EXPECT_FALSE(p.runnable);
  }
}

TEST(ParetoTest, FrontierDetection) {
  std::vector<ParetoPoint> pts(3);
  pts[0].accuracy = 0.3;
  pts[0].latency_per_token_s = 0.05;
  pts[1].accuracy = 0.4;
  pts[1].latency_per_token_s = 0.06;
  pts[2].accuracy = 0.35;
  pts[2].latency_per_token_s = 0.07;  // dominated by pts[1]
  EXPECT_TRUE(OnParetoFrontier(pts[0], pts));
  EXPECT_TRUE(OnParetoFrontier(pts[1], pts));
  EXPECT_FALSE(OnParetoFrontier(pts[2], pts));
}

TEST(ParetoTest, EnergyCostGivesSimilarTradeoffShape) {
  // §7.2.3: replacing latency with energy preserves the trade-off characteristics.
  ParetoSweepOptions opts;
  opts.device = &hexsim::OnePlus12();
  opts.models = {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()};
  opts.budgets = {8};
  opts.tasks = 300;
  opts.trials = 4;
  const auto points = SweepPareto(Cap(), opts);
  const ParetoPoint* small_scaled = nullptr;
  const ParetoPoint* large_base = nullptr;
  for (const auto& p : points) {
    if (p.model == hllm::Qwen25_1_5B().name && p.method == TtsMethod::kBestOfN) {
      small_scaled = &p;
    }
    if (p.model == hllm::Qwen25_3B().name && p.method == TtsMethod::kBase) {
      large_base = &p;
    }
  }
  ASSERT_NE(small_scaled, nullptr);
  ASSERT_NE(large_base, nullptr);
  EXPECT_LT(small_scaled->energy_per_token_j, large_base->energy_per_token_j);
}

}  // namespace
}  // namespace htts

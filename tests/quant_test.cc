#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/quant/codebooks.h"
#include "src/quant/error_stats.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

namespace hquant {
namespace {

std::vector<float> RandomValues(size_t n, uint64_t seed, double sigma = 1.0) {
  hexllm::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(rng.NextGaussian() * sigma);
  }
  return v;
}

TEST(GroupQuantTest, Q4RoundTripErrorBounded) {
  const auto values = RandomValues(32 * 64, 1);
  const auto blocks = QuantizeQ4_0(values);
  std::vector<float> back(values.size());
  DequantizeQ4_0(blocks, back);
  // Per-group error bound: half a step (|d|/2 = amax/16) for in-range values, plus up to a
  // full step of clipping on the side opposite the max-magnitude element (the [-8, 7] grid
  // only reaches 7|d| on one side) -> 3/16 * amax.
  for (size_t b = 0; b < blocks.size(); ++b) {
    float amax = 0.0f;
    for (int i = 0; i < 32; ++i) {
      amax = std::max(amax, std::fabs(values[b * 32 + i]));
    }
    const float bound = amax * 3.0f / 16.0f + 1e-3f;
    for (int i = 0; i < 32; ++i) {
      EXPECT_LE(std::fabs(back[b * 32 + i] - values[b * 32 + i]), bound) << b << ":" << i;
    }
  }
}

TEST(GroupQuantTest, Q4UsesFullRange) {
  // The llama.cpp scale rule (d = signed max / -8) must make the -8 code reachable.
  std::vector<float> values(32, 0.1f);
  values[5] = -4.0f;  // max-magnitude element, negative
  const auto blocks = QuantizeQ4_0(values);
  EXPECT_FLOAT_EQ(blocks[0].d.ToFloat(), hexllm::RoundToF16(0.5f));
  EXPECT_FLOAT_EQ(BlockQ4Value(blocks[0], 5), -4.0f);
}

TEST(GroupQuantTest, Q8RoundTripTighterThanQ4) {
  const auto values = RandomValues(32 * 64, 2);
  const auto b4 = QuantizeQ4_0(values);
  const auto b8 = QuantizeQ8_0(values);
  std::vector<float> r4(values.size());
  std::vector<float> r8(values.size());
  DequantizeQ4_0(b4, r4);
  DequantizeQ8_0(b8, r8);
  const auto e4 = ComputeErrorStats(values, r4);
  const auto e8 = ComputeErrorStats(values, r8);
  EXPECT_LT(e8.rel_rms, e4.rel_rms / 4.0);
}

TEST(GroupQuantTest, ZeroGroupIsExact) {
  std::vector<float> values(32, 0.0f);
  const auto blocks = QuantizeQ4_0(values);
  std::vector<float> back(32);
  DequantizeQ4_0(blocks, back);
  for (float v : back) {
    EXPECT_EQ(v, 0.0f);
  }
}

TEST(PerChannelTest, MatchesGroupQuantOnGaussianWeights) {
  // Without outliers the coarse scheme is only mildly worse.
  hexllm::Rng rng(3);
  const auto w = GenerateGaussianMatrix(256, 128, rng);
  const auto pc = QuantizePerChannelInt4(w, 256, 128);
  std::vector<float> back(w.size());
  DequantizePerChannelInt4(pc, back);
  const auto pc_err = ComputeErrorStats(w, back);
  const auto blocks = ConventionalGroupQuantizeQ4(w, 256, 128);
  const auto g = DequantizeConventionalQ4(blocks, 256, 128);
  const auto g_err = ComputeErrorStats(w, g);
  EXPECT_LT(pc_err.rel_rms, g_err.rel_rms * 2.5);
}

TEST(PerChannelTest, CollapsesOnOutlierWeights) {
  // Table 1's mechanism: systematic outlier input dims blow up the coarse per-channel
  // scale (each column contains every outlier dim). The fine-grained groups along K
  // quarantine the damage to the few groups that contain an outlier dim.
  hexllm::Rng rng(4);
  const int64_t k = 2048;  // realistic hidden size: each column sees every outlier dim
  const int64_t n = 128;
  const auto w = GenerateLlmLikeMatrix(k, n, rng);
  const auto pc = QuantizePerChannelInt4(w, k, n);
  std::vector<float> back(w.size());
  DequantizePerChannelInt4(pc, back);
  const auto pc_err = ComputeErrorStats(w, back);
  const auto blocks = ConventionalGroupQuantizeQ4(w, k, n);
  const auto g = DequantizeConventionalQ4(blocks, k, n);
  const auto g_err = ComputeErrorStats(w, g);
  EXPECT_GT(pc_err.rel_rms, g_err.rel_rms * 3.0);
}

// --- HMX stream permutation ---

TEST(TileQuantTest, StreamPermutationIsBijective) {
  const int64_t k = 64;
  const int64_t n = 96;
  std::vector<bool> seen(static_cast<size_t>(k * n), false);
  for (int64_t i = 0; i < k * n; ++i) {
    const KnIndex kn = HmxStreamToKn(i, k, n);
    ASSERT_GE(kn.k, 0);
    ASSERT_LT(kn.k, k);
    ASSERT_GE(kn.n, 0);
    ASSERT_LT(kn.n, n);
    const size_t flat = static_cast<size_t>(kn.n * k + kn.k);
    EXPECT_FALSE(seen[flat]);
    seen[flat] = true;
    EXPECT_EQ(KnToHmxStream(kn.k, kn.n, k, n), i);
  }
}

TEST(TileQuantTest, PermuteUnpermuteRoundTrip) {
  const auto w = RandomValues(64 * 64, 5);
  const auto stream = PermuteToHmxOrder(w, 64, 64);
  const auto back = UnpermuteFromHmxOrder(stream, 64, 64);
  EXPECT_EQ(w, back);
}

TEST(TileQuantTest, TilesAreColumnMajor) {
  // Element (k=32, n=0) starts tile 1 (second K-tile of output-tile 0); element (0, 32)
  // starts after ALL K-tiles of output-tile 0 (Figure 4b: tile-level inner product).
  const int64_t k = 96;
  const int64_t n = 64;
  EXPECT_EQ(KnToHmxStream(32, 0, k, n), 1024);
  EXPECT_EQ(KnToHmxStream(0, 32, k, n), 3 * 1024);
}

TEST(TileQuantTest, GroupsAre2x16Tiles) {
  // §5.1.1: with group size 32, tile-group quantization groups cover 2x16 rectangles: one
  // quantization group = {rows 2p..2p+1} x {cols c0..c0+15} of a tile.
  const int64_t k = 64;
  const int64_t n = 64;
  for (int64_t g = 0; g < (k * n) / 32; ++g) {
    int64_t k_min = 1 << 20, k_max = -1, n_min = 1 << 20, n_max = -1;
    for (int64_t i = g * 32; i < (g + 1) * 32; ++i) {
      const KnIndex kn = HmxStreamToKn(i, k, n);
      k_min = std::min(k_min, kn.k);
      k_max = std::max(k_max, kn.k);
      n_min = std::min(n_min, kn.n);
      n_max = std::max(n_max, kn.n);
    }
    EXPECT_EQ(k_max - k_min, 1) << g;   // 2 rows
    EXPECT_EQ(n_max - n_min, 15) << g;  // 16 columns
  }
}

TEST(TileQuantTest, TileGroupErrorMatchesConventionalOnGaussian) {
  // §5.1.1's statistical argument: for ~zero-mean-Gaussian weights, quantizing within the
  // reshaped 2x16 tile groups is statistically equivalent to column groups.
  hexllm::Rng rng(6);
  const auto w = GenerateGaussianMatrix(256, 256, rng);
  const auto tile_blocks = TileGroupQuantizeQ4(w, 256, 256);
  const auto conv_blocks = ConventionalGroupQuantizeQ4(w, 256, 256);
  const auto tile_back = DequantizeTileGroupQ4(tile_blocks, 256, 256);
  const auto conv_back = DequantizeConventionalQ4(conv_blocks, 256, 256);
  const auto tile_err = ComputeErrorStats(w, tile_back);
  const auto conv_err = ComputeErrorStats(w, conv_back);
  EXPECT_NEAR(tile_err.rel_rms, conv_err.rel_rms, 0.1 * conv_err.rel_rms);
}

TEST(TileQuantTest, TileGroupErrorSameOrderOnLlmLikeWeights) {
  // With realistic outlier dims the two groupings differ slightly (Table 4's small deltas)
  // but stay within the same order of magnitude.
  hexllm::Rng rng(6);
  const auto w = GenerateLlmLikeMatrix(256, 256, rng);
  const auto tile_back = DequantizeTileGroupQ4(TileGroupQuantizeQ4(w, 256, 256), 256, 256);
  const auto conv_back =
      DequantizeConventionalQ4(ConventionalGroupQuantizeQ4(w, 256, 256), 256, 256);
  const auto tile_err = ComputeErrorStats(w, tile_back);
  const auto conv_err = ComputeErrorStats(w, conv_back);
  EXPECT_LT(tile_err.rel_rms, conv_err.rel_rms * 2.0);
  EXPECT_GT(tile_err.rel_rms, conv_err.rel_rms * 0.5);
}

// --- super-blocks ---

TEST(SuperBlockTest, SizeIs144Bytes) {
  EXPECT_EQ(sizeof(SuperBlockQ4), 144u);
  // INT4 payload of 256 elements = exactly one 128-byte HVX register (§5.1.2).
  EXPECT_EQ(sizeof(SuperBlockQ4::qs), 128u);
}

TEST(SuperBlockTest, CoalescePreservesValues) {
  const auto values = RandomValues(256 * 4, 7);
  const auto blocks = QuantizeQ4_0(values);
  const auto sbs = CoalesceSuperblocks(blocks);
  ASSERT_EQ(sbs.size(), 4u);
  std::vector<float> from_blocks(values.size());
  DequantizeQ4_0(blocks, from_blocks);
  std::vector<float> from_sbs(values.size());
  DequantizeSuperblocks(sbs, from_sbs);
  EXPECT_EQ(from_blocks, from_sbs);
}

TEST(SuperBlockTest, NibbleLayoutSplitsAt128) {
  // byte i must hold element i (low) and element 128+i (high) so one vand/vshr pair yields
  // in-order index registers.
  std::vector<float> values(256);
  for (int i = 0; i < 256; ++i) {
    values[static_cast<size_t>(i)] = static_cast<float>((i % 13) - 6);
  }
  const auto blocks = QuantizeQ4_0(values);
  const auto sbs = CoalesceSuperblocks(blocks);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(SuperBlockNibble(sbs[0], i), sbs[0].qs[i] & 0x0F);
    EXPECT_EQ(SuperBlockNibble(sbs[0], 128 + i), sbs[0].qs[i] >> 4);
  }
}

// --- codebooks ---

TEST(CodebookTest, Q4LevelsAreAffine) {
  const auto levels = CodebookLevels(Int4Codebook::kQ4_0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(levels[static_cast<size_t>(i)], static_cast<float>(i - 8));
  }
}

TEST(CodebookTest, Nf4IsMonotoneAndSymmetricRange) {
  const auto levels = CodebookLevels(Int4Codebook::kNf4);
  EXPECT_FLOAT_EQ(levels[0], -1.0f);
  EXPECT_FLOAT_EQ(levels[15], 1.0f);
  EXPECT_FLOAT_EQ(levels[7], 0.0f);
  for (int i = 1; i < 16; ++i) {
    EXPECT_GT(levels[static_cast<size_t>(i)], levels[static_cast<size_t>(i - 1)]);
  }
}

TEST(CodebookTest, EncoderPicksNearestLevel) {
  for (const auto cb : {Int4Codebook::kQ4_0, Int4Codebook::kNf4, Int4Codebook::kFp4,
                        Int4Codebook::kIq4Nl}) {
    const auto levels = CodebookLevels(cb);
    for (int i = 0; i < 16; ++i) {
      // Compare by value, not index: FP4 encodes zero twice (+0 at 0, -0 at 8).
      const int code = EncodeToCodebook(cb, levels[static_cast<size_t>(i)]);
      EXPECT_FLOAT_EQ(levels[static_cast<size_t>(code)], levels[static_cast<size_t>(i)])
          << Int4CodebookName(cb) << " level " << i;
    }
  }
}

TEST(CodebookTest, F16TableMatchesF32Levels) {
  const auto f32 = CodebookLevels(Int4Codebook::kNf4);
  const auto f16 = CodebookLevelsF16(Int4Codebook::kNf4);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(hexllm::F16BitsToF32(f16[static_cast<size_t>(i)]), f32[static_cast<size_t>(i)],
                1e-3);
  }
}

TEST(CodebookTest, Nf4BeatsQ4OnGaussianData) {
  // NF4 levels are optimized for Gaussian data: with per-group absmax scaling it should
  // reconstruct Gaussian weights better than the uniform grid.
  hexllm::Rng rng(8);
  std::vector<float> values(4096);
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian());
  }
  double q4_se = 0.0;
  double nf4_se = 0.0;
  for (size_t g = 0; g < values.size(); g += 32) {
    float amax = 0.0f;
    for (int i = 0; i < 32; ++i) {
      amax = std::max(amax, std::fabs(values[g + i]));
    }
    const auto nf4 = CodebookLevels(Int4Codebook::kNf4);
    for (int i = 0; i < 32; ++i) {
      const float x = values[g + i];
      const float q4_rec =
          static_cast<float>(EncodeToCodebook(Int4Codebook::kQ4_0, x / (amax / 8)) - 8) *
          (amax / 8);
      const float nf4_rec =
          nf4[static_cast<size_t>(EncodeToCodebook(Int4Codebook::kNf4, x / amax))] * amax;
      q4_se += (x - q4_rec) * (x - q4_rec);
      nf4_se += (x - nf4_rec) * (x - nf4_rec);
    }
  }
  EXPECT_LT(nf4_se, q4_se);
}

// --- error stats ---

TEST(ErrorStatsTest, PerfectReconstruction) {
  const auto v = RandomValues(128, 9);
  const auto s = ComputeErrorStats(v, v);
  EXPECT_EQ(s.mse, 0.0);
  EXPECT_EQ(s.rel_rms, 0.0);
  EXPECT_NEAR(s.cosine, 1.0, 1e-12);
}

TEST(ErrorStatsTest, KnownError) {
  std::vector<float> ref{1.0f, 0.0f, -1.0f, 0.0f};
  std::vector<float> rec{1.5f, 0.0f, -1.0f, 0.0f};
  const auto s = ComputeErrorStats(ref, rec);
  EXPECT_DOUBLE_EQ(s.mse, 0.25 / 4.0);
  EXPECT_DOUBLE_EQ(s.max_abs, 0.5);
  EXPECT_DOUBLE_EQ(s.rel_rms, std::sqrt(0.25 / 2.0));
}

}  // namespace
}  // namespace hquant

#include "src/quant/awq.h"

namespace hquant {
namespace {

// Synthetic calibration activations with outliers on the same input dims real transformers
// show them (correlated with the weight generator's outlier dims is not required — AWQ
// protects whatever the ACTIVATIONS say is salient).
std::vector<float> CalibrationActs(int64_t samples, int64_t k, hexllm::Rng& rng) {
  std::vector<double> dim_scale(static_cast<size_t>(k), 1.0);
  for (auto& v : dim_scale) {
    if (rng.NextBool(0.02)) {
      v = 15.0;
    }
  }
  std::vector<float> acts(static_cast<size_t>(samples * k));
  for (int64_t s = 0; s < samples; ++s) {
    for (int64_t i = 0; i < k; ++i) {
      acts[static_cast<size_t>(s * k + i)] =
          static_cast<float>(rng.NextGaussian() * dim_scale[static_cast<size_t>(i)]);
    }
  }
  return acts;
}

TEST(AwqTest, ReducesOutputErrorOnSalientActivations) {
  hexllm::Rng rng(91);
  const int64_t k = 512, n = 128, samples = 24;
  const auto w = GenerateGaussianMatrix(k, n, rng, 0.05);
  const auto acts = CalibrationActs(samples, k, rng);
  const auto act_scale = CalibrationActScales(acts, samples, k);

  const auto plain = AwqQuantize(w, k, n, act_scale, /*alpha=*/0.0);
  const auto awq = AwqQuantize(w, k, n, act_scale, /*alpha=*/0.5);
  const auto rec_plain = AwqDequantize(plain);
  const auto rec_awq = AwqDequantize(awq);
  const double mse_plain = OutputMse(w, rec_plain, k, n, acts, samples);
  const double mse_awq = OutputMse(w, rec_awq, k, n, acts, samples);
  EXPECT_LT(mse_awq, mse_plain * 0.8);
}

TEST(AwqTest, AlphaZeroIsPlainGroupQuant) {
  hexllm::Rng rng(92);
  const int64_t k = 128, n = 64;
  const auto w = GenerateGaussianMatrix(k, n, rng, 0.05);
  std::vector<float> act_scale(static_cast<size_t>(k), 1.0f);
  for (size_t i = 0; i < act_scale.size(); i += 3) {
    act_scale[i] = 9.0f;
  }
  const auto awq0 = AwqQuantize(w, k, n, act_scale, 0.0);
  const auto classic = ConventionalGroupQuantizeQ4(w, k, n);
  ASSERT_EQ(awq0.blocks.size(), classic.size());
  for (size_t b = 0; b < classic.size(); ++b) {
    EXPECT_EQ(awq0.blocks[b].d.bits(), classic[b].d.bits()) << b;
    for (int j = 0; j < kGroupSize / 2; ++j) {
      EXPECT_EQ(awq0.blocks[b].qs[j], classic[b].qs[j]) << b << ":" << j;
    }
  }
}

TEST(AwqTest, ScalesFollowActivationMagnitudes) {
  hexllm::Rng rng(93);
  const int64_t k = 64, n = 32;
  const auto w = GenerateGaussianMatrix(k, n, rng, 0.05);
  std::vector<float> act_scale(static_cast<size_t>(k), 1.0f);
  act_scale[5] = 100.0f;
  const auto q = AwqQuantize(w, k, n, act_scale, 0.5);
  for (int64_t i = 0; i < k; ++i) {
    if (i == 5) {
      EXPECT_GT(q.scales[static_cast<size_t>(i)], 3.0f);
    } else {
      EXPECT_NEAR(q.scales[static_cast<size_t>(i)], 1.0f, 0.2f);
    }
  }
}

TEST(AwqTest, CalibrationScalesAreMeanAbs) {
  std::vector<float> acts{1.0f, -2.0f, 3.0f, -4.0f};  // 2 samples x 2 dims
  const auto s = CalibrationActScales(acts, 2, 2);
  EXPECT_FLOAT_EQ(s[0], 2.0f);  // (1 + 3) / 2
  EXPECT_FLOAT_EQ(s[1], 3.0f);  // (2 + 4) / 2
}

}  // namespace
}  // namespace hquant

#!/usr/bin/env python3
"""Validate BENCH_<name>.json reports against the frozen bench schema (v1).

Stdlib-only so CI can run it on a bare runner:

    python3 tools/check_bench_schema.py out/BENCH_*.json

Exits non-zero and prints one line per violation if any file fails. The checks mirror
docs/metrics_schema.md: required top-level fields, typed rows with a `series` tag,
reference entries with measured + paper values, and — when a report embeds metrics
snapshots — the metrics schema's own required shape.
"""

import json
import sys

BENCH_SCHEMA_VERSION = 1
METRICS_SCHEMA_VERSION = 1

NUMBER = (int, float)

# KV storage dtypes (docs/kv_quantization.md): gauge label -> bits-per-element value.
KV_DTYPES = {"f16": 16, "int8": 8, "int4": 4}
# Write-time round-trip error-proxy gauges exported by quantized functional runs.
KV_QUANT_GAUGES = (
    "kv.quant.rows",
    "kv.quant.bytes_saved",
    "kv.quant.max_abs_err",
    "kv.quant.mean_abs_err",
    "kv.quant.rel_rms",
)


def fail(path, msg, errors):
    errors.append(f"{path}: {msg}")


def check_metrics_snapshot(path, where, snap, errors):
    if not isinstance(snap, dict):
        return fail(path, f"{where}: metrics snapshot must be an object", errors)
    if snap.get("schema_version") != METRICS_SCHEMA_VERSION:
        return fail(
            path,
            f"{where}: metrics schema_version must be {METRICS_SCHEMA_VERSION}, "
            f"got {snap.get('schema_version')!r}",
            errors,
        )
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(key), list):
            return fail(path, f"{where}: missing metrics array {key!r}", errors)
    for c in snap["counters"]:
        if not isinstance(c.get("name"), str) or not isinstance(c.get("value"), int):
            fail(path, f"{where}: bad counter entry {c!r}", errors)
    for g in snap["gauges"]:
        if not isinstance(g.get("name"), str) or not isinstance(g.get("value"), NUMBER):
            fail(path, f"{where}: bad gauge entry {g!r}", errors)
            continue
        # kv.dtype is a labeled gauge: label names the dtype, value is bits per element.
        if g["name"] == "kv.dtype":
            label = g.get("label")
            if label not in KV_DTYPES:
                fail(path, f"{where}: kv.dtype label must be one of {sorted(KV_DTYPES)}, "
                           f"got {label!r}", errors)
            elif g["value"] != KV_DTYPES[label]:
                fail(path, f"{where}: kv.dtype[{label}] must be {KV_DTYPES[label]} bits, "
                           f"got {g['value']!r}", errors)
        elif g["name"] == "kv.quant.rel_rms" and not 0.0 <= g["value"] <= 1.0:
            fail(path, f"{where}: kv.quant.rel_rms out of [0,1]: {g['value']!r}", errors)
        elif g["name"] in KV_QUANT_GAUGES and g["value"] < 0:
            fail(path, f"{where}: {g['name']} must be non-negative, got {g['value']!r}",
                 errors)
    for h in snap["histograms"]:
        if not isinstance(h.get("name"), str):
            fail(path, f"{where}: histogram entry without a name", errors)
            continue
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(path, f"{where}: histogram {h['name']!r} missing bounds/counts", errors)
        elif len(counts) != len(bounds) + 1:
            fail(
                path,
                f"{where}: histogram {h['name']!r} needs len(counts) == len(bounds)+1",
                errors,
            )


def check_report(path, errors):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}", errors)

    if not isinstance(doc, dict):
        return fail(path, "top level must be an object", errors)
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        return fail(
            path,
            f"schema_version must be {BENCH_SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}",
            errors,
        )
    for key, typ in (
        ("bench", str),
        ("title", str),
        ("paper_ref", str),
        ("git_sha", str),
        ("smoke", bool),
        ("notes", list),
        ("rows", list),
    ):
        if not isinstance(doc.get(key), typ):
            fail(path, f"missing or mistyped required field {key!r} ({typ.__name__})", errors)
    rows = doc.get("rows")
    if isinstance(rows, list):
        if not rows:
            fail(path, "rows must not be empty", errors)
        for i, row in enumerate(rows):
            if not isinstance(row, dict) or not isinstance(row.get("series"), str):
                fail(path, f"rows[{i}] must be an object with a string 'series'", errors)
    for i, note in enumerate(doc.get("notes") or []):
        if not isinstance(note, str):
            fail(path, f"notes[{i}] must be a string", errors)
    for i, ref in enumerate(doc.get("references") or []):
        if not isinstance(ref, dict):
            fail(path, f"references[{i}] must be an object", errors)
            continue
        if not isinstance(ref.get("metric"), str):
            fail(path, f"references[{i}] missing string 'metric'", errors)
        for key in ("measured", "paper"):
            if not isinstance(ref.get(key), NUMBER):
                fail(path, f"references[{i}] missing numeric {key!r}", errors)
    for i, m in enumerate(doc.get("metrics") or []):
        if not isinstance(m, dict) or "snapshot" not in m:
            fail(path, f"metrics[{i}] must be an object with a 'snapshot'", errors)
            continue
        check_metrics_snapshot(path, f"metrics[{i}]", m["snapshot"], errors)

    # Optional (additive) env block: the knob values the run was produced under. When
    # present it must map knob names to strings ("" = unset) so two reports diff
    # field-for-field.
    env = doc.get("env")
    if env is not None:
        if not isinstance(env, dict):
            fail(path, "env must be an object", errors)
        else:
            for k, v in env.items():
                if not isinstance(k, str) or not isinstance(v, str):
                    fail(path, f"env[{k!r}] must map a string knob to a string value",
                         errors)

    # Bench-specific: fig16's KV-dtype axis must sweep every storage mode with the fields
    # the EXPERIMENTS.md headline numbers are read from.
    if doc.get("bench") == "fig16_cpu_memory" and isinstance(rows, list):
        kv_rows = [r for r in rows
                   if isinstance(r, dict) and r.get("series") == "kv_dtype"]
        if not kv_rows:
            fail(path, "fig16_cpu_memory must report a 'kv_dtype' row series", errors)
        seen = set()
        for r in kv_rows:
            dtype = r.get("kv_dtype")
            if dtype not in KV_DTYPES:
                fail(path, f"kv_dtype row with unknown dtype {dtype!r}", errors)
                continue
            seen.add(dtype)
            if r.get("kv_bits") != KV_DTYPES[dtype]:
                fail(path, f"kv_dtype row {dtype}: kv_bits must be {KV_DTYPES[dtype]}",
                     errors)
            for key in ("peak_physical_bytes", "compression_vs_f16", "attn_rel_rms"):
                if not isinstance(r.get(key), NUMBER):
                    fail(path, f"kv_dtype row {dtype}: missing numeric {key!r}", errors)
        if kv_rows and seen != set(KV_DTYPES):
            fail(path, f"kv_dtype rows must cover {sorted(KV_DTYPES)}, got {sorted(seen)}",
                 errors)

    # Bench-specific: the speculative sweep must carry a plain-decode baseline, the
    # default-preset row the CI speedup gate reads (compare_bench_perf.py --spec), and the
    # serving_request checksum rows the 1-vs-4-thread compare diffs.
    if doc.get("bench") == "speculative" and isinstance(rows, list):
        sweep = [r for r in rows
                 if isinstance(r, dict) and r.get("series") == "spec_sweep"]
        if not sweep:
            fail(path, "speculative must report a 'spec_sweep' row series", errors)
        for r in sweep:
            where = f"spec_sweep row (draft={r.get('draft')!r}, gamma={r.get('gamma')!r})"
            if not isinstance(r.get("draft"), str) or not isinstance(r.get("gamma"), int):
                fail(path, f"{where}: needs string 'draft' and int 'gamma'", errors)
                continue
            if r["gamma"] < 0:
                fail(path, f"{where}: gamma must be >= 0", errors)
            for key in ("acceptance", "measured_acceptance"):
                v = r.get(key)
                if not isinstance(v, NUMBER) or not 0.0 <= v <= 1.0:
                    fail(path, f"{where}: {key} must be in [0,1], got {v!r}", errors)
            for key in ("tokens_per_second", "speedup_vs_plain"):
                if not isinstance(r.get(key), NUMBER) or r[key] <= 0:
                    fail(path, f"{where}: {key} must be a positive number", errors)
            if not isinstance(r.get("joules_per_token"), NUMBER) or r["joules_per_token"] < 0:
                fail(path, f"{where}: joules_per_token must be non-negative", errors)
            if not isinstance(r.get("default_preset"), bool):
                fail(path, f"{where}: missing bool 'default_preset'", errors)
        plain = [r for r in sweep if r.get("gamma") == 0]
        if len(plain) != 1:
            fail(path, f"spec_sweep needs exactly one gamma=0 plain-decode baseline row, "
                       f"got {len(plain)}", errors)
        if sweep and not any(r.get("default_preset") is True for r in sweep):
            fail(path, "spec_sweep needs a default_preset row (the CI speedup gate input)",
                 errors)
        requests = [r for r in rows
                    if isinstance(r, dict) and r.get("series") == "serving_request"]
        if not requests:
            fail(path, "speculative must report 'serving_request' checksum rows", errors)
        for r in requests:
            if not isinstance(r.get("tokens"), int) or not isinstance(
                    r.get("token_checksum"), str):
                fail(path, f"serving_request row {r.get('request')!r}: needs int 'tokens' "
                           f"and string 'token_checksum'", errors)

    # Bench-specific: the long-context tiered-offload sweep (docs/long_context.md).
    if doc.get("bench") == "longcontext" and isinstance(rows, list):
        check_longcontext(path, doc, rows, errors)


def check_longcontext(path, doc, rows, errors):
    """Bench-specific checks for BENCH_longcontext.json (docs/long_context.md)."""
    sweep = [r for r in rows
             if isinstance(r, dict) and r.get("series") == "longcontext_sweep"]
    if not sweep:
        fail(path, "longcontext must report a 'longcontext_sweep' row series", errors)
    for r in sweep:
        where = (f"longcontext_sweep row (context={r.get('context')!r}, "
                 f"read_gbps={r.get('read_gbps')!r}, window={r.get('window_blocks')!r})")
        if not isinstance(r.get("context"), int) or r.get("context", 0) <= 0:
            fail(path, f"{where}: 'context' must be a positive int", errors)
        if not isinstance(r.get("admitted"), bool):
            fail(path, f"{where}: missing bool 'admitted'", errors)
            continue
        for key in ("resident_block_budget", "sink_blocks", "window_blocks"):
            if not isinstance(r.get(key), int) or r[key] < 0:
                fail(path, f"{where}: {key} must be a non-negative int", errors)
        if not isinstance(r.get("read_gbps"), NUMBER) or r.get("read_gbps", 0) <= 0:
            fail(path, f"{where}: 'read_gbps' must be a positive number", errors)
        if r["admitted"]:
            if not isinstance(r.get("tokens_per_second"), NUMBER) or \
                    r["tokens_per_second"] <= 0:
                fail(path, f"{where}: admitted row needs positive 'tokens_per_second'",
                     errors)
            if not isinstance(r.get("flash_bytes"), int) or r["flash_bytes"] < 0:
                fail(path, f"{where}: admitted row needs non-negative int 'flash_bytes'",
                     errors)
            for key in ("ttft_seconds", "tpot_seconds", "flash_seconds"):
                if not isinstance(r.get(key), NUMBER) or r[key] < 0:
                    fail(path, f"{where}: admitted row needs non-negative {key!r}", errors)
            sf = r.get("stall_fraction")
            if not isinstance(sf, NUMBER) or not 0.0 <= sf <= 1.0:
                fail(path, f"{where}: stall_fraction must be in [0,1], got {sf!r}", errors)
        elif not isinstance(r.get("error"), str) or not r["error"]:
            fail(path, f"{where}: rejected row must carry a non-empty string 'error'",
                 errors)
    # The headline demo must be present: a 64k context rejected DRAM-only but admitted
    # with the flash tier behind the same resident budget.
    big = [r for r in sweep if r.get("context") == 65536]
    if big and doc.get("smoke") is not True:
        if not any(r.get("admitted") is False for r in big):
            fail(path, "longcontext_sweep needs a rejected DRAM-only 64k row", errors)
        if not any(r.get("admitted") is True for r in big):
            fail(path, "longcontext_sweep needs an admitted offloaded 64k row", errors)
    requests = [r for r in rows
                if isinstance(r, dict) and r.get("series") == "serving_request"]
    if not requests:
        fail(path, "longcontext must report 'serving_request' checksum rows", errors)
    for r in requests:
        if not isinstance(r.get("tokens"), int) or not isinstance(
                r.get("token_checksum"), str):
            fail(path, f"serving_request row {r.get('request')!r}: needs int 'tokens' "
                       f"and string 'token_checksum'", errors)
    if not isinstance(doc.get("env"), dict):
        fail(path, "longcontext must record the 'env' knob object "
                   "(HEXLLM_KV_OFFLOAD_GBPS / HEXLLM_ATTN_*)", errors)
    summary = [r for r in rows
               if isinstance(r, dict) and r.get("series") == "functional_offload_summary"]
    if len(summary) != 1:
        fail(path, "longcontext needs exactly one 'functional_offload_summary' row",
             errors)
    else:
        s = summary[0]
        for key in ("demotions", "promotions", "demand_faults", "prefetch_hits",
                    "flash_read_bytes", "wear_write_ops"):
            if not isinstance(s.get(key), int) or s[key] < 0:
                fail(path, f"functional_offload_summary: {key} must be a non-negative "
                           f"int", errors)
        if s.get("lossless") is not True:
            fail(path, "functional_offload_summary: offloaded decode must be lossless "
                       "(token streams bit-identical to the DRAM-only run)", errors)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        check_report(path, errors)
    for e in errors:
        print(f"SCHEMA VIOLATION  {e}")
    if errors:
        return 1
    print(f"OK: {len(argv) - 1} report(s) valid under bench schema v{BENCH_SCHEMA_VERSION}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Guard the functional-decode HOST throughput in BENCH_fig11 reports.

Two modes, both over the `host_tokens_per_second` field of functional rows (the host
wall-clock of the emulation — NOT simulated seconds; see docs/performance.md for the
distinction):

  * Two-file mode: compare_bench_perf.py OLD.json NEW.json
    Matches `functional_decode` rows on (batch, steps) and fails when NEW regresses
    below --threshold (default 0.80, i.e. a >20% host-throughput drop) of OLD for any
    matched row. Use it to gate a change against a baseline report.

  * Self mode: compare_bench_perf.py --self REPORT.json
    Compares the `functional_decode` (dequant-once weight cache ON) rows against the
    `functional_decode_nocache` rows of ONE report and fails when the cached path is
    not at least --min-ratio (default 1.2) times faster. This is the CI smoke guard
    that the weight cache actually pays for itself.

A third mode gates speculative decoding instead (over SIMULATED tokens_per_second of
BENCH_speculative's `spec_sweep` rows, not host throughput):

  * Spec mode: compare_bench_perf.py --spec REPORT.json
    Compares the sweep's default-preset row (default_preset: true — the
    acceptance-favorable 0.5B-draft/gamma-4 configuration) against the gamma=0
    plain-decode baseline row and fails when speculation is not at least --min-ratio
    times faster. CI runs this with --min-ratio 1.5 (docs/speculative_decoding.md).

--min-batch N restricts either mode to rows with batch >= N (small-batch host timings
are the noisiest). Exit 0 on pass, 1 on regression, 2 on usage error. Stdlib only.
"""

import argparse
import json
import sys


def load_rows(path, series):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for row in report.get("rows", []):
        if row.get("series") != series:
            continue
        key = (row["batch"], row["steps"])
        if key in rows:
            raise SystemExit(f"{path}: duplicate {series} row for {key}")
        rows[key] = float(row["host_tokens_per_second"])
    if not rows:
        raise SystemExit(f"{path}: no {series} rows (wrong bench or old schema?)")
    return rows


def check_spec(path, factor):
    """Default-preset speculative tok/s must reach factor x the plain-decode baseline."""
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    sweep = [r for r in report.get("rows", []) if r.get("series") == "spec_sweep"]
    if not sweep:
        raise SystemExit(f"{path}: no spec_sweep rows (wrong bench or old schema?)")
    plain = [r for r in sweep if r.get("gamma") == 0]
    defaults = [r for r in sweep if r.get("default_preset") is True]
    if len(plain) != 1:
        raise SystemExit(f"{path}: expected exactly one gamma=0 baseline row, got {len(plain)}")
    if not defaults:
        raise SystemExit(f"{path}: no default_preset spec_sweep row")
    base = float(plain[0]["tokens_per_second"])
    ok = True
    for row in defaults:
        tps = float(row["tokens_per_second"])
        ratio = tps / base if base > 0 else float("inf")
        verdict = "ok" if ratio >= factor else "FAIL"
        print(
            f"draft={row.get('draft')} gamma={row.get('gamma')} "
            f"acceptance={row.get('acceptance')}: plain={base:.2f} tok/s  "
            f"spec={tps:.2f} tok/s  speedup={ratio:.2f}x (floor {factor:.2f}) {verdict}"
        )
        if ratio < factor:
            ok = False
    return ok


def check_pairs(base, new, factor, min_batch, base_desc, new_desc):
    """Fails rows where new < base * factor. Returns True when everything passes."""
    ok = True
    checked = 0
    if base.keys() != new.keys():
        print(f"row sets differ: {sorted(base.keys())} vs {sorted(new.keys())}")
        ok = False
    for key in sorted(base.keys() & new.keys()):
        batch, steps = key
        if batch < min_batch:
            continue
        checked += 1
        ratio = new[key] / base[key] if base[key] > 0 else float("inf")
        verdict = "ok" if ratio >= factor else "FAIL"
        print(
            f"batch={batch} steps={steps}: {base_desc}={base[key]:.1f} tok/s  "
            f"{new_desc}={new[key]:.1f} tok/s  ratio={ratio:.2f} (floor {factor:.2f}) "
            f"{verdict}"
        )
        if ratio < factor:
            ok = False
    if checked == 0:
        print(f"no rows with batch >= {min_batch} to compare")
        return False
    return ok


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("reports", nargs="+", metavar="REPORT.json")
    parser.add_argument(
        "--self",
        dest="self_mode",
        action="store_true",
        help="one report: cached functional_decode vs functional_decode_nocache",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.80,
        help="two-file mode: NEW must reach this fraction of OLD (default 0.80)",
    )
    parser.add_argument(
        "--spec",
        dest="spec_mode",
        action="store_true",
        help="one BENCH_speculative report: default-preset speculation vs plain decode",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.2,
        help="self/spec mode: the faster path must be this many times the baseline "
        "(default 1.2)",
    )
    parser.add_argument(
        "--min-batch", type=int, default=0, help="only compare rows with batch >= N"
    )
    args = parser.parse_args(argv[1:])

    if args.spec_mode:
        if args.self_mode:
            parser.error("--spec and --self are mutually exclusive")
        if len(args.reports) != 1:
            parser.error("--spec takes exactly one report")
        ok = check_spec(args.reports[0], args.min_ratio)
        print("OK: speculation beats plain decode at the default preset" if ok
              else "FAIL: speculative speedup below floor")
        return 0 if ok else 1

    if args.self_mode:
        if len(args.reports) != 1:
            parser.error("--self takes exactly one report")
        path = args.reports[0]
        nocache = load_rows(path, "functional_decode_nocache")
        cached = load_rows(path, "functional_decode")
        ok = check_pairs(nocache, cached, args.min_ratio, args.min_batch, "nocache", "cached")
        print("OK: weight cache pays for itself" if ok else "FAIL: weight-cache speedup below floor")
        return 0 if ok else 1

    if len(args.reports) != 2:
        parser.error("two-file mode takes OLD.json NEW.json")
    old = load_rows(args.reports[0], "functional_decode")
    new = load_rows(args.reports[1], "functional_decode")
    ok = check_pairs(old, new, args.threshold, args.min_batch, "old", "new")
    print("OK: no host-throughput regression" if ok else "FAIL: host-throughput regression")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Guard the functional-decode HOST throughput in BENCH_fig11 reports.

Two modes, both over the `host_tokens_per_second` field of functional rows (the host
wall-clock of the emulation — NOT simulated seconds; see docs/performance.md for the
distinction):

  * Two-file mode: compare_bench_perf.py OLD.json NEW.json
    Matches `functional_decode` rows on (batch, steps) and fails when NEW regresses
    below --threshold (default 0.80, i.e. a >20% host-throughput drop) of OLD for any
    matched row. Use it to gate a change against a baseline report.

  * Self mode: compare_bench_perf.py --self REPORT.json
    Compares the `functional_decode` (dequant-once weight cache ON) rows against the
    `functional_decode_nocache` rows of ONE report and fails when the cached path is
    not at least --min-ratio (default 1.2) times faster. This is the CI smoke guard
    that the weight cache actually pays for itself.

--min-batch N restricts either mode to rows with batch >= N (small-batch host timings
are the noisiest). Exit 0 on pass, 1 on regression, 2 on usage error. Stdlib only.
"""

import argparse
import json
import sys


def load_rows(path, series):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for row in report.get("rows", []):
        if row.get("series") != series:
            continue
        key = (row["batch"], row["steps"])
        if key in rows:
            raise SystemExit(f"{path}: duplicate {series} row for {key}")
        rows[key] = float(row["host_tokens_per_second"])
    if not rows:
        raise SystemExit(f"{path}: no {series} rows (wrong bench or old schema?)")
    return rows


def check_pairs(base, new, factor, min_batch, base_desc, new_desc):
    """Fails rows where new < base * factor. Returns True when everything passes."""
    ok = True
    checked = 0
    if base.keys() != new.keys():
        print(f"row sets differ: {sorted(base.keys())} vs {sorted(new.keys())}")
        ok = False
    for key in sorted(base.keys() & new.keys()):
        batch, steps = key
        if batch < min_batch:
            continue
        checked += 1
        ratio = new[key] / base[key] if base[key] > 0 else float("inf")
        verdict = "ok" if ratio >= factor else "FAIL"
        print(
            f"batch={batch} steps={steps}: {base_desc}={base[key]:.1f} tok/s  "
            f"{new_desc}={new[key]:.1f} tok/s  ratio={ratio:.2f} (floor {factor:.2f}) "
            f"{verdict}"
        )
        if ratio < factor:
            ok = False
    if checked == 0:
        print(f"no rows with batch >= {min_batch} to compare")
        return False
    return ok


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("reports", nargs="+", metavar="REPORT.json")
    parser.add_argument(
        "--self",
        dest="self_mode",
        action="store_true",
        help="one report: cached functional_decode vs functional_decode_nocache",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.80,
        help="two-file mode: NEW must reach this fraction of OLD (default 0.80)",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.2,
        help="self mode: cached must be this many times nocache (default 1.2)",
    )
    parser.add_argument(
        "--min-batch", type=int, default=0, help="only compare rows with batch >= N"
    )
    args = parser.parse_args(argv[1:])

    if args.self_mode:
        if len(args.reports) != 1:
            parser.error("--self takes exactly one report")
        path = args.reports[0]
        nocache = load_rows(path, "functional_decode_nocache")
        cached = load_rows(path, "functional_decode")
        ok = check_pairs(nocache, cached, args.min_ratio, args.min_batch, "nocache", "cached")
        print("OK: weight cache pays for itself" if ok else "FAIL: weight-cache speedup below floor")
        return 0 if ok else 1

    if len(args.reports) != 2:
        parser.error("two-file mode takes OLD.json NEW.json")
    old = load_rows(args.reports[0], "functional_decode")
    new = load_rows(args.reports[1], "functional_decode")
    ok = check_pairs(old, new, args.threshold, args.min_batch, "old", "new")
    print("OK: no host-throughput regression" if ok else "FAIL: host-throughput regression")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Assert two BENCH_fig11 reports decoded identical tokens.

The functional-decode section of bench_fig11_decode_throughput feeds greedy-argmax
tokens back into the model and reports an FNV-1a checksum of the decoded stream per
batch size. The checksum must be bit-identical at any HEXLLM_NUM_THREADS
(docs/threading_model.md); CI runs the bench at 1 and 4 threads and calls this script
on the two reports. Wall-clock fields are expected to differ and are ignored.

Usage: compare_bench_tokens.py A.json B.json
Exit 0 when every (batch, steps) row pair agrees on `tokens` and `token_checksum`;
exit 1 (with a diff listing) otherwise. Stdlib only.
"""

import json
import sys


def functional_rows(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for row in report.get("rows", []):
        if row.get("series") != "functional_decode":
            continue
        key = (row["batch"], row["steps"])
        if key in rows:
            raise SystemExit(f"{path}: duplicate functional_decode row for {key}")
        rows[key] = (row["tokens"], row["token_checksum"])
    if not rows:
        raise SystemExit(f"{path}: no functional_decode rows (wrong bench or old schema?)")
    return rows


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a, b = functional_rows(a_path), functional_rows(b_path)
    ok = True
    if a.keys() != b.keys():
        print(f"row sets differ: {sorted(a.keys())} vs {sorted(b.keys())}")
        ok = False
    for key in sorted(a.keys() & b.keys()):
        if a[key] != b[key]:
            batch, steps = key
            print(
                f"batch={batch} steps={steps}: "
                f"{a_path} -> tokens={a[key][0]} checksum={a[key][1]}  vs  "
                f"{b_path} -> tokens={b[key][0]} checksum={b[key][1]}"
            )
            ok = False
    if ok:
        n = len(a.keys() & b.keys())
        print(f"OK: {n} functional_decode row(s) agree on tokens and checksums")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Assert two bench reports decoded identical token streams.

Two report families carry decoded-token checksums that must be bit-identical at any
HEXLLM_NUM_THREADS (docs/threading_model.md):

* BENCH_fig11_decode_throughput: `functional_decode` rows — greedy-argmax tokens fed
  back into the functional toy model, one FNV-1a checksum per batch size.
* BENCH_serving_slo: `serving_request` rows — per-request streamed-token checksums from
  the request-serving frontend (sessions, preemption and per-request samplers included).

CI runs each bench at 1 and 4 threads and calls this script on the two reports. Rows of
both series are compared when present (a report must carry at least one of them);
wall-clock and latency fields are expected to differ and are ignored.

Usage: compare_bench_tokens.py A.json B.json
Exit 0 when every row pair agrees on `tokens` and `token_checksum`; exit 1 (with a diff
listing) otherwise. Stdlib only.
"""

import json
import sys


def token_rows(path):
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    rows = {}
    for row in report.get("rows", []):
        series = row.get("series")
        if series == "functional_decode":
            key = (series, row["batch"], row["steps"])
        elif series == "serving_request":
            key = (series, row["request"])
        else:
            continue
        if key in rows:
            raise SystemExit(f"{path}: duplicate {series} row for {key}")
        rows[key] = (row["tokens"], row["token_checksum"])
    if not rows:
        raise SystemExit(
            f"{path}: no functional_decode or serving_request rows "
            "(wrong bench or old schema?)"
        )
    return rows


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a, b = token_rows(a_path), token_rows(b_path)
    ok = True
    if a.keys() != b.keys():
        print(f"row sets differ: {sorted(a.keys())} vs {sorted(b.keys())}")
        ok = False
    for key in sorted(a.keys() & b.keys()):
        if a[key] != b[key]:
            print(
                f"{key}: "
                f"{a_path} -> tokens={a[key][0]} checksum={a[key][1]}  vs  "
                f"{b_path} -> tokens={b[key][0]} checksum={b[key][1]}"
            )
            ok = False
    if ok:
        n = len(a.keys() & b.keys())
        print(f"OK: {n} row(s) agree on tokens and checksums")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))

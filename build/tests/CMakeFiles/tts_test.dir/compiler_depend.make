# Empty compiler generated dependencies file for tts_test.
# This may be replaced when dependencies are built.

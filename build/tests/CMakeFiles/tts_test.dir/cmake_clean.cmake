file(REMOVE_RECURSE
  "CMakeFiles/tts_test.dir/tts_test.cc.o"
  "CMakeFiles/tts_test.dir/tts_test.cc.o.d"
  "tts_test"
  "tts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

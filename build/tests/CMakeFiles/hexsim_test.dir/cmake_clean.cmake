file(REMOVE_RECURSE
  "CMakeFiles/hexsim_test.dir/hexsim_test.cc.o"
  "CMakeFiles/hexsim_test.dir/hexsim_test.cc.o.d"
  "hexsim_test"
  "hexsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hexsim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_runtime.dir/engine.cc.o"
  "CMakeFiles/hexllm_runtime.dir/engine.cc.o.d"
  "CMakeFiles/hexllm_runtime.dir/scheduler.cc.o"
  "CMakeFiles/hexllm_runtime.dir/scheduler.cc.o.d"
  "CMakeFiles/hexllm_runtime.dir/trace.cc.o"
  "CMakeFiles/hexllm_runtime.dir/trace.cc.o.d"
  "libhexllm_runtime.a"
  "libhexllm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhexllm_runtime.a"
)

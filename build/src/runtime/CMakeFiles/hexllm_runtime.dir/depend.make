# Empty dependencies file for hexllm_runtime.
# This may be replaced when dependencies are built.

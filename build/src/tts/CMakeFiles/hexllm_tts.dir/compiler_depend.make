# Empty compiler generated dependencies file for hexllm_tts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_tts.dir/capability_model.cc.o"
  "CMakeFiles/hexllm_tts.dir/capability_model.cc.o.d"
  "CMakeFiles/hexllm_tts.dir/pareto.cc.o"
  "CMakeFiles/hexllm_tts.dir/pareto.cc.o.d"
  "CMakeFiles/hexllm_tts.dir/speculative.cc.o"
  "CMakeFiles/hexllm_tts.dir/speculative.cc.o.d"
  "CMakeFiles/hexllm_tts.dir/task.cc.o"
  "CMakeFiles/hexllm_tts.dir/task.cc.o.d"
  "CMakeFiles/hexllm_tts.dir/tts.cc.o"
  "CMakeFiles/hexllm_tts.dir/tts.cc.o.d"
  "libhexllm_tts.a"
  "libhexllm_tts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_tts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhexllm_tts.a"
)

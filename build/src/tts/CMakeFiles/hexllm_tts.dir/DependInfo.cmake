
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tts/capability_model.cc" "src/tts/CMakeFiles/hexllm_tts.dir/capability_model.cc.o" "gcc" "src/tts/CMakeFiles/hexllm_tts.dir/capability_model.cc.o.d"
  "/root/repo/src/tts/pareto.cc" "src/tts/CMakeFiles/hexllm_tts.dir/pareto.cc.o" "gcc" "src/tts/CMakeFiles/hexllm_tts.dir/pareto.cc.o.d"
  "/root/repo/src/tts/speculative.cc" "src/tts/CMakeFiles/hexllm_tts.dir/speculative.cc.o" "gcc" "src/tts/CMakeFiles/hexllm_tts.dir/speculative.cc.o.d"
  "/root/repo/src/tts/task.cc" "src/tts/CMakeFiles/hexllm_tts.dir/task.cc.o" "gcc" "src/tts/CMakeFiles/hexllm_tts.dir/task.cc.o.d"
  "/root/repo/src/tts/tts.cc" "src/tts/CMakeFiles/hexllm_tts.dir/tts.cc.o" "gcc" "src/tts/CMakeFiles/hexllm_tts.dir/tts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hexllm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hexsim/CMakeFiles/hexllm_hexsim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/hexllm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hexllm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/hexllm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hexllm_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

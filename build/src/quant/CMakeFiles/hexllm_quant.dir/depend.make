# Empty dependencies file for hexllm_quant.
# This may be replaced when dependencies are built.

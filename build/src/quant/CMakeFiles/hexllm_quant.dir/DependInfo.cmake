
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/awq.cc" "src/quant/CMakeFiles/hexllm_quant.dir/awq.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/awq.cc.o.d"
  "/root/repo/src/quant/codebook_quant.cc" "src/quant/CMakeFiles/hexllm_quant.dir/codebook_quant.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/codebook_quant.cc.o.d"
  "/root/repo/src/quant/codebooks.cc" "src/quant/CMakeFiles/hexllm_quant.dir/codebooks.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/codebooks.cc.o.d"
  "/root/repo/src/quant/error_stats.cc" "src/quant/CMakeFiles/hexllm_quant.dir/error_stats.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/error_stats.cc.o.d"
  "/root/repo/src/quant/group_quant.cc" "src/quant/CMakeFiles/hexllm_quant.dir/group_quant.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/group_quant.cc.o.d"
  "/root/repo/src/quant/synthetic_weights.cc" "src/quant/CMakeFiles/hexllm_quant.dir/synthetic_weights.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/synthetic_weights.cc.o.d"
  "/root/repo/src/quant/tile_quant.cc" "src/quant/CMakeFiles/hexllm_quant.dir/tile_quant.cc.o" "gcc" "src/quant/CMakeFiles/hexllm_quant.dir/tile_quant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hexllm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hexsim/CMakeFiles/hexllm_hexsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

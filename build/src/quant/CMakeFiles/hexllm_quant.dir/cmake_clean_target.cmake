file(REMOVE_RECURSE
  "libhexllm_quant.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_quant.dir/awq.cc.o"
  "CMakeFiles/hexllm_quant.dir/awq.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/codebook_quant.cc.o"
  "CMakeFiles/hexllm_quant.dir/codebook_quant.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/codebooks.cc.o"
  "CMakeFiles/hexllm_quant.dir/codebooks.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/error_stats.cc.o"
  "CMakeFiles/hexllm_quant.dir/error_stats.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/group_quant.cc.o"
  "CMakeFiles/hexllm_quant.dir/group_quant.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/synthetic_weights.cc.o"
  "CMakeFiles/hexllm_quant.dir/synthetic_weights.cc.o.d"
  "CMakeFiles/hexllm_quant.dir/tile_quant.cc.o"
  "CMakeFiles/hexllm_quant.dir/tile_quant.cc.o.d"
  "libhexllm_quant.a"
  "libhexllm_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hexsim/device_profile.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/device_profile.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/device_profile.cc.o.d"
  "/root/repo/src/hexsim/dma.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/dma.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/dma.cc.o.d"
  "/root/repo/src/hexsim/hmx.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/hmx.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/hmx.cc.o.d"
  "/root/repo/src/hexsim/hvx.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/hvx.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/hvx.cc.o.d"
  "/root/repo/src/hexsim/rpcmem.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/rpcmem.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/rpcmem.cc.o.d"
  "/root/repo/src/hexsim/tcm.cc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/tcm.cc.o" "gcc" "src/hexsim/CMakeFiles/hexllm_hexsim.dir/tcm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hexllm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_hexsim.dir/device_profile.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/device_profile.cc.o.d"
  "CMakeFiles/hexllm_hexsim.dir/dma.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/dma.cc.o.d"
  "CMakeFiles/hexllm_hexsim.dir/hmx.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/hmx.cc.o.d"
  "CMakeFiles/hexllm_hexsim.dir/hvx.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/hvx.cc.o.d"
  "CMakeFiles/hexllm_hexsim.dir/rpcmem.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/rpcmem.cc.o.d"
  "CMakeFiles/hexllm_hexsim.dir/tcm.cc.o"
  "CMakeFiles/hexllm_hexsim.dir/tcm.cc.o.d"
  "libhexllm_hexsim.a"
  "libhexllm_hexsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_hexsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hexllm_hexsim.
# This may be replaced when dependencies are built.

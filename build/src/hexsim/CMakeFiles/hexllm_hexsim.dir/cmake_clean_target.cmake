file(REMOVE_RECURSE
  "libhexllm_hexsim.a"
)

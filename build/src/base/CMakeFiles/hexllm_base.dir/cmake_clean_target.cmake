file(REMOVE_RECURSE
  "libhexllm_base.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_base.dir/fp16.cc.o"
  "CMakeFiles/hexllm_base.dir/fp16.cc.o.d"
  "CMakeFiles/hexllm_base.dir/tensor.cc.o"
  "CMakeFiles/hexllm_base.dir/tensor.cc.o.d"
  "libhexllm_base.a"
  "libhexllm_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for hexllm_base.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_kernels.dir/attention.cc.o"
  "CMakeFiles/hexllm_kernels.dir/attention.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/exp_lut.cc.o"
  "CMakeFiles/hexllm_kernels.dir/exp_lut.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/gemm.cc.o"
  "CMakeFiles/hexllm_kernels.dir/gemm.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/lm_head.cc.o"
  "CMakeFiles/hexllm_kernels.dir/lm_head.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/misc_ops.cc.o"
  "CMakeFiles/hexllm_kernels.dir/misc_ops.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/mixed_gemm.cc.o"
  "CMakeFiles/hexllm_kernels.dir/mixed_gemm.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/softmax.cc.o"
  "CMakeFiles/hexllm_kernels.dir/softmax.cc.o.d"
  "CMakeFiles/hexllm_kernels.dir/tmac_gemv.cc.o"
  "CMakeFiles/hexllm_kernels.dir/tmac_gemv.cc.o.d"
  "libhexllm_kernels.a"
  "libhexllm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

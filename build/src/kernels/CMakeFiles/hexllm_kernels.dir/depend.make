# Empty dependencies file for hexllm_kernels.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libhexllm_kernels.a"
)

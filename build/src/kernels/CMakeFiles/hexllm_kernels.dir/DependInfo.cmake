
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/attention.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/attention.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/attention.cc.o.d"
  "/root/repo/src/kernels/exp_lut.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/exp_lut.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/exp_lut.cc.o.d"
  "/root/repo/src/kernels/gemm.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/gemm.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/gemm.cc.o.d"
  "/root/repo/src/kernels/lm_head.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/lm_head.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/lm_head.cc.o.d"
  "/root/repo/src/kernels/misc_ops.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/misc_ops.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/misc_ops.cc.o.d"
  "/root/repo/src/kernels/mixed_gemm.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/mixed_gemm.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/mixed_gemm.cc.o.d"
  "/root/repo/src/kernels/softmax.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/softmax.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/softmax.cc.o.d"
  "/root/repo/src/kernels/tmac_gemv.cc" "src/kernels/CMakeFiles/hexllm_kernels.dir/tmac_gemv.cc.o" "gcc" "src/kernels/CMakeFiles/hexllm_kernels.dir/tmac_gemv.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/hexllm_base.dir/DependInfo.cmake"
  "/root/repo/build/src/hexsim/CMakeFiles/hexllm_hexsim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/hexllm_quant.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for hexllm_llm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_llm.dir/model_config.cc.o"
  "CMakeFiles/hexllm_llm.dir/model_config.cc.o.d"
  "CMakeFiles/hexllm_llm.dir/sampling.cc.o"
  "CMakeFiles/hexllm_llm.dir/sampling.cc.o.d"
  "CMakeFiles/hexllm_llm.dir/transformer.cc.o"
  "CMakeFiles/hexllm_llm.dir/transformer.cc.o.d"
  "CMakeFiles/hexllm_llm.dir/weights.cc.o"
  "CMakeFiles/hexllm_llm.dir/weights.cc.o.d"
  "libhexllm_llm.a"
  "libhexllm_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libhexllm_llm.a"
)

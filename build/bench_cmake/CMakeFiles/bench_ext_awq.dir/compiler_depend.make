# Empty compiler generated dependencies file for bench_ext_awq.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_awq"
  "../bench/bench_ext_awq.pdb"
  "CMakeFiles/bench_ext_awq.dir/bench_ext_awq.cc.o"
  "CMakeFiles/bench_ext_awq.dir/bench_ext_awq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_awq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig15_dequant_ablation.
# This may be replaced when dependencies are built.

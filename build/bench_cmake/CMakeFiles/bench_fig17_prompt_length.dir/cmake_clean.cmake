file(REMOVE_RECURSE
  "../bench/bench_fig17_prompt_length"
  "../bench/bench_fig17_prompt_length.pdb"
  "CMakeFiles/bench_fig17_prompt_length.dir/bench_fig17_prompt_length.cc.o"
  "CMakeFiles/bench_fig17_prompt_length.dir/bench_fig17_prompt_length.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_prompt_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_prompt_length.
# This may be replaced when dependencies are built.

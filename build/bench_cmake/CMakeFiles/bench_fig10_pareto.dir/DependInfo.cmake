
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_pareto.cc" "bench_cmake/CMakeFiles/bench_fig10_pareto.dir/bench_fig10_pareto.cc.o" "gcc" "bench_cmake/CMakeFiles/bench_fig10_pareto.dir/bench_fig10_pareto.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tts/CMakeFiles/hexllm_tts.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hexllm_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/llm/CMakeFiles/hexllm_llm.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/hexllm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/hexllm_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/hexsim/CMakeFiles/hexllm_hexsim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/hexllm_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_table5_attention_accuracy.
# This may be replaced when dependencies are built.

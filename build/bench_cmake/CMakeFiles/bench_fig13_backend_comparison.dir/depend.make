# Empty dependencies file for bench_fig13_backend_comparison.
# This may be replaced when dependencies are built.

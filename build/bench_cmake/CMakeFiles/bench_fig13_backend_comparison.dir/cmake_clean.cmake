file(REMOVE_RECURSE
  "../bench/bench_fig13_backend_comparison"
  "../bench/bench_fig13_backend_comparison.pdb"
  "CMakeFiles/bench_fig13_backend_comparison.dir/bench_fig13_backend_comparison.cc.o"
  "CMakeFiles/bench_fig13_backend_comparison.dir/bench_fig13_backend_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_backend_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table4_tile_quant_accuracy.
# This may be replaced when dependencies are built.

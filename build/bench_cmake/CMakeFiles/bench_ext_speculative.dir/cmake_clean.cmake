file(REMOVE_RECURSE
  "../bench/bench_ext_speculative"
  "../bench/bench_ext_speculative.pdb"
  "CMakeFiles/bench_ext_speculative.dir/bench_ext_speculative.cc.o"
  "CMakeFiles/bench_ext_speculative.dir/bench_ext_speculative.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

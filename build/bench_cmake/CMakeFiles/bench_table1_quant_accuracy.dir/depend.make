# Empty dependencies file for bench_table1_quant_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_kernel_micro"
  "../bench/bench_kernel_micro.pdb"
  "CMakeFiles/bench_kernel_micro.dir/bench_kernel_micro.cc.o"
  "CMakeFiles/bench_kernel_micro.dir/bench_kernel_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

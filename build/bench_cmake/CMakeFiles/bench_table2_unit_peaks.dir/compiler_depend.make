# Empty compiler generated dependencies file for bench_table2_unit_peaks.
# This may be replaced when dependencies are built.

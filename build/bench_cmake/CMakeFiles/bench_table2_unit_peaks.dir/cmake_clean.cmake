file(REMOVE_RECURSE
  "../bench/bench_table2_unit_peaks"
  "../bench/bench_table2_unit_peaks.pdb"
  "CMakeFiles/bench_table2_unit_peaks.dir/bench_table2_unit_peaks.cc.o"
  "CMakeFiles/bench_table2_unit_peaks.dir/bench_table2_unit_peaks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_unit_peaks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

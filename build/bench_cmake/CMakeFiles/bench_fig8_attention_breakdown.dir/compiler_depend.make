# Empty compiler generated dependencies file for bench_fig8_attention_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig8_attention_breakdown"
  "../bench/bench_fig8_attention_breakdown.pdb"
  "CMakeFiles/bench_fig8_attention_breakdown.dir/bench_fig8_attention_breakdown.cc.o"
  "CMakeFiles/bench_fig8_attention_breakdown.dir/bench_fig8_attention_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_attention_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ext_tmac_gemv.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_tmac_gemv"
  "../bench/bench_ext_tmac_gemv.pdb"
  "CMakeFiles/bench_ext_tmac_gemv.dir/bench_ext_tmac_gemv.cc.o"
  "CMakeFiles/bench_ext_tmac_gemv.dir/bench_ext_tmac_gemv.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_tmac_gemv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ext_scheduler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_scheduler"
  "../bench/bench_ext_scheduler.pdb"
  "CMakeFiles/bench_ext_scheduler.dir/bench_ext_scheduler.cc.o"
  "CMakeFiles/bench_ext_scheduler.dir/bench_ext_scheduler.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

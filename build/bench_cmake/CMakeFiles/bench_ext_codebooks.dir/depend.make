# Empty dependencies file for bench_ext_codebooks.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_ext_codebooks"
  "../bench/bench_ext_codebooks.pdb"
  "CMakeFiles/bench_ext_codebooks.dir/bench_ext_codebooks.cc.o"
  "CMakeFiles/bench_ext_codebooks.dir/bench_ext_codebooks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_codebooks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

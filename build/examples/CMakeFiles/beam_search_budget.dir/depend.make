# Empty dependencies file for beam_search_budget.
# This may be replaced when dependencies are built.

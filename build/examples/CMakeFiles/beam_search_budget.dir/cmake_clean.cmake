file(REMOVE_RECURSE
  "CMakeFiles/beam_search_budget.dir/beam_search_budget.cpp.o"
  "CMakeFiles/beam_search_budget.dir/beam_search_budget.cpp.o.d"
  "beam_search_budget"
  "beam_search_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beam_search_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/hexllm_cli.dir/hexllm_cli.cpp.o"
  "CMakeFiles/hexllm_cli.dir/hexllm_cli.cpp.o.d"
  "hexllm_cli"
  "hexllm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hexllm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for hexllm_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/npu_kernels_tour.dir/npu_kernels_tour.cpp.o"
  "CMakeFiles/npu_kernels_tour.dir/npu_kernels_tour.cpp.o.d"
  "npu_kernels_tour"
  "npu_kernels_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npu_kernels_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for npu_kernels_tour.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/best_of_n_math.dir/best_of_n_math.cpp.o"
  "CMakeFiles/best_of_n_math.dir/best_of_n_math.cpp.o.d"
  "best_of_n_math"
  "best_of_n_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_of_n_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for best_of_n_math.
# This may be replaced when dependencies are built.

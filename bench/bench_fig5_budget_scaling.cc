// Figure 5: MATH500 accuracy vs generation budget (Best-of-N) for two on-device models —
// the motivating example for running test-time scaling on the NPU's idle compute.
#include <cstdio>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

int main() {
  using namespace htts;
  bench::Reporter rep("fig5_budget_scaling",
                      "Test-time scaling with generation budget (Best-of-N, MATH500)",
                      "Figure 5");

  const CapabilityModel cap;
  const int n_tasks = bench::SmokePreset() ? 100 : 500;
  const TaskSet tasks = GenerateTaskSet(Dataset::kMath500, n_tasks, 505);
  const OutcomeRewardModel orm;
  hexllm::Rng rng(5050);

  std::printf("%-26s", "budget N:");
  for (int n : {1, 2, 4, 8, 16}) {
    std::printf("%8d", n);
  }
  std::printf("\n");

  for (const hllm::ModelConfig* m : {&hllm::Qwen25_1_5B(), &hllm::Llama32_1B()}) {
    const double theta = cap.EffectiveTheta(*m, Dataset::kMath500, cap.DeployedWeightErr(*m),
                                            cap.lut_f16_attention_err());
    std::printf("%-26s", m->name.c_str());
    double acc1 = 0.0;
    double acc16 = 0.0;
    for (int n : {1, 2, 4, 8, 16}) {
      const MethodResult r = (n == 1) ? RunSingleSample(tasks, theta, 8, rng)
                                      : RunBestOfN(tasks, theta, orm, n, 8, rng);
      std::printf("%7.1f%%", 100.0 * r.accuracy);
      obs::Json& row = rep.AddRow("best_of_n_accuracy");
      row.Set("model", m->name);
      row.Set("budget", n);
      row.Set("accuracy_percent", 100.0 * r.accuracy);
      if (n == 1) {
        acc1 = 100.0 * r.accuracy;
      }
      if (n == 16) {
        acc16 = 100.0 * r.accuracy;
      }
    }
    std::printf("\n");
    if (m == &hllm::Qwen25_1_5B()) {
      rep.AddReference("qwen2.5-1.5b budget=1 accuracy", acc1, 23.1, "%");
      rep.AddReference("qwen2.5-1.5b budget=16 accuracy", acc16, 46.3, "%");
    }
  }
  rep.Note("accuracy improves significantly as the generation budget (max decode batch) "
           "grows — compute that would otherwise idle in the HMX unit.");
  return 0;
}

// Table 1: Llama3.2-1B-Instruct under AWQ-style per-group W4 vs QNN-style per-channel W4.
//
// The quantization errors are MEASURED by running this repo's quantizers; the capability
// model (calibrated on the AWQ/QNN accuracy anchor cells, DESIGN.md §5) converts them to
// task accuracy. The per-channel Wikitext perplexity is a genuine prediction.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Title("Per-group vs per-channel W4A16 quantization, Llama3.2-1B-Instruct",
               "Table 1");

  const CapabilityModel cap;
  const auto& model = hllm::Llama32_1B();
  const double group_err = cap.common_group_q4_err();
  const double pc_err = cap.per_channel_q4_err();

  std::printf("measured weight reconstruction error (rel RMS):\n");
  std::printf("  per-group (32)   : %.4f\n", group_err);
  std::printf("  per-channel      : %.4f   (%.1fx worse)\n", pc_err, pc_err / group_err);

  const auto math = htts::GenerateTaskSet(Dataset::kMath500, 4000, 1001);
  const auto gsm = htts::GenerateTaskSet(Dataset::kGsm8k, 4000, 1002);

  const auto acc = [&](const htts::TaskSet& tasks, Dataset d, double err) {
    return 100.0 * CapabilityModel::MeanAccuracy(tasks, cap.EffectiveTheta(model, d, err, 0.0));
  };

  std::printf("\n%-14s %18s %18s\n", "dataset", "AutoAWQ (W4A16)", "QNN (W4A16)");
  std::printf("%-14s %10.1f [15.9] %12.1f [2.1]\n", "MATH500 (up)",
              acc(math, Dataset::kMath500, group_err), acc(math, Dataset::kMath500, pc_err));
  std::printf("%-14s %10.1f [32.6] %12.1f [3.4]\n", "GSM8K (up)",
              acc(gsm, Dataset::kGsm8k, group_err), acc(gsm, Dataset::kGsm8k, pc_err));
  std::printf("%-14s %10.2f [19.42] %11.2f [28.99]\n", "Wiki PPL (dn)",
              cap.WikiPerplexity(model, group_err, 0.0),
              cap.WikiPerplexity(model, pc_err, 0.0));
  std::printf("\n[bracketed] = paper-reported value.\n");
  bench::Note("QNN's coarse per-channel quantization destroys reasoning ability while the "
              "fine-grained groups keep it usable — the motivation for tile quantization.");
  return 0;
}

// Table 1: Llama3.2-1B-Instruct under AWQ-style per-group W4 vs QNN-style per-channel W4.
//
// The quantization errors are MEASURED by running this repo's quantizers; the capability
// model (calibrated on the AWQ/QNN accuracy anchor cells, DESIGN.md §5) converts them to
// task accuracy. The per-channel Wikitext perplexity is a genuine prediction.
#include <cstdio>

#include "bench/reporter.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Reporter rep("table1_quant_accuracy",
                      "Per-group vs per-channel W4A16 quantization, Llama3.2-1B-Instruct",
                      "Table 1");

  const CapabilityModel cap;
  const auto& model = hllm::Llama32_1B();
  const double group_err = cap.common_group_q4_err();
  const double pc_err = cap.per_channel_q4_err();

  std::printf("measured weight reconstruction error (rel RMS):\n");
  std::printf("  per-group (32)   : %.4f\n", group_err);
  std::printf("  per-channel      : %.4f   (%.1fx worse)\n", pc_err, pc_err / group_err);
  obs::Json& err_row = rep.AddRow("weight_error");
  err_row.Set("per_group_rel_rms", group_err);
  err_row.Set("per_channel_rel_rms", pc_err);

  const int n_tasks = bench::SmokePreset() ? 500 : 4000;
  const auto math = htts::GenerateTaskSet(Dataset::kMath500, n_tasks, 1001);
  const auto gsm = htts::GenerateTaskSet(Dataset::kGsm8k, n_tasks, 1002);

  const auto acc = [&](const htts::TaskSet& tasks, Dataset d, double err) {
    return 100.0 * CapabilityModel::MeanAccuracy(tasks, cap.EffectiveTheta(model, d, err, 0.0));
  };

  const double math_awq = acc(math, Dataset::kMath500, group_err);
  const double math_qnn = acc(math, Dataset::kMath500, pc_err);
  const double gsm_awq = acc(gsm, Dataset::kGsm8k, group_err);
  const double gsm_qnn = acc(gsm, Dataset::kGsm8k, pc_err);
  const double ppl_awq = cap.WikiPerplexity(model, group_err, 0.0);
  const double ppl_qnn = cap.WikiPerplexity(model, pc_err, 0.0);

  std::printf("\n%-14s %18s %18s\n", "dataset", "AutoAWQ (W4A16)", "QNN (W4A16)");
  std::printf("%-14s %10.1f [15.9] %12.1f [2.1]\n", "MATH500 (up)", math_awq, math_qnn);
  std::printf("%-14s %10.1f [32.6] %12.1f [3.4]\n", "GSM8K (up)", gsm_awq, gsm_qnn);
  std::printf("%-14s %10.2f [19.42] %11.2f [28.99]\n", "Wiki PPL (dn)", ppl_awq, ppl_qnn);
  std::printf("\n[bracketed] = paper-reported value.\n");

  const auto record = [&](const char* dataset, double awq, double qnn, double paper_awq,
                          double paper_qnn) {
    obs::Json& row = rep.AddRow("accuracy");
    row.Set("dataset", dataset);
    row.Set("awq", awq);
    row.Set("qnn", qnn);
    rep.AddReference(std::string(dataset) + " AWQ", awq, paper_awq);
    rep.AddReference(std::string(dataset) + " QNN", qnn, paper_qnn);
  };
  record("MATH500", math_awq, math_qnn, 15.9, 2.1);
  record("GSM8K", gsm_awq, gsm_qnn, 32.6, 3.4);
  record("Wiki PPL", ppl_awq, ppl_qnn, 19.42, 28.99);

  rep.Note("QNN's coarse per-channel quantization destroys reasoning ability while the "
           "fine-grained groups keep it usable — the motivation for tile quantization.");
  return 0;
}

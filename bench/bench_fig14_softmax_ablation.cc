// Figure 14: on-chip softmax latency with the three exp implementations (F32 polynomial,
// F16 polynomial, LUT/vgather) across attention workloads — query length {1, 4, 16} x
// KV length {1024, 4096, 16384}, measured on the OnePlus 12 profile.
//
// Small workloads run the functional instruction-level kernels (the packet counts are
// identical to the cost model by construction — tests assert it); the 16384-length rows use
// the cost model directly to keep the bench fast.
#include <cstdio>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/softmax.h"

int main() {
  using hkern::SoftmaxVariant;
  bench::Reporter rep("fig14_softmax_ablation",
                      "On-chip softmax ablation: exp via F32 poly / F16 poly / LUT",
                      "Figure 14");

  const auto& profile = hexsim::OnePlus12();
  std::printf("%-6s %-8s %12s %12s %12s %12s %12s\n", "q", "kv", "F32(us)", "F16(us)",
              "LUT(us)", "LUT/F32", "LUT/F16");

  double min_speedup = 1e9;
  double max_speedup = 0.0;
  for (const int q : {1, 4, 16}) {
    for (const int kv : {1024, 4096, 16384}) {
      const double hz = profile.hvx_freq_ghz * 1e9;
      const double f32 =
          static_cast<double>(hkern::SoftmaxPacketCost(profile, SoftmaxVariant::kF32Poly, q, kv)) / hz;
      const double f16 =
          static_cast<double>(hkern::SoftmaxPacketCost(profile, SoftmaxVariant::kF16Poly, q, kv)) / hz;
      const double lut =
          static_cast<double>(hkern::SoftmaxPacketCost(profile, SoftmaxVariant::kLut, q, kv)) / hz;
      const double s32 = f32 / lut;
      const double s16 = f16 / lut;
      min_speedup = std::min(min_speedup, s32);
      max_speedup = std::max(max_speedup, s32);
      std::printf("%-6d %-8d %12.1f %12.1f %12.1f %11.2fx %11.2fx\n", q, kv, f32 * 1e6,
                  f16 * 1e6, lut * 1e6, s32, s16);
      obs::Json& row = rep.AddRow("softmax_ablation");
      row.Set("q_len", q);
      row.Set("kv_len", kv);
      row.Set("f32_us", f32 * 1e6);
      row.Set("f16_us", f16 * 1e6);
      row.Set("lut_us", lut * 1e6);
      row.Set("lut_speedup_vs_f32", s32);
      row.Set("lut_speedup_vs_f16", s16);
    }
  }
  std::printf("\nLUT speedup over F32 exp across workloads: %.2fx - %.2fx   [paper: 1.26x - "
              "2.19x]\n", min_speedup, max_speedup);
  rep.AddReference("lut speedup vs f32, min", min_speedup, 1.26, "x");
  rep.AddReference("lut speedup vs f32, max", max_speedup, 2.19, "x");

  // Functional cross-check: run the emulated kernel at one workload and verify the packet
  // count equals the cost model.
  {
    hexsim::NpuDevice dev(profile);
    hkern::ExpLut lut(dev);
    const int rows = 4;
    const int cols = 1024;
    auto* s = reinterpret_cast<hexllm::F16*>(dev.tcm().Alloc(rows * cols * 2));
    hexllm::Rng rng(14);
    for (int i = 0; i < rows * cols; ++i) {
      s[i] = hexllm::F16(static_cast<float>(rng.NextGaussian()));
    }
    dev.hvx().ResetPackets();
    hkern::SoftmaxRowsF16(dev, SoftmaxVariant::kLut, &lut, s, rows, cols);
    const int64_t emulated = dev.hvx().packets();
    const int64_t model =
        hkern::SoftmaxPacketCost(profile, SoftmaxVariant::kLut, rows, cols);
    std::printf("functional cross-check (q=4, kv=1024, LUT): emulated %lld packets, cost "
                "model %lld -> %s\n",
                static_cast<long long>(emulated), static_cast<long long>(model),
                emulated == model ? "exact match" : "MISMATCH");
    obs::Json& row = rep.AddRow("functional_cross_check");
    row.Set("emulated_packets", emulated);
    row.Set("cost_model_packets", model);
    row.Set("exact_match", emulated == model);
  }
  rep.Note("larger query lengths reduce the LUT advantage at short contexts (vgather bank "
           "contention); long KV restores it. The LUT is also MORE accurate than the F16 "
           "polynomial since its entries are precomputed in double precision (§7.4).");
  return 0;
}

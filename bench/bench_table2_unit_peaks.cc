// Table 2: HVX vs HMX FP16 GEMM throughput and memory read bandwidth, plus the Table 3
// device list. The HMX number is measured by running the functional tile engine on a full
// 1024^3 GEMM with TCM-resident operands; the HVX number comes from the packet-exact cost
// model (validated against the instruction-level emulation in tests; the emulation also runs
// here at 128^3 as a cross-check).
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/gemm.h"
#include "src/quant/tile_quant.h"

int main() {
  using hexllm::F16;
  using hexsim::NpuDevice;

  bench::Reporter rep("table2_unit_peaks", "HVX vs HMX unit peaks (Hexagon V75 / OnePlus 12)",
                      "Tables 2 and 3");

  rep.Section("Table 3: evaluation devices");
  std::printf("%-18s %-22s %-10s\n", "Device", "SoC", "NPU Arch.");
  for (const auto* d : hexsim::AllDevices()) {
    std::printf("%-18s %-22s %-10s\n", d->device_name.c_str(), d->soc_name.c_str(),
                hexsim::NpuArchName(d->arch));
    obs::Json& row = rep.AddRow("device");
    row.Set("device", d->device_name);
    row.Set("soc", d->soc_name);
    row.Set("npu_arch", hexsim::NpuArchName(d->arch));
  }

  const auto& profile = hexsim::OnePlus12();
  const double flops_1k = 2.0 * 1024 * 1024 * 1024;

  // --- HMX: functional 1024^3 GEMM, operands in TCM ---
  rep.Section("FP16 GEMM 1024x1024x1024, operands in TCM");
  double hmx_gflops = 0.0;
  {
    NpuDevice dev(profile);
    hexllm::Rng rng(2);
    const int n = 1024;
    std::vector<F16> a(static_cast<size_t>(n) * n);
    std::vector<float> w(static_cast<size_t>(n) * n);
    for (auto& v : a) {
      v = F16(static_cast<float>(rng.NextGaussian() * 0.1));
    }
    for (auto& v : w) {
      v = static_cast<float>(rng.NextGaussian() * 0.1);
    }
    const auto stream = hquant::PermuteToHmxOrder(w, n, n);
    std::vector<F16> b_tiles(stream.size());
    for (size_t i = 0; i < stream.size(); ++i) {
      b_tiles[i] = F16(stream[i]);
    }
    std::vector<F16> c(static_cast<size_t>(n) * n);
    const double secs =
        hkern::GemmF16Hmx(dev, a.data(), b_tiles.data(), c.data(), n, n, n, true);
    hmx_gflops = flops_1k / secs / 1e9;
    std::printf("HMX (functional run, %lld tile ops): %.2f GFLOPS   [paper: 12032.54]\n",
                static_cast<long long>(dev.hmx().tile_ops()), hmx_gflops);
    obs::Json& row = rep.AddRow("gemm_peak");
    row.Set("unit", "hmx");
    row.Set("gflops", hmx_gflops);
    row.Set("tile_ops", dev.hmx().tile_ops());
  }

  // --- HVX: packet-exact cost model at 1024^3, emulation cross-check at 128^3 ---
  double hvx_gflops = 0.0;
  {
    const int64_t packets = hkern::GemmF16HvxPackets(profile, 1024, 1024, 1024);
    const double secs = static_cast<double>(packets) / (profile.hvx_freq_ghz * 1e9);
    hvx_gflops = flops_1k / secs / 1e9;
    std::printf("HVX, 1 thread (cost model, %lld packets): %.2f GFLOPS   [paper: 32.93]\n",
                static_cast<long long>(packets), hvx_gflops);
    obs::Json& row = rep.AddRow("gemm_peak");
    row.Set("unit", "hvx");
    row.Set("gflops", hvx_gflops);
    row.Set("packets", packets);

    NpuDevice dev(profile);
    const int n = 128;
    std::vector<F16> a(static_cast<size_t>(n) * n, F16(0.1f));
    std::vector<F16> b(static_cast<size_t>(n) * n, F16(0.1f));
    std::vector<F16> c(static_cast<size_t>(n) * n);
    const double secs_small = hkern::GemmF16Hvx(dev, a.data(), b.data(), c.data(), n, n, n);
    const double gflops_small = 2.0 * n * n * n / secs_small / 1e9;
    std::printf("HVX emulation cross-check at 128^3: %.2f GFLOPS (matches cost model by "
                "construction)\n",
                gflops_small);
    obs::Json& check = rep.AddRow("gemm_peak");
    check.Set("unit", "hvx_emulation_128");
    check.Set("gflops", gflops_small);
  }
  std::printf("HMX / HVX ratio: %.0fx   [paper: ~365x]\n", hmx_gflops / hvx_gflops);
  rep.AddReference("hmx fp16 gemm gflops", hmx_gflops, 12032.54, "GFLOPS");
  rep.AddReference("hvx fp16 gemm gflops", hvx_gflops, 32.93, "GFLOPS");
  rep.AddReference("hmx/hvx ratio", hmx_gflops / hvx_gflops, 365.0, "x");

  rep.Section("memory read bandwidth");
  std::printf("DMA (DDR -> TCM, large 1D blocks): %.0f GB/s   [paper: 60 (DMA)]\n",
              profile.dma_read_gbps);
  std::printf("HVX core data path from DDR:       %.0f GB/s   [paper: 26, 'below 30']\n",
              profile.hvx_core_read_gbps);
  rep.AddReference("dma read bandwidth", profile.dma_read_gbps, 60.0, "GB/s");
  rep.AddReference("hvx core read bandwidth", profile.hvx_core_read_gbps, 26.0, "GB/s");
  rep.Note("the >300x matrix/vector imbalance plus the weak vector memory path is the "
           "challenge the tile-quantization and LUT designs answer.");
  return 0;
}

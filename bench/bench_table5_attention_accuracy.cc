// Table 5: FP16 FlashAttention with LUT softmax vs conventional FP32 attention,
// Qwen2.5-1.5B. The attention deviation is MEASURED by running the simulator's FlashAttention
// kernel against the FP32 reference; the capability model turns it into metric deltas.
#include <cstdio>

#include "bench/reporter.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Reporter rep("table5_attention_accuracy",
                      "FP16+LUT FlashAttention vs FP32 attention accuracy, Qwen2.5-1.5B",
                      "Table 5");

  const CapabilityModel cap;
  const auto& m = hllm::Qwen25_1_5B();
  const double werr = cap.tile_group_q4_err();  // both variants run the tile-quantized model
  const double aerr = cap.lut_f16_attention_err();

  std::printf("measured attention output deviation (FP16+LUT vs FP32 reference, rel RMS): "
              "%.5f\n", aerr);
  rep.AddRow("attention_deviation").Set("rel_rms", aerr);

  struct Cell {
    const char* label;
    Dataset dataset;
    double paper_lut;
    double paper_f32;
  };
  const Cell cells[] = {{"WinoGrande (up)", Dataset::kWinoGrande, 62.796, 62.559},
                        {"MMLU (up)", Dataset::kMmlu, 35.207, 35.465}};

  std::printf("\n%-16s %14s %16s\n", "dataset", "Our LUT16 FA", "F32 Attention");
  for (const Cell& c : cells) {
    const double lut = cap.ChoiceAccuracy(c.dataset, m, werr, aerr);
    const double f32 = cap.ChoiceAccuracy(c.dataset, m, werr, 0.0);
    std::printf("%-16s %7.3f [%.3f] %9.3f [%.3f]\n", c.label, lut, c.paper_lut, f32,
                c.paper_f32);
    obs::Json& row = rep.AddRow("choice_accuracy");
    row.Set("dataset", c.label);
    row.Set("lut_fa", lut);
    row.Set("f32_attention", f32);
    rep.AddReference(std::string(c.label) + " LUT FA", lut, c.paper_lut, "%");
    rep.AddReference(std::string(c.label) + " F32 attention", f32, c.paper_f32, "%");
  }
  const double ppl_lut = cap.WikiPerplexity(m, werr, aerr);
  const double ppl_f32 = cap.WikiPerplexity(m, werr, 0.0);
  std::printf("%-16s %7.3f [10.205] %9.3f [10.206]\n", "Wiki PPL (dn)", ppl_lut, ppl_f32);
  obs::Json& row = rep.AddRow("perplexity");
  row.Set("dataset", "Wiki PPL (dn)");
  row.Set("lut_fa", ppl_lut);
  row.Set("f32_attention", ppl_f32);
  rep.AddReference("Wiki PPL LUT FA", ppl_lut, 10.205, "ppl");
  rep.AddReference("Wiki PPL F32 attention", ppl_f32, 10.206, "ppl");
  std::printf("\n[bracketed] = paper-reported value.\n");
  rep.Note("replacing the non-accumulation parts of attention with FP16 + the 64 KiB exp "
           "LUT has no noticeable accuracy impact — the deviation is ~100x smaller than "
           "the weight-quantization error.");
  return 0;
}

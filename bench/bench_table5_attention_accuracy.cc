// Table 5: FP16 FlashAttention with LUT softmax vs conventional FP32 attention,
// Qwen2.5-1.5B. The attention deviation is MEASURED by running the simulator's FlashAttention
// kernel against the FP32 reference; the capability model turns it into metric deltas.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Title("FP16+LUT FlashAttention vs FP32 attention accuracy, Qwen2.5-1.5B", "Table 5");

  const CapabilityModel cap;
  const auto& m = hllm::Qwen25_1_5B();
  const double werr = cap.tile_group_q4_err();  // both variants run the tile-quantized model
  const double aerr = cap.lut_f16_attention_err();

  std::printf("measured attention output deviation (FP16+LUT vs FP32 reference, rel RMS): "
              "%.5f\n", aerr);

  std::printf("\n%-16s %14s %16s\n", "dataset", "Our LUT16 FA", "F32 Attention");
  std::printf("%-16s %7.3f [62.796] %9.3f [62.559]\n", "WinoGrande (up)",
              cap.ChoiceAccuracy(Dataset::kWinoGrande, m, werr, aerr),
              cap.ChoiceAccuracy(Dataset::kWinoGrande, m, werr, 0.0));
  std::printf("%-16s %7.3f [35.207] %9.3f [35.465]\n", "MMLU (up)",
              cap.ChoiceAccuracy(Dataset::kMmlu, m, werr, aerr),
              cap.ChoiceAccuracy(Dataset::kMmlu, m, werr, 0.0));
  std::printf("%-16s %7.3f [10.205] %9.3f [10.206]\n", "Wiki PPL (dn)",
              cap.WikiPerplexity(m, werr, aerr), cap.WikiPerplexity(m, werr, 0.0));
  std::printf("\n[bracketed] = paper-reported value.\n");
  bench::Note("replacing the non-accumulation parts of attention with FP16 + the 64 KiB exp "
              "LUT has no noticeable accuracy impact — the deviation is ~100x smaller than "
              "the weight-quantization error.");
  return 0;
}

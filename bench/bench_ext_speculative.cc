// Extension bench (§9, implemented): speculative decoding on the NPU engine. The verify
// pass of generate-then-verify rides the same idle HMX rows as test-time scaling, so a
// 0.5B draft accelerates 1.5B/3B targets nearly for free on the matrix unit.
#include <cstdio>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/tts/capability_model.h"
#include "src/tts/speculative.h"

int main() {
  using namespace htts;
  bench::Reporter rep("ext_speculative",
                      "Speculative decoding with a 0.5B draft (extension of §9)",
                      "Related work §9");

  const CapabilityModel cap;
  const auto& device = hexsim::OnePlus12();
  const auto& draft = hllm::Qwen25_0_5B();

  hrt::EngineOptions dro;
  dro.model = &draft;
  dro.device = &device;
  const hrt::Engine draft_engine(dro);
  // Combining extensions: the draft decodes at batch 1, exactly T-MAC GEMV's sweet spot
  // (bench_ext_tmac_gemv), while the target keeps the HMX path for its batched verify.
  hrt::EngineOptions dro_tmac = dro;
  dro_tmac.use_tmac_gemv = true;
  const hrt::Engine tmac_draft_engine(dro_tmac);

  for (const auto* target : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions to;
    to.model = target;
    to.device = &device;
    const hrt::Engine target_engine(to);
    const double beta = SpeculativeAcceptanceRate(cap, draft, *target);

    rep.Section(std::string("draft ") + draft.name + " -> target " + target->name);
    std::printf("acceptance rate beta = %.2f (from the capability-model skill gap)\n", beta);
    std::printf("%-8s %16s %14s %14s %10s %16s\n", "gamma", "tokens/cycle", "cycle(ms)",
                "tokens/s", "speedup", "+T-MAC draft");
    for (int gamma : {1, 2, 4, 6, 8}) {
      const auto r = EvaluateSpeculative(target_engine, draft_engine, beta, gamma, 1024);
      const auto rt =
          EvaluateSpeculative(target_engine, tmac_draft_engine, beta, gamma, 1024);
      std::printf("%-8d %16.2f %14.1f %14.1f %9.2fx %14.2fx\n", gamma, r.tokens_per_cycle,
                  r.cycle_seconds * 1e3, r.tokens_per_second, r.speedup, rt.speedup);
      obs::Json& row = rep.AddRow("speculative");
      row.Set("target", target->name);
      row.Set("gamma", gamma);
      row.Set("beta", beta);
      row.Set("tokens_per_cycle", r.tokens_per_cycle);
      row.Set("tokens_per_second", r.tokens_per_second);
      row.Set("speedup", r.speedup);
      row.Set("speedup_tmac_draft", rt.speedup);
    }
    // Monte-Carlo sanity check of the acceptance process.
    hexllm::Rng rng(9);
    const double mc = SimulateTokensPerCycle(beta, 4, 20000, rng);
    const auto closed = EvaluateSpeculative(target_engine, draft_engine, beta, 4, 1024);
    std::printf("MC check (gamma=4): simulated %.3f tokens/cycle vs closed form %.3f\n", mc,
                closed.tokens_per_cycle);
    obs::Json& mc_row = rep.AddRow("monte_carlo_check");
    mc_row.Set("target", target->name);
    mc_row.Set("simulated_tokens_per_cycle", mc);
    mc_row.Set("closed_form_tokens_per_cycle", closed.tokens_per_cycle);
  }
  rep.Note("verification of gamma+1 tokens costs barely more than one decode step — the "
           "same §3.2 free-compute effect test-time scaling exploits. Speculative "
           "decoding and parallel TTS are the two faces of generate-then-verify.");
  return 0;
}

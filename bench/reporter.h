// bench::Reporter — the reproduction harness's report writer.
//
// Every bench constructs one Reporter, prints its human-readable rows exactly as before
// (the Reporter reproduces the old Title/Section/Note banners), and additionally records
// structured results: tagged rows, measured-vs-paper reference comparisons, free-form notes,
// and obs::MetricsSnapshot attachments. On destruction the Reporter writes
// `BENCH_<name>.json` — a schema-versioned machine-readable artifact (layout frozen in
// docs/metrics_schema.md) that CI validates and archives.
//
// Environment:
//   HEXLLM_BENCH_OUT_DIR  directory for the JSON artifact (default: current directory)
//   HEXLLM_BENCH_SMOKE=1  benches that honor SmokePreset() shrink their sweeps for CI
//
// Usage:
//   bench::Reporter rep("fig11_decode_throughput",
//                       "End-to-end decoding throughput vs batch size", "Figure 11");
//   rep.Section("OnePlus 13 (8 Elite)");
//   obs::Json& row = rep.AddRow("decode_throughput");   // valid until the next AddRow
//   row.Set("model", "qwen2.5-1.5b");
//   row.Set("batch", 16);
//   row.Set("tokens_per_second", tps);
//   rep.AddReference("qwen2.5-1.5b b=16 tokens/s", tps, 60.4, "tokens/s");
//   rep.AttachMetrics(result.metrics, "best_of_n");
//   rep.Note("throughput rises strongly with batch ...");
#ifndef BENCH_REPORTER_H_
#define BENCH_REPORTER_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

// Injected by bench/CMakeLists.txt from `git rev-parse --short HEAD` at configure time.
#ifndef HEXLLM_GIT_SHA
#define HEXLLM_GIT_SHA "unknown"
#endif

namespace bench {

// Version of the BENCH_*.json layout. Additive fields do NOT bump this; renaming or
// retyping an existing field does (docs/metrics_schema.md).
inline constexpr int kBenchSchemaVersion = 1;

// True when HEXLLM_BENCH_SMOKE=1: benches shrink their sweeps to a CI-sized preset while
// keeping the report layout identical.
inline bool SmokePreset() {
  const char* v = std::getenv("HEXLLM_BENCH_SMOKE");
  return v != nullptr && v[0] == '1';
}

class Reporter {
 public:
  Reporter(std::string_view name, std::string_view title, std::string_view paper_ref)
      : name_(name), title_(title), paper_ref_(paper_ref) {
    std::printf("\n================================================================\n");
    std::printf("%s\n(reproduces %s)\n", title_.c_str(), paper_ref_.c_str());
    std::printf("================================================================\n");
  }

  ~Reporter() { Write(); }
  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  // Prints the section banner; subsequent rows carry the section name.
  void Section(std::string_view name) {
    section_ = std::string(name);
    std::printf("\n--- %s ---\n", section_.c_str());
  }

  void Note(std::string_view text) {
    notes_.emplace_back(text);
    std::printf("note: %s\n", notes_.back().c_str());
  }

  // Appends a structured result row tagged with `series` (and the current section, if any)
  // and returns it for field assignment. The reference is valid until the next AddRow.
  obs::Json& AddRow(std::string_view series) {
    rows_.push_back(obs::Json::Object());
    obs::Json& row = rows_.back();
    row.Set("series", std::string(series));
    if (!section_.empty()) {
      row.Set("section", section_);
    }
    return row;
  }

  // Records a measured value next to the value the paper reports for it — the comparisons
  // EXPERIMENTS.md tracks per figure/table.
  void AddReference(std::string_view metric, double measured, double paper_value,
                    std::string_view unit = {}) {
    obs::Json ref = obs::Json::Object();
    ref.Set("metric", std::string(metric));
    ref.Set("measured", measured);
    ref.Set("paper", paper_value);
    if (!unit.empty()) {
      ref.Set("unit", std::string(unit));
    }
    references_.push_back(std::move(ref));
  }

  // Attaches a full metrics snapshot (serving runs, simulated-device activity profiles).
  void AttachMetrics(const obs::MetricsSnapshot& snapshot, std::string_view label = {}) {
    obs::Json entry = obs::Json::Object();
    entry.Set("label", std::string(label));
    entry.Set("snapshot", snapshot.ToJson());
    metrics_.push_back(std::move(entry));
  }

  std::string OutputPath() const {
    const char* dir = std::getenv("HEXLLM_BENCH_OUT_DIR");
    const std::string d = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    return d + "/BENCH_" + name_ + ".json";
  }

  // Writes the artifact (idempotent; the destructor calls it). A write failure warns on
  // stderr instead of failing the bench — the text output already happened.
  void Write() {
    if (written_) {
      return;
    }
    written_ = true;
    obs::Json root = obs::Json::Object();
    root.Set("schema_version", kBenchSchemaVersion);
    root.Set("bench", name_);
    root.Set("title", title_);
    root.Set("paper_ref", paper_ref_);
    root.Set("git_sha", HEXLLM_GIT_SHA);
    root.Set("smoke", SmokePreset());
    // Environment knobs that shape the run (additive field, no schema bump —
    // docs/metrics_schema.md). Unset knobs record as "" so any two reports diff
    // field-for-field regardless of which knobs the runs exported.
    obs::Json env = obs::Json::Object();
    for (const char* knob :
         {"HEXLLM_KV_DTYPE", "HEXLLM_NUM_THREADS", "HEXLLM_SPEC_GAMMA",
          "HEXLLM_KV_OFFLOAD_GBPS", "HEXLLM_ATTN_SINK_BLOCKS", "HEXLLM_ATTN_WINDOW_BLOCKS",
          "HEXLLM_BENCH_SMOKE"}) {
      const char* v = std::getenv(knob);
      env.Set(knob, std::string(v != nullptr ? v : ""));
    }
    root.Set("env", std::move(env));
    obs::Json notes = obs::Json::Array();
    for (const std::string& n : notes_) {
      notes.Append(n);
    }
    root.Set("notes", std::move(notes));
    obs::Json rows = obs::Json::Array();
    for (obs::Json& r : rows_) {
      rows.Append(std::move(r));
    }
    root.Set("rows", std::move(rows));
    obs::Json refs = obs::Json::Array();
    for (obs::Json& r : references_) {
      refs.Append(std::move(r));
    }
    root.Set("references", std::move(refs));
    obs::Json metrics = obs::Json::Array();
    for (obs::Json& m : metrics_) {
      metrics.Append(std::move(m));
    }
    root.Set("metrics", std::move(metrics));
    const std::string path = OutputPath();
    if (obs::WriteFile(path, root.Dump(2) + "\n")) {
      std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[bench] warning: could not write %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  std::string title_;
  std::string paper_ref_;
  std::string section_;
  std::vector<std::string> notes_;
  std::vector<obs::Json> rows_;
  std::vector<obs::Json> references_;
  std::vector<obs::Json> metrics_;
  bool written_ = false;
};

}  // namespace bench

#endif  // BENCH_REPORTER_H_

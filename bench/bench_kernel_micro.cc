// Host-side micro-benchmarks (google-benchmark): wall-clock throughput of the
// instruction-level emulation for the key kernels. This is the complement to the
// simulated-cycle benches — it measures how fast the SIMULATOR itself runs, which matters
// for anyone extending the functional test coverage.
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/softmax.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

namespace {

using hexllm::F16;

void BM_QuantizeQ4(benchmark::State& state) {
  hexllm::Rng rng(1);
  std::vector<float> values(static_cast<size_t>(state.range(0)));
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian());
  }
  for (auto _ : state) {
    auto blocks = hquant::QuantizeQ4_0(values);
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeQ4)->Arg(1 << 14)->Arg(1 << 16);

void BM_TileGroupQuantize(benchmark::State& state) {
  hexllm::Rng rng(2);
  const int64_t n = state.range(0);
  const auto w = hquant::GenerateLlmLikeMatrix(n, n, rng);
  for (auto _ : state) {
    auto blocks = hquant::TileGroupQuantizeQ4(w, n, n);
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_TileGroupQuantize)->Arg(256)->Arg(512);

void BM_DequantCoalescedLutEmulation(benchmark::State& state) {
  hexllm::Rng rng(3);
  const int64_t elems = state.range(0);
  std::vector<float> values(static_cast<size_t>(elems));
  for (auto& v : values) {
    v = static_cast<float>(rng.NextGaussian() * 0.05);
  }
  const auto sbs = hquant::CoalesceSuperblocks(hquant::QuantizeQ4_0(values));
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  auto* out = reinterpret_cast<F16*>(dev.tcm().Alloc(elems * 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hkern::DequantCoalescedLut(dev, sbs, out));
  }
  state.SetItemsProcessed(state.iterations() * elems);
}
BENCHMARK(BM_DequantCoalescedLutEmulation)->Arg(1 << 16)->Arg(1 << 18);

void BM_SoftmaxLutEmulation(benchmark::State& state) {
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hkern::ExpLut lut(dev);
  const int rows = 4;
  const int cols = static_cast<int>(state.range(0));
  auto* s = reinterpret_cast<F16*>(dev.tcm().Alloc(static_cast<int64_t>(rows) * cols * 2));
  hexllm::Rng rng(4);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < rows * cols; ++i) {
      s[i] = F16(static_cast<float>(rng.NextGaussian()));
    }
    state.ResumeTiming();
    hkern::SoftmaxRowsF16(dev, hkern::SoftmaxVariant::kLut, &lut, s, rows, cols);
  }
  state.SetItemsProcessed(state.iterations() * rows * cols);
}
BENCHMARK(BM_SoftmaxLutEmulation)->Arg(1024)->Arg(4096);

void BM_HmxTileMacc(benchmark::State& state) {
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  auto* a = reinterpret_cast<F16*>(dev.tcm().Alloc(2048));
  auto* b = reinterpret_cast<F16*>(dev.tcm().Alloc(2048));
  hexllm::Rng rng(5);
  for (int i = 0; i < 1024; ++i) {
    a[i] = F16(static_cast<float>(rng.NextGaussian()));
    b[i] = F16(static_cast<float>(rng.NextGaussian()));
  }
  std::vector<float> acc(1024, 0.0f);
  for (auto _ : state) {
    dev.hmx().TileMacc(dev.tcm(), a, b, acc.data());
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 32 * 2);  // flops
}
BENCHMARK(BM_HmxTileMacc);

void BM_FlashAttentionEmulation(benchmark::State& state) {
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hkern::ExpLut lut(dev);
  const int q_len = 4;
  const int kv_len = static_cast<int>(state.range(0));
  const int d = 64;
  hexllm::Rng rng(6);
  std::vector<F16> q(static_cast<size_t>(q_len) * d), o(q.size());
  std::vector<F16> k(static_cast<size_t>(kv_len) * d), v(k.size());
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian()));
    v[i] = F16(static_cast<float>(rng.NextGaussian()));
  }
  for (auto _ : state) {
    hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), k.data(),
                             v.data(), o.data(), q_len, kv_len, d, 0.125f);
    benchmark::DoNotOptimize(o.data());
  }
  state.SetItemsProcessed(state.iterations() * q_len * kv_len);
}
BENCHMARK(BM_FlashAttentionEmulation)->Arg(512)->Arg(2048);

// Keeps the usual console output while also recording every run as a report row, so
// bench_kernel_micro emits BENCH_kernel_micro.json like the other targets.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bench::Reporter& rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      obs::Json& row = rep_.AddRow("micro");
      row.Set("benchmark", run.benchmark_name());
      row.Set("real_time", run.GetAdjustedRealTime());
      row.Set("cpu_time", run.GetAdjustedCPUTime());
      row.Set("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      row.Set("iterations", static_cast<int64_t>(run.iterations));
      for (const auto& [name, counter] : run.counters) {
        row.Set(name, counter.value);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Reporter& rep_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("kernel_micro",
                      "Host-side emulation micro-benchmarks (google-benchmark)",
                      "simulator engineering (no paper figure)");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  RecordingReporter reporter(rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

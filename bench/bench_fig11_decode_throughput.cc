// Figure 11: end-to-end decoding throughput vs batch size for the four on-device models on
// all three devices. Models that exceed a device's NPU address space are skipped, exactly as
// the paper only evaluates the 1B-class models on the OnePlus Ace3.
//
// A second section decodes the toy configuration through the FUNCTIONAL pipeline and
// measures host wall-clock, exercising the parallel execution layer (src/exec). Its
// decoded-token checksum is lane-count invariant: CI runs this bench at
// HEXLLM_NUM_THREADS=1 and =4 and asserts the reports agree (tools/compare_bench_tokens.py).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "bench/reporter.h"
#include "src/exec/thread_pool.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("fig11_decode_throughput",
                      "End-to-end decoding throughput vs batch size", "Figure 11");

  std::vector<const hexsim::DeviceProfile*> devices = hexsim::AllDevices();
  std::vector<int> batches = {1, 2, 4, 8, 16};
  if (bench::SmokePreset()) {
    devices = {&hexsim::OnePlus12()};
    batches = {1, 4, 16};
  }

  for (const auto* device : devices) {
    rep.Section(device->device_name + " (" + device->soc_name + ")");
    std::printf("%-24s", "batch:");
    for (int b : batches) {
      std::printf("%9d", b);
    }
    std::printf("   (tokens/s)\n");
    for (const auto* model : hllm::EvaluationModels()) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = device;
      const hrt::Engine engine(o);
      std::string reason;
      if (!engine.CanRun(&reason)) {
        std::printf("%-24s  skipped: exceeds NPU virtual address space\n",
                    model->name.c_str());
        obs::Json& row = rep.AddRow("skipped");
        row.Set("device", device->device_name);
        row.Set("model", model->name);
        row.Set("reason", reason);
        continue;
      }
      std::printf("%-24s", model->name.c_str());
      for (int b : batches) {
        const double tps = engine.DecodeThroughput(b, 1024);
        std::printf("%9.1f", tps);
        obs::Json& row = rep.AddRow("decode_throughput");
        row.Set("device", device->device_name);
        row.Set("model", model->name);
        row.Set("batch", b);
        row.Set("context", 1024);
        row.Set("tokens_per_second", tps);
      }
      std::printf("\n");
    }
  }

  // Headline cells EXPERIMENTS.md tracks (OnePlus 12; the simulator's calibrated outputs,
  // not paper cells — the paper states shapes, these pin regression drift).
  {
    hrt::EngineOptions o;
    o.model = &hllm::Qwen25_1_5B();
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    rep.AddReference("qwen2.5-1.5b b=1 tokens/s (OnePlus 12)", engine.DecodeThroughput(1, 1024),
                     22.7, "tokens/s");
    rep.AddReference("qwen2.5-1.5b b=16 tokens/s (OnePlus 12)",
                     engine.DecodeThroughput(16, 1024), 198.3, "tokens/s");
    obs::Registry reg;
    engine.ExportMetrics(reg, 16, 1024);
    rep.AttachMetrics(reg.Snapshot(), "qwen2.5-1.5b b=16 ctx=1024 (OnePlus 12)");
  }
  // Functional decode: real numerics through the emulated kernels, timed on the HOST
  // clock. The greedy-argmax token stream feeds back into the model, so the checksum
  // certifies bit-identical decoding at any HEXLLM_NUM_THREADS (docs/threading_model.md).
  // Measured twice — dequant-once weight cache off, then on (the default) — so the report
  // carries the cache's host-time win; tokens and checksums must agree between the passes
  // (the cache replays its simulated charges, docs/performance.md).
  {
    const hllm::ModelConfig toy = hllm::ToyConfig();
    const hllm::ModelWeights weights = hllm::ModelWeights::Random(toy, 1234);
    std::vector<int> fbatches = {1, 2, 4, 8};
    int steps = 24;
    if (bench::SmokePreset()) {
      fbatches = {1, 4};
      steps = 8;
    }
    const int threads = hexec::MaxSlots();

    auto run_functional = [&](const char* row_name) {
      std::vector<double> tps;
      std::printf("%-8s%12s%16s%20s   (threads=%d)\n", "batch", "wall (ms)",
                  "host tokens/s", "token checksum", threads);
      for (const int batch : fbatches) {
        hexsim::NpuDevice dev(hexsim::OnePlus12());
        hllm::Transformer model(dev, weights, batch, /*max_context=*/steps + 8);
        std::vector<float> logits(static_cast<size_t>(batch) * toy.vocab);
        std::vector<int> tokens(static_cast<size_t>(batch));
        for (int b = 0; b < batch; ++b) {
          tokens[static_cast<size_t>(b)] = (7 * b + 1) % toy.vocab;
        }
        uint64_t checksum = 14695981039346656037ull;  // FNV-1a over the decoded stream
        const auto t0 = std::chrono::steady_clock::now();
        for (int s = 0; s < steps; ++s) {
          model.Step(tokens, logits);
          for (int b = 0; b < batch; ++b) {
            const int tok = hllm::ArgmaxToken(std::span<const float>(
                logits.data() + static_cast<size_t>(b) * toy.vocab,
                static_cast<size_t>(toy.vocab)));
            tokens[static_cast<size_t>(b)] = tok;
            checksum = (checksum ^ static_cast<uint64_t>(tok)) * 1099511628211ull;
          }
        }
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        const int64_t produced = static_cast<int64_t>(batch) * steps;
        char checksum_hex[20];
        std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                      static_cast<unsigned long long>(checksum));
        std::printf("%-8d%12.1f%16.1f%20s\n", batch, wall_s * 1e3,
                    static_cast<double>(produced) / wall_s, checksum_hex);
        obs::Json& row = rep.AddRow(row_name);
        row.Set("batch", batch);
        row.Set("steps", steps);
        row.Set("threads", threads);
        row.Set("tokens", produced);
        row.Set("token_checksum", checksum_hex);
        row.Set("wall_seconds", wall_s);
        row.Set("host_tokens_per_second", static_cast<double>(produced) / wall_s);
        tps.push_back(static_cast<double>(produced) / wall_s);
      }
      return tps;
    };

    const bool cache_default = hllm::WeightCacheEnabled();
    rep.Section("functional decode, toy config, weight cache OFF (host wall-clock)");
    hllm::SetWeightCacheEnabled(false);
    const std::vector<double> tps_nocache = run_functional("functional_decode_nocache");

    rep.Section("functional decode, toy config (host wall-clock)");
    hllm::SetWeightCacheEnabled(cache_default);
    const std::vector<double> tps_cached = run_functional("functional_decode");

    for (size_t i = 0; i < fbatches.size(); ++i) {
      std::printf("batch %-4d weight-cache host speedup: %.2fx\n", fbatches[i],
                  tps_cached[i] / tps_nocache[i]);
    }
    rep.Note("functional rows time the HOST emulation wall clock (not simulated seconds); "
             "token_checksum and tokens are bit-identical at any HEXLLM_NUM_THREADS and "
             "with the weight cache off (*_nocache rows), wall_seconds shrinks with lanes "
             "for batch >= 4. tools/compare_bench_perf.py --self asserts cached >= nocache "
             "within tolerance.");
  }
  rep.Note("throughput rises strongly with batch because the HMX tile rows were idle at "
           "batch 1; scaling is sub-linear because the CPU-resident lm_head grows with "
           "batch (~50% of step time at batch 16, §7.2.2).");
  return 0;
}

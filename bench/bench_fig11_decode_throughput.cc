// Figure 11: end-to-end decoding throughput vs batch size for the four on-device models on
// all three devices. Models that exceed a device's NPU address space are skipped, exactly as
// the paper only evaluates the 1B-class models on the OnePlus Ace3.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("fig11_decode_throughput",
                      "End-to-end decoding throughput vs batch size", "Figure 11");

  std::vector<const hexsim::DeviceProfile*> devices = hexsim::AllDevices();
  std::vector<int> batches = {1, 2, 4, 8, 16};
  if (bench::SmokePreset()) {
    devices = {&hexsim::OnePlus12()};
    batches = {1, 4, 16};
  }

  for (const auto* device : devices) {
    rep.Section(device->device_name + " (" + device->soc_name + ")");
    std::printf("%-24s", "batch:");
    for (int b : batches) {
      std::printf("%9d", b);
    }
    std::printf("   (tokens/s)\n");
    for (const auto* model : hllm::EvaluationModels()) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = device;
      const hrt::Engine engine(o);
      std::string reason;
      if (!engine.CanRun(&reason)) {
        std::printf("%-24s  skipped: exceeds NPU virtual address space\n",
                    model->name.c_str());
        obs::Json& row = rep.AddRow("skipped");
        row.Set("device", device->device_name);
        row.Set("model", model->name);
        row.Set("reason", reason);
        continue;
      }
      std::printf("%-24s", model->name.c_str());
      for (int b : batches) {
        const double tps = engine.DecodeThroughput(b, 1024);
        std::printf("%9.1f", tps);
        obs::Json& row = rep.AddRow("decode_throughput");
        row.Set("device", device->device_name);
        row.Set("model", model->name);
        row.Set("batch", b);
        row.Set("context", 1024);
        row.Set("tokens_per_second", tps);
      }
      std::printf("\n");
    }
  }

  // Headline cells EXPERIMENTS.md tracks (OnePlus 12; the simulator's calibrated outputs,
  // not paper cells — the paper states shapes, these pin regression drift).
  {
    hrt::EngineOptions o;
    o.model = &hllm::Qwen25_1_5B();
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    rep.AddReference("qwen2.5-1.5b b=1 tokens/s (OnePlus 12)", engine.DecodeThroughput(1, 1024),
                     22.7, "tokens/s");
    rep.AddReference("qwen2.5-1.5b b=16 tokens/s (OnePlus 12)",
                     engine.DecodeThroughput(16, 1024), 198.3, "tokens/s");
    obs::Registry reg;
    engine.ExportMetrics(reg, 16, 1024);
    rep.AttachMetrics(reg.Snapshot(), "qwen2.5-1.5b b=16 ctx=1024 (OnePlus 12)");
  }
  rep.Note("throughput rises strongly with batch because the HMX tile rows were idle at "
           "batch 1; scaling is sub-linear because the CPU-resident lm_head grows with "
           "batch (~50% of step time at batch 16, §7.2.2).");
  return 0;
}

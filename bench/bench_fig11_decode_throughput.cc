// Figure 11: end-to-end decoding throughput vs batch size for the four on-device models on
// all three devices. Models that exceed a device's NPU address space are skipped, exactly as
// the paper only evaluates the 1B-class models on the OnePlus Ace3.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/engine.h"

int main() {
  bench::Title("End-to-end decoding throughput vs batch size", "Figure 11");

  for (const auto* device : hexsim::AllDevices()) {
    bench::Section(device->device_name + " (" + device->soc_name + ")");
    std::printf("%-24s", "batch:");
    for (int b : {1, 2, 4, 8, 16}) {
      std::printf("%9d", b);
    }
    std::printf("   (tokens/s)\n");
    for (const auto* model : hllm::EvaluationModels()) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = device;
      const hrt::Engine engine(o);
      std::string reason;
      if (!engine.CanRun(&reason)) {
        std::printf("%-24s  skipped: exceeds NPU virtual address space\n",
                    model->name.c_str());
        continue;
      }
      std::printf("%-24s", model->name.c_str());
      for (int b : {1, 2, 4, 8, 16}) {
        std::printf("%9.1f", engine.DecodeThroughput(b, 1024));
      }
      std::printf("\n");
    }
  }
  bench::Note("throughput rises strongly with batch because the HMX tile rows were idle at "
              "batch 1; scaling is sub-linear because the CPU-resident lm_head grows with "
              "batch (~50% of step time at batch 16, §7.2.2).");
  return 0;
}

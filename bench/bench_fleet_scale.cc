// Fleet-scale serving benchmark: device count (1 -> 64) x router policy on a
// heterogeneous phone mix (V73/V75/V79 flagships, derated "little" bins, thermally
// throttled units), served through one FleetSimulator per cell on a session-heavy trace
// with registered shared system prompts.
//
// Reports per-cell goodput, energy per request, TTFT/TPOT p50/p99, prefix-registry hit
// rate, load imbalance, and the fleet KV peak. The 4-device session-affine cell is the
// determinism anchor: it runs TWICE (fresh devices each time) and must stream bit-identical
// per-request checksums, which are also emitted as serving_request rows so CI can diff the
// 1-thread and 4-thread reports with tools/compare_bench_tokens.py (docs/fleet.md).
#include <cstdint>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/reporter.h"
#include "src/fleet/fleet.h"
#include "src/frontend/serving_engine.h"
#include "src/frontend/traffic.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"

namespace {

// Session-heavy fleet workload: most initial arrivals open 3-turn dialogs with short think
// times, and well over half carry one of two registered 64-token system prompts. Scaled
// linearly with the fleet so every cell sees the same per-device pressure.
hfront::TrafficOptions FleetTraffic(int devices) {
  hfront::TrafficOptions t;
  t.arrivals = 6 * devices;
  t.seed = 2026;
  t.arrival_rate_hz = 150.0 * devices;
  t.burst_fraction = 0.3;
  t.burst_size = 4;
  t.mean_prompt_tokens = 40;
  t.min_prompt_tokens = 8;
  t.mean_decode_tokens = 16;
  t.min_decode_tokens = 4;
  t.interactive_fraction = 0.4;
  t.interactive_slo = {0.5, 0.2};
  t.session_fraction = 0.7;
  t.session_turns = 3;
  t.mean_think_s = 0.002;
  t.prefix_count = 2;
  t.prefix_tokens = 64;
  t.prefix_fraction = 0.6;
  if (bench::SmokePreset()) {
    // Fewer arrivals, but keep the 3-turn dialogs: the affine-vs-round-robin contrast
    // below lives in the follow-up turns.
    t.arrivals = 4 * devices;
  }
  return t;
}

hfleet::FleetOptions FleetConfig(int devices, hfleet::RouterPolicy policy) {
  hfleet::FleetOptions o;
  o.devices = hfleet::HeterogeneousFleet(devices);
  o.policy = policy;
  o.serve.max_batch = 4;
  o.serve.enable_preemption = true;
  o.max_context = 768;
  return o;
}

struct Percentiles {
  double ttft_p50 = 0.0, ttft_p99 = 0.0, tpot_p50 = 0.0, tpot_p99 = 0.0;
};

Percentiles LatencyPercentiles(const hfleet::FleetSummary& s) {
  std::vector<double> ttft, tpot;
  for (const hfront::RequestStats& st : s.requests) {
    ttft.push_back(st.ttft_s());
    if (st.tokens > 1) {
      tpot.push_back(st.tpot_s());
    }
  }
  Percentiles p;
  p.ttft_p50 = hfront::Percentile(ttft, 0.5);
  p.ttft_p99 = hfront::Percentile(ttft, 0.99);
  p.tpot_p50 = hfront::Percentile(tpot, 0.5);
  p.tpot_p99 = hfront::Percentile(tpot, 0.99);
  return p;
}

}  // namespace

int main() {
  bench::Reporter rep("fleet_scale",
                      "Fleet-scale serving: device count x router policy on a "
                      "heterogeneous phone fleet",
                      "Fleet simulation (ROADMAP: scaling the serving path out)");

  const hllm::ModelConfig toy = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(toy, 1234);

  std::vector<int> device_counts = {1, 4, 16, 64};
  if (bench::SmokePreset()) {
    device_counts = {1, 4};
  }
  const hfleet::RouterPolicy policies[] = {hfleet::RouterPolicy::kRoundRobin,
                                           hfleet::RouterPolicy::kLeastLoaded,
                                           hfleet::RouterPolicy::kSessionAffine};

  rep.Section("device count x router policy (heterogeneous mix, session-heavy trace)");
  std::printf("%-8s %-15s %5s %10s %10s %11s %11s %8s %9s %11s\n", "devices", "policy",
              "reqs", "goodput", "J/req", "ttft p99", "tpot p99", "prefix", "imbal",
              "kv peak MB");

  // The contrast the subsystem exists to demonstrate, checked on the largest cell.
  std::map<int, double> affine_ttft_p99, rr_ttft_p99;
  std::map<int, int64_t> affine_kv, rr_kv;

  for (const int devices : device_counts) {
    const std::vector<hfront::Request> trace = hfront::GenerateTraffic(FleetTraffic(devices));
    for (const hfleet::RouterPolicy policy : policies) {
      hfleet::FleetSimulator sim(FleetConfig(devices, policy), weights);
      const hfleet::FleetSummary s = sim.Run(trace);
      if (!s.error.empty()) {
        std::fprintf(stderr, "fleet run failed (%d devices, %s): %s\n", devices,
                     hfleet::RouterPolicyName(policy), s.error.c_str());
        return 1;
      }
      const Percentiles p = LatencyPercentiles(s);
      const double prefix_lookups = static_cast<double>(s.prefix_hits + s.prefix_misses);
      const double hit_rate =
          prefix_lookups > 0.0 ? static_cast<double>(s.prefix_hits) / prefix_lookups : 0.0;
      std::printf("%-8d %-15s %5zu %9.1f %9.3f %9.1fms %9.2fms %7.0f%% %9.2f %11.2f\n",
                  devices, hfleet::RouterPolicyName(policy), s.requests.size(),
                  s.goodput_tps, s.energy_per_request_j, p.ttft_p99 * 1e3, p.tpot_p99 * 1e3,
                  hit_rate * 100.0, s.load_imbalance,
                  static_cast<double>(s.kv_peak_physical_bytes) / (1024.0 * 1024.0));
      obs::Json& row = rep.AddRow("fleet_scale");
      row.Set("devices", devices);
      row.Set("policy", hfleet::RouterPolicyName(policy));
      row.Set("requests", static_cast<int64_t>(s.requests.size()));
      row.Set("decoded_tokens", s.decoded_tokens);
      row.Set("goodput_tokens_per_second", s.goodput_tps);
      row.Set("slo_total", s.slo_total);
      row.Set("slo_met", s.slo_met);
      row.Set("energy_per_request_joules", s.energy_per_request_j);
      row.Set("makespan_seconds", s.makespan_s);
      row.Set("ttft_p50_seconds", p.ttft_p50);
      row.Set("ttft_p99_seconds", p.ttft_p99);
      row.Set("tpot_p50_seconds", p.tpot_p50);
      row.Set("tpot_p99_seconds", p.tpot_p99);
      row.Set("prefix_hit_rate", hit_rate);
      row.Set("prefix_evictions", s.prefix_evictions);
      row.Set("load_imbalance", s.load_imbalance);
      row.Set("kv_peak_physical_bytes", s.kv_peak_physical_bytes);
      if (policy == hfleet::RouterPolicy::kSessionAffine) {
        affine_ttft_p99[devices] = p.ttft_p99;
        affine_kv[devices] = s.kv_peak_physical_bytes;
      } else if (policy == hfleet::RouterPolicy::kRoundRobin) {
        rr_ttft_p99[devices] = p.ttft_p99;
        rr_kv[devices] = s.kv_peak_physical_bytes;
      }
    }
  }

  // Sanity gate on the headline claim: on a multi-device cell, session affinity plus the
  // prefix registry must beat round-robin on tail TTFT AND fleet KV footprint (follow-up
  // turns fork retained KV; shared prompts anchor once per device).
  for (const int devices : device_counts) {
    if (devices < 4) {
      continue;
    }
    if (affine_ttft_p99[devices] >= rr_ttft_p99[devices] ||
        affine_kv[devices] >= rr_kv[devices]) {
      std::fprintf(stderr,
                   "affine did not beat round-robin at %d devices: ttft p99 %.4f vs %.4f "
                   "s, kv peak %lld vs %lld bytes\n",
                   devices, affine_ttft_p99[devices], rr_ttft_p99[devices],
                   static_cast<long long>(affine_kv[devices]),
                   static_cast<long long>(rr_kv[devices]));
      return 1;
    }
  }

  // --- determinism anchor: the 4-device session-affine cell, run twice ---
  rep.Section("determinism anchor (4 devices, session-affine)");
  const std::vector<hfront::Request> anchor_trace =
      hfront::GenerateTraffic(FleetTraffic(4));
  hfleet::FleetSimulator anchor(FleetConfig(4, hfleet::RouterPolicy::kSessionAffine),
                                weights);
  const hfleet::FleetSummary a = anchor.Run(anchor_trace);
  const hfleet::FleetSummary b = anchor.Run(anchor_trace);
  if (!a.error.empty() || !b.error.empty()) {
    std::fprintf(stderr, "anchor run failed: %s%s\n", a.error.c_str(), b.error.c_str());
    return 1;
  }
  for (size_t i = 0; i < a.requests.size(); ++i) {
    if (a.requests[i].checksum != b.requests[i].checksum ||
        a.requests[i].tokens != b.requests[i].tokens ||
        a.request_device[i] != b.request_device[i]) {
      std::fprintf(stderr, "request %d: rerun mismatch (%016llx vs %016llx, device %d "
                   "vs %d)\n",
                   a.requests[i].id, static_cast<unsigned long long>(a.requests[i].checksum),
                   static_cast<unsigned long long>(b.requests[i].checksum),
                   a.request_device[i], b.request_device[i]);
      return 1;
    }
  }
  std::printf("%zu requests re-ran bit-identically (checksums, routing, clocks)\n",
              a.requests.size());
  for (const hfront::RequestStats& st : a.requests) {
    char checksum_hex[20];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(st.checksum));
    obs::Json& row = rep.AddRow("serving_request");
    row.Set("request", st.id);
    row.Set("session", st.session);
    row.Set("turn", st.turn_index);
    row.Set("device", a.request_device[static_cast<size_t>(st.id)]);
    row.Set("tokens", st.tokens);
    row.Set("token_checksum", checksum_hex);
    row.Set("ttft_seconds", st.ttft_s());
    row.Set("tpot_seconds", st.tpot_s());
    row.Set("preemptions", st.preemptions);
    row.Set("resumes", st.resumes);
    row.Set("slo_ok", st.slo_ok());
  }
  rep.AttachMetrics(a.metrics, "4-device session-affine fleet run");

  rep.Note("every device actually decodes the functional toy model on its own simulated "
           "clock; the fleet event loop merges those clocks deterministically (earliest "
           "busy device steps first, arrivals release only once no busy device is still "
           "behind them), so the whole report is bit-identical across reruns and "
           "HEXLLM_NUM_THREADS settings. Session-affine routing forks follow-up turns "
           "from the device-resident dialog KV instead of re-prefilling the history, and "
           "the prefix registry anchors each registered system prompt once per device "
           "(later requests CoW-map it) — together they cut tail TTFT and the fleet KV "
           "peak versus session-blind policies on the same trace.");
  return 0;
}

// Extension bench (§5.2.2's generality claim, implemented): the vlut16 dequantization
// kernel runs UNMODIFIED for Q4_0, NF4, FP4 and IQ4_NL — only the 16 table halfwords
// change — while reconstruction quality differs per codebook.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/mixed_gemm.h"
#include "src/quant/codebook_quant.h"
#include "src/quant/error_stats.h"
#include "src/quant/synthetic_weights.h"

int main() {
  using hquant::Int4Codebook;
  bench::Reporter rep("ext_codebooks",
                      "One dequant kernel, four 4-bit codebooks (Q4_0 / NF4 / FP4 / IQ4_NL)",
                      "§5.2.2 generality claim");

  hexllm::Rng rng(23);
  const int64_t k = 1024, n = 512;
  const auto w = hquant::GenerateLlmLikeMatrix(k, n, rng);

  std::printf("%-10s %16s %16s %14s %12s\n", "codebook", "rel RMS error", "max |error|",
              "HVX packets", "pkts/64");
  int64_t reference_packets = -1;
  for (const auto cb : {Int4Codebook::kQ4_0, Int4Codebook::kNf4, Int4Codebook::kFp4,
                        Int4Codebook::kIq4Nl}) {
    const auto sbs = hquant::CodebookQuantizeSuperblocks(w, cb);
    // Reference reconstruction error.
    std::vector<float> back(w.size());
    hquant::CodebookDequantizeSuperblocks(sbs, cb, back);
    const auto err = hquant::ComputeErrorStats(w, back);
    // Run the actual vlut16 kernel and count its packets.
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    auto* out = reinterpret_cast<hexllm::F16*>(dev.tcm().Alloc(k * n * 2));
    const int64_t packets = hkern::DequantCoalescedLut(dev, sbs, out, cb);
    if (reference_packets < 0) {
      reference_packets = packets;
    }
    const double pkts_per_64 = static_cast<double>(packets) / (static_cast<double>(k) * n / 64);
    std::printf("%-10s %16.4f %16.4f %14lld %12.2f %s\n", hquant::Int4CodebookName(cb),
                err.rel_rms, err.max_abs, static_cast<long long>(packets), pkts_per_64,
                packets == reference_packets ? "" : "<- COST DIFFERS (bug!)");
    obs::Json& row = rep.AddRow("codebook");
    row.Set("codebook", hquant::Int4CodebookName(cb));
    row.Set("rel_rms_error", err.rel_rms);
    row.Set("max_abs_error", err.max_abs);
    row.Set("hvx_packets", packets);
    row.Set("packets_per_64_weights", pkts_per_64);
    row.Set("cost_matches_q4_0", packets == reference_packets);
  }
  rep.Note("identical instruction count for every codebook — supporting a new 4-bit "
           "format is literally 16 halfwords of table contents. NF4 reconstructs "
           "Gaussian-bulk weights best; IQ4_NL trades tails vs body like llama.cpp's.");
  return 0;
}

// Figure 12: power and normalized energy during decoding vs batch size (OnePlus 12,
// performance mode), plus §7.2.3's 1.5B-batch-8 vs 3B-batch-1 energy comparison.
#include <cstdio>

#include "bench/reporter.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("fig12_power_energy", "Power and energy during LLM decoding (OnePlus 12)",
                      "Figure 12 / §7.2.3");

  const auto& device = hexsim::OnePlus12();
  double e15_b8 = 0.0;
  double e3_b1 = 0.0;
  double e15_b1 = 0.0;

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &device;
    const hrt::Engine engine(o);
    rep.Section(model->name);
    std::printf("%-8s %10s %14s %18s\n", "batch", "power(W)", "mJ/token", "normalized energy");
    double e1 = 0.0;
    for (int b : {1, 2, 4, 8, 16}) {
      const auto p = engine.DecodePower(b, 1024);
      if (b == 1) {
        e1 = p.joules_per_token;
      }
      std::printf("%-8d %10.2f %14.1f %18.2f\n", b, p.watts, p.joules_per_token * 1e3,
                  p.joules_per_token / e1);
      obs::Json& row = rep.AddRow("power_energy");
      row.Set("model", model->name);
      row.Set("batch", b);
      row.Set("watts", p.watts);
      row.Set("mj_per_token", p.joules_per_token * 1e3);
      row.Set("normalized_energy", p.joules_per_token / e1);
      if (model == &hllm::Qwen25_1_5B() && b == 8) {
        e15_b8 = p.joules_per_token;
      }
      if (model == &hllm::Qwen25_1_5B() && b == 1) {
        e15_b1 = p.joules_per_token;
      }
      if (model == &hllm::Qwen25_3B() && b == 1) {
        e3_b1 = p.joules_per_token;
      }
    }
  }

  rep.Section("§7.2.3 comparison");
  std::printf("Qwen2.5-1.5B @ batch 8: %.1f mJ/token\n", e15_b8 * 1e3);
  std::printf("Qwen2.5-3B   @ batch 1: %.1f mJ/token\n", e3_b1 * 1e3);
  std::printf("-> 1.5B with test-time scaling budget 8 uses %.1fx LESS energy per token than "
              "the 3B model decoded conventionally (paper: lower), while matching its math "
              "accuracy (see bench_fig10_pareto).\n",
              e3_b1 / e15_b8);
  std::printf("(1.5B batch-1 reference: %.1f mJ/token)\n", e15_b1 * 1e3);
  rep.AddReference("qwen2.5-1.5b b=8 mJ/token", e15_b8 * 1e3, 32.0, "mJ/token");
  rep.AddReference("qwen2.5-3b b=1 mJ/token", e3_b1 * 1e3, 295.9, "mJ/token");
  rep.Note("total power stays within 5 W; energy per token falls with batch because the "
           "weight-fetch/dequantization cost is shared across the whole batch.");
  return 0;
}

// Figure 17: impact of prompt length on decoding throughput (OnePlus 12): 512 -> 4096
// tokens across batch sizes for both Qwen models.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/engine.h"

int main() {
  bench::Title("Impact of prompt length on decoding throughput (OnePlus 12)", "Figure 17");

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    bench::Section(model->name);
    std::printf("%-10s", "batch \\ prompt");
    for (int len : {512, 1024, 2048, 4096}) {
      std::printf("%10d", len);
    }
    std::printf("%12s\n", "drop@4096");
    for (int b : {1, 4, 8, 16}) {
      std::printf("%-14d", b);
      double first = 0.0;
      double last = 0.0;
      for (int len : {512, 1024, 2048, 4096}) {
        const double t = engine.DecodeThroughput(b, len);
        if (len == 512) {
          first = t;
        }
        last = t;
        std::printf("%10.1f", t);
      }
      std::printf("%11.1f%%\n", 100.0 * (1.0 - last / first));
    }
  }
  bench::Note("throughput declines only mildly up to 4096 tokens: attention grows with "
              "context but the dequantization-bound linear layers dominate (§7.5).");
  return 0;
}

// Figure 17: impact of prompt length on decoding throughput (OnePlus 12): 512 -> 4096
// tokens across batch sizes for both Qwen models.
#include <cstdio>

#include "bench/reporter.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("fig17_prompt_length",
                      "Impact of prompt length on decoding throughput (OnePlus 12)",
                      "Figure 17");

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    rep.Section(model->name);
    std::printf("%-10s", "batch \\ prompt");
    for (int len : {512, 1024, 2048, 4096}) {
      std::printf("%10d", len);
    }
    std::printf("%12s\n", "drop@4096");
    for (int b : {1, 4, 8, 16}) {
      std::printf("%-14d", b);
      double first = 0.0;
      double last = 0.0;
      for (int len : {512, 1024, 2048, 4096}) {
        const double t = engine.DecodeThroughput(b, len);
        if (len == 512) {
          first = t;
        }
        last = t;
        std::printf("%10.1f", t);
        obs::Json& row = rep.AddRow("decode_throughput");
        row.Set("model", model->name);
        row.Set("batch", b);
        row.Set("prompt_tokens", len);
        row.Set("tokens_per_second", t);
      }
      const double drop = 100.0 * (1.0 - last / first);
      std::printf("%11.1f%%\n", drop);
      obs::Json& row = rep.AddRow("throughput_drop");
      row.Set("model", model->name);
      row.Set("batch", b);
      row.Set("drop_512_to_4096_percent", drop);
    }
  }
  rep.Note("throughput declines only mildly up to 4096 tokens: attention grows with "
           "context but the dequantization-bound linear layers dominate (§7.5).");
  return 0;
}

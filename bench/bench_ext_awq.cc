// Extension bench: activation-aware weight scaling (the algorithm behind Table 1's
// "AutoAWQ" column) on top of the group quantizer. AWQ minimizes the layer OUTPUT error, so
// the sweep reports both the weight reconstruction error (which can get *worse*) and the
// output MSE over calibration activations (which is what matters and improves).
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/quant/awq.h"
#include "src/quant/error_stats.h"
#include "src/quant/synthetic_weights.h"

int main() {
  bench::Reporter rep("ext_awq", "Activation-aware scaling (AWQ-style) on the group quantizer",
                      "Table 1 baseline internals");

  hexllm::Rng rng(2049);
  const int64_t k = 1024, n = 256, samples = 32;
  const auto w = hquant::GenerateGaussianMatrix(k, n, rng, 0.05);

  // Calibration activations with systematic outlier dims (the documented transformer
  // activation structure AWQ exploits).
  std::vector<double> dim_scale(static_cast<size_t>(k), 1.0);
  for (auto& v : dim_scale) {
    if (rng.NextBool(0.02)) {
      v = 15.0;
    }
  }
  std::vector<float> acts(static_cast<size_t>(samples * k));
  for (int64_t s = 0; s < samples; ++s) {
    for (int64_t i = 0; i < k; ++i) {
      acts[static_cast<size_t>(s * k + i)] =
          static_cast<float>(rng.NextGaussian() * dim_scale[static_cast<size_t>(i)]);
    }
  }
  const auto act_scale = hquant::CalibrationActScales(acts, samples, k);

  std::printf("%-8s %22s %22s\n", "alpha", "weight rel-RMS error", "output MSE (vs alpha=0)");
  double mse0 = 0.0;
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto q = hquant::AwqQuantize(w, k, n, act_scale, alpha);
    const auto rec = hquant::AwqDequantize(q);
    const auto werr = hquant::ComputeErrorStats(w, rec);
    const double mse = hquant::OutputMse(w, rec, k, n, acts, samples);
    if (alpha == 0.0) {
      mse0 = mse;
    }
    std::printf("%-8.2f %22.4f %19.3fx\n", alpha, werr.rel_rms, mse / mse0);
    obs::Json& row = rep.AddRow("awq_alpha_sweep");
    row.Set("alpha", alpha);
    row.Set("weight_rel_rms", werr.rel_rms);
    row.Set("output_mse_ratio", mse / mse0);
  }
  rep.Note("moderate alpha cuts the output error by protecting the weights that multiply "
           "outlier activations, at a small weight-error cost — why the AutoAWQ baseline "
           "keeps reasoning usable in Table 1 while plain coarse quantization destroys "
           "it. The transform is offline-only and composes with the tile layout.");
  return 0;
}

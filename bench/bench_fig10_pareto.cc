// Figure 10: accuracy-latency trade-off of Best-of-N and Beam Search across models,
// datasets, and SoCs. "QN"/"LN" = Qwen2.5 / Llama3.2 with N billion parameters; "base" =
// conventional sampling. The 8 Gen 2 SoC is excluded for >=3B models (NPU address space,
// §7.2.1); here we sweep the 8 Gen 3 and 8 Elite like the paper's SoC rows.
#include <cstdio>
#include <map>
#include <string>

#include "bench/reporter.h"
#include "src/tts/capability_model.h"
#include "src/tts/pareto.h"

namespace {

std::string ShortName(const std::string& model) {
  static const std::map<std::string, std::string> names = {
      {"Qwen2.5-1.5B-Instruct", "Q1.5"}, {"Qwen2.5-3B-Instruct", "Q3"},
      {"Qwen2.5-7B-Instruct", "Q7"},     {"Llama3.2-1B-Instruct", "L1"},
      {"Llama3.2-3B-Instruct", "L3"},
  };
  auto it = names.find(model);
  return it == names.end() ? model : it->second;
}

}  // namespace

int main() {
  using namespace htts;
  bench::Reporter rep("fig10_pareto", "Accuracy-latency trade-off of test-time scaling",
                      "Figure 10");

  const CapabilityModel cap;
  for (const auto* device : {&hexsim::OnePlus12(), &hexsim::OnePlusAce5Pro()}) {
    for (const Dataset dataset : {Dataset::kMath500, Dataset::kGsm8k}) {
      rep.Section(device->soc_name + " / " + DatasetName(dataset));
      ParetoSweepOptions opts;
      opts.dataset = dataset;
      opts.device = device;
      opts.models = {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B(), &hllm::Qwen25_7B(),
                     &hllm::Llama32_1B(), &hllm::Llama32_3B()};
      opts.budgets = {2, 4, 8, 16};
      opts.tasks = bench::SmokePreset() ? 100 : 400;
      opts.trials = bench::SmokePreset() ? 2 : 5;
      opts.seed = 10 + static_cast<uint64_t>(dataset);
      // Speculative-decoding axis (§9): each model also gets a lossless draft-assisted
      // point — base accuracy, cheaper tokens (docs/speculative_decoding.md).
      opts.spec_draft = &hllm::Qwen25_0_5B();
      const auto points = SweepPareto(cap, opts);

      std::printf("%-6s %-12s %7s %10s %13s %9s %8s\n", "model", "method", "budget",
                  "accuracy", "ms/token", "mJ/token", "pareto");
      for (const auto& p : points) {
        if (!p.runnable) {
          std::printf("%-6s %-12s %7d   (exceeds NPU address space)\n",
                      ShortName(p.model).c_str(), TtsMethodName(p.method), p.budget);
          obs::Json& row = rep.AddRow("pareto_point");
          row.Set("soc", device->soc_name);
          row.Set("dataset", DatasetName(dataset));
          row.Set("model", ShortName(p.model));
          row.Set("method", TtsMethodName(p.method));
          row.Set("budget", p.budget);
          row.Set("runnable", false);
          continue;
        }
        const bool frontier = OnParetoFrontier(p, points);
        std::printf("%-6s %-12s %7d %9.1f%% %13.1f %9.1f %8s\n", ShortName(p.model).c_str(),
                    TtsMethodName(p.method), p.budget, 100.0 * p.accuracy,
                    p.latency_per_token_s * 1e3, p.energy_per_token_j * 1e3,
                    frontier ? "*" : "");
        obs::Json& row = rep.AddRow("pareto_point");
        row.Set("soc", device->soc_name);
        row.Set("dataset", DatasetName(dataset));
        row.Set("model", ShortName(p.model));
        row.Set("method", TtsMethodName(p.method));
        row.Set("budget", p.budget);
        row.Set("runnable", true);
        row.Set("accuracy_percent", 100.0 * p.accuracy);
        row.Set("ms_per_token", p.latency_per_token_s * 1e3);
        row.Set("mj_per_token", p.energy_per_token_j * 1e3);
        row.Set("on_pareto_frontier", frontier);
        if (p.method == TtsMethod::kSpeculative) {
          row.Set("spec_draft", p.spec_draft);
          row.Set("spec_acceptance", p.spec_acceptance);
        }
      }

      // The paper's headline comparisons for this panel.
      const auto find = [&](const std::string& model, TtsMethod method,
                            int budget) -> const ParetoPoint* {
        for (const auto& p : points) {
          if (p.model == model && p.method == method && (method == TtsMethod::kBase ||
                                                         p.budget == budget)) {
            return &p;
          }
        }
        return nullptr;
      };
      const auto* q15_bon = find(hllm::Qwen25_1_5B().name, TtsMethod::kBestOfN, 16);
      const auto* q3_base = find(hllm::Qwen25_3B().name, TtsMethod::kBase, 1);
      const auto* q3_bon = find(hllm::Qwen25_3B().name, TtsMethod::kBestOfN, 16);
      const auto* q7_base = find(hllm::Qwen25_7B().name, TtsMethod::kBase, 1);
      if (q15_bon != nullptr && q3_base != nullptr && q3_base->runnable) {
        const bool wins = q15_bon->accuracy > q3_base->accuracy;
        std::printf("check: Q1.5 Best-of-16 %.1f%% vs Q3 base %.1f%%  -> %s\n",
                    100 * q15_bon->accuracy, 100 * q3_base->accuracy,
                    wins ? "scaling wins (paper: yes)" : "scaling loses");
        obs::Json& row = rep.AddRow("scaling_check");
        row.Set("soc", device->soc_name);
        row.Set("dataset", DatasetName(dataset));
        row.Set("comparison", "Q1.5 BoN-16 vs Q3 base");
        row.Set("scaled_accuracy_percent", 100 * q15_bon->accuracy);
        row.Set("base_accuracy_percent", 100 * q3_base->accuracy);
        row.Set("scaling_wins", wins);
      }
      if (q3_bon != nullptr && q7_base != nullptr && q7_base->runnable && q3_bon->runnable) {
        const bool wins = q3_bon->accuracy > q7_base->accuracy;
        std::printf("check: Q3 Best-of-16 %.1f%% vs Q7 base %.1f%%  -> %s\n",
                    100 * q3_bon->accuracy, 100 * q7_base->accuracy,
                    wins ? "scaling wins (paper: yes)" : "scaling loses");
        obs::Json& row = rep.AddRow("scaling_check");
        row.Set("soc", device->soc_name);
        row.Set("dataset", DatasetName(dataset));
        row.Set("comparison", "Q3 BoN-16 vs Q7 base");
        row.Set("scaled_accuracy_percent", 100 * q3_bon->accuracy);
        row.Set("base_accuracy_percent", 100 * q7_base->accuracy);
        row.Set("scaling_wins", wins);
      }
    }
  }
  rep.Note("* marks the accuracy-latency Pareto frontier; scaled small models dominate "
           "conventionally-decoded larger models on it.");
  return 0;
}

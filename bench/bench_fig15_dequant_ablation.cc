// Figure 15: ablation of the GEMV dequantization pipeline on the OnePlus 12 — baseline
// (conventional layout + vscatter), HMX-layout tile quantization, ours (+ super-block
// coalescing and vlut16), and the no-dequantization upper bound. Matrix shapes are the
// projection matrices of the evaluation models (§7.1's operator-level setting).
//
// The table uses the packet-exact cost model; a functional instruction-level run of all
// three dequant kernels on a real matrix cross-checks the packet counts at the end.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/mixed_gemm.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

int main() {
  using hkern::DequantKernel;
  bench::Reporter rep("fig15_dequant_ablation",
                      "Mixed-precision GEMV dequantization ablation (OnePlus 12)", "Figure 15");

  const auto& profile = hexsim::OnePlus12();
  struct Shape {
    const char* what;
    int k;
    int n;
    hquant::WeightScheme scheme;
  };
  // Attention Wq/Wo and FFN gate/up/down shapes of the evaluation models; the down
  // projections use Q8_0 per the paper's deployment setting (§7.1).
  const Shape shapes[] = {
      {"Qwen1.5B Wq/Wo 1536x1536 Q4", 1536, 1536, hquant::WeightScheme::kQ4_0},
      {"Qwen1.5B gate  1536x8960 Q4", 1536, 8960, hquant::WeightScheme::kQ4_0},
      {"Qwen1.5B down  8960x1536 Q8", 8960, 1536, hquant::WeightScheme::kQ8_0},
      {"Qwen3B   Wq/Wo 2048x2048 Q4", 2048, 2048, hquant::WeightScheme::kQ4_0},
      {"Llama1B  gate  2048x8192 Q4", 2048, 8192, hquant::WeightScheme::kQ4_0},
      {"Llama1B  down  8192x2048 Q8", 8192, 2048, hquant::WeightScheme::kQ8_0},
      {"Llama3B  gate  3072x8192 Q4", 3072, 8192, hquant::WeightScheme::kQ4_0},
  };

  std::printf("%-30s %12s %13s %10s %11s %10s %10s\n", "matrix (GEMV, M=1)", "baseline(us)",
              "HMXlayout(us)", "ours(us)", "no-deq(us)", "base/ours", "HMX/ours");
  double min_base = 1e9, max_base = 0.0;
  double min_hmx = 1e9, max_hmx = 0.0;
  double sum_nodeq = 0.0;
  int rows = 0;
  for (const auto& s : shapes) {
    const auto base = hkern::MixedGemmCostModel(profile, DequantKernel::kBaselineScatter,
                                                s.scheme, 1, s.k, s.n, 4);
    const auto hmx = hkern::MixedGemmCostModel(profile, DequantKernel::kHmxLayout,
                                               s.scheme, 1, s.k, s.n, 4);
    const auto ours = hkern::MixedGemmCostModel(profile, DequantKernel::kCoalescedLut,
                                                s.scheme, 1, s.k, s.n, 4);
    const auto nodeq = hkern::MixedGemmCostModel(profile, DequantKernel::kNoDequant,
                                                 s.scheme, 1, s.k, s.n, 4);
    const double rb = base.total_s / ours.total_s;
    const double rh = hmx.total_s / ours.total_s;
    min_base = std::min(min_base, rb);
    max_base = std::max(max_base, rb);
    min_hmx = std::min(min_hmx, rh);
    max_hmx = std::max(max_hmx, rh);
    sum_nodeq += ours.total_s / nodeq.total_s;
    ++rows;
    std::printf("%-30s %12.1f %13.1f %10.1f %11.1f %9.2fx %9.2fx\n", s.what,
                base.total_s * 1e6, hmx.total_s * 1e6, ours.total_s * 1e6,
                nodeq.total_s * 1e6, rb, rh);
    obs::Json& row = rep.AddRow("dequant_ablation");
    row.Set("matrix", s.what);
    row.Set("k", s.k);
    row.Set("n", s.n);
    row.Set("baseline_us", base.total_s * 1e6);
    row.Set("hmx_layout_us", hmx.total_s * 1e6);
    row.Set("ours_us", ours.total_s * 1e6);
    row.Set("no_dequant_us", nodeq.total_s * 1e6);
    row.Set("speedup_vs_baseline", rb);
    row.Set("speedup_vs_hmx_layout", rh);
  }
  std::printf("\nours vs baseline: %.2fx - %.2fx    [paper: 9.65x - 19.04x]\n", min_base,
              max_base);
  std::printf("ours vs HMX-layout-only: %.2fx - %.2fx    [paper: 1.82x - 3.45x]\n", min_hmx,
              max_hmx);
  std::printf("ours vs no-dequantization upper bound: %.0f%% slower on average    [paper: "
              "27%%]\n", 100.0 * (sum_nodeq / rows - 1.0));
  rep.AddReference("ours vs baseline, min", min_base, 9.65, "x");
  rep.AddReference("ours vs baseline, max", max_base, 19.04, "x");
  rep.AddReference("ours vs hmx-layout, min", min_hmx, 1.82, "x");
  rep.AddReference("ours vs hmx-layout, max", max_hmx, 3.45, "x");
  rep.AddReference("overhead vs no-dequant upper bound",
                   100.0 * (sum_nodeq / rows - 1.0), 27.0, "%");

  // Functional instruction-level cross-check on a real 512x512 matrix.
  rep.Section("functional cross-check (512x512, instruction-level emulation)");
  {
    hexllm::Rng rng(15);
    const int64_t k = 512, n = 512;
    const auto w = hquant::GenerateLlmLikeMatrix(k, n, rng);
    hexsim::NpuDevice dev(profile);
    auto* out = reinterpret_cast<hexllm::F16*>(dev.tcm().Alloc(k * n * 2));

    const auto tile_blocks = hquant::TileGroupQuantizeQ4(w, k, n);
    const auto sbs = hquant::CoalesceSuperblocks(tile_blocks);
    const int64_t p_ours = hkern::DequantCoalescedLut(dev, sbs, out);
    const int64_t p_hmx = hkern::DequantHmxLayout(dev, tile_blocks, out);
    const auto conv_blocks = hquant::ConventionalGroupQuantizeQ4(w, k, n);
    const int64_t p_base = hkern::DequantBaselineScatter(dev, conv_blocks, k, n, out);

    const double per64 = static_cast<double>(k * n) / 64.0;
    std::printf("packets/64 elems: baseline %.1f, HMX layout %.1f, ours %.2f  (cost model: "
                "%.1f / %.1f / %.2f)\n",
                p_base / per64, p_hmx / per64, p_ours / per64,
                hkern::DequantPacketsPer64(profile, DequantKernel::kBaselineScatter),
                hkern::DequantPacketsPer64(profile, DequantKernel::kHmxLayout),
                hkern::DequantPacketsPer64(profile, DequantKernel::kCoalescedLut));
    obs::Json& row = rep.AddRow("functional_cross_check");
    row.Set("baseline_packets_per_64", p_base / per64);
    row.Set("hmx_layout_packets_per_64", p_hmx / per64);
    row.Set("ours_packets_per_64", p_ours / per64);
    row.Set("cost_model_baseline_packets_per_64",
            hkern::DequantPacketsPer64(profile, DequantKernel::kBaselineScatter));
    row.Set("cost_model_hmx_layout_packets_per_64",
            hkern::DequantPacketsPer64(profile, DequantKernel::kHmxLayout));
    row.Set("cost_model_ours_packets_per_64",
            hkern::DequantPacketsPer64(profile, DequantKernel::kCoalescedLut));
    obs::Registry reg;
    hexsim::ExportDeviceMetrics(dev, reg);
    rep.AttachMetrics(reg.Snapshot(), "512x512 cross-check device activity");
  }
  rep.Note("the baseline's vscatter per group dominates its cost; the HMX-order layout "
           "removes the scatter, and super-block coalescing + vlut16 removes the unpack "
           "chain and qfloat conversions.");
  return 0;
}

// Shared formatting helpers for the reproduction benches. Every bench prints the rows/series
// of one paper table or figure, with the paper's reported values alongside where the paper
// states them (EXPERIMENTS.md records the comparison).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace bench {

inline void Title(const std::string& what, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(reproduces %s)\n", what.c_str(), paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void Section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void Note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_

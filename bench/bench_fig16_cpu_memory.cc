// Figure 16: CPU utilization and memory consumption during decoding (OnePlus 12): resident
// CPU memory, dmabuf (NPU-mapped) size, and busy big-cores vs batch size. Extended with the
// paged-KV view: prompt KV bytes for Best-of-N with and without prefix sharing, and the
// KV-dtype axis (docs/kv_quantization.md): the same stream under F16/INT8/INT4 KV storage.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"
#include "src/tts/capability_model.h"

namespace {

// Runs a Best-of-N stream (one prompt, N parallel samples) through the analytic backend and
// returns the peak physical KV bytes the paged pool held. `grouped` toggles prefix sharing:
// the same stream with prompt_group unset stores N private prompt copies. `kv_dtype` picks
// the KV storage mode the pool accounts in.
hserve::ScheduleResult RunBestOfN(hrt::Engine& engine, int n, int prompt, int decode,
                                  bool grouped,
                                  hquant::KvDtype kv_dtype = hquant::KvDtype::kF16) {
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < n; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_group = grouped ? 0 : -1;
    j.prompt_tokens = prompt;
    j.decode_tokens = decode;
    jobs.push_back(j);
  }
  hserve::AnalyticBackend::Options bo;
  bo.kv_dtype = kv_dtype;
  hserve::AnalyticBackend backend(engine, bo);
  hserve::ServeOptions so;
  so.max_batch = n;
  return hserve::ContinuousBatcher(backend, so).Run(jobs);
}

}  // namespace

int main() {
  bench::Reporter rep("fig16_cpu_memory",
                      "CPU and memory usage during the decoding stage (OnePlus 12)",
                      "Figure 16");

  const std::vector<int> batches =
      bench::SmokePreset() ? std::vector<int>{1, 16} : std::vector<int>{1, 2, 4, 8, 16};

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    rep.Section(model->name);
    const bool small = model == &hllm::Qwen25_1_5B();
    const auto mem = engine.Memory(1);
    std::printf("dmabuf (NPU-mapped, context budget 4096): %lld MiB   %s\n",
                static_cast<long long>(mem.dmabuf_bytes >> 20),
                small ? "[paper: 1056 MiB]" : "[paper: 2090 MiB]");
    std::printf("CPU resident (lm_head + runtime): %lld MiB\n",
                static_cast<long long>(mem.cpu_resident_bytes >> 20));
    std::printf("total: ~%.1f GiB   %s\n",
                static_cast<double>(mem.dmabuf_bytes + mem.cpu_resident_bytes) / (1 << 30),
                small ? "[paper: ~1.3 GiB]" : "[paper: ~2.4 GiB]");
    rep.AddReference(model->name + " dmabuf MiB",
                     static_cast<double>(mem.dmabuf_bytes) / (1 << 20),
                     small ? 1056.0 : 2090.0, "MiB");
    obs::Json& mrow = rep.AddRow("memory");
    mrow.Set("model", model->name);
    mrow.Set("dmabuf_bytes", mem.dmabuf_bytes);
    mrow.Set("cpu_resident_bytes", mem.cpu_resident_bytes);
    std::printf("%-8s %22s\n", "batch", "busy big cores (of 4)");
    for (int b : batches) {
      const double util = engine.Memory(b).cpu_utilization;
      std::printf("%-8d %22.2f\n", b, util);
      obs::Json& row = rep.AddRow("cpu_utilization");
      row.Set("model", model->name);
      row.Set("batch", b);
      row.Set("busy_big_cores", util);
    }
  }
  rep.Note("dmabuf stays constant across batch (weights + KV budget are pre-mapped); CPU "
           "utilization grows with batch because of the vocabulary projection, but never "
           "exceeds 4 cores.");

  // Paged-KV extension: prompt KV residency for parallel test-time scaling. Best-of-N keeps
  // one physical copy of the shared prompt; without sharing every sample stores it again.
  const int kN = 8;
  const int kPrompt = bench::SmokePreset() ? 256 : 1024;
  const int kDecode = bench::SmokePreset() ? 64 : 256;
  rep.Section("prompt KV bytes, Best-of-N N=8 (P=" + std::to_string(kPrompt) +
              ", D=" + std::to_string(kDecode) + ", paged KV, block=32)");
  std::printf("%-12s %18s %18s %10s\n", "model", "shared (MiB)", "unshared (MiB)", "ratio");
  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    hrt::Engine engine(o);
    const hserve::ScheduleResult shared =
        RunBestOfN(engine, kN, kPrompt, kDecode, /*grouped=*/true);
    const hserve::ScheduleResult dense =
        RunBestOfN(engine, kN, kPrompt, kDecode, /*grouped=*/false);
    const double shared_mib =
        static_cast<double>(shared.kv.peak_physical_bytes()) / (1 << 20);
    const double dense_mib = static_cast<double>(dense.kv.peak_physical_bytes()) / (1 << 20);
    std::printf("%-12s %18.1f %18.1f %9.2fx\n", model->name.c_str(), shared_mib, dense_mib,
                dense_mib / shared_mib);
    obs::Json& row = rep.AddRow("paged_kv_sharing");
    row.Set("model", model->name);
    row.Set("n", kN);
    row.Set("prompt_tokens", kPrompt);
    row.Set("decode_tokens", kDecode);
    row.Set("shared_peak_physical_bytes", shared.kv.peak_physical_bytes());
    row.Set("dense_peak_physical_bytes", dense.kv.peak_physical_bytes());
    row.Set("sharing_ratio", dense_mib / shared_mib);
    rep.AttachMetrics(shared.metrics, model->name + " best_of_8 shared");
    // Acceptance bound: physical KV <= (1 + N * decode_frac) x one dense sequence.
    const double decode_frac =
        static_cast<double>(kDecode) / static_cast<double>(kPrompt + kDecode);
    const double bound_mib = (1.0 + kN * decode_frac) *
                             static_cast<double>(model->KvCacheBytes(kPrompt + kDecode)) /
                             (1 << 20);
    std::printf("  bound (1 + N*decode_frac) x dense single seq = %.1f MiB  %s\n", bound_mib,
                shared_mib <= bound_mib ? "[ok]" : "[EXCEEDED]");
  }
  rep.Note("sharing stores the prompt once per group instead of once per sample; only the "
           "private decode tails grow the pool.");

  // KV-dtype axis: the same shared Best-of-N stream with the paged pool accounting KV
  // blocks in F16 / INT8 / INT4 (group-quantized rows, docs/kv_quantization.md). The
  // accuracy column is the capability model's measured attention output error when K/V
  // round-trip through the corresponding quantizer (includes the F16+LUT softmax error, so
  // the f16 row is the existing lut_f16_attention_err baseline).
  rep.Section("peak KV bytes vs KV storage dtype, Best-of-N N=8 (P=" +
              std::to_string(kPrompt) + ", D=" + std::to_string(kDecode) + ", group=32)");
  const htts::CapabilityModel cap;
  std::printf("%-12s %-6s %16s %12s %14s\n", "model", "dtype", "peak (MiB)", "vs f16",
              "attn rel RMS");
  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    hrt::Engine engine(o);
    double f16_mib = 0.0;
    for (const hquant::KvDtype dtype :
         {hquant::KvDtype::kF16, hquant::KvDtype::kInt8, hquant::KvDtype::kInt4}) {
      const hserve::ScheduleResult r =
          RunBestOfN(engine, kN, kPrompt, kDecode, /*grouped=*/true, dtype);
      const double mib = static_cast<double>(r.kv.peak_physical_bytes()) / (1 << 20);
      if (dtype == hquant::KvDtype::kF16) {
        f16_mib = mib;
      }
      const double ratio = f16_mib / mib;
      const double attn_err = cap.AttentionErr(dtype);
      std::printf("%-12s %-6s %16.1f %11.2fx %14.2e\n", model->name.c_str(),
                  hquant::KvDtypeName(dtype), mib, ratio, attn_err);
      obs::Json& row = rep.AddRow("kv_dtype");
      row.Set("model", model->name);
      row.Set("kv_dtype", hquant::KvDtypeName(dtype));
      row.Set("kv_bits", hquant::KvDtypeBits(dtype));
      row.Set("n", kN);
      row.Set("prompt_tokens", kPrompt);
      row.Set("decode_tokens", kDecode);
      row.Set("peak_physical_bytes", r.kv.peak_physical_bytes());
      row.Set("compression_vs_f16", ratio);
      row.Set("attn_rel_rms", attn_err);
      if (dtype == hquant::KvDtype::kInt4) {
        rep.AttachMetrics(r.metrics, model->name + " best_of_8 kv_int4");
        // Acceptance gates: INT4 must shrink peak KV bytes >= 3x (the 9-of-32-bytes row
        // layout gives 3.56x exactly), and the measured attention error must stay inside
        // the documented bound (docs/kv_quantization.md: the Gaussian probe's output
        // rel RMS tracks Q4_0's ~11% per-element relative error, bounded at 2e-1).
        std::printf("  int4 gate: >= 3x vs f16 %s; attn err <= 2e-1 %s\n",
                    ratio >= 3.0 ? "[ok]" : "[MISSED]",
                    attn_err <= 2e-1 ? "[ok]" : "[EXCEEDED]");
        rep.AddReference(model->name + " int4 KV compression", ratio, 32.0 / 9.0, "x");
      }
    }
  }
  rep.Note("quantized KV shrinks every block by the same per-row ratio (INT4: 9 bytes per "
           "32 F16 elements, 3.56x; INT8: 1.88x), so pool peaks, budgets and admission all "
           "scale together; the attention-error column is the accuracy price.");
  return 0;
}

// Figure 16: CPU utilization and memory consumption during decoding (OnePlus 12): resident
// CPU memory, dmabuf (NPU-mapped) size, and busy big-cores vs batch size.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/engine.h"

int main() {
  bench::Title("CPU and memory usage during the decoding stage (OnePlus 12)", "Figure 16");

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    bench::Section(model->name);
    const auto mem = engine.Memory(1);
    std::printf("dmabuf (NPU-mapped, context budget 4096): %lld MiB   %s\n",
                static_cast<long long>(mem.dmabuf_bytes >> 20),
                model == &hllm::Qwen25_1_5B() ? "[paper: 1056 MiB]" : "[paper: 2090 MiB]");
    std::printf("CPU resident (lm_head + runtime): %lld MiB\n",
                static_cast<long long>(mem.cpu_resident_bytes >> 20));
    std::printf("total: ~%.1f GiB   %s\n",
                static_cast<double>(mem.dmabuf_bytes + mem.cpu_resident_bytes) / (1 << 30),
                model == &hllm::Qwen25_1_5B() ? "[paper: ~1.3 GiB]" : "[paper: ~2.4 GiB]");
    std::printf("%-8s %22s\n", "batch", "busy big cores (of 4)");
    for (int b : {1, 2, 4, 8, 16}) {
      std::printf("%-8d %22.2f\n", b, engine.Memory(b).cpu_utilization);
    }
  }
  bench::Note("dmabuf stays constant across batch (weights + KV budget are pre-mapped); CPU "
              "utilization grows with batch because of the vocabulary projection, but never "
              "exceeds 4 cores.");
  return 0;
}

// Figure 16: CPU utilization and memory consumption during decoding (OnePlus 12): resident
// CPU memory, dmabuf (NPU-mapped) size, and busy big-cores vs batch size. Extended with the
// paged-KV view: prompt KV bytes for Best-of-N with and without prefix sharing.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace {

// Runs a Best-of-N stream (one prompt, N parallel samples) through the analytic backend and
// returns the peak physical KV bytes the paged pool held. `grouped` toggles prefix sharing:
// the same stream with prompt_group unset stores N private prompt copies.
hserve::ScheduleResult RunBestOfN(hrt::Engine& engine, int n, int prompt, int decode,
                                  bool grouped) {
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < n; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_group = grouped ? 0 : -1;
    j.prompt_tokens = prompt;
    j.decode_tokens = decode;
    jobs.push_back(j);
  }
  hserve::AnalyticBackend backend(engine);
  hserve::ServeOptions so;
  so.max_batch = n;
  return hserve::ContinuousBatcher(backend, so).Run(jobs);
}

}  // namespace

int main() {
  bench::Reporter rep("fig16_cpu_memory",
                      "CPU and memory usage during the decoding stage (OnePlus 12)",
                      "Figure 16");

  const std::vector<int> batches =
      bench::SmokePreset() ? std::vector<int>{1, 16} : std::vector<int>{1, 2, 4, 8, 16};

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    const hrt::Engine engine(o);
    rep.Section(model->name);
    const bool small = model == &hllm::Qwen25_1_5B();
    const auto mem = engine.Memory(1);
    std::printf("dmabuf (NPU-mapped, context budget 4096): %lld MiB   %s\n",
                static_cast<long long>(mem.dmabuf_bytes >> 20),
                small ? "[paper: 1056 MiB]" : "[paper: 2090 MiB]");
    std::printf("CPU resident (lm_head + runtime): %lld MiB\n",
                static_cast<long long>(mem.cpu_resident_bytes >> 20));
    std::printf("total: ~%.1f GiB   %s\n",
                static_cast<double>(mem.dmabuf_bytes + mem.cpu_resident_bytes) / (1 << 30),
                small ? "[paper: ~1.3 GiB]" : "[paper: ~2.4 GiB]");
    rep.AddReference(model->name + " dmabuf MiB",
                     static_cast<double>(mem.dmabuf_bytes) / (1 << 20),
                     small ? 1056.0 : 2090.0, "MiB");
    obs::Json& mrow = rep.AddRow("memory");
    mrow.Set("model", model->name);
    mrow.Set("dmabuf_bytes", mem.dmabuf_bytes);
    mrow.Set("cpu_resident_bytes", mem.cpu_resident_bytes);
    std::printf("%-8s %22s\n", "batch", "busy big cores (of 4)");
    for (int b : batches) {
      const double util = engine.Memory(b).cpu_utilization;
      std::printf("%-8d %22.2f\n", b, util);
      obs::Json& row = rep.AddRow("cpu_utilization");
      row.Set("model", model->name);
      row.Set("batch", b);
      row.Set("busy_big_cores", util);
    }
  }
  rep.Note("dmabuf stays constant across batch (weights + KV budget are pre-mapped); CPU "
           "utilization grows with batch because of the vocabulary projection, but never "
           "exceeds 4 cores.");

  // Paged-KV extension: prompt KV residency for parallel test-time scaling. Best-of-N keeps
  // one physical copy of the shared prompt; without sharing every sample stores it again.
  const int kN = 8;
  const int kPrompt = bench::SmokePreset() ? 256 : 1024;
  const int kDecode = bench::SmokePreset() ? 64 : 256;
  rep.Section("prompt KV bytes, Best-of-N N=8 (P=" + std::to_string(kPrompt) +
              ", D=" + std::to_string(kDecode) + ", paged KV, block=32)");
  std::printf("%-12s %18s %18s %10s\n", "model", "shared (MiB)", "unshared (MiB)", "ratio");
  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B()}) {
    hrt::EngineOptions o;
    o.model = model;
    o.device = &hexsim::OnePlus12();
    hrt::Engine engine(o);
    const hserve::ScheduleResult shared =
        RunBestOfN(engine, kN, kPrompt, kDecode, /*grouped=*/true);
    const hserve::ScheduleResult dense =
        RunBestOfN(engine, kN, kPrompt, kDecode, /*grouped=*/false);
    const double shared_mib =
        static_cast<double>(shared.kv.peak_physical_bytes()) / (1 << 20);
    const double dense_mib = static_cast<double>(dense.kv.peak_physical_bytes()) / (1 << 20);
    std::printf("%-12s %18.1f %18.1f %9.2fx\n", model->name.c_str(), shared_mib, dense_mib,
                dense_mib / shared_mib);
    obs::Json& row = rep.AddRow("paged_kv_sharing");
    row.Set("model", model->name);
    row.Set("n", kN);
    row.Set("prompt_tokens", kPrompt);
    row.Set("decode_tokens", kDecode);
    row.Set("shared_peak_physical_bytes", shared.kv.peak_physical_bytes());
    row.Set("dense_peak_physical_bytes", dense.kv.peak_physical_bytes());
    row.Set("sharing_ratio", dense_mib / shared_mib);
    rep.AttachMetrics(shared.metrics, model->name + " best_of_8 shared");
    // Acceptance bound: physical KV <= (1 + N * decode_frac) x one dense sequence.
    const double decode_frac =
        static_cast<double>(kDecode) / static_cast<double>(kPrompt + kDecode);
    const double bound_mib = (1.0 + kN * decode_frac) *
                             static_cast<double>(model->KvCacheBytes(kPrompt + kDecode)) /
                             (1 << 20);
    std::printf("  bound (1 + N*decode_frac) x dense single seq = %.1f MiB  %s\n", bound_mib,
                shared_mib <= bound_mib ? "[ok]" : "[EXCEEDED]");
  }
  rep.Note("sharing stores the prompt once per group instead of once per sample; only the "
           "private decode tails grow the pool.");
  return 0;
}

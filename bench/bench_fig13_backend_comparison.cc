// Figure 13: inference throughput comparison — ours (NPU) vs the llama.cpp OpenCL GPU
// backend, with QNN FP16 as a reference. Decode across batch sizes plus prefill throughput.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/runtime/engine.h"

int main() {
  bench::Title("Inference throughput: ours (NPU) vs GPU (OpenCL) vs QNN FP16 (OnePlus 12)",
               "Figure 13");

  const auto& device = hexsim::OnePlus12();
  const hrt::Backend backends[] = {hrt::Backend::kNpuOurs, hrt::Backend::kGpuOpenCl,
                                   hrt::Backend::kQnnF16};

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Llama32_1B()}) {
    bench::Section(model->name);
    std::printf("%-18s", "decode batch:");
    for (int b : {1, 2, 4, 8, 16}) {
      std::printf("%9d", b);
    }
    std::printf("%14s\n", "prefill@1024");
    for (const auto backend : backends) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = &device;
      o.backend = backend;
      const hrt::Engine engine(o);
      std::printf("%-18s", hrt::BackendName(backend));
      for (int b : {1, 2, 4, 8, 16}) {
        std::printf("%9.1f", engine.DecodeThroughput(b, 1024));
      }
      std::printf("%14.1f\n", engine.PrefillThroughput(1024));
    }
  }
  bench::Note("the GPU decodes faster at batch 1, but the NPU system scales with batch "
              "(test-time-scaling workloads) and consistently wins prefill; QNN's static "
              "graphs get no batching benefit. Matches §7.2.4.");
  return 0;
}

// Figure 13: inference throughput comparison — ours (NPU) vs the llama.cpp OpenCL GPU
// backend, with QNN FP16 as a reference. Decode across batch sizes plus prefill throughput.
#include <cstdio>

#include "bench/reporter.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("fig13_backend_comparison",
                      "Inference throughput: ours (NPU) vs GPU (OpenCL) vs QNN FP16 "
                      "(OnePlus 12)",
                      "Figure 13");

  const auto& device = hexsim::OnePlus12();
  const hrt::Backend backends[] = {hrt::Backend::kNpuOurs, hrt::Backend::kGpuOpenCl,
                                   hrt::Backend::kQnnF16};

  for (const auto* model : {&hllm::Qwen25_1_5B(), &hllm::Llama32_1B()}) {
    rep.Section(model->name);
    std::printf("%-18s", "decode batch:");
    for (int b : {1, 2, 4, 8, 16}) {
      std::printf("%9d", b);
    }
    std::printf("%14s\n", "prefill@1024");
    for (const auto backend : backends) {
      hrt::EngineOptions o;
      o.model = model;
      o.device = &device;
      o.backend = backend;
      const hrt::Engine engine(o);
      std::printf("%-18s", hrt::BackendName(backend));
      for (int b : {1, 2, 4, 8, 16}) {
        const double tps = engine.DecodeThroughput(b, 1024);
        std::printf("%9.1f", tps);
        obs::Json& row = rep.AddRow("decode_throughput");
        row.Set("model", model->name);
        row.Set("backend", hrt::BackendName(backend));
        row.Set("batch", b);
        row.Set("tokens_per_second", tps);
      }
      const double prefill = engine.PrefillThroughput(1024);
      std::printf("%14.1f\n", prefill);
      obs::Json& row = rep.AddRow("prefill_throughput");
      row.Set("model", model->name);
      row.Set("backend", hrt::BackendName(backend));
      row.Set("prompt_tokens", 1024);
      row.Set("tokens_per_second", prefill);
    }
  }
  {
    hrt::EngineOptions o;
    o.model = &hllm::Qwen25_1_5B();
    o.device = &device;
    const hrt::Engine ours(o);
    o.backend = hrt::Backend::kGpuOpenCl;
    const hrt::Engine gpu(o);
    rep.AddReference("qwen2.5-1.5b ours b=16 tokens/s", ours.DecodeThroughput(16, 1024),
                     198.3, "tokens/s");
    rep.AddReference("qwen2.5-1.5b gpu b=16 tokens/s", gpu.DecodeThroughput(16, 1024), 36.8,
                     "tokens/s");
  }
  rep.Note("the GPU decodes faster at batch 1, but the NPU system scales with batch "
           "(test-time-scaling workloads) and consistently wins prefill; QNN's static "
           "graphs get no batching benefit. Matches §7.2.4.");
  return 0;
}

// Long-context decoding through tiered KV offload + attention-sink sliding windows
// (docs/long_context.md) — the §2 observation that smartphone DRAM, not compute, caps the
// context a mobile NPU can serve, answered with the storage tier below it.
//
// Three parts:
//   1. The headline demo: a 64k-token context decodes under a DRAM budget that holds only
//      16k tokens of resident KV. Without offload this is an ADMISSION ERROR (the batcher
//      rejects the job stream); with the flash tier enabled the same budget serves it, and
//      a sliding window serves it without touching flash at all.
//   2. Analytic sweep: context {8k..64k} x flash read bandwidth x window size on the
//      calibrated Qwen2.5-7B cost model. Reports tok/s, TTFT/TPOT, flash traffic and the
//      stall fraction — throughput degrades gracefully as offload bandwidth shrinks, and
//      only for contexts that overflow the resident budget.
//   3. Functional gates: a toy model decodes the same jobs with and without offload — the
//      committed streams must be IDENTICAL (demoted blocks restore bit-exactly), and a
//      full-coverage window must also be bit-identical (the kernel normalizes it away).
//      A genuinely truncating window reports its token-agreement accuracy proxy. Per-job
//      checksums are emitted as `serving_request` rows for the 1- vs 4-thread CI diff.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/flash.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kvcache/kv_offload.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace {

// FNV-1a over the committed token stream (same construction as bench_speculative and the
// serving frontend): thread-count invariant, order sensitive.
uint64_t TokenChecksum(const std::vector<int>& tokens) {
  uint64_t h = 1469598103934665603ull;
  for (const int t : tokens) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(t));
    h *= 1099511628211ull;
  }
  return h;
}

struct LongRun {
  bool admitted = false;
  double tokens_per_second = 0.0;
  double ttft_s = 0.0;
  double tpot_s = 0.0;
  double flash_s = 0.0;
  int64_t flash_bytes = 0;
  double stall_s = 0.0;
  double makespan_s = 0.0;
  std::string error;
};

}  // namespace

int main() {
  bench::Reporter rep("longcontext",
                      "Tiered KV offload + sliding-window attention for long contexts",
                      "Section 2 (DRAM capacity wall) / docs/long_context.md");
  const bool smoke = bench::SmokePreset();

  const hexsim::DeviceProfile& device = hexsim::OnePlus12();
  const hllm::ModelConfig& model = hllm::Qwen25_7B();
  const int bt = hkv::kDefaultBlockTokens;
  const int64_t block_bytes = model.KvCacheBytes(bt, hquant::KvDtype::kF16, hquant::kGroupSize);
  const int decode = smoke ? 32 : 64;
  const int resident_tokens = 16384;  // the DRAM budget: 16k tokens of resident KV
  const int64_t resident_blocks = resident_tokens / bt;
  const int64_t budget_bytes = resident_blocks * block_bytes;

  hrt::EngineOptions eopt;
  eopt.model = &model;
  eopt.device = &device;
  eopt.context_budget = 65536 + decode + bt;
  const hrt::Engine engine(eopt);

  // Runs ONE long-context job through the analytic serving stack under the 16k-token DRAM
  // budget and returns the latency/traffic digest (admitted=false carries the admission
  // error instead).
  const auto run_one = [&](int context, int64_t offload_blocks, double read_gbps,
                           int sink_blocks, int window_blocks) {
    hserve::AnalyticBackend::Options bo;
    bo.kv_budget_bytes = budget_bytes;
    bo.kv_offload_resident_blocks = offload_blocks;
    bo.flash.read_gbps = read_gbps;
    bo.flash.write_gbps = read_gbps * 1.5 / 3.5;  // keep the base spec's read/write ratio
    bo.attn_window.sink_blocks = sink_blocks;
    bo.attn_window.window_blocks = window_blocks;
    hserve::AnalyticBackend backend(engine, bo);
    hserve::ServeOptions so;
    so.max_batch = 1;
    hserve::ServeJob j;
    j.id = 0;
    j.prompt_tokens = context;
    j.decode_tokens = decode;
    const hserve::ScheduleResult r =
        hserve::ContinuousBatcher(backend, so).Run({j});
    LongRun out;
    out.error = r.error;
    if (!r.error.empty()) {
      return out;
    }
    out.admitted = true;
    out.tokens_per_second = r.tokens_per_second;
    out.ttft_s = r.admissions.empty() ? 0.0 : r.admissions.front().time_s;
    out.tpot_s = r.completions.empty() || decode <= 0
                     ? 0.0
                     : (r.completions.back().time_s - out.ttft_s) / decode;
    out.flash_s = r.flash_s;
    out.flash_bytes = r.flash_bytes;
    out.stall_s = r.metrics.GaugeValue("kv.offload.stall_seconds");
    out.makespan_s = r.makespan_s;
    return out;
  };

  const auto add_row = [&](const char* variant, int context, int64_t offload_blocks,
                           double read_gbps, int sink_blocks, int window_blocks,
                           const LongRun& r) {
    obs::Json& row = rep.AddRow("longcontext_sweep");
    row.Set("variant", variant);
    row.Set("context", context);
    row.Set("decode_tokens", decode);
    row.Set("resident_block_budget", offload_blocks);
    row.Set("read_gbps", read_gbps);
    row.Set("sink_blocks", sink_blocks);
    row.Set("window_blocks", window_blocks);
    row.Set("admitted", r.admitted);
    row.Set("tokens_per_second", r.tokens_per_second);
    row.Set("ttft_seconds", r.ttft_s);
    row.Set("tpot_seconds", r.tpot_s);
    row.Set("flash_bytes", r.flash_bytes);
    row.Set("flash_seconds", r.flash_s);
    row.Set("stall_fraction",
            r.makespan_s > 0.0 ? r.stall_s / r.makespan_s : 0.0);
    if (!r.error.empty()) {
      row.Set("error", r.error);
    }
  };

  // --- 1. 64k tokens under a 16k-token DRAM budget -------------------------------------
  rep.Section(device.soc_name + " / " + model.name + ", 64k context, 16k-token DRAM budget");
  std::printf("%-26s %9s %9s %10s %10s %12s %8s\n", "variant", "admitted", "tok/s",
              "ttft (s)", "tpot (ms)", "flash MB/tok", "stall%");
  const auto print_run = [&](const char* variant, const LongRun& r) {
    if (!r.admitted) {
      std::printf("%-26s %9s   (%s)\n", variant, "NO", r.error.c_str());
      return;
    }
    std::printf("%-26s %9s %9.2f %10.2f %10.2f %12.3f %7.1f%%\n", variant, "yes",
                r.tokens_per_second, r.ttft_s, r.tpot_s * 1e3,
                decode > 0 ? static_cast<double>(r.flash_bytes) / 1e6 / decode : 0.0,
                r.makespan_s > 0.0 ? 100.0 * r.stall_s / r.makespan_s : 0.0);
  };

  const LongRun rejected = run_one(65536, /*offload_blocks=*/0, 3.5, 0, 0);
  if (rejected.admitted || rejected.error.empty()) {
    std::fprintf(stderr, "expected the 64k job to be REJECTED without offload\n");
    return 1;
  }
  print_run("dram-only (baseline)", rejected);
  add_row("dram_only", 65536, 0, 3.5, 0, 0, rejected);

  const LongRun offloaded = run_one(65536, resident_blocks, 3.5, 0, 0);
  if (!offloaded.admitted) {
    std::fprintf(stderr, "64k job must ADMIT with the flash tier: %s\n",
                 offloaded.error.c_str());
    return 1;
  }
  print_run("flash offload", offloaded);
  add_row("offload", 65536, resident_blocks, 3.5, 0, 0, offloaded);

  // Sinks + a 128-block (4k-token) window keep the attended set inside the resident
  // budget: same 64k context, zero flash traffic.
  const LongRun windowed = run_one(65536, resident_blocks, 3.5, /*sink_blocks=*/4,
                                   /*window_blocks=*/128);
  if (!windowed.admitted || windowed.flash_bytes != 0) {
    std::fprintf(stderr, "windowed 64k run should admit with zero flash traffic\n");
    return 1;
  }
  print_run("offload + 4k window", windowed);
  add_row("offload_window", 65536, resident_blocks, 3.5, 4, 128, windowed);

  // --- 2. context x bandwidth x window sweep -------------------------------------------
  rep.Section("context x flash bandwidth x window sweep");
  const std::vector<int> contexts = smoke ? std::vector<int>{8192, 65536}
                                          : std::vector<int>{8192, 16384, 32768, 65536};
  const std::vector<double> bandwidths =
      smoke ? std::vector<double>{3.5, 0.5} : std::vector<double>{3.5, 1.0, 0.5, 0.25};
  const std::vector<int> windows = smoke ? std::vector<int>{0, 128}
                                         : std::vector<int>{0, 64, 128, 256};
  std::printf("%8s %8s %8s %9s %10s %12s %8s\n", "context", "GB/s", "window", "tok/s",
              "tpot (ms)", "flash MB/tok", "stall%");
  for (const int ctx : contexts) {
    for (const double gbps : bandwidths) {
      for (const int win : windows) {
        const LongRun r = run_one(ctx, resident_blocks, gbps, win > 0 ? 4 : 0, win);
        if (!r.admitted) {
          std::fprintf(stderr, "sweep run (ctx %d) unexpectedly rejected: %s\n", ctx,
                       r.error.c_str());
          return 1;
        }
        std::printf("%8d %8.2f %8d %9.2f %10.2f %12.3f %7.1f%%\n", ctx, gbps, win,
                    r.tokens_per_second, r.tpot_s * 1e3,
                    decode > 0 ? static_cast<double>(r.flash_bytes) / 1e6 / decode : 0.0,
                    r.makespan_s > 0.0 ? 100.0 * r.stall_s / r.makespan_s : 0.0);
        add_row("sweep", ctx, resident_blocks, gbps, win > 0 ? 4 : 0, win, r);
      }
    }
  }

  // --- 3. functional gates: bit-identity + windowed accuracy proxy ---------------------
  rep.Section("functional toy: offload bit-identity, window parity, per-job checksums");
  const hllm::ModelConfig toy = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(toy, 42);
  const int fn_jobs = smoke ? 3 : 5;
  const int fn_prompt = 40;
  const int fn_decode = smoke ? 16 : 24;
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < fn_jobs; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_tokens = fn_prompt;
    j.decode_tokens = fn_decode;
    j.seed = 300 + static_cast<uint64_t>(i);
    if (i % 2 == 1) {  // bit-identity must hold for stochastic samplers too
      j.sampler.temperature = 0.8f;
      j.sampler.top_k = 8;
    }
    jobs.push_back(j);
  }
  hserve::ServeOptions fso;
  fso.max_batch = 3;
  // offload_budget <= 0 and window_blocks == 0 run the exact legacy path.
  const auto run_functional = [&](const std::vector<hserve::ServeJob>& js,
                                  int64_t offload_budget, int sink_blocks,
                                  int window_blocks) {
    hexsim::NpuDevice dev(device);
    hserve::FunctionalBackend backend(dev, weights, fso.max_batch, /*max_context=*/160);
    hkv::KvOffloadOptions opts;
    opts.resident_block_budget = offload_budget;
    hkern::AttnWindowSpec win;
    win.sink_blocks = sink_blocks;
    win.window_blocks = window_blocks;
    backend.ConfigureLongContext(opts, win);
    return hserve::ContinuousBatcher(backend, fso).Run(js);
  };

  const hserve::ScheduleResult fn_plain = run_functional(jobs, 0, 0, 0);
  // Budget 4 blocks vs ~3 slots x 2-3 blocks live: demotion + fault traffic every step.
  const hserve::ScheduleResult fn_off = run_functional(jobs, /*offload_budget=*/4, 0, 0);
  // Sinks + window covering the whole 160-token context: the kernel must normalize it
  // away, so the stream is bit-identical and no chunk is ever skipped.
  const hserve::ScheduleResult fn_fullwin = run_functional(jobs, 0, /*sink_blocks=*/2,
                                                           /*window_blocks=*/6);
  if (!fn_plain.error.empty() || !fn_off.error.empty() || !fn_fullwin.error.empty()) {
    std::fprintf(stderr, "functional run failed: %s%s%s\n", fn_plain.error.c_str(),
                 fn_off.error.c_str(), fn_fullwin.error.c_str());
    return 1;
  }
  if (fn_off.job_tokens != fn_plain.job_tokens) {
    std::fprintf(stderr, "OFFLOAD BIT-IDENTITY VIOLATION: demote/fault changed the "
                         "committed stream\n");
    return 1;
  }
  if (fn_fullwin.job_tokens != fn_plain.job_tokens) {
    std::fprintf(stderr, "FULL-COVERAGE WINDOW VIOLATION: a window covering the whole "
                         "context changed the committed stream\n");
    return 1;
  }
  std::printf("%-8s %-8s %8s %8s %20s\n", "request", "sampler", "prompt", "tokens",
              "checksum");
  for (size_t i = 0; i < fn_off.job_tokens.size(); ++i) {
    const std::vector<int>& toks = fn_off.job_tokens[i];
    char checksum_hex[20];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(TokenChecksum(toks)));
    const char* sampler = jobs[i].sampler.temperature > 0.0f ? "top_k" : "greedy";
    std::printf("%-8d %-8s %8d %8zu %20s\n", jobs[i].id, sampler, jobs[i].prompt_tokens,
                toks.size(), checksum_hex);
    obs::Json& row = rep.AddRow("serving_request");
    row.Set("request", jobs[i].id);
    row.Set("sampler", sampler);
    row.Set("prompt_tokens", jobs[i].prompt_tokens);
    row.Set("tokens", static_cast<int64_t>(toks.size()));
    row.Set("token_checksum", checksum_hex);
  }
  const auto count = [&](const hserve::ScheduleResult& r, const char* name) {
    return static_cast<long long>(r.metrics.CounterValue(name));
  };
  std::printf("offload run: %lld demotions, %lld promotions (%lld prefetch hits, %lld "
              "demand faults), %lld flash bytes, %lld wear writes\n",
              count(fn_off, "kv.offload.demotions"), count(fn_off, "kv.offload.promotions"),
              count(fn_off, "kv.offload.prefetch_hits"),
              count(fn_off, "kv.offload.demand_faults"),
              count(fn_off, "kv.offload.flash_read_bytes"),
              count(fn_off, "kv.offload.wear_write_ops"));
  if (count(fn_off, "kv.offload.demotions") <= 0) {
    std::fprintf(stderr, "offload run never demoted a block — the gate proved nothing\n");
    return 1;
  }
  obs::Json& orow = rep.AddRow("functional_offload_summary");
  orow.Set("demotions", fn_off.metrics.CounterValue("kv.offload.demotions"));
  orow.Set("promotions", fn_off.metrics.CounterValue("kv.offload.promotions"));
  orow.Set("prefetch_hits", fn_off.metrics.CounterValue("kv.offload.prefetch_hits"));
  orow.Set("demand_faults", fn_off.metrics.CounterValue("kv.offload.demand_faults"));
  orow.Set("flash_read_bytes", fn_off.metrics.CounterValue("kv.offload.flash_read_bytes"));
  orow.Set("wear_write_ops", fn_off.metrics.CounterValue("kv.offload.wear_write_ops"));
  orow.Set("lossless", true);
  rep.AttachMetrics(fn_off.metrics, "functional toy offload run (4-block resident budget)");

  // A genuinely truncating window DOES change attention; the token-agreement fraction
  // against the full-attention stream is the accuracy proxy the sweep's quality column
  // would carry on a real model. The 40-token prompts above fit inside any window, so this
  // comparison runs its own longer-context jobs (96 + decode > ResidentTokens).
  {
    std::vector<hserve::ServeJob> long_jobs = jobs;
    for (auto& j : long_jobs) {
      j.prompt_tokens = 96;
    }
    hkern::AttnWindowSpec win;
    win.sink_blocks = 1;
    win.window_blocks = 1;
    if (win.CoversAll(96 + fn_decode - 1)) {
      std::fprintf(stderr, "accuracy-proxy window unexpectedly covers the whole context\n");
      return 1;
    }
    const hserve::ScheduleResult long_plain = run_functional(long_jobs, 0, 0, 0);
    const hserve::ScheduleResult fn_win =
        run_functional(long_jobs, 0, win.sink_blocks, win.window_blocks);
    if (!fn_win.error.empty() || !long_plain.error.empty()) {
      std::fprintf(stderr, "windowed functional run failed: %s%s\n",
                   long_plain.error.c_str(), fn_win.error.c_str());
      return 1;
    }
    int64_t agree = 0;
    int64_t total = 0;
    for (size_t i = 0; i < fn_win.job_tokens.size(); ++i) {
      const std::vector<int>& w = fn_win.job_tokens[i];
      const std::vector<int>& p = long_plain.job_tokens[i];
      for (size_t t = 0; t < w.size() && t < p.size(); ++t) {
        agree += w[t] == p[t] ? 1 : 0;
        ++total;
      }
    }
    const double agreement = total > 0 ? static_cast<double>(agree) / total : 0.0;
    std::printf("truncating window (1 sink + 1 window block, 96-token prompts): token "
                "agreement %.2f (%lld/%lld) vs full attention\n",
                agreement, static_cast<long long>(agree), static_cast<long long>(total));
    obs::Json& wrow = rep.AddRow("window_accuracy");
    wrow.Set("sink_blocks", 1);
    wrow.Set("window_blocks", 1);
    wrow.Set("prompt_tokens", 96);
    wrow.Set("token_agreement", agreement);
    wrow.Set("tokens_compared", total);
  }

  rep.Note("The 64k row decodes under a DRAM budget holding 16k resident KV tokens — "
           "without the flash tier the same job stream is an admission error. Analytic "
           "flash traffic and stall come from the same hexsim::FlashTier the functional "
           "offload engine charges; the functional gates prove demote/fault round trips "
           "and full-coverage windows are bit-identical to plain decode, so the "
           "serving_request checksums stay valid for the 1- vs 4-thread CI diff "
           "(tools/compare_bench_tokens.py).");
  return 0;
}

// Extension bench: static vs continuous batching for Best-of-N workloads. Samples finish at
// different lengths; reclaiming finished slots immediately trims the batch-dependent costs
// (CPU lm_head, attention) and removes padding decode — the scheduler a production TTS
// runtime wants on top of the paper's kernels.
//
// Both policies run through the serving runtime's ContinuousBatcher (kStaticWaves vs
// kContinuous), so the second table can show what the old fixed-context scheduler hid:
// per-slot contexts GROW as samples decode, and admissions charge the prompt's chunked
// prefill (shared once per Best-of-N group).
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/runtime/scheduler.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

namespace {

// The legacy sample-job stream on the serving runtime: fixed uncharged starting context,
// one slot per sample, policy-selected slot reclamation.
hserve::ScheduleResult Schedule(const std::vector<hrt::SampleJob>& jobs, int max_batch,
                                const hrt::Engine& engine, int context,
                                hserve::SchedulePolicy policy) {
  hserve::AnalyticBackend backend(engine);
  hserve::ServeOptions so;
  so.max_batch = max_batch;
  so.policy = policy;
  std::vector<hserve::ServeJob> serve_jobs;
  serve_jobs.reserve(jobs.size());
  for (size_t j = 0; j < jobs.size(); ++j) {
    hserve::ServeJob sj;
    sj.id = static_cast<int>(j);
    sj.context_tokens = context;
    sj.decode_tokens = jobs[j].total_tokens;
    serve_jobs.push_back(sj);
  }
  return hserve::ContinuousBatcher(backend, so).Run(serve_jobs);
}

}  // namespace

int main() {
  bench::Reporter rep("ext_scheduler",
                      "Static vs continuous batching for Best-of-N decoding (Qwen2.5-1.5B, "
                      "OnePlus 12)",
                      "runtime scheduling extension");

  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_1_5B();
  o.device = &hexsim::OnePlus12();
  const hrt::Engine engine(o);
  hexllm::Rng rng(404);

  // 12 tasks x Best-of-8 samples, ~384-token solutions with realistic length spread.
  const auto jobs = hrt::MakeSampleJobs(/*tasks=*/12, /*samples_per_task=*/8,
                                        /*mean_tokens=*/384, rng);

  std::printf("%-10s %14s %14s %14s %14s %12s\n", "max_batch", "static t/s", "contin. t/s",
              "speedup", "static util", "avg active");
  for (int max_batch : {4, 8, 16}) {
    const auto st =
        Schedule(jobs, max_batch, engine, 768, hserve::SchedulePolicy::kStaticWaves);
    const auto ct =
        Schedule(jobs, max_batch, engine, 768, hserve::SchedulePolicy::kContinuous);
    std::printf("%-10d %14.1f %14.1f %13.2fx %13.1f%% %12.1f\n", max_batch,
                st.tokens_per_second, ct.tokens_per_second,
                ct.tokens_per_second / st.tokens_per_second, 100.0 * st.slot_utilization,
                ct.avg_active_batch);
    obs::Json& row = rep.AddRow("scheduler_comparison");
    row.Set("max_batch", max_batch);
    row.Set("static_tokens_per_second", st.tokens_per_second);
    row.Set("continuous_tokens_per_second", ct.tokens_per_second);
    row.Set("speedup", ct.tokens_per_second / st.tokens_per_second);
    row.Set("static_slot_utilization", st.slot_utilization);
    row.Set("continuous_avg_active_batch", ct.avg_active_batch);
  }
  rep.Note("the gap is the padding the static scheduler decodes while waiting for each "
           "wave's longest sample; continuous batching keeps every decoded row useful. "
           "The NPU kernels are unchanged — this is purely runtime policy.");

  // --- serving-runtime fidelity: growing contexts + chunked-prefill admissions ---
  rep.Section("per-slot context pricing and prefill accounting");
  std::printf("\nper-slot context pricing and prefill accounting (max_batch 8, 768-token "
              "prompts):\n");
  std::printf("%-26s %12s %12s %12s %12s\n", "pricing", "makespan s", "t/s", "avg ctx",
              "energy J");
  std::vector<hserve::ServeJob> serve_jobs;
  for (const auto& j : jobs) {
    hserve::ServeJob sj;
    sj.id = j.id;
    sj.prompt_group = j.id / 8;  // 8 samples share each task's prompt
    sj.prompt_tokens = 768;
    sj.decode_tokens = j.total_tokens;
    serve_jobs.push_back(sj);
  }
  hserve::ServeOptions so;
  so.max_batch = 8;
  const auto report_pricing = [&](const char* pricing, const hserve::ScheduleResult& r) {
    std::printf("%-26s %12.1f %12.1f %12.0f %12.1f\n", pricing, r.makespan_s,
                r.tokens_per_second, r.avg_context, r.energy_j);
    obs::Json& row = rep.AddRow("pricing_ablation");
    row.Set("pricing", pricing);
    row.Set("makespan_s", r.makespan_s);
    row.Set("tokens_per_second", r.tokens_per_second);
    row.Set("avg_context", r.avg_context);
    row.Set("energy_j", r.energy_j);
  };
  {
    hserve::AnalyticBackend backend(engine);
    const auto r = hserve::ContinuousBatcher(backend, so).Run(serve_jobs);
    report_pricing("growing ctx + prefill", r);
    rep.AttachMetrics(r.metrics, "serving run, growing ctx + prefill");
  }
  {
    // Legacy wrapper semantics for contrast: slots start at the prompt's depth but the
    // prefill itself is never charged.
    std::vector<hserve::ServeJob> free_prompts = serve_jobs;
    for (auto& j : free_prompts) {
      j.prompt_tokens = 0;
      j.context_tokens = 768;
    }
    hserve::AnalyticBackend backend(engine);
    const auto r = hserve::ContinuousBatcher(backend, so).Run(free_prompts);
    report_pricing("growing ctx, free prompts", r);
  }
  {
    // And with no prompt context at all: what pricing from a zero-depth KV would claim.
    std::vector<hserve::ServeJob> no_prompt = serve_jobs;
    for (auto& j : no_prompt) {
      j.prompt_tokens = 0;
    }
    hserve::AnalyticBackend backend(engine);
    const auto r = hserve::ContinuousBatcher(backend, so).Run(no_prompt);
    report_pricing("no prompt context", r);
  }
  rep.Note("ignoring prompt depth understates the cost of every decode step, and "
           "skipping the prefill charge hides work the device must finish before the "
           "first token; the serving runtime prices both, which is what the Pareto "
           "sweep now consumes.");
  return 0;
}

// Extension bench: static vs continuous batching for Best-of-N workloads. Samples finish at
// different lengths; reclaiming finished slots immediately trims the batch-dependent costs
// (CPU lm_head, attention) and removes padding decode — the scheduler a production TTS
// runtime wants on top of the paper's kernels.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/runtime/scheduler.h"

int main() {
  bench::Title("Static vs continuous batching for Best-of-N decoding (Qwen2.5-1.5B, "
               "OnePlus 12)", "runtime scheduling extension");

  hrt::EngineOptions o;
  o.model = &hllm::Qwen25_1_5B();
  o.device = &hexsim::OnePlus12();
  const hrt::Engine engine(o);
  hexllm::Rng rng(404);

  // 12 tasks x Best-of-8 samples, ~384-token solutions with realistic length spread.
  const auto jobs = hrt::MakeSampleJobs(/*tasks=*/12, /*samples_per_task=*/8,
                                        /*mean_tokens=*/384, rng);

  std::printf("%-10s %14s %14s %14s %14s %12s\n", "max_batch", "static t/s", "contin. t/s",
              "speedup", "static util", "avg active");
  for (int max_batch : {4, 8, 16}) {
    const auto st = hrt::RunStaticBatching(jobs, max_batch, engine, 768);
    const auto ct = hrt::RunContinuousBatching(jobs, max_batch, engine, 768);
    std::printf("%-10d %14.1f %14.1f %13.2fx %13.1f%% %12.1f\n", max_batch,
                st.tokens_per_second, ct.tokens_per_second,
                ct.tokens_per_second / st.tokens_per_second, 100.0 * st.slot_utilization,
                ct.avg_active_batch);
  }
  bench::Note("the gap is the padding the static scheduler decodes while waiting for each "
              "wave's longest sample; continuous batching keeps every decoded row useful. "
              "The NPU kernels are unchanged — this is purely runtime policy.");
  return 0;
}

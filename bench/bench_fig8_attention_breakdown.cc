// Figure 8: FlashAttention latency breakdown on the Hexagon NPU (Qwen2.5-1.5B head shape,
// prompt length 4096) across query lengths. The kernel runs functionally on the simulator;
// the component times come from the tagged cycle ledger.
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"

int main() {
  using hexllm::F16;
  bench::Reporter rep("fig8_attention_breakdown",
                      "FlashAttention latency breakdown, Qwen2.5-1.5B head, KV length 4096",
                      "Figure 8");

  const int head_dim = 128;  // Qwen2.5-1.5B
  const int kv_len = bench::SmokePreset() ? 1024 : 4096;
  hexllm::Rng rng(8);

  std::vector<F16> k(static_cast<size_t>(kv_len) * head_dim);
  std::vector<F16> v(k.size());
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = F16(static_cast<float>(rng.NextGaussian() * 0.5));
    v[i] = F16(static_cast<float>(rng.NextGaussian() * 0.5));
  }

  // On-chip compute breakdown; the asynchronous KV DMA overlaps compute and is reported
  // separately.
  std::printf("%-8s %10s %10s %10s %10s %12s %14s\n", "q_len", "softmax%", "matmul%",
              "rescale%", "pack%", "on-chip(ms)", "dma-ovl(ms)");
  for (const int q_len : {1, 4, 16}) {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    hkern::ExpLut lut(dev);
    std::vector<F16> q(static_cast<size_t>(q_len) * head_dim);
    std::vector<F16> o(q.size());
    for (auto& x : q) {
      x = F16(static_cast<float>(rng.NextGaussian() * 0.5));
    }
    hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), k.data(),
                             v.data(), o.data(), q_len, kv_len, head_dim, 0.0884f);
    const auto& ledger = dev.ledger();
    const double softmax = ledger.TagSeconds("attn.softmax");
    const double matmul = ledger.TagSeconds("attn.qk") + ledger.TagSeconds("attn.pv");
    const double rescale = ledger.TagSeconds("attn.rescale");
    const double pack = ledger.TagSeconds("attn.pack");
    const double dma = ledger.TagSeconds("dma");
    const double total = softmax + matmul + rescale + pack;
    std::printf("%-8d %9.1f%% %9.1f%% %9.1f%% %9.1f%% %12.3f %14.3f\n", q_len,
                100 * softmax / total, 100 * matmul / total, 100 * rescale / total,
                100 * pack / total, total * 1e3, dma * 1e3);
    obs::Json& row = rep.AddRow("attention_breakdown");
    row.Set("q_len", q_len);
    row.Set("kv_len", kv_len);
    row.Set("softmax_percent", 100 * softmax / total);
    row.Set("matmul_percent", 100 * matmul / total);
    row.Set("rescale_percent", 100 * rescale / total);
    row.Set("pack_percent", 100 * pack / total);
    row.Set("on_chip_ms", total * 1e3);
    row.Set("dma_overlap_ms", dma * 1e3);
    if (q_len == 16) {
      obs::Registry reg;
      hexsim::ExportDeviceMetrics(dev, reg);
      rep.AttachMetrics(reg.Snapshot(), "q_len=16 device activity");
    }
  }
  rep.Note("matrix multiplication contributes little; Softmax dominates and its share "
           "grows with the query length — the case for the LUT-based exp (§5.2.1).");
  return 0;
}

// Table 4: Qwen2.5-1.5B accuracy with HMX tile quantization groups vs conventional groups
// vs FP16. Errors measured from the real quantizers; the common-group WinoGrande and
// Wikitext cells anchor the sensitivity curves, the rest are model outputs.
#include <cstdio>

#include "bench/reporter.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Reporter rep("table4_tile_quant_accuracy",
                      "Tile quantization groups vs conventional groups, Qwen2.5-1.5B",
                      "Table 4");

  const CapabilityModel cap;
  const auto& m = hllm::Qwen25_1_5B();
  const double tile = cap.tile_group_q4_err();
  const double common = cap.common_group_q4_err();

  std::printf("measured weight reconstruction error (rel RMS):\n");
  std::printf("  tile groups (2x16, HMX order): %.4f\n", tile);
  std::printf("  common groups (32x1)         : %.4f\n", common);
  obs::Json& err_row = rep.AddRow("weight_error");
  err_row.Set("tile_group_rel_rms", tile);
  err_row.Set("common_group_rel_rms", common);

  struct Cell {
    const char* label;
    double paper_tile;
    double paper_common;
    double paper_f16;
  };
  std::printf("\n%-16s %12s %14s %8s\n", "dataset", "Tile group", "Common group", "F16");
  const auto emit = [&](const char* label, double vt, double vc, double vf, const Cell& p) {
    std::printf("%-16s %7.3f [%.3f] %7.3f [%.3f] %7.3f [%.3f]\n", label, vt, p.paper_tile,
                vc, p.paper_common, vf, p.paper_f16);
    obs::Json& row = rep.AddRow("accuracy");
    row.Set("dataset", label);
    row.Set("tile_group", vt);
    row.Set("common_group", vc);
    row.Set("f16", vf);
    rep.AddReference(std::string(label) + " tile group", vt, p.paper_tile);
    rep.AddReference(std::string(label) + " common group", vc, p.paper_common);
    rep.AddReference(std::string(label) + " f16", vf, p.paper_f16);
  };
  emit("WinoGrande (up)", cap.ChoiceAccuracy(Dataset::kWinoGrande, m, tile, 0.0),
       cap.ChoiceAccuracy(Dataset::kWinoGrande, m, common, 0.0),
       cap.ChoiceAccuracy(Dataset::kWinoGrande, m, 0.0, 0.0),
       Cell{"", 62.559, 63.349, 64.613});
  emit("MMLU (up)", cap.ChoiceAccuracy(Dataset::kMmlu, m, tile, 0.0),
       cap.ChoiceAccuracy(Dataset::kMmlu, m, common, 0.0),
       cap.ChoiceAccuracy(Dataset::kMmlu, m, 0.0, 0.0), Cell{"", 35.465, 35.271, 34.819});
  emit("Wiki PPL (dn)", cap.WikiPerplexity(m, tile, 0.0), cap.WikiPerplexity(m, common, 0.0),
       cap.WikiPerplexity(m, 0.0, 0.0), Cell{"", 10.206, 10.190, 9.798});
  std::printf("\n[bracketed] = paper-reported value.\n");
  rep.Note("tile-vs-common deltas are tiny compared with the F16->Q4 gap itself — the "
           "paper's conclusion that the HMX-friendly grouping is accuracy-neutral. (The "
           "paper's sub-point MMLU *increase* under quantization is within evaluation "
           "noise; the monotone model predicts a same-magnitude decrease.)");
  return 0;
}

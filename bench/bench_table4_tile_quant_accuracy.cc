// Table 4: Qwen2.5-1.5B accuracy with HMX tile quantization groups vs conventional groups
// vs FP16. Errors measured from the real quantizers; the common-group WinoGrande and
// Wikitext cells anchor the sensitivity curves, the rest are model outputs.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"

int main() {
  using htts::CapabilityModel;
  using htts::Dataset;
  bench::Title("Tile quantization groups vs conventional groups, Qwen2.5-1.5B", "Table 4");

  const CapabilityModel cap;
  const auto& m = hllm::Qwen25_1_5B();
  const double tile = cap.tile_group_q4_err();
  const double common = cap.common_group_q4_err();

  std::printf("measured weight reconstruction error (rel RMS):\n");
  std::printf("  tile groups (2x16, HMX order): %.4f\n", tile);
  std::printf("  common groups (32x1)         : %.4f\n", common);

  std::printf("\n%-16s %12s %14s %8s\n", "dataset", "Tile group", "Common group", "F16");
  std::printf("%-16s %7.3f [62.559] %7.3f [63.349] %7.3f [64.613]\n", "WinoGrande (up)",
              cap.ChoiceAccuracy(Dataset::kWinoGrande, m, tile, 0.0),
              cap.ChoiceAccuracy(Dataset::kWinoGrande, m, common, 0.0),
              cap.ChoiceAccuracy(Dataset::kWinoGrande, m, 0.0, 0.0));
  std::printf("%-16s %7.3f [35.465] %7.3f [35.271] %7.3f [34.819]\n", "MMLU (up)",
              cap.ChoiceAccuracy(Dataset::kMmlu, m, tile, 0.0),
              cap.ChoiceAccuracy(Dataset::kMmlu, m, common, 0.0),
              cap.ChoiceAccuracy(Dataset::kMmlu, m, 0.0, 0.0));
  std::printf("%-16s %7.3f [10.206] %7.3f [10.190] %7.3f [9.798]\n", "Wiki PPL (dn)",
              cap.WikiPerplexity(m, tile, 0.0), cap.WikiPerplexity(m, common, 0.0),
              cap.WikiPerplexity(m, 0.0, 0.0));
  std::printf("\n[bracketed] = paper-reported value.\n");
  bench::Note("tile-vs-common deltas are tiny compared with the F16->Q4 gap itself — the "
              "paper's conclusion that the HMX-friendly grouping is accuracy-neutral. (The "
              "paper's sub-point MMLU *increase* under quantization is within evaluation "
              "noise; the monotone model predicts a same-magnitude decrease.)");
  return 0;
}

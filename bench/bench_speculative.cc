// Executable speculative decoding through the serving stack (the §9 generate-then-verify
// observation, docs/speculative_decoding.md) — unlike bench_ext_speculative, which evaluates
// the CLOSED-FORM cycle model, every number here comes from actually running draft + verify
// cycles through ContinuousBatcher.
//
// Three parts:
//   1. Analytic sweep (gamma x draft size): a Qwen2.5-7B target decodes a fixed job stream
//      plainly and with each draft/gamma combination on the calibrated cost model.
//      Acceptance per token comes from the capability-model skill gap
//      (htts::SpeculativeAcceptanceRate). Reports tok/s, J/token, measured acceptance and
//      the speedup over plain decode; the default preset (0.5B draft, gamma 4) is the row
//      tools/compare_bench_perf.py --spec gates in CI.
//   2. A closed-form cross-check: the serving speedup at the default preset is compared
//      against htts::EvaluateSpeculative's cycle model as a reference entry.
//   3. Functional bit-identity: a toy target + toy draft decode the same jobs (greedy AND
//      seeded stochastic samplers) plainly and speculatively; the committed streams must be
//      IDENTICAL — the bench exits non-zero otherwise. Per-job token checksums are emitted
//      as `serving_request` rows so CI can additionally diff 1-thread vs 4-thread runs with
//      tools/compare_bench_tokens.py.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/reporter.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"
#include "src/tts/capability_model.h"
#include "src/tts/speculative.h"

namespace {

// FNV-1a over the committed token stream (same construction as the serving frontend's
// per-request checksum): thread-count invariant, order sensitive.
uint64_t TokenChecksum(const std::vector<int>& tokens) {
  uint64_t h = 1469598103934665603ull;
  for (const int t : tokens) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(t));
    h *= 1099511628211ull;
  }
  return h;
}

// The functional draft: smaller than ToyConfig along every axis, same vocabulary (exact
// match acceptance compares token ids, so the id spaces must agree).
hllm::ModelConfig DraftToyConfig() {
  hllm::ModelConfig c = hllm::ToyConfig();
  c.name = "toy-draft";
  c.params_b = 0.004;
  c.hidden = 64;
  c.layers = 1;
  c.heads = 2;
  c.kv_heads = 2;
  c.head_dim = 32;
  c.ffn_hidden = 128;
  return c;
}

std::vector<hserve::ServeJob> AnalyticJobs(int n, int decode, int prompt, bool speculative) {
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < n; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_tokens = prompt;
    j.decode_tokens = decode;
    j.speculative = speculative;
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace

int main() {
  bench::Reporter rep("speculative",
                      "Speculative decoding through the serving stack: gamma x draft sweep",
                      "Section 9 (generate-then-verify on the NPU)");
  const bool smoke = bench::SmokePreset();

  // --- 1. analytic gamma x draft sweep -------------------------------------------------
  const htts::CapabilityModel cap;
  const hexsim::DeviceProfile& device = hexsim::OnePlus12();
  const hllm::ModelConfig& target_cfg = hllm::Qwen25_7B();
  hrt::EngineOptions topt;
  topt.model = &target_cfg;
  topt.device = &device;
  const hrt::Engine target(topt);

  const int n_jobs = smoke ? 4 : 8;
  const int decode = smoke ? 48 : 96;
  const int prompt = smoke ? 32 : 64;
  hserve::ServeOptions so;
  so.max_batch = 4;

  rep.Section(device.soc_name + " / " + target_cfg.name + " target");
  hserve::AnalyticBackend plain_backend(target);
  const hserve::ScheduleResult plain =
      hserve::ContinuousBatcher(plain_backend, so).Run(AnalyticJobs(n_jobs, decode, prompt,
                                                                    /*speculative=*/false));
  if (!plain.error.empty()) {
    std::fprintf(stderr, "plain analytic run failed: %s\n", plain.error.c_str());
    return 1;
  }
  std::printf("%-22s %5s %10s %10s %12s %10s %8s\n", "draft", "gamma", "accept",
              "tok/s", "mJ/token", "speedup", "cycles");
  const double plain_mj =
      plain.decoded_tokens > 0
          ? 1e3 * plain.energy_j / static_cast<double>(plain.decoded_tokens)
          : 0.0;
  std::printf("%-22s %5d %10s %10.2f %12.2f %10s %8lld\n", "(plain decode)", 0, "-",
              plain.tokens_per_second, plain_mj, "1.00x",
              static_cast<long long>(plain.steps));
  obs::Json& base_row = rep.AddRow("spec_sweep");
  base_row.Set("target", target_cfg.name);
  base_row.Set("draft", "none");
  base_row.Set("gamma", 0);
  base_row.Set("acceptance", 0.0);
  base_row.Set("measured_acceptance", 0.0);
  base_row.Set("tokens_per_second", plain.tokens_per_second);
  base_row.Set("joules_per_token",
               plain.decoded_tokens > 0
                   ? plain.energy_j / static_cast<double>(plain.decoded_tokens)
                   : 0.0);
  base_row.Set("speedup_vs_plain", 1.0);
  base_row.Set("spec_cycles", plain.spec_cycles);
  base_row.Set("proposed_tokens", plain.spec_proposed_tokens);
  base_row.Set("accepted_tokens", plain.spec_accepted_tokens);
  base_row.Set("decoded_tokens", plain.decoded_tokens);
  base_row.Set("default_preset", false);

  double default_speedup = 0.0;
  double default_acceptance = 0.0;
  const std::vector<const hllm::ModelConfig*> drafts = {&hllm::Qwen25_0_5B(),
                                                        &hllm::Qwen25_1_5B()};
  const std::vector<int> gammas = smoke ? std::vector<int>{2, 4}
                                        : std::vector<int>{1, 2, 4, 8};
  for (const auto* draft_cfg : drafts) {
    hrt::EngineOptions dopt;
    dopt.model = draft_cfg;
    dopt.device = &device;
    const hrt::Engine draft(dopt);
    const double beta = htts::SpeculativeAcceptanceRate(cap, *draft_cfg, target_cfg);
    for (const int gamma : gammas) {
      hserve::AnalyticBackend::Options bo;
      bo.draft_engine = &draft;
      bo.spec_gamma = gamma;
      bo.spec_acceptance = beta;
      hserve::AnalyticBackend backend(target, bo);
      const hserve::ScheduleResult r =
          hserve::ContinuousBatcher(backend, so).Run(AnalyticJobs(n_jobs, decode, prompt,
                                                                  /*speculative=*/true));
      if (!r.error.empty()) {
        std::fprintf(stderr, "speculative analytic run failed: %s\n", r.error.c_str());
        return 1;
      }
      const double speedup = plain.tokens_per_second > 0.0
                                 ? r.tokens_per_second / plain.tokens_per_second
                                 : 0.0;
      const double mj = r.decoded_tokens > 0
                            ? 1e3 * r.energy_j / static_cast<double>(r.decoded_tokens)
                            : 0.0;
      const double measured_acc = r.metrics.GaugeValue("spec.acceptance_rate");
      std::printf("%-22s %5d %10.2f %10.2f %12.2f %9.2fx %8lld\n", draft_cfg->name.c_str(),
                  gamma, measured_acc, r.tokens_per_second, mj, speedup,
                  static_cast<long long>(r.spec_cycles));
      obs::Json& row = rep.AddRow("spec_sweep");
      row.Set("target", target_cfg.name);
      row.Set("draft", draft_cfg->name);
      row.Set("gamma", gamma);
      row.Set("acceptance", beta);
      row.Set("measured_acceptance", measured_acc);
      row.Set("tokens_per_second", r.tokens_per_second);
      row.Set("joules_per_token",
              r.decoded_tokens > 0
                  ? r.energy_j / static_cast<double>(r.decoded_tokens)
                  : 0.0);
      row.Set("speedup_vs_plain", speedup);
      row.Set("spec_cycles", r.spec_cycles);
      row.Set("proposed_tokens", r.spec_proposed_tokens);
      row.Set("accepted_tokens", r.spec_accepted_tokens);
      row.Set("decoded_tokens", r.decoded_tokens);
      row.Set("default_preset", false);
    }
  }

  // The acceptance-favorable DEFAULT PRESET: 0.5B draft at the backend's own defaults
  // (gamma 4, acceptance 0.8 — the upper end of what same-family draft pairs report, vs
  // the conservative skill-gap-derived rates the sweep uses). This is the row the CI gate
  // (tools/compare_bench_perf.py --spec) holds to >= 1.5x plain decode.
  {
    hrt::EngineOptions dopt;
    dopt.model = &hllm::Qwen25_0_5B();
    dopt.device = &device;
    const hrt::Engine draft(dopt);
    hserve::AnalyticBackend::Options bo;  // spec_gamma / spec_acceptance stay at defaults
    bo.draft_engine = &draft;
    hserve::AnalyticBackend backend(target, bo);
    const hserve::ScheduleResult r =
        hserve::ContinuousBatcher(backend, so).Run(AnalyticJobs(n_jobs, decode, prompt,
                                                                /*speculative=*/true));
    if (!r.error.empty()) {
      std::fprintf(stderr, "default-preset analytic run failed: %s\n", r.error.c_str());
      return 1;
    }
    default_speedup = plain.tokens_per_second > 0.0
                          ? r.tokens_per_second / plain.tokens_per_second
                          : 0.0;
    default_acceptance = bo.spec_acceptance;
    const double mj = r.decoded_tokens > 0
                          ? 1e3 * r.energy_j / static_cast<double>(r.decoded_tokens)
                          : 0.0;
    std::printf("%-22s %5d %10.2f %10.2f %12.2f %9.2fx %8lld  <- default preset\n",
                "Qwen2.5-0.5B-Instruct", bo.spec_gamma,
                r.metrics.GaugeValue("spec.acceptance_rate"), r.tokens_per_second, mj,
                default_speedup, static_cast<long long>(r.spec_cycles));
    obs::Json& row = rep.AddRow("spec_sweep");
    row.Set("target", target_cfg.name);
    row.Set("draft", hllm::Qwen25_0_5B().name);
    row.Set("gamma", bo.spec_gamma);
    row.Set("acceptance", bo.spec_acceptance);
    row.Set("measured_acceptance", r.metrics.GaugeValue("spec.acceptance_rate"));
    row.Set("tokens_per_second", r.tokens_per_second);
    row.Set("joules_per_token",
            r.decoded_tokens > 0
                ? r.energy_j / static_cast<double>(r.decoded_tokens)
                : 0.0);
    row.Set("speedup_vs_plain", default_speedup);
    row.Set("spec_cycles", r.spec_cycles);
    row.Set("proposed_tokens", r.spec_proposed_tokens);
    row.Set("accepted_tokens", r.spec_accepted_tokens);
    row.Set("decoded_tokens", r.decoded_tokens);
    row.Set("default_preset", true);
    rep.AttachMetrics(r.metrics, "analytic default preset (0.5B draft, gamma 4, acc 0.8)");
  }

  // --- 2. closed-form cross-check ------------------------------------------------------
  // The executable serving path should land near the closed-form cycle model's speedup at
  // the same preset (batching, chunked prefill and per-slot contexts make it inexact).
  {
    hrt::EngineOptions dopt;
    dopt.model = &hllm::Qwen25_0_5B();
    dopt.device = &device;
    const hrt::Engine draft(dopt);
    const htts::SpeculativeReport closed = htts::EvaluateSpeculative(
        target, draft, default_acceptance, /*gamma=*/4, /*context=*/prompt + decode / 2);
    rep.Section("closed-form cross-check (0.5B draft, gamma 4)");
    std::printf("serving speedup %.2fx vs closed-form cycle model %.2fx "
                "(acceptance %.2f)\n",
                default_speedup, closed.speedup, default_acceptance);
    rep.AddReference("default-preset speedup vs closed-form model", default_speedup,
                     closed.speedup, "x");
  }

  // --- 3. functional bit-identity + thread-compare rows --------------------------------
  // Toy target + toy draft decode the same jobs plainly and speculatively. Losslessness
  // demands IDENTICAL committed streams for every sampler; the bench is its own gate.
  rep.Section("functional toy: speculative == plain, per-job checksums");
  const hllm::ModelConfig toy = hllm::ToyConfig();
  const hllm::ModelConfig toy_draft = DraftToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(toy, 42);
  const hllm::ModelWeights draft_weights = hllm::ModelWeights::Random(toy_draft, 7);

  const int fn_jobs = smoke ? 4 : 6;
  const int fn_decode = smoke ? 16 : 24;
  std::vector<hserve::ServeJob> jobs;
  for (int i = 0; i < fn_jobs; ++i) {
    hserve::ServeJob j;
    j.id = i;
    j.prompt_tokens = 10;
    j.decode_tokens = fn_decode;
    j.seed = 100 + static_cast<uint64_t>(i);
    if (i % 2 == 1) {  // odd jobs sample stochastically — losslessness is sampler-agnostic
      j.sampler.temperature = 0.8f;
      j.sampler.top_k = 8;
    }
    jobs.push_back(j);
  }
  hserve::ServeOptions fso;
  fso.max_batch = 3;
  const auto run_functional = [&](int gamma) {
    hexsim::NpuDevice dev(device);
    std::vector<hserve::ServeJob> js = jobs;
    for (auto& j : js) {
      j.speculative = gamma > 0;
    }
    if (gamma <= 0) {
      hserve::FunctionalBackend backend(dev, weights, fso.max_batch, /*max_context=*/160);
      return hserve::ContinuousBatcher(backend, fso).Run(js);
    }
    hserve::FunctionalBackend::SpecOptions spec;
    spec.draft = &draft_weights;
    spec.gamma = gamma;
    hserve::FunctionalBackend backend(dev, weights, fso.max_batch, /*max_context=*/160,
                                      /*kv_pool_blocks=*/0, hquant::KvDtype::kF16,
                                      hquant::kGroupSize, spec);
    return hserve::ContinuousBatcher(backend, fso).Run(js);
  };
  const hserve::ScheduleResult fn_plain = run_functional(/*gamma=*/0);
  const hserve::ScheduleResult fn_spec = run_functional(/*gamma=*/4);
  if (!fn_plain.error.empty() || !fn_spec.error.empty()) {
    std::fprintf(stderr, "functional run failed: %s%s\n", fn_plain.error.c_str(),
                 fn_spec.error.c_str());
    return 1;
  }
  if (fn_spec.job_tokens != fn_plain.job_tokens) {
    std::fprintf(stderr, "LOSSLESSNESS VIOLATION: speculative committed stream differs "
                         "from plain decode\n");
    return 1;
  }
  std::printf("%-8s %-8s %8s %8s %20s\n", "request", "sampler", "prompt", "tokens",
              "checksum");
  for (size_t i = 0; i < fn_spec.job_tokens.size(); ++i) {
    const std::vector<int>& toks = fn_spec.job_tokens[i];
    char checksum_hex[20];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(TokenChecksum(toks)));
    const char* sampler = jobs[i].sampler.temperature > 0.0f ? "top_k" : "greedy";
    std::printf("%-8d %-8s %8d %8zu %20s\n", jobs[i].id, sampler, jobs[i].prompt_tokens,
                toks.size(), checksum_hex);
    obs::Json& row = rep.AddRow("serving_request");
    row.Set("request", jobs[i].id);
    row.Set("sampler", sampler);
    row.Set("prompt_tokens", jobs[i].prompt_tokens);
    row.Set("tokens", static_cast<int64_t>(toks.size()));
    row.Set("token_checksum", checksum_hex);
  }
  std::printf("speculative cycles %lld, proposed %lld, accepted %lld "
              "(acceptance %.2f), steps %lld vs plain %lld\n",
              static_cast<long long>(fn_spec.spec_cycles),
              static_cast<long long>(fn_spec.spec_proposed_tokens),
              static_cast<long long>(fn_spec.spec_accepted_tokens),
              fn_spec.metrics.GaugeValue("spec.acceptance_rate"),
              static_cast<long long>(fn_spec.steps),
              static_cast<long long>(fn_plain.steps));
  rep.AttachMetrics(fn_spec.metrics, "functional toy speculative run");

  // Random toy weights rarely agree token-for-token, so the run above mostly exercises the
  // REJECT path (rollback). A perfect draft — the target itself — exercises the accept
  // path end to end: every proposal lands, cycles shrink accordingly, stream unchanged.
  {
    std::vector<hserve::ServeJob> greedy_jobs = jobs;
    for (auto& j : greedy_jobs) {
      j.sampler = hserve::GreedySampler();  // all-greedy: argmax proposals always land
    }
    const auto run_greedy = [&](bool speculative) {
      hexsim::NpuDevice dev(device);
      std::vector<hserve::ServeJob> js = greedy_jobs;
      for (auto& j : js) {
        j.speculative = speculative;
      }
      if (!speculative) {
        hserve::FunctionalBackend backend(dev, weights, fso.max_batch, /*max_context=*/160);
        return hserve::ContinuousBatcher(backend, fso).Run(js);
      }
      hserve::FunctionalBackend::SpecOptions spec;
      spec.draft = &weights;  // draft == target: every greedy proposal is accepted
      spec.gamma = 4;
      hserve::FunctionalBackend backend(dev, weights, fso.max_batch, /*max_context=*/160,
                                        /*kv_pool_blocks=*/0, hquant::KvDtype::kF16,
                                        hquant::kGroupSize, spec);
      return hserve::ContinuousBatcher(backend, fso).Run(js);
    };
    const hserve::ScheduleResult greedy_plain = run_greedy(false);
    const hserve::ScheduleResult perfect = run_greedy(true);
    if (!perfect.error.empty() || !greedy_plain.error.empty() ||
        perfect.job_tokens != greedy_plain.job_tokens) {
      std::fprintf(stderr, "perfect-draft run diverged from plain decode\n");
      return 1;
    }
    std::printf("perfect draft (target as its own draft): acceptance %.2f, steps %lld, "
                "accepted %lld/%lld\n",
                perfect.metrics.GaugeValue("spec.acceptance_rate"),
                static_cast<long long>(perfect.steps),
                static_cast<long long>(perfect.spec_accepted_tokens),
                static_cast<long long>(perfect.spec_proposed_tokens));
    obs::Json& row = rep.AddRow("functional_spec_summary");
    row.Set("variant", "perfect_draft");
    row.Set("steps", perfect.steps);
    row.Set("plain_steps", greedy_plain.steps);
    row.Set("proposed_tokens", perfect.spec_proposed_tokens);
    row.Set("accepted_tokens", perfect.spec_accepted_tokens);
    row.Set("lossless", true);
  }

  rep.Note("All numbers come from executing draft + verify cycles through "
           "ContinuousBatcher, not the closed-form model (that is "
           "bench_ext_speculative). The committed stream is checked bit-identical "
           "to plain decode in-process, and the serving_request checksums are "
           "thread-count invariant: CI diffs 1- vs 4-thread reports with "
           "tools/compare_bench_tokens.py and gates the default-preset speedup with "
           "tools/compare_bench_perf.py --spec.");
  return 0;
}

// Serving-frontend benchmark: a seeded bursty request trace (interactive + batch classes,
// multi-turn sessions) served through ServingEngine -> ContinuousBatcher -> the functional
// toy model, with SLO-aware preemptive admission enabled.
//
// Reports goodput (decoded tokens of SLO-meeting requests per simulated second), TTFT and
// TPOT p50/p99, and preemption/resume counts. The trace is run TWICE on fresh backends and
// the per-request streamed-token checksums must agree — the bench itself is the
// determinism gate, and CI additionally runs it at HEXLLM_NUM_THREADS=1 and =4, comparing
// the two reports with tools/compare_bench_tokens.py (docs/serving_frontend.md).
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/reporter.h"
#include "src/frontend/serving_engine.h"
#include "src/frontend/traffic.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/weights.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"

int main() {
  bench::Reporter rep("serving_slo",
                      "Live serving: goodput and latency SLOs under bursty traffic",
                      "Serving frontend (ROADMAP: production serving path)");

  hfront::TrafficOptions traffic;
  traffic.arrivals = 40;
  traffic.seed = 2026;
  traffic.arrival_rate_hz = 400.0;
  traffic.burst_fraction = 0.4;
  traffic.burst_size = 5;
  traffic.interactive_fraction = 0.35;
  traffic.interactive_slo = {0.5, 0.2};
  traffic.mean_prompt_tokens = 40;
  traffic.min_prompt_tokens = 8;
  traffic.mean_decode_tokens = 32;
  traffic.min_decode_tokens = 8;
  traffic.session_fraction = 0.25;
  traffic.session_turns = 3;
  traffic.mean_think_s = 0.5;
  if (bench::SmokePreset()) {
    traffic.arrivals = 12;
    traffic.session_turns = 2;
  }
  const std::vector<hfront::Request> trace = hfront::GenerateTraffic(traffic);

  const hllm::ModelConfig toy = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(toy, 1234);
  hserve::ServeOptions so;
  so.max_batch = 4;
  so.enable_preemption = true;

  const auto run = [&]() {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    hserve::FunctionalBackend backend(dev, weights, so.max_batch, /*max_context=*/2048);
    hserve::ContinuousBatcher batcher(backend, so);
    hfront::ServingEngine engine(batcher);
    return engine.Run(trace);
  };
  const hfront::EngineSummary s = run();
  if (!s.schedule.error.empty()) {
    std::fprintf(stderr, "serving run failed: %s\n", s.schedule.error.c_str());
    return 1;
  }
  // Determinism gate: the identical trace on a fresh backend must stream identical tokens
  // per request (seeded samplers, simulated clock — nothing host-timing dependent).
  const hfront::EngineSummary s2 = run();
  for (size_t i = 0; i < s.requests.size(); ++i) {
    if (s.requests[i].checksum != s2.requests[i].checksum ||
        s.requests[i].tokens != s2.requests[i].tokens) {
      std::fprintf(stderr, "request %d: rerun checksum mismatch (%016llx vs %016llx)\n",
                   s.requests[i].id,
                   static_cast<unsigned long long>(s.requests[i].checksum),
                   static_cast<unsigned long long>(s2.requests[i].checksum));
      return 1;
    }
  }

  rep.Section("per-request stream (simulated clock)");
  std::printf("%-8s%-9s%-6s%10s%10s%12s%12s%8s%8s%20s\n", "request", "session", "turn",
              "prompt", "tokens", "ttft (ms)", "tpot (ms)", "preempt", "slo", "checksum");
  std::vector<double> ttft;
  std::vector<double> tpot;
  std::vector<double> ttft_interactive;
  for (const hfront::RequestStats& st : s.requests) {
    ttft.push_back(st.ttft_s());
    if (st.tokens > 1) {
      tpot.push_back(st.tpot_s());
    }
    if (st.slo.ttft_s > 0.0) {
      ttft_interactive.push_back(st.ttft_s());
    }
    char checksum_hex[20];
    std::snprintf(checksum_hex, sizeof(checksum_hex), "%016llx",
                  static_cast<unsigned long long>(st.checksum));
    std::printf("%-8d%-9d%-6d%10d%10d%12.2f%12.2f%8d%8s%20s\n", st.id, st.session,
                st.turn_index, trace[static_cast<size_t>(st.id)].prompt_tokens, st.tokens,
                st.ttft_s() * 1e3, st.tpot_s() * 1e3, st.preemptions,
                st.slo_ok() ? "ok" : "MISS", checksum_hex);
    obs::Json& row = rep.AddRow("serving_request");
    row.Set("request", st.id);
    row.Set("session", st.session);
    row.Set("turn", st.turn_index);
    row.Set("priority", trace[static_cast<size_t>(st.id)].priority);
    row.Set("prompt_tokens", trace[static_cast<size_t>(st.id)].prompt_tokens);
    row.Set("tokens", st.tokens);
    row.Set("token_checksum", checksum_hex);
    row.Set("ttft_seconds", st.ttft_s());
    row.Set("tpot_seconds", st.tpot_s());
    row.Set("preemptions", st.preemptions);
    row.Set("resumes", st.resumes);
    row.Set("slo_ok", st.slo_ok());
  }

  rep.Section("aggregate");
  const double ttft_p50 = hfront::Percentile(ttft, 0.5);
  const double ttft_p99 = hfront::Percentile(ttft, 0.99);
  const double tpot_p50 = hfront::Percentile(tpot, 0.5);
  const double tpot_p99 = hfront::Percentile(tpot, 0.99);
  std::printf("requests %zu (slo-bound %lld, met %lld)   goodput %.1f tok/s   "
              "ttft p50/p99 %.1f/%.1f ms   tpot p50/p99 %.2f/%.2f ms   "
              "preemptions %lld resumes %lld\n",
              s.requests.size(), static_cast<long long>(s.slo_total),
              static_cast<long long>(s.slo_met), s.goodput_tps, ttft_p50 * 1e3,
              ttft_p99 * 1e3, tpot_p50 * 1e3, tpot_p99 * 1e3,
              static_cast<long long>(s.schedule.preemptions),
              static_cast<long long>(s.schedule.resumes));
  obs::Json& agg = rep.AddRow("serving_aggregate");
  agg.Set("requests", static_cast<int64_t>(s.requests.size()));
  agg.Set("slo_total", s.slo_total);
  agg.Set("slo_met", s.slo_met);
  agg.Set("goodput_tokens_per_second", s.goodput_tps);
  agg.Set("ttft_p50_seconds", ttft_p50);
  agg.Set("ttft_p99_seconds", ttft_p99);
  agg.Set("ttft_interactive_p99_seconds", hfront::Percentile(ttft_interactive, 0.99));
  agg.Set("tpot_p50_seconds", tpot_p50);
  agg.Set("tpot_p99_seconds", tpot_p99);
  agg.Set("preemptions", s.schedule.preemptions);
  agg.Set("resumes", s.schedule.resumes);
  agg.Set("admission_deferrals", s.schedule.admission_deferrals);
  agg.Set("forked_admissions", s.schedule.forked_admissions);
  agg.Set("makespan_seconds", s.schedule.makespan_s);
  agg.Set("idle_seconds", s.schedule.idle_s);
  agg.Set("kv_sharing_ratio", s.schedule.kv.sharing_ratio());

  rep.AttachMetrics(s.schedule.metrics, "serving run (functional toy, preemption on)");
  rep.Note("Times are the batcher's SIMULATED clock, so the whole report is "
           "thread-count invariant; CI compares the 1- and 4-thread reports' "
           "serving_request rows with tools/compare_bench_tokens.py. Interactive "
           "requests (priority 1) may pause a running batch decode; the victim resumes "
           "bit-identically from its retained paged KV (tests/frontend_test.cc asserts "
           "the token streams and KV block accounting match an un-preempted run).");
  return 0;
}

// Extension bench (§8a future work, implemented): T-MAC-style LUT GEMV vs the paper's
// dequant+HMX pipeline. The paper predicts T-MAC "could enable efficient GEMV ... thereby
// accelerating the LLM decoding process"; this sweep shows where that holds — batch 1-2 —
// and where the HMX path's batch amortization wins it back, which is exactly the regime
// test-time scaling lives in.
#include <cstdio>

#include "bench/reporter.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/tmac_gemv.h"
#include "src/runtime/engine.h"

int main() {
  bench::Reporter rep("ext_tmac_gemv", "T-MAC LUT GEMV vs dequant+HMX (extension of §8a)",
                      "Discussion §8(a)");

  const auto& profile = hexsim::OnePlus12();

  rep.Section("kernel level: Qwen1.5B FFN gate matrix 1536x8960, Q4");
  std::printf("%-8s %16s %16s %14s\n", "batch", "dequant+HMX(us)", "T-MAC(us)", "T-MAC wins?");
  for (int m : {1, 2, 4, 8, 16}) {
    const auto ours = hkern::MixedGemmCostModel(profile, hkern::DequantKernel::kCoalescedLut,
                                                hquant::WeightScheme::kQ4_0, m, 1536, 8960, 4);
    const auto tmac = hkern::TmacGemvCostModel(profile, m, 1536, 8960, profile.hvx_threads);
    std::printf("%-8d %16.1f %16.1f %14s\n", m, ours.total_s * 1e6, tmac.total_s * 1e6,
                tmac.total_s < ours.total_s ? "yes" : "no");
    obs::Json& row = rep.AddRow("kernel_gemv");
    row.Set("batch", m);
    row.Set("dequant_hmx_us", ours.total_s * 1e6);
    row.Set("tmac_us", tmac.total_s * 1e6);
    row.Set("tmac_wins", tmac.total_s < ours.total_s);
  }

  rep.Section("end-to-end decode throughput, Qwen2.5-1.5B on OnePlus 12");
  hrt::EngineOptions base;
  base.model = &hllm::Qwen25_1_5B();
  base.device = &profile;
  const hrt::Engine hmx_engine(base);
  hrt::EngineOptions tm = base;
  tm.use_tmac_gemv = true;
  const hrt::Engine tmac_engine(tm);

  std::printf("%-8s %18s %16s\n", "batch", "dequant+HMX(t/s)", "T-MAC(t/s)");
  for (int b : {1, 2, 4, 8, 16}) {
    const double hmx_tps = hmx_engine.DecodeThroughput(b, 1024);
    const double tmac_tps = tmac_engine.DecodeThroughput(b, 1024);
    std::printf("%-8d %18.1f %16.1f\n", b, hmx_tps, tmac_tps);
    obs::Json& row = rep.AddRow("decode_throughput");
    row.Set("batch", b);
    row.Set("dequant_hmx_tps", hmx_tps);
    row.Set("tmac_tps", tmac_tps);
  }
  rep.AddReference("qwen2.5-1.5b tmac b=1 tokens/s", tmac_engine.DecodeThroughput(1, 1024),
                   34.0, "tokens/s");
  rep.Note("T-MAC makes batch-1 GEMV DMA-bound (the §8a prediction), but its "
           "activation-dependent LUTs scale linearly with batch, so the HMX pipeline "
           "dominates the test-time-scaling regime (batch >= 4). Both belong in a "
           "production system: T-MAC for interactive chat, dequant+HMX for scaled "
           "reasoning.");
  return 0;
}

// Step-level beam search with a process reward model (Figure 1 right, §2.1): compare
// Best-of-N and Beam Search at equal generation budgets, including the verifier-quality
// sensitivity that decides which method wins.
#include <cstdio>

#include "src/base/rng.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

int main() {
  using namespace htts;
  const CapabilityModel cap;
  const auto& model = hllm::Llama32_1B();

  std::printf("Best-of-N vs step-level Beam Search at equal budgets — %s, GSM8K-class tasks\n\n",
              model.name.c_str());

  const TaskSet tasks = GenerateTaskSet(Dataset::kGsm8k, 600, 31);
  const double theta = cap.EffectiveTheta(model, Dataset::kGsm8k,
                                          cap.DeployedWeightErr(model),
                                          cap.lut_f16_attention_err());
  hexllm::Rng rng(7);
  const OutcomeRewardModel orm;
  const ProcessRewardModel prm;

  std::printf("single-sample baseline: %.1f%%\n\n",
              100 * RunSingleSample(tasks, theta, 10, rng).accuracy);

  std::printf("%-8s %14s %18s %14s\n", "budget", "Best-of-N", "Beam (expand=4)", "oracle pass@N");
  for (int n : {4, 8, 16}) {
    const auto bon = RunBestOfN(tasks, theta, orm, n, 10, rng);
    const auto beam = RunBeamSearch(tasks, theta, prm, n, /*expansion=*/4, 10, rng);
    std::printf("%-8d %13.1f%% %17.1f%% %13.1f%%\n", n, 100 * bon.accuracy,
                100 * beam.accuracy, 100 * bon.oracle_accuracy);
  }

  std::printf("\nverifier-quality sensitivity (budget 16):\n");
  std::printf("%-26s %10s\n", "ORM discrimination", "accuracy");
  for (double disc : {0.0, 0.5, 1.2, 2.5, 6.0}) {
    const OutcomeRewardModel rm(disc);
    const auto r = RunBestOfN(tasks, theta, rm, 16, 10, rng);
    std::printf("%-26.1f %9.1f%%\n", disc, 100 * r.accuracy);
  }
  std::printf("\nA blind verifier (0.0) degenerates to single-sample accuracy; a strong one\n"
              "approaches the pass@N oracle. The step-level PRM lets beam search prune bad\n"
              "prefixes early, which is why it extracts more accuracy per unit budget.\n");
  return 0;
}

// Step-level beam search with a process reward model (Figure 1 right, §2.1): compare
// Best-of-N and Beam Search at equal generation budgets, including the verifier-quality
// sensitivity that decides which method wins. Both methods' workloads are served through
// the continuous batcher, so each row also reports the on-device makespan of the whole
// evaluation — beam search pays for its accuracy with barrier waves (round r+1 cannot
// start until round r's candidates are scored).
#include <cstdio>
#include <vector>

#include "src/base/rng.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

namespace {

double ServeMakespan(const hrt::Engine& engine, const std::vector<hserve::ServeJob>& jobs,
                     int max_batch) {
  hserve::AnalyticBackend backend(engine);
  hserve::ServeOptions so;
  so.max_batch = max_batch;
  return hserve::ContinuousBatcher(backend, so).Run(jobs).makespan_s;
}

}  // namespace

int main() {
  using namespace htts;
  const CapabilityModel cap;
  const auto& model = hllm::Llama32_1B();
  const auto& device = hexsim::OnePlus12();

  std::printf("Best-of-N vs step-level Beam Search at equal budgets — %s, GSM8K-class tasks\n\n",
              model.name.c_str());

  const TaskSet tasks = GenerateTaskSet(Dataset::kGsm8k, 600, 31);
  const double theta = cap.EffectiveTheta(model, Dataset::kGsm8k,
                                          cap.DeployedWeightErr(model),
                                          cap.lut_f16_attention_err());
  hexllm::Rng rng(7);
  const OutcomeRewardModel orm;
  const ProcessRewardModel prm;
  hrt::EngineOptions eo;
  eo.model = &model;
  eo.device = &device;
  const hrt::Engine engine(eo);

  std::printf("single-sample baseline: %.1f%%\n\n",
              100 * RunSingleSample(tasks, theta, 10, rng).accuracy);

  std::printf("%-8s %14s %12s %18s %12s %14s\n", "budget", "Best-of-N", "BoN mksp s",
              "Beam (expand=4)", "beam mksp s", "oracle pass@N");
  for (int n : {4, 8, 16}) {
    std::vector<hserve::ServeJob> bon_jobs;
    std::vector<hserve::ServeJob> beam_jobs;
    const auto bon = RunBestOfN(tasks, theta, orm, n, 10, rng, &bon_jobs);
    const auto beam = RunBeamSearch(tasks, theta, prm, n, /*expansion=*/4, 10, rng,
                                    &beam_jobs);
    const double bon_s = ServeMakespan(engine, bon_jobs, n);
    const double beam_s = ServeMakespan(engine, beam_jobs, n);
    std::printf("%-8d %13.1f%% %12.0f %17.1f%% %12.0f %13.1f%%\n", n, 100 * bon.accuracy,
                bon_s, 100 * beam.accuracy, beam_s, 100 * bon.oracle_accuracy);
  }

  std::printf("\nverifier-quality sensitivity (budget 16):\n");
  std::printf("%-26s %10s\n", "ORM discrimination", "accuracy");
  for (double disc : {0.0, 0.5, 1.2, 2.5, 6.0}) {
    const OutcomeRewardModel rm(disc);
    const auto r = RunBestOfN(tasks, theta, rm, 16, 10, rng);
    std::printf("%-26.1f %9.1f%%\n", disc, 100 * r.accuracy);
  }
  std::printf("\nA blind verifier (0.0) degenerates to single-sample accuracy; a strong one\n"
              "approaches the pass@N oracle. The step-level PRM lets beam search prune bad\n"
              "prefixes early, which is why it extracts more accuracy per unit budget —\n"
              "at the price of the barrier waves visible in the makespan column.\n");
  return 0;
}

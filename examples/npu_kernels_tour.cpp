// A guided tour of the NPU op library's key techniques, at instruction level:
//
//   stop 1 — tile-group quantization: quantize a matrix in HMX stream order, coalesce
//            super-blocks, and dequantize with two vand/vshr + four vlut16 + four vmpy per
//            256 weights (§5.1, §5.2.2);
//   stop 2 — the 64 KiB exp LUT: build it in TCM, drive it with vgather, and compare its
//            accuracy against the FP16 polynomial (§5.2.1);
//   stop 3 — FP16 FlashAttention (Algorithm 1) with the component-level cycle breakdown;
//   stop 4 — the rpcmem coherence discipline: what happens when you forget the cache flush.
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/hexsim/rpcmem.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/softmax.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

using hexllm::F16;

int main() {
  hexsim::NpuDevice dev(hexsim::OnePlus12());
  hexllm::Rng rng(2718);

  // ---- stop 1: tile-group quantization + LUT dequantization ----
  std::printf("== stop 1: tile quantization & vlut16 dequantization ==\n");
  const int64_t k = 256, n = 256;
  const auto w = hquant::GenerateLlmLikeMatrix(k, n, rng);
  const auto blocks = hquant::TileGroupQuantizeQ4(w, k, n);
  const auto sbs = hquant::CoalesceSuperblocks(blocks);
  std::printf("quantized %lldx%lld matrix into %zu Q4 groups -> %zu super-blocks (%zu B each; "
              "INT4 payload fills one 128 B HVX register)\n",
              static_cast<long long>(k), static_cast<long long>(n), blocks.size(), sbs.size(),
              sizeof(hquant::SuperBlockQ4));
  auto* w_tcm = reinterpret_cast<F16*>(dev.tcm().Alloc(k * n * 2));
  const int64_t packets = hkern::DequantCoalescedLut(dev, sbs, w_tcm);
  std::printf("dequantized on HVX with %lld packets = %.2f packets per 64 weights "
              "(conventional unpack: %.1f; baseline with scatter: %.1f)\n",
              static_cast<long long>(packets),
              static_cast<double>(packets) / (static_cast<double>(k) * n / 64),
              hkern::DequantPacketsPer64(dev.profile(), hkern::DequantKernel::kHmxLayout),
              hkern::DequantPacketsPer64(dev.profile(),
                                         hkern::DequantKernel::kBaselineScatter));

  // ---- stop 2: the exp LUT ----
  std::printf("\n== stop 2: the 64 KiB exp LUT in TCM ==\n");
  hkern::ExpLut lut(dev);
  std::printf("LUT occupies %lld KiB at TCM offset %lld (%.1f%% of TCM)\n",
              static_cast<long long>(hkern::ExpLut::kBytes >> 10),
              static_cast<long long>(lut.tcm_offset()),
              100.0 * hkern::ExpLut::kBytes / dev.tcm().capacity());
  double lut_err = 0.0, poly_err = 0.0;
  for (float x = -9.0f; x < 0.0f; x += 0.011f) {
    const F16 xh(x);
    const double exact = std::exp(static_cast<double>(xh.ToFloat()));
    lut_err += std::fabs(lut.Lookup(xh) - exact);
    hexsim::HvxVec reg = dev.hvx().VSplatHf(x);
    const auto out = hkern::ExpNonPosF16(dev, hkern::SoftmaxVariant::kF16Poly, nullptr, reg, 1);
    poly_err += std::fabs(out.GetHf(0) - exact);
  }
  std::printf("mean |error| over [-9, 0): LUT %.2e vs F16 polynomial %.2e — the LUT wins "
              "because entries are precomputed in double precision\n",
              lut_err / 819, poly_err / 819);

  // ---- stop 3: FlashAttention breakdown ----
  std::printf("\n== stop 3: FP16 FlashAttention (Algorithm 1) ==\n");
  const int q_len = 8, kv_len = 1024, d = 128;
  std::vector<F16> q(static_cast<size_t>(q_len) * d), o(q.size());
  std::vector<F16> kk(static_cast<size_t>(kv_len) * d), v(kk.size());
  for (auto& x : q) {
    x = F16(static_cast<float>(rng.NextGaussian() * 0.5));
  }
  for (size_t i = 0; i < kk.size(); ++i) {
    kk[i] = F16(static_cast<float>(rng.NextGaussian() * 0.5));
    v[i] = F16(static_cast<float>(rng.NextGaussian() * 0.5));
  }
  hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), kk.data(),
                           v.data(), o.data(), q_len, kv_len, d,
                           1.0f / std::sqrt(static_cast<float>(d)));
  const auto& ledger = dev.ledger();
  std::printf("per-component busy time (q=%d, kv=%d, d=%d):\n", q_len, kv_len, d);
  for (const char* tag : {"attn.softmax", "attn.qk", "attn.pv", "attn.rescale", "attn.pack"}) {
    std::printf("  %-14s %8.1f us\n", tag, ledger.TagSeconds(tag) * 1e6);
  }

  // ---- stop 4: one-way coherence ----
  std::printf("\n== stop 4: rpcmem one-way coherence ==\n");
  hexsim::RpcmemPool pool;
  auto buf = pool.Alloc(4096, "activations");
  buf->CpuView()[0] = 42;  // CPU writes...
  std::printf("CPU wrote a shared buffer; cpu_dirty=%d. Reading it from the NPU now would "
              "abort the simulator (stale-cache bug on real hardware).\n", buf->cpu_dirty());
  buf->FlushForNpu();  // ...the mandatory maintenance pair...
  std::printf("after FlushForNpu: NPU sees %d. NPU->CPU needs no maintenance (the coherent "
              "direction).\n", buf->NpuView()[0]);
  return 0;
}

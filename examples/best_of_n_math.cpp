// Best-of-N test-time scaling on synthetic MATH500-class reasoning tasks, coupled to the
// on-device cost model — the workload from the paper's introduction: can a 1.5B model on a
// phone beat a conventionally-decoded 3B model by spending otherwise-idle NPU compute?
//
// Pipeline:
//   1. measure quantization error with the repo's quantizers, derive the deployed model's
//      skill via the capability model;
//   2. run Best-of-N with a simulated outcome reward model across budgets, emitting each
//      budget's generation workload as a serving job stream;
//   3. serve the stream through the continuous batcher (decode batch = N, per-slot growing
//      contexts, shared-prompt chunked prefill) so accuracy, makespan, energy and a Chrome
//      trace all come from ONE run — and compare against the 3B model's conventional
//      decoding.
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/base/rng.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/serving/execution_backend.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

namespace {

// Serves a TTS job stream at the given decode batch; returns the aggregate schedule.
hserve::ScheduleResult Serve(const hrt::Engine& engine,
                             const std::vector<hserve::ServeJob>& jobs, int max_batch,
                             bool record_trace = false) {
  hserve::AnalyticBackend backend(engine);
  hserve::ServeOptions so;
  so.max_batch = max_batch;
  so.record_trace = record_trace;
  return hserve::ContinuousBatcher(backend, so).Run(jobs);
}

}  // namespace

int main() {
  using namespace htts;
  const CapabilityModel cap;
  const auto& device = hexsim::OnePlus12();
  const auto& small = hllm::Qwen25_1_5B();
  const auto& large = hllm::Qwen25_3B();

  std::printf("Best-of-N on MATH500-class tasks — %s vs %s, %s\n\n", small.name.c_str(),
              large.name.c_str(), device.device_name.c_str());

  const TaskSet tasks = GenerateTaskSet(Dataset::kMath500, 500, 2024);
  const OutcomeRewardModel orm;  // Skywork-style outcome scorer (simulated)
  hexllm::Rng rng(99);

  const double theta_small = cap.EffectiveTheta(small, Dataset::kMath500,
                                                cap.DeployedWeightErr(small),
                                                cap.lut_f16_attention_err());
  const double theta_large = cap.EffectiveTheta(large, Dataset::kMath500,
                                                cap.DeployedWeightErr(large),
                                                cap.lut_f16_attention_err());

  hrt::EngineOptions so;
  so.model = &small;
  so.device = &device;
  const hrt::Engine small_engine(so);
  hrt::EngineOptions lo;
  lo.model = &large;
  lo.device = &device;
  const hrt::Engine large_engine(lo);

  // The 3B reference point: conventional sampling, served at batch 1.
  std::vector<hserve::ServeJob> large_jobs;
  const MethodResult large_base = RunSingleSample(tasks, theta_large, 8, rng, &large_jobs);
  const hserve::ScheduleResult large_run = Serve(large_engine, large_jobs, 1);
  const double large_latency = large_run.makespan_s / static_cast<double>(large_run.steps);
  std::printf("reference: %s base accuracy %.1f%%, %.1f ms/token (%.0f s makespan for %lld"
              " tokens)\n\n",
              large.name.c_str(), 100 * large_base.accuracy, large_latency * 1e3,
              large_run.makespan_s, static_cast<long long>(large_run.decoded_tokens));

  std::printf("%-8s %10s %12s %12s %12s %14s\n", "N", "accuracy", "ms/token", "mJ/token",
              "makespan s", "beats 3B base?");
  for (int n : {1, 2, 4, 8, 16}) {
    std::vector<hserve::ServeJob> jobs;
    const MethodResult r = (n == 1)
                               ? RunSingleSample(tasks, theta_small, 8, rng, &jobs)
                               : RunBestOfN(tasks, theta_small, orm, n, 8, rng, &jobs);
    // One serving run prices the whole workload: N parallel samples per task share the
    // prompt's chunked prefill and keep the decode batch at N as slots recycle.
    const hserve::ScheduleResult run = Serve(small_engine, jobs, n, /*record_trace=*/n == 16);
    const double latency = run.makespan_s / static_cast<double>(run.steps);
    const double mj_per_token = 1e3 * run.energy_j / static_cast<double>(run.decoded_tokens);
    const bool wins = r.accuracy > large_base.accuracy && latency < large_latency;
    std::printf("%-8d %9.1f%% %12.1f %12.1f %12.0f %14s\n", n, 100 * r.accuracy,
                latency * 1e3, mj_per_token, run.makespan_s, wins ? "YES" : "no");
    if (n == 16) {
      const char* path = "best_of_16.trace.json";
      std::ofstream out(path);
      out << run.trace.ToChromeJson();
      std::printf("         (wrote the N=16 serving trace to %s — open in Perfetto)\n", path);
    }
  }
  std::printf("\nThe crossover is the paper's headline: with enough parallel samples the\n"
              "small model dominates the big one on BOTH accuracy and per-token cost,\n"
              "because the extra samples ride on HMX compute that idles at batch 1.\n");
  return 0;
}

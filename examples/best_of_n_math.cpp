// Best-of-N test-time scaling on synthetic MATH500-class reasoning tasks, coupled to the
// on-device cost model — the workload from the paper's introduction: can a 1.5B model on a
// phone beat a conventionally-decoded 3B model by spending otherwise-idle NPU compute?
//
// Pipeline:
//   1. measure quantization error with the repo's quantizers, derive the deployed model's
//      skill via the capability model;
//   2. run Best-of-N with a simulated outcome reward model across budgets;
//   3. price each budget with the runtime engine (decode batch = N) and compare against the
//      3B model's conventional decoding.
#include <cstdio>

#include "src/base/rng.h"
#include "src/runtime/engine.h"
#include "src/tts/capability_model.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

int main() {
  using namespace htts;
  const CapabilityModel cap;
  const auto& device = hexsim::OnePlus12();
  const auto& small = hllm::Qwen25_1_5B();
  const auto& large = hllm::Qwen25_3B();

  std::printf("Best-of-N on MATH500-class tasks — %s vs %s, %s\n\n", small.name.c_str(),
              large.name.c_str(), device.device_name.c_str());

  const TaskSet tasks = GenerateTaskSet(Dataset::kMath500, 500, 2024);
  const OutcomeRewardModel orm;  // Skywork-style outcome scorer (simulated)
  hexllm::Rng rng(99);

  const double theta_small = cap.EffectiveTheta(small, Dataset::kMath500,
                                                cap.DeployedWeightErr(small),
                                                cap.lut_f16_attention_err());
  const double theta_large = cap.EffectiveTheta(large, Dataset::kMath500,
                                                cap.DeployedWeightErr(large),
                                                cap.lut_f16_attention_err());

  hrt::EngineOptions so;
  so.model = &small;
  so.device = &device;
  const hrt::Engine small_engine(so);
  hrt::EngineOptions lo;
  lo.model = &large;
  lo.device = &device;
  const hrt::Engine large_engine(lo);

  // The 3B reference point: conventional sampling.
  const MethodResult large_base = RunSingleSample(tasks, theta_large, 8, rng);
  const double large_latency = large_engine.DecodeSecondsPerToken(1, 512);
  std::printf("reference: %s base accuracy %.1f%%, %.1f ms/token\n\n", large.name.c_str(),
              100 * large_base.accuracy, large_latency * 1e3);

  std::printf("%-8s %10s %12s %12s %14s\n", "N", "accuracy", "ms/token", "mJ/token",
              "beats 3B base?");
  for (int n : {1, 2, 4, 8, 16}) {
    const MethodResult r = (n == 1) ? RunSingleSample(tasks, theta_small, 8, rng)
                                    : RunBestOfN(tasks, theta_small, orm, n, 8, rng);
    const double latency = small_engine.DecodeSecondsPerToken(n, 512);
    const auto power = small_engine.DecodePower(n, 512);
    const bool wins = r.accuracy > large_base.accuracy && latency < large_latency;
    std::printf("%-8d %9.1f%% %12.1f %12.1f %14s\n", n, 100 * r.accuracy, latency * 1e3,
                power.joules_per_token * 1e3, wins ? "YES" : "no");
  }
  std::printf("\nThe crossover is the paper's headline: with enough parallel samples the\n"
              "small model dominates the big one on BOTH accuracy and per-token cost,\n"
              "because the extra samples ride on HMX compute that idles at batch 1.\n");
  return 0;
}

// Quickstart: load a (synthetic) quantized model, decode a few tokens end-to-end through
// the simulated Hexagon NPU, and inspect where the cycles went.
//
//   1. Pick a device profile (Table 3) and create the NPU simulation state.
//   2. Build a model: weights are tile-group quantized (Q4 projections in HMX stream order,
//      coalesced into HVX-register-sized super-blocks; Q8 FFN-down).
//   3. Decode: every layer runs on the simulated NPU (mixed-precision GEMM, FP16
//      FlashAttention with the 64 KiB exp LUT, RMSNorm/RoPE/SwiGLU on HVX); the vocabulary
//      projection runs on the CPU, as in the paper's system (§6).
#include <cstdio>
#include <vector>

#include "src/hexsim/npu_device.h"
#include "src/llm/model_config.h"
#include "src/llm/sampling.h"
#include "src/llm/transformer.h"
#include "src/llm/weights.h"

int main() {
  // 1. Device: OnePlus 12 (Snapdragon 8 Gen 3, Hexagon V75).
  const hexsim::DeviceProfile& profile = hexsim::OnePlus12();
  hexsim::NpuDevice device(profile);
  std::printf("device: %s (%s, NPU %s)\n", profile.device_name.c_str(),
              profile.soc_name.c_str(), hexsim::NpuArchName(profile.arch));

  // 2. Model: the toy configuration runs the full functional pipeline in milliseconds.
  const hllm::ModelConfig config = hllm::ToyConfig();
  const hllm::ModelWeights weights = hllm::ModelWeights::Random(config, /*seed=*/1234);
  std::printf("model: %s (%d layers, hidden %d, %d heads / %d KV heads, vocab %lld)\n",
              config.name.c_str(), config.layers, config.hidden, config.heads,
              config.kv_heads, static_cast<long long>(config.vocab));

  // 3. Decode 12 tokens greedily from a short prompt.
  hllm::Transformer model(device, weights, /*max_batch=*/1, /*max_context=*/64);
  const std::vector<int> prompt{17, 98, 256, 4};
  model.Prefill(0, prompt);

  std::vector<float> logits(static_cast<size_t>(config.vocab));
  int token = prompt.back();
  std::printf("generated:");
  for (int i = 0; i < 12; ++i) {
    model.Step({&token, 1}, logits);
    token = hllm::ArgmaxToken(logits);
    std::printf(" %d", token);
  }
  std::printf("\n");

  // 4. Where did the simulated cycles go?
  const auto& ledger = device.ledger();
  std::printf("\nsimulated engine busy time:\n");
  std::printf("  HVX: %.3f ms   HMX: %.3f ms   DMA: %.3f ms\n",
              ledger.EngineSeconds(hexsim::Engine::kHvx) * 1e3,
              ledger.EngineSeconds(hexsim::Engine::kHmx) * 1e3,
              ledger.EngineSeconds(hexsim::Engine::kDma) * 1e3);
  std::printf("top operator tags:\n");
  for (const auto& [tag, seconds] : ledger.tags()) {
    if (seconds > 1e-5) {
      std::printf("  %-16s %.3f ms\n", tag.c_str(), seconds * 1e3);
    }
  }
  std::printf("\nTCM high watermark: %lld KiB of %lld KiB\n",
              static_cast<long long>(device.tcm().high_watermark() >> 10),
              static_cast<long long>(device.tcm().capacity() >> 10));
  return 0;
}

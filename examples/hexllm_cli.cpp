// hexllm_cli — command-line driver for the reproduction engine.
//
// Subcommands:
//   devices                       list the simulated devices (Table 3)
//   models                        list the model configurations
//   decode  [--model M] [--device D] [--batch N] [--context C]
//   prefill [--model M] [--device D] [--prompt-len L]
//   power   [--model M] [--device D] [--context C]
//   trace   [--model M] [--device D] [--batch N] [--context C] [--json]
//   pareto  [--device D] [--dataset math500|gsm8k] [--budget N]
//
// Model keys: qwen0.5b qwen1.5b qwen3b qwen7b llama1b llama3b. Device keys: 8g2 8g3 8elite.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/engine.h"
#include "src/runtime/trace.h"
#include "src/tts/capability_model.h"
#include "src/tts/pareto.h"

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  int GetInt(const std::string& key, int def) const {
    auto it = flags.find(key);
    return it == flags.end() ? def : std::atoi(it->second.c_str());
  }
  bool Has(const std::string& key) const { return flags.count(key) > 0; }
};

Args Parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) {
    a.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        a.flags[key] = argv[++i];
      } else {
        a.flags[key] = "1";
      }
    }
  }
  return a;
}

const hllm::ModelConfig* LookupModel(const std::string& key) {
  static const std::map<std::string, const hllm::ModelConfig*> models = {
      {"qwen0.5b", &hllm::Qwen25_0_5B()}, {"qwen1.5b", &hllm::Qwen25_1_5B()},
      {"qwen3b", &hllm::Qwen25_3B()},     {"qwen7b", &hllm::Qwen25_7B()},
      {"llama1b", &hllm::Llama32_1B()},   {"llama3b", &hllm::Llama32_3B()},
  };
  auto it = models.find(key);
  if (it == models.end()) {
    std::fprintf(stderr, "unknown model '%s' (try: qwen1.5b qwen3b qwen7b llama1b llama3b)\n",
                 key.c_str());
    return nullptr;
  }
  return it->second;
}

const hexsim::DeviceProfile* LookupDevice(const std::string& key) {
  static const std::map<std::string, const hexsim::DeviceProfile*> devices = {
      {"8g2", &hexsim::OnePlusAce3()},
      {"8g3", &hexsim::OnePlus12()},
      {"8elite", &hexsim::OnePlusAce5Pro()},
  };
  auto it = devices.find(key);
  if (it == devices.end()) {
    std::fprintf(stderr, "unknown device '%s' (try: 8g2 8g3 8elite)\n", key.c_str());
    return nullptr;
  }
  return it->second;
}

int Usage() {
  std::printf(
      "hexllm_cli — simulated Hexagon-NPU LLM engine\n\n"
      "  hexllm_cli devices\n"
      "  hexllm_cli models\n"
      "  hexllm_cli decode  [--model qwen1.5b] [--device 8g3] [--batch 8] [--context 1024]\n"
      "  hexllm_cli prefill [--model qwen1.5b] [--device 8g3] [--prompt-len 1024]\n"
      "  hexllm_cli power   [--model qwen1.5b] [--device 8g3] [--context 1024]\n"
      "  hexllm_cli trace   [--model qwen1.5b] [--device 8g3] [--batch 8] [--json]\n"
      "  hexllm_cli pareto  [--device 8g3] [--dataset math500] [--budget 16]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (args.command.empty() || args.command == "help" || args.command == "--help") {
    return Usage();
  }

  if (args.command == "devices") {
    std::printf("%-10s %-18s %-22s %-6s %s\n", "key", "device", "SoC", "NPU", "vaddr MiB");
    const char* keys[] = {"8g2", "8g3", "8elite"};
    int i = 0;
    for (const auto* d : hexsim::AllDevices()) {
      std::printf("%-10s %-18s %-22s %-6s %lld\n", keys[i++], d->device_name.c_str(),
                  d->soc_name.c_str(), hexsim::NpuArchName(d->arch),
                  static_cast<long long>(d->npu_vaddr_limit_bytes >> 20));
    }
    return 0;
  }
  if (args.command == "models") {
    std::printf("%-10s %-24s %8s %7s %7s %9s %10s\n", "key", "name", "params", "hidden",
                "layers", "vocab", "dmabuf MiB");
    const std::pair<const char*, const hllm::ModelConfig*> models[] = {
        {"qwen0.5b", &hllm::Qwen25_0_5B()}, {"qwen1.5b", &hllm::Qwen25_1_5B()},
        {"qwen3b", &hllm::Qwen25_3B()},     {"qwen7b", &hllm::Qwen25_7B()},
        {"llama1b", &hllm::Llama32_1B()},   {"llama3b", &hllm::Llama32_3B()},
    };
    for (const auto& [key, m] : models) {
      std::printf("%-10s %-24s %7.2fB %7d %7d %9lld %10lld\n", key, m->name.c_str(),
                  m->params_b, m->hidden, m->layers, static_cast<long long>(m->vocab),
                  static_cast<long long>(m->DmabufBytes(4096, 16) >> 20));
    }
    return 0;
  }

  const auto* model = LookupModel(args.Get("model", "qwen1.5b"));
  const auto* device = LookupDevice(args.Get("device", "8g3"));
  if (model == nullptr || device == nullptr) {
    return 1;
  }
  hrt::EngineOptions opts;
  opts.model = model;
  opts.device = device;
  const hrt::Engine engine(opts);
  std::string reason;
  if ((args.command == "decode" || args.command == "prefill" || args.command == "power" ||
       args.command == "trace") &&
      !engine.CanRun(&reason)) {
    std::fprintf(stderr, "cannot run: %s\n", reason.c_str());
    return 2;
  }

  if (args.command == "decode") {
    const int context = args.GetInt("context", 1024);
    std::printf("%s on %s, context %d\n", model->name.c_str(), device->device_name.c_str(),
                context);
    std::printf("%-8s %12s %12s %10s %10s %10s %10s\n", "batch", "tokens/s", "ms/step",
                "linear%", "attn%", "lm_head%", "comm%");
    const int only = args.GetInt("batch", 0);
    for (int b : {1, 2, 4, 8, 16}) {
      if (only != 0 && b != only) {
        continue;
      }
      const auto c = engine.DecodeStep(b, context);
      std::printf("%-8d %12.1f %12.1f %9.1f%% %9.1f%% %9.1f%% %9.2f%%\n", b,
                  engine.DecodeThroughput(b, context), c.total_s * 1e3,
                  100 * c.linear_s / c.total_s, 100 * c.attention_s / c.total_s,
                  100 * c.lm_head_s / c.total_s, 100 * c.comm_s / c.total_s);
    }
    return 0;
  }
  if (args.command == "prefill") {
    const int len = args.GetInt("prompt-len", 1024);
    const auto c = engine.Prefill(len);
    std::printf("%s on %s: prefill %d tokens in %.1f ms -> %.1f tokens/s\n",
                model->name.c_str(), device->device_name.c_str(), len, c.total_s * 1e3,
                engine.PrefillThroughput(len));
    return 0;
  }
  if (args.command == "power") {
    const int context = args.GetInt("context", 1024);
    std::printf("%-8s %10s %12s\n", "batch", "watts", "mJ/token");
    for (int b : {1, 2, 4, 8, 16}) {
      const auto p = engine.DecodePower(b, context);
      std::printf("%-8d %10.2f %12.1f\n", b, p.watts, p.joules_per_token * 1e3);
    }
    return 0;
  }
  if (args.command == "trace") {
    const auto tb =
        hrt::TraceDecodeStep(engine, args.GetInt("batch", 8), args.GetInt("context", 1024));
    if (args.Has("json")) {
      std::printf("%s\n", tb.ToChromeJson().c_str());
    } else {
      std::printf("one decode step, %s on %s (lanes show busy intervals):\n",
                  model->name.c_str(), device->device_name.c_str());
      std::printf("%s", tb.ToAsciiGantt().c_str());
    }
    return 0;
  }
  if (args.command == "pareto") {
    const htts::CapabilityModel cap;
    htts::ParetoSweepOptions po;
    po.dataset = args.Get("dataset", "math500") == "gsm8k" ? htts::Dataset::kGsm8k
                                                           : htts::Dataset::kMath500;
    po.device = device;
    po.models = {&hllm::Qwen25_1_5B(), &hllm::Qwen25_3B(), &hllm::Llama32_1B(),
                 &hllm::Llama32_3B()};
    po.budgets = {args.GetInt("budget", 16)};
    po.tasks = 300;
    po.trials = 4;
    const auto points = htts::SweepPareto(cap, po);
    std::printf("%-24s %-12s %7s %10s %12s %8s\n", "model", "method", "budget", "accuracy",
                "ms/token", "pareto");
    for (const auto& p : points) {
      if (!p.runnable) {
        continue;
      }
      std::printf("%-24s %-12s %7d %9.1f%% %12.1f %8s\n", p.model.c_str(),
                  htts::TtsMethodName(p.method), p.budget, 100 * p.accuracy,
                  p.latency_per_token_s * 1e3, htts::OnParetoFrontier(p, points) ? "*" : "");
    }
    return 0;
  }
  return Usage();
}

// The end-to-end inference engine (timing mode).
//
// Mirrors the paper's system structure (§6): all transformer-layer operators run on the NPU
// (mixed-precision GEMM with HVX dequantization feeding HMX, FP16 FlashAttention with LUT
// softmax, misc vector ops), while the vocabulary projection (lm_head) runs on the CPU
// because of the NPU's 32-bit session address space (§7.2.2). Communication flows through
// the shared-memory mailbox with explicit cache maintenance.
//
// The engine composes the per-kernel analytic cost models (each validated against the
// instruction-level emulation in tests) into per-token decode and prefill costs, plus power,
// energy, and memory reports. Three backends reproduce Figure 13:
//   kNpuOurs   — this paper's system;
//   kGpuOpenCl — llama.cpp's OpenCL Adreno backend: fast batch-1 GEMV, poor batch reuse;
//   kQnnF16    — QNN-style FP16 reference: no dequant (DMA-bound FP16 weights), static
//                fixed-shape graphs (no batching benefit).
#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <cstdint>
#include <string>

#include "src/hexsim/device_profile.h"
#include "src/kernels/mixed_gemm.h"
#include "src/kernels/softmax.h"
#include "src/llm/model_config.h"
#include "src/obs/metrics.h"

namespace hrt {

enum class Backend : uint8_t {
  kNpuOurs,
  kGpuOpenCl,
  kQnnF16,
};

const char* BackendName(Backend b);

// Per-step cost decomposition (one decode step for a batch, or one prefill chunk).
struct StepCost {
  double linear_s = 0.0;     // projection GEMMs (incl. dequant / weight fetch)
  double attention_s = 0.0;  // FlashAttention (softmax + matmul + rescale)
  double misc_s = 0.0;       // RMSNorm, RoPE, SiLU, residual adds
  double lm_head_s = 0.0;    // CPU vocabulary projection
  double comm_s = 0.0;       // mailbox round trips + cache maintenance
  // Tiered KV offload (docs/long_context.md): seconds spent moving KV blocks between DRAM
  // and the flash tier, and the bytes moved. flash_s overlaps decode compute where the
  // prefetch queue permits; only the non-overlapped stall is folded into total_s. Zero on
  // every path without offload — legacy cost sums are unchanged.
  double flash_s = 0.0;
  int64_t flash_bytes = 0;
  double total_s = 0.0;

  // Engine busy time (for the power model).
  double hvx_busy_s = 0.0;
  double hmx_busy_s = 0.0;
  double dma_busy_s = 0.0;
  double cpu_busy_s = 0.0;
  double gpu_busy_s = 0.0;
  int64_t ddr_bytes = 0;
};

struct PowerReport {
  double watts = 0.0;
  double joules_per_token = 0.0;
};

// Power drawn while a step with cost `c` executes: busy-fraction model over the step's wall
// time (c.total_s). Shared by Engine::DecodePower and the serving backends, which meter
// their own StepCosts. Returns zero when c.total_s <= 0.
PowerReport StepPower(const hexsim::DeviceProfile& d, const StepCost& c, int batch,
                      bool gpu_backend = false);

struct MemoryReport {
  int64_t dmabuf_bytes = 0;       // NPU-mapped shared memory (weights + KV + activations)
  int64_t cpu_resident_bytes = 0; // lm_head weights + runtime overhead
  double cpu_utilization = 0.0;   // average busy big-cores during decode (Figure 16)
};

struct EngineOptions {
  const hllm::ModelConfig* model = nullptr;
  const hexsim::DeviceProfile* device = nullptr;
  Backend backend = Backend::kNpuOurs;
  int context_budget = 4096;
  int max_batch = 16;
  hkern::DequantKernel dequant = hkern::DequantKernel::kCoalescedLut;
  hkern::SoftmaxVariant softmax = hkern::SoftmaxVariant::kLut;
  // §8(a) extension: run the linear layers as T-MAC-style LUT GEMV (no dequantization, no
  // HMX) instead of dequant+HMX. Fast at batch 1 (DMA-bound); loses to HMX at batch >= ~4.
  bool use_tmac_gemv = false;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options);

  // False when the model cannot be mapped into the NPU address space (the Snapdragon
  // 8 Gen 2 / V73 wall for >= 3B models, §7.2.1). On V75/V79 a model larger than one
  // session's 32-bit window is split across up to two NPU sessions (the §8 mitigation);
  // V73 is limited to a single session. `reason` explains a rejection.
  bool CanRun(std::string* reason = nullptr) const;

  // Number of NPU sessions the model's dmabuf footprint requires (1 or 2).
  int SessionsNeeded() const;

  // Cost of one decode step with `batch` parallel sequences at context length `context`.
  StepCost DecodeStep(int batch, int context) const;

  // Cost of prefilling `prompt_len` tokens (chunked through the pipeline).
  StepCost Prefill(int prompt_len) const;

  // Decode throughput in tokens/second (all batch rows advance together).
  double DecodeThroughput(int batch, int context) const;
  // Prefill throughput in tokens/second.
  double PrefillThroughput(int prompt_len) const;

  // Average decode latency per generated token per sequence, in seconds.
  double DecodeSecondsPerToken(int batch, int context) const {
    return DecodeStep(batch, context).total_s;
  }

  PowerReport DecodePower(int batch, int context) const;
  MemoryReport Memory(int batch) const;

  // Publishes the analytic model's view of one decode operating point into `registry` under
  // the `engine.` unit prefix (docs/metrics_schema.md):
  //   gauges engine.step.{linear,attention,misc,lm_head,comm,total}_seconds,
  //          engine.step.{hvx,hmx,dma,cpu,gpu}_busy_seconds, engine.step.ddr_bytes,
  //          engine.decode_tokens_per_second, engine.power.watts,
  //          engine.power.joules_per_token, engine.memory.dmabuf_bytes,
  //          engine.memory.cpu_resident_bytes, engine.memory.cpu_utilization,
  //          engine.sessions
  void ExportMetrics(obs::Registry& registry, int batch, int context) const;

  const EngineOptions& options() const { return options_; }

 private:
  StepCost NpuDecodeStep(int batch, int context) const;
  StepCost GpuDecodeStep(int batch, int context) const;
  StepCost QnnDecodeStep(int batch, int context) const;
  StepCost AddLmHeadAndComm(StepCost cost, int batch) const;

  EngineOptions options_;
};

}  // namespace hrt

#endif  // SRC_RUNTIME_ENGINE_H_

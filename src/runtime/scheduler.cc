#include "src/runtime/scheduler.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace hrt {

std::vector<SampleJob> MakeSampleJobs(int tasks, int samples_per_task, int mean_tokens,
                                      hexllm::Rng& rng) {
  HEXLLM_CHECK(tasks >= 1 && samples_per_task >= 1 && mean_tokens >= 16);
  std::vector<SampleJob> jobs;
  jobs.reserve(static_cast<size_t>(tasks) * samples_per_task);
  int id = 0;
  for (int t = 0; t < tasks; ++t) {
    for (int s = 0; s < samples_per_task; ++s) {
      // Lognormal with sigma ~0.5: a realistic generation-length spread.
      const double len = mean_tokens * std::exp(0.5 * rng.NextGaussian() - 0.125);
      SampleJob job;
      job.id = id++;
      job.total_tokens = static_cast<int>(
          std::clamp(len, 16.0, 4.0 * mean_tokens));
      jobs.push_back(job);
    }
  }
  return jobs;
}

}  // namespace hrt

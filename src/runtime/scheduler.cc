#include "src/runtime/scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/base/check.h"

namespace hrt {

std::vector<SampleJob> MakeSampleJobs(int tasks, int samples_per_task, int mean_tokens,
                                      hexllm::Rng& rng) {
  HEXLLM_CHECK(tasks >= 1 && samples_per_task >= 1 && mean_tokens >= 16);
  std::vector<SampleJob> jobs;
  jobs.reserve(static_cast<size_t>(tasks) * samples_per_task);
  int id = 0;
  for (int t = 0; t < tasks; ++t) {
    for (int s = 0; s < samples_per_task; ++s) {
      // Lognormal with sigma ~0.5: a realistic generation-length spread.
      const double len = mean_tokens * std::exp(0.5 * rng.NextGaussian() - 0.125);
      SampleJob job;
      job.id = id++;
      job.total_tokens = static_cast<int>(
          std::clamp(len, 16.0, 4.0 * mean_tokens));
      jobs.push_back(job);
    }
  }
  return jobs;
}

namespace {

// Step cost cache: DecodeStep is deterministic per (batch, context).
class StepCostCache {
 public:
  StepCostCache(const Engine& engine, int context) : engine_(engine), context_(context) {}

  double Cost(int batch) {
    auto it = cache_.find(batch);
    if (it != cache_.end()) {
      return it->second;
    }
    const double s = engine_.DecodeStep(batch, context_).total_s;
    cache_[batch] = s;
    return s;
  }

 private:
  const Engine& engine_;
  int context_;
  std::map<int, double> cache_;
};

}  // namespace

ScheduleResult RunStaticBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                 const Engine& engine, int context) {
  HEXLLM_CHECK(max_batch >= 1);
  StepCostCache costs(engine, context);
  ScheduleResult r;
  double useful_tokens = 0.0;
  double active_rows = 0.0;
  double occupied_rows = 0.0;

  for (size_t wave_start = 0; wave_start < jobs.size(); wave_start += max_batch) {
    const size_t wave_end = std::min(jobs.size(), wave_start + max_batch);
    const int wave_jobs = static_cast<int>(wave_end - wave_start);
    int wave_len = 0;
    for (size_t j = wave_start; j < wave_end; ++j) {
      wave_len = std::max(wave_len, jobs[j].total_tokens);
    }
    // All wave slots stay occupied (padding included) for wave_len steps.
    r.makespan_s += wave_len * costs.Cost(wave_jobs);
    r.steps += wave_len;
    for (size_t j = wave_start; j < wave_end; ++j) {
      useful_tokens += jobs[j].total_tokens;
      active_rows += jobs[j].total_tokens;
    }
    occupied_rows += static_cast<double>(wave_len) * wave_jobs;
  }
  r.tokens_per_second = useful_tokens / r.makespan_s;
  r.avg_active_batch = active_rows / r.steps;
  r.slot_utilization = active_rows / occupied_rows;
  return r;
}

ScheduleResult RunContinuousBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                     const Engine& engine, int context) {
  HEXLLM_CHECK(max_batch >= 1);
  StepCostCache costs(engine, context);
  ScheduleResult r;
  std::vector<int> remaining;  // tokens left per active slot
  size_t next_job = 0;
  double useful_tokens = 0.0;
  double active_rows = 0.0;

  while (true) {
    // Refill freed slots from the queue.
    while (static_cast<int>(remaining.size()) < max_batch && next_job < jobs.size()) {
      remaining.push_back(jobs[next_job++].total_tokens);
      useful_tokens += remaining.back();
    }
    if (remaining.empty()) {
      break;
    }
    const int active = static_cast<int>(remaining.size());
    r.makespan_s += costs.Cost(active);
    ++r.steps;
    active_rows += active;
    for (auto& t : remaining) {
      --t;
    }
    remaining.erase(std::remove(remaining.begin(), remaining.end(), 0), remaining.end());
  }
  r.tokens_per_second = useful_tokens / r.makespan_s;
  r.avg_active_batch = active_rows / r.steps;
  r.slot_utilization = 1.0;  // continuous batching never decodes padding rows
  return r;
}

}  // namespace hrt

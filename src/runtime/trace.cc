#include "src/runtime/trace.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/base/check.h"

namespace hrt {

void TraceBuilder::Add(std::string lane, std::string name, double start_s, double dur_s) {
  HEXLLM_CHECK(start_s >= 0.0 && dur_s >= 0.0);
  end_s_ = std::max(end_s_, start_s + dur_s);
  events_.push_back({std::move(lane), std::move(name), start_s, dur_s});
}

std::string TraceBuilder::ToChromeJson() const {
  // Chrome trace-event format: "X" (complete) events with microsecond timestamps; one tid
  // per lane.
  std::map<std::string, int> lane_tid;
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (lane_tid.find(e.lane) == lane_tid.end()) {
      const int tid = static_cast<int>(lane_tid.size()) + 1;
      lane_tid[e.lane] = tid;
      if (!first) {
        os << ",";
      }
      first = false;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << e.lane << "\"}}";
    }
  }
  for (const auto& e : events_) {
    os << ",{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << lane_tid.at(e.lane) << ",\"ts\":" << e.start_s * 1e6
       << ",\"dur\":" << e.dur_s * 1e6 << "}";
  }
  os << "]}";
  return os.str();
}

std::string TraceBuilder::ToAsciiGantt(int width) const {
  HEXLLM_CHECK(width >= 10);
  if (events_.empty() || end_s_ <= 0.0) {
    return "(empty trace)\n";
  }
  // Collect lanes in first-seen order.
  std::vector<std::string> lanes;
  for (const auto& e : events_) {
    if (std::find(lanes.begin(), lanes.end(), e.lane) == lanes.end()) {
      lanes.push_back(e.lane);
    }
  }
  std::ostringstream os;
  for (const auto& lane : lanes) {
    std::string bar(static_cast<size_t>(width), '.');
    for (const auto& e : events_) {
      if (e.lane != lane) {
        continue;
      }
      const int from = static_cast<int>(e.start_s / end_s_ * width);
      int to = static_cast<int>(std::ceil((e.start_s + e.dur_s) / end_s_ * width));
      to = std::min(to, width);
      const char fill = e.name.empty() ? '#' : e.name[0];
      for (int i = from; i < to; ++i) {
        bar[static_cast<size_t>(i)] = fill;
      }
    }
    os << (lane + std::string(5 - std::min<size_t>(5, lane.size()), ' ')) << " |" << bar
       << "|\n";
  }
  os << "scale: |" << std::string(static_cast<size_t>(width), '-') << "| = "
     << end_s_ * 1e3 << " ms\n";
  return os.str();
}

TraceBuilder TraceDecodeStep(const Engine& engine, int batch, int context) {
  TraceBuilder tb;
  const StepCost cost = engine.DecodeStep(batch, context);
  const hllm::ModelConfig& m = *engine.options().model;
  const int layers = m.layers;

  // Per-layer linear block: DMA, dequant (HVX) and HMX overlap within the block; blocks
  // run back-to-back. Split the aggregate cost evenly for visualization.
  const double lin_block = cost.linear_s / layers;
  const double dma_block = cost.dma_busy_s / layers;
  const double hvx_block = cost.hvx_busy_s / layers;  // busy, not latency — shown as load
  const double hmx_block = cost.hmx_busy_s / layers;
  double t = 0.0;
  for (int l = 0; l < layers; ++l) {
    const std::string suffix = " L" + std::to_string(l);
    tb.Add("DMA", "dma" + suffix, t, std::min(dma_block, lin_block));
    tb.Add("HVX", "vector" + suffix, t, std::min(hvx_block, lin_block));
    if (hmx_block > 0.0) {
      tb.Add("HMX", "matmul" + suffix, t, std::min(hmx_block, lin_block));
    }
    t += lin_block;
  }
  tb.Add("HVX", "attention+softmax", t, cost.attention_s);
  t += cost.attention_s;
  tb.Add("HVX", "misc ops", t, cost.misc_s);
  t += cost.misc_s;
  tb.Add("COMM", "mailbox + cache maintenance", t, cost.comm_s);
  t += cost.comm_s;
  tb.Add("CPU", "lm_head (vocab projection)", t, cost.lm_head_s);
  return tb;
}

}  // namespace hrt

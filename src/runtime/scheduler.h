// Batch scheduling for parallel-sampling workloads.
//
// Test-time scaling decodes N samples of the same prompt in parallel, but samples finish at
// different lengths (a short confident solution vs a long meandering one). A naive static
// batch keeps all N slots occupied until the LONGEST sample finishes — finished slots decode
// padding. Continuous batching reclaims finished slots immediately: the next queued sample
// (e.g. the next task's samples, or additional Best-of-N rounds) starts on the freed row.
//
// The simulator prices each step with the engine's batch-dependent cost, so the benefit is
// exactly what the hardware gives: the HMX rows are nearly free, but the CPU lm_head and
// attention costs scale with the ACTIVE batch, which is what slot reclamation shrinks.
#ifndef SRC_RUNTIME_SCHEDULER_H_
#define SRC_RUNTIME_SCHEDULER_H_

#include <vector>

#include "src/base/rng.h"
#include "src/runtime/engine.h"

namespace hrt {

struct SampleJob {
  int id = 0;
  int total_tokens = 0;  // decode length of this sample
};

// Generates N-per-task sample jobs with realistic length dispersion: lengths are lognormal
// around `mean_tokens` (clamped to [16, 4 * mean]).
std::vector<SampleJob> MakeSampleJobs(int tasks, int samples_per_task, int mean_tokens,
                                      hexllm::Rng& rng);

// Scheduling itself lives in the serving runtime: build ServeJobs (context_tokens = the
// sample's starting KV depth, decode_tokens = total_tokens) and drive
// hserve::ContinuousBatcher with SchedulePolicy::kStaticWaves or kContinuous. The old
// RunStaticBatching/RunContinuousBatching shims over that API were removed once their last
// callers migrated.

}  // namespace hrt

#endif  // SRC_RUNTIME_SCHEDULER_H_

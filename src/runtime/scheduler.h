// Batch scheduling for parallel-sampling workloads.
//
// Test-time scaling decodes N samples of the same prompt in parallel, but samples finish at
// different lengths (a short confident solution vs a long meandering one). A naive static
// batch keeps all N slots occupied until the LONGEST sample finishes — finished slots decode
// padding. Continuous batching reclaims finished slots immediately: the next queued sample
// (e.g. the next task's samples, or additional Best-of-N rounds) starts on the freed row.
//
// The simulator prices each step with the engine's batch-dependent cost, so the benefit is
// exactly what the hardware gives: the HMX rows are nearly free, but the CPU lm_head and
// attention costs scale with the ACTIVE batch, which is what slot reclamation shrinks.
#ifndef SRC_RUNTIME_SCHEDULER_H_
#define SRC_RUNTIME_SCHEDULER_H_

#include <vector>

#include "src/base/rng.h"
#include "src/runtime/engine.h"

namespace hrt {

struct SampleJob {
  int id = 0;
  int total_tokens = 0;  // decode length of this sample
};

// Generates N-per-task sample jobs with realistic length dispersion: lengths are lognormal
// around `mean_tokens` (clamped to [16, 4 * mean]).
std::vector<SampleJob> MakeSampleJobs(int tasks, int samples_per_task, int mean_tokens,
                                      hexllm::Rng& rng);

struct ScheduleResult {
  double makespan_s = 0.0;        // wall time to finish every job
  double tokens_per_second = 0.0; // useful (non-padding) tokens / makespan
  double avg_active_batch = 0.0;  // mean ACTIVE rows per step
  double slot_utilization = 0.0;  // useful rows / (rows x steps) while any slot busy
  int64_t steps = 0;
};

// DEPRECATED legacy entry points, kept for the paper's Figure 14 sweep and old callers. They
// are thin shims over the serving runtime's live API (hserve::ContinuousBatcher
// Submit/Step/Finish in src/serving — link hexllm_serving); new code should drive that API —
// or the request frontend (src/frontend) for timestamped traffic — directly, which also
// exposes prompts/prefill, KV sharing, priorities, preemption and per-request sampling that
// this signature cannot carry. `context` seeds each slot's starting KV length; unlike the
// original fixed-context pricing, every slot's context then GROWS as it decodes and steps
// are priced at the batch's actual mean context. No prefill is charged (jobs carry no
// prompts), matching the original behavior. Empty `jobs` returns a zeroed result.

// Static batching: jobs run in waves of `max_batch`; a wave ends when its longest job does
// (finished slots decode padding until then).
ScheduleResult RunStaticBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                 const Engine& engine, int context);

// Continuous batching: finished slots refill from the queue on the next step.
ScheduleResult RunContinuousBatching(const std::vector<SampleJob>& jobs, int max_batch,
                                     const Engine& engine, int context);

}  // namespace hrt

#endif  // SRC_RUNTIME_SCHEDULER_H_

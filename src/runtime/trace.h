// Execution-timeline export: builds a chrome://tracing-compatible JSON trace (and an ASCII
// gantt for terminals) from the engine's cost decomposition, so a decode step's schedule —
// DMA / HVX dequant / HMX / CPU lm_head overlap — can be inspected visually.
#ifndef SRC_RUNTIME_TRACE_H_
#define SRC_RUNTIME_TRACE_H_

#include <string>
#include <vector>

#include "src/runtime/engine.h"

namespace hrt {

struct TraceEvent {
  std::string lane;   // "DMA", "HVX", "HMX", "CPU", "COMM"
  std::string name;   // e.g. "layer 3 dequant"
  double start_s = 0.0;
  double dur_s = 0.0;
};

class TraceBuilder {
 public:
  void Add(std::string lane, std::string name, double start_s, double dur_s);

  // Chrome trace-event JSON (open in chrome://tracing or Perfetto).
  std::string ToChromeJson() const;

  // Terminal-friendly gantt chart, `width` characters across the step duration.
  std::string ToAsciiGantt(int width = 78) const;

  const std::vector<TraceEvent>& events() const { return events_; }
  double end_s() const { return end_s_; }

 private:
  std::vector<TraceEvent> events_;
  double end_s_ = 0.0;
};

// Lays one decode step's pipeline onto the engine lanes: per-layer linear blocks (DMA +
// HVX dequant + HMX overlapped), the attention block, misc ops, the CPU lm_head, and the
// mailbox communication.
TraceBuilder TraceDecodeStep(const Engine& engine, int batch, int context);

}  // namespace hrt

#endif  // SRC_RUNTIME_TRACE_H_

#include "src/runtime/engine.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/hexsim/hmx.h"
#include "src/hexsim/hvx.h"
#include "src/hexsim/rpcmem.h"
#include "src/kernels/attention.h"
#include "src/kernels/lm_head.h"
#include "src/kernels/tmac_gemv.h"

namespace hrt {

using hexsim::DeviceProfile;
using hllm::ModelConfig;

namespace {

// --- end-to-end calibration constants (DESIGN.md §5) ---

// Effective HVX threads the decode pipeline dedicates to weight dequantization. The op
// library's thread pool shares HVX contexts between dequant, attention softmax, and misc
// ops, and pays strip-scheduling overhead, so the linear layers see fewer than the raw
// hardware threads. This constant makes decode dequant-bound, matching §8(a) ("decoding
// speed is relatively constrained, primarily due to the overhead of dequantization").
constexpr double kDecodeDequantThreads = 2.0;

// Threads available to attention / misc sweeps (heads parallelize cleanly).
constexpr double kAttentionThreads = 4.0;

// HMX pipeline efficiency for large-M (prefill) GEMMs: activation tile packing, DMA staging
// and pipeline refill keep the matrix unit well below peak — §8(b) lists exactly these as
// future work ("operator fusion", "optimizing tiling and pipelining").
constexpr double kPrefillHmxEfficiency = 0.35;
// The proprietary QNN stack pipelines prefill better than our open implementation.
constexpr double kQnnPrefillHmxEfficiency = 0.5;

// Adreno OpenCL kernel efficiency on the Q4_0 GEMV path (fraction of peak DDR bandwidth).
constexpr double kGpuGemvBandwidthEfficiency = 0.62;
// Fraction of GPU FP16 ALU peak sustained during prefill GEMM.
constexpr double kGpuPrefillComputeEfficiency = 0.5;

constexpr int kPrefillChunk = 256;

// Runtime bookkeeping resident on the CPU besides lm_head weights (code, graphs, host
// copies of norms, tokenizer tables...).
constexpr int64_t kCpuRuntimeOverheadBytes = 220ll << 20;

double MiscPacketsPerTokenPerLayer(const ModelConfig& m) {
  // Two RMSNorm sweeps, SiLU-mul over the FFN width, two residual adds, RoPE on Q and K.
  const double rms = 2.0 * (m.hidden / 64.0 * 7.0 + 36.0);
  const double silu = m.ffn_hidden / 64.0 * 13.0;
  const double adds = 2.0 * (m.hidden / 64.0 * 4.0);
  const double rope = (m.q_dim() + m.kv_dim()) / 64.0 * 6.0;
  return rms + silu + adds + rope;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kNpuOurs:
      return "ours (NPU)";
    case Backend::kGpuOpenCl:
      return "GPU (OpenCL)";
    case Backend::kQnnF16:
      return "QNN (FP16)";
  }
  return "?";
}

Engine::Engine(const EngineOptions& options) : options_(options) {
  HEXLLM_CHECK(options_.model != nullptr && options_.device != nullptr);
}

namespace {

int64_t MappedBytes(const EngineOptions& options) {
  const ModelConfig& m = *options.model;
  return (options.backend == Backend::kQnnF16)
             ? static_cast<int64_t>(2.0 * m.params_b * 1e9) +
                   m.KvCacheBytes(options.context_budget)
             : m.DmabufBytes(options.context_budget, options.max_batch);
}

// V73-era parts support a single NPU session; newer parts can split a model across two
// sessions to escape the 32-bit window (the §8 "multiple NPU sessions" mitigation).
int MaxSessions(const DeviceProfile& d) { return d.arch == hexsim::NpuArch::kV73 ? 1 : 2; }

}  // namespace

int Engine::SessionsNeeded() const {
  if (options_.backend == Backend::kGpuOpenCl) {
    return 0;
  }
  const int64_t mapped = MappedBytes(options_);
  return static_cast<int>(
      hexllm::CeilDiv(mapped, options_.device->npu_vaddr_limit_bytes));
}

bool Engine::CanRun(std::string* reason) const {
  if (options_.backend == Backend::kGpuOpenCl) {
    return true;  // GPU backend does not map into the NPU address space
  }
  const ModelConfig& m = *options_.model;
  const int sessions = SessionsNeeded();
  if (sessions > MaxSessions(*options_.device)) {
    if (reason != nullptr) {
      *reason = m.name + " needs " + std::to_string(MappedBytes(options_) >> 20) +
                " MiB of NPU-mapped memory (" + std::to_string(sessions) + " sessions), " +
                "exceeding the " +
                std::to_string(options_.device->npu_vaddr_limit_bytes >> 20) + " MiB " +
                "session window of " + options_.device->soc_name;
    }
    return false;
  }
  return true;
}

StepCost Engine::NpuDecodeStep(int batch, int context) const {
  const ModelConfig& m = *options_.model;
  const DeviceProfile& d = *options_.device;
  StepCost cost;

  // Projection GEMMs: every layer's matrices, dequantized on HVX and multiplied on HMX —
  // or, with the §8(a) extension, computed as T-MAC LUT GEMV entirely on HVX.
  // The pipeline overlaps DMA / HVX / HMX per weight strip.
  for (const auto& mat : m.LayerMatrices()) {
    if (options_.use_tmac_gemv) {
      const auto g = hkern::TmacGemvCostModel(d, batch, static_cast<int>(mat.k),
                                              static_cast<int>(mat.n), d.hvx_threads);
      // An 8-bit matrix needs two nibble planes: double the lookup work and bytes.
      const double q8_factor = (mat.scheme == hquant::WeightScheme::kQ8_0) ? 2.0 : 1.0;
      const double hvx_busy = g.hvx_busy_s * q8_factor;
      const double dma = g.dma_s * q8_factor;
      cost.linear_s += std::max(dma, hvx_busy / d.hvx_threads);
      cost.hvx_busy_s += hvx_busy;
      cost.dma_busy_s += dma;
      cost.ddr_bytes += static_cast<int64_t>(static_cast<double>(mat.k) * mat.n *
                                             hquant::WeightSchemeBpw(mat.scheme) / 8.0);
      continue;
    }
    const auto g = hkern::MixedGemmCostModel(d, options_.dequant, mat.scheme, batch,
                                             static_cast<int>(mat.k), static_cast<int>(mat.n),
                                             /*threads=*/4);
    // Re-derive latency with the end-to-end effective thread count.
    const double hvx_latency = g.hvx_busy_s / kDecodeDequantThreads;
    cost.linear_s +=
        std::max({g.dma_s, hvx_latency, g.hmx_s}) + g.overhead_s;
    cost.hvx_busy_s += g.hvx_busy_s;
    cost.hmx_busy_s += g.hmx_s;
    cost.dma_busy_s += g.dma_s;
    cost.ddr_bytes += static_cast<int64_t>(static_cast<double>(mat.k) * mat.n *
                                           hquant::WeightSchemeBpw(mat.scheme) / 8.0);
  }
  cost.linear_s *= m.layers;
  cost.hvx_busy_s *= m.layers;
  cost.hmx_busy_s *= m.layers;
  cost.dma_busy_s *= m.layers;
  cost.ddr_bytes *= m.layers;

  // Attention: batched query rows share the KV context (parallel test-time-scaling
  // workloads sample from a common prompt). One call per head per layer.
  const auto attn = hkern::FlashAttentionCost(d, options_.softmax, batch, context,
                                              m.head_dim);
  const double attn_hvx_busy = attn.HvxBusySeconds() * m.heads * m.layers;
  const double attn_hmx = (attn.hmx_qk_s + attn.hmx_pv_s) * m.heads * m.layers;
  // K/V tiles stream on-chip once per KV head; the GQA query-head group shares them.
  const double attn_dma = attn.dma_s * m.kv_heads * m.layers;
  cost.attention_s = attn_hvx_busy / kAttentionThreads + attn_hmx + attn_dma;
  cost.hvx_busy_s += attn_hvx_busy;
  cost.hmx_busy_s += attn_hmx;
  cost.dma_busy_s += attn_dma;
  cost.ddr_bytes += static_cast<int64_t>(2.0 * context * m.kv_dim() * 2 * m.layers);

  // Misc vector ops (per token — each batch row pays them).
  const double misc_packets = MiscPacketsPerTokenPerLayer(m) * m.layers * batch;
  const double misc_busy = misc_packets / (d.hvx_freq_ghz * 1e9);
  cost.misc_s = misc_busy / kAttentionThreads;
  cost.hvx_busy_s += misc_busy;

  return cost;
}

StepCost Engine::GpuDecodeStep(int batch, int context) const {
  const ModelConfig& m = *options_.model;
  const DeviceProfile& d = *options_.device;
  StepCost cost;
  // Q4_0 GEMV kernels: bandwidth-bound; each extra batch row re-reads most of the weights
  // (poor reuse in the OpenCL kernels — the paper's Figure 13 scaling observation).
  double weight_bytes = 0.0;
  for (const auto& mat : m.LayerMatrices()) {
    weight_bytes += static_cast<double>(mat.k) * mat.n *
                    hquant::WeightSchemeBpw(mat.scheme) / 8.0;
  }
  weight_bytes *= m.layers;
  const double eff_bw = d.gpu_mem_gbps * 1e9 * kGpuGemvBandwidthEfficiency;
  const double reuse = d.gpu_batch_efficiency;
  const double batch_factor = 1.0 + (batch - 1) * (1.0 - reuse);
  cost.linear_s = weight_bytes / eff_bw * batch_factor;
  // Attention + misc on the GPU: proportional to batch and context, ALU-bound.
  const double attn_flops = 4.0 * static_cast<double>(batch) * context * m.q_dim() * m.layers;
  cost.attention_s = attn_flops / (d.gpu_gflops * 1e9 * 0.3);
  cost.misc_s = 0.1e-3 * batch;  // kernel-launch and small-op overheads
  cost.gpu_busy_s = cost.linear_s + cost.attention_s + cost.misc_s;
  cost.ddr_bytes = static_cast<int64_t>(weight_bytes * batch_factor);
  return cost;
}

StepCost Engine::QnnDecodeStep(int batch, int context) const {
  const ModelConfig& m = *options_.model;
  const DeviceProfile& d = *options_.device;
  StepCost cost;
  // FP16 weights stream over DMA straight into HMX: no dequantization, but 3.5x the bytes
  // of Q4_0. Static graphs decode one token at a time (no batching benefit): a batch of B
  // costs B sequential passes.
  const double weight_bytes = 2.0 * m.params_b * 1e9;
  const double pass_s = weight_bytes / (d.dma_read_gbps * 1e9);
  const auto attn = hkern::FlashAttentionCost(d, hkern::SoftmaxVariant::kF16Poly, 1, context,
                                              m.head_dim);
  const double attn_s =
      attn.HvxBusySeconds() / kAttentionThreads + attn.hmx_qk_s + attn.hmx_pv_s + attn.dma_s;
  cost.linear_s = pass_s * batch;
  cost.attention_s = attn_s * m.heads * m.layers * batch;
  cost.dma_busy_s = cost.linear_s;
  cost.hmx_busy_s = (attn.hmx_qk_s + attn.hmx_pv_s) * m.heads * m.layers * batch;
  cost.hvx_busy_s = attn.HvxBusySeconds() * m.heads * m.layers * batch;
  cost.ddr_bytes = static_cast<int64_t>(weight_bytes) * batch;
  return cost;
}

StepCost Engine::AddLmHeadAndComm(StepCost cost, int batch) const {
  const ModelConfig& m = *options_.model;
  const DeviceProfile& d = *options_.device;
  // CPU vocabulary projection (quantized lm_head streams once, shared across the batch).
  const double lm_weight_bytes = static_cast<double>(m.hidden) * m.vocab *
                                 hquant::WeightSchemeBpw(m.lm_head_scheme) / 8.0;
  const double lm_flops = 2.0 * batch * m.hidden * static_cast<double>(m.vocab);
  const int cores = std::min(d.cpu_big_cores, std::max(1, batch));
  const double mem_s = lm_weight_bytes / (d.cpu_mem_gbps * 1e9);
  const double compute_s = lm_flops / (d.cpu_gflops_per_core * 1e9 * cores);
  cost.lm_head_s = std::max(mem_s, compute_s);
  cost.cpu_busy_s += cost.lm_head_s * cores;

  // Mailbox round trip (submit + completion) and cache maintenance for the shared
  // activation buffers (§6); models split across two sessions pay an extra hop per step.
  const int sessions = std::max(1, SessionsNeeded());
  cost.comm_s = sessions * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);

  cost.total_s =
      cost.linear_s + cost.attention_s + cost.misc_s + cost.lm_head_s + cost.comm_s;
  return cost;
}

StepCost Engine::DecodeStep(int batch, int context) const {
  HEXLLM_CHECK(batch >= 1);
  StepCost cost;
  switch (options_.backend) {
    case Backend::kNpuOurs:
      cost = NpuDecodeStep(batch, context);
      break;
    case Backend::kGpuOpenCl:
      cost = GpuDecodeStep(batch, context);
      break;
    case Backend::kQnnF16:
      cost = QnnDecodeStep(batch, context);
      break;
  }
  return AddLmHeadAndComm(cost, batch);
}

StepCost Engine::Prefill(int prompt_len) const {
  const ModelConfig& m = *options_.model;
  const DeviceProfile& d = *options_.device;
  StepCost cost;
  const int chunks = static_cast<int>(hexllm::CeilDiv(prompt_len, kPrefillChunk));

  if (options_.backend == Backend::kGpuOpenCl) {
    const double flops = 2.0 * m.params_b * 1e9 * prompt_len;
    cost.linear_s = flops / (d.gpu_gflops * 1e9 * kGpuPrefillComputeEfficiency);
    const double attn_flops =
        2.0 * static_cast<double>(prompt_len) * prompt_len * m.q_dim() * m.layers;
    cost.attention_s = attn_flops / (d.gpu_gflops * 1e9 * 0.3);
    cost.gpu_busy_s = cost.linear_s + cost.attention_s;
    cost.total_s = cost.linear_s + cost.attention_s + 1e-3;
    return cost;
  }

  const double hmx_eff = (options_.backend == Backend::kQnnF16) ? kQnnPrefillHmxEfficiency
                                                                : kPrefillHmxEfficiency;
  // Linear layers: HMX compute at pipeline efficiency; weights re-fetched (and for ours,
  // re-dequantized) once per chunk.
  const double flops = 2.0 * m.params_b * 1e9 * prompt_len;
  hexsim::HmxEngine hmx(d);
  const double hmx_peak = d.HmxPeakGflops() * 1e9;
  const double hmx_s = flops / (hmx_peak * hmx_eff);
  double weight_bytes_per_pass = 0.0;
  for (const auto& mat : m.LayerMatrices()) {
    const double bpw = (options_.backend == Backend::kQnnF16)
                           ? 16.0
                           : hquant::WeightSchemeBpw(mat.scheme);
    weight_bytes_per_pass += static_cast<double>(mat.k) * mat.n * bpw / 8.0;
  }
  weight_bytes_per_pass *= m.layers;
  const double dma_s = weight_bytes_per_pass * chunks / (d.dma_read_gbps * 1e9);
  double dequant_s = 0.0;
  if (options_.backend == Backend::kNpuOurs) {
    const double elems = m.params_b * 1e9;
    const double packets =
        elems / 64.0 * hkern::DequantPacketsPer64(d, options_.dequant) * chunks;
    dequant_s = packets / (d.hvx_freq_ghz * 1e9) / kAttentionThreads;
  }
  cost.linear_s = std::max({hmx_s, dma_s, dequant_s});
  cost.hmx_busy_s = hmx_s * hmx_eff;  // busy at the achieved utilization
  cost.dma_busy_s = dma_s;
  cost.ddr_bytes = static_cast<int64_t>(weight_bytes_per_pass * chunks);

  // Attention: sum over chunks of FlashAttention(q=chunk, kv=position).
  double attn_hvx = 0.0;
  double attn_hmx = 0.0;
  for (int ch = 0; ch < chunks; ++ch) {
    const int q = std::min(kPrefillChunk, prompt_len - ch * kPrefillChunk);
    const int kv = ch * kPrefillChunk + q;
    const auto a = hkern::FlashAttentionCost(d, options_.softmax, q, kv, m.head_dim);
    attn_hvx += a.HvxBusySeconds() * m.heads * m.layers;
    attn_hmx += (a.hmx_qk_s + a.hmx_pv_s) * m.heads * m.layers;
  }
  cost.attention_s = attn_hvx / kAttentionThreads + attn_hmx;
  cost.hvx_busy_s += attn_hvx;
  cost.hmx_busy_s += attn_hmx;

  const double misc_packets = MiscPacketsPerTokenPerLayer(m) * m.layers * prompt_len;
  cost.misc_s = misc_packets / (d.hvx_freq_ghz * 1e9) / kAttentionThreads;
  cost.hvx_busy_s += misc_packets / (d.hvx_freq_ghz * 1e9);

  cost.comm_s = chunks * (2 * hexsim::NpuSession::kMailboxLatencySeconds + 30e-6);
  cost.total_s = cost.linear_s + cost.attention_s + cost.misc_s + cost.comm_s;
  return cost;
}

double Engine::DecodeThroughput(int batch, int context) const {
  return batch / DecodeStep(batch, context).total_s;
}

double Engine::PrefillThroughput(int prompt_len) const {
  return prompt_len / Prefill(prompt_len).total_s;
}

PowerReport StepPower(const DeviceProfile& d, const StepCost& c, int batch,
                      bool gpu_backend) {
  PowerReport r;
  const double t = c.total_s;
  if (t <= 0.0 || batch < 1) {
    return r;
  }
  const double hvx_threads_avg = std::min<double>(d.hvx_threads, c.hvx_busy_s / t);
  const double ddr_gbps = static_cast<double>(c.ddr_bytes) / t / 1e9;
  const double gpu_w = gpu_backend ? 2.6 * (c.gpu_busy_s / t) : 0.0;
  r.watts = d.p_base_w + d.p_hmx_w * std::min(1.0, c.hmx_busy_s / t) +
            d.p_hvx_thread_w * hvx_threads_avg + d.p_ddr_per_gbps_w * ddr_gbps +
            d.p_cpu_core_w * (c.cpu_busy_s / t) + gpu_w;
  r.joules_per_token = r.watts * t / batch;
  return r;
}

PowerReport Engine::DecodePower(int batch, int context) const {
  return StepPower(*options_.device, DecodeStep(batch, context), batch,
                   options_.backend == Backend::kGpuOpenCl);
}

MemoryReport Engine::Memory(int batch) const {
  const ModelConfig& m = *options_.model;
  MemoryReport r;
  r.dmabuf_bytes = m.DmabufBytes(options_.context_budget, options_.max_batch);
  r.cpu_resident_bytes = m.CpuWeightBytes() + kCpuRuntimeOverheadBytes;
  const StepCost c = DecodeStep(batch, options_.context_budget / 2);
  r.cpu_utilization = c.cpu_busy_s / c.total_s;
  return r;
}

void Engine::ExportMetrics(obs::Registry& registry, int batch, int context) const {
  const StepCost c = DecodeStep(batch, context);
  registry.Set("engine.step.linear_seconds", c.linear_s);
  registry.Set("engine.step.attention_seconds", c.attention_s);
  registry.Set("engine.step.misc_seconds", c.misc_s);
  registry.Set("engine.step.lm_head_seconds", c.lm_head_s);
  registry.Set("engine.step.comm_seconds", c.comm_s);
  registry.Set("engine.step.total_seconds", c.total_s);
  registry.Set("engine.step.hvx_busy_seconds", c.hvx_busy_s);
  registry.Set("engine.step.hmx_busy_seconds", c.hmx_busy_s);
  registry.Set("engine.step.dma_busy_seconds", c.dma_busy_s);
  registry.Set("engine.step.cpu_busy_seconds", c.cpu_busy_s);
  registry.Set("engine.step.gpu_busy_seconds", c.gpu_busy_s);
  registry.Set("engine.step.ddr_bytes", static_cast<double>(c.ddr_bytes));
  registry.Set("engine.decode_tokens_per_second", DecodeThroughput(batch, context));
  const PowerReport p = StepPower(*options_.device, c, batch,
                                  options_.backend == Backend::kGpuOpenCl);
  registry.Set("engine.power.watts", p.watts);
  registry.Set("engine.power.joules_per_token", p.joules_per_token);
  const MemoryReport mem = Memory(batch);
  registry.Set("engine.memory.dmabuf_bytes", static_cast<double>(mem.dmabuf_bytes));
  registry.Set("engine.memory.cpu_resident_bytes", static_cast<double>(mem.cpu_resident_bytes));
  registry.Set("engine.memory.cpu_utilization", mem.cpu_utilization);
  registry.Set("engine.sessions", static_cast<double>(SessionsNeeded()));
}

}  // namespace hrt

/// \file
/// The request frontend's wire types: a timestamped request (optionally one turn of a
/// multi-turn dialog session), its latency SLO, and the per-request accounting the
/// ServingEngine produces (docs/serving_frontend.md).
#ifndef SRC_FRONTEND_REQUEST_H_
#define SRC_FRONTEND_REQUEST_H_

#include <cstdint>

#include "src/serving/job.h"

namespace hfront {

// Latency targets. <= 0 disables the bound.
struct SloSpec {
  double ttft_s = 0.0;  // time-to-first-token budget, measured from arrival
  double tpot_s = 0.0;  // time-per-output-token budget (mean over the decode)
};

// One timestamped decode request. Requests with the same non-negative `session` form a
// multi-turn dialog: turn 0 arrives at the absolute time `arrival_s`; every later turn's
// `arrival_s` is the user's THINK TIME — the gap between the previous turn's completion and
// this turn's arrival — because a user cannot send a follow-up before reading the reply.
// Follow-up turns re-prefill only their own `prompt_tokens`: the prior turns' KV stays
// resident (retained under the previous turn's job) and is mapped, not recomputed.
struct Request {
  int id = 0;            // unique; doubles as the ServeJob id
  double arrival_s = 0.0;
  int session = -1;      // dialog session id, -1 = single-turn request
  int turn_index = 0;    // position within the session (0-based, contiguous)
  int prompt_tokens = 0; // THIS turn's new tokens (not the accumulated dialog)
  int decode_tokens = 0;
  int priority = 0;      // higher admits first and may preempt (ServeJob::priority)
  // Fleet routing hint (src/fleet): a non-negative value asks the FleetRouter to place this
  // request on that device index, overriding the policy. Ignored by the single-engine
  // frontend.
  int device_hint = -1;
  // Registered shared system prompt (docs/fleet.md). A non-negative id declares that the
  // FIRST `prefix_tokens` of `prompt_tokens` are the registered prefix: the fleet's
  // PrefixRegistry anchors it once per device and later requests CoW-map it instead of
  // re-prefilling. Ignored by the single-engine frontend (requests there pay their own
  // prompts, exactly as before).
  int prefix_id = -1;
  int prefix_tokens = 0;
  hllm::SamplerOptions sampler = hserve::GreedySampler();
  uint64_t seed = 0;     // seeds the request's sampler Rng
  SloSpec slo;
};

// What happened to one request, filled by the ServingEngine as events stream out of the
// batcher. Times are the batcher's simulated clock (identical at any thread count).
struct RequestStats {
  int id = 0;
  int session = -1;
  int turn_index = 0;
  double arrival_s = 0.0;      // absolute arrival (follow-up turns: completion + think)
  double admit_s = -1.0;       // first admission (prefill complete); -1 until admitted
  double first_token_s = -1.0; // first streamed token; -1 until produced
  double done_s = -1.0;        // last token; -1 until complete
  int tokens = 0;              // streamed tokens so far
  uint64_t checksum = 14695981039346656037ull;  // FNV-1a over the token stream
  int preemptions = 0;         // times this request's decode was paused
  int resumes = 0;             // times it resumed from its retained KV
  bool done = false;
  SloSpec slo;                 // copied from the request, for post-hoc evaluation

  double ttft_s() const { return first_token_s - arrival_s; }
  double tpot_s() const {
    return tokens > 1 ? (done_s - first_token_s) / (tokens - 1) : 0.0;
  }
  bool slo_ok() const {
    if (!done) {
      return false;
    }
    return (slo.ttft_s <= 0.0 || ttft_s() <= slo.ttft_s) &&
           (slo.tpot_s <= 0.0 || tpot_s() <= slo.tpot_s);
  }
};

}  // namespace hfront

#endif  // SRC_FRONTEND_REQUEST_H_

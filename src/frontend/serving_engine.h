/// \file
/// The request-serving frontend: an event-driven loop that feeds timestamped requests into
/// the ContinuousBatcher's live Submit/Step API and streams tokens back out.
///
/// What it adds over the raw batcher (docs/serving_frontend.md has the full design):
///   * arrival semantics — requests enter the admission queue only once the simulated
///     clock reaches their arrival time; an idle batcher fast-forwards to the next arrival
///     (the gap is accounted as ScheduleResult::idle_s, never as decode time);
///   * sessions — a multi-turn dialog keeps its KV resident across turns: each turn
///     completes with retain_kv, the follow-up turn forks from it (re-prefilling ONLY the
///     new turn's tokens) and the superseded snapshot is released at the child's admission;
///   * streaming — per-token callbacks with the batcher clock, plus per-request TTFT/TPOT/
///     checksum accounting and serve.ttft_seconds / serve.tpot_seconds histograms in the
///     run's metrics snapshot;
///   * SLO bookkeeping — each completed request is scored against its SloSpec, and goodput
///     (decoded tokens of SLO-meeting requests per second) is rolled up in the summary.
///
/// The engine is deterministic end to end: the clock is the batcher's simulated time and
/// every stochastic choice (arrivals, lengths, sampling) is seeded, so one trace produces
/// bit-identical token streams and latency numbers at any HEXLLM_NUM_THREADS.
#ifndef SRC_FRONTEND_SERVING_ENGINE_H_
#define SRC_FRONTEND_SERVING_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/frontend/request.h"
#include "src/serving/continuous_batcher.h"

namespace hfront {

// Roll-up of one serving run.
struct EngineSummary {
  hserve::ScheduleResult schedule;     // the batcher's aggregate result (error, KV, metrics)
  std::vector<RequestStats> requests;  // aligned with the submitted trace order
  int64_t slo_met = 0;                 // completed requests meeting their SloSpec
  int64_t slo_total = 0;               // requests with at least one SLO bound set
  double goodput_tps = 0.0;            // decoded tokens of SLO-meeting requests / makespan
};

// q in [0, 1]; nearest-rank on a copy (empty input returns 0). Exposed for benches.
double Percentile(std::vector<double> values, double q);

class ServingEngine {
 public:
  // Streams every decoded token: the request it belongs to, the token id, and the batcher
  // clock at which it became available.
  using TokenCallback = std::function<void(const Request&, int token, double time_s)>;

  explicit ServingEngine(hserve::ContinuousBatcher& batcher) : batcher_(batcher) {}

  void set_token_callback(TokenCallback cb) { on_token_ = std::move(cb); }

  // Runs the trace to completion (resets the batcher first). Request ids must be unique and
  // each session's turn_index values contiguous from 0. On a poisoned run (e.g. a KV budget
  // that cannot admit), EngineSummary::schedule.error is set and the per-request stats
  // cover whatever completed.
  EngineSummary Run(const std::vector<Request>& requests);

 private:
  struct SessionState {
    int last_job_id = -1;  // completed turn whose KV is retained
    int kv_len = 0;        // that turn's final KV length
  };

  // Builds the ServeJob for `req` (forking from the session's retained turn when
  // turn_index > 0) and submits it.
  void SubmitRequest(const Request& req, EngineSummary& summary);
  void ProcessEvents(const hserve::StepEvents& ev, EngineSummary& summary);

  hserve::ContinuousBatcher& batcher_;
  TokenCallback on_token_;

  // --- per-run state ---
  std::vector<Request> trace_;
  std::map<int, int> by_id_;                   // request id -> trace_ index
  std::map<int, int> next_turn_;               // request id -> trace_ index of its successor
  std::map<int, SessionState> sessions_;       // session id -> retained-KV state
  std::set<std::pair<double, int>> arrivals_;  // (absolute arrival, trace_ index)
  obs::Histogram* ttft_hist_ = nullptr;
  obs::Histogram* tpot_hist_ = nullptr;
};

}  // namespace hfront

#endif  // SRC_FRONTEND_SERVING_ENGINE_H_

#include "src/frontend/serving_engine.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "src/base/check.h"

namespace hfront {

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

void ServingEngine::SubmitRequest(const Request& req, EngineSummary& summary) {
  hserve::ServeJob job;
  job.id = req.id;
  job.prompt_tokens = req.prompt_tokens;
  job.decode_tokens = req.decode_tokens;
  job.priority = req.priority;
  job.sampler = req.sampler;
  job.seed = req.seed;
  // Retain the final KV only when a follow-up turn will fork from it; the handle is
  // released at that child's admission (ProcessEvents), so a session holds at most one
  // superseded snapshot at a time.
  job.retain_kv = next_turn_.count(req.id) != 0;
  if (req.turn_index > 0) {
    const auto sit = sessions_.find(req.session);
    HEXLLM_CHECK_MSG(sit != sessions_.end(), "follow-up turn before its session started");
    job.parent_job = sit->second.last_job_id;
    // The dialog so far is the parent's retained KV (mapped, uncharged); only this turn's
    // prompt_tokens are fresh and re-prefill.
    job.context_tokens = sit->second.kv_len;
  }
  std::string error;
  if (!batcher_.Submit(job, &error)) {
    // Surface the rejection as the run's error; the event loop winds down.
    summary.schedule.error = error;
  }
}

void ServingEngine::ProcessEvents(const hserve::StepEvents& ev, EngineSummary& summary) {
  for (const hserve::StepEvents::Token& t : ev.tokens) {
    RequestStats& st = summary.requests[static_cast<size_t>(by_id_.at(t.job_id))];
    if (st.tokens == 0) {
      st.first_token_s = t.time_s;
    }
    ++st.tokens;
    st.checksum = (st.checksum ^ static_cast<uint64_t>(static_cast<uint32_t>(t.token))) *
                  1099511628211ull;
    if (on_token_) {
      on_token_(trace_[static_cast<size_t>(by_id_.at(t.job_id))], t.token, t.time_s);
    }
  }
  for (const int job_id : ev.paused) {
    ++summary.requests[static_cast<size_t>(by_id_.at(job_id))].preemptions;
  }
  for (const int job_id : ev.admitted) {
    const Request& req = trace_[static_cast<size_t>(by_id_.at(job_id))];
    if (req.turn_index > 0) {
      // The fork admission has mapped the parent turn's KV into the new slot; the
      // superseded snapshot handle can drop (shared blocks stay alive through the child's
      // own references).
      batcher_.ReleaseRetained(sessions_.at(req.session).last_job_id);
    }
  }
  for (const int job_id : ev.completed) {
    const int index = by_id_.at(job_id);
    const Request& req = trace_[static_cast<size_t>(index)];
    RequestStats& st = summary.requests[static_cast<size_t>(index)];
    st.done_s = ev.time_s;
    st.done = true;
    ttft_hist_->Observe(st.ttft_s());
    tpot_hist_->Observe(st.tpot_s());
    if (req.session >= 0) {
      SessionState& sess = sessions_[req.session];
      sess.last_job_id = req.id;
      sess.kv_len = req.prompt_tokens + req.decode_tokens +
                    (req.turn_index > 0 ? sess.kv_len : 0);
      const auto nit = next_turn_.find(req.id);
      if (nit != next_turn_.end()) {
        // The user reads the reply, then sends the next turn: its arrival is this
        // completion plus the think time the trace encoded in arrival_s.
        const int next_index = nit->second;
        const double arrive =
            ev.time_s + trace_[static_cast<size_t>(next_index)].arrival_s;
        summary.requests[static_cast<size_t>(next_index)].arrival_s = arrive;
        arrivals_.insert({arrive, next_index});
      }
    }
  }
}

EngineSummary ServingEngine::Run(const std::vector<Request>& requests) {
  trace_ = requests;
  by_id_.clear();
  next_turn_.clear();
  sessions_.clear();
  arrivals_.clear();

  EngineSummary summary;
  summary.requests.resize(trace_.size());
  std::map<std::pair<int, int>, int> by_turn;  // (session, turn) -> trace_ index
  for (size_t i = 0; i < trace_.size(); ++i) {
    const Request& req = trace_[i];
    HEXLLM_CHECK_MSG(by_id_.try_emplace(req.id, static_cast<int>(i)).second,
                     "duplicate request id");
    RequestStats& st = summary.requests[i];
    st.id = req.id;
    st.session = req.session;
    st.turn_index = req.turn_index;
    st.slo = req.slo;
    if (req.session >= 0) {
      HEXLLM_CHECK_MSG(by_turn.try_emplace({req.session, req.turn_index},
                                           static_cast<int>(i)).second,
                       "duplicate session turn");
    }
    if (req.session < 0 || req.turn_index == 0) {
      HEXLLM_CHECK(req.arrival_s >= 0.0);
      arrivals_.insert({req.arrival_s, static_cast<int>(i)});
      summary.requests[i].arrival_s = req.arrival_s;
    }
  }
  for (const auto& [key, index] : by_turn) {
    if (key.second > 0) {
      const auto prev = by_turn.find({key.first, key.second - 1});
      HEXLLM_CHECK_MSG(prev != by_turn.end(), "session turns must be contiguous from 0");
      next_turn_[trace_[static_cast<size_t>(prev->second)].id] = index;
    }
  }

  batcher_.Reset();
  ttft_hist_ = &batcher_.registry().histogram(
      "serve.ttft_seconds", obs::HistogramBuckets::Exponential(1e-3, 2.0, 16));
  tpot_hist_ = &batcher_.registry().histogram(
      "serve.tpot_seconds", obs::HistogramBuckets::Exponential(1e-4, 2.0, 14));

  while (summary.schedule.error.empty()) {
    while (!arrivals_.empty() && arrivals_.begin()->first <= batcher_.now_s()) {
      const int index = arrivals_.begin()->second;
      arrivals_.erase(arrivals_.begin());
      SubmitRequest(trace_[static_cast<size_t>(index)], summary);
    }
    if (!summary.schedule.error.empty()) {
      break;
    }
    if (!batcher_.HasWork()) {
      if (arrivals_.empty()) {
        break;  // drained: every submitted request completed, nothing left to arrive
      }
      batcher_.AdvanceTime(arrivals_.begin()->first - batcher_.now_s());
      continue;
    }
    const hserve::StepEvents ev = batcher_.Step();
    ProcessEvents(ev, summary);
    if (!ev.stepped) {
      break;  // poisoned (KV budget cannot admit); Finish carries the error
    }
  }

  const std::string submit_error = summary.schedule.error;
  summary.schedule = batcher_.Finish();
  if (summary.schedule.error.empty()) {
    summary.schedule.error = submit_error;
  }

  // Admission times (and resume counts) come from the batcher's admission log, which
  // records the exact post-prefill clock (StepEvents only reports end-of-step times).
  for (const hserve::Admission& a : summary.schedule.admissions) {
    const auto it = by_id_.find(a.job_id);
    if (it == by_id_.end()) {
      continue;
    }
    RequestStats& st = summary.requests[static_cast<size_t>(it->second)];
    if (a.resumed) {
      ++st.resumes;
    } else if (st.admit_s < 0.0) {
      st.admit_s = a.time_s;
    }
  }
  int64_t good_tokens = 0;
  for (const RequestStats& st : summary.requests) {
    if (st.slo.ttft_s > 0.0 || st.slo.tpot_s > 0.0) {
      ++summary.slo_total;
    }
    if (st.slo_ok()) {
      ++summary.slo_met;
      good_tokens += st.tokens;
    }
  }
  if (summary.schedule.makespan_s > 0.0) {
    summary.goodput_tps = static_cast<double>(good_tokens) / summary.schedule.makespan_s;
  }
  return summary;
}

}  // namespace hfront

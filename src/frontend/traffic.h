/// \file
/// Deterministic traffic generation for serving experiments: seeded Poisson/bursty
/// arrivals, lognormal prompt/output-length dispersion, an interactive (latency-critical)
/// request class, and multi-turn dialog sessions. The same (options, seed) pair always
/// produces the same trace, so serving benchmarks are bit-reproducible
/// (docs/serving_frontend.md lists every knob).
#ifndef SRC_FRONTEND_TRAFFIC_H_
#define SRC_FRONTEND_TRAFFIC_H_

#include <cstdint>
#include <vector>

#include "src/frontend/request.h"

namespace hfront {

struct TrafficOptions {
  // Number of INITIAL arrivals. Sessions append their follow-up turns on top, so the trace
  // holds up to `arrivals * session_turns` requests.
  int arrivals = 32;
  uint64_t seed = 1;

  // --- arrival process ---
  double arrival_rate_hz = 4.0;   // Poisson rate of the base process
  // Each arrival is a burst head with this probability: the next `burst_size - 1` arrivals
  // land within `burst_spread_s` of it instead of waiting out exponential gaps (a traffic
  // spike hitting the admission queue at once).
  double burst_fraction = 0.0;
  int burst_size = 4;
  double burst_spread_s = 1e-3;

  // --- length mix (lognormal with sigma 0.5 around the mean, floored) ---
  int mean_prompt_tokens = 48;
  int min_prompt_tokens = 8;
  int mean_decode_tokens = 24;
  int min_decode_tokens = 4;

  // --- request classes ---
  // Interactive requests get priority 1 and `interactive_slo`; the rest are batch
  // (priority 0, `batch_slo`). Priority 1 preempts running batch decodes when the engine's
  // batcher has ServeOptions::enable_preemption set.
  double interactive_fraction = 0.25;
  SloSpec interactive_slo{0.5, 0.1};
  SloSpec batch_slo{0.0, 0.0};

  // --- sessions ---
  // An initial arrival starts a dialog session with this probability; the session runs
  // `session_turns` turns total. Follow-up turns' think time is exponential with mean
  // `mean_think_s`, and their lengths are drawn from the same distributions.
  double session_fraction = 0.0;
  int session_turns = 3;
  double mean_think_s = 1.0;

  // --- long-context requests (tiered KV offload, docs/long_context.md) ---
  // With long_context_fraction > 0, an initial arrival is a document-grounded long-context
  // request with this probability: its prompt length is drawn around
  // `mean_long_prompt_tokens` (same lognormal dispersion, floored at
  // `min_long_prompt_tokens`) instead of the short-prompt mean. These are the sessions
  // whose resident KV overflows the DRAM budget and exercises the flash tier / sliding
  // window. All draws are gated on the fraction, so the default (0) produces byte-identical
  // traces to older options.
  double long_context_fraction = 0.0;
  int mean_long_prompt_tokens = 8192;
  int min_long_prompt_tokens = 1024;

  // --- shared system prompts (fleet prefix registry, docs/fleet.md) ---
  // With prefix_count > 0 and prefix_tokens > 0, each initial arrival uses a registered
  // shared system prompt with probability `prefix_fraction`: its Request carries a
  // prefix_id in [0, prefix_count) and prompt_tokens grows by prefix_tokens (the prefix
  // rides in front of the turn's own prompt). All prefix draws are gated on these knobs, so
  // the default (0) produces byte-identical traces to older options.
  int prefix_count = 0;
  int prefix_tokens = 0;
  double prefix_fraction = 0.5;

  // --- stream splitting (fleet-scale generation) ---
  // A non-zero stream id decorrelates this trace from every other stream of the same seed
  // (hexllm::Rng::Fork semantics), and id_base / session_base offset the generated request
  // and session ids, so N per-device generators can emit disjoint, independently-seeded
  // slices of one fleet workload without sharing an RNG. Stream 0 with zero bases is
  // byte-identical to the pre-fleet generator.
  uint64_t stream = 0;
  int id_base = 0;
  int session_base = 0;

  // Sampling policy stamped on every request (greedy default); each request still gets its
  // own Rng seed from the trace seed.
  hllm::SamplerOptions sampler = hserve::GreedySampler();
};

// Generates the trace, sorted by arrival time for the initial turns (follow-up turns carry
// relative think times and ride behind their session head). Request ids are dense from 0.
std::vector<Request> GenerateTraffic(const TrafficOptions& options);

}  // namespace hfront

#endif  // SRC_FRONTEND_TRAFFIC_H_

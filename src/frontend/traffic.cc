#include "src/frontend/traffic.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/rng.h"

namespace hfront {

namespace {

// Lognormal with sigma 0.5 around `mean` (the same dispersion MakeSampleJobs and the TTS
// library use), floored at `min`.
int Length(int mean, int min, hexllm::Rng& rng) {
  const double len = mean * std::exp(0.5 * rng.NextGaussian() - 0.125);
  return std::max(min, static_cast<int>(len));
}

}  // namespace

std::vector<Request> GenerateTraffic(const TrafficOptions& o) {
  HEXLLM_CHECK(o.arrivals >= 0);
  HEXLLM_CHECK(o.arrival_rate_hz > 0.0);
  HEXLLM_CHECK(o.session_turns >= 1);
  // Stream splitting uses Rng::Fork's mixing constant without consuming a draw, so stream 0
  // reproduces the pre-fleet generator bit for bit.
  hexllm::Rng rng(o.stream == 0 ? o.seed : o.seed ^ (o.stream * 0xA24BAED4963EE407ull));
  std::vector<Request> out;
  out.reserve(static_cast<size_t>(o.arrivals));

  double t = 0.0;
  int id = 0;
  int session_id = 0;
  int burst_left = 0;  // arrivals still to land inside the current burst window
  double burst_t0 = 0.0;

  for (int i = 0; i < o.arrivals; ++i) {
    if (burst_left > 0) {
      --burst_left;
      t = burst_t0 + o.burst_spread_s * rng.NextDouble();
    } else {
      t += rng.NextExponential() / o.arrival_rate_hz;
      if (o.burst_fraction > 0.0 && o.burst_size > 1 && rng.NextBool(o.burst_fraction)) {
        burst_left = o.burst_size - 1;
        burst_t0 = t;
      }
    }

    const bool interactive = rng.NextBool(o.interactive_fraction);
    const bool in_session = o.session_fraction > 0.0 && o.session_turns > 1 &&
                            rng.NextBool(o.session_fraction);
    // Long-context draw, gated on the knob so legacy traces are unchanged. Every turn of a
    // long session stays in the long regime — the document context persists across turns.
    const bool long_context =
        o.long_context_fraction > 0.0 && rng.NextBool(o.long_context_fraction);
    // Shared-system-prompt draw, gated on the prefix knobs so legacy traces are unchanged.
    int prefix = -1;
    if (o.prefix_count > 0 && o.prefix_tokens > 0 && rng.NextBool(o.prefix_fraction)) {
      prefix = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(o.prefix_count)));
    }
    const int turns = in_session ? o.session_turns : 1;
    const int session = in_session ? o.session_base + session_id++ : -1;
    for (int turn = 0; turn < turns; ++turn) {
      Request r;
      r.id = o.id_base + id++;
      r.arrival_s = turn == 0 ? t : o.mean_think_s * rng.NextExponential();
      r.session = session;
      r.turn_index = turn;
      r.prompt_tokens = long_context
                            ? Length(o.mean_long_prompt_tokens, o.min_long_prompt_tokens, rng)
                            : Length(o.mean_prompt_tokens, o.min_prompt_tokens, rng);
      r.decode_tokens = Length(o.mean_decode_tokens, o.min_decode_tokens, rng);
      if (turn == 0 && prefix >= 0) {
        // The registered prefix rides in front of the first turn's own prompt.
        r.prefix_id = prefix;
        r.prefix_tokens = o.prefix_tokens;
        r.prompt_tokens += o.prefix_tokens;
      }
      r.priority = interactive ? 1 : 0;
      r.slo = interactive ? o.interactive_slo : o.batch_slo;
      r.sampler = o.sampler;
      r.seed = rng.NextU64();
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace hfront

#include "src/fleet/fleet.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "src/base/check.h"

namespace hfleet {

// ---------------------------------------------------------------------------------------
// Router

const char* RouterPolicyName(RouterPolicy policy) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return "round_robin";
    case RouterPolicy::kLeastLoaded:
      return "least_loaded";
    case RouterPolicy::kSessionAffine:
      return "session_affine";
  }
  return "unknown";
}

FleetRouter::FleetRouter(RouterPolicy policy, int devices)
    : policy_(policy), devices_(devices) {
  HEXLLM_CHECK(devices >= 1);
}

void FleetRouter::Reset() {
  rr_next_ = 0;
  session_device_.clear();
}

int FleetRouter::LeastLoaded(const std::vector<DeviceLoad>& loads) const {
  int best = 0;
  for (int d = 1; d < devices_; ++d) {
    const DeviceLoad& a = loads[static_cast<size_t>(d)];
    const DeviceLoad& b = loads[static_cast<size_t>(best)];
    // Lexicographic (inflight, kv_blocks, index): the index tiebreak keeps the choice
    // deterministic and rerun-stable.
    if (a.inflight < b.inflight ||
        (a.inflight == b.inflight && a.kv_blocks < b.kv_blocks)) {
      best = d;
    }
  }
  return best;
}

int FleetRouter::Route(const hfront::Request& req, const std::vector<DeviceLoad>& loads) {
  HEXLLM_CHECK(static_cast<int>(loads.size()) == devices_);
  if (policy_ == RouterPolicy::kSessionAffine && req.session >= 0) {
    const auto it = session_device_.find(req.session);
    if (it != session_device_.end()) {
      return it->second;  // the pin outranks even a device_hint on later turns
    }
  }
  int pick;
  if (req.device_hint >= 0) {
    HEXLLM_CHECK_MSG(req.device_hint < devices_, "device_hint out of range");
    pick = req.device_hint;
  } else {
    switch (policy_) {
      case RouterPolicy::kRoundRobin:
        pick = rr_next_;
        rr_next_ = (rr_next_ + 1) % devices_;
        break;
      case RouterPolicy::kLeastLoaded:
      case RouterPolicy::kSessionAffine:  // first turn: place where there is room
        pick = LeastLoaded(loads);
        break;
      default:
        pick = 0;
        break;
    }
  }
  if (policy_ == RouterPolicy::kSessionAffine && req.session >= 0) {
    session_device_[req.session] = pick;
  }
  return pick;
}

// ---------------------------------------------------------------------------------------
// Prefix registry

PrefixRegistry::PrefixRegistry(int devices, int capacity_per_device)
    : capacity_(capacity_per_device), per_device_(static_cast<size_t>(devices)) {
  HEXLLM_CHECK(devices >= 1);
}

PrefixRegistry::Acquired PrefixRegistry::Acquire(int device, int prefix_id) {
  HEXLLM_CHECK(device >= 0 && device < static_cast<int>(per_device_.size()));
  HEXLLM_CHECK(prefix_id >= 0);
  auto& resident = per_device_[static_cast<size_t>(device)];
  Acquired out;
  const auto it = resident.find(prefix_id);
  if (it != resident.end()) {
    out.hit = true;
    ++hits_;
    ++it->second.refs;
    it->second.last_use = ++use_seq_;
    return out;
  }
  ++misses_;
  if (capacity_ > 0 && static_cast<int>(resident.size()) >= capacity_) {
    int victim = -1;
    int64_t oldest = std::numeric_limits<int64_t>::max();
    for (const auto& [pid, entry] : resident) {
      if (entry.refs == 0 && entry.last_use < oldest) {
        oldest = entry.last_use;
        victim = pid;
      }
    }
    if (victim >= 0) {
      resident.erase(victim);
      ++evictions_;
      out.evicted_prefix = victim;
    }
    // No refcount-0 resident: over-subscribe rather than break an in-flight share.
  }
  resident.emplace(prefix_id, Entry{1, ++use_seq_});
  return out;
}

void PrefixRegistry::Release(int device, int prefix_id) {
  HEXLLM_CHECK(device >= 0 && device < static_cast<int>(per_device_.size()));
  auto& resident = per_device_[static_cast<size_t>(device)];
  const auto it = resident.find(prefix_id);
  HEXLLM_CHECK_MSG(it != resident.end() && it->second.refs > 0,
                   "release of a prefix the device does not hold");
  --it->second.refs;
}

int PrefixRegistry::resident_count(int device) const {
  return static_cast<int>(per_device_[static_cast<size_t>(device)].size());
}

bool PrefixRegistry::resident(int device, int prefix_id) const {
  return per_device_[static_cast<size_t>(device)].count(prefix_id) != 0;
}

int PrefixRegistry::refcount(int device, int prefix_id) const {
  const auto& resident = per_device_[static_cast<size_t>(device)];
  const auto it = resident.find(prefix_id);
  return it != resident.end() ? it->second.refs : 0;
}

// ---------------------------------------------------------------------------------------
// Fleet construction

std::vector<FleetDeviceSpec> HeterogeneousFleet(int devices) {
  HEXLLM_CHECK(devices >= 1);
  using hexsim::NpuArch;
  static constexpr struct {
    NpuArch arch;
    bool little;
    bool thermal;
  } kPattern[] = {
      {NpuArch::kV75, false, false}, {NpuArch::kV79, false, false},
      {NpuArch::kV73, false, false}, {NpuArch::kV75, true, false},
      {NpuArch::kV79, false, true},  {NpuArch::kV73, true, true},
  };
  constexpr int kPatternLen = static_cast<int>(sizeof(kPattern) / sizeof(kPattern[0]));
  std::vector<FleetDeviceSpec> out;
  out.reserve(static_cast<size_t>(devices));
  for (int d = 0; d < devices; ++d) {
    const auto& p = kPattern[d % kPatternLen];
    FleetDeviceSpec spec;
    spec.arch = p.arch;
    spec.little = p.little;
    spec.thermal = p.thermal;
    out.push_back(spec);
  }
  return out;
}

FleetSimulator::FleetSimulator(const FleetOptions& options, const hllm::ModelWeights& weights)
    : options_(options),
      weights_(weights),
      router_(options.policy, static_cast<int>(options.devices.size())) {
  HEXLLM_CHECK_MSG(!options_.devices.empty(), "a fleet needs at least one device");
}

void FleetSimulator::BuildDevices() {
  devices_.clear();
  for (size_t d = 0; d < options_.devices.size(); ++d) {
    const FleetDeviceSpec& spec = options_.devices[d];
    auto dev = std::make_unique<Device>();
    dev->spec = spec;
    dev->profile = spec.little ? hexsim::LittleVariant(hexsim::DeviceByArch(spec.arch))
                               : hexsim::DeviceByArch(spec.arch);
    dev->name = "d" + std::to_string(d) + ":" + hexsim::NpuArchName(spec.arch) +
                (spec.little ? "-little" : "") + (spec.thermal ? "-throttled" : "");
    dev->npu = std::make_unique<hexsim::NpuDevice>(dev->profile);
    dev->functional = std::make_unique<hserve::FunctionalBackend>(
        *dev->npu, weights_, options_.serve.max_batch, options_.max_context,
        options_.kv_pool_blocks, options_.kv_dtype, options_.kv_quant_group);
    dev->backend = std::make_unique<ThrottledBackend>(*dev->functional, spec.thermal_params,
                                                      spec.thermal);
    dev->batcher =
        std::make_unique<hserve::ContinuousBatcher>(*dev->backend, options_.serve);
    devices_.push_back(std::move(dev));
  }
}

std::vector<DeviceLoad> FleetSimulator::SampleLoads() const {
  std::vector<DeviceLoad> loads(devices_.size());
  for (size_t d = 0; d < devices_.size(); ++d) {
    loads[d].inflight = devices_[d]->inflight;
    loads[d].kv_blocks = devices_[d]->backend->kv_stats().physical_blocks;
  }
  return loads;
}

void FleetSimulator::SubmitRouted(int index, double time_s, FleetSummary& summary) {
  const hfront::Request& req = trace_[static_cast<size_t>(index)];
  const int d = router_.Route(req, SampleLoads());
  summary.request_device[static_cast<size_t>(index)] = d;
  Device& dev = *devices_[static_cast<size_t>(d)];

  // An idle device's clock may lag the global arrival time: fast-forward (cooling the
  // thermal state over the gap) so the request is admitted at its arrival, not in the
  // device's past. A busy device's clock is already at or past the arrival (the event loop
  // never releases an arrival while a busy device is behind it), so no gap to bridge.
  if (!dev.batcher->HasWork() && dev.batcher->now_s() < time_s) {
    const double gap = time_s - dev.batcher->now_s();
    dev.backend->AddIdle(gap);
    dev.batcher->AdvanceTime(gap);
  }

  const bool affine = options_.policy == RouterPolicy::kSessionAffine;
  hserve::ServeJob job;
  job.id = req.id;
  job.decode_tokens = req.decode_tokens;
  job.priority = req.priority;
  job.sampler = req.sampler;
  job.seed = req.seed;
  job.retain_kv = affine && next_turn_.count(req.id) != 0;
  if (req.turn_index > 0) {
    const auto sit = sessions_.find(req.session);
    HEXLLM_CHECK_MSG(sit != sessions_.end(), "follow-up turn before its session started");
    if (affine) {
      // The dialog so far is the parent turn's retained KV on this same device — mapped,
      // not recomputed; only this turn's own tokens prefill.
      job.parent_job = sit->second.last_job_id;
      job.context_tokens = sit->second.kv_len;
      job.prompt_tokens = req.prompt_tokens;
    } else {
      // Nothing retained: re-prefill the accumulated dialog plus this turn.
      job.prompt_tokens = sit->second.kv_len + req.prompt_tokens;
    }
  } else {
    job.prompt_tokens = req.prompt_tokens;
    if (req.prefix_id >= 0 && req.prefix_tokens > 0) {
      const PrefixRegistry::Acquired acq = registry_->Acquire(d, req.prefix_id);
      if (acq.evicted_prefix >= 0) {
        dev.batcher->EvictGroup(acq.evicted_prefix);
      }
      // Pin on every acquire (idempotent): the anchor must outlive the group's current
      // jobs so the NEXT request with this prefix CoW-maps it instead of re-prefilling.
      dev.batcher->PinGroup(req.prefix_id);
      job.prompt_group = req.prefix_id;
      job.group_prefix_tokens = std::min(req.prefix_tokens, req.prompt_tokens);
    }
  }

  ++dev.inflight;
  ++dev.requests;
  std::string error;
  if (!dev.batcher->Submit(job, &error)) {
    summary.error = dev.name + ": " + error;
  }
}

void FleetSimulator::ProcessEvents(int device, const hserve::StepEvents& ev,
                                   FleetSummary& summary) {
  Device& dev = *devices_[static_cast<size_t>(device)];
  const bool affine = options_.policy == RouterPolicy::kSessionAffine;
  for (const hserve::StepEvents::Token& t : ev.tokens) {
    hfront::RequestStats& st =
        summary.requests[static_cast<size_t>(by_id_.at(t.job_id))];
    if (st.tokens == 0) {
      st.first_token_s = t.time_s;
    }
    ++st.tokens;
    st.checksum = (st.checksum ^ static_cast<uint64_t>(static_cast<uint32_t>(t.token))) *
                  1099511628211ull;
  }
  for (const int job_id : ev.paused) {
    ++summary.requests[static_cast<size_t>(by_id_.at(job_id))].preemptions;
  }
  for (const int job_id : ev.admitted) {
    const hfront::Request& req = trace_[static_cast<size_t>(by_id_.at(job_id))];
    if (affine && req.turn_index > 0) {
      // The fork admission mapped the superseded turn's KV; its snapshot handle can drop.
      dev.batcher->ReleaseRetained(sessions_.at(req.session).last_job_id);
    }
  }
  for (const int job_id : ev.completed) {
    const int index = by_id_.at(job_id);
    const hfront::Request& req = trace_[static_cast<size_t>(index)];
    hfront::RequestStats& st = summary.requests[static_cast<size_t>(index)];
    st.done_s = ev.time_s;
    st.done = true;
    ttft_hist_->Observe(st.ttft_s());
    tpot_hist_->Observe(st.tpot_s());
    --dev.inflight;
    if (req.turn_index == 0 && req.prefix_id >= 0 && req.prefix_tokens > 0) {
      registry_->Release(device, req.prefix_id);
    }
    if (req.session >= 0) {
      SessionState& sess = sessions_[req.session];
      sess.last_job_id = req.id;
      // Accumulated dialog length; doubles as the affine fork context and the non-affine
      // re-prefill length.
      sess.kv_len += req.prompt_tokens + req.decode_tokens;
      const auto nit = next_turn_.find(req.id);
      if (nit != next_turn_.end()) {
        const int next_index = nit->second;
        const double arrive =
            ev.time_s + trace_[static_cast<size_t>(next_index)].arrival_s;
        summary.requests[static_cast<size_t>(next_index)].arrival_s = arrive;
        arrivals_.insert({arrive, next_index});
      }
    }
  }
}

FleetSummary FleetSimulator::Run(const std::vector<hfront::Request>& trace) {
  trace_ = trace;
  by_id_.clear();
  next_turn_.clear();
  sessions_.clear();
  arrivals_.clear();
  router_.Reset();
  registry_ = std::make_unique<PrefixRegistry>(device_count(),
                                               options_.prefix_capacity_per_device);
  BuildDevices();
  reg_.Clear();
  ttft_hist_ = &reg_.histogram("fleet.ttft_seconds",
                               obs::HistogramBuckets::Exponential(1e-3, 2.0, 16));
  tpot_hist_ = &reg_.histogram("fleet.tpot_seconds",
                               obs::HistogramBuckets::Exponential(1e-4, 2.0, 14));

  FleetSummary summary;
  summary.requests.resize(trace_.size());
  summary.request_device.assign(trace_.size(), -1);
  std::map<std::pair<int, int>, int> by_turn;  // (session, turn) -> trace_ index
  for (size_t i = 0; i < trace_.size(); ++i) {
    const hfront::Request& req = trace_[i];
    HEXLLM_CHECK_MSG(by_id_.try_emplace(req.id, static_cast<int>(i)).second,
                     "duplicate request id");
    hfront::RequestStats& st = summary.requests[i];
    st.id = req.id;
    st.session = req.session;
    st.turn_index = req.turn_index;
    st.slo = req.slo;
    if (req.session >= 0) {
      HEXLLM_CHECK_MSG(
          by_turn.try_emplace({req.session, req.turn_index}, static_cast<int>(i)).second,
          "duplicate session turn");
    }
    if (req.session < 0 || req.turn_index == 0) {
      HEXLLM_CHECK(req.arrival_s >= 0.0);
      arrivals_.insert({req.arrival_s, static_cast<int>(i)});
      st.arrival_s = req.arrival_s;
    }
  }
  for (const auto& [key, index] : by_turn) {
    if (key.second > 0) {
      const auto prev = by_turn.find({key.first, key.second - 1});
      HEXLLM_CHECK_MSG(prev != by_turn.end(), "session turns must be contiguous from 0");
      next_turn_[trace_[static_cast<size_t>(prev->second)].id] = index;
    }
  }

  // The deterministic merge: always advance the busy device with the earliest clock, and
  // release an arrival only once every busy device has simulated past it (routing reads
  // per-device load, so the loads must be the loads AT the arrival time).
  while (summary.error.empty()) {
    int earliest = -1;
    double busy_min = std::numeric_limits<double>::infinity();
    for (size_t d = 0; d < devices_.size(); ++d) {
      if (devices_[d]->batcher->HasWork() && devices_[d]->batcher->now_s() < busy_min) {
        busy_min = devices_[d]->batcher->now_s();
        earliest = static_cast<int>(d);
      }
    }
    if (!arrivals_.empty() && (earliest < 0 || arrivals_.begin()->first <= busy_min)) {
      const auto [time_s, index] = *arrivals_.begin();
      arrivals_.erase(arrivals_.begin());
      SubmitRouted(index, time_s, summary);
      continue;
    }
    if (earliest < 0) {
      break;  // drained: nothing in flight, nothing left to arrive
    }
    hserve::ContinuousBatcher& batcher = *devices_[static_cast<size_t>(earliest)]->batcher;
    const hserve::StepEvents ev = batcher.Step();
    ProcessEvents(earliest, ev, summary);
    if (!ev.stepped) {
      // The device has work it cannot ever admit (poisoned, e.g. KV budget too small);
      // its Finish() below carries the message.
      summary.error = devices_[static_cast<size_t>(earliest)]->name + ": stalled";
      break;
    }
  }

  // Per-device teardown and roll-up.
  int64_t good_tokens = 0;
  double decoded_mean = 0.0;
  int64_t decoded_max = 0;
  for (size_t d = 0; d < devices_.size(); ++d) {
    Device& dev = *devices_[d];
    FleetDeviceSummary ds;
    ds.name = dev.name;
    ds.spec = dev.spec;
    ds.requests = dev.requests;
    ds.final_temperature_c = dev.backend->temperature_c();
    ds.min_clock_scale = dev.backend->min_scale_reached();
    ds.schedule = dev.batcher->Finish();
    if (summary.error.empty() && !ds.schedule.error.empty()) {
      summary.error = dev.name + ": " + ds.schedule.error;
    }
    summary.makespan_s = std::max(summary.makespan_s, ds.schedule.makespan_s);
    summary.energy_j += ds.schedule.energy_j;
    summary.decoded_tokens += ds.schedule.decoded_tokens;
    summary.kv_peak_physical_bytes += ds.schedule.kv.peak_physical_bytes();
    decoded_max = std::max(decoded_max, ds.schedule.decoded_tokens);
    for (const hserve::Admission& a : ds.schedule.admissions) {
      const auto it = by_id_.find(a.job_id);
      if (it == by_id_.end()) {
        continue;
      }
      hfront::RequestStats& st = summary.requests[static_cast<size_t>(it->second)];
      if (a.resumed) {
        ++st.resumes;
      } else if (st.admit_s < 0.0) {
        st.admit_s = a.time_s;
      }
    }
    summary.devices.push_back(std::move(ds));
  }
  decoded_mean =
      static_cast<double>(summary.decoded_tokens) / static_cast<double>(devices_.size());
  if (decoded_mean > 0.0) {
    summary.load_imbalance = static_cast<double>(decoded_max) / decoded_mean;
  }
  for (const hfront::RequestStats& st : summary.requests) {
    if (st.slo.ttft_s > 0.0 || st.slo.tpot_s > 0.0) {
      ++summary.slo_total;
    }
    if (st.slo_ok()) {
      ++summary.slo_met;
      good_tokens += st.tokens;
    }
  }
  if (summary.makespan_s > 0.0) {
    summary.goodput_tps = static_cast<double>(good_tokens) / summary.makespan_s;
  }
  summary.prefix_hits = registry_->hits();
  summary.prefix_misses = registry_->misses();
  summary.prefix_evictions = registry_->evictions();
  if (!trace_.empty()) {
    summary.energy_per_request_j =
        summary.energy_j / static_cast<double>(trace_.size());
  }

  // fleet.* metrics (docs/metrics_schema.md): fleet-wide scalars plus one labeled series
  // per device, then the snapshot rides in the summary like ScheduleResult::metrics does.
  reg_.Set("fleet.devices", static_cast<double>(devices_.size()));
  reg_.Count("fleet.requests", static_cast<int64_t>(trace_.size()));
  reg_.Count("fleet.decoded_tokens", summary.decoded_tokens);
  reg_.Count("fleet.prefix.hits", summary.prefix_hits);
  reg_.Count("fleet.prefix.misses", summary.prefix_misses);
  reg_.Count("fleet.prefix.evictions", summary.prefix_evictions);
  reg_.Set("fleet.makespan_seconds", summary.makespan_s);
  reg_.Set("fleet.energy_joules", summary.energy_j);
  reg_.Set("fleet.energy_per_request_joules", summary.energy_per_request_j);
  reg_.Set("fleet.goodput_tokens_per_second", summary.goodput_tps);
  reg_.Set("fleet.kv_peak_physical_bytes",
           static_cast<double>(summary.kv_peak_physical_bytes));
  reg_.Set("fleet.load_imbalance", summary.load_imbalance);
  for (const FleetDeviceSummary& ds : summary.devices) {
    reg_.Count("fleet.device.requests", ds.requests, ds.name);
    reg_.Count("fleet.device.decoded_tokens", ds.schedule.decoded_tokens, ds.name);
    reg_.Count("fleet.device.preemptions", ds.schedule.preemptions, ds.name);
    reg_.Set("fleet.device.makespan_seconds", ds.schedule.makespan_s, ds.name);
    reg_.Set("fleet.device.energy_joules", ds.schedule.energy_j, ds.name);
    reg_.Set("fleet.device.kv_peak_bytes",
             static_cast<double>(ds.schedule.kv.peak_physical_bytes()), ds.name);
    reg_.Set("fleet.device.temperature_c", ds.final_temperature_c, ds.name);
    reg_.Set("fleet.device.min_clock_scale", ds.min_clock_scale, ds.name);
  }
  summary.metrics = reg_.Snapshot();
  return summary;
}

}  // namespace hfleet

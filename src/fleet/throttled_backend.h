/// \file
/// A thermally-throttled decorator over any ExecutionBackend (docs/fleet.md).
///
/// The fleet layer simulates phones, and phones throttle: sustained NPU activity heats the
/// SoC and the DVFS governor sheds clocks. This decorator threads every admission and decode
/// step through a hexsim::ThermalState — the step's cost comes out of the wrapped backend at
/// nominal clocks and is dilated by the instantaneous 1/clock_scale, then the dilated busy
/// time feeds back into the thermal state. Idle gaps (the fleet's AdvanceTime) cool it.
///
/// Two invariants keep the simulation honest and deterministic:
///   * the clock scale is sampled ONCE per call, so a step's every cost component stretches
///     by the same factor (the batcher's lm_head-overlap accounting stays consistent) and
///     the result is a pure function of the busy/idle history;
///   * power scales down by the same factor time scales up, so a step's ENERGY is
///     clock-invariant — throttling trades latency, not joules (first-order DVFS at
///     constant voltage floor, matching the paper's §7.2.3 sustained-envelope reading).
#ifndef SRC_FLEET_THROTTLED_BACKEND_H_
#define SRC_FLEET_THROTTLED_BACKEND_H_

#include <span>

#include "src/hexsim/thermal.h"
#include "src/serving/execution_backend.h"

namespace hfleet {

class ThrottledBackend : public hserve::ExecutionBackend {
 public:
  // `enabled = false` makes the wrapper a transparent pass-through (clock scale pinned at
  // 1.0, no thermal accumulation) so every fleet device can share one code path.
  ThrottledBackend(hserve::ExecutionBackend& inner, const hexsim::ThermalParams& params,
                   bool enabled)
      : inner_(inner), thermal_(params), enabled_(enabled) {}

  const char* name() const override { return "throttled"; }

  double AdmitSlot(int slot, const hserve::ServeJob& job, int context_tokens,
                   int charged_prefill_tokens) override;
  hserve::StepOutcome Step(std::span<const int> slots,
                           std::span<const int> contexts) override;

  // Everything below is pure delegation — throttling changes time and power, not behavior.
  void ReleaseSlot(int slot) override { inner_.ReleaseSlot(slot); }
  void RetainKv(int slot, int job_id) override { inner_.RetainKv(slot, job_id); }
  void DropRetained(int job_id) override { inner_.DropRetained(job_id); }
  void PauseSlot(int slot, int job_id) override { inner_.PauseSlot(slot, job_id); }
  void ResumeSlot(int slot, int job_id, int context_tokens) override {
    inner_.ResumeSlot(slot, job_id, context_tokens);
  }
  bool CanResume(int job_id) override { return inner_.CanResume(job_id); }
  void ReleaseGroup(int prompt_group) override { inner_.ReleaseGroup(prompt_group); }
  bool CanAdmit(const hserve::ServeJob& job, int context_tokens) override {
    return inner_.CanAdmit(job, context_tokens);
  }
  int max_context() const override { return inner_.max_context(); }
  hkv::KvStats kv_stats() const override { return inner_.kv_stats(); }
  hquant::KvDtype kv_dtype() const override { return inner_.kv_dtype(); }
  void ExportMetrics(obs::Registry& registry) const override {
    inner_.ExportMetrics(registry);
  }

  // Idle wall time (the fleet simulator forwards every AdvanceTime gap here).
  void AddIdle(double seconds) {
    if (enabled_) {
      thermal_.AddIdle(seconds);
    }
  }

  double clock_scale() const { return enabled_ ? thermal_.clock_scale() : 1.0; }
  double temperature_c() const { return thermal_.temperature_c(); }
  double min_scale_reached() const { return enabled_ ? thermal_.min_scale_reached() : 1.0; }
  bool enabled() const { return enabled_; }

 private:
  hserve::ExecutionBackend& inner_;
  hexsim::ThermalState thermal_;
  bool enabled_;
};

}  // namespace hfleet

#endif  // SRC_FLEET_THROTTLED_BACKEND_H_

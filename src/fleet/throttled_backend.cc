#include "src/fleet/throttled_backend.h"

namespace hfleet {

namespace {

// Stretches every time component of `cost` by the same dilation factor. ddr_bytes is data
// moved, not time — it is clock-invariant.
void DilateCost(hrt::StepCost* cost, double k) {
  cost->linear_s *= k;
  cost->attention_s *= k;
  cost->misc_s *= k;
  cost->lm_head_s *= k;
  cost->comm_s *= k;
  cost->total_s *= k;
  cost->hvx_busy_s *= k;
  cost->hmx_busy_s *= k;
  cost->dma_busy_s *= k;
  cost->cpu_busy_s *= k;
  cost->gpu_busy_s *= k;
}

}  // namespace

double ThrottledBackend::AdmitSlot(int slot, const hserve::ServeJob& job, int context_tokens,
                                   int charged_prefill_tokens) {
  // Sample the clock once for the whole admission (chunked prefill included).
  const double k = 1.0 / clock_scale();
  const double seconds =
      inner_.AdmitSlot(slot, job, context_tokens, charged_prefill_tokens) * k;
  if (enabled_) {
    thermal_.AddBusy(seconds);
  }
  return seconds;
}

hserve::StepOutcome ThrottledBackend::Step(std::span<const int> slots,
                                           std::span<const int> contexts) {
  hserve::StepOutcome out = inner_.Step(slots, contexts);
  const double k = 1.0 / clock_scale();
  if (k != 1.0) {
    DilateCost(&out.cost, k);
    // Lower clock draws proportionally less power: the step's energy (watts * seconds) is
    // exactly what the nominal-clock step would have spent.
    out.watts /= k;
  }
  if (enabled_) {
    thermal_.AddBusy(out.cost.total_s);
  }
  return out;
}

}  // namespace hfleet

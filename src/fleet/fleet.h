/// \file
/// Fleet-scale serving simulation: many per-device serving engines on one simulated
/// timeline, a policy-pluggable router in front, and a fleet-level prefix registry
/// (docs/fleet.md; the paper's single-device stack, scaled out).
///
/// The pieces:
///   * FleetDeviceSpec / HeterogeneousFleet — a fleet is a list of device specs over the
///     evaluation profiles (V73/V75/V79), optionally derated "little" siblings
///     (hexsim::LittleVariant) and/or thermally throttled (ThrottledBackend over
///     hexsim::ThermalState);
///   * FleetRouter — admission routing over the live per-device load (queue depth, resident
///     KV blocks): round-robin, least-loaded, or session-affine (a dialog's every turn
///     lands on the device already holding its retained KV, so follow-ups fork instead of
///     re-prefilling the whole history);
///   * PrefixRegistry — per-device residency of registered shared system prompts. Each
///     device prefills a registered prefix AT MOST ONCE: the first request anchors it in
///     the device's paged KV (ContinuousBatcher::PinGroup) and later requests CoW-map it.
///     Anchors are refcounted by in-flight requests and evicted LRU under a per-device
///     capacity (never while referenced);
///   * FleetSimulator — the event loop. Every device advances its own ContinuousBatcher
///     clock; the simulator interleaves them deterministically (always step the
///     earliest-clock busy device; release an arrival only once no busy device is still
///     behind it), so the merged timeline — and every token checksum — is bit-identical
///     across reruns and HEXLLM_NUM_THREADS settings.
///
/// Everything here is simulation-clock deterministic: no wall time, no unseeded draws.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fleet/throttled_backend.h"
#include "src/frontend/serving_engine.h"
#include "src/frontend/traffic.h"
#include "src/hexsim/device_profile.h"
#include "src/hexsim/npu_device.h"
#include "src/hexsim/thermal.h"
#include "src/llm/weights.h"
#include "src/serving/continuous_batcher.h"

namespace hfleet {

// ---------------------------------------------------------------------------------------
// Router

enum class RouterPolicy : uint8_t {
  kRoundRobin,     // rotate through devices, blind to load and sessions
  kLeastLoaded,    // fewest in-flight requests, ties by resident KV blocks then index
  kSessionAffine,  // least-loaded for new work, but a session's turns pin to one device
};

const char* RouterPolicyName(RouterPolicy policy);

// Live load of one device, sampled by the simulator at each routing decision.
struct DeviceLoad {
  int inflight = 0;          // routed requests not yet completed (queue + batch)
  int64_t kv_blocks = 0;     // physical KV blocks resident on the device
};

// Pure routing policy over per-device loads. Deterministic: ties always break toward the
// lower device index, and round-robin state is a plain counter.
class FleetRouter {
 public:
  FleetRouter(RouterPolicy policy, int devices);

  // Picks the device for `req`. Precedence: an existing session pin (session-affine
  // policy), then Request::device_hint, then the policy. Under the session-affine policy
  // the chosen device is recorded as the pin for req.session.
  int Route(const hfront::Request& req, const std::vector<DeviceLoad>& loads);

  void Reset();

  RouterPolicy policy() const { return policy_; }

 private:
  int LeastLoaded(const std::vector<DeviceLoad>& loads) const;

  RouterPolicy policy_;
  int devices_;
  int rr_next_ = 0;
  std::map<int, int> session_device_;  // session id -> pinned device (affine policy)
};

// ---------------------------------------------------------------------------------------
// Prefix registry

// Fleet-level bookkeeping of which registered shared prefixes are resident (anchored) on
// which device. The simulator Acquires at routing time and Releases at request completion;
// the registry only *decides* — anchoring/eviction is executed against the device's
// batcher (PinGroup/EvictGroup) by the caller.
class PrefixRegistry {
 public:
  // capacity_per_device <= 0: unbounded residency (prefixes never evict).
  PrefixRegistry(int devices, int capacity_per_device);

  struct Acquired {
    bool hit = false;          // prefix already resident on the device (no prefill needed)
    int evicted_prefix = -1;   // prefix the device must EvictGroup to make room, -1 = none
  };

  // References `prefix_id` on `device`, admitting it into residency on a miss. Eviction
  // picks the least-recently-used resident prefix with a zero refcount; if every resident
  // prefix is referenced by an in-flight request, the device over-subscribes instead (an
  // eviction would break live CoW sharing).
  Acquired Acquire(int device, int prefix_id);

  // Drops one reference (request completed). The prefix STAYS resident at refcount 0 —
  // that persistence is the whole point — until capacity pressure evicts it.
  void Release(int device, int prefix_id);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

  // Introspection for tests/metrics.
  int resident_count(int device) const;
  bool resident(int device, int prefix_id) const;
  int refcount(int device, int prefix_id) const;

 private:
  struct Entry {
    int refs = 0;
    int64_t last_use = 0;
  };

  int capacity_;
  int64_t use_seq_ = 0;
  std::vector<std::map<int, Entry>> per_device_;  // prefix id -> entry
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

// ---------------------------------------------------------------------------------------
// Fleet simulator

struct FleetDeviceSpec {
  hexsim::NpuArch arch = hexsim::NpuArch::kV75;
  bool little = false;   // derated efficiency-binned sibling (hexsim::LittleVariant)
  bool thermal = false;  // thermally throttled (ThrottledBackend accumulates heat)
  hexsim::ThermalParams thermal_params;
};

// A representative heterogeneous mix: cycles V75 / V79 / V73 flagships, a little V75, a
// throttled V79 and a throttled little V73, repeating to `devices` entries.
std::vector<FleetDeviceSpec> HeterogeneousFleet(int devices);

struct FleetOptions {
  std::vector<FleetDeviceSpec> devices;  // one entry per simulated phone
  RouterPolicy policy = RouterPolicy::kSessionAffine;
  hserve::ServeOptions serve;            // per-device batcher options
  int max_context = 768;                 // per-device functional backend context cap
  int64_t kv_pool_blocks = 0;            // per-device KV pool (0 = sized from max_batch)
  // Per-device KV storage dtype (docs/kv_quantization.md). Quantized modes shrink every
  // device's resident-KV bytes by the same ratio as a single device, so the fleet's
  // kv_peak_physical_bytes headline scales down while routing/token streams are governed by
  // the same block arithmetic. F16 default is bit-identical to the pre-quant fleet.
  hquant::KvDtype kv_dtype = hquant::KvDtype::kF16;
  int kv_quant_group = hquant::kGroupSize;
  int prefix_capacity_per_device = 0;    // PrefixRegistry LRU capacity (<= 0: unbounded)
  // Session KV retention is derived from `policy`, not a knob: only the session-affine
  // router guarantees every turn lands on the retaining device, so only it forks follow-up
  // turns from retained KV. The other policies re-prefill the accumulated dialog each turn
  // — exactly the cost the affine router exists to avoid.
};

struct FleetDeviceSummary {
  std::string name;                  // e.g. "d2:V73-little"
  FleetDeviceSpec spec;
  int64_t requests = 0;              // requests routed to this device
  double final_temperature_c = 0.0;  // thermal devices: temperature at run end
  double min_clock_scale = 1.0;      // lowest clock scale reached (1.0 = never throttled)
  hserve::ScheduleResult schedule;   // the device batcher's aggregate result
};

struct FleetSummary {
  // Non-empty when any device rejected a submission or poisoned its run; per-request stats
  // then cover whatever completed.
  std::string error;
  std::vector<hfront::RequestStats> requests;  // aligned with the submitted trace order
  std::vector<int> request_device;             // routed device per request (-1 = never routed)
  std::vector<FleetDeviceSummary> devices;

  double makespan_s = 0.0;        // max per-device clock at drain
  double energy_j = 0.0;          // summed over devices
  double energy_per_request_j = 0.0;
  int64_t decoded_tokens = 0;
  int64_t slo_met = 0;
  int64_t slo_total = 0;
  double goodput_tps = 0.0;       // decoded tokens of SLO-meeting requests / makespan
  int64_t prefix_hits = 0;
  int64_t prefix_misses = 0;
  int64_t prefix_evictions = 0;
  int64_t kv_peak_physical_bytes = 0;  // summed per-device paged-pool peaks
  // Max over devices of decoded tokens, divided by the fleet mean (1.0 = perfectly even;
  // the round-robin-vs-least-loaded headline number).
  double load_imbalance = 0.0;
  // fleet.* counters/gauges/histograms plus per-device labeled series
  // (docs/metrics_schema.md).
  obs::MetricsSnapshot metrics;
};

// Instantiates one FunctionalBackend serving stack per device spec and drives them all on
// one deterministic simulated timeline. The weights (toy configs — every device actually
// decodes) are shared read-only across devices; `weights` must outlive the simulator.
class FleetSimulator {
 public:
  FleetSimulator(const FleetOptions& options, const hllm::ModelWeights& weights);

  // Runs the trace to completion. Request ids must be unique, session turns contiguous
  // from 0 (same contract as ServingEngine::Run). Each Run builds the fleet's devices
  // fresh, so repeated Runs are independent and bit-identical for identical traces.
  FleetSummary Run(const std::vector<hfront::Request>& trace);

  int device_count() const { return static_cast<int>(options_.devices.size()); }

 private:
  struct Device {
    std::string name;
    FleetDeviceSpec spec;
    hexsim::DeviceProfile profile;  // stable storage; npu holds a reference
    std::unique_ptr<hexsim::NpuDevice> npu;
    std::unique_ptr<hserve::FunctionalBackend> functional;
    std::unique_ptr<ThrottledBackend> backend;
    std::unique_ptr<hserve::ContinuousBatcher> batcher;
    int inflight = 0;
    int64_t requests = 0;
  };

  struct SessionState {
    int last_job_id = -1;  // completed turn whose KV is retained (affine policy)
    int kv_len = 0;        // accumulated dialog length (prompt + decode over turns)
  };

  void BuildDevices();
  std::vector<DeviceLoad> SampleLoads() const;
  // Routes and submits trace_[index], whose arrival time is `time_s` on the global
  // timeline. An idle target device fast-forwards (and cools) to the arrival first.
  void SubmitRouted(int index, double time_s, FleetSummary& summary);
  void ProcessEvents(int device, const hserve::StepEvents& ev, FleetSummary& summary);

  FleetOptions options_;
  const hllm::ModelWeights& weights_;
  FleetRouter router_;
  std::unique_ptr<PrefixRegistry> registry_;
  std::vector<std::unique_ptr<Device>> devices_;

  // --- per-run state ---
  std::vector<hfront::Request> trace_;
  std::map<int, int> by_id_;
  std::map<int, int> next_turn_;
  std::map<int, SessionState> sessions_;
  std::set<std::pair<double, int>> arrivals_;  // (absolute arrival, trace_ index)
  obs::Registry reg_;
  obs::Histogram* ttft_hist_ = nullptr;
  obs::Histogram* tpot_hist_ = nullptr;
};

}  // namespace hfleet

#endif  // SRC_FLEET_FLEET_H_

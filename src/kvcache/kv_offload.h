/// \file
/// Tiered KV offload: block-granular demotion to / promotion from a simulated flash tier
/// below DRAM (docs/long_context.md).
///
/// The DRAM budget becomes a *resident* budget instead of a hard capacity: when the live
/// block count exceeds it, the engine demotes least-recently-touched blocks — their payload
/// moves to the flash store, the slab copy is NaN-poisoned, and the BlockPool entry is
/// marked non-resident. An attention or append access to a demoted block faults it back in
/// (bit-identical payload restore) and charges the flash read; faults issued ahead of time
/// through the async prefetch queue overlap with NPU compute the same way the batcher
/// overlaps the CPU lm_head with the next NPU step.
///
/// Eviction policy is pluggable (KvEvictionPolicy); the default LruEvictionPolicy picks the
/// smallest per-block last-touch stamp. Blocks with refcount > 1 — CoW-shared forks, pinned
/// prefix anchors, retained handles — are never candidates, and neither are blocks already
/// demoted.
///
/// Timing model: one flash op per block (hexsim::FlashTier). The read channel serializes:
/// each promotion starts when the channel frees up and completes one read-cost later.
/// Demand faults stall the step for the remaining time; prefetches issued earlier complete
/// for free once AdvanceClock has moved the engine clock past their ready time. Demotion
/// writes are write-behind (charged to the tier, not the step's critical path) but do
/// accumulate the flash wear counters.
///
/// Thread-compatible, not thread-safe: all calls happen on the serving bookkeeping thread,
/// before the parallel attention region of a step reads KV in place
/// (docs/threading_model.md).
#ifndef SRC_KVCACHE_KV_OFFLOAD_H_
#define SRC_KVCACHE_KV_OFFLOAD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "src/hexsim/flash.h"
#include "src/kvcache/block_pool.h"
#include "src/obs/metrics.h"

namespace hkv {

struct KvOffloadOptions {
  // Live blocks allowed to stay DRAM-resident. <= 0 disables offload entirely (the pool's
  // own capacity is the only limit, exactly the pre-offload behavior).
  int64_t resident_block_budget = 0;
  hexsim::FlashSpec flash;
};

struct KvOffloadStats {
  int64_t demotions = 0;
  int64_t promotions = 0;      // total faults back into DRAM (demand + prefetched)
  int64_t demand_faults = 0;   // promotions that were not prefetched ahead of the access
  int64_t prefetch_hits = 0;   // promotions whose read had fully completed before the access
  double stall_seconds = 0.0;  // step time spent waiting on the flash read channel
  // Flash-tier roll-ups (mirrors hexsim::FlashStats for export).
  int64_t flash_read_bytes = 0;
  int64_t flash_write_bytes = 0;
  double flash_read_seconds = 0.0;
  double flash_write_seconds = 0.0;
  int64_t wear_write_ops = 0;
};

// Publishes the offload stats under the `kv.offload.` prefix (docs/metrics_schema.md).
// Callers gate this on offload being enabled so non-offload runs keep byte-identical
// metric snapshots.
void ExportKvOffloadStats(const KvOffloadStats& stats, obs::Registry& registry);

// Pluggable victim selection. `candidates` holds live, resident, exclusively-owned block
// ids (the engine pre-filters pinned/CoW-shared/demoted blocks). Returns an index into
// `candidates`, or -1 to refuse eviction.
class KvEvictionPolicy {
 public:
  virtual ~KvEvictionPolicy() = default;
  virtual int PickVictim(const BlockPool& pool, std::span<const int> candidates) = 0;
};

// Default policy: least-recently-touched first (per-block last-touch stamp, ties broken by
// the lowest block id for determinism).
class LruEvictionPolicy : public KvEvictionPolicy {
 public:
  int PickVictim(const BlockPool& pool, std::span<const int> candidates) override;
};

class KvOffloadEngine {
 public:
  // `storage` is the owning cache's block slab (block b's payload lives at
  // storage + b * block_bytes); nullptr runs the engine accounting-only (no payload moves,
  // no poisoning) for storage-free accountants like the analytic serving backend.
  KvOffloadEngine(BlockPool& pool, uint8_t* storage, int64_t block_bytes,
                  const KvOffloadOptions& opts,
                  std::unique_ptr<KvEvictionPolicy> policy = nullptr);

  bool enabled() const { return opts_.resident_block_budget > 0; }
  const KvOffloadOptions& options() const { return opts_; }

  // Starts a new recency epoch (one serving step = one epoch).
  void BeginStep() { ++step_; }
  int64_t step() const { return step_; }

  // Stamps a block as touched this epoch (append or attention staging).
  void Touch(int block) { pool_.Touch(block, step_); }

  // Demotes eviction victims until resident_blocks() fits the budget (or no candidate is
  // left). Returns the number of blocks demoted. Write-behind: the flash writes are charged
  // to the tier and the wear counter, not to the caller's critical path.
  int64_t EnforceBudget();

  // Queues promotions for any non-resident blocks in `blocks` on the serialized flash read
  // channel without waiting. An EnsureResident after the channel has caught up (see
  // AdvanceClock) is then a free prefetch hit.
  void PrefetchAsync(std::span<const int> blocks);

  // Faults every block in `blocks` resident, restoring payloads bit-identically from the
  // flash store. Returns the stall seconds the caller's step must absorb: zero when all
  // blocks were resident or their prefetched reads already completed, otherwise the
  // remaining serialized read time. Also stamps the blocks' recency.
  double EnsureResident(std::span<const int> blocks);

  // Single-block convenience for the append/CoW write path.
  double EnsureResidentBlock(int block);

  // Advances the engine clock past `seconds` of compute the flash channel overlapped with
  // (one decode step's NPU time).
  void AdvanceClock(double seconds);

  // The cache dropped the last reference to `block`: forget its flash copy and any pending
  // promotion.
  void NoteFreed(int block);

  const KvOffloadStats& stats() const { return stats_; }
  const hexsim::FlashTier& flash() const { return flash_; }
  // Test hook: true when `block`'s payload currently lives in the flash store.
  bool HasFlashCopy(int block) const { return flash_store_.count(block) != 0; }

 private:
  // Promotes one non-resident block: schedules (or reuses the pending) read, restores the
  // payload, flips residency. Returns the block's ready time on the engine clock.
  double Promote(int block, bool demand);

  BlockPool& pool_;
  uint8_t* storage_;
  int64_t block_bytes_;
  KvOffloadOptions opts_;
  std::unique_ptr<KvEvictionPolicy> policy_;
  hexsim::FlashTier flash_;
  KvOffloadStats stats_;

  int64_t step_ = 0;
  double now_ = 0.0;           // engine clock (seconds of simulated serving time)
  double read_free_at_ = 0.0;  // when the serialized flash read channel frees up

  // Demoted payloads, keyed by block id. std::map keeps eviction/restore order
  // deterministic for the bit-identity gates.
  std::map<int, std::vector<uint8_t>> flash_store_;
  std::map<int, double> pending_ready_;  // queued promotions -> channel completion time
  std::vector<int> candidates_scratch_;
};

}  // namespace hkv

#endif  // SRC_KVCACHE_KV_OFFLOAD_H_

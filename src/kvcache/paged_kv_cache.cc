#include "src/kvcache/paged_kv_cache.h"

#include <cstring>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hkv {

namespace {

// FP16 quiet NaN: any arithmetic touching a poisoned (freed) KV row propagates NaN into the
// attention output, so use-after-free fails loudly in tests.
constexpr uint16_t kPoisonBits = 0x7E00;

int64_t DefaultPoolBlocks(int num_seqs, int max_context, int block_tokens) {
  const int64_t per_seq = hexllm::CeilDiv(max_context, block_tokens);
  // Dense worst case (no sharing) plus slack: one CoW tail split per sequence and a little
  // headroom for retained prompt/stem handles that outlive their slot.
  return num_seqs * per_seq + num_seqs + 4;
}

}  // namespace

PagedKvCache::PagedKvCache(int layers, int kv_dim, int num_seqs, int max_context,
                           int block_tokens, int64_t num_blocks)
    : layers_(layers),
      kv_dim_(kv_dim),
      max_context_(max_context),
      num_blocks_(num_blocks > 0 ? num_blocks
                                 : DefaultPoolBlocks(num_seqs, max_context, block_tokens)),
      block_elems_(static_cast<int64_t>(layers) * 2 * block_tokens * kv_dim),
      mgr_(block_tokens, num_blocks_,
           /*bytes_per_block=*/static_cast<int64_t>(layers) * 2 * block_tokens * kv_dim * 2) {
  HEXLLM_CHECK(layers_ >= 1 && kv_dim_ >= 1 && max_context_ >= 1);
  storage_.resize(num_blocks_ * block_elems_);
}

int64_t PagedKvCache::RowOffset(int layer, bool value, int pos_in_block) const {
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  return ((static_cast<int64_t>(layer) * 2 + (value ? 1 : 0)) * mgr_.block_tokens() +
          pos_in_block) *
         kv_dim_;
}

hexllm::F16* PagedKvCache::MutableRow(int layer, int seq, int pos, bool value) {
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const KvBlockManager::WriteAccess wa = mgr_.EnsureWritable(seq, pos);
  if (wa.copied_from >= 0) {
    // CoW split: the new private block inherits every layer's rows of the shared block.
    std::memcpy(BlockData(wa.block), BlockData(wa.copied_from),
                static_cast<size_t>(block_elems_) * 2);
  }
  return BlockData(wa.block) + RowOffset(layer, value, pos % mgr_.block_tokens());
}

const hexllm::F16* PagedKvCache::Row(int layer, int seq, int pos, bool value) const {
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const int idx = pos / mgr_.block_tokens();
  const int block = mgr_.block_at(seq, idx);
  return storage_.data() + static_cast<int64_t>(block) * block_elems_ +
         RowOffset(layer, value, pos % mgr_.block_tokens());
}

int PagedKvCache::blocks_per_seq_capacity() const {
  // Dense worst case plus the CoW-split slack a forked sequence can accrue.
  return static_cast<int>(hexllm::CeilDiv(max_context_, mgr_.block_tokens())) + 1;
}

void PagedKvCache::ReserveSeqs(int num_seqs) {
  mgr_.Reserve(num_seqs, blocks_per_seq_capacity());
  freed_scratch_.reserve(static_cast<size_t>(blocks_per_seq_capacity()));
}

int PagedKvCache::FillBlockPointers(int layer, int seq, int positions,
                                    const hexllm::F16** k_bases,
                                    const hexllm::F16** v_bases) const {
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  HEXLLM_DCHECK(positions >= 0 && positions <= max_context_);
  const int bt = mgr_.block_tokens();
  const int n = static_cast<int>(hexllm::CeilDiv(positions, bt));
  const int64_t k_off = RowOffset(layer, false, 0);
  const int64_t v_off = RowOffset(layer, true, 0);
  for (int i = 0; i < n; ++i) {
    const hexllm::F16* base =
        storage_.data() + static_cast<int64_t>(mgr_.block_at(seq, i)) * block_elems_;
    k_bases[i] = base + k_off;
    v_bases[i] = base + v_off;
  }
  return n;
}

void PagedKvCache::Advance(int seq) {
  HEXLLM_CHECK(mgr_.length(seq) < max_context_);
  mgr_.Advance(seq);
}

void PagedKvCache::ResetSeq(int seq) {
  freed_scratch_.clear();
  mgr_.Reset(seq, &freed_scratch_);
  PoisonFreed();
}

void PagedKvCache::ShareFromHandle(int64_t handle, int dst_seq, int len) {
  mgr_.ShareFromHandle(handle, dst_seq, len);
}

void PagedKvCache::DropHandle(int64_t handle) {
  freed_scratch_.clear();
  mgr_.DropHandle(handle, &freed_scratch_);
  PoisonFreed();
}

void PagedKvCache::PoisonFreed() {
#ifndef NDEBUG
  for (const int b : freed_scratch_) {
    hexllm::F16* data = BlockData(b);
    for (int64_t i = 0; i < block_elems_; ++i) {
      data[i] = hexllm::F16::FromBits(kPoisonBits);
    }
  }
#endif
  freed_scratch_.clear();
}

}  // namespace hkv

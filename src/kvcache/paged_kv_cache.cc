#include "src/kvcache/paged_kv_cache.h"

#include <cmath>
#include <cstring>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hkv {

namespace {

// FP16 quiet NaN: any arithmetic touching a poisoned (freed) KV row propagates NaN into the
// attention output, so use-after-free fails loudly in tests.
constexpr uint16_t kPoisonBits = 0x7E00;

int64_t DefaultPoolBlocks(int num_seqs, int max_context, int block_tokens) {
  const int64_t per_seq = hexllm::CeilDiv(max_context, block_tokens);
  // Dense worst case (no sharing) plus slack: one CoW tail split per sequence and a little
  // headroom for retained prompt/stem handles that outlive their slot.
  return num_seqs * per_seq + num_seqs + 4;
}

}  // namespace

PagedKvCache::PagedKvCache(int layers, int kv_dim, int num_seqs, int max_context,
                           int block_tokens, int64_t num_blocks, hquant::KvDtype dtype,
                           int quant_group)
    : layers_(layers),
      kv_dim_(kv_dim),
      max_context_(max_context),
      dtype_(dtype),
      quant_group_(quant_group),
      num_blocks_(num_blocks > 0 ? num_blocks
                                 : DefaultPoolBlocks(num_seqs, max_context, block_tokens)),
      block_elems_(static_cast<int64_t>(layers) * 2 * block_tokens * kv_dim),
      row_bytes_(hquant::KvRowBytes(dtype, kv_dim, quant_group)),
      block_bytes_(static_cast<int64_t>(layers) * 2 * block_tokens * row_bytes_),
      mgr_(block_tokens, num_blocks_, /*bytes_per_block=*/block_bytes_) {
  HEXLLM_CHECK(layers_ >= 1 && kv_dim_ >= 1 && max_context_ >= 1);
  if (dtype_ == hquant::KvDtype::kF16) {
    storage_.resize(num_blocks_ * block_elems_);
  } else {
    HEXLLM_CHECK(quant_group_ >= 2 && quant_group_ % 2 == 0);
    HEXLLM_CHECK(kv_dim_ % quant_group_ == 0);
    qstorage_.resize(num_blocks_ * block_bytes_);
    quant_src_scratch_.resize(static_cast<size_t>(quant_group_));
    quant_rt_scratch_.resize(static_cast<size_t>(quant_group_));
  }
}

int64_t PagedKvCache::RowOffset(int layer, bool value, int pos_in_block) const {
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  return ((static_cast<int64_t>(layer) * 2 + (value ? 1 : 0)) * mgr_.block_tokens() +
          pos_in_block) *
         kv_dim_;
}

int64_t PagedKvCache::QuantRowOffset(int layer, bool value, int pos_in_block) const {
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  return ((static_cast<int64_t>(layer) * 2 + (value ? 1 : 0)) * mgr_.block_tokens() +
          pos_in_block) *
         row_bytes_;
}

void PagedKvCache::FaultForWrite(const KvBlockManager::WriteAccess& wa) {
  if (offload_ == nullptr || !offload_->enabled()) {
    return;
  }
  // The CoW source must be readable (its rows are about to be copied) and the destination
  // writable; both faults charge the flash tier like any other access.
  if (wa.copied_from >= 0) {
    offload_->EnsureResidentBlock(wa.copied_from);
  }
  offload_->EnsureResidentBlock(wa.block);
}

hexllm::F16* PagedKvCache::MutableRow(int layer, int seq, int pos, bool value) {
  HEXLLM_DCHECK(dtype_ == hquant::KvDtype::kF16);
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const KvBlockManager::WriteAccess wa = mgr_.EnsureWritable(seq, pos);
  FaultForWrite(wa);
  if (wa.copied_from >= 0) {
    // CoW split: the new private block inherits every layer's rows of the shared block.
    std::memcpy(BlockData(wa.block), BlockData(wa.copied_from),
                static_cast<size_t>(block_elems_) * 2);
  }
  return BlockData(wa.block) + RowOffset(layer, value, pos % mgr_.block_tokens());
}

const hexllm::F16* PagedKvCache::Row(int layer, int seq, int pos, bool value) const {
  HEXLLM_DCHECK(dtype_ == hquant::KvDtype::kF16);
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const int idx = pos / mgr_.block_tokens();
  const int block = mgr_.block_at(seq, idx);
  return storage_.data() + static_cast<int64_t>(block) * block_elems_ +
         RowOffset(layer, value, pos % mgr_.block_tokens());
}

void PagedKvCache::WriteRow(int layer, int seq, int pos, bool value, const hexllm::F16* src) {
  if (dtype_ == hquant::KvDtype::kF16) {
    // Legacy path, byte-identical: CoW-aware mutable row + memcpy.
    std::memcpy(MutableRow(layer, seq, pos, value), src,
                static_cast<size_t>(kv_dim_) * 2);
    return;
  }
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const KvBlockManager::WriteAccess wa = mgr_.EnsureWritable(seq, pos);
  FaultForWrite(wa);
  if (wa.copied_from >= 0) {
    std::memcpy(QuantBlockData(wa.block), QuantBlockData(wa.copied_from),
                static_cast<size_t>(block_bytes_));
  }
  QuantizeRowInto(src, QuantBlockData(wa.block) +
                           QuantRowOffset(layer, value, pos % mgr_.block_tokens()));
}

void PagedKvCache::ReadRow(int layer, int seq, int pos, bool value, hexllm::F16* dst) const {
  if (dtype_ == hquant::KvDtype::kF16) {
    std::memcpy(dst, Row(layer, seq, pos, value), static_cast<size_t>(kv_dim_) * 2);
    return;
  }
  HEXLLM_DCHECK(pos >= 0 && pos < max_context_);
  const int idx = pos / mgr_.block_tokens();
  const int block = mgr_.block_at(seq, idx);
  DequantRowInto(qstorage_.data() + static_cast<int64_t>(block) * block_bytes_ +
                     QuantRowOffset(layer, value, pos % mgr_.block_tokens()),
                 dst);
}

void PagedKvCache::QuantizeRowInto(const hexllm::F16* src, uint8_t* row) {
  const int groups = kv_dim_ / quant_group_;
  const int64_t payload_bytes = hquant::KvPayloadBytes(dtype_, kv_dim_);
  const int64_t group_payload = hquant::KvPayloadBytes(dtype_, quant_group_);
  float* x = quant_src_scratch_.data();
  hexllm::F16* rt = quant_rt_scratch_.data();
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < quant_group_; ++i) {
      x[i] = src[g * quant_group_ + i].ToFloat();
    }
    uint8_t* payload = row + g * group_payload;
    hexllm::F16 d;
    if (dtype_ == hquant::KvDtype::kInt4) {
      d = hquant::KvQuantizeGroupInt4(x, quant_group_, payload);
      hquant::KvDequantGroupInt4(payload, d.ToFloat(), quant_group_, rt);
    } else {
      d = hquant::KvQuantizeGroupInt8(x, quant_group_, reinterpret_cast<int8_t*>(payload));
      hquant::KvDequantGroupInt8(reinterpret_cast<const int8_t*>(payload), d.ToFloat(),
                                 quant_group_, rt);
    }
    const uint16_t d_bits = d.bits();
    std::memcpy(row + payload_bytes + static_cast<int64_t>(g) * 2, &d_bits, 2);
    for (int i = 0; i < quant_group_; ++i) {
      const double err = std::fabs(static_cast<double>(rt[i].ToFloat()) - x[i]);
      quant_stats_.sum_abs_err += err;
      quant_stats_.sum_sq_err += err * err;
      quant_stats_.sum_sq_ref += static_cast<double>(x[i]) * x[i];
      if (err > quant_stats_.max_abs_err) {
        quant_stats_.max_abs_err = err;
      }
    }
  }
  quant_stats_.rows += 1;
  quant_stats_.elems += kv_dim_;
  quant_stats_.quant_bytes += row_bytes_;
  quant_stats_.f16_bytes += static_cast<int64_t>(kv_dim_) * 2;
}

void PagedKvCache::DequantRowInto(const uint8_t* row, hexllm::F16* dst) const {
  const int groups = kv_dim_ / quant_group_;
  const int64_t payload_bytes = hquant::KvPayloadBytes(dtype_, kv_dim_);
  const int64_t group_payload = hquant::KvPayloadBytes(dtype_, quant_group_);
  for (int g = 0; g < groups; ++g) {
    uint16_t d_bits;
    std::memcpy(&d_bits, row + payload_bytes + static_cast<int64_t>(g) * 2, 2);
    const float d = hexllm::F16BitsToF32(d_bits);
    const uint8_t* payload = row + g * group_payload;
    if (dtype_ == hquant::KvDtype::kInt4) {
      hquant::KvDequantGroupInt4(payload, d, quant_group_, dst + g * quant_group_);
    } else {
      hquant::KvDequantGroupInt8(reinterpret_cast<const int8_t*>(payload), d, quant_group_,
                                 dst + g * quant_group_);
    }
  }
}

int PagedKvCache::blocks_per_seq_capacity() const {
  // Dense worst case plus the CoW-split slack a forked sequence can accrue.
  return static_cast<int>(hexllm::CeilDiv(max_context_, mgr_.block_tokens())) + 1;
}

void PagedKvCache::ReserveSeqs(int num_seqs) {
  mgr_.Reserve(num_seqs, blocks_per_seq_capacity());
  freed_scratch_.reserve(static_cast<size_t>(blocks_per_seq_capacity()));
}

int PagedKvCache::FillBlockPointers(int layer, int seq, int positions,
                                    const hexllm::F16** k_bases,
                                    const hexllm::F16** v_bases) const {
  HEXLLM_DCHECK(dtype_ == hquant::KvDtype::kF16);
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  HEXLLM_DCHECK(positions >= 0 && positions <= max_context_);
  const int bt = mgr_.block_tokens();
  const int n = static_cast<int>(hexllm::CeilDiv(positions, bt));
  const int64_t k_off = RowOffset(layer, false, 0);
  const int64_t v_off = RowOffset(layer, true, 0);
  for (int i = 0; i < n; ++i) {
    const int block = mgr_.block_at(seq, i);
    // Demoted blocks may legitimately appear here: a windowed kernel never stages the
    // masked interior chunks, and every staged block was faulted resident by
    // EnsureResidentTableBlocks before this parallel region (docs/long_context.md).
    const hexllm::F16* base = storage_.data() + static_cast<int64_t>(block) * block_elems_;
    k_bases[i] = base + k_off;
    v_bases[i] = base + v_off;
  }
  return n;
}

int PagedKvCache::FillQuantBlockPointers(int layer, int seq, int positions,
                                         const uint8_t** k_bases,
                                         const uint8_t** v_bases) const {
  HEXLLM_DCHECK(dtype_ != hquant::KvDtype::kF16);
  HEXLLM_DCHECK(layer >= 0 && layer < layers_);
  HEXLLM_DCHECK(positions >= 0 && positions <= max_context_);
  const int bt = mgr_.block_tokens();
  const int n = static_cast<int>(hexllm::CeilDiv(positions, bt));
  const int64_t k_off = QuantRowOffset(layer, false, 0);
  const int64_t v_off = QuantRowOffset(layer, true, 0);
  for (int i = 0; i < n; ++i) {
    const uint8_t* base =
        qstorage_.data() + static_cast<int64_t>(mgr_.block_at(seq, i)) * block_bytes_;
    k_bases[i] = base + k_off;
    v_bases[i] = base + v_off;
  }
  return n;
}

void PagedKvCache::Advance(int seq) {
  HEXLLM_CHECK(mgr_.length(seq) < max_context_);
  mgr_.Advance(seq);
}

void PagedKvCache::ResetSeq(int seq) {
  freed_scratch_.clear();
  mgr_.Reset(seq, &freed_scratch_);
  PoisonFreed();
}

int64_t PagedKvCache::TruncateSeq(int seq, int new_len) {
  [[maybe_unused]] const int old_len = mgr_.length(seq);
  freed_scratch_.clear();
  const int64_t dropped = mgr_.Truncate(seq, new_len, &freed_scratch_);
  PoisonFreed();
#ifndef NDEBUG
  // Whole dropped blocks were just poisoned, but a speculative rollback usually lands
  // mid-block: the KEPT partial tail block still holds the rejected rows [new_len, old_len).
  // Poison them too (when the block is exclusively owned — a shared tail belongs to other
  // sequences whose rows are still live) so a stale re-read fails as loudly as a freed
  // block instead of silently returning rolled-back KV.
  const int bt = mgr_.block_tokens();
  if (new_len > 0 && new_len < old_len && new_len % bt != 0) {
    const int idx = new_len / bt;
    const int block = mgr_.block_at(seq, idx);
    if (mgr_.pool().ref_count(block) == 1) {
      for (int p = new_len % bt; p < bt; ++p) {
        for (int l = 0; l < layers_; ++l) {
          for (int value = 0; value < 2; ++value) {
            if (dtype_ == hquant::KvDtype::kF16) {
              hexllm::F16* row = BlockData(block) + RowOffset(l, value != 0, p);
              for (int i = 0; i < kv_dim_; ++i) {
                row[i] = hexllm::F16::FromBits(kPoisonBits);
              }
            } else {
              std::memset(QuantBlockData(block) + QuantRowOffset(l, value != 0, p), 0xFF,
                          static_cast<size_t>(row_bytes_));
            }
          }
        }
      }
    }
  }
#endif
  return dropped;
}

void PagedKvCache::ConfigureOffload(const KvOffloadOptions& opts,
                                    std::unique_ptr<KvEvictionPolicy> policy) {
  HEXLLM_CHECK_MSG(mgr_.stats().physical_blocks == 0,
                   "ConfigureOffload requires an empty cache");
  uint8_t* storage = dtype_ == hquant::KvDtype::kF16
                         ? reinterpret_cast<uint8_t*>(storage_.data())
                         : qstorage_.data();
  offload_ = std::make_unique<KvOffloadEngine>(mgr_.pool(), storage, StorageBlockBytes(),
                                               opts, std::move(policy));
}

double PagedKvCache::EnsureResidentTableBlocks(int seq, std::span<const int> table_indices) {
  if (offload_ == nullptr || !offload_->enabled()) {
    return 0.0;
  }
  resident_scratch_.clear();
  const int64_t table = mgr_.table_blocks(seq);
  for (const int idx : table_indices) {
    if (idx >= table) {
      continue;  // not allocated yet — the step's first write mints it resident
    }
    resident_scratch_.push_back(mgr_.block_at(seq, idx));
  }
  return offload_->EnsureResident(resident_scratch_);
}

void PagedKvCache::PrefetchTableBlocks(int seq, std::span<const int> table_indices) {
  if (offload_ == nullptr || !offload_->enabled()) {
    return;
  }
  resident_scratch_.clear();
  const int64_t table = mgr_.table_blocks(seq);
  for (const int idx : table_indices) {
    if (idx >= table) {
      continue;
    }
    resident_scratch_.push_back(mgr_.block_at(seq, idx));
  }
  offload_->PrefetchAsync(resident_scratch_);
}

void PagedKvCache::ShareFromHandle(int64_t handle, int dst_seq, int len) {
  mgr_.ShareFromHandle(handle, dst_seq, len);
}

void PagedKvCache::DropHandle(int64_t handle) {
  freed_scratch_.clear();
  mgr_.DropHandle(handle, &freed_scratch_);
  PoisonFreed();
}

void PagedKvCache::PoisonFreed() {
  if (offload_ != nullptr) {
    // A freed block's flash copy (or queued promotion) is dead weight — drop it so the id
    // can be reused tier-clean.
    for (const int b : freed_scratch_) {
      offload_->NoteFreed(b);
    }
  }
#ifndef NDEBUG
  for (const int b : freed_scratch_) {
    if (dtype_ == hquant::KvDtype::kF16) {
      hexllm::F16* data = BlockData(b);
      for (int64_t i = 0; i < block_elems_; ++i) {
        data[i] = hexllm::F16::FromBits(kPoisonBits);
      }
    } else {
      // 0xFF bytes make every scale an F16 NaN (0xFFFF), so any dequant of a freed block
      // floods attention with NaN just like the F16 poison.
      std::memset(QuantBlockData(b), 0xFF, static_cast<size_t>(block_bytes_));
    }
  }
#endif
  freed_scratch_.clear();
}

void ExportKvQuantStats(hquant::KvDtype dtype, const KvQuantStats& stats,
                        obs::Registry& registry) {
  registry.Set("kv.dtype", static_cast<double>(hquant::KvDtypeBits(dtype)),
               hquant::KvDtypeName(dtype));
  registry.Set("kv.quant.rows", static_cast<double>(stats.rows));
  registry.Set("kv.quant.bytes_saved", static_cast<double>(stats.bytes_saved()));
  registry.Set("kv.quant.max_abs_err", stats.max_abs_err);
  registry.Set("kv.quant.mean_abs_err", stats.mean_abs_err());
  registry.Set("kv.quant.rel_rms", stats.rel_rms());
}

}  // namespace hkv

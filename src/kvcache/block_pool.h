/// \file
/// Fixed-size-block pool with reference counting: the physical half of the paged KV cache.
///
/// A block is an opaque id; what it stores (KV rows, nothing at all for the analytic
/// accountant) is the caller's business. The pool only manages the free list and per-block
/// reference counts. Sharing a prompt prefix or forking a beam stem is AddRef on the blocks
/// involved; a block returns to the free list when its last reference drops. The free list
/// is LIFO so the most recently freed block (hottest KV region) is the first reused.
///
/// Capacity can be bounded (a real storage-backed pool, or a DRAM-budgeted accountant) or
/// unbounded (capacity <= 0: ids grow on demand — pure accounting).
///
/// Thread-safe: one mutex guards the free list, refcounts, and usage accounting, so
/// Alloc/AddRef/Unref may be called from parallel lanes (docs/threading_model.md). The
/// serving layer still allocates on the admission path single-threaded; the lock is what
/// makes concurrent refcount traffic from parallel decode rows correct.
#ifndef SRC_KVCACHE_BLOCK_POOL_H_
#define SRC_KVCACHE_BLOCK_POOL_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace hkv {

class BlockPool {
 public:
  // capacity <= 0 means unbounded (the pool mints new ids as needed).
  explicit BlockPool(int64_t capacity);

  // Allocates a block with refcount 1. Returns -1 when a bounded pool is exhausted.
  int Alloc();

  void AddRef(int block);
  // Drops one reference. Returns true when this was the last reference and the block went
  // back to the free list.
  bool Unref(int block);

  int ref_count(int block) const;
  bool bounded() const { return capacity_ > 0; }
  int64_t capacity() const { return capacity_; }
  int64_t used_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  int64_t peak_used_blocks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_used_;
  }
  // Blocks still allocatable; meaningless (INT64_MAX) for unbounded pools.
  int64_t free_blocks() const;

  // --- tiered-offload support (docs/long_context.md) ---
  // A live block's payload is either DRAM-resident (the default) or demoted to the flash
  // tier. Only hkv::KvOffloadEngine flips residency; everything else just reads it. A block
  // whose last reference drops reverts to resident, so the free list stays tier-agnostic.
  void SetResident(int block, bool resident);
  bool resident(int block) const;
  // Live AND resident block count (what a DRAM budget actually holds).
  int64_t resident_blocks() const;

  // Eviction recency: the bookkeeping thread stamps a block whenever it is appended to or
  // staged for attention; the LRU policy evicts the smallest stamp first.
  void Touch(int block, int64_t step);
  int64_t last_touch(int block) const;

  // Ids ever created — the upper bound for scans over per-block state.
  int64_t minted_blocks() const;

 private:
  mutable std::mutex mu_;
  int64_t capacity_;
  int64_t used_ = 0;
  int64_t nonresident_ = 0;     // live blocks demoted to the flash tier
  int64_t peak_used_ = 0;
  std::vector<int> refs_;       // per minted id; 0 = on the free list
  std::vector<int> free_list_;  // LIFO
  std::vector<uint8_t> resident_;    // per minted id
  std::vector<int64_t> last_touch_;  // per minted id
};

}  // namespace hkv

#endif  // SRC_KVCACHE_BLOCK_POOL_H_

/// \file
/// Per-sequence block tables with prefix sharing and copy-on-write forking — the logical
/// half of the paged KV cache, storage-free.
///
/// A sequence's KV positions map to pool blocks through its block table:
///   position p  ->  table[p / block_tokens], row offset p % block_tokens.
/// Sharing is block-granular: admitting N candidates of one prompt maps their prompt blocks
/// to ONE physical copy (AddRef); forking a beam stem maps the whole parent table. A shared
/// block stays read-only; the first append that lands in a shared block triggers a
/// copy-on-write split (the writer gets a private copy, the other owners keep the original).
///
/// The manager is deliberately storage-free so it serves two masters:
///   * hkv::PagedKvCache embeds it and applies the returned WriteAccess/freed-block events
///     to real F16 storage (copying on CoW splits, poisoning freed blocks in debug builds);
///   * hserve::AnalyticBackend drives one directly as a DRAM accountant for full-size
///     models where materializing KV would cost gigabytes — same block math, no bytes.
/// Driving both with the same operation stream yields bit-identical block statistics, which
/// the serving tests assert.
///
/// Thread-compatible, not thread-safe: the serving layer mutates block tables only from the
/// admission/step bookkeeping thread. Parallel decode lanes touch the underlying BlockPool
/// (which is mutexed), never the tables (docs/threading_model.md).
#ifndef SRC_KVCACHE_KV_BLOCK_MANAGER_H_
#define SRC_KVCACHE_KV_BLOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/kvcache/block_pool.h"
#include "src/obs/metrics.h"

namespace hkv {

// Physical-vs-logical KV accounting, reported through the serving metrics.
struct KvStats {
  int block_tokens = 0;            // positions per block
  int64_t bytes_per_block = 0;     // K+V rows for all layers of one block, FP16
  int64_t physical_blocks = 0;     // distinct live blocks
  int64_t peak_physical_blocks = 0;
  int64_t logical_blocks = 0;      // sum of per-sequence table sizes (shared blocks count
                                   // once per referencing sequence — what a dense layout
                                   // would store)
  int64_t peak_logical_blocks = 0;
  int64_t cow_splits = 0;          // shared blocks privatized by a write

  int64_t physical_bytes() const { return physical_blocks * bytes_per_block; }
  int64_t peak_physical_bytes() const { return peak_physical_blocks * bytes_per_block; }
  int64_t logical_bytes() const { return logical_blocks * bytes_per_block; }
  int64_t peak_logical_bytes() const { return peak_logical_blocks * bytes_per_block; }
  // How many dense bytes each physical byte stands in for (1.0 = no sharing).
  double sharing_ratio() const {
    return physical_blocks > 0
               ? static_cast<double>(logical_blocks) / static_cast<double>(physical_blocks)
               : 1.0;
  }
};

// Publishes a KvStats snapshot into `registry` under the `kv.` unit prefix
// (docs/metrics_schema.md):
//   counters kv.cow_splits
//   gauges   kv.block_tokens, kv.bytes_per_block, kv.physical_blocks,
//            kv.peak_physical_blocks, kv.logical_blocks, kv.peak_logical_blocks,
//            kv.sharing_ratio
void ExportKvStats(const KvStats& stats, obs::Registry& registry);

class KvBlockManager {
 public:
  // max_blocks <= 0 means unbounded (accounting mode). Sequence ids grow on demand.
  // bytes_per_block only scales the reported stats.
  KvBlockManager(int block_tokens, int64_t max_blocks, int64_t bytes_per_block);

  int block_tokens() const { return block_tokens_; }
  int length(int seq) const;
  int64_t table_blocks(int seq) const;
  // Block id holding table entry `idx` of `seq` (idx < table_blocks(seq)).
  int block_at(int seq, int idx) const;

  // Result of preparing position `pos` of `seq` for writing.
  struct WriteAccess {
    int block = -1;        // block now holding `pos`, exclusively owned by `seq`
    int copied_from = -1;  // >= 0: CoW split — storage must copy that block's rows into
                           // `block` before writing
  };

  // Ensures the block holding `pos` exists and is exclusively owned (allocating a fresh
  // block at a block boundary, CoW-splitting a shared one). `pos` must lie in the append
  // region [length, table capacity]. CHECK-fails on pool exhaustion — callers gate
  // admission via BlocksToAdmit/free_blocks instead of probing.
  WriteAccess EnsureWritable(int seq, int pos);

  // Advances the sequence by one position (after all layers wrote their rows).
  void Advance(int seq);

  // Pre-sizes the per-sequence tables: materializes sequences [0, num_seqs) and reserves
  // `blocks_per_seq` table entries in each, so steady-state appends (including the
  // block-boundary push_back every block_tokens positions) never reallocate — the
  // zero-alloc decode contract (docs/performance.md). Purely a capacity hint; no blocks
  // are allocated and stats are unchanged.
  void Reserve(int num_seqs, int blocks_per_seq);

  // Releases every block reference the sequence holds. Blocks whose last reference dropped
  // are appended to `freed` (nullable).
  void Reset(int seq, std::vector<int>* freed);

  // Shrinks `seq` to `new_len` positions (the speculative-decode rollback primitive): whole
  // tail blocks past ceil(new_len / block_tokens) are Unref'd (last-owner blocks appended to
  // `freed`, nullable) and the length rewinds so the next append targets position `new_len`.
  // A kept partial tail block is untouched — if it is shared (forked child, retained
  // prefix), the re-append after rollback CoW-splits it through EnsureWritable exactly like
  // any other divergent write, so fork/handle invariants survive rollback. Returns the
  // number of table blocks dropped.
  int64_t Truncate(int seq, int new_len, std::vector<int>* freed);

  // Snapshots the first `len` positions (-1 = full length) of `seq` as a retained handle:
  // the covered blocks stay alive independent of the sequence's own lifetime, so a prompt
  // prefix or a completed beam stem can outlive its slot. Returns the handle id.
  int64_t Retain(int seq, int len = -1);
  int handle_length(int64_t handle) const;

  // Maps the first `len` positions of the handle into `dst` (which must be empty): the
  // shared blocks are AddRef'd, dst's length becomes `len`. A partial tail block is shared
  // too — the first append into it CoW-splits.
  void ShareFromHandle(int64_t handle, int dst, int len);

  void DropHandle(int64_t handle, std::vector<int>* freed);

  // Blocks a fresh admission will newly allocate to grow from `shared_tokens` of mapped
  // prefix to `total_tokens`, including the CoW split of a partial shared tail.
  int64_t BlocksToAdmit(int total_tokens, int shared_tokens) const;

  // True if the tail block of `seq` is currently shared (the next append pays a CoW split).
  bool TailShared(int seq) const;

  int64_t free_blocks() const { return pool_.free_blocks(); }
  KvStats stats() const;

  // Physical-pool access for the tiered-offload engine (residency bits, LRU stamps).
  BlockPool& pool() { return pool_; }
  const BlockPool& pool() const { return pool_; }

 private:
  struct Table {
    std::vector<int> blocks;
    int length = 0;
  };

  Table& Seq(int seq);
  const Table* SeqOrNull(int seq) const;
  void BumpLogical(int64_t delta);

  int block_tokens_;
  int64_t bytes_per_block_;
  BlockPool pool_;
  std::vector<Table> seqs_;
  std::map<int64_t, Table> handles_;
  int64_t next_handle_ = 1;
  int64_t logical_blocks_ = 0;
  int64_t peak_logical_blocks_ = 0;
  int64_t cow_splits_ = 0;
};

}  // namespace hkv

#endif  // SRC_KVCACHE_KV_BLOCK_MANAGER_H_

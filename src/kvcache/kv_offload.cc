#include "src/kvcache/kv_offload.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"

namespace hkv {

int LruEvictionPolicy::PickVictim(const BlockPool& pool, std::span<const int> candidates) {
  int best = -1;
  int64_t best_touch = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const int64_t t = pool.last_touch(candidates[i]);
    // Ties break toward the lowest block id: candidates arrive id-ordered, so strict `<`
    // keeps the first minimum — deterministic across runs.
    if (best < 0 || t < best_touch) {
      best = static_cast<int>(i);
      best_touch = t;
    }
  }
  return best;
}

KvOffloadEngine::KvOffloadEngine(BlockPool& pool, uint8_t* storage, int64_t block_bytes,
                                 const KvOffloadOptions& opts,
                                 std::unique_ptr<KvEvictionPolicy> policy)
    : pool_(pool),
      storage_(storage),
      block_bytes_(block_bytes),
      opts_(opts),
      policy_(policy ? std::move(policy) : std::make_unique<LruEvictionPolicy>()),
      flash_(opts.flash) {
  HEXLLM_CHECK(block_bytes_ > 0 || storage_ == nullptr);
}

int64_t KvOffloadEngine::EnforceBudget() {
  if (!enabled()) {
    return 0;
  }
  int64_t demoted = 0;
  while (pool_.resident_blocks() > opts_.resident_block_budget) {
    candidates_scratch_.clear();
    const int64_t minted = pool_.minted_blocks();
    for (int b = 0; b < minted; ++b) {
      // Exclusively-owned AND resident: refcount > 1 means CoW-shared, pinned, or retained
      // through a handle — all exempt from eviction.
      if (pool_.ref_count(b) == 1 && pool_.resident(b)) {
        candidates_scratch_.push_back(b);
      }
    }
    const int pick = candidates_scratch_.empty()
                         ? -1
                         : policy_->PickVictim(pool_, candidates_scratch_);
    if (pick < 0) {
      break;  // nothing evictable (everything shared/pinned) — stay over budget
    }
    const int victim = candidates_scratch_[static_cast<size_t>(pick)];
    if (storage_ != nullptr) {
      uint8_t* slab = storage_ + static_cast<int64_t>(victim) * block_bytes_;
      auto& copy = flash_store_[victim];
      copy.assign(slab, slab + block_bytes_);
      // Destroy the DRAM copy so any read that skips the promotion fault fails loudly:
      // 0xFF bytes are F16 NaNs in the F16 slab and NaN scales in the quantized slab.
      std::memset(slab, 0xFF, static_cast<size_t>(block_bytes_));
    } else {
      flash_store_[victim];  // accounting-only: remember the block lives in flash
    }
    const double s = flash_.ChargeWrite(block_bytes_);
    stats_.flash_write_bytes += block_bytes_;
    stats_.flash_write_seconds += s;
    ++stats_.wear_write_ops;
    pool_.SetResident(victim, false);
    ++stats_.demotions;
    ++demoted;
  }
  return demoted;
}

void KvOffloadEngine::PrefetchAsync(std::span<const int> blocks) {
  if (!enabled()) {
    return;
  }
  for (const int b : blocks) {
    if (pool_.resident(b) || pending_ready_.count(b) != 0) {
      continue;
    }
    const double start = std::max(now_, read_free_at_);
    const double cost = flash_.ChargeRead(block_bytes_);
    stats_.flash_read_bytes += block_bytes_;
    stats_.flash_read_seconds += cost;
    read_free_at_ = start + cost;
    pending_ready_[b] = read_free_at_;
  }
}

double KvOffloadEngine::Promote(int block, bool demand) {
  double ready;
  auto it = pending_ready_.find(block);
  if (it != pending_ready_.end()) {
    // A prefetched read: the access only pays whatever the channel hasn't finished yet.
    ready = it->second;
    pending_ready_.erase(it);
    if (ready <= now_) {
      ++stats_.prefetch_hits;
    } else if (demand) {
      ++stats_.demand_faults;
    }
  } else {
    const double start = std::max(now_, read_free_at_);
    const double cost = flash_.ChargeRead(block_bytes_);
    stats_.flash_read_bytes += block_bytes_;
    stats_.flash_read_seconds += cost;
    read_free_at_ = start + cost;
    ready = read_free_at_;
    if (demand) {
      ++stats_.demand_faults;
    }
  }
  auto copy = flash_store_.find(block);
  HEXLLM_CHECK_MSG(copy != flash_store_.end(), "promoting a KV block with no flash copy");
  if (storage_ != nullptr) {
    std::memcpy(storage_ + static_cast<int64_t>(block) * block_bytes_, copy->second.data(),
                static_cast<size_t>(block_bytes_));
  }
  flash_store_.erase(copy);
  pool_.SetResident(block, true);
  ++stats_.promotions;
  return ready;
}

double KvOffloadEngine::EnsureResident(std::span<const int> blocks) {
  if (!enabled()) {
    return 0.0;
  }
  double max_ready = now_;
  for (const int b : blocks) {
    if (!pool_.resident(b)) {
      max_ready = std::max(max_ready, Promote(b, /*demand=*/true));
    }
    pool_.Touch(b, step_);
  }
  const double stall = max_ready - now_;
  now_ = max_ready;
  stats_.stall_seconds += stall;
  return stall;
}

double KvOffloadEngine::EnsureResidentBlock(int block) {
  const int blocks[1] = {block};
  return EnsureResident(std::span<const int>(blocks, 1));
}

void KvOffloadEngine::AdvanceClock(double seconds) {
  HEXLLM_DCHECK(seconds >= 0.0);
  now_ += seconds;
}

void KvOffloadEngine::NoteFreed(int block) {
  flash_store_.erase(block);
  pending_ready_.erase(block);
}

void ExportKvOffloadStats(const KvOffloadStats& stats, obs::Registry& registry) {
  registry.Count("kv.offload.demotions", stats.demotions);
  registry.Count("kv.offload.promotions", stats.promotions);
  registry.Count("kv.offload.demand_faults", stats.demand_faults);
  registry.Count("kv.offload.prefetch_hits", stats.prefetch_hits);
  registry.Count("kv.offload.flash_read_bytes", stats.flash_read_bytes);
  registry.Count("kv.offload.flash_write_bytes", stats.flash_write_bytes);
  registry.Count("kv.offload.wear_write_ops", stats.wear_write_ops);
  registry.Set("kv.offload.stall_seconds", stats.stall_seconds);
  registry.Set("kv.offload.flash_read_seconds", stats.flash_read_seconds);
  registry.Set("kv.offload.flash_write_seconds", stats.flash_write_seconds);
}

}  // namespace hkv

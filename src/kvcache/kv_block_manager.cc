#include "src/kvcache/kv_block_manager.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hkv {

KvBlockManager::KvBlockManager(int block_tokens, int64_t max_blocks, int64_t bytes_per_block)
    : block_tokens_(block_tokens), bytes_per_block_(bytes_per_block), pool_(max_blocks) {
  HEXLLM_CHECK(block_tokens_ >= 1);
}

KvBlockManager::Table& KvBlockManager::Seq(int seq) {
  HEXLLM_CHECK(seq >= 0);
  if (seq >= static_cast<int>(seqs_.size())) {
    seqs_.resize(static_cast<size_t>(seq) + 1);
  }
  return seqs_[static_cast<size_t>(seq)];
}

const KvBlockManager::Table* KvBlockManager::SeqOrNull(int seq) const {
  if (seq < 0 || seq >= static_cast<int>(seqs_.size())) {
    return nullptr;
  }
  return &seqs_[static_cast<size_t>(seq)];
}

void KvBlockManager::BumpLogical(int64_t delta) {
  logical_blocks_ += delta;
  if (logical_blocks_ > peak_logical_blocks_) {
    peak_logical_blocks_ = logical_blocks_;
  }
}

int KvBlockManager::length(int seq) const {
  const Table* t = SeqOrNull(seq);
  return t != nullptr ? t->length : 0;
}

int64_t KvBlockManager::table_blocks(int seq) const {
  const Table* t = SeqOrNull(seq);
  return t != nullptr ? static_cast<int64_t>(t->blocks.size()) : 0;
}

int KvBlockManager::block_at(int seq, int idx) const {
  const Table* t = SeqOrNull(seq);
  HEXLLM_CHECK(t != nullptr && idx >= 0 && idx < static_cast<int>(t->blocks.size()));
  return t->blocks[static_cast<size_t>(idx)];
}

KvBlockManager::WriteAccess KvBlockManager::EnsureWritable(int seq, int pos) {
  Table& t = Seq(seq);
  HEXLLM_CHECK_MSG(pos >= t.length, "KV writes may only target the append region");
  const int idx = pos / block_tokens_;
  HEXLLM_CHECK_MSG(idx <= static_cast<int>(t.blocks.size()),
                   "KV append skipped a block boundary");
  WriteAccess wa;
  if (idx == static_cast<int>(t.blocks.size())) {
    wa.block = pool_.Alloc();
    HEXLLM_CHECK_MSG(wa.block >= 0, "KV block pool exhausted");
    t.blocks.push_back(wa.block);
    BumpLogical(1);
    return wa;
  }
  const int cur = t.blocks[static_cast<size_t>(idx)];
  if (pool_.ref_count(cur) == 1) {
    wa.block = cur;
    return wa;  // already exclusive
  }
  // Copy-on-write split: privatize the shared block for this writer.
  wa.block = pool_.Alloc();
  HEXLLM_CHECK_MSG(wa.block >= 0, "KV block pool exhausted during copy-on-write split");
  wa.copied_from = cur;
  t.blocks[static_cast<size_t>(idx)] = wa.block;
  const bool freed = pool_.Unref(cur);
  HEXLLM_CHECK(!freed);  // the other owners still reference it
  ++cow_splits_;
  return wa;
}

void KvBlockManager::Advance(int seq) {
  Table& t = Seq(seq);
  HEXLLM_CHECK_MSG(t.length < static_cast<int>(t.blocks.size()) * block_tokens_,
                   "Advance past the last prepared KV block");
  ++t.length;
}

void KvBlockManager::Reserve(int num_seqs, int blocks_per_seq) {
  HEXLLM_CHECK(num_seqs >= 0 && blocks_per_seq >= 0);
  if (num_seqs > 0) {
    Seq(num_seqs - 1);  // materialize the table slots
  }
  for (auto& t : seqs_) {
    t.blocks.reserve(static_cast<size_t>(blocks_per_seq));
  }
}

void KvBlockManager::Reset(int seq, std::vector<int>* freed) {
  Table* t = const_cast<Table*>(SeqOrNull(seq));
  if (t == nullptr) {
    return;
  }
  for (const int b : t->blocks) {
    if (pool_.Unref(b) && freed != nullptr) {
      freed->push_back(b);
    }
  }
  BumpLogical(-static_cast<int64_t>(t->blocks.size()));
  t->blocks.clear();
  t->length = 0;
}

int64_t KvBlockManager::Truncate(int seq, int new_len, std::vector<int>* freed) {
  Table& t = Seq(seq);
  HEXLLM_CHECK_MSG(new_len >= 0 && new_len <= t.length,
                   "Truncate target must lie within the sequence");
  const int64_t keep = hexllm::CeilDiv(new_len, block_tokens_);
  const int64_t dropped = static_cast<int64_t>(t.blocks.size()) - keep;
  for (size_t i = static_cast<size_t>(keep); i < t.blocks.size(); ++i) {
    if (pool_.Unref(t.blocks[i]) && freed != nullptr) {
      freed->push_back(t.blocks[i]);
    }
  }
  t.blocks.resize(static_cast<size_t>(keep));
  BumpLogical(-dropped);
  t.length = new_len;
  return dropped;
}

int64_t KvBlockManager::Retain(int seq, int len) {
  const Table* t = SeqOrNull(seq);
  HEXLLM_CHECK(t != nullptr);
  if (len < 0) {
    len = t->length;
  }
  HEXLLM_CHECK(len <= t->length);
  Table h;
  h.length = len;
  const int64_t blocks = hexllm::CeilDiv(len, block_tokens_);
  h.blocks.assign(t->blocks.begin(), t->blocks.begin() + blocks);
  for (const int b : h.blocks) {
    pool_.AddRef(b);
  }
  const int64_t id = next_handle_++;
  handles_.emplace(id, std::move(h));
  return id;
}

int KvBlockManager::handle_length(int64_t handle) const {
  const auto it = handles_.find(handle);
  HEXLLM_CHECK_MSG(it != handles_.end(), "unknown retained-KV handle");
  return it->second.length;
}

void KvBlockManager::ShareFromHandle(int64_t handle, int dst, int len) {
  const auto it = handles_.find(handle);
  HEXLLM_CHECK_MSG(it != handles_.end(), "unknown retained-KV handle");
  HEXLLM_CHECK(len >= 0 && len <= it->second.length);
  Table& t = Seq(dst);
  HEXLLM_CHECK_MSG(t.blocks.empty() && t.length == 0,
                   "ShareFromHandle requires an empty destination sequence");
  const int64_t blocks = hexllm::CeilDiv(len, block_tokens_);
  t.blocks.assign(it->second.blocks.begin(), it->second.blocks.begin() + blocks);
  for (const int b : t.blocks) {
    pool_.AddRef(b);
  }
  t.length = len;
  BumpLogical(blocks);
}

void KvBlockManager::DropHandle(int64_t handle, std::vector<int>* freed) {
  const auto it = handles_.find(handle);
  HEXLLM_CHECK_MSG(it != handles_.end(), "unknown retained-KV handle");
  for (const int b : it->second.blocks) {
    if (pool_.Unref(b) && freed != nullptr) {
      freed->push_back(b);
    }
  }
  handles_.erase(it);
}

int64_t KvBlockManager::BlocksToAdmit(int total_tokens, int shared_tokens) const {
  HEXLLM_CHECK(shared_tokens >= 0 && shared_tokens <= total_tokens);
  const int64_t total_blocks = hexllm::CeilDiv(total_tokens, block_tokens_);
  const int64_t shared_blocks = hexllm::CeilDiv(shared_tokens, block_tokens_);
  int64_t need = total_blocks - shared_blocks;
  if (shared_tokens % block_tokens_ != 0 && total_tokens > shared_tokens) {
    ++need;  // the partial shared tail CoW-splits on the first append
  }
  return need;
}

bool KvBlockManager::TailShared(int seq) const {
  const Table* t = SeqOrNull(seq);
  if (t == nullptr || t->blocks.empty()) {
    return false;
  }
  return pool_.ref_count(t->blocks.back()) > 1;
}

KvStats KvBlockManager::stats() const {
  KvStats s;
  s.block_tokens = block_tokens_;
  s.bytes_per_block = bytes_per_block_;
  s.physical_blocks = pool_.used_blocks();
  s.peak_physical_blocks = pool_.peak_used_blocks();
  s.logical_blocks = logical_blocks_;
  s.peak_logical_blocks = peak_logical_blocks_;
  s.cow_splits = cow_splits_;
  return s;
}

void ExportKvStats(const KvStats& stats, obs::Registry& registry) {
  registry.Count("kv.cow_splits", stats.cow_splits);
  registry.Set("kv.block_tokens", static_cast<double>(stats.block_tokens));
  registry.Set("kv.bytes_per_block", static_cast<double>(stats.bytes_per_block));
  registry.Set("kv.physical_blocks", static_cast<double>(stats.physical_blocks));
  registry.Set("kv.peak_physical_blocks", static_cast<double>(stats.peak_physical_blocks));
  registry.Set("kv.logical_blocks", static_cast<double>(stats.logical_blocks));
  registry.Set("kv.peak_logical_blocks", static_cast<double>(stats.peak_logical_blocks));
  registry.Set("kv.sharing_ratio", stats.sharing_ratio());
}

}  // namespace hkv

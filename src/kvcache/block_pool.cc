#include "src/kvcache/block_pool.h"

#include <limits>

#include "src/base/check.h"

namespace hkv {

BlockPool::BlockPool(int64_t capacity) : capacity_(capacity) {
  if (capacity_ > 0) {
    refs_.reserve(static_cast<size_t>(capacity_));
  }
}

int BlockPool::Alloc() {
  std::lock_guard<std::mutex> lock(mu_);
  int id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else if (capacity_ <= 0 || static_cast<int64_t>(refs_.size()) < capacity_) {
    id = static_cast<int>(refs_.size());
    refs_.push_back(0);
    resident_.push_back(1);
    last_touch_.push_back(0);
  } else {
    return -1;  // bounded pool exhausted
  }
  HEXLLM_DCHECK(refs_[static_cast<size_t>(id)] == 0);
  HEXLLM_DCHECK(resident_[static_cast<size_t>(id)] != 0);
  refs_[static_cast<size_t>(id)] = 1;
  last_touch_[static_cast<size_t>(id)] = 0;
  ++used_;
  if (used_ > peak_used_) {
    peak_used_ = used_;
  }
  return id;
}

void BlockPool::AddRef(int block) {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  HEXLLM_CHECK(refs_[static_cast<size_t>(block)] > 0);
  ++refs_[static_cast<size_t>(block)];
}

bool BlockPool::Unref(int block) {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  HEXLLM_CHECK_MSG(refs_[static_cast<size_t>(block)] > 0, "double free of KV block");
  if (--refs_[static_cast<size_t>(block)] > 0) {
    return false;
  }
  // A freed block reverts to resident: the free list hands out DRAM slots, and the offload
  // engine drops its flash copy on the matching freed-block notification.
  if (resident_[static_cast<size_t>(block)] == 0) {
    resident_[static_cast<size_t>(block)] = 1;
    --nonresident_;
  }
  free_list_.push_back(block);
  --used_;
  return true;
}

void BlockPool::SetResident(int block, bool resident) {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  HEXLLM_CHECK_MSG(refs_[static_cast<size_t>(block)] > 0,
                   "residency flip on a free KV block");
  const bool was = resident_[static_cast<size_t>(block)] != 0;
  if (was == resident) {
    return;
  }
  resident_[static_cast<size_t>(block)] = resident ? 1 : 0;
  nonresident_ += resident ? -1 : 1;
}

bool BlockPool::resident(int block) const {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  return resident_[static_cast<size_t>(block)] != 0;
}

int64_t BlockPool::resident_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_ - nonresident_;
}

void BlockPool::Touch(int block, int64_t step) {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  last_touch_[static_cast<size_t>(block)] = step;
}

int64_t BlockPool::last_touch(int block) const {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  return last_touch_[static_cast<size_t>(block)];
}

int64_t BlockPool::minted_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(refs_.size());
}

int BlockPool::ref_count(int block) const {
  std::lock_guard<std::mutex> lock(mu_);
  HEXLLM_CHECK(block >= 0 && block < static_cast<int>(refs_.size()));
  return refs_[static_cast<size_t>(block)];
}

int64_t BlockPool::free_blocks() const {
  if (capacity_ <= 0) {
    return std::numeric_limits<int64_t>::max();
  }
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - used_;
}

}  // namespace hkv

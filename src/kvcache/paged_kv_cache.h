/// \file
/// Paged, ref-counted FP16 KV cache with prefix sharing and copy-on-write forking.
///
/// Replaces the dense [max_batch x max_context] slab: physical storage is a pool of
/// fixed-size position-blocks (default 32 positions — one HMX tile height — of K and V rows
/// for every layer), and each sequence maps its logical positions onto blocks through a
/// block table (hkv::KvBlockManager). Parallel test-time-scaling candidates admitted from
/// one prompt share the prompt's blocks physically; beam-search children fork a completed
/// stem by mapping its blocks, and the first divergent write into a shared tail block
/// splits it (copy-on-write) without touching the other owners.
///
/// In debug builds, a block whose last reference drops is poisoned with FP16 NaNs so a
/// stale block-table entry (use-after-free of reclaimed KV rows) corrupts attention loudly
/// instead of silently reusing old rows.
///
/// Thread-compatible: appends/resets run on the bookkeeping thread; parallel attention
/// lanes only READ rows through KeyRowAt/ValueRowAt during a step, which is safe because
/// every append for the step completes before the parallel region starts
/// (docs/threading_model.md).
#ifndef SRC_KVCACHE_PAGED_KV_CACHE_H_
#define SRC_KVCACHE_PAGED_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/base/fp16.h"
#include "src/kvcache/kv_block_manager.h"

namespace hkv {

// Positions per block. 32 matches the HMX tile height (hkern::kAttnQTile) so one block's
// rows fill whole attention tiles; see DESIGN.md §3.2 for the sizing trade-off.
inline constexpr int kDefaultBlockTokens = 32;

class PagedKvCache {
 public:
  // Storage is `num_blocks` blocks of `block_tokens` positions; each position stores one K
  // and one V row of width `kv_dim` for each of `layers` layers. num_blocks <= 0 sizes the
  // pool for `num_seqs` dense sequences of `max_context` plus per-sequence slack for
  // copy-on-write splits and retained prefixes.
  PagedKvCache(int layers, int kv_dim, int num_seqs, int max_context,
               int block_tokens = kDefaultBlockTokens, int64_t num_blocks = 0);

  int max_context() const { return max_context_; }
  int block_tokens() const { return mgr_.block_tokens(); }
  int length(int seq) const { return mgr_.length(seq); }
  // F16 elements between consecutive positions of one layer/plane within a block (= kv_dim);
  // the row stride for in-place paged attention (hkern::PagedKvHeadView).
  int64_t row_stride() const { return kv_dim_; }
  // Upper bound on table entries a sequence can hold — sizes FillBlockPointers arrays.
  int blocks_per_seq_capacity() const;

  // Pre-sizes the per-sequence block tables and internal scratch so steady-state appends
  // never heap-allocate (docs/performance.md).
  void ReserveSeqs(int num_seqs);

  // In-place paged attention support: fills per-block base pointers for `layer` of `seq`
  // covering the first `positions` positions. k_bases[i] / v_bases[i] point at the
  // position-0 K / V row of table block i; position p lives at
  // bases[p / block_tokens()] + (p % block_tokens()) * row_stride(). Returns the number of
  // entries written (ceil(positions / block_tokens())). Read-only — safe from parallel
  // attention lanes once the step's appends are done (docs/threading_model.md).
  int FillBlockPointers(int layer, int seq, int positions, const hexllm::F16** k_bases,
                        const hexllm::F16** v_bases) const;

  // Write accessors for the append region (pos >= length). The first write to a position
  // allocates its block; the first write into a shared block copy-on-write splits it.
  hexllm::F16* KeyRow(int layer, int seq, int pos) { return MutableRow(layer, seq, pos, false); }
  hexllm::F16* ValueRow(int layer, int seq, int pos) { return MutableRow(layer, seq, pos, true); }

  // Read accessors for materialized positions (pos < length, or rows just written in the
  // current chunk). Rows are contiguous [kv_dim] within one position; consecutive positions
  // generally live in different blocks — gather per position.
  const hexllm::F16* KeyRowAt(int layer, int seq, int pos) const {
    return Row(layer, seq, pos, false);
  }
  const hexllm::F16* ValueRowAt(int layer, int seq, int pos) const {
    return Row(layer, seq, pos, true);
  }

  // Advances the sequence by one position (after all layers wrote their K/V rows).
  void Advance(int seq);
  // Releases the sequence's block references; last-owner blocks return to the pool (and are
  // NaN-poisoned in debug builds).
  void ResetSeq(int seq);

  // Prefix sharing / fork support (see KvBlockManager): retain the first `len` positions
  // (-1 = all) of `seq` past its slot's lifetime, map a retained prefix into an empty
  // sequence, drop a handle when its last consumer is admitted.
  int64_t Retain(int seq, int len = -1) { return mgr_.Retain(seq, len); }
  int handle_length(int64_t handle) const { return mgr_.handle_length(handle); }
  void ShareFromHandle(int64_t handle, int dst_seq, int len);
  void DropHandle(int64_t handle);

  // Admission planning (see KvBlockManager): blocks a fresh admission will newly allocate,
  // pool headroom, and per-sequence growth state for conservative reservation.
  int64_t BlocksToAdmit(int total_tokens, int shared_tokens) const {
    return mgr_.BlocksToAdmit(total_tokens, shared_tokens);
  }
  int64_t free_blocks() const { return mgr_.free_blocks(); }
  int64_t table_blocks(int seq) const { return mgr_.table_blocks(seq); }
  bool TailShared(int seq) const { return mgr_.TailShared(seq); }

  KvStats stats() const { return mgr_.stats(); }
  // Physical bytes of the whole block pool (allocated up front).
  int64_t byte_size() const { return static_cast<int64_t>(storage_.size()) * 2; }
  int64_t num_blocks() const { return num_blocks_; }

  // Raw block storage, for tests (poison checks).
  const hexllm::F16* BlockDataForTest(int block) const {
    return storage_.data() + static_cast<int64_t>(block) * block_elems_;
  }

 private:
  hexllm::F16* BlockData(int block) {
    return storage_.data() + static_cast<int64_t>(block) * block_elems_;
  }
  int64_t RowOffset(int layer, bool value, int pos_in_block) const;
  hexllm::F16* MutableRow(int layer, int seq, int pos, bool value);
  const hexllm::F16* Row(int layer, int seq, int pos, bool value) const;
  void PoisonFreed();

  int layers_;
  int kv_dim_;
  int max_context_;
  int64_t num_blocks_;
  int64_t block_elems_;  // F16 elements per block
  KvBlockManager mgr_;
  std::vector<hexllm::F16> storage_;
  std::vector<int> freed_scratch_;
};

}  // namespace hkv

#endif  // SRC_KVCACHE_PAGED_KV_CACHE_H_

/// \file
/// Paged, ref-counted KV cache with prefix sharing, copy-on-write forking, and an optional
/// low-bit (INT8/INT4) group-quantized storage mode (docs/kv_quantization.md).
///
/// Replaces the dense [max_batch x max_context] slab: physical storage is a pool of
/// fixed-size position-blocks (default 32 positions — one HMX tile height — of K and V rows
/// for every layer), and each sequence maps its logical positions onto blocks through a
/// block table (hkv::KvBlockManager). Parallel test-time-scaling candidates admitted from
/// one prompt share the prompt's blocks physically; beam-search children fork a completed
/// stem by mapping its blocks, and the first divergent write into a shared tail block
/// splits it (copy-on-write) without touching the other owners.
///
/// Storage dtype is selected at construction (hquant::KvDtype). The default F16 mode keeps
/// the original 2-bytes/element layout and is bit-identical to the pre-quantization cache.
/// INT8/INT4 modes store each K/V row as a group-quantized payload plus one F16 scale per
/// group (Q8_0/Q4_0 scale rules); rows are written through WriteKeyRow/WriteValueRow (which
/// quantize and accumulate a round-trip error proxy in KvQuantStats) and read back by the
/// FlashAttentionPagedQ kernel, which dequantizes blocks through the vlut16 table-lookup
/// path. Every byte figure reported by KvStats shrinks accordingly, so pool sizing, DRAM
/// budgets, and admission all see the reduced footprint.
///
/// In debug builds, a block whose last reference drops is poisoned with FP16 NaNs so a
/// stale block-table entry (use-after-free of reclaimed KV rows) corrupts attention loudly
/// instead of silently reusing old rows.
///
/// Thread-compatible: appends/resets run on the bookkeeping thread; parallel attention
/// lanes only READ rows through KeyRowAt/ValueRowAt during a step, which is safe because
/// every append for the step completes before the parallel region starts
/// (docs/threading_model.md).
#ifndef SRC_KVCACHE_PAGED_KV_CACHE_H_
#define SRC_KVCACHE_PAGED_KV_CACHE_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/base/fp16.h"
#include "src/kvcache/kv_block_manager.h"
#include "src/kvcache/kv_offload.h"
#include "src/quant/quant_types.h"

namespace hkv {

// Positions per block. 32 matches the HMX tile height (hkern::kAttnQTile) so one block's
// rows fill whole attention tiles; see DESIGN.md §3.2 for the sizing trade-off.
inline constexpr int kDefaultBlockTokens = 32;

// Round-trip accuracy proxy for the quantized KV modes: every WriteKeyRow/WriteValueRow in
// a quantized cache dequantizes what it just stored and accumulates the deviation from the
// F16 source row. This is the cheap, always-on half of the accuracy story; the capability
// model measures the end-to-end attention/logit deviation (docs/kv_quantization.md).
struct KvQuantStats {
  int64_t rows = 0;         // quantized K/V rows written
  int64_t elems = 0;        // elements quantized
  double sum_abs_err = 0.0;  // sum over elements of |dequant(x) - x|
  double max_abs_err = 0.0;
  double sum_sq_err = 0.0;
  double sum_sq_ref = 0.0;
  int64_t quant_bytes = 0;  // bytes the written rows occupy quantized
  int64_t f16_bytes = 0;    // bytes the same rows would occupy in F16

  double mean_abs_err() const { return elems > 0 ? sum_abs_err / static_cast<double>(elems) : 0.0; }
  // RMS error relative to the RMS magnitude of the source rows.
  double rel_rms() const {
    return sum_sq_ref > 0.0 ? std::sqrt(sum_sq_err / sum_sq_ref) : 0.0;
  }
  int64_t bytes_saved() const { return f16_bytes - quant_bytes; }
};

// Exports kv.dtype plus the kv.quant.* error-proxy series (docs/metrics_schema.md). Gated
// by the caller on dtype != kF16 so F16 runs keep byte-identical metric snapshots.
void ExportKvQuantStats(hquant::KvDtype dtype, const KvQuantStats& stats,
                        obs::Registry& registry);

class PagedKvCache {
 public:
  // Storage is `num_blocks` blocks of `block_tokens` positions; each position stores one K
  // and one V row of width `kv_dim` for each of `layers` layers. num_blocks <= 0 sizes the
  // pool for `num_seqs` dense sequences of `max_context` plus per-sequence slack for
  // copy-on-write splits and retained prefixes. `dtype` selects F16 (default, bit-identical
  // legacy layout) or group-quantized INT8/INT4 rows with `quant_group` elements per scale
  // (quant_group must divide kv_dim).
  PagedKvCache(int layers, int kv_dim, int num_seqs, int max_context,
               int block_tokens = kDefaultBlockTokens, int64_t num_blocks = 0,
               hquant::KvDtype dtype = hquant::KvDtype::kF16,
               int quant_group = hquant::kGroupSize);

  int max_context() const { return max_context_; }
  int block_tokens() const { return mgr_.block_tokens(); }
  int length(int seq) const { return mgr_.length(seq); }
  hquant::KvDtype dtype() const { return dtype_; }
  int quant_group() const { return quant_group_; }
  // F16 elements between consecutive positions of one layer/plane within a block (= kv_dim);
  // the row stride for in-place paged attention (hkern::PagedKvHeadView). F16 mode only.
  int64_t row_stride() const { return kv_dim_; }
  // Bytes between consecutive positions of one layer/plane within a quantized block
  // (payload + per-group scales); the row stride for hkern::PagedQKvHeadView.
  int64_t row_bytes() const { return row_bytes_; }
  // Bytes from a quantized row's start to its scale array (= payload size).
  int64_t scales_offset() const { return hquant::KvPayloadBytes(dtype_, kv_dim_); }
  // Upper bound on table entries a sequence can hold — sizes FillBlockPointers arrays.
  int blocks_per_seq_capacity() const;

  // Pre-sizes the per-sequence block tables and internal scratch so steady-state appends
  // never heap-allocate (docs/performance.md).
  void ReserveSeqs(int num_seqs);

  // In-place paged attention support: fills per-block base pointers for `layer` of `seq`
  // covering the first `positions` positions. k_bases[i] / v_bases[i] point at the
  // position-0 K / V row of table block i; position p lives at
  // bases[p / block_tokens()] + (p % block_tokens()) * row_stride(). Returns the number of
  // entries written (ceil(positions / block_tokens())). Read-only — safe from parallel
  // attention lanes once the step's appends are done (docs/threading_model.md).
  int FillBlockPointers(int layer, int seq, int positions, const hexllm::F16** k_bases,
                        const hexllm::F16** v_bases) const;

  // Quantized-mode twin of FillBlockPointers: bases point at the position-0 K / V row bytes
  // of each table block; position p lives at bases[p / block_tokens()] +
  // (p % block_tokens()) * row_bytes().
  int FillQuantBlockPointers(int layer, int seq, int positions, const uint8_t** k_bases,
                             const uint8_t** v_bases) const;

  // Dtype-agnostic row writes for the append region (pos >= length). The first write to a
  // position allocates its block; the first write into a shared block copy-on-write splits
  // it. `src` is one F16 row of kv_dim elements; quantized modes quantize it in place and
  // accumulate the round-trip error in quant_stats(). In F16 mode this is exactly the
  // legacy memcpy-into-KeyRow/ValueRow path (bit-identical).
  void WriteKeyRow(int layer, int seq, int pos, const hexllm::F16* src) {
    WriteRow(layer, seq, pos, false, src);
  }
  void WriteValueRow(int layer, int seq, int pos, const hexllm::F16* src) {
    WriteRow(layer, seq, pos, true, src);
  }

  // Dtype-agnostic row reads: dequantizes (or copies) one full row into `dst` (kv_dim F16
  // elements). Works for any dtype; the F16 fast path is a memcpy.
  void ReadKeyRow(int layer, int seq, int pos, hexllm::F16* dst) const {
    ReadRow(layer, seq, pos, false, dst);
  }
  void ReadValueRow(int layer, int seq, int pos, hexllm::F16* dst) const {
    ReadRow(layer, seq, pos, true, dst);
  }

  // Direct F16 write accessors (F16 mode only — quantized rows are written whole through
  // WriteKeyRow/WriteValueRow).
  hexllm::F16* KeyRow(int layer, int seq, int pos) { return MutableRow(layer, seq, pos, false); }
  hexllm::F16* ValueRow(int layer, int seq, int pos) { return MutableRow(layer, seq, pos, true); }

  // Read accessors for materialized positions (pos < length, or rows just written in the
  // current chunk). Rows are contiguous [kv_dim] within one position; consecutive positions
  // generally live in different blocks — gather per position. F16 mode only.
  const hexllm::F16* KeyRowAt(int layer, int seq, int pos) const {
    return Row(layer, seq, pos, false);
  }
  const hexllm::F16* ValueRowAt(int layer, int seq, int pos) const {
    return Row(layer, seq, pos, true);
  }

  // Advances the sequence by one position (after all layers wrote their K/V rows).
  void Advance(int seq);
  // Releases the sequence's block references; last-owner blocks return to the pool (and are
  // NaN-poisoned in debug builds).
  void ResetSeq(int seq);
  // Rolls the sequence back to `new_len` positions (speculative-decode rejection): whole
  // tail blocks are released (and poisoned in debug builds when last-owner); a kept shared
  // partial tail CoW-splits on the next append. Returns the number of table blocks dropped.
  int64_t TruncateSeq(int seq, int new_len);

  // Prefix sharing / fork support (see KvBlockManager): retain the first `len` positions
  // (-1 = all) of `seq` past its slot's lifetime, map a retained prefix into an empty
  // sequence, drop a handle when its last consumer is admitted.
  int64_t Retain(int seq, int len = -1) { return mgr_.Retain(seq, len); }
  int handle_length(int64_t handle) const { return mgr_.handle_length(handle); }
  void ShareFromHandle(int64_t handle, int dst_seq, int len);
  void DropHandle(int64_t handle);

  // Admission planning (see KvBlockManager): blocks a fresh admission will newly allocate,
  // pool headroom, and per-sequence growth state for conservative reservation.
  int64_t BlocksToAdmit(int total_tokens, int shared_tokens) const {
    return mgr_.BlocksToAdmit(total_tokens, shared_tokens);
  }
  int64_t free_blocks() const { return mgr_.free_blocks(); }
  int64_t table_blocks(int seq) const { return mgr_.table_blocks(seq); }
  bool TailShared(int seq) const { return mgr_.TailShared(seq); }

  // --- tiered flash offload (docs/long_context.md) ---
  // Attaches a KvOffloadEngine under this cache: the pool's capacity stays the hard limit,
  // but only `opts.resident_block_budget` live blocks may keep their payload in DRAM — the
  // rest demote to the flash tier and fault back in on access. Call before any sequence
  // holds blocks. A default-constructed (budget <= 0) options value detaches nothing but
  // leaves offload disabled.
  void ConfigureOffload(const KvOffloadOptions& opts,
                        std::unique_ptr<KvEvictionPolicy> policy = nullptr);
  KvOffloadEngine* offload() { return offload_.get(); }
  const KvOffloadEngine* offload() const { return offload_.get(); }
  bool offload_enabled() const { return offload_ != nullptr && offload_->enabled(); }

  // Faults the given table entries of `seq` back into DRAM and stamps their recency —
  // bookkeeping-thread only, before the parallel attention region reads KV in place
  // (docs/threading_model.md). Returns the flash-read stall seconds the step absorbs.
  double EnsureResidentTableBlocks(int seq, std::span<const int> table_indices);

  // Queues async flash reads for the given table entries (resident/pending blocks and
  // entries past the allocated table are skipped; no-op with offload off). The serving
  // layer calls this with the NEXT step's predicted attended set so the reads overlap the
  // intervening decode compute instead of stalling at the fault.
  void PrefetchTableBlocks(int seq, std::span<const int> table_indices);

  KvStats stats() const { return mgr_.stats(); }
  const KvQuantStats& quant_stats() const { return quant_stats_; }
  // Physical bytes of the whole block pool (allocated up front).
  int64_t byte_size() const {
    return dtype_ == hquant::KvDtype::kF16 ? static_cast<int64_t>(storage_.size()) * 2
                                           : static_cast<int64_t>(qstorage_.size());
  }
  int64_t num_blocks() const { return num_blocks_; }

  // Raw block storage, for tests (poison checks). F16 mode.
  const hexllm::F16* BlockDataForTest(int block) const {
    return storage_.data() + static_cast<int64_t>(block) * block_elems_;
  }
  // Raw quantized block storage, for tests (poison checks). Quantized modes.
  const uint8_t* QuantBlockDataForTest(int block) const {
    return qstorage_.data() + static_cast<int64_t>(block) * block_bytes_;
  }
  // Physical block id behind table entry `table_idx` of `seq`, for tests
  // (residency/eviction checks against the pool).
  int BlockIdForTest(int seq, int table_idx) const { return mgr_.block_at(seq, table_idx); }
  const BlockPool& PoolForTest() const { return mgr_.pool(); }

 private:
  hexllm::F16* BlockData(int block) {
    return storage_.data() + static_cast<int64_t>(block) * block_elems_;
  }
  uint8_t* QuantBlockData(int block) {
    return qstorage_.data() + static_cast<int64_t>(block) * block_bytes_;
  }
  int64_t RowOffset(int layer, bool value, int pos_in_block) const;
  int64_t QuantRowOffset(int layer, bool value, int pos_in_block) const;
  hexllm::F16* MutableRow(int layer, int seq, int pos, bool value);
  const hexllm::F16* Row(int layer, int seq, int pos, bool value) const;
  void WriteRow(int layer, int seq, int pos, bool value, const hexllm::F16* src);
  void ReadRow(int layer, int seq, int pos, bool value, hexllm::F16* dst) const;
  void QuantizeRowInto(const hexllm::F16* src, uint8_t* row);
  void DequantRowInto(const uint8_t* row, hexllm::F16* dst) const;
  void PoisonFreed();
  // Bytes per block in the active dtype's backing store (the offload payload unit).
  int64_t StorageBlockBytes() const {
    return dtype_ == hquant::KvDtype::kF16 ? block_elems_ * 2 : block_bytes_;
  }
  // Write-path residency: faults the CoW source and destination blocks of a WriteAccess
  // back into DRAM before storage touches them. No-op when offload is off.
  void FaultForWrite(const KvBlockManager::WriteAccess& wa);

  int layers_;
  int kv_dim_;
  int max_context_;
  hquant::KvDtype dtype_;
  int quant_group_;
  int64_t num_blocks_;
  int64_t block_elems_;  // F16 elements per block (F16 mode)
  int64_t row_bytes_;    // bytes per quantized K or V row (payload + scales)
  int64_t block_bytes_;  // bytes per block in the active dtype
  KvBlockManager mgr_;
  std::vector<hexllm::F16> storage_;   // F16 mode backing store
  std::vector<uint8_t> qstorage_;      // quantized-mode backing store
  std::vector<int> freed_scratch_;
  std::vector<int> resident_scratch_;  // table-index -> block-id staging for EnsureResident
  std::vector<float> quant_src_scratch_;  // one group of floats (writer-thread only)
  std::vector<hexllm::F16> quant_rt_scratch_;  // round-trip dequant for error accounting
  KvQuantStats quant_stats_;
  std::unique_ptr<KvOffloadEngine> offload_;
};

}  // namespace hkv

#endif  // SRC_KVCACHE_PAGED_KV_CACHE_H_

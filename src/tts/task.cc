#include "src/tts/task.h"

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace htts {

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kMath500:
      return "MATH500";
    case Dataset::kGsm8k:
      return "GSM8K";
    case Dataset::kWikitext:
      return "Wikitext-2";
    case Dataset::kWinoGrande:
      return "WinoGrande";
    case Dataset::kMmlu:
      return "MMLU";
  }
  return "?";
}

TaskSet GenerateTaskSet(Dataset dataset, int n, uint64_t seed) {
  hexllm::Rng rng(seed);
  TaskSet set;
  set.dataset = dataset;
  set.tasks.reserve(static_cast<size_t>(n));

  // Difficulty distributions on the logit scale. The policy skills in
  // capability_model.cc are calibrated against these by construction (the anchor solver
  // inverts accuracy -> skill on a generated task set), so only the *spread* matters:
  // it controls how much headroom Best-of-N has (tasks near p=0.5 benefit most).
  double mean_d = 0.0;
  double sd_d = 1.0;
  int min_steps = 2;
  int max_steps = 6;
  int gen_tokens = 256;
  switch (dataset) {
    case Dataset::kMath500:
      mean_d = 2.2;
      sd_d = 1.6;
      min_steps = 4;
      max_steps = 10;
      gen_tokens = 512;
      break;
    case Dataset::kGsm8k:
      mean_d = 0.9;
      sd_d = 1.4;
      min_steps = 2;
      max_steps = 6;
      gen_tokens = 256;
      break;
    default:
      HEXLLM_CHECK_MSG(false, "task generation only defined for MATH500/GSM8K");
  }

  for (int i = 0; i < n; ++i) {
    ReasoningTask t;
    t.id = i;
    t.difficulty = mean_d + sd_d * rng.NextGaussian();
    t.num_steps =
        min_steps + static_cast<int>(rng.NextBounded(static_cast<uint64_t>(max_steps - min_steps + 1)));
    t.answer = static_cast<int>(rng.NextBounded(1000));
    t.gen_tokens = gen_tokens / 2 +
                   static_cast<int>(rng.NextBounded(static_cast<uint64_t>(gen_tokens)));
    t.prompt_tokens = 96 + static_cast<int>(rng.NextBounded(128));
    set.tasks.push_back(t);
  }
  return set;
}

}  // namespace htts

// The capability model: maps (model size, measured quantization error, measured attention
// numeric error) to task-solving skill, choice-task accuracy and perplexity.
//
// This is the substitution for running real checkpoints on real datasets (DESIGN.md §2).
// Structure:
//
//   * Item-Response-Theory core: a policy with latent skill theta solves a task of
//     difficulty d with probability sigmoid(theta - d). FP16 skills are solved numerically
//     from published accuracy anchors of the exact model variants the paper uses.
//   * Quantization damage: theta_eff = theta - lambda_d * err^p_d, where `err` is the
//     relative RMS weight-reconstruction error MEASURED by running this repo's actual
//     quantizers on synthetic LLM-like weights. (lambda_d, p_d) are calibrated per dataset
//     on the two Table 1 anchor cells (AWQ group-quant, QNN per-channel); every other cell
//     (tile-group, Q8 mixes, Figure 5/10 settings) is then a prediction.
//   * Perplexity proxy: ln(ppl) = ln(ppl_f16) + kappa * err^0.8, kappa calibrated per model
//     family on one anchored cell.
//   * Choice tasks (WinoGrande/MMLU): acc = chance + (acc_f16 - chance) * exp(-c * err),
//     c calibrated on Table 4's WinoGrande common-group cell.
//
// All measured errors come from hquant code paths; nothing in Tables 1/4/5 is typed in
// directly except the calibration anchors (which DESIGN.md lists).
#ifndef SRC_TTS_CAPABILITY_MODEL_H_
#define SRC_TTS_CAPABILITY_MODEL_H_

#include <cstdint>

#include "src/llm/model_config.h"
#include "src/tts/task.h"

namespace htts {

// Standard deviation of the shared per-(task, trial) skill perturbation: parallel samples
// of one attempt are correlated because the model systematically misreads/mis-plans a given
// problem (see tts.cc). Calibration marginalizes over it so single-sample accuracies still
// match the anchors.
inline constexpr double kTrialSkillSd = 1.8;

class CapabilityModel {
 public:
  // Measures quantization/attention errors with the real kernels and calibrates the skill
  // mapping. Deterministic (fixed seeds); construct once and share.
  CapabilityModel();

  // --- measured error statistics (relative RMS) ---
  double common_group_q4_err() const { return common_group_q4_err_; }
  double tile_group_q4_err() const { return tile_group_q4_err_; }
  double per_channel_q4_err() const { return per_channel_q4_err_; }
  double q8_err() const { return q8_err_; }
  double lut_f16_attention_err() const { return lut_f16_attention_err_; }
  // Attention output error under a KV storage dtype (docs/kv_quantization.md): the F16+LUT
  // probe rerun with K/V round-tripped through the paged cache's write-time quantizers.
  // Includes the LUT-softmax deviation, so AttentionErr(kF16) == lut_f16_attention_err().
  double AttentionErr(hquant::KvDtype kv_dtype) const {
    switch (kv_dtype) {
      case hquant::KvDtype::kInt4:
        return kv_int4_attention_err_;
      case hquant::KvDtype::kInt8:
        return kv_int8_attention_err_;
      default:
        return lut_f16_attention_err_;
    }
  }

  // Parameter-weighted weight error of a model deployed with this repo's scheme
  // (tile-group Q4 projections + Q8 FFN-down, §7.1).
  double DeployedWeightErr(const hllm::ModelConfig& m) const;

  // --- skill / accuracy ---
  // FP16 anchor skill of a model on a reasoning dataset (solved from public accuracies).
  double ThetaF16(const hllm::ModelConfig& m, Dataset d) const;
  // Skill after quantization/attention damage.
  double EffectiveTheta(const hllm::ModelConfig& m, Dataset d, double weight_err,
                        double attn_err) const;
  // Solve probability of one task.
  static double SolveProb(double theta, const ReasoningTask& task);
  // Mean single-sample accuracy over a task set (the "base"/pass@1 point), marginalized
  // over the trial-level skill perturbation (probit approximation).
  static double MeanAccuracy(const TaskSet& tasks, double theta);

  // --- proxies ---
  double WikiPerplexity(const hllm::ModelConfig& m, double weight_err, double attn_err) const;
  double ChoiceAccuracy(Dataset d, const hllm::ModelConfig& m, double weight_err,
                        double attn_err) const;

  // Skill penalty for (weight_err, attn_err) on dataset d (exposed for tests).
  double SkillPenalty(Dataset d, double weight_err, double attn_err) const;

 private:
  double common_group_q4_err_ = 0.0;
  double tile_group_q4_err_ = 0.0;
  double per_channel_q4_err_ = 0.0;
  double q8_err_ = 0.0;
  double lut_f16_attention_err_ = 0.0;
  double kv_int8_attention_err_ = 0.0;
  double kv_int4_attention_err_ = 0.0;

  // Per-dataset damage-curve parameters (MATH500, GSM8K).
  double lambda_math_ = 0.0, p_math_ = 1.0;
  double lambda_gsm_ = 0.0, p_gsm_ = 1.0;
  double choice_c_ = 0.0;       // choice-task sensitivity
  double kappa_qwen_ = 0.0;     // perplexity sensitivity, Qwen family
  double kappa_llama_ = 0.0;    // perplexity sensitivity, Llama family
};

}  // namespace htts

#endif  // SRC_TTS_CAPABILITY_MODEL_H_

// Parallel test-time scaling algorithms (§2.1, Figure 1): Best-of-N with an outcome reward
// model, self-consistency / majority voting, and step-level beam search with a process
// reward model. All operate on the statistical policy (capability model skill) and report
// accuracy plus generation-volume statistics; the runtime engine converts those into
// latency/energy (pareto.h).
#ifndef SRC_TTS_TTS_H_
#define SRC_TTS_TTS_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/serving/job.h"
#include "src/tts/reward_model.h"
#include "src/tts/task.h"

namespace htts {

// Samples one solution path from a policy with skill `theta` on `task` (temperature
// sampling: step successes are independent Bernoulli draws).
SamplePath SamplePolicyPath(const ReasoningTask& task, double theta, hexllm::Rng& rng);

struct MethodResult {
  double accuracy = 0.0;          // fraction of tasks answered correctly (pass@1 of the
                                  // selected answer)
  double oracle_accuracy = 0.0;   // pass@N (any sampled path correct) — the verifier ceiling
  double avg_seq_tokens = 0.0;    // tokens generated along ONE path (sequential depth)
  double avg_total_tokens = 0.0;  // tokens across all parallel paths
  int batch = 1;                  // decode batch the method sustains
};

// Each method optionally emits its generation workload as a serving job stream (`jobs`,
// appended): one ServeJob per sampled path, with per-sample decode lengths drawn from a
// dispersion stream that is independent of `rng` (emitting jobs never perturbs accuracy
// statistics). Samples of one (trial, task) share a prompt_group, so the batcher charges
// that prompt's chunked prefill once. Feed the stream to hserve::ContinuousBatcher for
// makespan / energy / trace — one run yields accuracy AND cost.

// Conventional sampling (budget 1).
MethodResult RunSingleSample(const TaskSet& tasks, double theta, int trials, hexllm::Rng& rng,
                             std::vector<hserve::ServeJob>* jobs = nullptr);

// Best-of-N: N parallel full generations, ORM picks the winner (§2.1).
MethodResult RunBestOfN(const TaskSet& tasks, double theta, const OutcomeRewardModel& orm,
                        int n, int trials, hexllm::Rng& rng,
                        std::vector<hserve::ServeJob>* jobs = nullptr);

// Self-consistency / majority voting over N samples; ties broken by first occurrence.
MethodResult RunMajorityVote(const TaskSet& tasks, double theta, int n, int trials,
                             hexllm::Rng& rng, std::vector<hserve::ServeJob>* jobs = nullptr);

// Step-level beam search (§2.1): budget n = beam_width x expansion candidates decoded in
// parallel each step; the PRM keeps the best `beam_width` prefixes after every step.
// Emitted jobs carry the expansion round as their barrier (round r+1 admits only after
// round r completes) and the kept prefix as uncharged context_tokens.
MethodResult RunBeamSearch(const TaskSet& tasks, double theta, const ProcessRewardModel& prm,
                           int n, int expansion, int trials, hexllm::Rng& rng,
                           std::vector<hserve::ServeJob>* jobs = nullptr);

}  // namespace htts

#endif  // SRC_TTS_TTS_H_

#include "src/tts/tts.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/tts/capability_model.h"

namespace htts {

// Samples within one attempt at a task are correlated: the model tends to misread or
// mis-plan a given problem the same way across all N parallel samples. Each (task, trial)
// therefore draws a shared skill perturbation before sampling; this is what keeps pass@N
// from exploding and makes the Figure 5/10 scaling curves saturate realistically.
namespace {
double TrialTheta(double theta, hexllm::Rng& rng) {
  return theta + kTrialSkillSd * rng.NextGaussian();
}

// Decode length for sample `index` of (task, trial): the same lognormal dispersion as
// hrt::MakeSampleJobs, but drawn from a stream keyed on (task, trial, index) instead of the
// method's rng, so emitting jobs does not perturb the accuracy statistics or any caller's
// rng-dependent expectations.
int SampledDecodeTokens(const ReasoningTask& t, int trial, int index) {
  hexllm::Rng lrng(0x9E3779B97F4A7C15ull ^ (static_cast<uint64_t>(t.id) << 32) ^
                   (static_cast<uint64_t>(trial) * 1000003ull) ^
                   static_cast<uint64_t>(index));
  const double len = t.gen_tokens * std::exp(0.5 * lrng.NextGaussian() - 0.125);
  return static_cast<int>(std::clamp(len, 16.0, 4.0 * t.gen_tokens));
}

// Appends the (trial, task) attempt's `n` parallel samples as serving jobs sharing one
// prompt_group (the batcher charges the prompt's chunked prefill once for the group).
void EmitSampleJobs(std::vector<hserve::ServeJob>* jobs, const ReasoningTask& t, int group,
                    int trial, int n) {
  if (jobs == nullptr) {
    return;
  }
  for (int i = 0; i < n; ++i) {
    hserve::ServeJob j;
    j.id = static_cast<int>(jobs->size());
    j.prompt_group = group;
    j.prompt_tokens = t.prompt_tokens;
    j.decode_tokens = SampledDecodeTokens(t, trial, i);
    jobs->push_back(j);
  }
}
}  // namespace

SamplePath SamplePolicyPath(const ReasoningTask& task, double theta, hexllm::Rng& rng) {
  SamplePath path;
  const double p = CapabilityModel::SolveProb(theta, task);
  // Per-step success probability so that a full chain succeeds with probability p.
  const double q = std::pow(p, 1.0 / task.num_steps);
  path.step_ok.resize(static_cast<size_t>(task.num_steps));
  bool ok = true;
  for (int s = 0; s < task.num_steps; ++s) {
    ok = ok && rng.NextBool(q);
    path.step_ok[static_cast<size_t>(s)] = ok ? 1 : 0;
  }
  path.correct = ok;
  path.answer = ok ? task.answer
                   : 100000 + static_cast<int>(rng.NextBounded(kWrongAnswerSpace));
  path.gen_tokens = task.gen_tokens;
  return path;
}

MethodResult RunSingleSample(const TaskSet& tasks, double theta, int trials,
                             hexllm::Rng& rng, std::vector<hserve::ServeJob>* jobs) {
  MethodResult r;
  r.batch = 1;
  int64_t correct = 0;
  int64_t total = 0;
  double tokens = 0.0;
  const int num_tasks = static_cast<int>(tasks.tasks.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (int ti = 0; ti < num_tasks; ++ti) {
      const auto& t = tasks.tasks[static_cast<size_t>(ti)];
      EmitSampleJobs(jobs, t, trial * num_tasks + ti, trial, 1);
      const SamplePath p = SamplePolicyPath(t, TrialTheta(theta, rng), rng);
      correct += p.correct ? 1 : 0;
      tokens += p.gen_tokens;
      ++total;
    }
  }
  r.accuracy = static_cast<double>(correct) / total;
  r.oracle_accuracy = r.accuracy;
  r.avg_seq_tokens = tokens / total;
  r.avg_total_tokens = r.avg_seq_tokens;
  return r;
}

MethodResult RunBestOfN(const TaskSet& tasks, double theta, const OutcomeRewardModel& orm,
                        int n, int trials, hexllm::Rng& rng,
                        std::vector<hserve::ServeJob>* jobs) {
  HEXLLM_CHECK(n >= 1);
  MethodResult r;
  r.batch = n;
  int64_t correct = 0;
  int64_t oracle = 0;
  int64_t total = 0;
  double seq_tokens = 0.0;
  const int num_tasks = static_cast<int>(tasks.tasks.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (int ti = 0; ti < num_tasks; ++ti) {
      const auto& t = tasks.tasks[static_cast<size_t>(ti)];
      EmitSampleJobs(jobs, t, trial * num_tasks + ti, trial, n);
      double best_score = -1e30;
      bool best_correct = false;
      bool any_correct = false;
      const double trial_theta = TrialTheta(theta, rng);
      for (int i = 0; i < n; ++i) {
        const SamplePath p = SamplePolicyPath(t, trial_theta, rng);
        any_correct = any_correct || p.correct;
        const double s = orm.Score(p, rng);
        if (s > best_score) {
          best_score = s;
          best_correct = p.correct;
        }
      }
      correct += best_correct ? 1 : 0;
      oracle += any_correct ? 1 : 0;
      seq_tokens += t.gen_tokens;
      ++total;
    }
  }
  r.accuracy = static_cast<double>(correct) / total;
  r.oracle_accuracy = static_cast<double>(oracle) / total;
  r.avg_seq_tokens = seq_tokens / total;
  r.avg_total_tokens = r.avg_seq_tokens * n;
  return r;
}

MethodResult RunMajorityVote(const TaskSet& tasks, double theta, int n, int trials,
                             hexllm::Rng& rng, std::vector<hserve::ServeJob>* jobs) {
  HEXLLM_CHECK(n >= 1);
  MethodResult r;
  r.batch = n;
  int64_t correct = 0;
  int64_t oracle = 0;
  int64_t total = 0;
  double seq_tokens = 0.0;
  const int num_tasks = static_cast<int>(tasks.tasks.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (int ti = 0; ti < num_tasks; ++ti) {
      const auto& t = tasks.tasks[static_cast<size_t>(ti)];
      EmitSampleJobs(jobs, t, trial * num_tasks + ti, trial, n);
      std::map<int, int> votes;
      bool any_correct = false;
      const double trial_theta = TrialTheta(theta, rng);
      for (int i = 0; i < n; ++i) {
        const SamplePath p = SamplePolicyPath(t, trial_theta, rng);
        any_correct = any_correct || p.correct;
        ++votes[p.answer];
      }
      int best_answer = -1;
      int best_count = 0;
      for (const auto& [ans, count] : votes) {
        if (count > best_count) {
          best_count = count;
          best_answer = ans;
        }
      }
      correct += (best_answer == t.answer) ? 1 : 0;
      oracle += any_correct ? 1 : 0;
      seq_tokens += t.gen_tokens;
      ++total;
    }
  }
  r.accuracy = static_cast<double>(correct) / total;
  r.oracle_accuracy = static_cast<double>(oracle) / total;
  r.avg_seq_tokens = seq_tokens / total;
  r.avg_total_tokens = r.avg_seq_tokens * n;
  return r;
}

MethodResult RunBeamSearch(const TaskSet& tasks, double theta, const ProcessRewardModel& prm,
                           int n, int expansion, int trials, hexllm::Rng& rng,
                           std::vector<hserve::ServeJob>* jobs) {
  HEXLLM_CHECK(n >= 1 && expansion >= 1);
  // The budget is the maximum decode batch; clamp the expansion so width x expansion <= n.
  const int eff_expansion = std::min(expansion, n);
  const int width = std::max(1, n / eff_expansion);
  MethodResult r;
  r.batch = width * eff_expansion;
  int64_t correct = 0;
  int64_t oracle = 0;
  int64_t total = 0;
  double seq_tokens = 0.0;

  struct Beam {
    bool ok = true;
    double score = 0.0;  // cumulative PRM score
  };

  const int num_tasks = static_cast<int>(tasks.tasks.size());
  for (int trial = 0; trial < trials; ++trial) {
    for (int ti = 0; ti < num_tasks; ++ti) {
      const auto& t = tasks.tasks[static_cast<size_t>(ti)];
      if (jobs != nullptr) {
        // Each expansion round decodes one reasoning-step's worth of tokens for every
        // candidate, on top of the kept prefix (uncharged context: the KV rows survive
        // pruning). Rounds are barriers: round r+1 admits only after round r completes.
        const int group = trial * num_tasks + ti;
        const int step_tokens =
            std::max(1, static_cast<int>(hexllm::CeilDiv(t.gen_tokens, t.num_steps)));
        std::vector<int> prev_ids;  // previous round's job ids, kept-beam-major
        std::vector<int> cur_ids;
        for (int round = 0; round < t.num_steps; ++round) {
          cur_ids.clear();
          for (int c = 0; c < width * eff_expansion; ++c) {
            hserve::ServeJob j;
            j.id = static_cast<int>(jobs->size());
            j.prompt_group = group;
            j.prompt_tokens = t.prompt_tokens;
            j.context_tokens = round * step_tokens;
            j.decode_tokens = step_tokens;
            j.barrier = round;
            if (round > 0) {
              // Expansion c continues kept beam c / eff_expansion: fork the stem's KV
              // (prompt + rounds decoded so far) instead of re-prefilling it. The serving
              // runtime maps the parent's retained blocks copy-on-write at admission.
              j.parent_job = prev_ids[static_cast<size_t>(c / eff_expansion)];
            }
            cur_ids.push_back(j.id);
            jobs->push_back(j);
          }
          std::swap(prev_ids, cur_ids);
        }
      }
      const double p = CapabilityModel::SolveProb(TrialTheta(theta, rng), t);
      const double q = std::pow(p, 1.0 / t.num_steps);
      std::vector<Beam> beams(static_cast<size_t>(width));
      bool any_correct_ever = false;
      for (int step = 0; step < t.num_steps; ++step) {
        std::vector<Beam> candidates;
        candidates.reserve(beams.size() * static_cast<size_t>(eff_expansion));
        for (const Beam& b : beams) {
          for (int e = 0; e < eff_expansion; ++e) {
            Beam c = b;
            c.ok = c.ok && rng.NextBool(q);
            c.score += prm.StepScore(c.ok, rng);
            candidates.push_back(c);
          }
        }
        std::partial_sort(candidates.begin(),
                          candidates.begin() + std::min<size_t>(candidates.size(),
                                                                static_cast<size_t>(width)),
                          candidates.end(),
                          [](const Beam& a, const Beam& b) { return a.score > b.score; });
        candidates.resize(std::min<size_t>(candidates.size(), static_cast<size_t>(width)));
        beams = std::move(candidates);
        for (const Beam& b : beams) {
          any_correct_ever = any_correct_ever || b.ok;
        }
      }
      const Beam& best =
          *std::max_element(beams.begin(), beams.end(),
                            [](const Beam& a, const Beam& b) { return a.score < b.score; });
      correct += best.ok ? 1 : 0;
      oracle += any_correct_ever ? 1 : 0;
      seq_tokens += t.gen_tokens;
      ++total;
    }
  }
  r.accuracy = static_cast<double>(correct) / total;
  r.oracle_accuracy = static_cast<double>(oracle) / total;
  r.avg_seq_tokens = seq_tokens / total;
  r.avg_total_tokens = r.avg_seq_tokens * r.batch;
  return r;
}

}  // namespace htts

#include "src/tts/speculative.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"

namespace htts {

double SpeculativeAcceptanceRate(const CapabilityModel& cap, const hllm::ModelConfig& draft,
                                 const hllm::ModelConfig& target) {
  // Skill gap on the GSM8K scale (a generic language-competence proxy here). A draft equal
  // to its target would be accepted at ~0.88 (sampling noise still rejects some tokens).
  // Next-token agreement is far less sensitive to the skill gap than end-task accuracy —
  // most tokens are locally predictable — so the decay per logit of gap is gentle (~8%),
  // in line with the 0.6-0.8 acceptance rates same-family draft pairs report in practice.
  const double gap = std::max(
      0.0, cap.ThetaF16(target, Dataset::kGsm8k) - cap.ThetaF16(draft, Dataset::kGsm8k));
  return 0.88 * std::exp(-0.08 * gap);
}

double SimulateTokensPerCycle(double acceptance, int gamma, int trials, hexllm::Rng& rng) {
  HEXLLM_CHECK(trials > 0);
  int64_t total = 0;
  for (int t = 0; t < trials; ++t) {
    int accepted = 0;
    while (accepted < gamma && rng.NextBool(acceptance)) {
      ++accepted;
    }
    // Accepted draft tokens plus the target's own token (bonus on full acceptance, or the
    // corrected token at the first rejection).
    total += accepted + 1;
  }
  return static_cast<double>(total) / trials;
}

SpeculativeReport EvaluateSpeculative(const hrt::Engine& target_engine,
                                      const hrt::Engine& draft_engine, double acceptance,
                                      int gamma, int context) {
  HEXLLM_CHECK(gamma >= 1);
  SpeculativeReport r;
  r.gamma = gamma;
  r.acceptance = acceptance;
  // E[accepted] = sum_{i=1}^{gamma} beta^i, plus 1 target token per cycle.
  double e_accepted = 0.0;
  double b = 1.0;
  for (int i = 0; i < gamma; ++i) {
    b *= acceptance;
    e_accepted += b;
  }
  r.tokens_per_cycle = e_accepted + 1.0;

  // gamma autoregressive draft steps + ONE target step verifying gamma+1 positions: the
  // verify step rides the idle HMX rows, so it is priced as a (gamma+1)-row batched step.
  const double draft_step = draft_engine.DecodeStep(1, context).total_s;
  const double verify_step = target_engine.DecodeStep(gamma + 1, context).total_s;
  r.cycle_seconds = gamma * draft_step + verify_step;
  r.tokens_per_second = r.tokens_per_cycle / r.cycle_seconds;
  r.plain_tokens_per_second = 1.0 / target_engine.DecodeStep(1, context).total_s;
  r.speedup = r.tokens_per_second / r.plain_tokens_per_second;
  return r;
}

}  // namespace htts

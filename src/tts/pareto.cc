#include "src/tts/pareto.h"

#include <algorithm>
#include <vector>

#include "src/base/check.h"
#include "src/runtime/engine.h"
#include "src/serving/continuous_batcher.h"
#include "src/tts/reward_model.h"
#include "src/tts/speculative.h"
#include "src/tts/tts.h"

namespace htts {

const char* TtsMethodName(TtsMethod m) {
  switch (m) {
    case TtsMethod::kBase:
      return "base";
    case TtsMethod::kBestOfN:
      return "Best-of-N";
    case TtsMethod::kBeamSearch:
      return "Beam Search";
    case TtsMethod::kMajorityVote:
      return "Majority Vote";
    case TtsMethod::kSpeculative:
      return "Speculative";
  }
  return "?";
}

std::vector<ParetoPoint> SweepPareto(const CapabilityModel& cap,
                                     const ParetoSweepOptions& options) {
  HEXLLM_CHECK(options.device != nullptr && !options.models.empty());
  std::vector<ParetoPoint> points;
  const TaskSet tasks = GenerateTaskSet(options.dataset, options.tasks, options.seed);
  const OutcomeRewardModel orm;
  const ProcessRewardModel prm;
  hexllm::Rng rng(options.seed ^ 0xFACADE);

  for (const auto* model : options.models) {
    const double theta = cap.EffectiveTheta(*model, options.dataset,
                                            cap.DeployedWeightErr(*model),
                                            cap.AttentionErr(options.kv_dtype));
    hrt::EngineOptions eo;
    eo.model = model;
    eo.device = options.device;
    hrt::Engine engine(eo);
    const bool runnable = engine.CanRun();

    // Cost now comes from actually serving the method's job stream through the continuous
    // batcher at the method's sustained batch: per-slot growing contexts, shared-prompt
    // chunked prefill, and energy integrated per step (§7.2.1's "increased context" falls
    // out of the per-slot KV lengths instead of a hand-picked fixed context).
    const auto add_point = [&](TtsMethod method, int budget, const MethodResult& r,
                               const std::vector<hserve::ServeJob>& jobs,
                               const hrt::Engine* draft_engine = nullptr,
                               double spec_acceptance = 0.0) {
      ParetoPoint p;
      p.model = model->name;
      p.method = method;
      p.budget = budget;
      p.kv_dtype = options.kv_dtype;
      p.accuracy = r.accuracy;
      p.runnable = runnable;
      if (draft_engine != nullptr) {
        p.spec_draft = options.spec_draft->name;
        p.spec_acceptance = spec_acceptance;
      }
      if (runnable) {
        hserve::AnalyticBackend::Options bo;
        bo.kv_budget_bytes = options.kv_budget_bytes;
        bo.kv_dtype = options.kv_dtype;
        bo.kv_quant_group = options.kv_quant_group;
        if (draft_engine != nullptr) {
          bo.draft_engine = draft_engine;
          bo.spec_gamma = options.spec_gamma;
          bo.spec_acceptance = spec_acceptance;
        }
        hserve::AnalyticBackend backend(engine, bo);
        hserve::ServeOptions so;
        so.max_batch = std::max(1, r.batch);
        hserve::ContinuousBatcher batcher(backend, so);
        const hserve::ScheduleResult s = batcher.Run(jobs);
        if (!s.error.empty()) {
          p.runnable = false;  // stream rejected (KV budget / context limit)
        }
        p.makespan_s = s.makespan_s;
        p.kv_physical_peak_bytes = s.kv.peak_physical_bytes();
        p.kv_logical_peak_bytes = s.kv.peak_logical_bytes();
        if (s.kv.peak_physical_blocks > 0) {
          p.kv_sharing_ratio = static_cast<double>(s.kv.peak_logical_blocks) /
                               static_cast<double>(s.kv.peak_physical_blocks);
        }
        if (s.steps > 0) {
          p.latency_per_token_s = s.makespan_s / static_cast<double>(s.steps);
        }
        if (s.decoded_tokens > 0) {
          p.energy_per_token_j = s.energy_j / static_cast<double>(s.decoded_tokens);
        }
        if (s.decode_s > 0.0) {
          p.watts = s.energy_j / s.decode_s;
        }
      }
      points.push_back(p);
    };

    // Base point (conventional sampling).
    {
      std::vector<hserve::ServeJob> jobs;
      const MethodResult r = RunSingleSample(tasks, theta, options.trials, rng, &jobs);
      add_point(TtsMethod::kBase, 1, r, jobs);

      // Speculative axis: the same single-sample stream decoded draft-assisted. Lossless
      // under any sampler, so accuracy is the base point's; the point exists to show where
      // generate-then-verify lands on the cost axis next to the scaling methods.
      if (options.spec_draft != nullptr && options.spec_draft != model &&
          options.spec_gamma > 0) {
        hrt::EngineOptions deo;
        deo.model = options.spec_draft;
        deo.device = options.device;
        hrt::Engine draft_engine(deo);
        if (draft_engine.CanRun()) {
          const double beta = SpeculativeAcceptanceRate(cap, *options.spec_draft, *model);
          std::vector<hserve::ServeJob> spec_jobs = jobs;
          for (auto& job : spec_jobs) {
            job.speculative = true;
          }
          add_point(TtsMethod::kSpeculative, 1, r, spec_jobs, &draft_engine, beta);
        }
      }
    }

    for (const int budget : options.budgets) {
      if (budget < 2) {
        continue;
      }
      {
        std::vector<hserve::ServeJob> jobs;
        const MethodResult r = RunBestOfN(tasks, theta, orm, budget, options.trials, rng,
                                          &jobs);
        add_point(TtsMethod::kBestOfN, budget, r, jobs);
      }
      {
        std::vector<hserve::ServeJob> jobs;
        const MethodResult r = RunBeamSearch(tasks, theta, prm, budget, /*expansion=*/4,
                                             options.trials, rng, &jobs);
        add_point(TtsMethod::kBeamSearch, budget, r, jobs);
      }
    }
  }
  return points;
}

bool OnParetoFrontier(const ParetoPoint& p, const std::vector<ParetoPoint>& points) {
  if (!p.runnable) {
    return false;
  }
  for (const auto& q : points) {
    if (!q.runnable) {
      continue;
    }
    const bool dominates = q.accuracy >= p.accuracy &&
                           q.latency_per_token_s <= p.latency_per_token_s &&
                           (q.accuracy > p.accuracy ||
                            q.latency_per_token_s < p.latency_per_token_s);
    if (dominates) {
      return false;
    }
  }
  return true;
}

}  // namespace htts

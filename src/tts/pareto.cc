#include "src/tts/pareto.h"

#include "src/base/check.h"
#include "src/runtime/engine.h"
#include "src/tts/reward_model.h"
#include "src/tts/tts.h"

namespace htts {

const char* TtsMethodName(TtsMethod m) {
  switch (m) {
    case TtsMethod::kBase:
      return "base";
    case TtsMethod::kBestOfN:
      return "Best-of-N";
    case TtsMethod::kBeamSearch:
      return "Beam Search";
    case TtsMethod::kMajorityVote:
      return "Majority Vote";
  }
  return "?";
}

std::vector<ParetoPoint> SweepPareto(const CapabilityModel& cap,
                                     const ParetoSweepOptions& options) {
  HEXLLM_CHECK(options.device != nullptr && !options.models.empty());
  std::vector<ParetoPoint> points;
  const TaskSet tasks = GenerateTaskSet(options.dataset, options.tasks, options.seed);
  const OutcomeRewardModel orm;
  const ProcessRewardModel prm;
  hexllm::Rng rng(options.seed ^ 0xFACADE);

  for (const auto* model : options.models) {
    const double theta = cap.EffectiveTheta(*model, options.dataset,
                                            cap.DeployedWeightErr(*model),
                                            cap.lut_f16_attention_err());
    hrt::EngineOptions eo;
    eo.model = model;
    eo.device = options.device;
    hrt::Engine engine(eo);
    const bool runnable = engine.CanRun();

    const auto add_point = [&](TtsMethod method, int budget, const MethodResult& r) {
      ParetoPoint p;
      p.model = model->name;
      p.method = method;
      p.budget = budget;
      p.accuracy = r.accuracy;
      p.runnable = runnable;
      if (runnable) {
        // Cost: per-step decode latency at the sustained batch, at a context that accounts
        // for the prompt plus the TTS generation depth (§7.2.1's "increased context").
        const int context =
            static_cast<int>(128 + r.avg_seq_tokens);
        p.latency_per_token_s = engine.DecodeSecondsPerToken(r.batch, context);
        const auto power = engine.DecodePower(r.batch, context);
        p.watts = power.watts;
        p.energy_per_token_j = power.joules_per_token;
      }
      points.push_back(p);
    };

    // Base point (conventional sampling).
    add_point(TtsMethod::kBase, 1, RunSingleSample(tasks, theta, options.trials, rng));

    for (const int budget : options.budgets) {
      if (budget < 2) {
        continue;
      }
      add_point(TtsMethod::kBestOfN, budget,
                RunBestOfN(tasks, theta, orm, budget, options.trials, rng));
      add_point(TtsMethod::kBeamSearch, budget,
                RunBeamSearch(tasks, theta, prm, budget, /*expansion=*/4, options.trials,
                              rng));
    }
  }
  return points;
}

bool OnParetoFrontier(const ParetoPoint& p, const std::vector<ParetoPoint>& points) {
  if (!p.runnable) {
    return false;
  }
  for (const auto& q : points) {
    if (!q.runnable) {
      continue;
    }
    const bool dominates = q.accuracy >= p.accuracy &&
                           q.latency_per_token_s <= p.latency_per_token_s &&
                           (q.accuracy > p.accuracy ||
                            q.latency_per_token_s < p.latency_per_token_s);
    if (dominates) {
      return false;
    }
  }
  return true;
}

}  // namespace htts

// Speculative decoding on the NPU engine — the §9 observation made concrete: "generalized
// Speculative Decoding and test-time scaling methods both belong to the generalized
// Generate-then-Verify framework, and our system can theoretically support these
// applications seamlessly."
//
// The mechanism is the SAME hardware opportunity as test-time scaling: verifying gamma+1
// draft tokens in one target forward pass fills HMX tile rows that idle during plain
// decoding, so the verify step costs barely more than a single-token step (§3.2).
//
// Acceptance model: the classic geometric acceptance process (Leviathan et al.) with a
// per-token acceptance rate beta derived from the draft/target skill gap on the capability
// model's logit scale. Expected accepted tokens per cycle: E = sum_{i=0}^{gamma} beta^i
// = (1 - beta^{gamma+1}) / (1 - beta), plus the bonus token from the target's own sample.
#ifndef SRC_TTS_SPECULATIVE_H_
#define SRC_TTS_SPECULATIVE_H_

#include "src/base/rng.h"
#include "src/runtime/engine.h"
#include "src/tts/capability_model.h"

namespace htts {

// Per-token probability that the target accepts a draft token, derived from the skill gap
// (equal skills -> beta_max; each logit of gap decays acceptance).
double SpeculativeAcceptanceRate(const CapabilityModel& cap, const hllm::ModelConfig& draft,
                                 const hllm::ModelConfig& target);

struct SpeculativeReport {
  int gamma = 0;                  // draft tokens per cycle
  double acceptance = 0.0;        // beta
  double tokens_per_cycle = 0.0;  // expected accepted + bonus tokens
  double cycle_seconds = 0.0;     // gamma draft steps + one batched verify step
  double tokens_per_second = 0.0;
  double plain_tokens_per_second = 0.0;  // target decoding alone
  double speedup = 0.0;
};

// Evaluates draft-assisted decoding of `target` using `draft`, both on the same device.
SpeculativeReport EvaluateSpeculative(const hrt::Engine& target_engine,
                                      const hrt::Engine& draft_engine, double acceptance,
                                      int gamma, int context);

// Monte-Carlo validation of the closed-form expected tokens per cycle.
double SimulateTokensPerCycle(double acceptance, int gamma, int trials, hexllm::Rng& rng);

}  // namespace htts

#endif  // SRC_TTS_SPECULATIVE_H_

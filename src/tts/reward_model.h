// Simulated reward models (the substitution for Skywork-1.5B-PRM, §7.1).
//
// A reward model is an imperfect observer of true sample quality: its score separates
// correct from incorrect candidates by `discrimination` standard deviations of its noise.
// discrimination -> infinity gives an oracle verifier (pass@N); 0 gives random selection.
// The defaults are chosen so Best-of-N selection quality sits between majority voting and
// the oracle, which is where published PRM-based results fall.
#ifndef SRC_TTS_REWARD_MODEL_H_
#define SRC_TTS_REWARD_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace htts {

// One sampled solution path.
struct SamplePath {
  bool correct = false;              // final-answer correctness
  std::vector<uint8_t> step_ok;      // prefix correctness per step (monotone)
  int answer = 0;                    // produced answer (synthetic space)
  int gen_tokens = 0;                // tokens this path generated
};

// Outcome reward model: scores a COMPLETE path (Best-of-N selection).
class OutcomeRewardModel {
 public:
  explicit OutcomeRewardModel(double discrimination = 1.2)
      : discrimination_(discrimination) {}

  double Score(const SamplePath& path, hexllm::Rng& rng) const {
    return (path.correct ? discrimination_ : 0.0) + rng.NextGaussian();
  }

  double discrimination() const { return discrimination_; }

 private:
  double discrimination_;
};

// Process reward model: scores a PARTIAL path after each step (beam-search pruning).
class ProcessRewardModel {
 public:
  explicit ProcessRewardModel(double step_discrimination = 0.55)
      : step_discrimination_(step_discrimination) {}

  double StepScore(bool prefix_ok, hexllm::Rng& rng) const {
    return (prefix_ok ? step_discrimination_ : 0.0) + rng.NextGaussian();
  }

  double step_discrimination() const { return step_discrimination_; }

 private:
  double step_discrimination_;
};

}  // namespace htts

#endif  // SRC_TTS_REWARD_MODEL_H_

// The accuracy-cost sweep driver behind Figures 5 and 10: couples the statistical TTS
// algorithms (accuracy) with the runtime engine (per-token decode latency and energy at the
// method's sustained batch size, accounting for the longer contexts TTS produces).
#ifndef SRC_TTS_PARETO_H_
#define SRC_TTS_PARETO_H_

#include <string>
#include <vector>

#include "src/hexsim/device_profile.h"
#include "src/llm/model_config.h"
#include "src/tts/capability_model.h"
#include "src/tts/task.h"

namespace htts {

enum class TtsMethod : uint8_t {
  kBase,          // conventional single-sample decoding
  kBestOfN,
  kBeamSearch,
  kMajorityVote,
  kSpeculative,   // draft-assisted decoding: base accuracy at a lower cost per token
};

const char* TtsMethodName(TtsMethod m);

struct ParetoPoint {
  std::string model;
  TtsMethod method = TtsMethod::kBase;
  // kSpeculative only: the draft model and the per-token acceptance rate the point ran at.
  // Speculation is lossless, so its accuracy equals the base point's — it moves the point
  // along the cost axis alone.
  std::string spec_draft;
  double spec_acceptance = 0.0;
  int budget = 1;                 // generation budget (max decode batch)
  hquant::KvDtype kv_dtype = hquant::KvDtype::kF16;  // KV storage mode this point ran under
  double accuracy = 0.0;          // task accuracy (fraction)
  double latency_per_token_s = 0.0;  // average decode latency per step (cost axis, Fig 10)
  double energy_per_token_j = 0.0;   // energy cost alternative (§7.2.3)
  double watts = 0.0;
  double makespan_s = 0.0;        // serving makespan of the method's whole job stream
  // Paged-KV accounting from the serving run: peak physical bytes the block pool held vs
  // the dense per-sequence bytes it stood in for, and the end-of-run sharing ratio.
  int64_t kv_physical_peak_bytes = 0;
  int64_t kv_logical_peak_bytes = 0;
  double kv_sharing_ratio = 1.0;
  bool runnable = true;           // false if the model does not fit the device NPU, or the
                                  // job stream exceeded the KV budget / context limit
};

struct ParetoSweepOptions {
  Dataset dataset = Dataset::kMath500;
  const hexsim::DeviceProfile* device = nullptr;
  std::vector<const hllm::ModelConfig*> models;
  std::vector<int> budgets = {1, 2, 4, 8, 16};
  int tasks = 500;
  int trials = 8;
  uint64_t seed = 7;
  // DRAM budget for KV blocks during serving; admissions defer once worst-case block demand
  // exceeds it (a point whose stream cannot fit at all is marked not runnable). <= 0 tracks
  // KV bytes without gating.
  int64_t kv_budget_bytes = 0;
  // KV storage dtype for the serving cost model AND the accuracy model: quantized KV
  // shrinks block bytes (more parallel samples fit a DRAM budget) while the attention
  // error fed to EffectiveTheta switches to the measured round-trip figure
  // (CapabilityModel::AttentionErr; docs/kv_quantization.md).
  hquant::KvDtype kv_dtype = hquant::KvDtype::kF16;
  int kv_quant_group = hquant::kGroupSize;
  // Optional speculative-decoding axis: when set (and distinct from the swept model), each
  // model additionally gets a kSpeculative point — the base single-sample job stream decoded
  // with this draft at `spec_gamma` proposals per cycle, acceptance derived from the
  // capability-model skill gap (SpeculativeAcceptanceRate). Lossless, so the point keeps
  // base accuracy and only moves cost (docs/speculative_decoding.md).
  const hllm::ModelConfig* spec_draft = nullptr;
  int spec_gamma = 4;
};

// Runs base + Best-of-N + Beam Search sweeps for every model/budget on one device+dataset.
std::vector<ParetoPoint> SweepPareto(const CapabilityModel& cap,
                                     const ParetoSweepOptions& options);

// True if `p` is on the Pareto frontier of (latency low, accuracy high) within `points`.
bool OnParetoFrontier(const ParetoPoint& p, const std::vector<ParetoPoint>& points);

}  // namespace htts

#endif  // SRC_TTS_PARETO_H_

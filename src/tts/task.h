// Synthetic reasoning tasks — the substitution for MATH500 / GSM8K (DESIGN.md §2).
//
// Each task is a multi-step reasoning chain with a latent difficulty drawn from a
// dataset-specific distribution (an Item-Response-Theory setup): a policy with latent skill
// theta solves the task with probability sigmoid(theta - difficulty), decomposed into
// per-step success so process-level methods (PRM-guided beam search) have real structure to
// exploit. Answers live in a small synthetic space so majority voting has genuine collision
// dynamics.
#ifndef SRC_TTS_TASK_H_
#define SRC_TTS_TASK_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"

namespace htts {

enum class Dataset : uint8_t {
  kMath500,
  kGsm8k,
  kWikitext,    // perplexity proxy (no tasks; used by the capability model only)
  kWinoGrande,  // binary-choice accuracy proxy
  kMmlu,        // 4-way-choice accuracy proxy
};

const char* DatasetName(Dataset d);

struct ReasoningTask {
  int id = 0;
  double difficulty = 0.0;  // IRT difficulty (logit scale)
  int num_steps = 1;        // reasoning-chain length
  int answer = 0;           // ground truth in the synthetic answer space
  int gen_tokens = 256;     // tokens a solution attempt generates
  int prompt_tokens = 128;  // prompt length
};

struct TaskSet {
  Dataset dataset;
  std::vector<ReasoningTask> tasks;
};

// Generates `n` tasks with the dataset's difficulty/step/length distributions.
// MATH500: hard (mean difficulty well above typical small-model skill), long chains and
// generations. GSM8K: easier, shorter chains.
TaskSet GenerateTaskSet(Dataset dataset, int n, uint64_t seed);

// Number of distinct wrong answers a failed attempt can produce (majority voting support).
inline constexpr int kWrongAnswerSpace = 12;

}  // namespace htts

#endif  // SRC_TTS_TASK_H_

#include "src/tts/capability_model.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/quant/error_stats.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

namespace htts {

using hllm::ModelConfig;

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// --- FP16 anchor accuracies of the exact model variants the paper evaluates (§7.1). ---
// Reasoning anchors are the publicly reported 0-shot CoT numbers for the Instruct variants;
// WinoGrande / MMLU / Wikitext-2 FP16 anchors for Qwen2.5-1.5B come from the paper's own
// Table 4 "F16" column; the remaining FP16 proxies are representative published values.
struct Anchors {
  double math500;
  double gsm8k;
  double wino;
  double mmlu;
  double wiki_ppl;
};

const std::map<std::string, Anchors>& AnchorTable() {
  static const std::map<std::string, Anchors> table = {
      {"Qwen2.5-0.5B-Instruct", {14.0, 34.5, 56.0, 29.5, 13.10}},
      {"Qwen2.5-1.5B-Instruct", {35.0, 68.5, 64.613, 34.819, 9.798}},
      {"Qwen2.5-3B-Instruct", {42.6, 79.1, 68.0, 40.0, 8.70}},
      {"Qwen2.5-7B-Instruct", {49.8, 85.4, 72.0, 45.0, 7.60}},
      {"Llama3.2-1B-Instruct", {30.6, 44.4, 60.5, 32.0, 16.80}},
      {"Llama3.2-3B-Instruct", {48.0, 77.7, 69.0, 38.0, 11.30}},
      {"toy-16M", {10.0, 15.0, 52.0, 26.0, 60.0}},
  };
  return table;
}

const Anchors& AnchorsFor(const ModelConfig& m) {
  auto it = AnchorTable().find(m.name);
  HEXLLM_CHECK_MSG(it != AnchorTable().end(), "no capability anchors for model");
  return it->second;
}

// Table 1 anchor cells (Llama3.2-1B-Instruct, W4A16): the AWQ per-group column and the QNN
// per-channel column. These two cells calibrate the damage curve per dataset.
constexpr double kAwqMath500 = 15.9;
constexpr double kAwqGsm8k = 32.6;
constexpr double kQnnMath500 = 2.1;
constexpr double kQnnGsm8k = 3.4;
constexpr double kAwqWikiPpl = 19.42;
// Table 4 anchor cell: Qwen2.5-1.5B with conventional ("common") quantization groups.
constexpr double kCommonGroupWino = 63.349;
constexpr double kCommonGroupWikiPpl = 10.190;

// Canonical task sets used for skill calibration (shared with nothing else; benches
// generate their own sets).
const TaskSet& CalibrationTasks(Dataset d) {
  static const TaskSet math = GenerateTaskSet(Dataset::kMath500, 4000, 0xCA11B001);
  static const TaskSet gsm = GenerateTaskSet(Dataset::kGsm8k, 4000, 0xCA11B002);
  HEXLLM_CHECK(d == Dataset::kMath500 || d == Dataset::kGsm8k);
  return d == Dataset::kMath500 ? math : gsm;
}

// Solves for the skill theta whose mean solve probability over `tasks` equals
// `accuracy_percent`.
double SolveThetaForAccuracy(const TaskSet& tasks, double accuracy_percent) {
  const double target = accuracy_percent / 100.0;
  double lo = -12.0;
  double hi = 12.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (CapabilityModel::MeanAccuracy(tasks, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double CapabilityModel::SolveProb(double theta, const ReasoningTask& task) {
  return Sigmoid(theta - task.difficulty);
}

double CapabilityModel::MeanAccuracy(const TaskSet& tasks, double theta) {
  HEXLLM_CHECK(!tasks.tasks.empty());
  // E_g[sigmoid(theta + sd*g - d)] ~ sigmoid((theta - d) / sqrt(1 + pi*sd^2/8)).
  const double shrink = std::sqrt(1.0 + 3.141592653589793 * kTrialSkillSd * kTrialSkillSd / 8.0);
  double sum = 0.0;
  for (const auto& t : tasks.tasks) {
    sum += Sigmoid((theta - t.difficulty) / shrink);
  }
  return sum / static_cast<double>(tasks.tasks.size());
}

CapabilityModel::CapabilityModel() {
  // --- 1. Measure quantization errors with the repo's real quantizers. ---
  hexllm::Rng rng(0x5EED5);
  const int64_t k = 2048;
  const int64_t n = 512;
  const auto w = hquant::GenerateLlmLikeMatrix(k, n, rng);

  {
    const auto blocks = hquant::ConventionalGroupQuantizeQ4(w, k, n);
    const auto back = hquant::DequantizeConventionalQ4(blocks, k, n);
    common_group_q4_err_ = hquant::ComputeErrorStats(w, back).rel_rms;
  }
  {
    const auto blocks = hquant::TileGroupQuantizeQ4(w, k, n);
    const auto back = hquant::DequantizeTileGroupQ4(blocks, k, n);
    tile_group_q4_err_ = hquant::ComputeErrorStats(w, back).rel_rms;
  }
  {
    const auto pc = hquant::QuantizePerChannelInt4(w, k, n);
    std::vector<float> back(w.size());
    hquant::DequantizePerChannelInt4(pc, back);
    per_channel_q4_err_ = hquant::ComputeErrorStats(w, back).rel_rms;
  }
  {
    const auto blocks = hquant::QuantizeQ8_0(w);
    std::vector<float> back(w.size());
    hquant::DequantizeQ8_0(blocks, back);
    q8_err_ = hquant::ComputeErrorStats(w, back).rel_rms;
  }

  // --- 2. Measure the FP16+LUT FlashAttention deviation against FP32 attention. ---
  {
    hexsim::NpuDevice dev(hexsim::OnePlus12());
    hkern::ExpLut lut(dev);
    hexllm::Rng arng(0xA77E);
    const int q_len = 8, kv_len = 256, d = 64;
    std::vector<hexllm::F16> q(static_cast<size_t>(q_len) * d), o(q.size());
    std::vector<hexllm::F16> kk(static_cast<size_t>(kv_len) * d), v(kk.size());
    std::vector<float> qf(q.size()), kf(kk.size()), vf(v.size()), of(o.size()), oh(o.size());
    for (size_t i = 0; i < q.size(); ++i) {
      q[i] = hexllm::F16(static_cast<float>(arng.NextGaussian()));
      qf[i] = q[i].ToFloat();
    }
    for (size_t i = 0; i < kk.size(); ++i) {
      kk[i] = hexllm::F16(static_cast<float>(arng.NextGaussian()));
      kf[i] = kk[i].ToFloat();
      v[i] = hexllm::F16(static_cast<float>(arng.NextGaussian()));
      vf[i] = v[i].ToFloat();
    }
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), kk.data(),
                             v.data(), o.data(), q_len, kv_len, d, scale);
    hkern::AttentionF32Reference(qf.data(), kf.data(), vf.data(), of.data(), q_len, kv_len, d,
                                 scale);
    for (size_t i = 0; i < o.size(); ++i) {
      oh[i] = o[i].ToFloat();
    }
    lut_f16_attention_err_ = hquant::ComputeErrorStats(of, oh).rel_rms;

    // --- 2b. KV-quantization attention error: same probe, but K/V round-trip through the
    // paged cache's write-time quantizers (docs/kv_quantization.md) before attention runs.
    // The measurement deliberately includes the F16+LUT softmax deviation — it is the total
    // output error a quantized-KV deployment sees, which is what the damage curves consume.
    const int group = hquant::kGroupSize;
    const auto kv_attn_err = [&](hquant::KvDtype dtype) {
      std::vector<hexllm::F16> kq(kk.size()), vq(v.size());
      std::vector<float> grp(static_cast<size_t>(group));
      uint8_t payload[64];
      for (size_t base = 0; base < kk.size(); base += static_cast<size_t>(group)) {
        for (int j = 0; j < group; ++j) {
          grp[static_cast<size_t>(j)] = kk[base + static_cast<size_t>(j)].ToFloat();
        }
        if (dtype == hquant::KvDtype::kInt4) {
          const hexllm::F16 s = hquant::KvQuantizeGroupInt4(grp.data(), group, payload);
          hquant::KvDequantGroupInt4(payload, s.ToFloat(), group, kq.data() + base);
        } else {
          const hexllm::F16 s = hquant::KvQuantizeGroupInt8(
              grp.data(), group, reinterpret_cast<int8_t*>(payload));
          hquant::KvDequantGroupInt8(reinterpret_cast<const int8_t*>(payload), s.ToFloat(),
                                     group, kq.data() + base);
        }
        for (int j = 0; j < group; ++j) {
          grp[static_cast<size_t>(j)] = v[base + static_cast<size_t>(j)].ToFloat();
        }
        if (dtype == hquant::KvDtype::kInt4) {
          const hexllm::F16 s = hquant::KvQuantizeGroupInt4(grp.data(), group, payload);
          hquant::KvDequantGroupInt4(payload, s.ToFloat(), group, vq.data() + base);
        } else {
          const hexllm::F16 s = hquant::KvQuantizeGroupInt8(
              grp.data(), group, reinterpret_cast<int8_t*>(payload));
          hquant::KvDequantGroupInt8(reinterpret_cast<const int8_t*>(payload), s.ToFloat(),
                                     group, vq.data() + base);
        }
      }
      hkern::FlashAttentionF16(dev, lut, hkern::SoftmaxVariant::kLut, q.data(), kq.data(),
                               vq.data(), o.data(), q_len, kv_len, d, scale);
      for (size_t i = 0; i < o.size(); ++i) {
        oh[i] = o[i].ToFloat();
      }
      return hquant::ComputeErrorStats(of, oh).rel_rms;
    };
    kv_int8_attention_err_ = kv_attn_err(hquant::KvDtype::kInt8);
    kv_int4_attention_err_ = kv_attn_err(hquant::KvDtype::kInt4);
  }

  // --- 3. Calibrate the per-dataset damage curves on the Table 1 anchor cells. ---
  const ModelConfig& llama1b = hllm::Llama32_1B();
  const Anchors& a = AnchorsFor(llama1b);
  const auto calibrate = [&](Dataset d, double f16_acc, double awq_acc, double qnn_acc,
                             double* lambda, double* p) {
    const TaskSet& tasks = CalibrationTasks(d);
    const double t_f16 = SolveThetaForAccuracy(tasks, f16_acc);
    const double t_awq = SolveThetaForAccuracy(tasks, awq_acc);
    const double t_qnn = SolveThetaForAccuracy(tasks, qnn_acc);
    const double d1 = t_f16 - t_awq;
    const double d2 = t_f16 - t_qnn;
    HEXLLM_CHECK(d1 > 0.0 && d2 > d1);
    *p = std::log(d2 / d1) / std::log(per_channel_q4_err_ / common_group_q4_err_);
    *lambda = d1 / std::pow(common_group_q4_err_, *p);
  };
  calibrate(Dataset::kMath500, a.math500, kAwqMath500, kQnnMath500, &lambda_math_, &p_math_);
  calibrate(Dataset::kGsm8k, a.gsm8k, kAwqGsm8k, kQnnGsm8k, &lambda_gsm_, &p_gsm_);

  // --- 4. Choice-task and perplexity sensitivities from their single anchor cells. ---
  const Anchors& qw = AnchorsFor(hllm::Qwen25_1_5B());
  choice_c_ = -std::log((kCommonGroupWino - 50.0) / (qw.wino - 50.0)) / common_group_q4_err_;
  kappa_qwen_ = (std::log(kCommonGroupWikiPpl) - std::log(qw.wiki_ppl)) /
                std::pow(common_group_q4_err_, 0.8);
  kappa_llama_ = (std::log(kAwqWikiPpl) - std::log(a.wiki_ppl)) /
                 std::pow(common_group_q4_err_, 0.8);
}

double CapabilityModel::DeployedWeightErr(const ModelConfig& m) const {
  double q4_params = 0.0;
  double q8_params = 0.0;
  for (const auto& mat : m.LayerMatrices()) {
    const double params = static_cast<double>(mat.k) * mat.n;
    if (mat.scheme == hquant::WeightScheme::kQ8_0) {
      q8_params += params;
    } else {
      q4_params += params;
    }
  }
  return (q4_params * tile_group_q4_err_ + q8_params * q8_err_) / (q4_params + q8_params);
}

double CapabilityModel::ThetaF16(const ModelConfig& m, Dataset d) const {
  const Anchors& a = AnchorsFor(m);
  const double acc = (d == Dataset::kMath500) ? a.math500 : a.gsm8k;
  return SolveThetaForAccuracy(CalibrationTasks(d), acc);
}

double CapabilityModel::SkillPenalty(Dataset d, double weight_err, double attn_err) const {
  const double lambda = (d == Dataset::kMath500) ? lambda_math_ : lambda_gsm_;
  const double p = (d == Dataset::kMath500) ? p_math_ : p_gsm_;
  return lambda * (std::pow(weight_err, p) + std::pow(attn_err, p));
}

double CapabilityModel::EffectiveTheta(const ModelConfig& m, Dataset d, double weight_err,
                                       double attn_err) const {
  return ThetaF16(m, d) - SkillPenalty(d, weight_err, attn_err);
}

double CapabilityModel::WikiPerplexity(const ModelConfig& m, double weight_err,
                                       double attn_err) const {
  const Anchors& a = AnchorsFor(m);
  const bool qwen = m.name.rfind("Qwen", 0) == 0;
  const double kappa = qwen ? kappa_qwen_ : kappa_llama_;
  const double err = weight_err + 0.5 * attn_err;
  return a.wiki_ppl * std::exp(kappa * std::pow(err, 0.8));
}

double CapabilityModel::ChoiceAccuracy(Dataset d, const ModelConfig& m, double weight_err,
                                       double attn_err) const {
  const Anchors& a = AnchorsFor(m);
  const double chance = (d == Dataset::kWinoGrande) ? 50.0 : 25.0;
  const double f16 = (d == Dataset::kWinoGrande) ? a.wino : a.mmlu;
  const double err = weight_err + 0.5 * attn_err;
  return chance + (f16 - chance) * std::exp(-choice_c_ * err);
}

}  // namespace htts

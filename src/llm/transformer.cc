#include "src/llm/transformer.h"

#include <cmath>
#include <cstring>

#include "src/base/check.h"
#include "src/exec/thread_pool.h"
#include "src/kernels/attention.h"
#include "src/kernels/lm_head.h"
#include "src/kernels/misc_ops.h"

namespace hllm {

using hexllm::F16;

Transformer::Transformer(hexsim::NpuDevice& dev, const ModelWeights& weights, int max_batch,
                         int max_context, int64_t kv_pool_blocks)
    : dev_(dev), weights_(weights), lut_(dev),
      kv_(weights.config.layers, weights.config.kv_dim(), max_batch, max_context,
          hkv::kDefaultBlockTokens, kv_pool_blocks),
      max_batch_(max_batch) {}

std::span<const hkern::ExpLut* const> Transformer::EnsureShardLuts(int slots) {
  dev_.EnsureShards(slots);
  if (slot_lut_ptrs_.empty()) {
    slot_lut_ptrs_.push_back(&lut_);
  }
  while (static_cast<int>(slot_lut_ptrs_.size()) < slots) {
    const int slot = static_cast<int>(slot_lut_ptrs_.size());
    shard_luts_.push_back(std::make_unique<hkern::ExpLut>(dev_.Shard(slot)));
    slot_lut_ptrs_.push_back(shard_luts_.back().get());
  }
  return std::span<const hkern::ExpLut* const>(slot_lut_ptrs_.data(),
                                               static_cast<size_t>(slots));
}

void Transformer::Step(std::span<const int> tokens, std::span<float> logits,
                       hkern::SoftmaxVariant exp_variant) {
  std::vector<int> seq_ids(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    seq_ids[i] = static_cast<int>(i);
  }
  StepSeqSubset(tokens, seq_ids, logits, exp_variant);
}

void Transformer::StepSeqs(std::span<const int> tokens, std::span<const int> seq_ids,
                           std::span<float> logits, hkern::SoftmaxVariant exp_variant) {
  HEXLLM_CHECK(tokens.size() == seq_ids.size());
  StepSeqSubset(tokens, seq_ids, logits, exp_variant);
}

void Transformer::Prefill(int seq, std::span<const int> tokens) {
  size_t done = 0;
  while (done < tokens.size()) {
    const size_t chunk = std::min<size_t>(hkern::kAttnQTile, tokens.size() - done);
    PrefillChunk(seq, tokens.subspan(done, chunk));
    done += chunk;
  }
}

void Transformer::PrefillChunk(int seq, std::span<const int> tokens) {
  const ModelConfig& c = weights_.config;
  const int rows = static_cast<int>(tokens.size());
  HEXLLM_CHECK(rows >= 1 && rows <= hkern::kAttnQTile);
  const int pos0 = kv_.length(seq);
  const int hidden = c.hidden;
  const int q_dim = c.q_dim();
  const int kv_dim = c.kv_dim();
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  std::vector<F16> x(static_cast<size_t>(rows) * hidden);
  for (int r = 0; r < rows; ++r) {
    HEXLLM_CHECK(tokens[static_cast<size_t>(r)] >= 0 &&
                 tokens[static_cast<size_t>(r)] < c.vocab);
    std::memcpy(x.data() + static_cast<size_t>(r) * hidden,
                weights_.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(r)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  std::vector<F16> xn(x.size());
  std::vector<F16> q(static_cast<size_t>(rows) * q_dim);
  std::vector<F16> k(static_cast<size_t>(rows) * kv_dim);
  std::vector<F16> v(static_cast<size_t>(rows) * kv_dim);
  std::vector<F16> attn_out(static_cast<size_t>(rows) * q_dim);
  std::vector<F16> proj(static_cast<size_t>(rows) * hidden);
  std::vector<F16> gate(static_cast<size_t>(rows) * c.ffn_hidden);
  std::vector<F16> up(static_cast<size_t>(rows) * c.ffn_hidden);
  std::vector<F16> act(static_cast<size_t>(rows) * c.ffn_hidden);
  const int kv_len = pos0 + rows;
  const auto slot_luts =
      EnsureShardLuts(std::min(hexec::PlannedSlots(c.heads), c.heads));

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(l)];
    hkern::RmsNormF16(dev_, x.data(), lw.attn_norm.data(), xn.data(), rows, hidden,
                      c.rms_eps);
    lw.wq.Forward(dev_, xn.data(), q.data(), rows);
    lw.wk.Forward(dev_, xn.data(), k.data(), rows);
    lw.wv.Forward(dev_, xn.data(), v.data(), rows);

    // RoPE per head with per-row positions, then append the chunk's K/V to the cache.
    for (int h = 0; h < c.heads; ++h) {
      for (int r = 0; r < rows; ++r) {
        hkern::RopeF16(dev_, q.data() + static_cast<size_t>(r) * q_dim + h * dh, 1, dh,
                       pos0 + r, c.rope_theta);
      }
    }
    for (int h = 0; h < c.kv_heads; ++h) {
      for (int r = 0; r < rows; ++r) {
        hkern::RopeF16(dev_, k.data() + static_cast<size_t>(r) * kv_dim + h * dh, 1, dh,
                       pos0 + r, c.rope_theta);
      }
    }
    for (int r = 0; r < rows; ++r) {
      std::memcpy(kv_.KeyRow(l, seq, pos0 + r), k.data() + static_cast<size_t>(r) * kv_dim,
                  static_cast<size_t>(kv_dim) * 2);
      std::memcpy(kv_.ValueRow(l, seq, pos0 + r), v.data() + static_cast<size_t>(r) * kv_dim,
                  static_cast<size_t>(kv_dim) * 2);
    }

    // Causal FlashAttention over the chunk: rows x [0, kv_len) with offset pos0, heads in
    // parallel across slots. K/V rows gather per position through the paged cache's block
    // tables (read-only here — the append loop above already ran).
    hkern::FlashAttentionHeadsF16(
        dev_, slot_luts, hkern::SoftmaxVariant::kLut, c.heads,
        [&](int h, F16* k_dst, F16* v_dst, F16* q_dst) {
          const int kvh = h / group;
          for (int t = 0; t < kv_len; ++t) {
            std::memcpy(k_dst + static_cast<size_t>(t) * dh,
                        kv_.KeyRowAt(l, seq, t) + kvh * dh, static_cast<size_t>(dh) * 2);
            std::memcpy(v_dst + static_cast<size_t>(t) * dh,
                        kv_.ValueRowAt(l, seq, t) + kvh * dh, static_cast<size_t>(dh) * 2);
          }
          for (int r = 0; r < rows; ++r) {
            std::memcpy(q_dst + static_cast<size_t>(r) * dh,
                        q.data() + static_cast<size_t>(r) * q_dim + h * dh,
                        static_cast<size_t>(dh) * 2);
          }
        },
        attn_out.data(), q_dim, rows, kv_len, dh, scale, /*q_pos_offset=*/pos0);

    lw.wo.Forward(dev_, attn_out.data(), proj.data(), rows);
    hkern::AddF16(dev_, x.data(), proj.data(), x.data(), static_cast<int64_t>(rows) * hidden);
    hkern::RmsNormF16(dev_, x.data(), lw.ffn_norm.data(), xn.data(), rows, hidden, c.rms_eps);
    lw.w_gate.Forward(dev_, xn.data(), gate.data(), rows);
    lw.w_up.Forward(dev_, xn.data(), up.data(), rows);
    hkern::SiluMulF16(dev_, gate.data(), up.data(), act.data(),
                      static_cast<int64_t>(rows) * c.ffn_hidden);
    lw.w_down.Forward(dev_, act.data(), proj.data(), rows);
    hkern::AddF16(dev_, x.data(), proj.data(), x.data(), static_cast<int64_t>(rows) * hidden);
  }

  for (int r = 0; r < rows; ++r) {
    kv_.Advance(seq);
  }
}

void Transformer::StepSeqSubset(std::span<const int> tokens, std::span<const int> seq_ids,
                                std::span<float> logits,
                                hkern::SoftmaxVariant exp_variant) {
  const ModelConfig& c = weights_.config;
  const int batch = static_cast<int>(tokens.size());
  HEXLLM_CHECK(batch >= 1 && batch <= max_batch_);
  HEXLLM_CHECK(seq_ids.size() == tokens.size());
  HEXLLM_CHECK(logits.size() == static_cast<size_t>(batch) * c.vocab);
  const int hidden = c.hidden;
  const int q_dim = c.q_dim();
  const int kv_dim = c.kv_dim();
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;

  // Embedding lookup on the CPU.
  std::vector<F16> x(static_cast<size_t>(batch) * hidden);
  for (int b = 0; b < batch; ++b) {
    HEXLLM_CHECK(tokens[static_cast<size_t>(b)] >= 0 &&
                 tokens[static_cast<size_t>(b)] < c.vocab);
    std::memcpy(x.data() + static_cast<size_t>(b) * hidden,
                weights_.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(b)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  std::vector<F16> xn(x.size());
  std::vector<F16> q(static_cast<size_t>(batch) * q_dim);
  std::vector<F16> k(static_cast<size_t>(batch) * kv_dim);
  std::vector<F16> v(static_cast<size_t>(batch) * kv_dim);
  std::vector<F16> attn_out(static_cast<size_t>(batch) * q_dim);
  std::vector<F16> proj(static_cast<size_t>(batch) * hidden);
  std::vector<F16> gate(static_cast<size_t>(batch) * c.ffn_hidden);
  std::vector<F16> up(static_cast<size_t>(batch) * c.ffn_hidden);
  std::vector<F16> act(static_cast<size_t>(batch) * c.ffn_hidden);

  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(l)];

    // --- attention block ---
    hkern::RmsNormF16(dev_, x.data(), lw.attn_norm.data(), xn.data(), batch, hidden,
                      c.rms_eps);
    lw.wq.Forward(dev_, xn.data(), q.data(), batch);
    lw.wk.Forward(dev_, xn.data(), k.data(), batch);
    lw.wv.Forward(dev_, xn.data(), v.data(), batch);

    for (int b = 0; b < batch; ++b) {
      const int seq = seq_ids[static_cast<size_t>(b)];
      const int pos = kv_.length(seq);
      for (int h = 0; h < c.heads; ++h) {
        hkern::RopeF16(dev_, q.data() + static_cast<size_t>(b) * q_dim + h * dh, 1, dh, pos,
                       c.rope_theta);
      }
      for (int h = 0; h < c.kv_heads; ++h) {
        hkern::RopeF16(dev_, k.data() + static_cast<size_t>(b) * kv_dim + h * dh, 1, dh, pos,
                       c.rope_theta);
      }
      std::memcpy(kv_.KeyRow(l, seq, pos), k.data() + static_cast<size_t>(b) * kv_dim,
                  static_cast<size_t>(kv_dim) * 2);
      std::memcpy(kv_.ValueRow(l, seq, pos), v.data() + static_cast<size_t>(b) * kv_dim,
                  static_cast<size_t>(kv_dim) * 2);
    }

    // Per-row parallel attention: each batch row is an independent query against its own
    // sequence's KV, so rows fan out across slots, each charging its slot's shard device
    // (per-slot exp LUT included). The KV cache is read-only in this region — the append
    // loop above already ran — and attn_out rows are disjoint, so results are bit-identical
    // at any lane count. Shard accounting merges back right after the loop.
    {
      const int slots = hexec::PlannedSlots(batch);
      const auto slot_luts = EnsureShardLuts(slots);
      hexec::ParallelFor(
          batch,
          [&](int64_t b_begin, int64_t b_end, int slot) {
            hexsim::NpuDevice& d = dev_.ForSlot(slot);
            const hkern::ExpLut& lut = *slot_luts[static_cast<size_t>(slot)];
            for (int64_t b = b_begin; b < b_end; ++b) {
              const int seq = seq_ids[static_cast<size_t>(b)];
              const int kv_len = kv_.length(seq) + 1;  // includes the row just written
              // Block-table gather: head views copied contiguous for the attention kernel
              // (on the phone the KV cache is stored head-major per block; the copy is a
              // simulation convenience).
              std::vector<F16> k_head(static_cast<size_t>(kv_len) * dh);
              std::vector<F16> v_head(static_cast<size_t>(kv_len) * dh);
              for (int h = 0; h < c.heads; ++h) {
                const int kvh = h / group;
                for (int t = 0; t < kv_len; ++t) {
                  std::memcpy(k_head.data() + static_cast<size_t>(t) * dh,
                              kv_.KeyRowAt(l, seq, t) + kvh * dh,
                              static_cast<size_t>(dh) * 2);
                  std::memcpy(v_head.data() + static_cast<size_t>(t) * dh,
                              kv_.ValueRowAt(l, seq, t) + kvh * dh,
                              static_cast<size_t>(dh) * 2);
                }
                hkern::FlashAttentionF16(
                    d, lut, exp_variant, q.data() + static_cast<size_t>(b) * q_dim + h * dh,
                    k_head.data(), v_head.data(),
                    attn_out.data() + static_cast<size_t>(b) * q_dim + h * dh,
                    /*q_len=*/1, kv_len, dh, scale);
              }
            }
          },
          slots);
      dev_.MergeShards();
    }

    lw.wo.Forward(dev_, attn_out.data(), proj.data(), batch);
    hkern::AddF16(dev_, x.data(), proj.data(), x.data(), static_cast<int64_t>(batch) * hidden);

    // --- FFN block ---
    hkern::RmsNormF16(dev_, x.data(), lw.ffn_norm.data(), xn.data(), batch, hidden, c.rms_eps);
    lw.w_gate.Forward(dev_, xn.data(), gate.data(), batch);
    lw.w_up.Forward(dev_, xn.data(), up.data(), batch);
    hkern::SiluMulF16(dev_, gate.data(), up.data(), act.data(),
                      static_cast<int64_t>(batch) * c.ffn_hidden);
    lw.w_down.Forward(dev_, act.data(), proj.data(), batch);
    hkern::AddF16(dev_, x.data(), proj.data(), x.data(), static_cast<int64_t>(batch) * hidden);
  }

  for (size_t i = 0; i < seq_ids.size(); ++i) {
    kv_.Advance(seq_ids[i]);
  }

  // Final norm + CPU lm_head.
  hkern::RmsNormF16(dev_, x.data(), weights_.final_norm.data(), xn.data(), batch, hidden,
                    c.rms_eps);
  hkern::LmHeadForward(xn.data(), weights_.lm_head.data(), logits.data(), batch, hidden,
                       c.vocab);
}

}  // namespace hllm

#include "src/llm/transformer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/exec/thread_pool.h"
#include "src/kernels/attention.h"
#include "src/kernels/lm_head.h"
#include "src/kernels/misc_ops.h"

namespace hllm {

using hexllm::F16;

namespace {

// Capacity of the per-step scratch arena: every step/prefill-chunk buffer (embedding rows,
// normed rows, QKV, attention output, FFN intermediates, float hidden for the lm_head) plus
// the worst-case padded-GEMM staging frame, with 64-byte alignment slack per allocation.
// Sized once so steady-state decode never grows it (docs/performance.md).
int64_t StepWorkspaceBytes(const ModelConfig& c, int max_batch) {
  const int64_t rows = std::max<int64_t>(max_batch, hkern::kAttnQTile);
  const int64_t f16_elems =
      rows * (3 * static_cast<int64_t>(c.hidden) + 2 * c.q_dim() + 2 * c.kv_dim() +
              3 * static_cast<int64_t>(c.ffn_hidden));
  const int64_t float_elems = rows * static_cast<int64_t>(c.hidden);
  const int64_t dim_max =
      std::max<int64_t>({static_cast<int64_t>(c.hidden), c.q_dim(), c.kv_dim(),
                         static_cast<int64_t>(c.ffn_hidden)});
  const int64_t staging_elems = 2 * hexllm::RoundUp(rows, 32) * dim_max;
  return (f16_elems + staging_elems) * 2 + float_elems * 4 + 64 * 32;
}

}  // namespace

Transformer::Transformer(hexsim::NpuDevice& dev, const ModelWeights& weights, int max_batch,
                         int max_context, int64_t kv_pool_blocks, hquant::KvDtype kv_dtype,
                         int kv_quant_group, int max_step_rows)
    : dev_(dev), weights_(weights), lut_(dev),
      kv_(weights.config.layers, weights.config.kv_dim(), max_batch, max_context,
          hkv::kDefaultBlockTokens, kv_pool_blocks, hquant::KvDtypeFromEnv(kv_dtype),
          kv_quant_group),
      max_batch_(max_batch),
      max_rows_(std::max(max_step_rows, max_batch)),
      ws_(StepWorkspaceBytes(weights.config, std::max(max_step_rows, max_batch))) {
  if (kv_.dtype() != hquant::KvDtype::kF16) {
    // Per-kv-head attention views slice rows at head boundaries, so quant groups must not
    // straddle heads.
    HEXLLM_CHECK(weights.config.head_dim % kv_.quant_group() == 0);
  }
  kv_.ReserveSeqs(max_batch);
  identity_seq_ids_.resize(static_cast<size_t>(max_batch));
  std::iota(identity_seq_ids_.begin(), identity_seq_ids_.end(), 0);
  span_row0_.reserve(static_cast<size_t>(max_batch));
  // lm_head converted to float once and transposed to row-major [hidden x vocab]: the
  // blocked CPU lm_head then converts each hidden row once per step and streams contiguous
  // vocab slices. F16::ToFloat is exact and the per-logit accumulation order is unchanged,
  // so the logits are bit-identical to the all-F16 path.
  const ModelConfig& c = weights_.config;
  lm_head_f32_.resize(static_cast<size_t>(c.hidden) * c.vocab);
  for (int64_t v = 0; v < c.vocab; ++v) {
    for (int64_t i = 0; i < c.hidden; ++i) {
      lm_head_f32_[static_cast<size_t>(i * c.vocab + v)] =
          weights_.lm_head[static_cast<size_t>(v * c.hidden + i)].ToFloat();
    }
  }
  rope_inv_freq_ = hkern::RopeInvFreq(c.head_dim, c.rope_theta);
  const size_t cap = static_cast<size_t>(kv_.blocks_per_seq_capacity());
  if (kv_.dtype() == hquant::KvDtype::kF16) {
    layer_k_ptrs_.resize(cap);
    layer_v_ptrs_.resize(cap);
  } else {
    layer_kq_ptrs_.resize(cap);
    layer_vq_ptrs_.resize(cap);
  }
}

hkern::PagedQKvHeadView Transformer::QuantHeadView(const uint8_t* const* k_bases,
                                                   const uint8_t* const* v_bases,
                                                   int kv_head) const {
  const int dh = weights_.config.head_dim;
  const int64_t head_start = static_cast<int64_t>(kv_head) * dh;
  hkern::PagedQKvHeadView view;
  view.k_blocks = k_bases;
  view.v_blocks = v_bases;
  view.block_tokens = kv_.block_tokens();
  view.row_bytes = kv_.row_bytes();
  view.payload_offset = hquant::KvPayloadBytes(kv_.dtype(), head_start);
  view.scales_offset = kv_.scales_offset() + (head_start / kv_.quant_group()) * 2;
  view.group = kv_.quant_group();
  view.dtype = kv_.dtype();
  return view;
}

void Transformer::FaultAttendedBlocks(int seq, int q_len, int kv_len, int q_pos_offset) {
  if (!kv_.offload_enabled()) {
    return;
  }
  attended_scratch_.clear();
  hkern::AppendAttendedBlocks(win(), q_len, kv_len, q_pos_offset, kv_.block_tokens(),
                              &attended_scratch_);
  kv_.EnsureResidentTableBlocks(seq, attended_scratch_);
}

std::span<const hkern::ExpLut* const> Transformer::EnsureShardLuts(int slots) {
  dev_.EnsureShards(slots);
  if (slot_lut_ptrs_.empty()) {
    slot_lut_ptrs_.push_back(&lut_);
  }
  while (static_cast<int>(slot_lut_ptrs_.size()) < slots) {
    const int slot = static_cast<int>(slot_lut_ptrs_.size());
    shard_luts_.push_back(std::make_unique<hkern::ExpLut>(dev_.Shard(slot)));
    slot_lut_ptrs_.push_back(shard_luts_.back().get());
  }
  return std::span<const hkern::ExpLut* const>(slot_lut_ptrs_.data(),
                                               static_cast<size_t>(slots));
}

void Transformer::EnsureSlotScratch(int slots) {
  const size_t cap = static_cast<size_t>(kv_.blocks_per_seq_capacity());
  if (kv_.dtype() == hquant::KvDtype::kF16) {
    while (static_cast<int>(slot_k_ptrs_.size()) < slots) {
      slot_k_ptrs_.emplace_back(cap);
      slot_v_ptrs_.emplace_back(cap);
    }
  } else {
    while (static_cast<int>(slot_kq_ptrs_.size()) < slots) {
      slot_kq_ptrs_.emplace_back(cap);
      slot_vq_ptrs_.emplace_back(cap);
    }
  }
}

void Transformer::Step(std::span<const int> tokens, std::span<float> logits,
                       hkern::SoftmaxVariant exp_variant) {
  HEXLLM_CHECK(static_cast<int>(tokens.size()) <= max_batch_);
  StepSeqSubset(tokens,
                std::span<const int>(identity_seq_ids_.data(), tokens.size()), logits,
                exp_variant);
}

void Transformer::StepSeqs(std::span<const int> tokens, std::span<const int> seq_ids,
                           std::span<float> logits, hkern::SoftmaxVariant exp_variant) {
  HEXLLM_CHECK(tokens.size() == seq_ids.size());
  StepSeqSubset(tokens, seq_ids, logits, exp_variant);
}

void Transformer::StepSpans(std::span<const int> tokens, std::span<const int> seq_ids,
                            std::span<const int> span_rows, std::span<float> logits,
                            hkern::SoftmaxVariant exp_variant) {
  const ModelConfig& c = weights_.config;
  const int spans = static_cast<int>(seq_ids.size());
  HEXLLM_CHECK(spans >= 1 && spans <= max_batch_);
  HEXLLM_CHECK(span_rows.size() == seq_ids.size());
  span_row0_.resize(static_cast<size_t>(spans));
  int64_t total = 0;
  for (int s = 0; s < spans; ++s) {
    HEXLLM_CHECK(span_rows[static_cast<size_t>(s)] >= 1);
    span_row0_[static_cast<size_t>(s)] = static_cast<int>(total);
    total += span_rows[static_cast<size_t>(s)];
  }
  const int rows = static_cast<int>(total);
  HEXLLM_CHECK(rows <= max_rows_);
  HEXLLM_CHECK(tokens.size() == static_cast<size_t>(rows));
  HEXLLM_CHECK(logits.size() == static_cast<size_t>(rows) * c.vocab);
  const int hidden = c.hidden;
  const int q_dim = c.q_dim();
  const int kv_dim = c.kv_dim();
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;

  ws_.Reset();
  F16* x = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* xn = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* q = ws_.Alloc<F16>(static_cast<int64_t>(rows) * q_dim);
  F16* k = ws_.Alloc<F16>(static_cast<int64_t>(rows) * kv_dim);
  F16* v = ws_.Alloc<F16>(static_cast<int64_t>(rows) * kv_dim);
  F16* attn_out = ws_.Alloc<F16>(static_cast<int64_t>(rows) * q_dim);
  F16* proj = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* gate = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);
  F16* up = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);
  F16* act = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);

  for (int r = 0; r < rows; ++r) {
    HEXLLM_CHECK(tokens[static_cast<size_t>(r)] >= 0 &&
                 tokens[static_cast<size_t>(r)] < c.vocab);
    std::memcpy(x + static_cast<int64_t>(r) * hidden,
                weights_.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(r)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const int slots = hexec::PlannedSlots(spans);
  const auto slot_luts = EnsureShardLuts(slots);
  EnsureSlotScratch(slots);

  // Tiered offload: promote every block attention will stage, once per step — blocks hold
  // all layers' rows, so the attended set is layer-invariant.
  for (int s = 0; s < spans; ++s) {
    const int seq = seq_ids[static_cast<size_t>(s)];
    const int n = span_rows[static_cast<size_t>(s)];
    FaultAttendedBlocks(seq, n, kv_.length(seq) + n, /*q_pos_offset=*/kv_.length(seq));
  }

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(l)];

    // --- attention block: every span's rows share the batched norms and GEMMs ---
    hkern::RmsNormF16(dev_, x, lw.attn_norm.data(), xn, rows, hidden, c.rms_eps);
    lw.wq.Forward(dev_, xn, q, rows, &ws_);
    lw.wk.Forward(dev_, xn, k, rows, &ws_);
    lw.wv.Forward(dev_, xn, v, rows, &ws_);

    // Per-row RoPE at the row's absolute position, then append each span's K/V rows to
    // its sequence (the table length itself only advances after the layer loop).
    for (int s = 0; s < spans; ++s) {
      const int seq = seq_ids[static_cast<size_t>(s)];
      const int pos0 = kv_.length(seq);
      const int n = span_rows[static_cast<size_t>(s)];
      const int r0 = span_row0_[static_cast<size_t>(s)];
      for (int r = 0; r < n; ++r) {
        hkern::RopeHeadsF16(dev_, q + static_cast<int64_t>(r0 + r) * q_dim, c.heads, dh,
                            pos0 + r, rope_inv_freq_.data());
        hkern::RopeHeadsF16(dev_, k + static_cast<int64_t>(r0 + r) * kv_dim, c.kv_heads, dh,
                            pos0 + r, rope_inv_freq_.data());
        kv_.WriteKeyRow(l, seq, pos0 + r, k + static_cast<int64_t>(r0 + r) * kv_dim);
        kv_.WriteValueRow(l, seq, pos0 + r, v + static_cast<int64_t>(r0 + r) * kv_dim);
      }
    }

    // Per-span parallel causal attention: each span queries its own sequence's KV with
    // q_pos_offset at the span base, so row r sees [0, pos0 + r]. The KV cache is
    // read-only in this region and attn_out rows are disjoint, so results are
    // bit-identical at any lane count (same argument as StepSeqSubset).
    const bool kv_quant = kv_.dtype() != hquant::KvDtype::kF16;
    hexec::ParallelFor(
        spans,
        [&](int64_t s_begin, int64_t s_end, int slot) {
          hexsim::NpuDevice& d = dev_.ForSlot(slot);
          const hkern::ExpLut& lut = *slot_luts[static_cast<size_t>(slot)];
          for (int64_t s = s_begin; s < s_end; ++s) {
            const int seq = seq_ids[static_cast<size_t>(s)];
            const int n = span_rows[static_cast<size_t>(s)];
            const int r0 = span_row0_[static_cast<size_t>(s)];
            const int pos0 = kv_.length(seq);
            const int kv_len = pos0 + n;  // includes the rows just written
            if (kv_quant) {
              const uint8_t** k_bases = slot_kq_ptrs_[static_cast<size_t>(slot)].data();
              const uint8_t** v_bases = slot_vq_ptrs_[static_cast<size_t>(slot)].data();
              kv_.FillQuantBlockPointers(l, seq, kv_len, k_bases, v_bases);
              for (int h = 0; h < c.heads; ++h) {
                const hkern::PagedQKvHeadView view =
                    QuantHeadView(k_bases, v_bases, h / group);
                hkern::FlashAttentionPagedQ(
                    d, lut, exp_variant, q + static_cast<int64_t>(r0) * q_dim + h * dh,
                    q_dim, view, attn_out + static_cast<int64_t>(r0) * q_dim + h * dh,
                    q_dim, /*q_len=*/n, kv_len, dh, scale, /*q_pos_offset=*/pos0, win());
              }
              continue;
            }
            const F16** k_bases = slot_k_ptrs_[static_cast<size_t>(slot)].data();
            const F16** v_bases = slot_v_ptrs_[static_cast<size_t>(slot)].data();
            kv_.FillBlockPointers(l, seq, kv_len, k_bases, v_bases);
            hkern::PagedKvHeadView view;
            view.k_blocks = k_bases;
            view.v_blocks = v_bases;
            view.block_tokens = kv_.block_tokens();
            view.row_stride = kv_.row_stride();
            for (int h = 0; h < c.heads; ++h) {
              view.head_offset = static_cast<int64_t>(h / group) * dh;
              hkern::FlashAttentionPagedF16(
                  d, lut, exp_variant, q + static_cast<int64_t>(r0) * q_dim + h * dh, q_dim,
                  view, attn_out + static_cast<int64_t>(r0) * q_dim + h * dh, q_dim,
                  /*q_len=*/n, kv_len, dh, scale, /*q_pos_offset=*/pos0, win());
            }
          }
        },
        slots);
    dev_.MergeShards();

    lw.wo.Forward(dev_, attn_out, proj, rows, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(rows) * hidden);

    // --- FFN block ---
    hkern::RmsNormF16(dev_, x, lw.ffn_norm.data(), xn, rows, hidden, c.rms_eps);
    lw.w_gate.Forward(dev_, xn, gate, rows, &ws_);
    lw.w_up.Forward(dev_, xn, up, rows, &ws_);
    hkern::SiluMulF16(dev_, gate, up, act, static_cast<int64_t>(rows) * c.ffn_hidden);
    lw.w_down.Forward(dev_, act, proj, rows, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(rows) * hidden);
  }

  for (int s = 0; s < spans; ++s) {
    for (int r = 0; r < span_rows[static_cast<size_t>(s)]; ++r) {
      kv_.Advance(seq_ids[static_cast<size_t>(s)]);
    }
  }

  hkern::RmsNormF16(dev_, x, weights_.final_norm.data(), xn, rows, hidden, c.rms_eps);
  float* xf = ws_.Alloc<float>(static_cast<int64_t>(rows) * hidden);
  for (int64_t i = 0; i < static_cast<int64_t>(rows) * hidden; ++i) {
    xf[i] = xn[i].ToFloat();
  }
  hkern::LmHeadForwardF32W(xf, lm_head_f32_.data(), logits.data(), rows, hidden, c.vocab);
}

void Transformer::Prefill(int seq, std::span<const int> tokens) {
  size_t done = 0;
  while (done < tokens.size()) {
    const size_t chunk = std::min<size_t>(hkern::kAttnQTile, tokens.size() - done);
    PrefillChunk(seq, tokens.subspan(done, chunk));
    done += chunk;
  }
}

void Transformer::PrefillChunk(int seq, std::span<const int> tokens) {
  const ModelConfig& c = weights_.config;
  const int rows = static_cast<int>(tokens.size());
  HEXLLM_CHECK(rows >= 1 && rows <= hkern::kAttnQTile);
  const int pos0 = kv_.length(seq);
  const int hidden = c.hidden;
  const int q_dim = c.q_dim();
  const int kv_dim = c.kv_dim();
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  ws_.Reset();
  F16* x = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* xn = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* q = ws_.Alloc<F16>(static_cast<int64_t>(rows) * q_dim);
  F16* k = ws_.Alloc<F16>(static_cast<int64_t>(rows) * kv_dim);
  F16* v = ws_.Alloc<F16>(static_cast<int64_t>(rows) * kv_dim);
  F16* attn_out = ws_.Alloc<F16>(static_cast<int64_t>(rows) * q_dim);
  F16* proj = ws_.Alloc<F16>(static_cast<int64_t>(rows) * hidden);
  F16* gate = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);
  F16* up = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);
  F16* act = ws_.Alloc<F16>(static_cast<int64_t>(rows) * c.ffn_hidden);

  for (int r = 0; r < rows; ++r) {
    HEXLLM_CHECK(tokens[static_cast<size_t>(r)] >= 0 &&
                 tokens[static_cast<size_t>(r)] < c.vocab);
    std::memcpy(x + static_cast<int64_t>(r) * hidden,
                weights_.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(r)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  const int kv_len = pos0 + rows;
  const int slots = std::min(hexec::PlannedSlots(c.heads), c.heads);
  const auto slot_luts = EnsureShardLuts(slots);
  FaultAttendedBlocks(seq, rows, kv_len, /*q_pos_offset=*/pos0);

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(l)];
    hkern::RmsNormF16(dev_, x, lw.attn_norm.data(), xn, rows, hidden, c.rms_eps);
    lw.wq.Forward(dev_, xn, q, rows, &ws_);
    lw.wk.Forward(dev_, xn, k, rows, &ws_);
    lw.wv.Forward(dev_, xn, v, rows, &ws_);

    // RoPE with per-row positions (all heads of a row share the hoisted angles), then
    // append the chunk's K/V rows to the cache.
    for (int r = 0; r < rows; ++r) {
      hkern::RopeHeadsF16(dev_, q + static_cast<int64_t>(r) * q_dim, c.heads, dh, pos0 + r,
                          rope_inv_freq_.data());
      hkern::RopeHeadsF16(dev_, k + static_cast<int64_t>(r) * kv_dim, c.kv_heads, dh,
                          pos0 + r, rope_inv_freq_.data());
    }
    for (int r = 0; r < rows; ++r) {
      kv_.WriteKeyRow(l, seq, pos0 + r, k + static_cast<int64_t>(r) * kv_dim);
      kv_.WriteValueRow(l, seq, pos0 + r, v + static_cast<int64_t>(r) * kv_dim);
    }

    // Causal FlashAttention over the chunk: rows x [0, kv_len) with offset pos0, heads in
    // parallel across slots, each reading K/V in place through the block table resolved
    // once per layer (the append loop above already ran, so the table is read-only here).
    const bool kv_quant = kv_.dtype() != hquant::KvDtype::kF16;
    if (kv_quant) {
      kv_.FillQuantBlockPointers(l, seq, kv_len, layer_kq_ptrs_.data(),
                                 layer_vq_ptrs_.data());
    } else {
      kv_.FillBlockPointers(l, seq, kv_len, layer_k_ptrs_.data(), layer_v_ptrs_.data());
    }
    hexec::ParallelFor(
        c.heads,
        [&](int64_t h_begin, int64_t h_end, int slot) {
          hexsim::NpuDevice& d = dev_.ForSlot(slot);
          const hkern::ExpLut& lut = *slot_luts[static_cast<size_t>(slot)];
          for (int64_t h = h_begin; h < h_end; ++h) {
            if (kv_quant) {
              const hkern::PagedQKvHeadView view = QuantHeadView(
                  layer_kq_ptrs_.data(), layer_vq_ptrs_.data(), static_cast<int>(h / group));
              hkern::FlashAttentionPagedQ(d, lut, hkern::SoftmaxVariant::kLut, q + h * dh,
                                          q_dim, view, attn_out + h * dh, q_dim, rows,
                                          kv_len, dh, scale, /*q_pos_offset=*/pos0, win());
              continue;
            }
            hkern::PagedKvHeadView view;
            view.k_blocks = layer_k_ptrs_.data();
            view.v_blocks = layer_v_ptrs_.data();
            view.block_tokens = kv_.block_tokens();
            view.row_stride = kv_.row_stride();
            view.head_offset = static_cast<int64_t>(h / group) * dh;
            hkern::FlashAttentionPagedF16(d, lut, hkern::SoftmaxVariant::kLut, q + h * dh,
                                          q_dim, view, attn_out + h * dh, q_dim, rows,
                                          kv_len, dh, scale, /*q_pos_offset=*/pos0, win());
          }
        },
        slots);
    dev_.MergeShards();

    lw.wo.Forward(dev_, attn_out, proj, rows, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(rows) * hidden);
    hkern::RmsNormF16(dev_, x, lw.ffn_norm.data(), xn, rows, hidden, c.rms_eps);
    lw.w_gate.Forward(dev_, xn, gate, rows, &ws_);
    lw.w_up.Forward(dev_, xn, up, rows, &ws_);
    hkern::SiluMulF16(dev_, gate, up, act, static_cast<int64_t>(rows) * c.ffn_hidden);
    lw.w_down.Forward(dev_, act, proj, rows, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(rows) * hidden);
  }

  for (int r = 0; r < rows; ++r) {
    kv_.Advance(seq);
  }
}

void Transformer::StepSeqSubset(std::span<const int> tokens, std::span<const int> seq_ids,
                                std::span<float> logits,
                                hkern::SoftmaxVariant exp_variant) {
  const ModelConfig& c = weights_.config;
  const int batch = static_cast<int>(tokens.size());
  HEXLLM_CHECK(batch >= 1 && batch <= max_batch_);
  HEXLLM_CHECK(seq_ids.size() == tokens.size());
  HEXLLM_CHECK(logits.size() == static_cast<size_t>(batch) * c.vocab);
  const int hidden = c.hidden;
  const int q_dim = c.q_dim();
  const int kv_dim = c.kv_dim();
  const int dh = c.head_dim;
  const int group = c.heads / c.kv_heads;

  // All step scratch from the persistent arena — no heap traffic in steady state.
  ws_.Reset();
  F16* x = ws_.Alloc<F16>(static_cast<int64_t>(batch) * hidden);
  F16* xn = ws_.Alloc<F16>(static_cast<int64_t>(batch) * hidden);
  F16* q = ws_.Alloc<F16>(static_cast<int64_t>(batch) * q_dim);
  F16* k = ws_.Alloc<F16>(static_cast<int64_t>(batch) * kv_dim);
  F16* v = ws_.Alloc<F16>(static_cast<int64_t>(batch) * kv_dim);
  F16* attn_out = ws_.Alloc<F16>(static_cast<int64_t>(batch) * q_dim);
  F16* proj = ws_.Alloc<F16>(static_cast<int64_t>(batch) * hidden);
  F16* gate = ws_.Alloc<F16>(static_cast<int64_t>(batch) * c.ffn_hidden);
  F16* up = ws_.Alloc<F16>(static_cast<int64_t>(batch) * c.ffn_hidden);
  F16* act = ws_.Alloc<F16>(static_cast<int64_t>(batch) * c.ffn_hidden);

  // Embedding lookup on the CPU.
  for (int b = 0; b < batch; ++b) {
    HEXLLM_CHECK(tokens[static_cast<size_t>(b)] >= 0 &&
                 tokens[static_cast<size_t>(b)] < c.vocab);
    std::memcpy(x + static_cast<int64_t>(b) * hidden,
                weights_.embedding.data() +
                    static_cast<size_t>(tokens[static_cast<size_t>(b)]) * hidden,
                static_cast<size_t>(hidden) * 2);
  }

  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  const int slots = hexec::PlannedSlots(batch);
  const auto slot_luts = EnsureShardLuts(slots);
  EnsureSlotScratch(slots);

  // Tiered offload: promote the attended blocks once per step, on this (bookkeeping)
  // thread — the parallel lanes below must never mutate pool residency.
  for (int b = 0; b < batch; ++b) {
    const int seq = seq_ids[static_cast<size_t>(b)];
    FaultAttendedBlocks(seq, /*q_len=*/1, kv_.length(seq) + 1, /*q_pos_offset=*/-1);
  }

  for (int l = 0; l < c.layers; ++l) {
    const LayerWeights& lw = weights_.layers[static_cast<size_t>(l)];

    // --- attention block ---
    hkern::RmsNormF16(dev_, x, lw.attn_norm.data(), xn, batch, hidden, c.rms_eps);
    lw.wq.Forward(dev_, xn, q, batch, &ws_);
    lw.wk.Forward(dev_, xn, k, batch, &ws_);
    lw.wv.Forward(dev_, xn, v, batch, &ws_);

    for (int b = 0; b < batch; ++b) {
      const int seq = seq_ids[static_cast<size_t>(b)];
      const int pos = kv_.length(seq);
      hkern::RopeHeadsF16(dev_, q + static_cast<int64_t>(b) * q_dim, c.heads, dh, pos,
                          rope_inv_freq_.data());
      hkern::RopeHeadsF16(dev_, k + static_cast<int64_t>(b) * kv_dim, c.kv_heads, dh, pos,
                          rope_inv_freq_.data());
      kv_.WriteKeyRow(l, seq, pos, k + static_cast<int64_t>(b) * kv_dim);
      kv_.WriteValueRow(l, seq, pos, v + static_cast<int64_t>(b) * kv_dim);
    }

    // Per-row parallel attention: each batch row is an independent query against its own
    // sequence's KV, so rows fan out across slots, each charging its slot's shard device
    // (per-slot exp LUT included). Each lane resolves its sequences' block tables into its
    // own pointer scratch and the kernel reads K/V rows in place — no gather copies. The
    // KV cache is read-only in this region (the append loop above already ran) and
    // attn_out rows are disjoint, so results are bit-identical at any lane count. Shard
    // accounting merges back right after the loop.
    const bool kv_quant = kv_.dtype() != hquant::KvDtype::kF16;
    hexec::ParallelFor(
        batch,
        [&](int64_t b_begin, int64_t b_end, int slot) {
          hexsim::NpuDevice& d = dev_.ForSlot(slot);
          const hkern::ExpLut& lut = *slot_luts[static_cast<size_t>(slot)];
          if (kv_quant) {
            const uint8_t** k_bases = slot_kq_ptrs_[static_cast<size_t>(slot)].data();
            const uint8_t** v_bases = slot_vq_ptrs_[static_cast<size_t>(slot)].data();
            for (int64_t b = b_begin; b < b_end; ++b) {
              const int seq = seq_ids[static_cast<size_t>(b)];
              const int kv_len = kv_.length(seq) + 1;  // includes the row just written
              kv_.FillQuantBlockPointers(l, seq, kv_len, k_bases, v_bases);
              for (int h = 0; h < c.heads; ++h) {
                const hkern::PagedQKvHeadView view =
                    QuantHeadView(k_bases, v_bases, h / group);
                hkern::FlashAttentionPagedQ(
                    d, lut, exp_variant, q + static_cast<int64_t>(b) * q_dim + h * dh, q_dim,
                    view, attn_out + static_cast<int64_t>(b) * q_dim + h * dh, q_dim,
                    /*q_len=*/1, kv_len, dh, scale, /*q_pos_offset=*/-1, win());
              }
            }
            return;
          }
          const F16** k_bases = slot_k_ptrs_[static_cast<size_t>(slot)].data();
          const F16** v_bases = slot_v_ptrs_[static_cast<size_t>(slot)].data();
          for (int64_t b = b_begin; b < b_end; ++b) {
            const int seq = seq_ids[static_cast<size_t>(b)];
            const int kv_len = kv_.length(seq) + 1;  // includes the row just written
            kv_.FillBlockPointers(l, seq, kv_len, k_bases, v_bases);
            hkern::PagedKvHeadView view;
            view.k_blocks = k_bases;
            view.v_blocks = v_bases;
            view.block_tokens = kv_.block_tokens();
            view.row_stride = kv_.row_stride();
            for (int h = 0; h < c.heads; ++h) {
              view.head_offset = static_cast<int64_t>(h / group) * dh;
              hkern::FlashAttentionPagedF16(
                  d, lut, exp_variant, q + static_cast<int64_t>(b) * q_dim + h * dh, q_dim,
                  view, attn_out + static_cast<int64_t>(b) * q_dim + h * dh, q_dim,
                  /*q_len=*/1, kv_len, dh, scale, /*q_pos_offset=*/-1, win());
            }
          }
        },
        slots);
    dev_.MergeShards();

    lw.wo.Forward(dev_, attn_out, proj, batch, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(batch) * hidden);

    // --- FFN block ---
    hkern::RmsNormF16(dev_, x, lw.ffn_norm.data(), xn, batch, hidden, c.rms_eps);
    lw.w_gate.Forward(dev_, xn, gate, batch, &ws_);
    lw.w_up.Forward(dev_, xn, up, batch, &ws_);
    hkern::SiluMulF16(dev_, gate, up, act, static_cast<int64_t>(batch) * c.ffn_hidden);
    lw.w_down.Forward(dev_, act, proj, batch, &ws_);
    hkern::AddF16(dev_, x, proj, x, static_cast<int64_t>(batch) * hidden);
  }

  for (size_t i = 0; i < seq_ids.size(); ++i) {
    kv_.Advance(seq_ids[i]);
  }

  // Final norm + blocked CPU lm_head: each hidden row converts F16->float once, and the
  // pre-converted weight matrix streams through in vocab tiles (bit-identical logits —
  // see LmHeadForwardF32W).
  hkern::RmsNormF16(dev_, x, weights_.final_norm.data(), xn, batch, hidden, c.rms_eps);
  float* xf = ws_.Alloc<float>(static_cast<int64_t>(batch) * hidden);
  for (int64_t i = 0; i < static_cast<int64_t>(batch) * hidden; ++i) {
    xf[i] = xn[i].ToFloat();
  }
  hkern::LmHeadForwardF32W(xf, lm_head_f32_.data(), logits.data(), batch, hidden, c.vocab);
}

}  // namespace hllm

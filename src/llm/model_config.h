// Model configurations: the architecture shapes of the models the paper evaluates (§7.1) —
// Qwen2.5 1.5B/3B/7B and Llama3.2 1B/3B (Instruct variants) — plus a toy configuration small
// enough to run functionally through the NPU simulator in tests and examples.
//
// Weight-scheme policy follows §7.1: most projection matrices use Q4_0 (4.5 bpw); the FFN
// down projections use Q8_0 (8.5 bpw) because of their outlier sensitivity; lm_head runs on
// the CPU (Q8_0) due to the NPU address-space limit (§7.2.2).
#ifndef SRC_LLM_MODEL_CONFIG_H_
#define SRC_LLM_MODEL_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/quant/quant_types.h"

namespace hllm {

struct ModelConfig {
  std::string name;
  double params_b = 0.0;  // total parameters, billions

  int hidden = 0;
  int layers = 0;
  int heads = 0;
  int kv_heads = 0;
  int head_dim = 0;
  int ffn_hidden = 0;
  int64_t vocab = 0;
  bool tied_embeddings = true;
  float rope_theta = 10000.0f;
  float rms_eps = 1e-6f;

  hquant::WeightScheme proj_scheme = hquant::WeightScheme::kQ4_0;
  hquant::WeightScheme ffn_down_scheme = hquant::WeightScheme::kQ8_0;
  hquant::WeightScheme lm_head_scheme = hquant::WeightScheme::kQ8_0;  // CPU-resident

  int q_dim() const { return heads * head_dim; }
  int kv_dim() const { return kv_heads * head_dim; }

  // One transformer layer's projection matrices, as (K, N, scheme) triples.
  struct MatrixShape {
    const char* name;
    int64_t k;
    int64_t n;
    hquant::WeightScheme scheme;
  };
  std::vector<MatrixShape> LayerMatrices() const;

  // Quantized bytes of all NPU-resident weights (all layers + final norm; excludes lm_head
  // and the embedding table, which stay on the CPU).
  int64_t NpuWeightBytes() const;
  // CPU-resident bytes: lm_head (+ untied embedding if applicable).
  int64_t CpuWeightBytes() const;
  // KV cache bytes for a context budget (FP16 K and V in every layer).
  int64_t KvCacheBytes(int64_t context_tokens) const;
  // KV cache bytes for a context budget under a KV storage dtype. Matches
  // hkv::PagedKvCache's per-block byte accounting exactly (layers x K+V x tokens x
  // hquant::KvRowBytes), so analytic block budgets agree with functional storage. The
  // single-argument overload above is the F16 special case.
  int64_t KvCacheBytes(int64_t context_tokens, hquant::KvDtype kv_dtype,
                       int quant_group = hquant::kGroupSize) const;
  // Activation/scratch buffers shared CPU<->NPU for a given max batch.
  int64_t ActivationBytes(int max_batch) const;
  // Total dmabuf (NPU-mapped shared memory): weights + KV + activations (Figure 16's pmap
  // number).
  int64_t DmabufBytes(int64_t context_tokens, int max_batch) const;
};

// The evaluation models (§7.1), plus Qwen2.5-0.5B as the speculative-decoding draft.
const ModelConfig& Qwen25_0_5B();
const ModelConfig& Qwen25_1_5B();
const ModelConfig& Qwen25_3B();
const ModelConfig& Qwen25_7B();
const ModelConfig& Llama32_1B();
const ModelConfig& Llama32_3B();

// All on-device evaluation models, in the order Figures 10/11 present them.
std::vector<const ModelConfig*> EvaluationModels();

// A tiny functional configuration for end-to-end simulator tests.
ModelConfig ToyConfig();

}  // namespace hllm

#endif  // SRC_LLM_MODEL_CONFIG_H_

// Functional batched transformer running end-to-end on the NPU simulator.
//
// Decode path per layer: RMSNorm -> Q/K/V projections (tile-quantized mixed GEMM on
// HVX+HMX) -> RoPE -> KV-cache append -> per-head FP16 FlashAttention with LUT softmax ->
// output projection -> residual -> RMSNorm -> SwiGLU FFN -> residual. The final hidden
// states project to logits on the (simulated) CPU, matching the paper's operator placement
// (§6, §7.2.2).
//
// This path is functional: it produces real numbers and charges realistic cycle costs. It is
// intended for the toy configuration (tests, examples); full-size models use the analytic
// timing engine in src/runtime.
//
// Host-performance contract (docs/performance.md): steady-state decode is zero-copy and
// zero-alloc. Attention consumes K/V in place through the paged cache's block tables
// (hkern::FlashAttentionPagedF16 — no per-step gather), all step scratch lives in a
// persistent DecodeWorkspace arena, weights dequantize once and replay their charges, and
// the lm_head runs blocked over a float-converted weight matrix. All of it is charge- and
// bit-identical to the straightforward path it replaced.
#ifndef SRC_LLM_TRANSFORMER_H_
#define SRC_LLM_TRANSFORMER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"
#include "src/kernels/attention.h"
#include "src/kernels/exp_lut.h"
#include "src/kernels/softmax.h"
#include "src/kvcache/paged_kv_cache.h"
#include "src/llm/decode_workspace.h"
#include "src/llm/weights.h"

namespace hllm {

// The KV cache is the paged, ref-counted block-pool manager from src/kvcache: attention
// reads K/V rows in place through per-sequence block tables, prompt prefixes admitted for
// parallel TTS candidates are stored once, and beam-search forks share their stem
// copy-on-write.
using KvCache = hkv::PagedKvCache;

class Transformer {
 public:
  // kv_pool_blocks <= 0 sizes the KV block pool for `max_batch` dense sequences of
  // `max_context` (plus CoW/retention slack); serving backends pass an explicit pool size
  // to model a DRAM budget. `kv_dtype` selects the KV storage mode (F16 default — bit- and
  // charge-identical to the pre-quant path; INT8/INT4 group-quantize K/V rows at append and
  // route attention through hkern::FlashAttentionPagedQ). The HEXLLM_KV_DTYPE env var
  // overrides the configured dtype (docs/kv_quantization.md). `kv_quant_group` elements
  // share one scale and must divide head_dim.
  // `max_step_rows` (0 = max_batch) raises the per-forward row capacity above the sequence
  // count — speculative verify steps push max_batch spans of gamma+1 rows each through one
  // forward, so the serving backend sizes the scratch arena for max_batch * (gamma + 1).
  Transformer(hexsim::NpuDevice& dev, const ModelWeights& weights, int max_batch,
              int max_context, int64_t kv_pool_blocks = 0,
              hquant::KvDtype kv_dtype = hquant::KvDtype::kF16,
              int kv_quant_group = hquant::kGroupSize, int max_step_rows = 0);

  // Decodes one step for `tokens.size()` parallel sequences (sequence i consumes tokens[i]
  // at its current position). Writes FP32 logits [batch, vocab]. The softmax exp variant is
  // configurable for the Table 5 experiments.
  void Step(std::span<const int> tokens, std::span<float> logits,
            hkern::SoftmaxVariant exp_variant = hkern::SoftmaxVariant::kLut);

  // Decodes one step for an arbitrary subset of sequences: row i consumes tokens[i] at
  // sequence seq_ids[i]'s current position. The serving layer uses this to step only the
  // occupied KV slots of a continuous batch. Writes FP32 logits [tokens.size(), vocab].
  void StepSeqs(std::span<const int> tokens, std::span<const int> seq_ids,
                std::span<float> logits,
                hkern::SoftmaxVariant exp_variant = hkern::SoftmaxVariant::kLut);

  // Generalized multi-span step — the speculative-decode verify forward. Span s consumes
  // span_rows[s] consecutive tokens starting at sequence seq_ids[s]'s current position
  // (tokens are flattened span-major; tokens.size() == sum(span_rows)). All spans' rows
  // share every GEMM/RMSNorm as one big batch (this is how a verify fills HMX tile rows
  // like Best-of-N lanes), while attention is per-span causal FlashAttention with
  // q_pos_offset at the span's base position. Writes FP32 logits for EVERY row,
  // [tokens.size(), vocab]. With all-ones span_rows this is bit-identical to StepSeqs:
  // every per-row computation (norms, GEMM rows, RoPE, single-row causal attention, the
  // blocked lm_head) is row-independent, and causally masked positions contribute exactly
  // +0.0f to the online softmax — the lossless-under-greedy invariant the speculative
  // serving path is built on (docs/speculative_decoding.md).
  void StepSpans(std::span<const int> tokens, std::span<const int> seq_ids,
                 std::span<const int> span_rows, std::span<float> logits,
                 hkern::SoftmaxVariant exp_variant = hkern::SoftmaxVariant::kLut);

  // Prefills sequence `seq` with a prompt, processed in chunks of up to 32 tokens per
  // forward pass (causal FlashAttention handles intra-chunk masking) — the paper's chunked
  // prefill pipeline, not token-by-token decoding. Logits are discarded.
  void Prefill(int seq, std::span<const int> tokens);

  // Installs sliding-window + attention-sink masking (docs/long_context.md) on every
  // attention region. The spec's block size is forced to the KV cache's block size; a spec
  // with window_blocks <= 0 (the default) disables the window, and a window wide enough to
  // cover the whole context is normalized away inside the kernels — both configurations
  // are bit-identical to unwindowed attention. May be changed between steps, not during.
  void SetAttentionWindow(hkern::AttnWindowSpec window) {
    window.block_tokens = kv_.block_tokens();
    window_ = window;
  }
  const hkern::AttnWindowSpec& attention_window() const { return window_; }

  KvCache& kv() { return kv_; }
  const KvCache& kv() const { return kv_; }
  const ModelConfig& config() const { return weights_.config; }
  hexsim::NpuDevice& device() { return dev_; }
  // Step-scratch arena; its high-water mark is exported as the `exec.workspace.bytes`
  // gauge (docs/metrics_schema.md).
  const DecodeWorkspace& workspace() const { return ws_; }

 private:
  void StepSeqSubset(std::span<const int> tokens, std::span<const int> seq_ids,
                     std::span<float> logits, hkern::SoftmaxVariant exp_variant);
  // One prefill chunk for a single sequence: rows = tokens.size() (<= 32) query positions
  // starting at the sequence's current KV length.
  void PrefillChunk(int seq, std::span<const int> tokens);

  // Parallel attention needs one exp LUT per execution slot, resident in that slot's shard
  // TCM (the softmax vgathers the table from the device it runs on). Lazily builds shard
  // devices + LUTs up to `slots` on the calling thread and returns the per-slot pointers
  // (slot 0 is the parent device's lut_). LUT builds are charged on the shard ledgers and
  // folded into the parent at the next merge.
  std::span<const hkern::ExpLut* const> EnsureShardLuts(int slots);

  // Grows the per-slot block-pointer scratch (decode attention lanes each resolve their
  // own sequences' block tables). Amortized: no growth in steady state.
  void EnsureSlotScratch(int slots);

  // Builds the quantized attention view for one KV head over the given block bases
  // (quantized modes only).
  hkern::PagedQKvHeadView QuantHeadView(const uint8_t* const* k_bases,
                                        const uint8_t* const* v_bases, int kv_head) const;

  // The window pointer attention kernels receive: null when windowing is off.
  const hkern::AttnWindowSpec* win() const {
    return window_.enabled() ? &window_ : nullptr;
  }

  // Faults the KV blocks an attention call with this shape will stage back into DRAM
  // (tiered offload; no-op when offload is off). Must run on the bookkeeping thread
  // BEFORE the parallel attention region — block promotion mutates pool residency state,
  // which the read-only parallel lanes must never do (docs/threading_model.md).
  void FaultAttendedBlocks(int seq, int q_len, int kv_len, int q_pos_offset);

  hexsim::NpuDevice& dev_;
  const ModelWeights& weights_;
  hkern::ExpLut lut_;
  KvCache kv_;
  int max_batch_;
  int max_rows_;  // per-forward row capacity (>= max_batch_; see max_step_rows)
  std::vector<std::unique_ptr<hkern::ExpLut>> shard_luts_;
  std::vector<const hkern::ExpLut*> slot_lut_ptrs_;

  // Persistent decode state (sized once in the constructor; see docs/performance.md).
  DecodeWorkspace ws_;
  std::vector<float> lm_head_f32_;       // [hidden x vocab] row-major, converted once
  std::vector<double> rope_inv_freq_;    // base^(-2i/d) per pair, pow() hoisted once
  std::vector<int> identity_seq_ids_;    // 0..max_batch-1, for Step()
  std::vector<int> span_row0_;           // per-span first-row offsets, for StepSpans()
  hkern::AttnWindowSpec window_;         // disabled unless SetAttentionWindow installs one
  std::vector<int> attended_scratch_;    // table indices for FaultAttendedBlocks
  // Block-pointer scratch: per decode slot (parallel lanes), and one shared set for the
  // single-sequence prefill (filled once per layer, read by all head lanes).
  std::vector<std::vector<const hexllm::F16*>> slot_k_ptrs_;
  std::vector<std::vector<const hexllm::F16*>> slot_v_ptrs_;
  std::vector<const hexllm::F16*> layer_k_ptrs_;
  std::vector<const hexllm::F16*> layer_v_ptrs_;
  // Quantized-mode twins (byte-addressed block bases for hkern::PagedQKvHeadView).
  std::vector<std::vector<const uint8_t*>> slot_kq_ptrs_;
  std::vector<std::vector<const uint8_t*>> slot_vq_ptrs_;
  std::vector<const uint8_t*> layer_kq_ptrs_;
  std::vector<const uint8_t*> layer_vq_ptrs_;
};

}  // namespace hllm

#endif  // SRC_LLM_TRANSFORMER_H_

/// \file
/// Persistent bump arena for per-step decode scratch — the zero-alloc decode contract.
///
/// Every transformer step needs a dozen short-lived activation buffers (normed input, QKV
/// rows, attention output, FFN intermediates, GEMM staging). Allocating them as
/// std::vectors costs a malloc/free pair each per step and dominated host time at small
/// batch. The workspace owns ONE slab sized at construction from the model dims and
/// max_batch/max_context; Reset() at the top of a step rewinds the cursor, and Alloc<T>()
/// bump-allocates 64-byte-aligned spans with no system allocator involvement. Nested
/// PushFrame/PopFrame give kernel helpers (e.g. QuantizedLinear's padded GEMM staging)
/// stack-discipline scratch inside a step.
///
/// CHECK-fails on exhaustion rather than growing: steady-state decode must never touch the
/// heap, and a capacity bug should fail loudly in tests, not silently reallocate
/// (docs/performance.md). high_watermark() is exported as the `exec.workspace.bytes` gauge.
///
/// Not thread-safe — one workspace per Transformer, used only from the step-serial section
/// (parallel kernel lanes get TCM shard scratch instead; docs/threading_model.md).
#ifndef SRC_LLM_DECODE_WORKSPACE_H_
#define SRC_LLM_DECODE_WORKSPACE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "src/base/check.h"

namespace hllm {

class DecodeWorkspace {
 public:
  explicit DecodeWorkspace(int64_t capacity_bytes) {
    HEXLLM_CHECK(capacity_bytes >= 0);
    storage_.resize(static_cast<size_t>(capacity_bytes));
    frames_.reserve(8);
  }

  // Rewinds the whole arena (top of a decode step). Outstanding frames must be closed.
  void Reset() {
    HEXLLM_CHECK(frames_.empty());
    used_ = 0;
  }

  // Nested scope markers for helpers that need scratch inside a step.
  void PushFrame() { frames_.push_back(used_); }
  void PopFrame() {
    HEXLLM_CHECK(!frames_.empty());
    used_ = frames_.back();
    frames_.pop_back();
  }

  // Bump-allocates `count` T's, 64-byte aligned (HVX vector alignment). Contents are
  // uninitialized — callers overwrite, matching the std::vector-per-step code this
  // replaces only where the old code relied on zero-init (which it did not).
  template <typename T>
  T* Alloc(int64_t count) {
    HEXLLM_CHECK(count >= 0);
    const int64_t bytes = count * static_cast<int64_t>(sizeof(T));
    const int64_t aligned = (used_ + 63) & ~int64_t{63};
    HEXLLM_CHECK_MSG(aligned + bytes <= static_cast<int64_t>(storage_.size()),
                     "DecodeWorkspace exhausted — capacity sizing bug");
    used_ = aligned + bytes;
    if (used_ > high_watermark_) {
      high_watermark_ = used_;
    }
    return reinterpret_cast<T*>(storage_.data() + aligned);
  }

  int64_t capacity() const { return static_cast<int64_t>(storage_.size()); }
  // Peak bytes ever bump-allocated — the `exec.workspace.bytes` gauge
  // (docs/metrics_schema.md).
  int64_t high_watermark() const { return high_watermark_; }

  // RAII frame guard.
  class Frame {
   public:
    explicit Frame(DecodeWorkspace& ws) : ws_(ws) { ws_.PushFrame(); }
    ~Frame() { ws_.PopFrame(); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    DecodeWorkspace& ws_;
  };

 private:
  std::vector<uint8_t> storage_;
  std::vector<int64_t> frames_;
  int64_t used_ = 0;
  int64_t high_watermark_ = 0;
};

}  // namespace hllm

#endif  // SRC_LLM_DECODE_WORKSPACE_H_

// Token sampling from logits: greedy, temperature, top-k, nucleus (top-p).
#ifndef SRC_LLM_SAMPLING_H_
#define SRC_LLM_SAMPLING_H_

#include <cstdint>
#include <span>

#include "src/base/rng.h"

namespace hllm {

struct SamplerOptions {
  float temperature = 1.0f;  // <= 0 means greedy
  int top_k = 0;             // 0 disables
  float top_p = 1.0f;        // 1 disables
};

// Samples one token id from `logits` under `opts`. Deterministic given the Rng state.
int SampleToken(std::span<const float> logits, const SamplerOptions& opts, hexllm::Rng& rng);

// Greedy argmax.
int ArgmaxToken(std::span<const float> logits);

// Log-probability of `token` under softmax(logits / temperature) — used for
// sequence-likelihood accounting in the test-time scaling library.
double TokenLogProb(std::span<const float> logits, int token, float temperature);

}  // namespace hllm

#endif  // SRC_LLM_SAMPLING_H_

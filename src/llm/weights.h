// Quantized model weights for the NPU backend.
//
// Every NPU-resident projection is stored in the paper's offline format: tile-group
// quantization in HMX stream order (§5.1.1), with Q4_0 groups coalesced into 256-element
// super-blocks (§5.1.2). Q8_0 matrices (FFN down, §7.1) are stored as HMX-stream-ordered
// Q8 blocks. Forward() dequantizes on the simulated HVX and multiplies on the simulated
// HMX — the full runtime path of the paper's mixed-precision GEMM.
#ifndef SRC_LLM_WEIGHTS_H_
#define SRC_LLM_WEIGHTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/fp16.h"
#include "src/base/rng.h"
#include "src/hexsim/npu_device.h"
#include "src/llm/decode_workspace.h"
#include "src/llm/model_config.h"
#include "src/quant/quant_types.h"

namespace hllm {

// Process-wide switch for the dequant-once weight cache (default on). The
// HEXLLM_NO_WEIGHT_CACHE environment variable (any non-empty value) disables it at startup
// — the escape hatch for memory-constrained runs and for the replay-parity tests
// (docs/performance.md).
void SetWeightCacheEnabled(bool enabled);
bool WeightCacheEnabled();

class QuantizedLinear {
 public:
  QuantizedLinear() = default;

  // Quantizes a [K, N] column-major FP32 matrix with the tile-group pipeline.
  static QuantizedLinear Create(std::span<const float> w_col_major, int64_t k, int64_t n,
                                hquant::WeightScheme scheme);

  int64_t k_dim() const { return k_; }
  int64_t n_dim() const { return n_; }
  hquant::WeightScheme scheme() const { return scheme_; }
  int64_t quantized_bytes() const;

  // Functional forward on the simulator: y[M, N] = x[M, K] (both FP16 row-major host
  // buffers). Dequantizes into TCM, runs HMX GEMM. M is padded to a tile internally; when
  // m is already a tile multiple the padding staging is skipped and x/y are used directly.
  // `ws` (optional) provides heap-free staging scratch for the padded case
  // (docs/performance.md).
  //
  // Dequant-once cache: with WeightCacheEnabled(), the first Forward stores the
  // dequantized F16 stream plus the dequant's simulated cost (HVX packets, vlut16 ops);
  // later calls memcpy the stream into TCM and REPLAY the charges — same
  // kernel.dequant_coalesced_lut.calls count, same packet totals, same "linear.dequant"
  // ledger tag — without re-simulating the LUT kernel. Counters are bit-identical either
  // way; only host time changes.
  void Forward(hexsim::NpuDevice& dev, const hexllm::F16* x, hexllm::F16* y, int m,
               DecodeWorkspace* ws = nullptr) const;

  // Reference reconstruction of the [K, N] column-major matrix (FP32).
  std::vector<float> Dequantize() const;

 private:
  // Memoized dequantized stream + the simulated charges a real dequant would make.
  // Owned by shared_ptr so copies of a QuantizedLinear share one cache; all fields after
  // `ready` are written once under `mu` before ready is released.
  struct DequantCache {
    std::mutex mu;
    std::atomic<bool> ready{false};
    std::vector<hexllm::F16> stream;  // [k * n] in HMX stream order
    int64_t packets = 0;
    int64_t vgather = 0;
    int64_t vscatter = 0;
    int64_t vlut16 = 0;
  };

  int64_t k_ = 0;
  int64_t n_ = 0;
  hquant::WeightScheme scheme_ = hquant::WeightScheme::kQ4_0;
  std::vector<hquant::SuperBlockQ4> sb4_;   // kQ4_0 payload (HMX stream order)
  std::vector<hquant::BlockQ8_0> b8_;       // kQ8_0 payload (HMX stream order)
  mutable std::shared_ptr<DequantCache> cache_;
};

struct LayerWeights {
  QuantizedLinear wq, wk, wv, wo, w_gate, w_up, w_down;
  std::vector<hexllm::F16> attn_norm;
  std::vector<hexllm::F16> ffn_norm;
};

struct ModelWeights {
  ModelConfig config;
  std::vector<LayerWeights> layers;
  std::vector<hexllm::F16> final_norm;
  std::vector<hexllm::F16> embedding;  // [vocab, hidden] FP16 (CPU side)
  std::vector<hexllm::F16> lm_head;    // [hidden, vocab] column-major FP16 (CPU side)

  // Generates a model with LLM-like synthetic weights (residual-scaled so deep stacks stay
  // numerically stable). Only sensible for small configs — the toy path.
  static ModelWeights Random(const ModelConfig& config, uint64_t seed);
};

}  // namespace hllm

#endif  // SRC_LLM_WEIGHTS_H_

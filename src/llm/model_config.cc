#include "src/llm/model_config.h"

#include "src/base/check.h"

namespace hllm {

using hquant::WeightScheme;
using hquant::WeightSchemeBpw;

std::vector<ModelConfig::MatrixShape> ModelConfig::LayerMatrices() const {
  return {
      {"wq", hidden, q_dim(), proj_scheme},
      {"wk", hidden, kv_dim(), proj_scheme},
      {"wv", hidden, kv_dim(), proj_scheme},
      {"wo", q_dim(), hidden, proj_scheme},
      {"w_gate", hidden, ffn_hidden, proj_scheme},
      {"w_up", hidden, ffn_hidden, proj_scheme},
      {"w_down", ffn_hidden, hidden, ffn_down_scheme},
  };
}

int64_t ModelConfig::NpuWeightBytes() const {
  double bytes = 0.0;
  for (const auto& m : LayerMatrices()) {
    bytes += static_cast<double>(m.k) * m.n * WeightSchemeBpw(m.scheme) / 8.0;
  }
  bytes *= layers;
  bytes += static_cast<double>(hidden) * 2;                   // final RMSNorm gamma (FP16)
  bytes += static_cast<double>(layers) * 2 * hidden * 2;      // per-layer norm gammas
  return static_cast<int64_t>(bytes);
}

int64_t ModelConfig::CpuWeightBytes() const {
  // lm_head [hidden, vocab] quantized on the CPU; the token-embedding lookup table is
  // typically tied to it.
  double bytes = static_cast<double>(hidden) * vocab * WeightSchemeBpw(lm_head_scheme) / 8.0;
  if (!tied_embeddings) {
    bytes *= 2.0;
  }
  return static_cast<int64_t>(bytes);
}

int64_t ModelConfig::KvCacheBytes(int64_t context_tokens) const {
  return static_cast<int64_t>(layers) * 2 * kv_dim() * context_tokens * 2;  // FP16
}

int64_t ModelConfig::KvCacheBytes(int64_t context_tokens, hquant::KvDtype kv_dtype,
                                  int quant_group) const {
  return static_cast<int64_t>(layers) * 2 * context_tokens *
         hquant::KvRowBytes(kv_dtype, kv_dim(), quant_group);
}

int64_t ModelConfig::ActivationBytes(int max_batch) const {
  // Hidden-state ping-pong buffers, QKV staging, FFN intermediate, logits staging.
  const int64_t per_token =
      static_cast<int64_t>(hidden) * 4 + q_dim() + 2 * kv_dim() + ffn_hidden * 2;
  return per_token * 2 * max_batch + static_cast<int64_t>(vocab) * 4 * max_batch;
}

int64_t ModelConfig::DmabufBytes(int64_t context_tokens, int max_batch) const {
  return NpuWeightBytes() + KvCacheBytes(context_tokens) + ActivationBytes(max_batch);
}

namespace {

ModelConfig MakeQwen25_0_5B() {
  ModelConfig c;
  c.name = "Qwen2.5-0.5B-Instruct";
  c.params_b = 0.49;
  c.hidden = 896;
  c.layers = 24;
  c.heads = 14;
  c.kv_heads = 2;
  c.head_dim = 64;
  c.ffn_hidden = 4864;
  c.vocab = 151936;
  c.tied_embeddings = true;
  c.rope_theta = 1000000.0f;
  return c;
}

ModelConfig MakeQwen25_1_5B() {
  ModelConfig c;
  c.name = "Qwen2.5-1.5B-Instruct";
  c.params_b = 1.54;
  c.hidden = 1536;
  c.layers = 28;
  c.heads = 12;
  c.kv_heads = 2;
  c.head_dim = 128;
  c.ffn_hidden = 8960;
  c.vocab = 151936;
  c.tied_embeddings = true;
  c.rope_theta = 1000000.0f;
  return c;
}

ModelConfig MakeQwen25_3B() {
  ModelConfig c;
  c.name = "Qwen2.5-3B-Instruct";
  c.params_b = 3.09;
  c.hidden = 2048;
  c.layers = 36;
  c.heads = 16;
  c.kv_heads = 2;
  c.head_dim = 128;
  c.ffn_hidden = 11008;
  c.vocab = 151936;
  c.tied_embeddings = true;
  c.rope_theta = 1000000.0f;
  return c;
}

ModelConfig MakeQwen25_7B() {
  ModelConfig c;
  c.name = "Qwen2.5-7B-Instruct";
  c.params_b = 7.62;
  c.hidden = 3584;
  c.layers = 28;
  c.heads = 28;
  c.kv_heads = 4;
  c.head_dim = 128;
  c.ffn_hidden = 18944;
  c.vocab = 152064;
  c.tied_embeddings = false;
  c.rope_theta = 1000000.0f;
  return c;
}

ModelConfig MakeLlama32_1B() {
  ModelConfig c;
  c.name = "Llama3.2-1B-Instruct";
  c.params_b = 1.24;
  c.hidden = 2048;
  c.layers = 16;
  c.heads = 32;
  c.kv_heads = 8;
  c.head_dim = 64;
  c.ffn_hidden = 8192;
  c.vocab = 128256;
  c.tied_embeddings = true;
  c.rope_theta = 500000.0f;
  return c;
}

ModelConfig MakeLlama32_3B() {
  ModelConfig c;
  c.name = "Llama3.2-3B-Instruct";
  c.params_b = 3.21;
  c.hidden = 3072;
  c.layers = 28;
  c.heads = 24;
  c.kv_heads = 8;
  c.head_dim = 128;
  c.ffn_hidden = 8192;
  c.vocab = 128256;
  c.tied_embeddings = true;
  c.rope_theta = 500000.0f;
  return c;
}

}  // namespace

const ModelConfig& Qwen25_0_5B() {
  static const ModelConfig c = MakeQwen25_0_5B();
  return c;
}
const ModelConfig& Qwen25_1_5B() {
  static const ModelConfig c = MakeQwen25_1_5B();
  return c;
}
const ModelConfig& Qwen25_3B() {
  static const ModelConfig c = MakeQwen25_3B();
  return c;
}
const ModelConfig& Qwen25_7B() {
  static const ModelConfig c = MakeQwen25_7B();
  return c;
}
const ModelConfig& Llama32_1B() {
  static const ModelConfig c = MakeLlama32_1B();
  return c;
}
const ModelConfig& Llama32_3B() {
  static const ModelConfig c = MakeLlama32_3B();
  return c;
}

std::vector<const ModelConfig*> EvaluationModels() {
  return {&Qwen25_1_5B(), &Qwen25_3B(), &Llama32_1B(), &Llama32_3B()};
}

ModelConfig ToyConfig() {
  ModelConfig c;
  c.name = "toy-16M";
  c.params_b = 0.016;
  c.hidden = 128;
  c.layers = 2;
  c.heads = 4;
  c.kv_heads = 2;
  c.head_dim = 32;
  c.ffn_hidden = 256;
  c.vocab = 512;
  c.rope_theta = 10000.0f;
  return c;
}

}  // namespace hllm

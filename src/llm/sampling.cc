#include "src/llm/sampling.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/base/check.h"

namespace hllm {

int ArgmaxToken(std::span<const float> logits) {
  HEXLLM_CHECK(!logits.empty());
  return static_cast<int>(std::max_element(logits.begin(), logits.end()) - logits.begin());
}

int SampleToken(std::span<const float> logits, const SamplerOptions& opts, hexllm::Rng& rng) {
  HEXLLM_CHECK(!logits.empty());
  if (opts.temperature <= 0.0f) {
    return ArgmaxToken(logits);
  }

  // Candidate set, ordered by logit descending if any truncation is active.
  std::vector<int> idx(logits.size());
  std::iota(idx.begin(), idx.end(), 0);
  const bool truncate = (opts.top_k > 0 && opts.top_k < static_cast<int>(logits.size())) ||
                        opts.top_p < 1.0f;
  if (truncate) {
    std::sort(idx.begin(), idx.end(),
              [&](int a, int b) { return logits[static_cast<size_t>(a)] > logits[static_cast<size_t>(b)]; });
    if (opts.top_k > 0 && opts.top_k < static_cast<int>(idx.size())) {
      idx.resize(static_cast<size_t>(opts.top_k));
    }
  }

  // Softmax over candidates at the given temperature.
  double max_logit = -1e30;
  for (int i : idx) {
    max_logit = std::max(max_logit, static_cast<double>(logits[static_cast<size_t>(i)]));
  }
  std::vector<double> p(idx.size());
  double sum = 0.0;
  for (size_t j = 0; j < idx.size(); ++j) {
    p[j] = std::exp((logits[static_cast<size_t>(idx[j])] - max_logit) / opts.temperature);
    sum += p[j];
  }
  for (auto& v : p) {
    v /= sum;
  }

  // Nucleus truncation on the (sorted) candidates.
  size_t n = p.size();
  if (truncate && opts.top_p < 1.0f) {
    double cum = 0.0;
    for (size_t j = 0; j < p.size(); ++j) {
      cum += p[j];
      if (cum >= opts.top_p) {
        n = j + 1;
        break;
      }
    }
    const double renorm = std::accumulate(p.begin(), p.begin() + static_cast<long>(n), 0.0);
    for (size_t j = 0; j < n; ++j) {
      p[j] /= renorm;
    }
  }

  double r = rng.NextDouble();
  for (size_t j = 0; j < n; ++j) {
    r -= p[j];
    if (r <= 0.0) {
      return idx[j];
    }
  }
  return idx[n - 1];
}

double TokenLogProb(std::span<const float> logits, int token, float temperature) {
  HEXLLM_CHECK(token >= 0 && token < static_cast<int>(logits.size()));
  const double t = (temperature > 0.0f) ? temperature : 1.0f;
  double max_logit = -1e30;
  for (const float v : logits) {
    max_logit = std::max(max_logit, static_cast<double>(v));
  }
  double sum = 0.0;
  for (const float v : logits) {
    sum += std::exp((v - max_logit) / t);
  }
  return (logits[static_cast<size_t>(token)] - max_logit) / t - std::log(sum);
}

}  // namespace hllm

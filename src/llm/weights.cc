#include "src/llm/weights.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/base/check.h"
#include "src/base/math_util.h"
#include "src/kernels/gemm.h"
#include "src/kernels/mixed_gemm.h"
#include "src/quant/group_quant.h"
#include "src/quant/synthetic_weights.h"
#include "src/quant/tile_quant.h"

namespace hllm {

using hexllm::F16;
using hexllm::RoundToF16;

namespace {

std::atomic<bool>& WeightCacheFlag() {
  static std::atomic<bool> enabled(std::getenv("HEXLLM_NO_WEIGHT_CACHE") == nullptr);
  return enabled;
}

}  // namespace

void SetWeightCacheEnabled(bool enabled) {
  WeightCacheFlag().store(enabled, std::memory_order_relaxed);
}

bool WeightCacheEnabled() { return WeightCacheFlag().load(std::memory_order_relaxed); }

QuantizedLinear QuantizedLinear::Create(std::span<const float> w, int64_t k, int64_t n,
                                        hquant::WeightScheme scheme) {
  HEXLLM_CHECK(static_cast<int64_t>(w.size()) == k * n);
  HEXLLM_CHECK(k % 32 == 0 && n % 32 == 0);
  QuantizedLinear q;
  q.k_ = k;
  q.n_ = n;
  q.scheme_ = scheme;
  const std::vector<float> stream = hquant::PermuteToHmxOrder(w, k, n);
  switch (scheme) {
    case hquant::WeightScheme::kQ4_0: {
      const auto blocks = hquant::QuantizeQ4_0(stream);
      q.sb4_ = hquant::CoalesceSuperblocks(blocks);
      break;
    }
    case hquant::WeightScheme::kQ8_0:
      q.b8_ = hquant::QuantizeQ8_0(stream);
      break;
    default:
      HEXLLM_CHECK_MSG(false, "unsupported NPU weight scheme");
  }
  q.cache_ = std::make_shared<DequantCache>();
  return q;
}

int64_t QuantizedLinear::quantized_bytes() const {
  return static_cast<int64_t>(sb4_.size() * sizeof(hquant::SuperBlockQ4) +
                              b8_.size() * sizeof(hquant::BlockQ8_0));
}

void QuantizedLinear::Forward(hexsim::NpuDevice& dev, const F16* x, F16* y, int m,
                              DecodeWorkspace* ws) const {
  HEXLLM_CHECK(m >= 1);
  hexsim::TcmFrame frame(dev.tcm());
  // Dequantize the full weight stream into TCM (toy-model sizes fit; the production engine
  // processes strips — see runtime/engine.cc's cost model). With a warm cache the stream is
  // memcpy'd in and the dequant's simulated charges are replayed instead — bit-identical
  // counters, no per-element LUT simulation (docs/performance.md).
  auto* w_tcm = reinterpret_cast<F16*>(dev.tcm().Alloc(k_ * n_ * 2));
  const bool cache_on = WeightCacheEnabled() && cache_ != nullptr;
  const bool cache_warm = cache_on && cache_->ready.load(std::memory_order_acquire);
  if (scheme_ == hquant::WeightScheme::kQ4_0) {
    if (cache_warm) {
      std::memcpy(w_tcm, cache_->stream.data(), static_cast<size_t>(k_ * n_) * 2);
      dev.ledger().AddCount("kernel.dequant_coalesced_lut.calls");
      dev.hvx().ReplayOps(cache_->vgather, cache_->vscatter, cache_->vlut16);
      dev.CommitHvxPackets(cache_->packets, 1, "linear.dequant");
      dev.hvx().ResetPackets();
    } else {
      const int64_t vgather0 = dev.hvx().vgather_ops();
      const int64_t vscatter0 = dev.hvx().vscatter_ops();
      const int64_t vlut0 = dev.hvx().vlut16_ops();
      const int64_t packets = hkern::DequantCoalescedLut(dev, sb4_, w_tcm);
      dev.CommitHvxPackets(packets, 1, "linear.dequant");
      dev.hvx().ResetPackets();
      if (cache_on) {
        std::lock_guard<std::mutex> lock(cache_->mu);
        if (!cache_->ready.load(std::memory_order_relaxed)) {
          cache_->stream.assign(w_tcm, w_tcm + k_ * n_);
          cache_->packets = packets;
          // DequantCoalescedLut merges its shards before returning, so the parent-device
          // deltas capture the whole call at any lane count.
          cache_->vgather = dev.hvx().vgather_ops() - vgather0;
          cache_->vscatter = dev.hvx().vscatter_ops() - vscatter0;
          cache_->vlut16 = dev.hvx().vlut16_ops() - vlut0;
          cache_->ready.store(true, std::memory_order_release);
        }
      }
    }
  } else {
    // Q8: conventional unpack (widen + scale), contiguous stores; ~8 packets per 64.
    const int64_t n_elems = k_ * n_;
    if (cache_warm) {
      std::memcpy(w_tcm, cache_->stream.data(), static_cast<size_t>(n_elems) * 2);
    } else {
      for (size_t bi = 0; bi < b8_.size(); ++bi) {
        const float d = b8_[bi].d.ToFloat();
        for (int i = 0; i < hquant::kGroupSize; ++i) {
          w_tcm[bi * hquant::kGroupSize + i] =
              F16(RoundToF16(static_cast<float>(b8_[bi].qs[i]) * d));
        }
      }
      if (cache_on) {
        std::lock_guard<std::mutex> lock(cache_->mu);
        if (!cache_->ready.load(std::memory_order_relaxed)) {
          cache_->stream.assign(w_tcm, w_tcm + n_elems);
          cache_->ready.store(true, std::memory_order_release);
        }
      }
    }
    dev.CommitHvxPackets(n_elems / 64 * 8, 1, "linear.dequant");
  }

  if (m % 32 == 0) {
    // Already tile-aligned rows: no staging copies, the GEMM reads/writes in place.
    hkern::GemmF16Hmx(dev, x, w_tcm, y, m, static_cast<int>(k_), static_cast<int>(n_),
                      /*operands_in_tcm=*/true);
    return;
  }

  // Pad the activation rows up to a full tile. valid_m = m means the GEMM never reads the
  // padding rows (and leaves the padded output rows unspecified), so the staging buffers
  // need no zero fill — only the live rows are copied in and out.
  const int m_pad = static_cast<int>(hexllm::RoundUp(m, 32));
  if (ws != nullptr) {
    DecodeWorkspace::Frame wframe(*ws);
    F16* x_pad = ws->Alloc<F16>(static_cast<int64_t>(m_pad) * k_);
    F16* y_pad = ws->Alloc<F16>(static_cast<int64_t>(m_pad) * n_);
    std::memcpy(x_pad, x, static_cast<size_t>(m) * k_ * 2);
    hkern::GemmF16Hmx(dev, x_pad, w_tcm, y_pad, m_pad, static_cast<int>(k_),
                      static_cast<int>(n_), /*operands_in_tcm=*/true, /*valid_m=*/m);
    std::memcpy(y, y_pad, static_cast<size_t>(m) * n_ * 2);
    return;
  }
  std::vector<F16> x_pad(static_cast<size_t>(m_pad) * k_, F16::Zero());
  std::memcpy(x_pad.data(), x, static_cast<size_t>(m) * k_ * 2);
  std::vector<F16> y_pad(static_cast<size_t>(m_pad) * n_);
  hkern::GemmF16Hmx(dev, x_pad.data(), w_tcm, y_pad.data(), m_pad, static_cast<int>(k_),
                    static_cast<int>(n_), /*operands_in_tcm=*/true, /*valid_m=*/m);
  std::memcpy(y, y_pad.data(), static_cast<size_t>(m) * n_ * 2);
}

std::vector<float> QuantizedLinear::Dequantize() const {
  std::vector<float> stream(static_cast<size_t>(k_ * n_));
  if (scheme_ == hquant::WeightScheme::kQ4_0) {
    hquant::DequantizeSuperblocks(sb4_, stream);
  } else {
    hquant::DequantizeQ8_0(b8_, stream);
  }
  return hquant::UnpermuteFromHmxOrder(stream, k_, n_);
}

namespace {

std::vector<F16> RandomGamma(int n, hexllm::Rng& rng) {
  std::vector<F16> g(static_cast<size_t>(n));
  for (auto& v : g) {
    v = F16(static_cast<float>(1.0 + 0.05 * rng.NextGaussian()));
  }
  return g;
}

QuantizedLinear RandomLinear(int64_t k, int64_t n, hquant::WeightScheme scheme,
                             hexllm::Rng& rng, double sigma) {
  hquant::WeightGenOptions opts;
  opts.sigma = sigma;
  auto w = hquant::GenerateLlmLikeMatrix(k, n, rng, opts);
  return QuantizedLinear::Create(w, k, n, scheme);
}

}  // namespace

ModelWeights ModelWeights::Random(const ModelConfig& config, uint64_t seed) {
  hexllm::Rng rng(seed);
  ModelWeights mw;
  mw.config = config;
  // Residual-branch scaling ~ 1/sqrt(2 * layers) keeps deep stacks stable.
  const double sigma = 0.7 / std::sqrt(static_cast<double>(config.hidden));
  const double out_sigma = sigma / std::sqrt(2.0 * config.layers);
  mw.layers.reserve(static_cast<size_t>(config.layers));
  for (int l = 0; l < config.layers; ++l) {
    LayerWeights lw;
    lw.wq = RandomLinear(config.hidden, config.q_dim(), config.proj_scheme, rng, sigma);
    lw.wk = RandomLinear(config.hidden, config.kv_dim(), config.proj_scheme, rng, sigma);
    lw.wv = RandomLinear(config.hidden, config.kv_dim(), config.proj_scheme, rng, sigma);
    lw.wo = RandomLinear(config.q_dim(), config.hidden, config.proj_scheme, rng, out_sigma);
    lw.w_gate = RandomLinear(config.hidden, config.ffn_hidden, config.proj_scheme, rng, sigma);
    lw.w_up = RandomLinear(config.hidden, config.ffn_hidden, config.proj_scheme, rng, sigma);
    lw.w_down =
        RandomLinear(config.ffn_hidden, config.hidden, config.ffn_down_scheme, rng, out_sigma);
    lw.attn_norm = RandomGamma(config.hidden, rng);
    lw.ffn_norm = RandomGamma(config.hidden, rng);
    mw.layers.push_back(std::move(lw));
  }
  mw.final_norm = RandomGamma(config.hidden, rng);
  mw.embedding.resize(static_cast<size_t>(config.vocab) * config.hidden);
  for (auto& v : mw.embedding) {
    v = F16(static_cast<float>(rng.NextGaussian() * 0.7 / std::sqrt(config.hidden)));
  }
  mw.lm_head.resize(static_cast<size_t>(config.hidden) * config.vocab);
  for (auto& v : mw.lm_head) {
    v = F16(static_cast<float>(rng.NextGaussian() / std::sqrt(config.hidden)));
  }
  return mw;
}

}  // namespace hllm

#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/base/check.h"

namespace obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");
    return;
  }
  // Shortest representation that round-trips binary64.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, res.ptr);
  // Keep the number recognizably floating-point so parsers preserve the kInt/kDouble split.
  if (out->find_first_of(".eE", out->size() - static_cast<size_t>(res.ptr - buf)) ==
      std::string::npos) {
    out->append(".0");
  }
}

struct Parser {
  std::string_view text;
  size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    error = what + " at byte " + std::to_string(pos);
    return false;
  }

  void SkipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      return false;
    }
    pos += lit.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) {
          return Fail("dangling escape");
        }
        const char e = text[pos++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos + 4 > text.size()) {
              return Fail("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos += 4;
            // UTF-8 encode (no surrogate-pair support; the metrics layer emits ASCII).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
        ++pos;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Json* out) {
    const size_t start = pos;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
    }
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) {
        ++pos;
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    const std::string_view num = text.substr(start, pos - start);
    if (num.empty() || num == "-") {
      return Fail("bad number");
    }
    if (!is_double) {
      int64_t v = 0;
      const auto res = std::from_chars(num.data(), num.data() + num.size(), v);
      if (res.ec == std::errc() && res.ptr == num.data() + num.size()) {
        *out = Json(v);
        return true;
      }
      // Fall through to double on overflow.
    }
    double d = 0.0;
    const auto res = std::from_chars(num.data(), num.data() + num.size(), d);
    if (res.ec != std::errc() || res.ptr != num.data() + num.size()) {
      return Fail("bad number");
    }
    *out = Json(d);
    return true;
  }

  bool ParseValue(Json* out, int depth) {
    if (depth > 128) {
      return Fail("nesting too deep");
    }
    SkipWs();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    const char c = text[pos];
    if (c == 'n') {
      if (!Literal("null")) {
        return Fail("bad literal");
      }
      *out = Json();
      return true;
    }
    if (c == 't') {
      if (!Literal("true")) {
        return Fail("bad literal");
      }
      *out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) {
        return Fail("bad literal");
      }
      *out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      *out = Json::Array();
      SkipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json elem;
        if (!ParseValue(&elem, depth + 1)) {
          return false;
        }
        out->Append(std::move(elem));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      *out = Json::Object();
      SkipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipWs();
        if (pos >= text.size() || text[pos] != ':') {
          return Fail("expected ':'");
        }
        ++pos;
        Json val;
        if (!ParseValue(&val, depth + 1)) {
          return false;
        }
        out->Set(key, std::move(val));
        SkipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber(out);
    }
    return Fail("unexpected character");
  }
};

}  // namespace

bool Json::AsBool() const {
  HEXLLM_CHECK_MSG(type_ == Type::kBool, "Json::AsBool on non-bool");
  return bool_;
}

int64_t Json::AsInt() const {
  if (type_ == Type::kDouble) {
    return static_cast<int64_t>(double_);
  }
  HEXLLM_CHECK_MSG(type_ == Type::kInt, "Json::AsInt on non-number");
  return int_;
}

double Json::AsDouble() const {
  if (type_ == Type::kInt) {
    return static_cast<double>(int_);
  }
  HEXLLM_CHECK_MSG(type_ == Type::kDouble, "Json::AsDouble on non-number");
  return double_;
}

const std::string& Json::AsString() const {
  HEXLLM_CHECK_MSG(type_ == Type::kString, "Json::AsString on non-string");
  return str_;
}

size_t Json::size() const {
  if (type_ == Type::kArray) {
    return arr_.size();
  }
  if (type_ == Type::kObject) {
    return obj_.size();
  }
  return 0;
}

Json& Json::Append(Json v) {
  HEXLLM_CHECK_MSG(type_ == Type::kArray, "Json::Append on non-array");
  arr_.push_back(std::move(v));
  return arr_.back();
}

const Json& Json::At(size_t i) const {
  HEXLLM_CHECK_MSG(type_ == Type::kArray && i < arr_.size(), "Json::At index out of range");
  return arr_[i];
}

Json& Json::Set(std::string_view key, Json v) {
  HEXLLM_CHECK_MSG(type_ == Type::kObject, "Json::Set on non-object");
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return val;
    }
  }
  obj_.emplace_back(std::string(key), std::move(v));
  return obj_.back().second;
}

bool Json::Contains(std::string_view key) const { return Find(key) != nullptr; }

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const auto& [k, v] : obj_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::At(std::string_view key) {
  HEXLLM_CHECK_MSG(type_ == Type::kObject, "Json::At on non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      return v;
    }
  }
  HEXLLM_CHECK_MSG(false, "Json::At key not found");
  __builtin_unreachable();
}

const Json& Json::At(std::string_view key) const {
  const Json* v = Find(key);
  HEXLLM_CHECK_MSG(v != nullptr, "Json::At key not found");
  return *v;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  HEXLLM_CHECK_MSG(type_ == Type::kObject, "Json::members on non-object");
  return obj_;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt:
      out->append(std::to_string(int_));
      break;
    case Type::kDouble:
      AppendDouble(out, double_);
      break;
    case Type::kString:
      AppendEscaped(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
          if (indent < 0) {
            out->push_back(' ');
          }
        }
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) {
          out->push_back(',');
          if (indent < 0) {
            out->push_back(' ');
          }
        }
        first = false;
        newline(depth + 1);
        AppendEscaped(out, k);
        out->append(": ");
        v.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool Json::Parse(std::string_view text, Json* out, std::string* error) {
  Parser p{text, 0, {}};
  Json v;
  if (!p.ParseValue(&v, 0)) {
    if (error != nullptr) {
      *error = p.error;
    }
    return false;
  }
  p.SkipWs();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing data at byte " + std::to_string(p.pos);
    }
    return false;
  }
  *out = std::move(v);
  return true;
}

bool Json::operator==(const Json& o) const {
  if (type_ != o.type_) {
    // Numeric cross-type equality (1 == 1.0) keeps round-trip comparisons honest.
    if (is_number() && o.is_number()) {
      return AsDouble() == o.AsDouble();
    }
    return false;
  }
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == o.bool_;
    case Type::kInt:
      return int_ == o.int_;
    case Type::kDouble:
      return double_ == o.double_;
    case Type::kString:
      return str_ == o.str_;
    case Type::kArray:
      return arr_ == o.arr_;
    case Type::kObject:
      return obj_ == o.obj_;
  }
  return false;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  return ok;
}

}  // namespace obs

#include "src/obs/metrics.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace obs {

HistogramBuckets HistogramBuckets::Exponential(double start, double factor, int count) {
  HEXLLM_CHECK(start > 0.0 && factor > 1.0 && count >= 1);
  HistogramBuckets b;
  b.bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    b.bounds.push_back(v);
    v *= factor;
  }
  return b;
}

HistogramBuckets HistogramBuckets::Linear(double width, int count) {
  HEXLLM_CHECK(width > 0.0 && count >= 1);
  HistogramBuckets b;
  b.bounds.reserve(static_cast<size_t>(count));
  for (int i = 1; i <= count; ++i) {
    b.bounds.push_back(width * i);
  }
  return b;
}

Histogram::Histogram(HistogramBuckets buckets) : buckets_(std::move(buckets)) {
  for (size_t i = 1; i < buckets_.bounds.size(); ++i) {
    HEXLLM_CHECK_MSG(buckets_.bounds[i] > buckets_.bounds[i - 1],
                     "histogram bounds must be strictly increasing");
  }
  counts_.assign(buckets_.bounds.size() + 1, 0);
}

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t i = 0;
  while (i < buckets_.bounds.size() && v > buckets_.bounds[i]) {
    ++i;
  }
  ++counts_[i];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Registry::CheckKind(const Key& key, Kind kind) {
  const auto [it, inserted] = kinds_.try_emplace(key, kind);
  HEXLLM_CHECK_MSG(it->second == kind,
                   "metric re-registered as a different kind (name/label collision)");
}

Counter& Registry::counter(std::string_view name, std::string_view label) {
  Key key{std::string(name), std::string(label)};
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(key, Kind::kCounter);
  auto& slot = counters_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(std::string_view name, std::string_view label) {
  Key key{std::string(name), std::string(label)};
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(key, Kind::kGauge);
  auto& slot = gauges_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(std::string_view name, const HistogramBuckets& buckets,
                               std::string_view label) {
  Key key{std::string(name), std::string(label)};
  std::lock_guard<std::mutex> lock(mu_);
  CheckKind(key, Kind::kHistogram);
  auto& slot = histograms_[key];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(buckets);
  } else {
    HEXLLM_CHECK_MSG(slot->bounds() == buckets.bounds,
                     "histogram re-registered with different buckets");
  }
  return *slot;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    s.counters.push_back(CounterSample{key.first, key.second, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    s.gauges.push_back(GaugeSample{key.first, key.second, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    s.histograms.push_back(HistogramSample{key.first, key.second, h->bounds(), h->counts(),
                                           h->count(), h->sum(), h->min(), h->max()});
  }
  // std::map iteration is already (name, label)-sorted; the vectors inherit the order.
  return s;
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  kinds_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

int64_t MetricsSnapshot::CounterValue(std::string_view name, std::string_view label,
                                      bool* found) const {
  for (const auto& c : counters) {
    if (c.name == name && c.label == label) {
      if (found != nullptr) {
        *found = true;
      }
      return c.value;
    }
  }
  if (found != nullptr) {
    *found = false;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name, std::string_view label,
                                   bool* found) const {
  for (const auto& g : gauges) {
    if (g.name == name && g.label == label) {
      if (found != nullptr) {
        *found = true;
      }
      return g.value;
    }
  }
  if (found != nullptr) {
    *found = false;
  }
  return 0.0;
}

const HistogramSample* MetricsSnapshot::FindHistogram(std::string_view name,
                                                      std::string_view label) const {
  for (const auto& h : histograms) {
    if (h.name == name && h.label == label) {
      return &h;
    }
  }
  return nullptr;
}

Json MetricsSnapshot::ToJson() const {
  Json root = Json::Object();
  root.Set("schema_version", kMetricsSchemaVersion);
  Json cs = Json::Array();
  for (const auto& c : counters) {
    Json e = Json::Object();
    e.Set("name", c.name);
    if (!c.label.empty()) {
      e.Set("label", c.label);
    }
    e.Set("value", c.value);
    cs.Append(std::move(e));
  }
  root.Set("counters", std::move(cs));
  Json gs = Json::Array();
  for (const auto& g : gauges) {
    Json e = Json::Object();
    e.Set("name", g.name);
    if (!g.label.empty()) {
      e.Set("label", g.label);
    }
    e.Set("value", g.value);
    gs.Append(std::move(e));
  }
  root.Set("gauges", std::move(gs));
  Json hs = Json::Array();
  for (const auto& h : histograms) {
    Json e = Json::Object();
    e.Set("name", h.name);
    if (!h.label.empty()) {
      e.Set("label", h.label);
    }
    Json bounds = Json::Array();
    for (const double b : h.bounds) {
      bounds.Append(Json(b));
    }
    e.Set("bounds", std::move(bounds));
    Json counts = Json::Array();
    for (const int64_t c : h.counts) {
      counts.Append(Json(c));
    }
    e.Set("counts", std::move(counts));
    e.Set("count", h.count);
    e.Set("sum", h.sum);
    e.Set("min", h.min);
    e.Set("max", h.max);
    hs.Append(std::move(e));
  }
  root.Set("histograms", std::move(hs));
  return root;
}

bool MetricsSnapshot::FromJson(const Json& j, MetricsSnapshot* out) {
  if (!j.is_object() || !j.Contains("schema_version") ||
      j.At("schema_version").AsInt() > kMetricsSchemaVersion) {
    return false;
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const Json* arr = j.Find(key);
    if (arr == nullptr || !arr->is_array()) {
      return false;
    }
  }
  MetricsSnapshot s;
  const auto name_label = [](const Json& e, std::string* name, std::string* label) {
    if (!e.is_object() || !e.Contains("name")) {
      return false;
    }
    *name = e.At("name").AsString();
    const Json* l = e.Find("label");
    *label = l != nullptr ? l->AsString() : std::string();
    return true;
  };
  for (size_t i = 0; i < j.At("counters").size(); ++i) {
    const Json& e = j.At("counters").At(i);
    CounterSample c;
    if (!name_label(e, &c.name, &c.label) || !e.Contains("value") ||
        !e.At("value").is_number()) {
      return false;
    }
    c.value = e.At("value").AsInt();
    s.counters.push_back(std::move(c));
  }
  for (size_t i = 0; i < j.At("gauges").size(); ++i) {
    const Json& e = j.At("gauges").At(i);
    GaugeSample g;
    if (!name_label(e, &g.name, &g.label) || !e.Contains("value") ||
        !e.At("value").is_number()) {
      return false;
    }
    g.value = e.At("value").AsDouble();
    s.gauges.push_back(std::move(g));
  }
  for (size_t i = 0; i < j.At("histograms").size(); ++i) {
    const Json& e = j.At("histograms").At(i);
    HistogramSample h;
    if (!name_label(e, &h.name, &h.label)) {
      return false;
    }
    const Json* bounds = e.Find("bounds");
    const Json* counts = e.Find("counts");
    if (bounds == nullptr || counts == nullptr || !bounds->is_array() || !counts->is_array() ||
        counts->size() != bounds->size() + 1) {
      return false;
    }
    for (size_t b = 0; b < bounds->size(); ++b) {
      h.bounds.push_back(bounds->At(b).AsDouble());
    }
    for (size_t c = 0; c < counts->size(); ++c) {
      h.counts.push_back(counts->At(c).AsInt());
    }
    for (const char* key : {"count", "sum", "min", "max"}) {
      if (!e.Contains(key) || !e.At(key).is_number()) {
        return false;
      }
    }
    h.count = e.At("count").AsInt();
    h.sum = e.At("sum").AsDouble();
    h.min = e.At("min").AsDouble();
    h.max = e.At("max").AsDouble();
    s.histograms.push_back(std::move(h));
  }
  *out = std::move(s);
  return true;
}

}  // namespace obs

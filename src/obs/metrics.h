// The unified metrics registry: counters, gauges, fixed-bucket histograms, and labeled
// series, snapshot-able into the frozen JSON schema (docs/metrics_schema.md, schema v1).
//
// Every subsystem publishes through this one interface:
//   * hexsim units export per-unit cycle/byte counters (hexsim::ExportDeviceMetrics);
//   * the serving runtime embeds a snapshot in every ScheduleResult (serve.* / kv.*);
//   * kernels count invocations through the cycle ledger (kernel.*);
//   * benches attach snapshots to their BENCH_<name>.json reports (bench::Reporter).
//
// Naming convention: `unit.metric_name`, lowercase, dot-separated, unit first
// (e.g. "hexsim.hvx.packets", "serve.step_seconds", "kv.cow_splits"). A *labeled series*
// is one metric name fanned out over a small string label (e.g. "hexsim.tag_seconds"
// labeled "attn.softmax") — the label is a data dimension, not part of the name.
//
// Hot-path cost: Counter::Add and Gauge::Set are single inline stores; Histogram::Observe
// is a branchless-enough linear bucket scan over a handful of bounds. Registry lookups
// (the map walk) happen once at wiring time — hold the returned reference. The simulator
// is single-threaded, so there are deliberately no atomics or locks.
//
// Worked example — reading the KV sharing ratio out of a serving run:
//   hserve::ScheduleResult r = batcher.Run(jobs);
//   const obs::MetricsSnapshot& m = r.metrics;
//   double ratio = m.GaugeValue("kv.sharing_ratio");          // logical/physical blocks
//   int64_t cow  = m.CounterValue("kv.cow_splits");           // matches r.kv.cow_splits
//   std::string json = m.ToJson().Dump(2);                    // schema v1 document
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/check.h"
#include "src/obs/json.h"

namespace obs {

// Bumped only when an emitted document would no longer parse under the previous schema;
// additive fields do NOT bump it (see docs/metrics_schema.md for the policy).
inline constexpr int kMetricsSchemaVersion = 1;

// A monotonic 64-bit event counter. Decrements are a programming error.
class Counter {
 public:
  void Add(int64_t n = 1) {
    HEXLLM_DCHECK(n >= 0);
    value_ += n;
  }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// A point-in-time double (last write wins).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed upper-bound buckets for a histogram. Bounds must be strictly increasing; an
// implicit overflow bucket catches everything above the last bound.
struct HistogramBuckets {
  std::vector<double> bounds;

  // `count` buckets at start, start*factor, start*factor^2, ... (latency-style scales).
  static HistogramBuckets Exponential(double start, double factor, int count);
  // `count` buckets at width, 2*width, ... (occupancy-style scales).
  static HistogramBuckets Linear(double width, int count);
};

// Fixed-bucket histogram with sum/min/max so snapshots can report a mean and range without
// retaining samples.
class Histogram {
 public:
  explicit Histogram(HistogramBuckets buckets);

  void Observe(double v);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::vector<double>& bounds() const { return buckets_.bounds; }
  // counts()[i] = observations <= bounds()[i] (and > bounds()[i-1]); counts().back() is the
  // overflow bucket, so counts().size() == bounds().size() + 1.
  const std::vector<int64_t>& counts() const { return counts_; }

 private:
  HistogramBuckets buckets_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// --- snapshot (plain data, detached from the registry) ---

struct CounterSample {
  std::string name;
  std::string label;  // empty for unlabeled metrics
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string label;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 entries (overflow last)
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by (name, label)
  std::vector<GaugeSample> gauges;          // sorted by (name, label)
  std::vector<HistogramSample> histograms;  // sorted by (name, label)

  // Lookup helpers; `found` (when non-null) reports presence, the value defaults to 0.
  int64_t CounterValue(std::string_view name, std::string_view label = {},
                       bool* found = nullptr) const;
  double GaugeValue(std::string_view name, std::string_view label = {},
                    bool* found = nullptr) const;
  const HistogramSample* FindHistogram(std::string_view name,
                                       std::string_view label = {}) const;

  // Schema v1 "metrics" object (docs/metrics_schema.md). ToJson/FromJson round-trip
  // losslessly; FromJson returns false on any shape violation.
  Json ToJson() const;
  static bool FromJson(const Json& j, MetricsSnapshot* out);
};

// The registry: owns metrics, hands out stable references, snapshots on demand. A (name,
// label) pair identifies exactly one metric of exactly one kind — re-registering the same
// name as a different kind aborts (catching naming-convention collisions early).
class Registry {
 public:
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  // Buckets are fixed at first registration; later calls for the same (name, label) must
  // pass identical bounds.
  Histogram& histogram(std::string_view name, const HistogramBuckets& buckets,
                       std::string_view label = {});

  // One-shot conveniences for cold paths (registry lookup per call).
  void Count(std::string_view name, int64_t n = 1, std::string_view label = {}) {
    counter(name, label).Add(n);
  }
  void Set(std::string_view name, double v, std::string_view label = {}) {
    gauge(name, label).Set(v);
  }

  MetricsSnapshot Snapshot() const;
  void Clear();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  using Key = std::pair<std::string, std::string>;  // (name, label)

  void CheckKind(const Key& key, Kind kind);

  std::map<Key, Kind> kinds_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_

// The unified metrics registry: counters, gauges, fixed-bucket histograms, and labeled
// series, snapshot-able into the frozen JSON schema (docs/metrics_schema.md, schema v1).
//
// Every subsystem publishes through this one interface:
//   * hexsim units export per-unit cycle/byte counters (hexsim::ExportDeviceMetrics);
//   * the serving runtime embeds a snapshot in every ScheduleResult (serve.* / kv.*);
//   * kernels count invocations through the cycle ledger (kernel.*);
//   * benches attach snapshots to their BENCH_<name>.json reports (bench::Reporter).
//
// Naming convention: `unit.metric_name`, lowercase, dot-separated, unit first
// (e.g. "hexsim.hvx.packets", "serve.step_seconds", "kv.cow_splits"). A *labeled series*
// is one metric name fanned out over a small string label (e.g. "hexsim.tag_seconds"
// labeled "attn.softmax") — the label is a data dimension, not part of the name.
//
// Hot-path cost and thread safety (docs/threading_model.md): Counter::Add and Gauge::Set
// are single relaxed atomic RMW/stores — safe to call from parallel lanes, and exactly as
// cheap as plain stores when uncontended. Histogram::Observe and every Registry method
// (metric registration, Snapshot, Clear) take a mutex; hold the returned Counter/Gauge
// reference across the hot loop so the map walk happens once at wiring time. Relaxed
// ordering means concurrent Adds never lose increments but a Snapshot taken while writers
// are running is only guaranteed per-metric-consistent, not a cross-metric cut; every
// caller in this repo snapshots after its parallel region joins.
//
// Worked example — reading the KV sharing ratio out of a serving run:
//   hserve::ScheduleResult r = batcher.Run(jobs);
//   const obs::MetricsSnapshot& m = r.metrics;
//   double ratio = m.GaugeValue("kv.sharing_ratio");          // logical/physical blocks
//   int64_t cow  = m.CounterValue("kv.cow_splits");           // matches r.kv.cow_splits
//   std::string json = m.ToJson().Dump(2);                    // schema v1 document
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/check.h"
#include "src/obs/json.h"

namespace obs {

// Bumped only when an emitted document would no longer parse under the previous schema;
// additive fields do NOT bump it (see docs/metrics_schema.md for the policy).
inline constexpr int kMetricsSchemaVersion = 1;

// A monotonic 64-bit event counter. Decrements are a programming error. Thread-safe:
// Add is a relaxed atomic fetch_add, so concurrent increments from parallel lanes are
// never lost (see docs/metrics_schema.md "Atomicity and ordering").
class Counter {
 public:
  void Add(int64_t n = 1) {
    HEXLLM_DCHECK(n >= 0);
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// A point-in-time double (last write wins). Thread-safe: Set/value are relaxed atomic
// store/load, so a concurrent reader sees some previously written value, never a torn one.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed upper-bound buckets for a histogram. Bounds must be strictly increasing; an
// implicit overflow bucket catches everything above the last bound.
struct HistogramBuckets {
  std::vector<double> bounds;

  // `count` buckets at start, start*factor, start*factor^2, ... (latency-style scales).
  static HistogramBuckets Exponential(double start, double factor, int count);
  // `count` buckets at width, 2*width, ... (occupancy-style scales).
  static HistogramBuckets Linear(double width, int count);
};

// Fixed-bucket histogram with sum/min/max so snapshots can report a mean and range without
// retaining samples. Thread-safe: Observe and the accessors share a mutex, keeping
// (count, sum, min, max, buckets) mutually consistent under concurrent observers.
class Histogram {
 public:
  explicit Histogram(HistogramBuckets buckets);

  void Observe(double v);

  int64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
  }
  const std::vector<double>& bounds() const { return buckets_.bounds; }
  // counts()[i] = observations <= bounds()[i] (and > bounds()[i-1]); counts().back() is the
  // overflow bucket, so counts().size() == bounds().size() + 1. Returns a copy taken under
  // the lock so the vector is consistent with a single point in time.
  std::vector<int64_t> counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  mutable std::mutex mu_;
  HistogramBuckets buckets_;  // bounds are immutable after construction
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// --- snapshot (plain data, detached from the registry) ---

struct CounterSample {
  std::string name;
  std::string label;  // empty for unlabeled metrics
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string label;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string label;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 entries (overflow last)
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;      // sorted by (name, label)
  std::vector<GaugeSample> gauges;          // sorted by (name, label)
  std::vector<HistogramSample> histograms;  // sorted by (name, label)

  // Lookup helpers; `found` (when non-null) reports presence, the value defaults to 0.
  int64_t CounterValue(std::string_view name, std::string_view label = {},
                       bool* found = nullptr) const;
  double GaugeValue(std::string_view name, std::string_view label = {},
                    bool* found = nullptr) const;
  const HistogramSample* FindHistogram(std::string_view name,
                                       std::string_view label = {}) const;

  // Schema v1 "metrics" object (docs/metrics_schema.md). ToJson/FromJson round-trip
  // losslessly; FromJson returns false on any shape violation.
  Json ToJson() const;
  static bool FromJson(const Json& j, MetricsSnapshot* out);
};

// The registry: owns metrics, hands out stable references, snapshots on demand. A (name,
// label) pair identifies exactly one metric of exactly one kind — re-registering the same
// name as a different kind aborts (catching naming-convention collisions early).
// Thread-safe: a single mutex guards the maps, so registration/Snapshot/Clear may race;
// the returned references stay valid until Clear() and their hot methods don't touch the
// registry lock.
class Registry {
 public:
  Counter& counter(std::string_view name, std::string_view label = {});
  Gauge& gauge(std::string_view name, std::string_view label = {});
  // Buckets are fixed at first registration; later calls for the same (name, label) must
  // pass identical bounds.
  Histogram& histogram(std::string_view name, const HistogramBuckets& buckets,
                       std::string_view label = {});

  // One-shot conveniences for cold paths (registry lookup per call).
  void Count(std::string_view name, int64_t n = 1, std::string_view label = {}) {
    counter(name, label).Add(n);
  }
  void Set(std::string_view name, double v, std::string_view label = {}) {
    gauge(name, label).Set(v);
  }

  MetricsSnapshot Snapshot() const;
  void Clear();

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  using Key = std::pair<std::string, std::string>;  // (name, label)

  void CheckKind(const Key& key, Kind kind);

  mutable std::mutex mu_;
  std::map<Key, Kind> kinds_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs

#endif  // SRC_OBS_METRICS_H_

// Minimal JSON value type with a writer and a strict parser — the serialization substrate
// of the observability layer (docs/metrics_schema.md freezes the schemas built on top).
//
// Design constraints, in order:
//   1. No third-party dependency (the repo builds from the system toolchain alone).
//   2. Deterministic output: object keys keep insertion order, numbers print either as
//      exact integers or with round-trip precision, so two runs of a bench diff cleanly.
//   3. Small enough to audit: one value type, one Dump, one recursive-descent Parse.
//
// Usage:
//   obs::Json j = obs::Json::Object();
//   j.Set("schema_version", 1);
//   j.Set("rows", obs::Json::Array());
//   j.At("rows").Append(obs::Json(42.5));
//   std::string text = j.Dump(2);          // pretty, 2-space indent
//   obs::Json back;
//   std::string err;
//   bool ok = obs::Json::Parse(text, &back, &err);
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace obs {

class Json {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kInt,     // exact 64-bit integer (counters, block counts, schema version)
    kDouble,  // everything measured (seconds, ratios, throughput)
    kString,
    kArray,
    kObject,
  };

  Json() : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}                        // NOLINT(runtime/explicit)
  Json(int v) : type_(Type::kInt), int_(v) {}                           // NOLINT(runtime/explicit)
  Json(int64_t v) : type_(Type::kInt), int_(v) {}                       // NOLINT(runtime/explicit)
  Json(double v) : type_(Type::kDouble), double_(v) {}                  // NOLINT(runtime/explicit)
  Json(const char* v) : type_(Type::kString), str_(v) {}                // NOLINT(runtime/explicit)
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}     // NOLINT(runtime/explicit)
  Json(std::string_view v) : type_(Type::kString), str_(v) {}           // NOLINT(runtime/explicit)

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Value accessors. Numeric accessors coerce between the two number types; everything else
  // aborts on a type mismatch (schema bugs should be loud).
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  // --- array ---
  size_t size() const;  // elements (array), members (object), 0 otherwise
  Json& Append(Json v);                 // array only
  const Json& At(size_t i) const;       // array index

  // --- object (insertion-ordered) ---
  Json& Set(std::string_view key, Json v);  // returns the stored value
  bool Contains(std::string_view key) const;
  const Json* Find(std::string_view key) const;  // nullptr when absent
  Json& At(std::string_view key);                // aborts when absent
  const Json& At(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  // Serializes. indent < 0: compact one-line form; indent >= 0: pretty-printed with that
  // many spaces per level. Non-finite doubles serialize as null (JSON has no NaN/Inf).
  std::string Dump(int indent = -1) const;

  // Strict parser (no comments, no trailing commas). On failure returns false and, when
  // `error` is non-null, a message with the byte offset.
  static bool Parse(std::string_view text, Json* out, std::string* error = nullptr);

  bool operator==(const Json& o) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

// Writes `text` to `path` atomically enough for bench artifacts (write then rename is
// overkill for single-process emitters; this truncates and writes). Returns false on I/O
// failure.
bool WriteFile(const std::string& path, const std::string& text);

}  // namespace obs

#endif  // SRC_OBS_JSON_H_

// The vocabulary projection (lm_head) on the host CPU.
//
// §7.2.2: the lm_head and logits tensors are deliberately placed on the CPU because the
// Hexagon NPU's 32-bit session address space cannot also hold the large vocabulary
// projection. At batch 16 this CPU stage approaches or exceeds 50% of per-token time, which
// caps the throughput scaling in Figure 11. The cost model captures a GEMV/GEMM on the big
// cores: bandwidth-bound at small batch (the FP16 weight matrix streams once), compute-bound
// as batch grows, parallelized over up to 4 big cores (Figure 16 observes exactly 4).
#ifndef SRC_KERNELS_LM_HEAD_H_
#define SRC_KERNELS_LM_HEAD_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/device_profile.h"

namespace hkern {

struct LmHeadCost {
  double seconds = 0.0;
  int cores_used = 0;
  double cpu_busy_s = 0.0;  // sum over cores
};

// Cost of projecting `batch` hidden states of width `hidden` onto `vocab` logits with FP16
// weights on the CPU.
LmHeadCost LmHeadCostModel(const hexsim::DeviceProfile& profile, int batch, int hidden,
                           int64_t vocab);

// Functional reference (FP32 accumulate over FP16 weights) for the toy end-to-end tests.
// logits[batch, vocab] = h[batch, hidden] x w[hidden, vocab] (w column-major: w[v*hidden+i]).
void LmHeadForward(const hexllm::F16* h, const hexllm::F16* w, float* logits, int batch,
                   int hidden, int64_t vocab);

// Blocked lm_head over pre-converted FP32 operands: `h` is the hidden batch converted
// F16->float once per row (not once per vocab column), `w` the weight matrix converted once
// at load and TRANSPOSED to row-major (w[i*vocab+v]) so the inner sweep reads contiguous
// vocab slices. Each logit is the identical ascending-hidden-index float accumulation as
// LmHeadForward — F16::ToFloat is exact and per-column sums keep their chain order, so
// pre-converting and re-blocking never changes a bit — and the ParallelFor partition over
// the flattened [batch x vocab] index space is byte-for-byte the same contract
// (docs/performance.md).
void LmHeadForwardF32W(const float* h, const float* w, float* logits, int batch, int hidden,
                       int64_t vocab);

}  // namespace hkern

#endif  // SRC_KERNELS_LM_HEAD_H_

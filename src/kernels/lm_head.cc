#include "src/kernels/lm_head.h"

#include <algorithm>

namespace hkern {

LmHeadCost LmHeadCostModel(const hexsim::DeviceProfile& profile, int batch, int hidden,
                           int64_t vocab) {
  LmHeadCost cost;
  cost.cores_used = std::min(profile.cpu_big_cores, std::max(1, batch));
  const double weight_bytes = static_cast<double>(hidden) * vocab * 2.0;  // FP16
  const double flops = 2.0 * batch * hidden * static_cast<double>(vocab);
  // One streaming pass over the weights (shared across the batch) plus per-core compute.
  const double mem_s = weight_bytes / (profile.cpu_mem_gbps * 1e9);
  const double compute_s =
      flops / (profile.cpu_gflops_per_core * 1e9 * cost.cores_used);
  cost.seconds = std::max(mem_s, compute_s);
  cost.cpu_busy_s = cost.seconds * cost.cores_used;
  return cost;
}

void LmHeadForward(const hexllm::F16* h, const hexllm::F16* w, float* logits, int batch,
                   int hidden, int64_t vocab) {
  for (int b = 0; b < batch; ++b) {
    const hexllm::F16* hb = h + static_cast<int64_t>(b) * hidden;
    float* out = logits + static_cast<int64_t>(b) * vocab;
    for (int64_t v = 0; v < vocab; ++v) {
      const hexllm::F16* col = w + v * hidden;
      float acc = 0.0f;
      for (int i = 0; i < hidden; ++i) {
        acc += hb[i].ToFloat() * col[i].ToFloat();
      }
      out[v] = acc;
    }
  }
}

}  // namespace hkern

#include "src/kernels/lm_head.h"

#include <algorithm>

#include "src/exec/thread_pool.h"

namespace hkern {

LmHeadCost LmHeadCostModel(const hexsim::DeviceProfile& profile, int batch, int hidden,
                           int64_t vocab) {
  LmHeadCost cost;
  cost.cores_used = std::min(profile.cpu_big_cores, std::max(1, batch));
  const double weight_bytes = static_cast<double>(hidden) * vocab * 2.0;  // FP16
  const double flops = 2.0 * batch * hidden * static_cast<double>(vocab);
  // One streaming pass over the weights (shared across the batch) plus per-core compute.
  const double mem_s = weight_bytes / (profile.cpu_mem_gbps * 1e9);
  const double compute_s =
      flops / (profile.cpu_gflops_per_core * 1e9 * cost.cores_used);
  cost.seconds = std::max(mem_s, compute_s);
  cost.cpu_busy_s = cost.seconds * cost.cores_used;
  return cost;
}

void LmHeadForward(const hexllm::F16* h, const hexllm::F16* w, float* logits, int batch,
                   int hidden, int64_t vocab) {
  // Pure host math with no device accounting; every (row, vocab-column) output is an
  // independent dot product, so the flattened index space parallelizes directly and each
  // logit is bit-identical at any lane count.
  hexec::ParallelFor(static_cast<int64_t>(batch) * vocab,
                     [&](int64_t begin, int64_t end, int /*slot*/) {
                       for (int64_t idx = begin; idx < end; ++idx) {
                         const int64_t b = idx / vocab;
                         const int64_t v = idx % vocab;
                         const hexllm::F16* hb = h + b * hidden;
                         const hexllm::F16* col = w + v * hidden;
                         float acc = 0.0f;
                         for (int i = 0; i < hidden; ++i) {
                           acc += hb[i].ToFloat() * col[i].ToFloat();
                         }
                         logits[b * vocab + v] = acc;
                       }
                     });
}

void LmHeadForwardF32W(const float* h, const float* w, float* logits, int batch, int hidden,
                       int64_t vocab) {
  constexpr int64_t kVocabTile = 64;  // columns per register-blocked accumulator sweep
  hexec::ParallelFor(
      static_cast<int64_t>(batch) * vocab, [&](int64_t begin, int64_t end, int /*slot*/) {
        int64_t idx = begin;
        while (idx < end) {
          const int64_t b = idx / vocab;
          const int64_t v_begin = idx % vocab;
          // Columns of row `b` covered by this range (ranges may span row boundaries).
          const int64_t seg_end = std::min(end, (b + 1) * vocab);
          const int64_t v_end = v_begin + (seg_end - idx);
          const float* hb = h + b * hidden;
          float* out = logits + b * vocab;
          for (int64_t vt = v_begin; vt < v_end; vt += kVocabTile) {
            const int64_t width = std::min(v_end, vt + kVocabTile) - vt;
            // One accumulator per column, hidden index outermost: each column's sum is the
            // plain ascending-i chain (bit-identical to a per-column dot), while the inner
            // sweep runs over contiguous weight-row slices and vectorizes.
            float acc[kVocabTile];
            std::fill(acc, acc + width, 0.0f);
            for (int i = 0; i < hidden; ++i) {
              const float hi = hb[i];
              const float* wrow = w + static_cast<int64_t>(i) * vocab + vt;
              for (int64_t c = 0; c < width; ++c) {
                acc[c] += hi * wrow[c];
              }
            }
            for (int64_t c = 0; c < width; ++c) {
              out[vt + c] = acc[c];
            }
          }
          idx = seg_end;
        }
      });
}

}  // namespace hkern

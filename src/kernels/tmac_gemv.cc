#include "src/kernels/tmac_gemv.h"

#include <algorithm>
#include <vector>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hkern {

using hexllm::F16;
using hexllm::RoundToF16;

void TmacGemvReference(std::span<const hquant::BlockQ4_0> blocks, int64_t k_dim,
                       int64_t n_dim, std::span<const F16> a, std::span<float> y) {
  HEXLLM_CHECK(static_cast<int64_t>(blocks.size()) * hquant::kGroupSize == k_dim * n_dim);
  HEXLLM_CHECK(static_cast<int64_t>(a.size()) == k_dim);
  HEXLLM_CHECK(static_cast<int64_t>(y.size()) == n_dim);
  HEXLLM_CHECK(k_dim % 4 == 0);

  // Precompute the subset-sum LUTs: for activation quad q, table[q][pattern] =
  // sum of a[4q+i] over set bits i of pattern. FP16 table entries (the vlut16 payload),
  // built by recursive doubling as the vector kernel would.
  const int64_t quads = k_dim / 4;
  std::vector<float> table(static_cast<size_t>(quads) * 16);
  for (int64_t q = 0; q < quads; ++q) {
    float* t = table.data() + q * 16;
    t[0] = 0.0f;
    for (int i = 0; i < 4; ++i) {
      const float ai = a[static_cast<size_t>(4 * q + i)].ToFloat();
      const int half = 1 << i;
      for (int p = 0; p < half; ++p) {
        t[half + p] = RoundToF16(t[p] + ai);
      }
    }
  }
  // Per-group activation sums for the -8 offset correction (FP32).
  const int64_t groups_per_col = k_dim / hquant::kGroupSize;
  std::vector<float> group_sum(static_cast<size_t>(groups_per_col), 0.0f);
  for (int64_t g = 0; g < groups_per_col; ++g) {
    float s = 0.0f;
    for (int i = 0; i < hquant::kGroupSize; ++i) {
      s += a[static_cast<size_t>(g * hquant::kGroupSize + i)].ToFloat();
    }
    group_sum[static_cast<size_t>(g)] = s;
  }

  for (int64_t n = 0; n < n_dim; ++n) {
    double acc = 0.0;
    for (int64_t g = 0; g < groups_per_col; ++g) {
      const hquant::BlockQ4_0& b = blocks[static_cast<size_t>(n * groups_per_col + g)];
      const float d = b.d.ToFloat();
      // Gather the group's 32 nibble codes.
      int codes[hquant::kGroupSize];
      for (int i = 0; i < hquant::kGroupSize; ++i) {
        const int half = hquant::kGroupSize / 2;
        codes[i] = (i < half) ? (b.qs[i] & 0x0F) : (b.qs[i - half] >> 4);
      }
      // Bit-serial subset-sum accumulation: every a*w product goes through the LUTs.
      double part = 0.0;
      for (int bit = 0; bit < 4; ++bit) {
        double bit_acc = 0.0;
        for (int quad = 0; quad < hquant::kGroupSize / 4; ++quad) {
          int pattern = 0;
          for (int i = 0; i < 4; ++i) {
            pattern |= ((codes[4 * quad + i] >> bit) & 1) << i;
          }
          const int64_t gq = g * (hquant::kGroupSize / 4) + quad;
          bit_acc += table[static_cast<size_t>(gq * 16 + pattern)];
        }
        part += static_cast<double>(1 << bit) * bit_acc;
      }
      part -= 8.0 * group_sum[static_cast<size_t>(g)];
      acc += d * part;
    }
    y[static_cast<size_t>(n)] = static_cast<float>(acc);
  }
}

double TmacPacketsPer64(const hexsim::DeviceProfile& profile) {
  // Per vlut16 we serve 128 (quad, output) pairs; per pair: index extraction from the
  // bit-plane-packed weights (1), lookup (1), shift-accumulate (1) -> 3/128 per quad-bit.
  // 64 weights = 16 quads x 4 bit-planes = 64 quad-bits -> 64 * 3/128 * ... normalized per
  // output column the kernel covers; expressed per 64 weight elements this is 1.5 packets,
  // plus ~0.5 for scale application and group-offset correction.
  (void)profile;
  return 2.0;
}

TmacGemvCost TmacGemvCostModel(const hexsim::DeviceProfile& profile, int m, int k_dim,
                               int n_dim, int threads) {
  TmacGemvCost cost;
  const double elems = static_cast<double>(k_dim) * n_dim;
  // Bit-plane-packed INT4 payload + FP16 scales: same 4.5 bpw stream as Q4_0.
  const double weight_bytes = elems * 4.5 / 8.0;
  cost.dma_s = weight_bytes / (profile.dma_read_gbps * 1e9) + 250e-9;
  const double hz = profile.hvx_freq_ghz * 1e9;
  // LUT construction: 16 entries per quad per batch row, ~4 packets per quad, amortized
  // over all N outputs (negligible for N >= 512 but charged anyway).
  const double lut_build = static_cast<double>(k_dim) / 4.0 * 4.0 * m;
  const double lookups = elems / 64.0 * TmacPacketsPer64(profile) * m;
  cost.hvx_busy_s = (lut_build + lookups) / hz;
  cost.hvx_latency_s = cost.hvx_busy_s / std::max(1, threads);
  cost.total_s = std::max(cost.dma_s, cost.hvx_latency_s);
  return cost;
}

}  // namespace hkern

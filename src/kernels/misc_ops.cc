#include "src/kernels/misc_ops.h"

#include <cmath>

#include "src/base/check.h"

namespace hkern {

using hexllm::F16;
using hexllm::RoundToF16;
using hexsim::HvxContext;
using hexsim::HvxVec;
using hexsim::HvxVecPair;

void RmsNormF16(hexsim::NpuDevice& dev, const F16* x, const F16* gamma, F16* y, int rows,
                int width, float eps) {
  HEXLLM_CHECK(width % HvxVec::kHalfwords == 0);
  dev.ledger().AddCount("kernel.rmsnorm.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  const int regs = width / HvxVec::kHalfwords;

  for (int r = 0; r < rows; ++r) {
    const F16* row = x + static_cast<int64_t>(r) * width;
    // Sum of squares in FP32.
    double ss = 0.0;
    for (int g = 0; g < regs; ++g) {
      const HvxVec v = ctx.LoadAligned(row + g * HvxVec::kHalfwords);
      const HvxVecPair wide = ctx.WidenHfToSf(v);
      ctx.Charge(2);  // two FMA-style square-accumulates
      for (int i = 0; i < HvxVec::kWords; ++i) {
        ss += static_cast<double>(wide.lo.GetF32(i)) * wide.lo.GetF32(i);
        ss += static_cast<double>(wide.hi.GetF32(i)) * wide.hi.GetF32(i);
      }
    }
    ctx.Charge(6);       // horizontal reduction
    ctx.ChargeScalar(25);  // rsqrt on the scalar core
    const float inv_rms = 1.0f / std::sqrt(static_cast<float>(ss) / width + eps);
    const HvxVec vscale = ctx.VSplatHf(inv_rms);
    F16* out = y + static_cast<int64_t>(r) * width;
    for (int g = 0; g < regs; ++g) {
      HvxVec v = ctx.LoadAligned(row + g * HvxVec::kHalfwords);
      const HvxVec gm = ctx.LoadAligned(gamma + g * HvxVec::kHalfwords);
      v = ctx.VMpyHf(v, vscale);
      v = ctx.VMpyHf(v, gm);
      v = ctx.ConvertQf(v);
      ctx.Store(out + g * HvxVec::kHalfwords, v);
    }
  }
  dev.CommitHvxPackets(ctx.packets() - start, 1, "misc.rmsnorm");
  ctx.ResetPackets();
}

void RopeF16(hexsim::NpuDevice& dev, F16* x, int rows, int head_dim, int pos0,
             float theta_base) {
  HEXLLM_CHECK(head_dim % 2 == 0);
  dev.ledger().AddCount("kernel.rope.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();

  for (int r = 0; r < rows; ++r) {
    const int pos = pos0 + r;
    F16* row = x + static_cast<int64_t>(r) * head_dim;
    // Vector cost: load sin/cos tables + rotate: ~6 packets per 64 lanes.
    ctx.Charge((head_dim + HvxVec::kHalfwords - 1) / HvxVec::kHalfwords * 6);
    for (int i = 0; i < head_dim / 2; ++i) {
      const double theta =
          pos * std::pow(static_cast<double>(theta_base),
                         -2.0 * i / static_cast<double>(head_dim));
      const float c = static_cast<float>(std::cos(theta));
      const float s = static_cast<float>(std::sin(theta));
      const float a = row[2 * i].ToFloat();
      const float b = row[2 * i + 1].ToFloat();
      row[2 * i] = F16(RoundToF16(a * c - b * s));
      row[2 * i + 1] = F16(RoundToF16(a * s + b * c));
    }
  }
  dev.CommitHvxPackets(ctx.packets() - start, 1, "misc.rope");
  ctx.ResetPackets();
}

namespace {

// Shared body of the RopeHeadsF16 overloads: `freq(i)` yields base^(-2i/d) for pair i.
template <typename FreqFn>
void RopeHeadsImpl(hexsim::NpuDevice& dev, F16* x, int heads, int head_dim, int pos,
                   const FreqFn& freq) {
  HEXLLM_CHECK(head_dim % 2 == 0 && heads >= 1);
  dev.ledger().AddCount("kernel.rope.calls", heads);
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  ctx.Charge(static_cast<int64_t>(heads) *
             ((head_dim + HvxVec::kHalfwords - 1) / HvxVec::kHalfwords * 6));
  for (int i = 0; i < head_dim / 2; ++i) {
    // Same angle expression as RopeF16, evaluated once and reused across heads.
    const double theta = pos * freq(i);
    const float c = static_cast<float>(std::cos(theta));
    const float s = static_cast<float>(std::sin(theta));
    for (int h = 0; h < heads; ++h) {
      F16* row = x + static_cast<int64_t>(h) * head_dim;
      const float a = row[2 * i].ToFloat();
      const float b = row[2 * i + 1].ToFloat();
      row[2 * i] = F16(RoundToF16(a * c - b * s));
      row[2 * i + 1] = F16(RoundToF16(a * s + b * c));
    }
  }
  dev.CommitHvxPackets(ctx.packets() - start, 1, "misc.rope");
  ctx.ResetPackets();
}

}  // namespace

void RopeHeadsF16(hexsim::NpuDevice& dev, F16* x, int heads, int head_dim, int pos,
                  float theta_base) {
  RopeHeadsImpl(dev, x, heads, head_dim, pos, [&](int i) {
    return std::pow(static_cast<double>(theta_base),
                    -2.0 * i / static_cast<double>(head_dim));
  });
}

std::vector<double> RopeInvFreq(int head_dim, float theta_base) {
  HEXLLM_CHECK(head_dim % 2 == 0);
  std::vector<double> inv_freq(static_cast<size_t>(head_dim / 2));
  for (int i = 0; i < head_dim / 2; ++i) {
    inv_freq[static_cast<size_t>(i)] =
        std::pow(static_cast<double>(theta_base), -2.0 * i / static_cast<double>(head_dim));
  }
  return inv_freq;
}

void RopeHeadsF16(hexsim::NpuDevice& dev, F16* x, int heads, int head_dim, int pos,
                  const double* inv_freq) {
  RopeHeadsImpl(dev, x, heads, head_dim, pos, [&](int i) { return inv_freq[i]; });
}

void SiluMulF16(hexsim::NpuDevice& dev, const F16* a, const F16* b, F16* y, int64_t count) {
  HEXLLM_CHECK(count % HvxVec::kHalfwords == 0);
  dev.ledger().AddCount("kernel.silu_mul.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  const int64_t regs = count / HvxVec::kHalfwords;
  // Per register: 2 loads + sigmoid approximation (~8) + 2 multiplies + store.
  ctx.Charge(regs * 13);
  for (int64_t i = 0; i < count; ++i) {
    const float av = a[i].ToFloat();
    const float bv = b[i].ToFloat();
    const float silu = av / (1.0f + std::exp(-av));
    y[i] = F16(RoundToF16(RoundToF16(silu) * bv));
  }
  dev.CommitHvxPackets(ctx.packets() - start, 1, "misc.silu");
  ctx.ResetPackets();
}

void AddF16(hexsim::NpuDevice& dev, const F16* a, const F16* b, F16* y, int64_t count) {
  HEXLLM_CHECK(count % HvxVec::kHalfwords == 0);
  dev.ledger().AddCount("kernel.add.calls");
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  for (int64_t off = 0; off < count; off += HvxVec::kHalfwords) {
    const HvxVec va = ctx.LoadAligned(a + off);
    const HvxVec vb = ctx.LoadAligned(b + off);
    HvxVec s = ctx.VAddHf(va, vb);
    s = ctx.ConvertQf(s);
    ctx.Store(y + off, s);
  }
  dev.CommitHvxPackets(ctx.packets() - start, 1, "misc.add");
  ctx.ResetPackets();
}

}  // namespace hkern

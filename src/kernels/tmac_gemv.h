// T-MAC-style mixed-precision GEMV via table lookup — the §8(a) future-work direction
// ("Approaches similar to T-MAC could potentially enable efficient GEMV with fine-grained
// group quantization on NPUs, thereby accelerating the LLM decoding process"), implemented.
//
// Instead of dequantizing INT4 weights to FP16 and multiplying on HMX, the kernel computes
// bit-serial subset sums (Wei et al., T-MAC, EuroSys'25):
//
//   y_n = sum_g d_{g,n} * [ sum_{b=0..3} 2^b * sum_{k in g} a_k * bit_b(u_{k,n})
//                           - 8 * sum_{k in g} a_k ]
//
// For every quad of 4 activations a LUT of all 16 subset sums is precomputed (amortized
// over all N outputs); each output then needs one 16-entry lookup per (quad, bit-plane) —
// exactly the shape of vlut16, which serves 128 (quad, output) pairs per instruction.
//
// Consequences reproduced from the T-MAC paper's claims:
//   * HVX work ~2 packets / 64 weights (vs 4.25 for dequant+HMX) and NO HMX at all, so
//     batch-1 GEMV becomes DMA-bound (near the no-dequantization upper bound);
//   * the LUTs depend on the activations, so a batch of B rows costs B times the lookup
//     work — the HMX path wins back at moderate batch. bench_ext_tmac sweeps the crossover.
#ifndef SRC_KERNELS_TMAC_GEMV_H_
#define SRC_KERNELS_TMAC_GEMV_H_

#include <cstdint>
#include <span>

#include "src/base/fp16.h"
#include "src/hexsim/device_profile.h"
#include "src/quant/quant_types.h"

namespace hkern {

// Functional reference: y[n] = sum_k a[k] * W[k,n] with W given as conventional
// column-major Q4_0 blocks of a [K, N] matrix, computed with the bit-serial subset-sum LUT
// algorithm (FP16 table entries, FP32 accumulation). Bit-exact in structure: every product
// is realized as table lookups, never as a multiply against a dequantized weight.
void TmacGemvReference(std::span<const hquant::BlockQ4_0> blocks, int64_t k_dim,
                       int64_t n_dim, std::span<const hexllm::F16> a, std::span<float> y);

struct TmacGemvCost {
  double dma_s = 0.0;
  double hvx_busy_s = 0.0;
  double hvx_latency_s = 0.0;
  double total_s = 0.0;
};

// Cost of a batch-M T-MAC GEMV over a [K, N] INT4 matrix with `threads` HVX threads.
// HVX work scales with M (per-row LUTs); there is no HMX term.
TmacGemvCost TmacGemvCostModel(const hexsim::DeviceProfile& profile, int m, int k_dim,
                               int n_dim, int threads);

// HVX packets per 64 weight elements per batch row (exposed for tests/benches).
double TmacPacketsPer64(const hexsim::DeviceProfile& profile);

}  // namespace hkern

#endif  // SRC_KERNELS_TMAC_GEMV_H_

// FP16 GEMM on the matrix unit (HMX) and on the vector unit (HVX).
//
// These two kernels are the subjects of Table 2: the same 1024^3 FP16 GEMM runs ~365x faster
// on HMX than on a single HVX thread, which is the imbalance motivating the whole system.
// Both kernels exist in functional form (real numerics through the simulators, used by tests
// and small benches) and as analytic cost models (used for full-size shapes).
#ifndef SRC_KERNELS_GEMM_H_
#define SRC_KERNELS_GEMM_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"

namespace hkern {

// C[M,N] (FP16, row-major) = A[M,K] (FP16, row-major) x B (FP16, HMX tile stream order:
// column-major 32x32 tiles, Figure 4b). M, K, N must be multiples of 32. When
// `operands_in_tcm` is true no DMA is charged (the Table 2 peak-measurement configuration).
// `valid_m` (default m) marks how many leading rows of A actually carry data: rows beyond
// it are never read and the matching C rows are left unspecified — the tile/packet charges
// are those of the full padded shape either way, so a caller padding a partial batch up to
// a tile gets bit-identical counters and valid-row results without touching the padding.
// Returns the simulated latency in seconds.
double GemmF16Hmx(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b_tiles,
                  hexllm::F16* c, int m, int k, int n, bool operands_in_tcm,
                  int valid_m = -1);

// C[M,N] = A[M,K] x B[K,N] (all FP16 row-major) on ONE HVX thread: per 64-wide output chunk,
// a vsplat/load/multiply/accumulate inner loop over K. Returns the simulated latency.
double GemmF16Hvx(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b,
                  hexllm::F16* c, int m, int k, int n);

// Analytic packet count of GemmF16Hvx (exact match with the emulated kernel).
int64_t GemmF16HvxPackets(const hexsim::DeviceProfile& profile, int m, int k, int n);

// Analytic HMX tile-op count of GemmF16Hmx.
int64_t GemmF16HmxTileOps(int m, int k, int n);

}  // namespace hkern

#endif  // SRC_KERNELS_GEMM_H_

#include "src/kernels/softmax.h"

#include <algorithm>
#include <cmath>

#include "src/base/check.h"
#include "src/base/math_util.h"

namespace hkern {

using hexllm::F16;
using hexllm::F16BitsToF32;
using hexllm::F32ToF16Bits;
using hexllm::RoundToF16;
using hexsim::HvxContext;
using hexsim::HvxVec;
using hexsim::HvxVecPair;

namespace {

// Per-register packet budgets for the three exp variants (V73/V75 with qfloat overheads vs
// V79 native-IEEE). The polynomial budgets include the serial-dependency stall cycles the
// VLIW pipeline cannot hide (§5.2.1); the emulated instruction stream issues its real ops
// and tops up to the budget with ChargeStalls so analytic model and emulation agree exactly.
struct ExpBudget {
  int64_t qf;      // V73/V75
  int64_t native;  // V79
};
constexpr ExpBudget kF32PolyBudget{90, 78};
constexpr ExpBudget kF16PolyBudget{64, 54};

// Gather contention growth per additional in-flight row (fraction of vgather latency).
constexpr double kGatherContention = 0.05;
constexpr int kMaxContendingRows = 16;

int64_t PolyBudget(const hexsim::DeviceProfile& p, SoftmaxVariant v) {
  const ExpBudget& b = (v == SoftmaxVariant::kF32Poly) ? kF32PolyBudget : kF16PolyBudget;
  return p.native_ieee_fp16 ? b.native : b.qf;
}

// exp2 polynomial on [0, 1): degree 4 for the FP16 path, degree 5 for FP32.
constexpr double kExp2C[6] = {1.0,
                              0.6931471805599453,
                              0.2401596780645461,
                              0.05550410866482158,
                              0.009618129107628477,
                              0.0013333558146428443};

constexpr float kLog2E = 1.4426950408889634f;

// Functional FP16 polynomial exp (every intermediate rounded to FP16 — this is the numeric
// behaviour Table 5 compares the LUT against).
float ExpPolyF16Lane(float x) {
  if (x <= -17.0f) {
    return 0.0f;  // below FP16 subnormal range after scaling
  }
  const float t = RoundToF16(x * kLog2E);
  const float kf = std::floor(t);
  const int k = static_cast<int>(kf);
  const float f = RoundToF16(t - kf);
  // Horner, degree 4, rounding each step to FP16.
  float p = static_cast<float>(kExp2C[4]);
  for (int i = 3; i >= 0; --i) {
    p = RoundToF16(p * f + static_cast<float>(kExp2C[i]));
  }
  // 2^k assembled through the exponent field; k in [-25, 0] here. Biased exponents <= 0
  // flush to zero (the hardware shortcut for the negligible tail).
  const int biased = k + 15;
  if (biased <= 0) {
    return 0.0f;
  }
  const float p2k = F16BitsToF32(static_cast<uint16_t>(biased << 10));
  return RoundToF16(p * p2k);
}

// Functional FP32 polynomial exp (intermediates at FP32; result rounded to FP16 by caller's
// register semantics).
float ExpPolyF32Lane(float x) {
  if (x <= -30.0f) {
    return 0.0f;
  }
  const float t = x * kLog2E;
  const float kf = std::floor(t);
  const float f = t - kf;
  float p = static_cast<float>(kExp2C[5]);
  for (int i = 4; i >= 0; --i) {
    p = p * f + static_cast<float>(kExp2C[i]);
  }
  return std::ldexp(p, static_cast<int>(kf));
}

}  // namespace

const char* SoftmaxVariantName(SoftmaxVariant v) {
  switch (v) {
    case SoftmaxVariant::kF32Poly:
      return "F32 poly exp";
    case SoftmaxVariant::kF16Poly:
      return "F16 poly exp";
    case SoftmaxVariant::kLut:
      return "LUT exp (vgather)";
  }
  return "?";
}

int64_t ExpRegPacketCost(const hexsim::DeviceProfile& profile, SoftmaxVariant v,
                         int parallel_rows) {
  switch (v) {
    case SoftmaxVariant::kF32Poly:
    case SoftmaxVariant::kF16Poly:
      return PolyBudget(profile, v);
    case SoftmaxVariant::kLut: {
      const int rows = hexllm::Clamp(parallel_rows, 1, kMaxContendingRows);
      const int64_t contention = static_cast<int64_t>(
          kGatherContention * profile.vgather_packets * (rows - 1) + 0.5);
      // splat + vand + vshl + vgather + staging load
      return 3 + profile.vgather_packets + 1 + 1 + contention;
    }
  }
  return 0;
}

HvxVec ExpNonPosF16(hexsim::NpuDevice& dev, SoftmaxVariant v, const ExpLut* lut,
                    const HvxVec& x, int parallel_rows) {
  HvxContext& ctx = dev.hvx();
  const int64_t start = ctx.packets();
  HvxVec out;

  switch (v) {
    case SoftmaxVariant::kLut: {
      HEXLLM_CHECK_MSG(lut != nullptr, "LUT softmax requires an ExpLut");
      const HvxVec mask = ctx.VSplatH(0x7FFF);
      HvxVec idx = ctx.VAnd(x, mask);
      idx = ctx.VShlH(idx, 1);
      out = ctx.VGather(dev.tcm(), lut->tcm_offset(), idx);
      ctx.Charge(1);  // load of the vgather staging region
      // TCM bank contention between concurrently gathering rows.
      const int rows = hexllm::Clamp(parallel_rows, 1, kMaxContendingRows);
      ctx.Charge(static_cast<int64_t>(kGatherContention * dev.profile().vgather_packets *
                                          (rows - 1) +
                                      0.5));
      break;
    }
    case SoftmaxVariant::kF16Poly: {
      // Issue a representative instruction stream for the cost accounting...
      const HvxVec log2e = ctx.VSplatHf(kLog2E);
      HvxVec t = ctx.VMpyHf(x, log2e);
      ctx.Charge(2);  // floor via bias-add trick
      HvxVec tmp = ctx.VCvtHfToH(t);
      tmp = ctx.VCvtHToHf(tmp);
      ctx.Charge(1 + 8 + 2 + 1);  // frac subtract, Horner deg-4, 2^k assembly, final mul
      (void)ctx.ConvertQf(t);
      // ...and compute the faithful FP16 numerics directly.
      for (int i = 0; i < HvxVec::kHalfwords; ++i) {
        out.SetHf(i, ExpPolyF16Lane(x.GetHf(i)));
      }
      break;
    }
    case SoftmaxVariant::kF32Poly: {
      HvxVecPair wide = ctx.WidenHfToSf(x);
      ctx.Charge(2 * (10 + 2 + 1 + 1 + 1 + 3 + 1));  // deg-5 Horner + floor/frac + 2^k, per half
      HvxVecPair res;
      for (int i = 0; i < HvxVec::kWords; ++i) {
        res.lo.SetF32(i, ExpPolyF32Lane(wide.lo.GetF32(i)));
        res.hi.SetF32(i, ExpPolyF32Lane(wide.hi.GetF32(i)));
      }
      out = ctx.NarrowSfToHf(res);
      break;
    }
  }

  // Top up to the calibrated budget with pipeline-stall cycles so that the emulated count
  // equals ExpRegPacketCost exactly.
  const int64_t budget = ExpRegPacketCost(dev.profile(), v, parallel_rows);
  const int64_t issued = ctx.packets() - start;
  HEXLLM_CHECK_MSG(issued <= budget, "exp instruction stream exceeds its calibrated budget");
  ctx.ChargeStalls(budget - issued);
  return out;
}

void SoftmaxRowsF16(hexsim::NpuDevice& dev, SoftmaxVariant v, const ExpLut* lut, F16* s,
                    int rows, int cols) {
  HEXLLM_CHECK(cols % HvxVec::kHalfwords == 0);
  dev.ledger().AddCount("kernel.softmax_rows.calls");
  HvxContext& ctx = dev.hvx();
  const int regs = cols / HvxVec::kHalfwords;
  const int64_t start = ctx.packets();

  for (int r = 0; r < rows; ++r) {
    F16* row = s + static_cast<int64_t>(r) * cols;

    // Pass 1: row max.
    HvxVec vmax = ctx.LoadAligned(row);
    for (int g = 1; g < regs; ++g) {
      const HvxVec vg = ctx.LoadAligned(row + g * HvxVec::kHalfwords);
      vmax = ctx.VMaxHf(vmax, vg);
    }
    const float m = ctx.ReduceMaxHf(vmax);
    const HvxVec vm = ctx.VSplatHf(m);

    // Pass 2: exp(x - m), accumulate the row sum in FP32 (Algorithm 1's AccumType=FP32).
    HvxVec acc_lo = ctx.VSplatSf(0.0f);
    HvxVec acc_hi = acc_lo;  // no extra packet: register copy
    for (int g = 0; g < regs; ++g) {
      F16* chunk = row + g * HvxVec::kHalfwords;
      HvxVec x = ctx.LoadAligned(chunk);
      x = ctx.VSubHf(x, vm);
      const HvxVec e = ExpNonPosF16(dev, v, lut, x, rows);
      const HvxVecPair wide = ctx.WidenHfToSf(e);
      acc_lo = ctx.VAddSf(acc_lo, wide.lo);
      acc_hi = ctx.VAddSf(acc_hi, wide.hi);
      ctx.Store(chunk, e);
    }
    const HvxVec acc = ctx.VAddSf(acc_lo, acc_hi);
    const float l = ctx.ReduceSumSf(acc);

    // Pass 3: normalize. Reciprocal on the scalar core, then a vector multiply sweep.
    ctx.ChargeScalar(20);
    const float inv = (l > 0.0f) ? 1.0f / l : 0.0f;
    const HvxVec vinv = ctx.VSplatHf(inv);
    for (int g = 0; g < regs; ++g) {
      F16* chunk = row + g * HvxVec::kHalfwords;
      HvxVec x = ctx.LoadAligned(chunk);
      x = ctx.VMpyHf(x, vinv);
      x = ctx.ConvertQf(x);
      ctx.Store(chunk, x);
    }
  }

  const int64_t used = ctx.packets() - start;
  dev.CommitHvxPackets(used, 1, "softmax");
}

int64_t SoftmaxPacketCost(const hexsim::DeviceProfile& profile, SoftmaxVariant v, int rows,
                          int cols) {
  HEXLLM_CHECK(cols % HvxVec::kHalfwords == 0);
  const int64_t regs = cols / HvxVec::kHalfwords;
  const int64_t exp_cost = ExpRegPacketCost(profile, v, rows);
  const int64_t qf = profile.native_ieee_fp16 ? 0 : 1;
  // Pass 1: load+vmax per reg (first reg has no vmax) + reduce(7) + splat(1).
  const int64_t pass1 = regs * 2 - 1 + 7 + 1;
  // Pass 2: splat acc(1) + per reg (load, sub, exp, widen 2, 2 adds, store) + final add(1)
  // + reduce(6).
  const int64_t pass2 = 1 + regs * (7 + exp_cost) + 1 + 6;
  // Pass 3: scalar recip(20) + splat(1) + per reg (load, mul, optional qf convert, store).
  const int64_t pass3 = 20 + 1 + regs * (3 + qf);
  return static_cast<int64_t>(rows) * (pass1 + pass2 + pass3);
}

}  // namespace hkern

// Miscellaneous HVX operators: RMSNorm, RoPE, SiLU, residual add.
//
// §5.2.1 classifies these as small contributors ("we neglect their impacts due to their
// small computation and memory access volumes"), but a complete backend still needs them:
// they run on HVX, are charged per-register, and are functionally exact so the end-to-end
// toy-model tests validate real numerics.
#ifndef SRC_KERNELS_MISC_OPS_H_
#define SRC_KERNELS_MISC_OPS_H_

#include <cstdint>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"

namespace hkern {

// y = x / rms(x) * gamma, row-wise over [rows, width] FP16 (width % 64 == 0). The mean of
// squares is accumulated in FP32. Charged under "misc.rmsnorm".
void RmsNormF16(hexsim::NpuDevice& dev, const hexllm::F16* x, const hexllm::F16* gamma,
                hexllm::F16* y, int rows, int width, float eps);

// Rotary position embedding applied in-place to [rows, head_dim] FP16 (one head),
// interleaved-pair convention: (x[2i], x[2i+1]) rotated by theta_i = pos * base^(-2i/d).
// Charged under "misc.rope".
void RopeF16(hexsim::NpuDevice& dev, hexllm::F16* x, int rows, int head_dim, int pos0,
             float theta_base);

// y = silu(a) * b, elementwise over `count` FP16 values (count % 64 == 0) — the SwiGLU
// gating op. silu evaluated at FP32 internally. Charged under "misc.silu".
void SiluMulF16(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b,
                hexllm::F16* y, int64_t count);

// y = a + b elementwise (residual connection). Charged under "misc.add".
void AddF16(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b,
            hexllm::F16* y, int64_t count);

}  // namespace hkern

#endif  // SRC_KERNELS_MISC_OPS_H_

// Miscellaneous HVX operators: RMSNorm, RoPE, SiLU, residual add.
//
// §5.2.1 classifies these as small contributors ("we neglect their impacts due to their
// small computation and memory access volumes"), but a complete backend still needs them:
// they run on HVX, are charged per-register, and are functionally exact so the end-to-end
// toy-model tests validate real numerics.
#ifndef SRC_KERNELS_MISC_OPS_H_
#define SRC_KERNELS_MISC_OPS_H_

#include <cstdint>
#include <vector>

#include "src/base/fp16.h"
#include "src/hexsim/npu_device.h"

namespace hkern {

// y = x / rms(x) * gamma, row-wise over [rows, width] FP16 (width % 64 == 0). The mean of
// squares is accumulated in FP32. Charged under "misc.rmsnorm".
void RmsNormF16(hexsim::NpuDevice& dev, const hexllm::F16* x, const hexllm::F16* gamma,
                hexllm::F16* y, int rows, int width, float eps);

// Rotary position embedding applied in-place to [rows, head_dim] FP16 (one head),
// interleaved-pair convention: (x[2i], x[2i+1]) rotated by theta_i = pos * base^(-2i/d).
// Charged under "misc.rope".
void RopeF16(hexsim::NpuDevice& dev, hexllm::F16* x, int rows, int head_dim, int pos0,
             float theta_base);

// RoPE over `heads` contiguous head_dim segments of one packed activation row, all at
// position `pos` — equivalent to calling RopeF16(head, 1 row) per head, but the rotation
// angles (which depend only on the within-head index) are computed once and applied to
// every head. Bit-identical outputs and charging to the per-head loop: counts
// kernel.rope.calls once per head, charges the same per-head packet total, commits one
// combined "misc.rope" tag (docs/performance.md).
void RopeHeadsF16(hexsim::NpuDevice& dev, hexllm::F16* x, int heads, int head_dim, int pos,
                  float theta_base);

// Per-pair inverse frequencies base^(-2i/d) for i in [0, head_dim/2) — exactly the pow()
// subexpression of the RoPE angle, hoisted so steady-state decode evaluates pow once per
// model instead of once per (row, pair). theta_i = pos * inv_freq[i] in double, so the
// rotation is bit-identical to the theta_base overloads.
std::vector<double> RopeInvFreq(int head_dim, float theta_base);

// RopeHeadsF16 with the pow() table precomputed by RopeInvFreq (same head_dim/theta_base).
void RopeHeadsF16(hexsim::NpuDevice& dev, hexllm::F16* x, int heads, int head_dim, int pos,
                  const double* inv_freq);

// y = silu(a) * b, elementwise over `count` FP16 values (count % 64 == 0) — the SwiGLU
// gating op. silu evaluated at FP32 internally. Charged under "misc.silu".
void SiluMulF16(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b,
                hexllm::F16* y, int64_t count);

// y = a + b elementwise (residual connection). Charged under "misc.add".
void AddF16(hexsim::NpuDevice& dev, const hexllm::F16* a, const hexllm::F16* b,
            hexllm::F16* y, int64_t count);

}  // namespace hkern

#endif  // SRC_KERNELS_MISC_OPS_H_
